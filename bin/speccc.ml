(* speccc: command-line driver for the speculative compiler.

   Compile a mini-C source file, optionally profile it, optimize it under a
   chosen speculation policy, and run it on the reference interpreter or
   the ITL machine simulator.

     speccc run prog.c                      interpret, print output
     speccc run --engine vm prog.c          threaded-code bytecode engine
     speccc run --engine both prog.c        tree + vm, fail on divergence
     speccc run --machine prog.c            simulate on the ITL machine
     speccc run --machine --backend ooo prog.c   on the out-of-order core
     speccc run --faults inv=10000 prog.c   misspeculation stress run
     speccc run --cache-dir .speccc-cache prog.c   warm compiles skip passes
     speccc dump --phase ssa prog.c         print IR after a phase
     speccc stats --mode profile prog.c     perf counters for all variants
     speccc stats --backend ooo prog.c      ... on the out-of-order core
     speccc profile record prog.c -o p.sprof    persist a training run
     speccc profile merge -o m.sprof a.sprof b.sprof
     speccc profile stale-check p.sprof edited.c
     speccc serve --socket svc.sock --cache-dir .c   compile service daemon
     speccc client compile prog.c --unit u      compile via the daemon
     speccc client report-profile u p.sprof     online FDO: merge + drift
     speccc client stats                        daemon counters
     speccc client shutdown                     clean stop

   Persistent FDO: a training run's profile can be saved to a *.sprof
   store (--profile-out), merged across runs with optional exponential
   decay, and fed back to later compiles (--profile-in) — including of
   edited sources, where stale-profile matching re-binds what it can and
   conservatively forgoes speculation elsewhere.  --cache-dir enables
   the content-addressed compile cache: an unchanged (source, variant,
   profile) triple skips every optimization pass. *)

open Cmdliner
open Spec_ir
open Spec_driver

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let src_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
         ~doc:"mini-C source file")

let mode_arg =
  Arg.(value
       & opt (enum [ "none", `None; "base", `Base; "profile", `Profile;
                     "heuristic", `Heuristic; "aggressive", `Aggressive ])
           `Base
       & info [ "mode"; "m" ] ~docv:"MODE"
           ~doc:"speculation policy: none, base, profile, heuristic, \
                 aggressive")

let variant_of_mode prof = function
  | `None -> Pipeline.Noopt
  | `Base -> Pipeline.Base
  | `Profile -> Pipeline.Spec_profile prof
  | `Heuristic -> Pipeline.Spec_heuristic
  | `Aggressive -> Pipeline.Aggressive

(* ---- persistent-FDO plumbing ---- *)

let load_store path =
  match Spec_fdo.Store.load path with
  | Ok s -> s
  | Error msg ->
    Printf.eprintf "speccc: %s: %s\n" path msg;
    exit 2

type evidence = {
  ev_prof : Spec_prof.Profile.t;
  ev_digest : string option;   (** store digest, keys the compile cache *)
}

(* Profile evidence for one invocation, computed exactly once: the same
   training run (or persisted store) seeds the Spec_profile variant, the
   edge profile for control speculation, and the compile-cache key.
   Fresh runs are round-tripped through the store so that a compile fed
   by --profile-in of the recorded store makes identical decisions. *)
let evidence ?profile_in ?profile_out src =
  match profile_in with
  | Some path ->
    let store = load_store path in
    let prog = Lower.compile src in
    let prof, mr = Spec_fdo.Store.bind store prog in
    let rate = Spec_fdo.Store.match_rate mr in
    if rate < 1.0 then
      Printf.eprintf "profile: stale store %s: %.1f%% of sites matched\n"
        path (100. *. rate);
    (match profile_out with
     | Some out -> Spec_fdo.Store.save out store
     | None -> ());
    { ev_prof = prof; ev_digest = Some (Spec_fdo.Store.digest store) }
  | None ->
    let prog, prof0, _ = Pipeline.train src in
    let store = Spec_fdo.Store.of_profile prog prof0 in
    (match profile_out with
     | Some out -> Spec_fdo.Store.save out store
     | None -> ());
    let prof, _ = Spec_fdo.Store.bind store prog in
    { ev_prof = prof; ev_digest = Some (Spec_fdo.Store.digest store) }

let optimize_src ?(verify_each = false) ?(deopt = false) ?(safety = false)
    ?perturb ?cache ?threshold ~ev src mode =
  let variant = variant_of_mode ev.ev_prof mode in
  let config =
    match threshold with
    | None -> None
    | Some t ->
      Some
        { (Spec_ssapre.Ssapre.default_config (Pipeline.mode_of_variant variant))
          with Spec_ssapre.Ssapre.alias_threshold = t }
  in
  Pipeline.compile_and_optimize ~verify_each ~deopt ~safety ~config
    ~edge_profile:(Some ev.ev_prof) ?perturb ?cache
    ?profile_digest:ev.ev_digest src variant

let jobs_arg =
  Arg.(value & opt int 1
       & info [ "jobs"; "j" ] ~docv:"N"
           ~doc:"compile with N domains: the per-function portion of each \
                 pipeline segment fans out to a fixed pool while \
                 whole-program analyses stay sequential; the optimized \
                 program is byte-identical for every N")

let set_jobs jobs =
  if jobs < 1 then begin
    Printf.eprintf "speccc: --jobs must be >= 1\n";
    exit 2
  end;
  Parpool.set_jobs jobs

let verify_arg =
  Arg.(value & flag
       & info [ "verify-each" ]
           ~doc:"validate CFG and SSA invariants between passes; name the \
                 offending pass on failure")

let timings_arg =
  Arg.(value & flag
       & info [ "timings" ]
           ~doc:"print per-pass wall time, per-pass statistics and \
                 analysis-cache counters")

let profile_in_arg =
  Arg.(value & opt (some file) None
       & info [ "profile-in" ] ~docv:"FILE"
           ~doc:"feed a persisted profile store (*.sprof) to the compile \
                 instead of a fresh training run; stale sites are matched \
                 by stable key and unmatched ones forgo speculation")

let profile_out_arg =
  Arg.(value & opt (some string) None
       & info [ "profile-out" ] ~docv:"FILE"
           ~doc:"persist this invocation's profile store (*.sprof)")

let cache_dir_arg =
  Arg.(value & opt (some string) None
       & info [ "cache-dir" ] ~docv:"DIR"
           ~doc:"content-addressed compile cache; a hit skips every \
                 optimization pass (counters go to stderr)")

let threshold_arg =
  Arg.(value & opt (some float) None
       & info [ "threshold" ] ~docv:"X"
           ~doc:"speculation frequency threshold: flag an alias as likely \
                 (chi-s) only when the profile says it substantiates more \
                 than this fraction of executions")

(* ---- speculative safety / recovery knobs ---- *)

let safety_arg =
  Arg.(value
       & opt (enum [ "off", `Off; "report", `Report; "strict", `Strict ])
           `Off
       & info [ "safety" ] ~docv:"MODE"
           ~doc:"speculative-taint checker over the optimized program: \
                 $(b,off) (default), $(b,report) (print the per-site \
                 report), or $(b,strict) (report, and fail the compile \
                 with a nonzero exit on any CONFIRMED site)")

let recover_arg =
  Arg.(value
       & opt (enum [ "reload", `Reload; "deopt", `Deopt ]) `Reload
       & info [ "recover" ] ~docv:"POLICY"
           ~doc:"failed-check recovery: $(b,reload) (re-execute the \
                 load, default) or $(b,deopt) (transfer to the \
                 unoptimized body at the equivalent point; requires the \
                 interpreter engines)")

(* Print the checker report; under --safety strict a confirmed site
   fails the invocation with a one-line diagnostic. *)
let handle_safety safety (r : Pipeline.result) =
  match safety, r.Pipeline.safety with
  | `Off, _ | _, None -> ()
  | (`Report | `Strict), Some rep ->
    print_string (Spec_safety.Spectct.to_string rep);
    if safety = `Strict && not (Spec_safety.Spectct.strict_ok rep)
    then begin
      Printf.eprintf
        "speccc: --safety strict: confirmed speculative-taint sites \
         (see report above)\n";
      exit 1
    end

(* A deopt plan is built over a fresh lowering of the same source:
   deterministic lowering reproduces the statement/variable ids the
   descriptors refer to. *)
let recover_plan recover src =
  match recover with
  | `Reload -> None
  | `Deopt -> Some (Spec_safety.Deopt.make_plan (Lower.compile src))

let open_cache dir = Option.map Spec_fdo.Cache.create dir

let report_cache cache =
  match cache with
  | Some c ->
    Printf.eprintf "cache: %s\n" (Spec_fdo.Cache.stats_to_string c)
  | None -> ()

(* ---- run ---- *)

let faults_arg =
  Arg.(value & opt (some string) None
       & info [ "faults" ] ~docv:"SPEC"
           ~doc:"misspeculation fault plan: comma-separated $(b,flush=K) \
                 (full ALAT flush every K time units), $(b,inv=PPM) \
                 (per-time-unit random entry invalidation), $(b,alat=N) \
                 (shrink the machine ALAT to N entries), \
                 $(b,adv=invert|drop:PPM|none) (adversarial speculation \
                 flags).  Deterministic for a given --stress-seed.")

let stress_seed_arg =
  Arg.(value & opt int 1
       & info [ "stress-seed" ] ~docv:"N"
           ~doc:"seed for the --faults random streams (default 1)")

let backend_arg =
  let backend_conv =
    let parse s =
      match Spec_machine.Machine.backend_of_string s with
      | Some b -> Ok b
      | None ->
        Error
          (`Msg (Printf.sprintf "unknown backend %S (expected inorder|ooo)" s))
    in
    let print ppf b =
      Format.pp_print_string ppf (Spec_machine.Machine.backend_name b)
    in
    Arg.conv (parse, print)
  in
  Arg.(value & opt backend_conv Spec_machine.Machine.Inorder
       & info [ "backend" ] ~docv:"CORE"
           ~doc:"machine core model: $(b,inorder) (the paper's in-order \
                 EPIC machine, default) or $(b,ooo) (out-of-order: \
                 ROB + LSQ with a memory-dependence predictor)")

(* the in-order core keeps the historical "machine" fault-stream scope;
   other backends get their own streams *)
let machine_scope backend =
  match backend with
  | Spec_machine.Machine.Inorder -> "machine"
  | b -> "machine-" ^ Spec_machine.Machine.backend_name b

let engine_arg =
  Arg.(value
       & opt (enum [ "tree", `Tree; "vm", `Vm; "both", `Both ]) `Tree
       & info [ "engine" ] ~docv:"ENGINE"
           ~doc:"interpreter engine: $(b,tree) (pre-compiled closure \
                 tree, default), $(b,vm) (threaded-code bytecode; on a \
                 --cache-dir hit the bytecode comes straight from the \
                 cached artifact), or $(b,both) (run both and fail on \
                 any output disagreement)")

let engine_list = function
  | `Tree -> [ `Tree ]
  | `Vm -> [ `Vm ]
  | `Both -> [ `Tree; `Vm ]

let engine_name = function `Tree -> "tree" | `Vm -> "vm"

(* both engines draw a fresh injector from the same plan and scope, so
   they see identical deterministic fault streams *)
let run_engine plan ?recover file (r : Pipeline.result) engine =
  let fi =
    Spec_stress.Faults.injector_opt plan
      ~scope:[ Filename.basename file; "speccc"; "interp" ]
  in
  let out =
    match engine with
    | `Tree -> Spec_prof.Interp.run ?faults:fi ?recover r.Pipeline.prog
    | `Vm ->
      Spec_prof.Vm.run_program ?faults:fi ?recover
        (Lazy.force r.Pipeline.vm)
  in
  (out, fi)

let run_cmd =
  let machine =
    Arg.(value & flag & info [ "machine" ] ~doc:"run on the ITL machine \
                                                 simulator (with counters)")
  in
  let action file mode machine backend engine recover verify_each timings
      jobs faults stress_seed profile_in profile_out cache_dir threshold =
    set_jobs jobs;
    if machine && recover = `Deopt then begin
      Printf.eprintf
        "speccc: --recover deopt is not supported with --machine \
         (usage: speccc run --recover deopt [--engine tree|vm|both] \
         FILE)\n";
      exit 2
    end;
    let src = read_file file in
    let plan =
      match faults with
      | None -> Spec_stress.Faults.null stress_seed
      | Some spec ->
        (match Spec_stress.Faults.parse ~seed:stress_seed spec with
         | Ok p -> p
         | Error msg ->
           Printf.eprintf "speccc: bad --faults spec: %s\n" msg;
           exit 2)
    in
    let perturb =
      Spec_spec.Flags.perturbation ~seed:stress_seed
        ~scope:[ Filename.basename file; "speccc" ]
        plan.Spec_stress.Faults.adversary
    in
    let cache = open_cache cache_dir in
    let ev = evidence ?profile_in ?profile_out src in
    let r =
      optimize_src ~verify_each ~deopt:(recover = `Deopt) ?perturb ?cache
        ?threshold ~ev src mode
    in
    if timings then
      prerr_string (Spec_driver.Passes.report_to_string r.Pipeline.report);
    report_cache cache;
    (match perturb with
     | Some p ->
       Printf.eprintf "adversary-flips=%d\n" (Spec_spec.Flags.flipped p)
     | None -> ());
    if machine then begin
      let config =
        match plan.Spec_stress.Faults.alat_entries with
        | Some n ->
          { Spec_machine.Machine.default_config with
            Spec_machine.Machine.alat_entries = n }
        | None -> Spec_machine.Machine.default_config
      in
      let mf =
        Spec_stress.Faults.injector_opt plan
          ~scope:[ Filename.basename file; "speccc"; machine_scope backend ]
      in
      let m =
        Spec_machine.Machine.run_sir_on backend ~config ?faults:mf
          r.Pipeline.prog
      in
      print_string m.Spec_machine.Machine.output;
      let p = m.Spec_machine.Machine.perf in
      Printf.eprintf
        "cycles=%d insns=%d loads=%d checks=%d check-misses=%d stores=%d\n"
        p.Spec_machine.Machine.cycles p.Spec_machine.Machine.insns
        (Spec_machine.Machine.loads_retired p)
        p.Spec_machine.Machine.checks p.Spec_machine.Machine.check_misses
        p.Spec_machine.Machine.stores;
      if backend <> Spec_machine.Machine.Inorder then
        Printf.eprintf
          "br-mispredicts=%d lsq-replays=%d mdp-poisons=%d\n"
          p.Spec_machine.Machine.br_mispredicts
          p.Spec_machine.Machine.lsq_replays
          p.Spec_machine.Machine.mdp_poisons;
      (match mf with
       | Some inj ->
         Printf.eprintf "alat-flushes=%d alat-invalidations=%d\n"
           (Spec_stress.Faults.flushes inj)
           (Spec_stress.Faults.invalidations inj)
       | None -> ())
    end
    else begin
      let rplan = recover_plan recover src in
      let results =
        List.map (fun e -> (e, run_engine plan ?recover:rplan file r e))
          (engine_list engine)
      in
      (match results with
       | [] -> assert false
       | (_, (first, _)) :: rest ->
         List.iter
           (fun (e, (out, _)) ->
             if out.Spec_prof.Interp.output
                <> first.Spec_prof.Interp.output
             then begin
               Printf.eprintf
                 "speccc: engine disagreement: %s output differs from \
                  tree\n"
                 (engine_name e);
               exit 1
             end)
           rest;
         print_string first.Spec_prof.Interp.output);
      List.iter
        (fun (e, (out, fi)) ->
          match fi with
          | Some inj ->
            Printf.eprintf
              "engine=%s check-reloads=%d deopts=%d alat-flushes=%d \
               alat-invalidations=%d\n"
              (engine_name e)
              out.Spec_prof.Interp.counters.Spec_prof.Interp.check_reloads
              out.Spec_prof.Interp.counters.Spec_prof.Interp.deopts
              (Spec_stress.Faults.flushes inj)
              (Spec_stress.Faults.invalidations inj)
          | None -> ())
        results
    end;
    0
  in
  Cmd.v (Cmd.info "run" ~doc:"compile, optimize and execute a program")
    Term.(const action $ src_arg $ mode_arg $ machine $ backend_arg
          $ engine_arg $ recover_arg $ verify_arg $ timings_arg $ jobs_arg
          $ faults_arg $ stress_seed_arg $ profile_in_arg $ profile_out_arg
          $ cache_dir_arg $ threshold_arg)

(* ---- dump ---- *)

let dump_cmd =
  let phase =
    Arg.(value
         & opt (enum [ "ast", `Ast; "sir", `Sir; "chimu", `Chimu;
                       "ssa", `Ssa; "opt", `Opt; "itl", `Itl ])
             `Opt
         & info [ "phase"; "p" ] ~docv:"PHASE"
             ~doc:"ast, sir, chimu, ssa, opt (post-PRE), itl")
  in
  let action file mode phase safety jobs profile_in profile_out cache_dir
      threshold =
    set_jobs jobs;
    (match phase, safety with
     | (`Ast | `Sir | `Chimu | `Ssa), (`Report | `Strict) ->
       Printf.eprintf
         "speccc: --safety needs the optimized program (usage: speccc \
          dump --phase opt|itl --safety report|strict FILE)\n";
       exit 2
     | _ -> ());
    let src = read_file file in
    (* one training run (or store load) per invocation, and only for the
       phases that need evidence at all *)
    let ev = lazy (evidence ?profile_in ?profile_out src) in
    let cache = open_cache cache_dir in
    (match phase with
     | `Ast ->
       let ast = Parser.parse src in
       Printf.printf "(%d top-level declarations parsed)\n" (List.length ast)
     | `Sir ->
       let p = Lower.compile src in
       print_endline (Pp.prog_to_string p)
     | `Chimu ->
       let p = Lower.compile src in
       let _ = Spec_alias.Annotate.run p in
       print_endline (Pp.prog_to_string p)
     | `Ssa ->
       let p = Lower.compile src in
       let annot = Spec_alias.Annotate.run p in
       let mode' =
         match mode with
         | `Heuristic | `Aggressive -> Spec_spec.Flags.Heuristic_spec
         | `Profile ->
           Spec_spec.Flags.Profile_spec (Lazy.force ev).ev_prof
         | `None | `Base -> Spec_spec.Flags.Nonspec
       in
       Spec_spec.Flags.assign ?threshold p annot mode';
       Sir.iter_funcs
         (fun f -> ignore (Spec_cfg.Cfg_utils.split_critical_edges f : int))
         p;
       ignore (Spec_ssa.Build_ssa.build p);
       print_endline (Pp.prog_to_string p)
     | `Opt ->
       let r =
         optimize_src ~safety:(safety <> `Off) ?cache ?threshold
           ~ev:(Lazy.force ev) src mode
       in
       report_cache cache;
       handle_safety safety r;
       print_endline (Pp.prog_to_string r.Pipeline.prog)
     | `Itl ->
       let r =
         optimize_src ~safety:(safety <> `Off) ?cache ?threshold
           ~ev:(Lazy.force ev) src mode
       in
       report_cache cache;
       handle_safety safety r;
       let mp = Spec_codegen.Codegen.lower r.Pipeline.prog in
       List.iter
         (fun name ->
           let f = Hashtbl.find mp.Spec_codegen.Itl.mp_funcs name in
           Fmt.pr "%a@." Spec_codegen.Itl.pp_mfunc f)
         mp.Spec_codegen.Itl.mp_order);
    0
  in
  Cmd.v
    (Cmd.info "dump" ~doc:"print the IR after a compilation phase")
    Term.(const action $ src_arg $ mode_arg $ phase $ safety_arg
          $ jobs_arg $ profile_in_arg $ profile_out_arg $ cache_dir_arg
          $ threshold_arg)

(* ---- stats ---- *)

let stats_cmd =
  let action file backend engine safety recover verify_each timings jobs
      profile_in profile_out cache_dir threshold =
    set_jobs jobs;
    let src = read_file file in
    let ev = evidence ?profile_in ?profile_out src in
    let cache = open_cache cache_dir in
    let rplan = recover_plan recover src in
    let safety_reports = ref [] in
    Printf.printf "backend: %s  engine: %s\n"
      (Spec_machine.Machine.backend_name backend)
      (String.concat "+" (List.map engine_name (engine_list engine)));
    Printf.printf "%-10s %10s %10s %8s %8s %8s %8s %10s\n" "variant"
      "cycles" "insns" "loads" "checks" "misses" "stores" "steps";
    let reports = ref [] in
    List.iter
      (fun mode ->
        let r =
          optimize_src ~verify_each ~deopt:(recover = `Deopt)
            ~safety:(safety <> `Off) ?cache ?threshold ~ev src mode
        in
        let name = Pipeline.variant_name r.Pipeline.variant in
        reports := (name, r.Pipeline.report) :: !reports;
        (match r.Pipeline.safety with
         | Some rep -> safety_reports := (name, rep) :: !safety_reports
         | None -> ());
        let m = Spec_machine.Machine.run_sir_on backend r.Pipeline.prog in
        (* every requested engine must reproduce the machine's output *)
        let steps =
          List.fold_left
            (fun _ e ->
              let i =
                match e with
                | `Tree ->
                  Spec_prof.Interp.run ?recover:rplan r.Pipeline.prog
                | `Vm ->
                  Spec_prof.Vm.run_program ?recover:rplan
                    (Lazy.force r.Pipeline.vm)
              in
              if i.Spec_prof.Interp.output <> m.Spec_machine.Machine.output
              then begin
                Printf.eprintf
                  "speccc: %s: %s engine output diverged from the \
                   machine\n"
                  name (engine_name e);
                exit 1
              end;
              i.Spec_prof.Interp.counters.Spec_prof.Interp.steps)
            0 (engine_list engine)
        in
        let p = m.Spec_machine.Machine.perf in
        Printf.printf "%-10s %10d %10d %8d %8d %8d %8d %10d\n" name
          p.Spec_machine.Machine.cycles p.Spec_machine.Machine.insns
          (Spec_machine.Machine.loads_retired p)
          p.Spec_machine.Machine.checks p.Spec_machine.Machine.check_misses
          p.Spec_machine.Machine.stores steps)
      [ `None; `Base; `Profile; `Heuristic; `Aggressive ];
    report_cache cache;
    (match safety with
     | `Off -> ()
     | `Report | `Strict ->
       List.iter
         (fun (name, rep) ->
           Printf.printf "\n-- safety: %s --\n%s" name
             (Spec_safety.Spectct.to_string rep))
         (List.rev !safety_reports);
       if safety = `Strict
          && List.exists
               (fun (_, rep) -> not (Spec_safety.Spectct.strict_ok rep))
               !safety_reports
       then begin
         Printf.eprintf
           "speccc: --safety strict: confirmed speculative-taint sites \
            (see reports above)\n";
         exit 1
       end);
    if timings then
      List.iter
        (fun (name, report) ->
          Printf.printf "\n-- %s pass timings --\n%s" name
            (Spec_driver.Passes.report_to_string report))
        (List.rev !reports);
    0
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"machine counters for every pipeline variant")
    Term.(const action $ src_arg $ backend_arg $ engine_arg $ safety_arg
          $ recover_arg $ verify_arg $ timings_arg $ jobs_arg
          $ profile_in_arg $ profile_out_arg $ cache_dir_arg
          $ threshold_arg)

(* ---- profile ---- *)

let out_arg =
  Arg.(required & opt (some string) None
       & info [ "o"; "output" ] ~docv:"FILE" ~doc:"output store (*.sprof)")

let profile_record_cmd =
  let action file out =
    let src = read_file file in
    let prog, prof, _ = Pipeline.train src in
    let store = Spec_fdo.Store.of_profile prog prof in
    Spec_fdo.Store.save out store;
    Printf.printf "%s\ndigest %s\n" (Spec_fdo.Store.summary store)
      (Spec_fdo.Store.digest store);
    0
  in
  Cmd.v
    (Cmd.info "record"
       ~doc:"run the training interpreter once and persist the profile")
    Term.(const action $ src_arg $ out_arg)

let profile_merge_cmd =
  let stores_arg =
    Arg.(non_empty & pos_all file [] & info [] ~docv:"STORE"
           ~doc:"profile stores (*.sprof), oldest first")
  in
  let decay_arg =
    Arg.(value & opt (some float) None
         & info [ "decay" ] ~docv:"LAMBDA"
             ~doc:"exponential decay in [0,1]: down-weight the \
                   accumulated evidence by LAMBDA before each younger \
                   store is merged in")
  in
  let action out decay paths =
    let stores = List.map load_store paths in
    let merged =
      match stores with
      | [] -> assert false
      | first :: rest ->
        List.fold_left
          (fun acc s ->
            let acc =
              match decay with
              | Some lambda -> Spec_fdo.Store.decay ~lambda acc
              | None -> acc
            in
            Spec_fdo.Store.merge acc s)
          first rest
    in
    Spec_fdo.Store.save out merged;
    Printf.printf "%s\ndigest %s\n" (Spec_fdo.Store.summary merged)
      (Spec_fdo.Store.digest merged);
    0
  in
  Cmd.v
    (Cmd.info "merge"
       ~doc:"merge profile stores (commutative unless --decay is given)")
    Term.(const action $ out_arg $ decay_arg $ stores_arg)

let store_pos_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"STORE"
         ~doc:"profile store (*.sprof)")

let profile_show_cmd =
  let action path =
    let store = load_store path in
    Printf.printf "%s\ndigest %s\n" (Spec_fdo.Store.summary store)
      (Spec_fdo.Store.digest store);
    0
  in
  Cmd.v (Cmd.info "show" ~doc:"summarize a profile store")
    Term.(const action $ store_pos_arg)

let profile_stale_check_cmd =
  let src_pos1 =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"FILE"
           ~doc:"mini-C source to match the store against")
  in
  let action store_path file =
    let store = load_store store_path in
    let src = read_file file in
    let prog = Lower.compile src in
    let _, mr = Spec_fdo.Store.bind store prog in
    print_endline (Spec_fdo.Store.report_to_string mr);
    Printf.printf "match-rate %.4f\n" (Spec_fdo.Store.match_rate mr);
    0
  in
  Cmd.v
    (Cmd.info "stale-check"
       ~doc:"report how much of a store still matches a (possibly \
             edited) source; unmatched sites forgo speculation")
    Term.(const action $ store_pos_arg $ src_pos1)

let profile_cmd =
  Cmd.group
    (Cmd.info "profile"
       ~doc:"record, merge, inspect and stale-check persistent profile \
             stores")
    [ profile_record_cmd; profile_merge_cmd; profile_show_cmd;
      profile_stale_check_cmd ]

(* ---- serve / client: the compile service ---- *)

module Service = Spec_service

let socket_arg =
  Arg.(value & opt string "speccc.sock"
       & info [ "socket" ] ~docv:"PATH"
           ~doc:"unix-domain socket the daemon listens on (default \
                 speccc.sock)")

let serve_cmd =
  let cache_dir =
    Arg.(value & opt string ".speccc-cache"
         & info [ "cache-dir" ] ~docv:"DIR"
             ~doc:"content-addressed compile cache backing the daemon; \
                   warm requests skip every optimization pass")
  in
  let max_entries =
    Arg.(value & opt (some int) None
         & info [ "max-entries" ] ~docv:"N"
             ~doc:"LRU cap on cached artifacts (default unbounded)")
  in
  let decay =
    Arg.(value & opt float 1.0
         & info [ "decay" ] ~docv:"L"
             ~doc:"down-weight a unit's accumulated evidence by L before \
                   merging each reported profile (exponential decay; 1.0, \
                   the default, is the plain commutative merge, so report \
                   order cannot matter)")
  in
  let drift =
    Arg.(value & opt float 0.25
         & info [ "drift-threshold" ] ~docv:"X"
             ~doc:"recompile a unit in the background (and atomically \
                   swap its artifact) when its accumulated evidence \
                   drifts more than X from the snapshot its current \
                   artifact was compiled against (0..1)")
  in
  let verbose =
    Arg.(value & flag
         & info [ "verbose" ] ~doc:"log every request to stderr")
  in
  let shards =
    Arg.(value & opt int 1
         & info [ "shards" ] ~docv:"N"
             ~doc:"run N daemon cores behind one router, each owning a \
                   disjoint slice of the compile cache and profile \
                   stores; requests route by cache-key / unit-digest \
                   prefix, stats and shutdown fan out (default 1)")
  in
  let action socket cache_dir max_entries decay drift verbose shards jobs =
    set_jobs jobs;
    if decay < 0. || decay > 1. then begin
      Printf.eprintf "speccc: --decay must be in [0, 1]\n";
      exit 2
    end;
    if shards < 1 then begin
      Printf.eprintf "speccc: --shards must be at least 1\n";
      exit 2
    end;
    let cfg =
      { Service.Daemon.sv_cache_dir = cache_dir;
        sv_max_entries = max_entries; sv_lambda = decay; sv_drift = drift;
        sv_verbose = verbose }
    in
    Service.Shard.serve ~shards cfg ~socket;
    0
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"run the compile service: answer compile requests from the \
             cache (cold misses run the pipeline on the domain pool, \
             deduplicated through a single-flight registry that \
             persists across wakeups), merge reported profiles online \
             with decay, recompile units in the background when their \
             evidence drifts, and with --shards N route requests \
             across N cores each owning a disjoint cache/store slice")
    Term.(const action $ socket_arg $ cache_dir $ max_entries $ decay
          $ drift $ verbose $ shards $ jobs_arg)

let client_rpc socket req =
  match Service.Client.with_client socket (fun c -> Service.Client.rpc c req) with
  | Ok (Ok resp) -> resp
  | Ok (Error msg) | Error msg ->
    Printf.eprintf "speccc: %s\n" msg;
    exit 1

let client_fail msg =
  Printf.eprintf "speccc: daemon error: %s\n" msg;
  exit 1

let mode_string = function
  | `None -> "none"
  | `Base -> "base"
  | `Profile -> "profile"
  | `Heuristic -> "heuristic"
  | `Aggressive -> "aggressive"

let client_compile_cmd =
  let unit_arg =
    Arg.(value & opt (some string) None
         & info [ "unit" ] ~docv:"NAME"
             ~doc:"compilation-unit name the daemon keys profile \
                   evidence by (default: the source file's basename)")
  in
  let exec_arg =
    Arg.(value & flag
         & info [ "exec" ]
             ~doc:"also execute on the daemon's vm engine and print the \
                   program output instead of the optimized program")
  in
  let rounds_arg =
    Arg.(value & opt int 3
         & info [ "rounds" ] ~docv:"N" ~doc:"promotion rounds (default 3)")
  in
  let action socket file unit_name mode exec rounds =
    let src = read_file file in
    let unit_name =
      match unit_name with Some u -> u | None -> Filename.basename file
    in
    let req =
      Service.Proto.Compile
        { Service.Proto.cq_unit = unit_name; cq_mode = mode_string mode;
          cq_rounds = rounds; cq_strength = true; cq_exec = exec;
          cq_src = src }
    in
    (match client_rpc socket req with
     | Service.Proto.Compiled r ->
       Printf.eprintf "served: %s key=%s digest=%s match=%.4f\n"
         (match r.Service.Proto.cr_served with
          | Service.Proto.Cold -> "cold"
          | Service.Proto.Warm -> "warm"
          | Service.Proto.Joined -> "joined"
          | Service.Proto.Parked -> "parked")
         r.Service.Proto.cr_key r.Service.Proto.cr_digest
         (float_of_int r.Service.Proto.cr_match_ppm /. 1e6);
       if exec then print_string r.Service.Proto.cr_output
       else print_string r.Service.Proto.cr_prog
     | Service.Proto.Error m -> client_fail m
     | _ -> client_fail "unexpected reply");
    0
  in
  Cmd.v
    (Cmd.info "compile"
       ~doc:"request a compile from the daemon; prints the optimized \
             program (or, with --exec, its vm output) on stdout and the \
             served status (cold/warm/joined/parked + cache key) on \
             stderr")
    Term.(const action $ socket_arg $ src_arg $ unit_arg $ mode_arg
          $ exec_arg $ rounds_arg)

let client_report_cmd =
  let unit_pos =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"UNIT"
           ~doc:"compilation-unit name")
  in
  let store_pos =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"STORE"
           ~doc:"profile store (*.sprof) to report")
  in
  let weight_arg =
    Arg.(value & opt float 1.0
         & info [ "weight" ] ~docv:"W"
             ~doc:"weight of this evidence at merge (default 1.0)")
  in
  let action socket unit_name store_path weight =
    let store_text = read_file store_path in
    let req =
      Service.Proto.Report_profile
        { rq_unit = unit_name; rq_weight = weight; rq_store = store_text }
    in
    (match client_rpc socket req with
     | Service.Proto.Profiled r ->
       Printf.printf "runs %d\ndigest %s\ndrift %.4f\nrecompiled %s\n"
         r.Service.Proto.rr_runs r.Service.Proto.rr_digest
         r.Service.Proto.rr_drift
         (if r.Service.Proto.rr_recompiled then "yes" else "no")
     | Service.Proto.Error m -> client_fail m
     | _ -> client_fail "unexpected reply");
    0
  in
  Cmd.v
    (Cmd.info "report-profile"
       ~doc:"report profile evidence for a unit; the daemon merges it \
             into the unit's store (with the serve-side decay) and \
             recompiles in the background when the evidence drifts past \
             the threshold")
    Term.(const action $ socket_arg $ unit_pos $ store_pos $ weight_arg)

let client_stats_cmd =
  let action socket =
    (match client_rpc socket Service.Proto.Stats with
     | Service.Proto.Stats_reply kvs ->
       List.iter (fun (k, v) -> Printf.printf "%s %d\n" k v) kvs
     | Service.Proto.Error m -> client_fail m
     | _ -> client_fail "unexpected reply");
    0
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"print the service's request/cache/FDO counters: the shard \
             count, the aggregate under plain names, then one \
             shard<i>.<name> row per shard per counter")
    Term.(const action $ socket_arg)

let client_shutdown_cmd =
  let action socket =
    (match client_rpc socket Service.Proto.Shutdown with
     | Service.Proto.Bye -> print_endline "bye"
     | Service.Proto.Error m -> client_fail m
     | _ -> client_fail "unexpected reply");
    0
  in
  Cmd.v
    (Cmd.info "shutdown" ~doc:"ask the daemon to shut down cleanly")
    Term.(const action $ socket_arg)

let client_cmd =
  Cmd.group
    (Cmd.info "client"
       ~doc:"talk to a running speccc serve daemon over its unix socket")
    [ client_compile_cmd; client_report_cmd; client_stats_cmd;
      client_shutdown_cmd ]

let main_cmd =
  Cmd.group
    (Cmd.info "speccc" ~version:"1.0"
       ~doc:"speculative-SSAPRE compiler for the mini-C language \
             (PLDI 2003 reproduction)")
    [ run_cmd; dump_cmd; stats_cmd; profile_cmd; serve_cmd; client_cmd ]

let () = exit (Cmd.eval' main_cmd)
