(* speccc: command-line driver for the speculative compiler.

   Compile a mini-C source file, optionally profile it, optimize it under a
   chosen speculation policy, and run it on the reference interpreter or
   the ITL machine simulator.

     speccc run prog.c                      interpret, print output
     speccc run --machine prog.c            simulate on the ITL machine
     speccc run --faults inv=10000 prog.c   misspeculation stress run
     speccc dump --phase ssa prog.c         print IR after a phase
     speccc opt --mode heuristic prog.c     optimize and print final IR
     speccc stats --mode profile prog.c     perf counters for all variants
*)

open Cmdliner
open Spec_ir
open Spec_driver

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let src_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
         ~doc:"mini-C source file")

let mode_arg =
  Arg.(value
       & opt (enum [ "none", `None; "base", `Base; "profile", `Profile;
                     "heuristic", `Heuristic; "aggressive", `Aggressive ])
           `Base
       & info [ "mode"; "m" ] ~docv:"MODE"
           ~doc:"speculation policy: none, base, profile, heuristic, \
                 aggressive")

let variant_of_mode prof = function
  | `None -> Pipeline.Noopt
  | `Base -> Pipeline.Base
  | `Profile -> Pipeline.Spec_profile prof
  | `Heuristic -> Pipeline.Spec_heuristic
  | `Aggressive -> Pipeline.Aggressive

(* profile exactly once: the same training run seeds both the
   [Spec_profile] variant (alias profile) and the edge profile for
   control speculation *)
let optimize_src ?(verify_each = false) ?perturb src mode =
  let prof = Pipeline.profile_of_source src in
  let variant = variant_of_mode prof mode in
  Pipeline.compile_and_optimize ~verify_each ~edge_profile:(Some prof)
    ?perturb src variant

let verify_arg =
  Arg.(value & flag
       & info [ "verify-each" ]
           ~doc:"validate CFG and SSA invariants between passes; name the \
                 offending pass on failure")

let timings_arg =
  Arg.(value & flag
       & info [ "timings" ]
           ~doc:"print per-pass wall time, per-pass statistics and \
                 analysis-cache counters")

(* ---- run ---- *)

let faults_arg =
  Arg.(value & opt (some string) None
       & info [ "faults" ] ~docv:"SPEC"
           ~doc:"misspeculation fault plan: comma-separated $(b,flush=K) \
                 (full ALAT flush every K time units), $(b,inv=PPM) \
                 (per-time-unit random entry invalidation), $(b,alat=N) \
                 (shrink the machine ALAT to N entries), \
                 $(b,adv=invert|drop:PPM|none) (adversarial speculation \
                 flags).  Deterministic for a given --stress-seed.")

let stress_seed_arg =
  Arg.(value & opt int 1
       & info [ "stress-seed" ] ~docv:"N"
           ~doc:"seed for the --faults random streams (default 1)")

let run_cmd =
  let machine =
    Arg.(value & flag & info [ "machine" ] ~doc:"run on the ITL machine \
                                                 simulator (with counters)")
  in
  let action file mode machine verify_each timings faults stress_seed =
    let src = read_file file in
    let plan =
      match faults with
      | None -> Spec_stress.Faults.null stress_seed
      | Some spec ->
        (match Spec_stress.Faults.parse ~seed:stress_seed spec with
         | Ok p -> p
         | Error msg ->
           Printf.eprintf "speccc: bad --faults spec: %s\n" msg;
           exit 2)
    in
    let perturb =
      Spec_spec.Flags.perturbation ~seed:stress_seed
        ~scope:[ Filename.basename file; "speccc" ]
        plan.Spec_stress.Faults.adversary
    in
    let r = optimize_src ~verify_each ?perturb src mode in
    if timings then
      prerr_string (Spec_driver.Passes.report_to_string r.Pipeline.report);
    (match perturb with
     | Some p ->
       Printf.eprintf "adversary-flips=%d\n" (Spec_spec.Flags.flipped p)
     | None -> ());
    if machine then begin
      let config =
        match plan.Spec_stress.Faults.alat_entries with
        | Some n ->
          { Spec_machine.Machine.default_config with
            Spec_machine.Machine.alat_entries = n }
        | None -> Spec_machine.Machine.default_config
      in
      let mf =
        Spec_stress.Faults.injector_opt plan
          ~scope:[ Filename.basename file; "speccc"; "machine" ]
      in
      let m = Spec_machine.Machine.run_sir ~config ?faults:mf r.Pipeline.prog in
      print_string m.Spec_machine.Machine.output;
      let p = m.Spec_machine.Machine.perf in
      Printf.eprintf
        "cycles=%d insns=%d loads=%d checks=%d check-misses=%d stores=%d\n"
        p.Spec_machine.Machine.cycles p.Spec_machine.Machine.insns
        (Spec_machine.Machine.loads_retired p)
        p.Spec_machine.Machine.checks p.Spec_machine.Machine.check_misses
        p.Spec_machine.Machine.stores;
      (match mf with
       | Some inj ->
         Printf.eprintf "alat-flushes=%d alat-invalidations=%d\n"
           (Spec_stress.Faults.flushes inj)
           (Spec_stress.Faults.invalidations inj)
       | None -> ())
    end
    else begin
      let fi =
        Spec_stress.Faults.injector_opt plan
          ~scope:[ Filename.basename file; "speccc"; "interp" ]
      in
      let out = Spec_prof.Interp.run ?faults:fi r.Pipeline.prog in
      print_string out.Spec_prof.Interp.output;
      (match fi with
       | Some inj ->
         Printf.eprintf
           "check-reloads=%d alat-flushes=%d alat-invalidations=%d\n"
           out.Spec_prof.Interp.counters.Spec_prof.Interp.check_reloads
           (Spec_stress.Faults.flushes inj)
           (Spec_stress.Faults.invalidations inj)
       | None -> ())
    end;
    0
  in
  Cmd.v (Cmd.info "run" ~doc:"compile, optimize and execute a program")
    Term.(const action $ src_arg $ mode_arg $ machine $ verify_arg
          $ timings_arg $ faults_arg $ stress_seed_arg)

(* ---- dump ---- *)

let dump_cmd =
  let phase =
    Arg.(value
         & opt (enum [ "ast", `Ast; "sir", `Sir; "chimu", `Chimu;
                       "ssa", `Ssa; "opt", `Opt; "itl", `Itl ])
             `Opt
         & info [ "phase"; "p" ] ~docv:"PHASE"
             ~doc:"ast, sir, chimu, ssa, opt (post-PRE), itl")
  in
  let action file mode phase =
    let src = read_file file in
    (match phase with
     | `Ast ->
       let ast = Parser.parse src in
       Printf.printf "(%d top-level declarations parsed)\n" (List.length ast)
     | `Sir ->
       let p = Lower.compile src in
       print_endline (Pp.prog_to_string p)
     | `Chimu ->
       let p = Lower.compile src in
       let _ = Spec_alias.Annotate.run p in
       print_endline (Pp.prog_to_string p)
     | `Ssa ->
       let p = Lower.compile src in
       let annot = Spec_alias.Annotate.run p in
       let mode' =
         match mode with
         | `Heuristic | `Aggressive -> Spec_spec.Flags.Heuristic_spec
         | `Profile ->
           Spec_spec.Flags.Profile_spec (Pipeline.profile_of_source src)
         | `None | `Base -> Spec_spec.Flags.Nonspec
       in
       Spec_spec.Flags.assign p annot mode';
       Sir.iter_funcs
         (fun f -> ignore (Spec_cfg.Cfg_utils.split_critical_edges f : int))
         p;
       ignore (Spec_ssa.Build_ssa.build p);
       print_endline (Pp.prog_to_string p)
     | `Opt ->
       let r = optimize_src src mode in
       print_endline (Pp.prog_to_string r.Pipeline.prog)
     | `Itl ->
       let r = optimize_src src mode in
       let mp = Spec_codegen.Codegen.lower r.Pipeline.prog in
       List.iter
         (fun name ->
           let f = Hashtbl.find mp.Spec_codegen.Itl.mp_funcs name in
           Fmt.pr "%a@." Spec_codegen.Itl.pp_mfunc f)
         mp.Spec_codegen.Itl.mp_order);
    0
  in
  Cmd.v
    (Cmd.info "dump" ~doc:"print the IR after a compilation phase")
    Term.(const action $ src_arg $ mode_arg $ phase)

(* ---- stats ---- *)

let stats_cmd =
  let action file verify_each timings =
    let src = read_file file in
    let prof = Pipeline.profile_of_source src in
    Printf.printf "%-10s %10s %10s %8s %8s %8s %8s\n" "variant" "cycles"
      "insns" "loads" "checks" "misses" "stores";
    let reports = ref [] in
    List.iter
      (fun (name, variant) ->
        let r =
          Pipeline.compile_and_optimize ~verify_each ~edge_profile:(Some prof)
            src variant
        in
        reports := (name, r.Pipeline.report) :: !reports;
        let m = Spec_machine.Machine.run_sir r.Pipeline.prog in
        let p = m.Spec_machine.Machine.perf in
        Printf.printf "%-10s %10d %10d %8d %8d %8d %8d\n" name
          p.Spec_machine.Machine.cycles p.Spec_machine.Machine.insns
          (Spec_machine.Machine.loads_retired p)
          p.Spec_machine.Machine.checks p.Spec_machine.Machine.check_misses
          p.Spec_machine.Machine.stores)
      [ "noopt", Pipeline.Noopt; "base", Pipeline.Base;
        "profile", Pipeline.Spec_profile prof;
        "heuristic", Pipeline.Spec_heuristic;
        "aggressive", Pipeline.Aggressive ];
    if timings then
      List.iter
        (fun (name, report) ->
          Printf.printf "\n-- %s pass timings --\n%s" name
            (Spec_driver.Passes.report_to_string report))
        (List.rev !reports);
    0
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"machine counters for every pipeline variant")
    Term.(const action $ src_arg $ verify_arg $ timings_arg)

let main_cmd =
  Cmd.group
    (Cmd.info "speccc" ~version:"1.0"
       ~doc:"speculative-SSAPRE compiler for the mini-C language \
             (PLDI 2003 reproduction)")
    [ run_cmd; dump_cmd; stats_cmd ]

let () = exit (Cmd.eval' main_cmd)
