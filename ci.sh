#!/bin/sh
# CI entry point: build, run the full test suite, then smoke-test the
# speccc driver (machine counters + per-pass timings + inter-pass
# verification) on one workload kernel.
#
# Same steps as `dune build @ci`, runnable standalone.
set -eu

cd "$(dirname "$0")"

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

echo "== speccc stats smoke test =="
tmp="$(mktemp -t speccc-ci-XXXXXX.c)"
trap 'rm -f "$tmp"' EXIT
cat > "$tmp" <<'EOF'
int A[64];
int total;
int main() {
  int i; i = 0;
  while (i < 64) { A[i] = i * 3; i = i + 1; }
  total = 0;
  i = 0;
  while (i < 64) { total = total + A[i]; i = i + 1; }
  print_int(total);
  return 0;
}
EOF
dune exec bin/speccc.exe -- stats --timings --verify-each "$tmp"

echo "== speccc misspeculation stress smoke (--faults) =="
# Deterministic fault injection through the CLI: chaos invalidation,
# periodic flushes and an adversarial profile on the same kernel; the
# program output must stay correct under every fault source.
dune exec bin/speccc.exe -- run --machine --mode profile \
  --faults "flush=64,inv=100000,adv=invert" --stress-seed 7 "$tmp"

echo "== persistent FDO smoke (profile store + compile cache) =="
# Record two training profiles, merge them with decay, stale-check the
# merged store against the source, then compile twice through the
# content-addressed cache: the warm compile must hit (zero passes run)
# and print the same program output.
sh test/ci_fdo.sh _build/default/bin/speccc.exe "$tmp"

echo "== execution-engine smoke (--engine both + vm cache hit) =="
# The tree and threaded-code vm engines must print identical output
# (speccc exits nonzero on any disagreement), a second vm compile
# through the compile cache must hit — executing bytecode deserialized
# from the cached artifact — and both engines must reproduce the
# machine's output on every pipeline variant.
sh test/ci_engine.sh _build/default/bin/speccc.exe "$tmp"

echo "== speculative-safety smoke (--safety + --recover deopt) =="
# The taint checker must CONFIRM the leaky cipher kernel (and --safety
# strict must fail its compile), pass the constant-time kernel under
# strict, deopt-based recovery under forced flushes must agree across
# both engines, and malformed safety/recovery flags must exit non-zero
# with a usage hint.
sh test/ci_safety.sh _build/default/bin/speccc.exe \
  test/safety_smoke.c test/safety_ct.c

echo "== compile-service smoke (daemon + client + drift recompile) =="
# Start the compile daemon on a private socket and drive it through the
# client subcommands: cold compile, warm compile (byte-identical),
# report-profile past the drift threshold (background recompile +
# artifact swap), stats, clean shutdown.
sh test/ci_service.sh _build/default/bin/speccc.exe "$tmp"

echo "== sharded-service smoke (serve --shards 2 + client storm) =="
# Start a 2-shard topology and storm it: three concurrent same-key
# clients must cost exactly one cold compile (cross-wakeup
# single-flight), a mixed-key round must go cold then warm with
# byte-identical programs, and the aggregated stats (shard count,
# per-shard rows summing to the aggregate, zero errors) must be sane
# through a clean shutdown.
sh test/ci_shard.sh _build/default/bin/speccc.exe "$tmp"

echo "== bench harness smoke (--quick --stress --jobs 2) =="
# Runs every workload through every pipeline variant on a 2-domain pool,
# plus the misspeculation stress grid; the harness aborts if any variant
# diverges from the reference output or any stress point diverges from
# the unoptimized oracle.  The JSON bench dump (stress section included)
# is kept as an artifact.
dune exec bench/main.exe -- --quick --jobs 2 --stress --json --json-file bench-smoke.json > /dev/null

echo "== cross-backend smoke (--backend both --quick --jobs 2) =="
# Runs the quick sweep on both core models (the in-order EPIC machine
# and the out-of-order control).  The harness hard-fails if the two
# backends disagree on any program output or instruction count, and the
# per-backend dump — including the in-order-vs-OoO comparison section —
# is kept as an artifact.
dune exec bench/main.exe -- --quick --jobs 2 --backend both --json \
  --json-file backend-smoke.json > /dev/null

echo "== compile-throughput smoke (--compile-bench --quick --jobs 2) =="
# Cold-compiles every workload's throughput unit at --jobs 1 and
# --jobs 2 and hard-fails unless the parallel program is byte-identical
# to the sequential one.  The compile-throughput JSON (with per-pass
# breakdowns) is kept as an artifact.
dune exec bench/main.exe -- --compile-bench --quick --jobs 2 --json \
  --json-file compile-smoke.json > /dev/null

echo "== traffic-replay smoke (--traffic --quick --jobs 2) =="
# Spawns the compile daemon and replays a deterministic mixed
# cold/warm/report request stream against it; the harness hard-fails if
# any daemon-served compile diverges byte-for-byte from the offline
# pipeline.  The service JSON (latency percentiles + throughput) is
# kept as an artifact.
dune exec bench/main.exe -- --traffic --quick --jobs 2 --json \
  --json-file traffic-smoke.json > /dev/null

echo "== sharded traffic-replay smoke (--traffic --shards 2 --quick) =="
# The same replay against a 2-shard topology: requests route by
# cache-key/unit prefix, the offline mirror still byte-checks every
# answer (hard-fail on divergence), and the JSON artifact gains the
# per-shard + aggregate "shards" section.
dune exec bench/main.exe -- --traffic --shards 2 --quick --jobs 2 --json \
  --json-file shard-smoke.json > /dev/null

echo "== ci ok =="
