(** Blocking line-oriented client for the compile service.

    One request/response pair per {!rpc} call over a unix-domain
    stream socket.  [connect] retries briefly so a client racing the
    daemon's [bind] (tests, scripts that background [speccc serve])
    still attaches.  Errors are returned, never raised. *)

type t

val connect : ?retries:int -> string -> (t, string) result

(** Send one request, read one response line.  Returns [Error _] on
    transport failure or an undecodable reply. *)
val rpc : t -> Proto.request -> (Proto.response, string) result

val close : t -> unit

(** [connect], run, [close] (also on exception). *)
val with_client :
  ?retries:int -> string -> (t -> 'a) -> ('a, string) result
