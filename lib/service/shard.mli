(** The shard router: horizontal scale-out of the compile service.

    [create cfg ~shards:n] builds [n] {!Daemon} cores, each owning a
    {e disjoint} slice of the state: core [i] gets its own compile
    cache directory ([shard-<i>/] under the configured cache dir; the
    flat layout when [n = 1]) and the profile stores of exactly the
    units that hash to it.  Requests route deterministically:

    - stateless compile modes ([none]/[base]/[heuristic]/[aggressive])
      by their content-addressed cache key
      ({!Spec_fdo.Cache.shard_of_key} over {!Daemon.static_key} — the
      same source always lands on the same core, so its cache entry is
      written and read on one shard only);
    - [profile] compiles and [report-profile] by
      {!Spec_fdo.Store.shard_of_unit}, so a unit's accumulated
      evidence, drift tracking and current artifact live together;
    - [stats] and [shutdown] fan out: stats are aggregated by the
      router (per-shard counters summed, [cache_hit_ppm] re-derived,
      [store_drift_ppm_max] maxed) without disturbing per-core request
      counters, shutdown stops the whole topology.

    Both hash rules fold a hex-digest prefix mod [n] — stable across
    restarts and independent of [Hashtbl.hash], so a warm cache
    written by one serve run is warm for the next.

    {!serve} runs all cores behind one [Unix.select] loop: each wakeup
    submits newly arrived requests to their owning cores, then lands
    {e at most one} in-flight compile per core before polling again.
    Compiles therefore overlap with request intake, which is what
    makes the cross-wakeup single-flight registry real: a same-key
    request arriving while the compile is in flight parks on it
    ([parked] served tag) instead of compiling again, whatever wakeup
    it arrives in. *)

type t

(** [create cfg ~shards] with [shards >= 1].  The per-shard cache
    directories are created eagerly (flat at [shards = 1], so a
    single-shard service is exactly the old daemon on disk). *)
val create : Daemon.config -> shards:int -> t

val shards : t -> int

(** Direct access to shard [i]'s core (tests: disjointness,
    per-shard counters). *)
val core : t -> int -> Daemon.t

(** The owning shard of a request, or [None] for fan-out requests
    ([stats], [shutdown]). *)
val shard_of : t -> Proto.request -> int option

(** Aggregated counters: [("shards", n)], then the aggregate under the
    plain {!Daemon.counters} names (sums; [cache_hit_ppm] re-derived
    from summed hits/misses; [store_drift_ppm_max] maxed; requests and
    errors include router-terminated traffic — stats, shutdown,
    undecodable lines), then one ["shard<i>.<name>"] row per shard per
    counter. *)
val counters : t -> (string * int) list

(** True once a [shutdown] request was handled. *)
val stopped : t -> bool

(** Handle one scheduling batch: route each request to its owning
    core (stats/shutdown terminate at the router), land every flight,
    run queued recompiles, and return responses in request order.
    Deterministic — the differential sweep asserts sharded topologies
    answer byte-identically to [--shards 1]. *)
val handle_batch : t -> Proto.request list -> Proto.response list

(** [handle_batch] of a singleton. *)
val handle : t -> Proto.request -> Proto.response

(** {2 Socket server} *)

(** Serve on a unix-domain socket path until a [shutdown] request;
    binds (replacing any stale socket file), then enters the select
    loop described above.  Undecodable lines get structured error
    replies; a connection whose buffered line exceeds
    {!Proto.max_line} is answered with an error and closed.  Flights
    still in the registry when shutdown arrives are landed and their
    waiters answered before the socket is torn down. *)
val serve : ?shards:int -> Daemon.config -> socket:string -> unit

type server

(** Run {!serve} on a background thread (tests, traffic replay). *)
val spawn : ?shards:int -> Daemon.config -> socket:string -> server

(** Request shutdown over the socket and join the server thread. *)
val stop : server -> unit
