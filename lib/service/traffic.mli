(** Deterministic traffic replay against a live compile-service daemon
    ([bench/main.exe --traffic]).

    A {!Spec_stress.Srng}-seeded stream of mixed requests — cold and
    warm compiles across workloads, modes and source versions, profile
    reports whose evidence drifts (fresh training inputs) or goes
    stale (reports recorded against an edited source), and stats
    probes — is replayed over a real unix socket against a daemon
    spawned on a background thread.  The replay keeps a mirror of
    every unit's accumulated store and hard-fails ({!Divergence}) if
    any daemon-served compile differs from a direct in-process
    {!Spec_driver.Pipeline.compile_and_optimize} with the same
    evidence and knobs — byte-identical [Pp] text and vm execution
    output — or if a repeated cache key is ever served cold again.
    Per-request latency (p50/p99) and throughput go into the bench
    JSON's [service] section ([specpre-bench/5]). *)

exception Divergence of string

type cell = {
  t_seed : int;
  t_requests : int;            (** requests replayed *)
  t_units : int;               (** workload units in the mix *)
  t_cold : int;                (** compiles served cold (client-visible) *)
  t_warm : int;                (** compiles served from the cache *)
  t_joined : int;              (** single-flight joins (daemon counter) *)
  t_reports : int;             (** profile reports merged *)
  t_recompiles : int;          (** drift-triggered background recompiles *)
  t_errors : int;              (** daemon error counter (must be 0) *)
  t_divergences : int;         (** daemon-vs-offline mismatches (always 0:
                                   a mismatch raises {!Divergence}) *)
  t_p50_ms : float;
  t_p99_ms : float;
  t_wall_s : float;            (** replay wall time (setup excluded) *)
  t_rps : float;               (** requests / wall *)
}

(** Replay [requests] (default 1200, or 250 with [~quick:true])
    requests over [~quick:true] 3 / else all 8 workload units.
    Deterministic in [seed] (default 1): the request sequence and
    every program/output are reproducible; only the latency fields
    vary run to run. *)
val run_traffic_replay : ?quick:bool -> ?seed:int -> ?requests:int -> unit -> cell

(** The [service] section of the bench dump, as a pre-rendered JSON
    object ({!Spec_driver.Bench_json.dump}'s [?service]). *)
val to_json : cell -> string
