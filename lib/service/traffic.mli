(** Deterministic traffic replay against a live compile service
    ([bench/main.exe --traffic [--shards n]]).

    A {!Spec_stress.Srng}-seeded stream of mixed requests — cold and
    warm compiles across workloads, modes and source versions, profile
    reports whose evidence drifts (fresh training inputs) or goes
    stale (reports recorded against an edited source), and stats
    probes — is replayed over a real unix socket against a server
    spawned on a background thread: a single daemon core, or a
    {!Shard} topology of [shards] key-routed cores.  The replay keeps
    a mirror of every unit's accumulated store and hard-fails
    ({!Divergence}) if any served compile differs from a direct
    in-process {!Spec_driver.Pipeline.compile_and_optimize} with the
    same evidence and knobs — byte-identical [Pp] text and vm
    execution output — or if a repeated cache key is ever served cold
    again (which also pins routing determinism: a key bouncing between
    shards would recompile cold).  Per-request latency (p50/p99) and
    throughput go into the bench JSON's [service] section; sharded
    runs additionally fill the [shards] section with per-shard
    request/served/latency rows ([specpre-bench/7]). *)

exception Divergence of string

(** One shard's slice of a replay: client-side request count and
    latency percentiles, server-side served/FDO counters (from the
    ["shard<i>.*"] stats rows). *)
type shard_cell = {
  s_shard : int;
  s_requests : int;            (** requests the client routed here *)
  s_cold : int;
  s_warm : int;
  s_joined : int;
  s_parked : int;
  s_reports : int;
  s_recompiles : int;
  s_cache_hit_ppm : int;
  s_drift_ppm_max : int;
  s_p50_ms : float;
  s_p99_ms : float;
}

type cell = {
  t_seed : int;
  t_shards : int;              (** topology width (1 = single daemon) *)
  t_requests : int;            (** requests replayed *)
  t_units : int;               (** workload units in the mix *)
  t_cold : int;                (** compiles served cold (client-visible) *)
  t_warm : int;                (** compiles served from the cache *)
  t_joined : int;              (** same-wakeup single-flight joins *)
  t_parked : int;              (** cross-wakeup single-flight parks *)
  t_reports : int;             (** profile reports merged *)
  t_recompiles : int;          (** drift-triggered background recompiles *)
  t_errors : int;              (** server error counter (must be 0) *)
  t_divergences : int;         (** served-vs-offline mismatches (always 0:
                                   a mismatch raises {!Divergence}) *)
  t_p50_ms : float;
  t_p99_ms : float;
  t_wall_s : float;            (** replay wall time (setup excluded) *)
  t_rps : float;               (** requests / wall *)
  t_per_shard : shard_cell list;
}

(** Replay [requests] (default 1200, or 250 with [~quick:true])
    requests over [~quick:true] 3 / else all 8 workload units, against
    a [shards]-wide topology (default 1).  Deterministic in [seed]
    (default 1): the request sequence and every program/output are
    reproducible; only the latency fields vary run to run. *)
val run_traffic_replay :
  ?quick:bool -> ?seed:int -> ?requests:int -> ?shards:int -> unit -> cell

(** The [service] section of the bench dump, as a pre-rendered JSON
    object ({!Spec_driver.Bench_json.dump}'s [?service]). *)
val to_json : cell -> string

(** The [shards] section of the bench dump: topology-level latency and
    throughput plus one row per shard
    ({!Spec_driver.Bench_json.dump}'s [?shards]). *)
val shards_to_json : cell -> string
