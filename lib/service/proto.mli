(** Wire protocol ([specsvc/2]) of the compile service.

    [specsvc/2] added the [parked] served tag: a request that joined a
    compile already in flight from an {e earlier} select wakeup (the
    cross-wakeup single-flight registry), where [joined] means riding a
    compile submitted in the same wakeup.  [specsvc/1] lines are
    rejected like any other version mismatch.

    One request or response per line: space-separated tokens in the
    {!Spec_fdo.Textio} quoting discipline (quoted strings escape
    newlines, so multi-line payloads — sources, profile stores,
    optimized programs — travel inside a single line).  Every message
    leads with the version tag; decoding is total: any malformed,
    truncated, oversized or wrong-version line yields [Error _], never
    an exception, and the daemon answers it with a structured
    {!response.Error} reply instead of dying.  The codec round-trips
    exactly ([decode (encode m) = Ok m]); [test/test_service.ml]
    fuzzes this property. *)

val version : string

(** Hard ceiling on one encoded line (requests and responses), bytes.
    The daemon drops connections whose buffered line exceeds it, after
    replying with a structured error — an oversized request can delay
    the daemon but never wedge it. *)
val max_line : int

type compile_req = {
  cq_unit : string;          (** compilation-unit name (profile identity) *)
  cq_mode : string;          (** none | base | profile | heuristic | aggressive *)
  cq_rounds : int;           (** promotion rounds, as [Pipeline.optimize] *)
  cq_strength : bool;        (** strength reduction + LFTR *)
  cq_exec : bool;            (** also execute on the vm engine *)
  cq_src : string;           (** mini-C source text *)
}

type request =
  | Compile of compile_req
  | Report_profile of {
      rq_unit : string;
      rq_weight : float;     (** weight of this evidence at merge *)
      rq_store : string;     (** [specprof/1] store text *)
    }
  | Stats
  | Shutdown

(** How a compile request was satisfied. *)
type served =
  | Cold                     (** ran the optimization pipeline *)
  | Warm                     (** answered from the compile cache *)
  | Joined                   (** single-flight: rode a compile submitted in
                                 the same wakeup *)
  | Parked                   (** single-flight: parked on a compile already
                                 in flight from an earlier wakeup *)

type compile_reply = {
  cr_served : served;
  cr_key : string;           (** content-addressed cache key *)
  cr_digest : string;        (** profile-evidence digest, ["-"] if none *)
  cr_match_ppm : int;        (** stale-bind match rate in ppm (1000000 = all) *)
  cr_prog : string;          (** optimized program, [Pp] text *)
  cr_output : string;        (** vm execution output, [""] unless requested *)
}

type report_reply = {
  rr_runs : int;             (** training runs aggregated after the merge *)
  rr_digest : string;        (** store digest after the merge *)
  rr_drift : float;          (** {!Spec_fdo.Store.distance} from the snapshot *)
  rr_recompiled : bool;      (** drift crossed the threshold: artifact swapped *)
}

type response =
  | Compiled of compile_reply
  | Profiled of report_reply
  | Stats_reply of (string * int) list
  | Bye
  | Error of string

(** Encodings are single lines without the trailing newline. *)
val encode_request : request -> string

val decode_request : string -> (request, string) result
val encode_response : response -> string
val decode_response : string -> (response, string) result
