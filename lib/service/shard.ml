(* The shard router: N daemon cores behind one select loop, each
   owning a disjoint slice of the profile store and compile cache,
   with requests routed by key prefix and stats/shutdown fanned out.
   See shard.mli. *)

module Store = Spec_fdo.Store
module Cache = Spec_fdo.Cache

type t = {
  sh_cfg : Daemon.config;
  sh_n : int;
  sh_cores : Daemon.t array;
  mutable sh_requests : int;   (* router-terminated: stats/shutdown/bad *)
  mutable sh_errors : int;     (* undecodable lines *)
  mutable sh_stopped : bool;
}

let create cfg ~shards =
  if shards < 1 then invalid_arg "Shard.create: shards < 1";
  let cores =
    Array.init shards (fun i ->
        (* one core keeps the flat layout so [--shards 1] is exactly
           the old daemon on disk *)
        let dir =
          if shards = 1 then cfg.Daemon.sv_cache_dir
          else Cache.shard_dir cfg.Daemon.sv_cache_dir i
        in
        Daemon.create { cfg with Daemon.sv_cache_dir = dir })
  in
  { sh_cfg = cfg; sh_n = shards; sh_cores = cores;
    sh_requests = 0; sh_errors = 0; sh_stopped = false }

let shards t = t.sh_n
let core t i = t.sh_cores.(i)
let stopped t = t.sh_stopped

let log t fmt =
  if t.sh_cfg.Daemon.sv_verbose then
    Printf.eprintf ("speccc-serve: " ^^ fmt ^^ "\n%!")
  else Printf.ifprintf stderr fmt

(* ---- routing ---- *)

let shard_of t (req : Proto.request) : int option =
  match Daemon.route_of req with
  | Daemon.Rkey key -> Some (Cache.shard_of_key ~shards:t.sh_n key)
  | Daemon.Runit u -> Some (Store.shard_of_unit ~shards:t.sh_n u)
  | Daemon.Rall -> None

(* ---- aggregated stats ---- *)

(* Counters that sum across shards; [cache_hit_ppm] is re-derived from
   the summed hit/miss totals and [store_drift_ppm_max] is a max, so
   neither is summed. *)
let agg_max = [ "store_drift_ppm_max" ]
let agg_skip = [ "cache_hit_ppm" ]

let counters t =
  let per = Array.map Daemon.counters t.sh_cores in
  let sum name = Array.fold_left (fun a kvs -> a + List.assoc name kvs) 0 per in
  let maxv name =
    Array.fold_left (fun a kvs -> max a (List.assoc name kvs)) 0 per
  in
  let hits = sum "cache_hits" and misses = sum "cache_misses" in
  let hit_ppm =
    if hits + misses = 0 then 0 else hits * 1_000_000 / (hits + misses)
  in
  let aggregate =
    List.map
      (fun (name, _) ->
        if List.mem name agg_skip then (name, hit_ppm)
        else if List.mem name agg_max then (name, maxv name)
        else if name = "requests" then (name, sum name + t.sh_requests)
        else if name = "errors" then (name, sum name + t.sh_errors)
        else (name, sum name))
      per.(0)
  in
  let per_shard =
    Array.to_list per
    |> List.mapi (fun i kvs ->
           List.map (fun (k, v) -> (Printf.sprintf "shard%d.%s" i k, v)) kvs)
    |> List.concat
  in
  (("shards", t.sh_n) :: aggregate) @ per_shard

(* ---- deterministic facade (tests, differential sweeps) ---- *)

let handle_batch t reqs =
  Array.iter Daemon.begin_wakeup t.sh_cores;
  let n = List.length reqs in
  let out = Array.make n None in
  List.iteri
    (fun i req ->
      match shard_of t req with
      | None ->
        t.sh_requests <- t.sh_requests + 1;
        (match req with
         | Proto.Shutdown ->
           t.sh_stopped <- true;
           out.(i) <- Some Proto.Bye
         | _ -> out.(i) <- Some (Proto.Stats_reply (counters t)))
      | Some s -> (
        match Daemon.submit t.sh_cores.(s) ~id:i req with
        | Daemon.Immediate resp -> out.(i) <- Some resp
        | Daemon.Parked_on _ -> ()))
    reqs;
  Array.iter
    (fun core ->
      while Daemon.has_inflight core do
        List.iter
          (fun (id, resp) -> out.(id) <- Some resp)
          (Daemon.complete_one core)
      done;
      Daemon.quiesce core)
    t.sh_cores;
  Array.to_list out
  |> List.map (function
       | Some resp -> resp
       | None -> assert false (* every submission is answered above *))

let handle t req = List.hd (handle_batch t [ req ])

(* ------------------------------------------------------------------ *)
(* Socket server                                                       *)
(* ------------------------------------------------------------------ *)

type conn = {
  cn_fd : Unix.file_descr;
  cn_buf : Buffer.t;
  mutable cn_open : bool;
}

let write_all fd s =
  let n = String.length s in
  let pos = ref 0 in
  while !pos < n do
    pos := !pos + Unix.write_substring fd s !pos (n - !pos)
  done

let send conn resp =
  if conn.cn_open then
    try write_all conn.cn_fd (Proto.encode_response resp ^ "\n")
    with Unix.Unix_error _ ->
      conn.cn_open <- false;
      (try Unix.close conn.cn_fd with _ -> ())

let close_conn conn =
  if conn.cn_open then begin
    conn.cn_open <- false;
    try Unix.close conn.cn_fd with _ -> ()
  end

(* Pull every complete line out of a connection's buffer. *)
let take_lines conn =
  let s = Buffer.contents conn.cn_buf in
  let rec go start acc =
    match String.index_from_opt s start '\n' with
    | Some i -> go (i + 1) (String.sub s start (i - start) :: acc)
    | None ->
      Buffer.clear conn.cn_buf;
      Buffer.add_substring conn.cn_buf s start (String.length s - start);
      List.rev acc
  in
  go 0 []

let serve ?(shards = 1) cfg ~socket =
  let t = create cfg ~shards in
  (* a peer closing mid-write must surface as EPIPE, not kill us *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  (try Unix.unlink socket with Unix.Unix_error _ -> ());
  let srv = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind srv (Unix.ADDR_UNIX socket);
  Unix.listen srv 64;
  let conns : (Unix.file_descr, conn) Hashtbl.t = Hashtbl.create 16 in
  (* waiter id -> connection, for responses landed by complete_one;
     ids are globally unique so cores can share one table *)
  let waiters : (int, conn) Hashtbl.t = Hashtbl.create 16 in
  let next_id = ref 0 in
  let chunk = Bytes.create 65536 in
  let answer (id, resp) =
    match Hashtbl.find_opt waiters id with
    | Some conn ->
      Hashtbl.remove waiters id;
      send conn resp
    | None -> ()
  in
  let pending () = Array.exists Daemon.has_inflight t.sh_cores in
  log t "listening on %s (cache %s, %d shard%s)" socket
    t.sh_cfg.Daemon.sv_cache_dir shards (if shards = 1 then "" else "s");
  while not t.sh_stopped do
    let fds = srv :: Hashtbl.fold (fun fd _ acc -> fd :: acc) conns [] in
    (* poll (don't sleep) while compiles are in flight, so parked
       waiters are answered promptly and new same-key arrivals can
       still ride the flight *)
    let timeout = if pending () then 0.0 else 1.0 in
    match Unix.select fds [] [] timeout with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | readable, _, _ ->
      (* accept *)
      if List.mem srv readable then begin
        match Unix.accept srv with
        | fd, _ ->
          Hashtbl.replace conns fd
            { cn_fd = fd; cn_buf = Buffer.create 4096; cn_open = true }
        | exception Unix.Unix_error _ -> ()
      end;
      (* read what arrived; 0 bytes = peer closed *)
      let batch = ref [] in
      List.iter
        (fun fd ->
          if fd <> srv then
            match Hashtbl.find_opt conns fd with
            | None -> ()
            | Some conn -> (
              match Unix.read fd chunk 0 (Bytes.length chunk) with
              | 0 ->
                close_conn conn;
                Hashtbl.remove conns fd
              | n ->
                Buffer.add_subbytes conn.cn_buf chunk 0 n;
                if Buffer.length conn.cn_buf > Proto.max_line then begin
                  (* framing is unrecoverable: answer and drop *)
                  t.sh_requests <- t.sh_requests + 1;
                  t.sh_errors <- t.sh_errors + 1;
                  send conn
                    (Proto.Error
                       (Printf.sprintf "request exceeds %d bytes"
                          Proto.max_line));
                  close_conn conn;
                  Hashtbl.remove conns fd
                end
                else
                  List.iter
                    (fun line -> batch := (conn, line) :: !batch)
                    (take_lines conn)
              | exception Unix.Unix_error _ ->
                close_conn conn;
                Hashtbl.remove conns fd))
        readable;
      let batch = List.rev !batch in
      (* decode; undecodable lines answered immediately with a
         structured error, well-formed requests submitted to their
         owning shard — this wakeup's same-key requests join the
         creator, requests whose key is already in flight from an
         earlier wakeup park on it *)
      if batch <> [] then Array.iter Daemon.begin_wakeup t.sh_cores;
      List.iter
        (fun (conn, line) ->
          match Proto.decode_request line with
          | Error m ->
            t.sh_requests <- t.sh_requests + 1;
            t.sh_errors <- t.sh_errors + 1;
            send conn (Proto.Error m)
          | Ok req -> (
            match shard_of t req with
            | None ->
              t.sh_requests <- t.sh_requests + 1;
              (match req with
               | Proto.Shutdown ->
                 t.sh_stopped <- true;
                 send conn Proto.Bye
               | _ -> send conn (Proto.Stats_reply (counters t)))
            | Some s ->
              let id = !next_id in
              incr next_id;
              Hashtbl.replace waiters id conn;
              (match Daemon.submit t.sh_cores.(s) ~id req with
               | Daemon.Immediate resp -> answer (id, resp)
               | Daemon.Parked_on _ -> ())))
        batch;
      (* land at most one flight per core per wakeup: compiles overlap
         with accepting new requests, which is what lets a later
         wakeup's same-key request park instead of recompiling *)
      Array.iter
        (fun core ->
          if Daemon.has_inflight core then
            List.iter answer (Daemon.complete_one core)
          else Daemon.quiesce core)
        t.sh_cores
  done;
  (* answer stragglers parked behind the shutdown before closing *)
  Array.iter
    (fun core ->
      while Daemon.has_inflight core do
        List.iter answer (Daemon.complete_one core)
      done;
      Daemon.quiesce core)
    t.sh_cores;
  Hashtbl.iter (fun _ conn -> close_conn conn) conns;
  (try Unix.close srv with _ -> ());
  (try Unix.unlink socket with Unix.Unix_error _ -> ());
  log t "stopped"

type server = { s_thread : Thread.t; s_socket : string }

let spawn ?(shards = 1) cfg ~socket =
  { s_thread = Thread.create (fun () -> serve ~shards cfg ~socket) ();
    s_socket = socket }

let stop s =
  (match Client.connect s.s_socket with
   | Ok c ->
     (match Client.rpc c Proto.Shutdown with Ok _ | Error _ -> ());
     Client.close c
   | Error _ -> ());
  Thread.join s.s_thread
