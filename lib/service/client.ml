(* Blocking unix-socket client: one Textio-quoted line per message. *)

type t = {
  fd : Unix.file_descr;
  buf : Buffer.t;          (* bytes read past the last response line *)
  mutable alive : bool;
}

let connect ?(retries = 40) path =
  let rec go n =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> Ok { fd; buf = Buffer.create 4096; alive = true }
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with _ -> ());
      if n > 0 then begin
        (* the daemon may not have bound the socket yet *)
        Unix.sleepf 0.05;
        go (n - 1)
      end
      else Error ("connect " ^ path ^ ": " ^ Unix.error_message e)
  in
  go retries

let close t =
  if t.alive then begin
    t.alive <- false;
    try Unix.close t.fd with _ -> ()
  end

let write_all fd s =
  let n = String.length s in
  let pos = ref 0 in
  while !pos < n do
    pos := !pos + Unix.write_substring fd s !pos (n - !pos)
  done

(* Read until the buffer holds a newline; return the line before it. *)
let read_line t =
  let chunk = Bytes.create 65536 in
  let rec take () =
    let s = Buffer.contents t.buf in
    match String.index_opt s '\n' with
    | Some i ->
      Buffer.clear t.buf;
      Buffer.add_substring t.buf s (i + 1) (String.length s - i - 1);
      Ok (String.sub s 0 i)
    | None ->
      if String.length s > Proto.max_line then
        Error "response line too large"
      else begin
        match Unix.read t.fd chunk 0 (Bytes.length chunk) with
        | 0 -> Error "connection closed by daemon"
        | n ->
          Buffer.add_subbytes t.buf chunk 0 n;
          take ()
        | exception Unix.Unix_error (e, _, _) ->
          Error ("read: " ^ Unix.error_message e)
      end
  in
  take ()

let rpc t req =
  if not t.alive then Error "client closed"
  else
    match write_all t.fd (Proto.encode_request req ^ "\n") with
    | () -> (
      match read_line t with
      | Error _ as e -> e
      | Ok line -> Proto.decode_response line)
    | exception Unix.Unix_error (e, _, _) ->
      Error ("write: " ^ Unix.error_message e)

let with_client ?retries path f =
  match connect ?retries path with
  | Error _ as e -> e
  | Ok t ->
    let r = try Ok (f t) with e -> close t; raise e in
    close t;
    r
