(** The compile service daemon core: a deterministic state machine
    that serves optimized programs out of the content-addressed
    compile cache and closes the paper's FDO loop online.  No sockets
    here — the select-loop router (sharded, or [--shards 1]) lives in
    {!Shard}.

    {2 Request handling}

    [compile] requests are answered from {!Spec_fdo.Cache} when warm —
    including the pre-forced vm bytecode of a [specart/3] artifact —
    and otherwise run through {!Spec_driver.Pipeline.compile_and_optimize}
    (whose per-function portion fans out on the {!Spec_driver.Parpool}
    domain pool).  Requests for the same cache key are deduplicated
    through a single-flight registry that {e persists across select
    wakeups}: the first request for a key creates an in-flight entry,
    later same-key requests park on it — tagged [joined] when they
    arrive in the same wakeup as the creator, [parked] when they
    arrive in a later one — and all are answered when the one compile
    lands.  N clients asking for one key, across any number of
    wakeups, cost exactly one cold compile; once a flight completes
    the cache itself serves repeats warm.

    {2 The online FDO loop}

    [report-profile] requests merge evidence into the unit's
    accumulated {!Spec_fdo.Store} as
    [merge_weighted ~wa:lambda ~wb:weight] — exponential decay of old
    evidence when [lambda < 1], plain commutative merge (so report
    order cannot matter) when [lambda = 1].  When
    {!Spec_fdo.Store.distance} between the accumulated store and the
    snapshot the unit's current artifact was compiled against crosses
    [drift_threshold], the daemon recompiles the unit in the
    background (once the registry is quiet) and atomically swaps its
    current artifact.  Stale evidence is safe by construction:
    {!Spec_fdo.Store.bind} drops unmatched sites, so a report from an
    out-of-date source only forgoes speculation. *)

type config = {
  sv_cache_dir : string;        (** compile-cache directory *)
  sv_max_entries : int option;  (** cache LRU bound, [None] = unbounded *)
  sv_lambda : float;            (** decay of old evidence per report, in [0,1] *)
  sv_drift : float;             (** recompile when drift exceeds this *)
  sv_verbose : bool;            (** log requests to stderr *)
}

val default_config : cache_dir:string -> config

type t

val create : config -> t

(** {2 Synchronous facade}

    One wakeup's worth of requests, fully drained. *)

(** Handle one scheduling batch of requests; responses come back in
    request order.  Duplicate compile keys within the batch are
    compiled once (single-flight: one creator, the rest [joined]);
    keys already in flight from an earlier {!begin_wakeup} are ridden
    as [parked].  Drift-triggered recompiles queued by reports run
    after every flight of the batch has landed. *)
val handle_batch : t -> Proto.request list -> Proto.response list

(** [handle_batch] of a singleton. *)
val handle : t -> Proto.request -> Proto.response

(** {2 Incremental interface}

    What the socket router drives: submission and completion are
    decoupled, so same-key requests arriving between completions —
    i.e. in later select wakeups — park on the existing flight
    instead of compiling again. *)

(** Verdict of {!submit}: answered now, or parked on the in-flight
    compile of the returned cache key. *)
type submitted =
  | Immediate of Proto.response
  | Parked_on of string

(** Start a new wakeup (epoch).  Compile submissions after this point
    that join a flight created in an earlier wakeup are tagged
    [parked] rather than [joined]. *)
val begin_wakeup : t -> unit

(** Submit one request under a caller-chosen waiter id (returned with
    the response by {!complete_one}).  Reports, stats, shutdown and
    malformed requests are answered immediately; well-formed compiles
    always go through the registry. *)
val submit : t -> id:int -> Proto.request -> submitted

(** Whether any flight is pending. *)
val has_inflight : t -> bool

(** Land the oldest in-flight compile (creation order) and answer all
    of its waiters, in submission order: [(id, response)] for every
    waiter recorded by {!submit}.  [[]] when the registry is empty.
    The creator's [served] tag is [cold] or [warm] by how the compile
    was actually satisfied; joiners keep the [joined]/[parked] tag
    fixed at submission. *)
val complete_one : t -> (int * Proto.response) list

(** Run queued drift-triggered recompiles, provided the registry is
    empty (responses first, maintenance second). *)
val quiesce : t -> unit

(** {2 Routing}

    How the shard router partitions requests — exposed from the core
    so router and daemon can never disagree on key derivation. *)

type route =
  | Rkey of string   (** by content-addressed cache key (stateless modes) *)
  | Runit of string  (** by compilation unit (profile compiles, reports) *)
  | Rall             (** fan out to every shard (stats, shutdown) *)

(** The cache key of a compile request whose mode is a pure function
    of the request ([none]/[base]/[heuristic]/[aggressive]); [None]
    for [profile] (whose key depends on the unit's accumulated
    evidence) and unknown modes. *)
val static_key :
  mode:string -> rounds:int -> strength:bool -> string -> string option

val route_of : Proto.request -> route

(** {2 Introspection} *)

(** Monotonic counters: requests, cold, warm, joined, parked, reports,
    recompiles, errors, units, inflight, plus cache
    hit/miss/store/eviction/hit-ppm/length, [store_drift_ppm_max] —
    the worst per-unit drift from its compiled snapshot in ppm — and
    [store_invalid] — the number of unit stores failing
    {!Spec_fdo.Store.validate}, 0 on a healthy daemon. *)
val counters : t -> (string * int) list

(** True once a [shutdown] request was handled. *)
val stopped : t -> bool

val cache : t -> Spec_fdo.Cache.t

(** The unit's current artifact: set by profile-fed compiles and
    atomically swapped by drift-triggered background recompiles. *)
val current_artifact : t -> string -> Spec_driver.Pipeline.result option

(** Accumulated per-unit profile stores (concurrency tests assert
    these stay [validate]-clean after mixed-key storms). *)
val unit_stores : t -> (string * Spec_fdo.Store.t) list
