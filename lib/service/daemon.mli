(** The compile service: a long-running daemon that serves optimized
    programs out of the content-addressed compile cache and closes the
    paper's FDO loop online.

    {2 Request handling}

    [compile] requests are answered from {!Spec_fdo.Cache} when warm —
    including the pre-forced vm bytecode of a [specart/3] artifact —
    and otherwise run through {!Spec_driver.Pipeline.compile_and_optimize}
    (whose per-function portion fans out on the {!Spec_driver.Parpool}
    domain pool).  Requests for the same cache key are deduplicated
    single-flight: within one scheduling batch exactly one compile
    runs and every other requester joins its result; across batches
    the cache itself serves repeats warm.  Either way, N concurrent
    clients asking for one key cost one cold compile.

    {2 The online FDO loop}

    [report-profile] requests merge evidence into the unit's
    accumulated {!Spec_fdo.Store} as
    [merge_weighted ~wa:lambda ~wb:weight] — exponential decay of old
    evidence when [lambda < 1], plain commutative merge (so report
    order cannot matter) when [lambda = 1].  When
    {!Spec_fdo.Store.distance} between the accumulated store and the
    snapshot the unit's current artifact was compiled against crosses
    [drift_threshold], the daemon recompiles the unit in the
    background (after the triggering response is sent) and atomically
    swaps its current artifact.  Stale evidence is safe by
    construction: {!Spec_fdo.Store.bind} drops unmatched sites, so a
    report from an out-of-date source only forgoes speculation.

    The deterministic core ({!create}/{!handle_batch}) is pure state
    machine — no sockets — which is what the differential,
    single-flight and online-FDO tests drive.  {!serve} wraps it in a
    [Unix.select] loop on a unix-domain socket; {!spawn} runs that
    loop on a background thread for tests and the traffic-replay
    bench. *)

type config = {
  sv_cache_dir : string;        (** compile-cache directory *)
  sv_max_entries : int option;  (** cache LRU bound, [None] = unbounded *)
  sv_lambda : float;            (** decay of old evidence per report, in [0,1] *)
  sv_drift : float;             (** recompile when drift exceeds this *)
  sv_verbose : bool;            (** log requests to stderr *)
}

val default_config : cache_dir:string -> config

type t

val create : config -> t

(** Handle one scheduling batch of requests; responses come back in
    request order.  Duplicate compile keys within the batch are
    compiled once (single-flight); drift-triggered recompiles queued
    by reports run after every response of the batch is computed. *)
val handle_batch : t -> Proto.request list -> Proto.response list

(** [handle_batch] of a singleton. *)
val handle : t -> Proto.request -> Proto.response

(** Monotonic counters: requests, cold, warm, joined, reports,
    recompiles, errors, units, plus cache hit/miss/store/eviction and
    [store_invalid] — the number of unit stores failing
    {!Spec_fdo.Store.validate}, 0 on a healthy daemon. *)
val counters : t -> (string * int) list

(** True once a [shutdown] request was handled. *)
val stopped : t -> bool

val cache : t -> Spec_fdo.Cache.t

(** The unit's current artifact: set by profile-fed compiles and
    atomically swapped by drift-triggered background recompiles. *)
val current_artifact : t -> string -> Spec_driver.Pipeline.result option

(** Accumulated per-unit profile stores (concurrency tests assert
    these stay [validate]-clean after mixed-key storms). *)
val unit_stores : t -> (string * Spec_fdo.Store.t) list

(** {2 Socket server} *)

(** Serve on a unix-domain socket path until a [shutdown] request;
    binds (replacing any stale socket file), then enters a select
    loop.  All complete request lines available in one wakeup form one
    [handle_batch] — concurrent same-key requests dedupe
    single-flight.  Undecodable lines get structured error replies; a
    connection whose buffered line exceeds {!Proto.max_line} is
    answered with an error and closed. *)
val serve : config -> socket:string -> unit

type server

(** Run {!serve} on a background thread (tests, traffic replay). *)
val spawn : config -> socket:string -> server

(** Request shutdown over the socket and join the server thread. *)
val stop : server -> unit
