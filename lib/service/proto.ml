(* Wire protocol of the compile service: one Textio-quoted line per
   message, version-tagged.  See proto.mli. *)

module Textio = Spec_fdo.Textio

let version = "specsvc/2"
let max_line = 8 * 1024 * 1024

type compile_req = {
  cq_unit : string;
  cq_mode : string;
  cq_rounds : int;
  cq_strength : bool;
  cq_exec : bool;
  cq_src : string;
}

type request =
  | Compile of compile_req
  | Report_profile of {
      rq_unit : string;
      rq_weight : float;
      rq_store : string;
    }
  | Stats
  | Shutdown

type served = Cold | Warm | Joined | Parked

type compile_reply = {
  cr_served : served;
  cr_key : string;
  cr_digest : string;
  cr_match_ppm : int;
  cr_prog : string;
  cr_output : string;
}

type report_reply = {
  rr_runs : int;
  rr_digest : string;
  rr_drift : float;
  rr_recompiled : bool;
}

type response =
  | Compiled of compile_reply
  | Profiled of report_reply
  | Stats_reply of (string * int) list
  | Bye
  | Error of string

(* ---- encoding ---- *)

let q = Textio.quote
let b v = if v then "1" else "0"

let served_name = function
  | Cold -> "cold"
  | Warm -> "warm"
  | Joined -> "joined"
  | Parked -> "parked"

let encode_request = function
  | Compile c ->
    Printf.sprintf "%s compile %s %s %d %s %s %s" version (q c.cq_unit)
      (q c.cq_mode) c.cq_rounds (b c.cq_strength) (b c.cq_exec) (q c.cq_src)
  | Report_profile r ->
    Printf.sprintf "%s report-profile %s %h %s" version (q r.rq_unit)
      r.rq_weight (q r.rq_store)
  | Stats -> version ^ " stats"
  | Shutdown -> version ^ " shutdown"

let encode_response = function
  | Compiled r ->
    Printf.sprintf "%s compiled %s %s %s %d %s %s" version
      (served_name r.cr_served) (q r.cr_key) (q r.cr_digest) r.cr_match_ppm
      (q r.cr_prog) (q r.cr_output)
  | Profiled r ->
    Printf.sprintf "%s profiled %d %s %h %s" version r.rr_runs
      (q r.rr_digest) r.rr_drift (b r.rr_recompiled)
  | Stats_reply kvs ->
    let buf = Buffer.create 256 in
    Printf.bprintf buf "%s stats %d" version (List.length kvs);
    List.iter (fun (k, v) -> Printf.bprintf buf " %s %d" (q k) v) kvs;
    Buffer.contents buf
  | Bye -> version ^ " bye"
  | Error msg -> Printf.sprintf "%s error %s" version (q msg)

(* ---- decoding ---- *)

(* Total: every lexer failure (and any other exception the lexer could
   raise on adversarial input) becomes [Error _]. *)
let decode : type a.
    what:string -> (Textio.lexer -> a) -> string -> (a, string) result =
 fun ~what f line ->
  if String.length line > max_line then
    Error
      (Printf.sprintf "%s too large (%d bytes, limit %d)" what
         (String.length line) max_line)
  else
    try
      let lx = Textio.make line in
      let v = Textio.token lx in
      if v <> version then
        Error (Printf.sprintf "unsupported protocol version %S (want %s)" v version)
      else begin
        let r = f lx in
        if not (Textio.at_eof lx) then
          Textio.fail lx "trailing tokens after message";
        Ok r
      end
    with
    | Textio.Error msg -> Error msg
    | e -> Error (Printexc.to_string e)

let decode_request line =
  decode ~what:"request" (fun lx ->
      match Textio.token lx with
      | "compile" ->
        let cq_unit = Textio.token lx in
        let cq_mode = Textio.token lx in
        let cq_rounds = Textio.int_tok lx in
        let cq_strength = Textio.bool_tok lx in
        let cq_exec = Textio.bool_tok lx in
        let cq_src = Textio.token lx in
        Compile { cq_unit; cq_mode; cq_rounds; cq_strength; cq_exec; cq_src }
      | "report-profile" ->
        let rq_unit = Textio.token lx in
        let rq_weight = Textio.float_tok lx in
        let rq_store = Textio.token lx in
        Report_profile { rq_unit; rq_weight; rq_store }
      | "stats" -> Stats
      | "shutdown" -> Shutdown
      | t -> Textio.fail lx (Printf.sprintf "unknown request %S" t))
    line

let decode_response line =
  decode ~what:"response" (fun lx ->
      match Textio.token lx with
      | "compiled" ->
        let cr_served =
          match Textio.token lx with
          | "cold" -> Cold
          | "warm" -> Warm
          | "joined" -> Joined
          | "parked" -> Parked
          | t -> Textio.fail lx (Printf.sprintf "unknown served tag %S" t)
        in
        let cr_key = Textio.token lx in
        let cr_digest = Textio.token lx in
        let cr_match_ppm = Textio.int_tok lx in
        let cr_prog = Textio.token lx in
        let cr_output = Textio.token lx in
        Compiled { cr_served; cr_key; cr_digest; cr_match_ppm; cr_prog;
                   cr_output }
      | "profiled" ->
        let rr_runs = Textio.int_tok lx in
        let rr_digest = Textio.token lx in
        let rr_drift = Textio.float_tok lx in
        let rr_recompiled = Textio.bool_tok lx in
        Profiled { rr_runs; rr_digest; rr_drift; rr_recompiled }
      | "stats" ->
        let n = Textio.int_tok lx in
        if n < 0 || n > 10_000 then
          Textio.fail lx "stats: bad counter count";
        let kvs =
          List.init n (fun _ ->
              let k = Textio.token lx in
              let v = Textio.int_tok lx in
              (k, v))
        in
        Stats_reply kvs
      | "bye" -> Bye
      | "error" -> Error (Textio.token lx)
      | t -> Textio.fail lx (Printf.sprintf "unknown response %S" t))
    line
