(* The compile service daemon core: warm answers from the
   content-addressed cache, a cross-wakeup single-flight registry for
   cold compiles, and the online FDO loop (report -> decayed merge ->
   drift -> background recompile + swap).  The core is a deterministic
   state machine — no sockets; the socket router (including the
   single-shard case) lives in shard.ml.  See daemon.mli. *)

open Spec_driver
module Store = Spec_fdo.Store
module Cache = Spec_fdo.Cache

type config = {
  sv_cache_dir : string;
  sv_max_entries : int option;
  sv_lambda : float;
  sv_drift : float;
  sv_verbose : bool;
}

let default_config ~cache_dir =
  { sv_cache_dir = cache_dir;
    sv_max_entries = None;
    sv_lambda = 1.0;
    sv_drift = 0.25;
    sv_verbose = false }

(* Per-unit FDO state: accumulated evidence, the snapshot of it the
   current artifact was compiled against, and enough of the last
   compile request to rerun it when evidence drifts. *)
type unit_state = {
  mutable u_store : Store.t;
  mutable u_snapshot : Store.t;
  mutable u_src : string option;
  mutable u_rounds : int;
  mutable u_strength : bool;
  mutable u_current : Pipeline.result option;
  mutable u_pending : bool;          (* queued for background recompile *)
}

(* ---- compile plans ---- *)

type plan = {
  p_variant : Pipeline.variant;
  p_prof : Spec_prof.Profile.t option;   (* edge profile, profile mode only *)
  p_digest : string option;
  p_match_ppm : int;
  p_key : string;
}

(* ---- the single-flight registry ---- *)

(* A waiter's place in line: the creator runs the compile (and is
   served cold or warm depending on the cache); everyone else rides
   it — joined when they arrived in the same wakeup as the creator,
   parked when they arrived in a later one. *)
type waiter_kind = Wcreator | Wjoined | Wparked

type waiter = {
  w_id : int;
  w_kind : waiter_kind;
  w_exec : bool;
}

(* One in-flight compile key.  Created at submission, completed by
   {!complete_one}; persists across wakeups, so same-key requests from
   any number of batches cost exactly one compile.  The plan (and, for
   profile mode, the evidence snapshot it bound) is fixed at creation:
   reports merged while the flight is pending do not retroactively
   change what the waiters were promised. *)
type flight = {
  fl_plan : plan;                    (* p_key is the registry key *)
  fl_unit : string;
  fl_rounds : int;
  fl_strength : bool;
  fl_src : string;
  fl_epoch : int;                    (* wakeup that created the flight *)
  fl_snapshot : Store.t;             (* unit evidence bound by the plan *)
  mutable fl_waiters : waiter list;  (* reversed; creator is last *)
}

type t = {
  cfg : config;
  tcache : Cache.t;
  units : (string, unit_state) Hashtbl.t;
  inflight : (string, flight) Hashtbl.t;
  flight_q : string Queue.t;         (* completion order = creation order *)
  mutable epoch : int;               (* current wakeup *)
  mutable recompile_q : string list; (* reversed queue of unit names *)
  mutable t_stopped : bool;
  mutable c_requests : int;
  mutable c_cold : int;
  mutable c_warm : int;
  mutable c_joined : int;
  mutable c_parked : int;
  mutable c_reports : int;
  mutable c_recompiles : int;
  mutable c_errors : int;
}

let create cfg =
  if cfg.sv_lambda < 0. || cfg.sv_lambda > 1. then
    invalid_arg "Daemon.create: lambda must be in [0, 1]";
  { cfg;
    tcache = Cache.create ?max_entries:cfg.sv_max_entries cfg.sv_cache_dir;
    units = Hashtbl.create 16;
    inflight = Hashtbl.create 16;
    flight_q = Queue.create ();
    epoch = 0;
    recompile_q = [];
    t_stopped = false;
    c_requests = 0; c_cold = 0; c_warm = 0; c_joined = 0; c_parked = 0;
    c_reports = 0; c_recompiles = 0; c_errors = 0 }

let stopped t = t.t_stopped
let cache t = t.tcache

let unit_state t name =
  match Hashtbl.find_opt t.units name with
  | Some u -> u
  | None ->
    let u =
      { u_store = Store.empty; u_snapshot = Store.empty; u_src = None;
        u_rounds = 3; u_strength = true; u_current = None;
        u_pending = false }
    in
    Hashtbl.add t.units name u;
    u

let current_artifact t name =
  match Hashtbl.find_opt t.units name with
  | Some u -> u.u_current
  | None -> None

let unit_stores t =
  Hashtbl.fold (fun name u acc -> (name, u.u_store) :: acc) t.units []
  |> List.sort compare

let counters t =
  let cs = Cache.stats t.tcache in
  let invalid =
    Hashtbl.fold
      (fun _ u n ->
        match Store.validate u.u_store with Ok () -> n | Error _ -> n + 1)
      t.units 0
  in
  let drift_ppm_max =
    Hashtbl.fold
      (fun _ u m ->
        max m
          (int_of_float
             (Store.distance u.u_snapshot u.u_store *. 1_000_000. +. 0.5)))
      t.units 0
  in
  let lookups = cs.Cache.hits + cs.Cache.misses in
  let hit_ppm =
    if lookups = 0 then 0 else cs.Cache.hits * 1_000_000 / lookups
  in
  [ "requests", t.c_requests;
    "cold", t.c_cold;
    "warm", t.c_warm;
    "joined", t.c_joined;
    "parked", t.c_parked;
    "reports", t.c_reports;
    "recompiles", t.c_recompiles;
    "errors", t.c_errors;
    "units", Hashtbl.length t.units;
    "inflight", Hashtbl.length t.inflight;
    "cache_hits", cs.Cache.hits;
    "cache_misses", cs.Cache.misses;
    "cache_stores", cs.Cache.stores;
    "cache_evictions", cs.Cache.evictions;
    "cache_hit_ppm", hit_ppm;
    "cache_length", Cache.length t.tcache;
    "store_drift_ppm_max", drift_ppm_max;
    "store_invalid", invalid ]

let ppm_of_rate r = int_of_float (r *. 1_000_000. +. 0.5)

(* Resolve a compile request against the unit's accumulated evidence.
   Profile mode binds the store to the freshly lowered source —
   exactly what `speccc --profile-in` does — so stale evidence drops
   sites instead of poisoning the compile. *)
let plan_of t ~unit_name ~mode ~rounds ~strength src =
  let finish variant prof digest match_ppm =
    let config =
      Spec_ssapre.Ssapre.default_config (Pipeline.mode_of_variant variant)
    in
    let key =
      Pipeline.cache_key ~rounds ~strength ~deopt:false ~config ~variant
        ~edge_profile:(prof <> None) ~profile_digest:digest src
    in
    Ok { p_variant = variant; p_prof = prof; p_digest = digest;
         p_match_ppm = match_ppm; p_key = key }
  in
  match mode with
  | "none" -> finish Pipeline.Noopt None None 1_000_000
  | "base" -> finish Pipeline.Base None None 1_000_000
  | "heuristic" -> finish Pipeline.Spec_heuristic None None 1_000_000
  | "aggressive" -> finish Pipeline.Aggressive None None 1_000_000
  | "profile" ->
    let u = unit_state t unit_name in
    (match Spec_ir.Lower.compile src with
     | prog0 ->
       let prof, mr = Store.bind u.u_store prog0 in
       finish (Pipeline.Spec_profile prof) (Some prof)
         (Some (Store.digest u.u_store))
         (ppm_of_rate (Store.match_rate mr))
     | exception e ->
       Error (Printf.sprintf "frontend: %s" (Printexc.to_string e)))
  | m -> Error (Printf.sprintf "unknown mode %S" m)

(* The routing key of a request, before any shard-local state is
   consulted — what the shard router partitions on.  Non-profile
   compile modes are pure functions of the request, so they route by
   their full content-addressed cache key; profile compiles and
   reports depend on (and mutate) the unit's accumulated store, so
   they route by unit; stats and shutdown fan out. *)
type route =
  | Rkey of string
  | Runit of string
  | Rall

let static_key ~mode ~rounds ~strength src =
  let finish variant =
    let config =
      Spec_ssapre.Ssapre.default_config (Pipeline.mode_of_variant variant)
    in
    Some
      (Pipeline.cache_key ~rounds ~strength ~deopt:false ~config ~variant
         ~edge_profile:false ~profile_digest:None src)
  in
  match mode with
  | "none" -> finish Pipeline.Noopt
  | "base" -> finish Pipeline.Base
  | "heuristic" -> finish Pipeline.Spec_heuristic
  | "aggressive" -> finish Pipeline.Aggressive
  | _ -> None

let route_of (req : Proto.request) : route =
  match req with
  | Proto.Compile c ->
    (match
       static_key ~mode:c.Proto.cq_mode ~rounds:c.Proto.cq_rounds
         ~strength:c.Proto.cq_strength c.Proto.cq_src
     with
     | Some key -> Rkey key
     | None -> Runit c.Proto.cq_unit)
  | Proto.Report_profile { rq_unit; _ } -> Runit rq_unit
  | Proto.Stats | Proto.Shutdown -> Rall

let run_compile t ~rounds ~strength ~(plan : plan) src =
  match plan.p_prof with
  | Some prof ->
    Pipeline.compile_and_optimize ~rounds ~strength
      ~edge_profile:(Some prof) ~cache:t.tcache
      ?profile_digest:plan.p_digest src plan.p_variant
  | None ->
    Pipeline.compile_and_optimize ~rounds ~strength ~cache:t.tcache src
      plan.p_variant

let vm_output (r : Pipeline.result) =
  match Spec_prof.Vm.run_program (Lazy.force r.Pipeline.vm) with
  | res -> res.Spec_prof.Interp.output
  | exception Spec_prof.Interp.Runtime_error m -> "!runtime error: " ^ m

let log t fmt =
  if t.cfg.sv_verbose then Printf.eprintf ("speccc-serve: " ^^ fmt ^^ "\n%!")
  else Printf.ifprintf stderr fmt

(* ---- request submission ---- *)

type submitted =
  | Immediate of Proto.response
  | Parked_on of string

let begin_wakeup t = t.epoch <- t.epoch + 1

let has_inflight t = not (Queue.is_empty t.flight_q)

let do_report t ~unit_name ~weight store_text =
  if not (Float.is_finite weight) || weight < 0. then begin
    t.c_errors <- t.c_errors + 1;
    Proto.Error "report-profile: weight must be finite and non-negative"
  end
  else
    match Store.read store_text with
    | Error m ->
      t.c_errors <- t.c_errors + 1;
      Proto.Error ("report-profile: " ^ m)
    | Ok report ->
      let u = unit_state t unit_name in
      u.u_store <-
        Store.merge_weighted ~wa:t.cfg.sv_lambda ~wb:weight u.u_store report;
      t.c_reports <- t.c_reports + 1;
      let drift = Store.distance u.u_snapshot u.u_store in
      let recompile =
        drift > t.cfg.sv_drift && u.u_src <> None && not u.u_pending
      in
      if recompile then begin
        u.u_pending <- true;
        t.recompile_q <- unit_name :: t.recompile_q
      end;
      log t "report %s: runs=%d drift=%.3f%s" unit_name u.u_store.Store.runs
        drift (if recompile then " -> recompile" else "");
      Proto.Profiled
        { Proto.rr_runs = u.u_store.Store.runs;
          rr_digest = Store.digest u.u_store;
          rr_drift = drift;
          rr_recompiled = recompile || u.u_pending }

(* Submit one request under the caller-chosen waiter [id].  Reports,
   stats, shutdown and malformed compiles are answered immediately;
   every well-formed compile goes through the single-flight registry:
   the first request for a key creates the flight (and will be served
   cold or warm when it completes), later ones ride it — [joined]
   within the creating wakeup, [parked] across wakeups. *)
let submit t ~id (req : Proto.request) : submitted =
  t.c_requests <- t.c_requests + 1;
  match req with
  | Proto.Report_profile { rq_unit; rq_weight; rq_store } ->
    Immediate (do_report t ~unit_name:rq_unit ~weight:rq_weight rq_store)
  | Proto.Stats -> Immediate (Proto.Stats_reply (counters t))
  | Proto.Shutdown ->
    t.t_stopped <- true;
    Immediate Proto.Bye
  | Proto.Compile c -> (
    match
      plan_of t ~unit_name:c.Proto.cq_unit ~mode:c.Proto.cq_mode
        ~rounds:c.Proto.cq_rounds ~strength:c.Proto.cq_strength
        c.Proto.cq_src
    with
    | Error m ->
      t.c_errors <- t.c_errors + 1;
      Immediate (Proto.Error m)
    | Ok plan ->
      (* Only profile-mode compiles touch unit FDO state: stateless
         modes route by cache key in the sharded topology, so letting
         them record unit sources would scatter a unit's state across
         key-routed cores and make [--shards n] diverge from
         [--shards 1]. *)
      let snapshot =
        if c.Proto.cq_mode = "profile" then begin
          let u = unit_state t c.Proto.cq_unit in
          u.u_src <- Some c.Proto.cq_src;
          u.u_rounds <- c.Proto.cq_rounds;
          u.u_strength <- c.Proto.cq_strength;
          u.u_store
        end
        else Store.empty
      in
      (match Hashtbl.find_opt t.inflight plan.p_key with
       | Some fl ->
         let kind =
           if fl.fl_epoch = t.epoch then begin
             t.c_joined <- t.c_joined + 1;
             Wjoined
           end
           else begin
             t.c_parked <- t.c_parked + 1;
             Wparked
           end
         in
         fl.fl_waiters <-
           { w_id = id; w_kind = kind; w_exec = c.Proto.cq_exec }
           :: fl.fl_waiters;
         log t "compile %s %s: %s in-flight key=%s" c.Proto.cq_unit
           c.Proto.cq_mode
           (match kind with Wjoined -> "joined" | _ -> "parked")
           plan.p_key;
         Parked_on plan.p_key
       | None ->
         let fl =
           { fl_plan = plan;
             fl_unit = c.Proto.cq_unit;
             fl_rounds = c.Proto.cq_rounds;
             fl_strength = c.Proto.cq_strength;
             fl_src = c.Proto.cq_src;
             fl_epoch = t.epoch;
             fl_snapshot = snapshot;
             fl_waiters =
               [ { w_id = id; w_kind = Wcreator; w_exec = c.Proto.cq_exec } ]
           }
         in
         Hashtbl.add t.inflight plan.p_key fl;
         Queue.add plan.p_key t.flight_q;
         Parked_on plan.p_key))

(* Drift-triggered background recompiles: run once the registry is
   empty (after every waiter of the wakeup is answered), through the
   same cache (the new evidence digest makes a new key, so this is the
   cold compile that future warm requests for the unit's profile
   variant will hit).  The swap of the unit's current artifact is a
   single mutation — requests never observe a half-updated unit. *)
let drain_recompiles t =
  let q = List.rev t.recompile_q in
  t.recompile_q <- [];
  List.iter
    (fun name ->
      let u = unit_state t name in
      u.u_pending <- false;
      match u.u_src with
      | None -> ()
      | Some src ->
        (match
           plan_of t ~unit_name:name ~mode:"profile" ~rounds:u.u_rounds
             ~strength:u.u_strength src
         with
         | Error m -> log t "recompile %s failed: %s" name m
         | Ok plan ->
           let r =
             run_compile t ~rounds:u.u_rounds ~strength:u.u_strength ~plan
               src
           in
           u.u_current <- Some r;
           u.u_snapshot <- u.u_store;
           t.c_recompiles <- t.c_recompiles + 1;
           log t "recompile %s: key=%s from_cache=%b" name plan.p_key
             r.Pipeline.from_cache))
    q

let quiesce t = if not (has_inflight t) then drain_recompiles t

(* Land the oldest in-flight compile and answer all of its waiters, in
   submission order.  The creator's tag records how the compile was
   actually satisfied (cold pipeline run or warm cache hit); joiners
   keep the joined/parked tag fixed at submission. *)
let complete_one t : (int * Proto.response) list =
  match Queue.take_opt t.flight_q with
  | None -> []
  | Some key ->
    let fl =
      match Hashtbl.find_opt t.inflight key with
      | Some fl -> fl
      | None -> assert false (* queue and registry are one-to-one *)
    in
    Hashtbl.remove t.inflight key;
    let r =
      run_compile t ~rounds:fl.fl_rounds ~strength:fl.fl_strength
        ~plan:fl.fl_plan fl.fl_src
    in
    (* a profile-fed compile is the point the artifact catches up with
       the evidence its plan bound: reset the drift baseline to the
       snapshot fixed at submission *)
    (match fl.fl_plan.p_variant with
     | Pipeline.Spec_profile _ ->
       let u = unit_state t fl.fl_unit in
       u.u_current <- Some r;
       u.u_snapshot <- fl.fl_snapshot
     | _ -> ());
    let creator_tag =
      if r.Pipeline.from_cache then begin
        t.c_warm <- t.c_warm + 1;
        Proto.Warm
      end
      else begin
        t.c_cold <- t.c_cold + 1;
        Proto.Cold
      end
    in
    log t "compile %s: %s key=%s waiters=%d" fl.fl_unit
      (match creator_tag with Proto.Cold -> "cold" | _ -> "warm")
      key
      (List.length fl.fl_waiters);
    let prog_text = Spec_ir.Pp.prog_to_string r.Pipeline.prog in
    let out = lazy (vm_output r) in
    let plan = fl.fl_plan in
    List.rev_map
      (fun w ->
        let served =
          match w.w_kind with
          | Wcreator -> creator_tag
          | Wjoined -> Proto.Joined
          | Wparked -> Proto.Parked
        in
        ( w.w_id,
          Proto.Compiled
            { Proto.cr_served = served;
              cr_key = plan.p_key;
              cr_digest =
                (match plan.p_digest with Some d -> d | None -> "-");
              cr_match_ppm = plan.p_match_ppm;
              cr_prog = prog_text;
              cr_output = (if w.w_exec then Lazy.force out else "") } ))
      fl.fl_waiters

(* ---- the synchronous facade ---- *)

(* One wakeup's worth of requests, fully drained: submit everything,
   land every flight, run queued recompiles, and hand the responses
   back in request order.  Same-key requests within the batch dedupe
   as creator + joined; the parked tag only appears when wakeups are
   interleaved by the caller (the socket router, or the registry
   tests) via submit/complete_one directly. *)
let handle_batch t reqs =
  begin_wakeup t;
  let n = List.length reqs in
  let out = Array.make n None in
  List.iteri
    (fun i req ->
      match submit t ~id:i req with
      | Immediate resp -> out.(i) <- Some resp
      | Parked_on _ -> ())
    reqs;
  while has_inflight t do
    List.iter (fun (id, resp) -> out.(id) <- Some resp) (complete_one t)
  done;
  drain_recompiles t;
  Array.to_list out
  |> List.map (function
       | Some resp -> resp
       | None -> assert false (* every waiter was answered above *))

let handle t req = List.hd (handle_batch t [ req ])
