(* The compile service daemon: warm answers from the content-addressed
   cache, single-flight cold compiles, and the online FDO loop
   (report -> decayed merge -> drift -> background recompile + swap).
   See daemon.mli for the architecture. *)

open Spec_driver
module Store = Spec_fdo.Store
module Cache = Spec_fdo.Cache

type config = {
  sv_cache_dir : string;
  sv_max_entries : int option;
  sv_lambda : float;
  sv_drift : float;
  sv_verbose : bool;
}

let default_config ~cache_dir =
  { sv_cache_dir = cache_dir;
    sv_max_entries = None;
    sv_lambda = 1.0;
    sv_drift = 0.25;
    sv_verbose = false }

(* Per-unit FDO state: accumulated evidence, the snapshot of it the
   current artifact was compiled against, and enough of the last
   compile request to rerun it when evidence drifts. *)
type unit_state = {
  mutable u_store : Store.t;
  mutable u_snapshot : Store.t;
  mutable u_src : string option;
  mutable u_rounds : int;
  mutable u_strength : bool;
  mutable u_current : Pipeline.result option;
  mutable u_pending : bool;          (* queued for background recompile *)
}

type t = {
  cfg : config;
  tcache : Cache.t;
  units : (string, unit_state) Hashtbl.t;
  mutable recompile_q : string list; (* reversed queue of unit names *)
  mutable t_stopped : bool;
  mutable c_requests : int;
  mutable c_cold : int;
  mutable c_warm : int;
  mutable c_joined : int;
  mutable c_reports : int;
  mutable c_recompiles : int;
  mutable c_errors : int;
}

let create cfg =
  if cfg.sv_lambda < 0. || cfg.sv_lambda > 1. then
    invalid_arg "Daemon.create: lambda must be in [0, 1]";
  { cfg;
    tcache = Cache.create ?max_entries:cfg.sv_max_entries cfg.sv_cache_dir;
    units = Hashtbl.create 16;
    recompile_q = [];
    t_stopped = false;
    c_requests = 0; c_cold = 0; c_warm = 0; c_joined = 0;
    c_reports = 0; c_recompiles = 0; c_errors = 0 }

let stopped t = t.t_stopped
let cache t = t.tcache

let unit_state t name =
  match Hashtbl.find_opt t.units name with
  | Some u -> u
  | None ->
    let u =
      { u_store = Store.empty; u_snapshot = Store.empty; u_src = None;
        u_rounds = 3; u_strength = true; u_current = None;
        u_pending = false }
    in
    Hashtbl.add t.units name u;
    u

let current_artifact t name =
  match Hashtbl.find_opt t.units name with
  | Some u -> u.u_current
  | None -> None

let unit_stores t =
  Hashtbl.fold (fun name u acc -> (name, u.u_store) :: acc) t.units []
  |> List.sort compare

let counters t =
  let cs = Cache.stats t.tcache in
  let invalid =
    Hashtbl.fold
      (fun _ u n ->
        match Store.validate u.u_store with Ok () -> n | Error _ -> n + 1)
      t.units 0
  in
  [ "requests", t.c_requests;
    "cold", t.c_cold;
    "warm", t.c_warm;
    "joined", t.c_joined;
    "reports", t.c_reports;
    "recompiles", t.c_recompiles;
    "errors", t.c_errors;
    "units", Hashtbl.length t.units;
    "cache_hits", cs.Cache.hits;
    "cache_misses", cs.Cache.misses;
    "cache_stores", cs.Cache.stores;
    "cache_evictions", cs.Cache.evictions;
    "cache_length", Cache.length t.tcache;
    "store_invalid", invalid ]

(* ---- compile plans ---- *)

type plan = {
  p_variant : Pipeline.variant;
  p_prof : Spec_prof.Profile.t option;   (* edge profile, profile mode only *)
  p_digest : string option;
  p_match_ppm : int;
  p_key : string;
}

let ppm_of_rate r = int_of_float (r *. 1_000_000. +. 0.5)

(* Resolve a compile request against the unit's accumulated evidence.
   Profile mode binds the store to the freshly lowered source —
   exactly what `speccc --profile-in` does — so stale evidence drops
   sites instead of poisoning the compile. *)
let plan_of t ~unit_name ~mode ~rounds ~strength src =
  let finish variant prof digest match_ppm =
    let config =
      Spec_ssapre.Ssapre.default_config (Pipeline.mode_of_variant variant)
    in
    let key =
      Pipeline.cache_key ~rounds ~strength ~deopt:false ~config ~variant
        ~edge_profile:(prof <> None) ~profile_digest:digest src
    in
    Ok { p_variant = variant; p_prof = prof; p_digest = digest;
         p_match_ppm = match_ppm; p_key = key }
  in
  match mode with
  | "none" -> finish Pipeline.Noopt None None 1_000_000
  | "base" -> finish Pipeline.Base None None 1_000_000
  | "heuristic" -> finish Pipeline.Spec_heuristic None None 1_000_000
  | "aggressive" -> finish Pipeline.Aggressive None None 1_000_000
  | "profile" ->
    let u = unit_state t unit_name in
    (match Spec_ir.Lower.compile src with
     | prog0 ->
       let prof, mr = Store.bind u.u_store prog0 in
       finish (Pipeline.Spec_profile prof) (Some prof)
         (Some (Store.digest u.u_store))
         (ppm_of_rate (Store.match_rate mr))
     | exception e ->
       Error (Printf.sprintf "frontend: %s" (Printexc.to_string e)))
  | m -> Error (Printf.sprintf "unknown mode %S" m)

let run_compile t ~rounds ~strength ~(plan : plan) src =
  match plan.p_prof with
  | Some prof ->
    Pipeline.compile_and_optimize ~rounds ~strength
      ~edge_profile:(Some prof) ~cache:t.tcache
      ?profile_digest:plan.p_digest src plan.p_variant
  | None ->
    Pipeline.compile_and_optimize ~rounds ~strength ~cache:t.tcache src
      plan.p_variant

let vm_output (r : Pipeline.result) =
  match Spec_prof.Vm.run_program (Lazy.force r.Pipeline.vm) with
  | res -> res.Spec_prof.Interp.output
  | exception Spec_prof.Interp.Runtime_error m -> "!runtime error: " ^ m

let log t fmt =
  if t.cfg.sv_verbose then Printf.eprintf ("speccc-serve: " ^^ fmt ^^ "\n%!")
  else Printf.ifprintf stderr fmt

(* ---- request dispatch ---- *)

let do_compile t memo (c : Proto.compile_req) =
  match
    plan_of t ~unit_name:c.Proto.cq_unit ~mode:c.Proto.cq_mode
      ~rounds:c.Proto.cq_rounds ~strength:c.Proto.cq_strength c.Proto.cq_src
  with
  | Error m ->
    t.c_errors <- t.c_errors + 1;
    Proto.Error m
  | Ok plan ->
    let u = unit_state t c.Proto.cq_unit in
    u.u_src <- Some c.Proto.cq_src;
    u.u_rounds <- c.Proto.cq_rounds;
    u.u_strength <- c.Proto.cq_strength;
    let result, served =
      match Hashtbl.find_opt memo plan.p_key with
      | Some r ->
        t.c_joined <- t.c_joined + 1;
        (r, Proto.Joined)
      | None ->
        let r =
          run_compile t ~rounds:c.Proto.cq_rounds
            ~strength:c.Proto.cq_strength ~plan c.Proto.cq_src
        in
        Hashtbl.replace memo plan.p_key r;
        if r.Pipeline.from_cache then begin
          t.c_warm <- t.c_warm + 1;
          (r, Proto.Warm)
        end
        else begin
          t.c_cold <- t.c_cold + 1;
          (r, Proto.Cold)
        end
    in
    (* a profile-fed compile is the point the artifact catches up with
       the accumulated evidence: reset the drift baseline *)
    (match plan.p_variant with
     | Pipeline.Spec_profile _ ->
       u.u_current <- Some result;
       u.u_snapshot <- u.u_store
     | _ -> ());
    log t "compile %s %s: %s key=%s" c.Proto.cq_unit c.Proto.cq_mode
      (match served with
       | Proto.Cold -> "cold"
       | Proto.Warm -> "warm"
       | Proto.Joined -> "joined")
      plan.p_key;
    Proto.Compiled
      { Proto.cr_served = served;
        cr_key = plan.p_key;
        cr_digest = (match plan.p_digest with Some d -> d | None -> "-");
        cr_match_ppm = plan.p_match_ppm;
        cr_prog = Spec_ir.Pp.prog_to_string result.Pipeline.prog;
        cr_output = (if c.Proto.cq_exec then vm_output result else "") }

let do_report t ~unit_name ~weight store_text =
  if not (Float.is_finite weight) || weight < 0. then begin
    t.c_errors <- t.c_errors + 1;
    Proto.Error "report-profile: weight must be finite and non-negative"
  end
  else
    match Store.read store_text with
    | Error m ->
      t.c_errors <- t.c_errors + 1;
      Proto.Error ("report-profile: " ^ m)
    | Ok report ->
      let u = unit_state t unit_name in
      u.u_store <-
        Store.merge_weighted ~wa:t.cfg.sv_lambda ~wb:weight u.u_store report;
      t.c_reports <- t.c_reports + 1;
      let drift = Store.distance u.u_snapshot u.u_store in
      let recompile =
        drift > t.cfg.sv_drift && u.u_src <> None && not u.u_pending
      in
      if recompile then begin
        u.u_pending <- true;
        t.recompile_q <- unit_name :: t.recompile_q
      end;
      log t "report %s: runs=%d drift=%.3f%s" unit_name u.u_store.Store.runs
        drift (if recompile then " -> recompile" else "");
      Proto.Profiled
        { Proto.rr_runs = u.u_store.Store.runs;
          rr_digest = Store.digest u.u_store;
          rr_drift = drift;
          rr_recompiled = recompile || u.u_pending }

(* Drift-triggered background recompiles: run after every response of
   the batch is computed, through the same cache (the new evidence
   digest makes a new key, so this is the cold compile that future
   warm requests for the unit's profile variant will hit).  The swap
   of the unit's current artifact is a single mutation — requests
   never observe a half-updated unit. *)
let drain_recompiles t =
  let q = List.rev t.recompile_q in
  t.recompile_q <- [];
  List.iter
    (fun name ->
      let u = unit_state t name in
      u.u_pending <- false;
      match u.u_src with
      | None -> ()
      | Some src ->
        (match
           plan_of t ~unit_name:name ~mode:"profile" ~rounds:u.u_rounds
             ~strength:u.u_strength src
         with
         | Error m -> log t "recompile %s failed: %s" name m
         | Ok plan ->
           let r =
             run_compile t ~rounds:u.u_rounds ~strength:u.u_strength ~plan
               src
           in
           u.u_current <- Some r;
           u.u_snapshot <- u.u_store;
           t.c_recompiles <- t.c_recompiles + 1;
           log t "recompile %s: key=%s from_cache=%b" name plan.p_key
             r.Pipeline.from_cache))
    q

let dispatch t memo (req : Proto.request) : Proto.response =
  t.c_requests <- t.c_requests + 1;
  match req with
  | Proto.Compile c -> do_compile t memo c
  | Proto.Report_profile { rq_unit; rq_weight; rq_store } ->
    do_report t ~unit_name:rq_unit ~weight:rq_weight rq_store
  | Proto.Stats -> Proto.Stats_reply (counters t)
  | Proto.Shutdown ->
    t.t_stopped <- true;
    Proto.Bye

let handle_batch t reqs =
  let memo = Hashtbl.create 7 in
  let resps = List.map (dispatch t memo) reqs in
  drain_recompiles t;
  resps

let handle t req = List.hd (handle_batch t [ req ])

(* ------------------------------------------------------------------ *)
(* Socket server                                                       *)
(* ------------------------------------------------------------------ *)

type conn = {
  cn_fd : Unix.file_descr;
  cn_buf : Buffer.t;
  mutable cn_open : bool;
}

let write_all fd s =
  let n = String.length s in
  let pos = ref 0 in
  while !pos < n do
    pos := !pos + Unix.write_substring fd s !pos (n - !pos)
  done

let send conn resp =
  if conn.cn_open then
    try write_all conn.cn_fd (Proto.encode_response resp ^ "\n")
    with Unix.Unix_error _ ->
      conn.cn_open <- false;
      (try Unix.close conn.cn_fd with _ -> ())

let close_conn conn =
  if conn.cn_open then begin
    conn.cn_open <- false;
    try Unix.close conn.cn_fd with _ -> ()
  end

(* Pull every complete line out of a connection's buffer. *)
let take_lines conn =
  let s = Buffer.contents conn.cn_buf in
  let rec go start acc =
    match String.index_from_opt s start '\n' with
    | Some i -> go (i + 1) (String.sub s start (i - start) :: acc)
    | None ->
      Buffer.clear conn.cn_buf;
      Buffer.add_substring conn.cn_buf s start (String.length s - start);
      List.rev acc
  in
  go 0 []

let serve cfg ~socket =
  let t = create cfg in
  (* a peer closing mid-write must surface as EPIPE, not kill us *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  (try Unix.unlink socket with Unix.Unix_error _ -> ());
  let srv = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind srv (Unix.ADDR_UNIX socket);
  Unix.listen srv 64;
  let conns : (Unix.file_descr, conn) Hashtbl.t = Hashtbl.create 16 in
  let chunk = Bytes.create 65536 in
  log t "listening on %s (cache %s)" socket cfg.sv_cache_dir;
  while not t.t_stopped do
    let fds =
      srv :: Hashtbl.fold (fun fd _ acc -> fd :: acc) conns []
    in
    match Unix.select fds [] [] 1.0 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | readable, _, _ ->
      (* accept *)
      if List.mem srv readable then begin
        match Unix.accept srv with
        | fd, _ ->
          Hashtbl.replace conns fd
            { cn_fd = fd; cn_buf = Buffer.create 4096; cn_open = true }
        | exception Unix.Unix_error _ -> ()
      end;
      (* read what arrived; 0 bytes = peer closed *)
      let batch = ref [] in
      List.iter
        (fun fd ->
          if fd <> srv then
            match Hashtbl.find_opt conns fd with
            | None -> ()
            | Some conn -> (
              match Unix.read fd chunk 0 (Bytes.length chunk) with
              | 0 ->
                close_conn conn;
                Hashtbl.remove conns fd
              | n ->
                Buffer.add_subbytes conn.cn_buf chunk 0 n;
                if Buffer.length conn.cn_buf > Proto.max_line then begin
                  (* framing is unrecoverable: answer and drop *)
                  t.c_errors <- t.c_errors + 1;
                  send conn
                    (Proto.Error
                       (Printf.sprintf "request exceeds %d bytes"
                          Proto.max_line));
                  close_conn conn;
                  Hashtbl.remove conns fd
                end
                else
                  List.iter
                    (fun line -> batch := (conn, line) :: !batch)
                    (take_lines conn)
              | exception Unix.Unix_error _ ->
                close_conn conn;
                Hashtbl.remove conns fd))
        readable;
      let batch = List.rev !batch in
      (* decode; undecodable lines answered immediately with a
         structured error, well-formed requests handled as one batch
         (same-key concurrency dedupes single-flight) *)
      let good =
        List.filter_map
          (fun (conn, line) ->
            match Proto.decode_request line with
            | Ok req -> Some (conn, req)
            | Error m ->
              t.c_requests <- t.c_requests + 1;
              t.c_errors <- t.c_errors + 1;
              send conn (Proto.Error m);
              None)
          batch
      in
      let resps = handle_batch t (List.map snd good) in
      List.iter2 (fun (conn, _) resp -> send conn resp) good resps
  done;
  Hashtbl.iter (fun _ conn -> close_conn conn) conns;
  (try Unix.close srv with _ -> ());
  (try Unix.unlink socket with Unix.Unix_error _ -> ());
  log t "stopped"

type server = { s_thread : Thread.t; s_socket : string }

let spawn cfg ~socket =
  { s_thread = Thread.create (fun () -> serve cfg ~socket) ();
    s_socket = socket }

let stop s =
  (match Client.connect s.s_socket with
   | Ok c ->
     (match Client.rpc c Proto.Shutdown with Ok _ | Error _ -> ());
     Client.close c
   | Error _ -> ());
  Thread.join s.s_thread
