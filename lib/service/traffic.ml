(* Deterministic traffic replay against a live daemon (optionally a
   sharded topology).  See traffic.mli. *)

open Spec_driver
module Store = Spec_fdo.Store
module Cache = Spec_fdo.Cache
module Srng = Spec_stress.Srng
module W = Spec_workloads.Workloads

exception Divergence of string

let div fmt = Printf.ksprintf (fun m -> raise (Divergence m)) fmt

type shard_cell = {
  s_shard : int;
  s_requests : int;
  s_cold : int;
  s_warm : int;
  s_joined : int;
  s_parked : int;
  s_reports : int;
  s_recompiles : int;
  s_cache_hit_ppm : int;
  s_drift_ppm_max : int;
  s_p50_ms : float;
  s_p99_ms : float;
}

type cell = {
  t_seed : int;
  t_shards : int;
  t_requests : int;
  t_units : int;
  t_cold : int;
  t_warm : int;
  t_joined : int;
  t_parked : int;
  t_reports : int;
  t_recompiles : int;
  t_errors : int;
  t_divergences : int;
  t_p50_ms : float;
  t_p99_ms : float;
  t_wall_s : float;
  t_rps : float;
  t_per_shard : shard_cell list;
}

(* ---- per-unit fixtures ---- *)

(* Two source versions per unit (v1 is an edited program: different
   size and input seed, so v0-trained evidence is stale against it)
   and three trained stores: the v0 baseline, a sibling v0 input whose
   counts drift, and the v1 version's own evidence. *)
type fixture = {
  fx_name : string;
  fx_src : string array;            (* version -> source *)
  fx_stores : Store.t array;        (* evidence: v0, v0-drift, v1 *)
  mutable fx_version : int;
  mutable fx_mirror : Store.t;      (* mirror of the daemon's unit store *)
}

let train_store src =
  let prog, prof, _ = Pipeline.train src in
  Store.of_profile prog prof

let make_fixture (w : W.workload) =
  let v0 = w.W.source w.W.train in
  let p1 =
    { w.W.train with W.size = w.W.train.W.size + 3;
      W.seed = w.W.train.W.seed + 17 }
  in
  let v1 = w.W.source p1 in
  let pdrift = { w.W.train with W.seed = w.W.train.W.seed + 101 } in
  { fx_name = w.W.name;
    fx_src = [| v0; v1 |];
    fx_stores =
      [| train_store v0; train_store (w.W.source pdrift); train_store v1 |];
    fx_version = 0;
    fx_mirror = Store.empty }

(* ---- the offline arm ---- *)

(* Direct in-process compiles with the same evidence and knobs, no
   cache: what the daemon must be byte-identical to.  Memoized on the
   same content-addressed key the daemon uses. *)
type offline = {
  ol_prog : string;
  ol_out : string Lazy.t;
}

let rounds = 3
let strength = true

let offline_key ~variant ~edge_profile ~profile_digest src =
  let config =
    Spec_ssapre.Ssapre.default_config (Pipeline.mode_of_variant variant)
  in
  Pipeline.cache_key ~rounds ~strength ~deopt:false ~config ~variant
    ~edge_profile ~profile_digest src

let offline_tbl : (string, offline) Hashtbl.t = Hashtbl.create 64

let offline_compile ~variant ~prof ~digest src =
  let key =
    offline_key ~variant ~edge_profile:(prof <> None) ~profile_digest:digest
      src
  in
  let ol =
    match Hashtbl.find_opt offline_tbl key with
    | Some ol -> ol
    | None ->
      let r =
        match prof with
        | Some p ->
          Pipeline.compile_and_optimize ~rounds ~strength
            ~edge_profile:(Some p) src variant
        | None -> Pipeline.compile_and_optimize ~rounds ~strength src variant
      in
      let ol =
        { ol_prog = Spec_ir.Pp.prog_to_string r.Pipeline.prog;
          ol_out =
            lazy
              (match
                 Spec_prof.Vm.run_program (Lazy.force r.Pipeline.vm)
               with
              | res -> res.Spec_prof.Interp.output
              | exception Spec_prof.Interp.Runtime_error m ->
                "!runtime error: " ^ m) }
      in
      Hashtbl.replace offline_tbl key ol;
      ol
  in
  (key, ol)

(* ---- replay ---- *)

let mode_names = [| "none"; "base"; "heuristic"; "profile"; "profile" |]

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.
  else sorted.(min (n - 1) (int_of_float (p *. float_of_int (n - 1) +. 0.5)))

let percentile_of_list l p =
  let a = Array.of_list l in
  Array.sort compare a;
  percentile a p

let counter kvs name =
  match List.assoc_opt name kvs with
  | Some v -> v
  | None -> div "daemon stats reply lacks counter %S" name

let run_traffic_replay ?(quick = false) ?(seed = 1) ?requests ?(shards = 1)
    () =
  if shards < 1 then invalid_arg "run_traffic_replay: shards < 1";
  let n_requests =
    match requests with Some n -> n | None -> if quick then 250 else 1200
  in
  let units =
    (if quick then [ "art"; "mcf"; "gzip" ] else List.map (fun w -> w.W.name) W.all)
    |> List.map W.find
  in
  Hashtbl.reset offline_tbl;
  let fixtures = Array.of_list (List.map make_fixture units) in
  let n_units = Array.length fixtures in
  (* server on a private socket + cache *)
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "speccc-traffic-%d-%d" shards (Unix.getpid ()))
  in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let socket = Filename.concat dir "svc.sock" in
  let cache_dir = Filename.concat dir "cache" in
  let cfg =
    { (Daemon.default_config ~cache_dir) with Daemon.sv_drift = 0.3 }
  in
  let server = Shard.spawn ~shards cfg ~socket in
  let conns =
    Array.init 2 (fun _ ->
        match Client.connect socket with
        | Ok c -> c
        | Error m -> failwith ("traffic replay: " ^ m))
  in
  (* a key routes to exactly one shard, so a global seen set still
     pins "never cold twice" — and implicitly that routing never
     sends one key to two shards (that would recompile it cold) *)
  let seen_keys : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  let lat = Array.make n_requests 0. in
  let shard_lat = Array.make shards [] in
  let shard_reqs = Array.make shards 0 in
  let cold = ref 0 and warm = ref 0 in
  let rng = Srng.of_path seed [ "traffic" ] in
  let rpc i req =
    let c = conns.(i mod Array.length conns) in
    let t0 = Unix.gettimeofday () in
    let resp =
      match Client.rpc c req with
      | Ok r -> r
      | Error m -> failwith ("traffic replay: rpc: " ^ m)
    in
    lat.(i) <- (Unix.gettimeofday () -. t0) *. 1000.;
    resp
  in
  let bucket i s =
    shard_lat.(s) <- lat.(i) :: shard_lat.(s);
    shard_reqs.(s) <- shard_reqs.(s) + 1
  in
  let t_start = Unix.gettimeofday () in
  for i = 0 to n_requests - 1 do
    let r = Srng.split rng (string_of_int i) in
    let fx = fixtures.(Srng.below r n_units) in
    let kind = Srng.below r 100 in
    if kind < 58 then begin
      (* compile request; a unit occasionally upgrades to its edited
         source, making the old keys dead and v0 evidence stale *)
      if fx.fx_version = 0 && Srng.chance r ~ppm:30_000 then
        fx.fx_version <- 1;
      let mode = mode_names.(Srng.below r (Array.length mode_names)) in
      let exec = Srng.chance r ~ppm:250_000 in
      let src = fx.fx_src.(fx.fx_version) in
      let req =
        Proto.Compile
          { Proto.cq_unit = fx.fx_name; cq_mode = mode; cq_rounds = rounds;
            cq_strength = strength; cq_exec = exec; cq_src = src }
      in
      (* offline arm: same evidence, same knobs, no daemon *)
      let variant, prof, digest =
        match mode with
        | "none" -> (Pipeline.Noopt, None, None)
        | "base" -> (Pipeline.Base, None, None)
        | "heuristic" -> (Pipeline.Spec_heuristic, None, None)
        | _ ->
          let prog0 = Spec_ir.Lower.compile src in
          let prof, _ = Store.bind fx.fx_mirror prog0 in
          ( Pipeline.Spec_profile prof, Some prof,
            Some (Store.digest fx.fx_mirror) )
      in
      let key, ol = offline_compile ~variant ~prof ~digest src in
      let shard =
        if mode = "profile" then Store.shard_of_unit ~shards fx.fx_name
        else Cache.shard_of_key ~shards key
      in
      match rpc i req with
      | Proto.Compiled cr ->
        bucket i shard;
        if cr.Proto.cr_key <> key then
          div "%s %s: daemon key %s, offline key %s" fx.fx_name mode
            cr.Proto.cr_key key;
        if cr.Proto.cr_prog <> ol.ol_prog then
          div "%s %s (%s): daemon program differs from direct compile"
            fx.fx_name mode key;
        if exec && cr.Proto.cr_output <> Lazy.force ol.ol_out then
          div "%s %s (%s): daemon execution output differs" fx.fx_name mode
            key;
        (match cr.Proto.cr_served with
         | Proto.Cold ->
           if Hashtbl.mem seen_keys key then
             div "%s %s: key %s served cold twice" fx.fx_name mode key;
           incr cold
         | Proto.Warm -> incr warm
         | Proto.Joined | Proto.Parked -> ());
        Hashtbl.replace seen_keys key ()
      | Proto.Error m -> div "compile %s: daemon error: %s" fx.fx_name m
      | _ -> div "compile %s: unexpected reply" fx.fx_name
    end
    else if kind < 88 then begin
      (* profile report: baseline, drifting-input or stale-version
         evidence, occasionally down/up-weighted *)
      let store = fx.fx_stores.(Srng.below r 3) in
      let weight =
        match Srng.below r 10 with 0 -> 0.5 | 1 -> 2.0 | _ -> 1.0
      in
      fx.fx_mirror <-
        Store.merge_weighted ~wa:cfg.Daemon.sv_lambda ~wb:weight fx.fx_mirror
          store;
      let req =
        Proto.Report_profile
          { rq_unit = fx.fx_name; rq_weight = weight;
            rq_store = Store.write store }
      in
      match rpc i req with
      | Proto.Profiled pr ->
        bucket i (Store.shard_of_unit ~shards fx.fx_name);
        if pr.Proto.rr_digest <> Store.digest fx.fx_mirror then
          div "report %s: daemon store digest %s, mirror %s" fx.fx_name
            pr.Proto.rr_digest (Store.digest fx.fx_mirror)
      | Proto.Error m -> div "report %s: daemon error: %s" fx.fx_name m
      | _ -> div "report %s: unexpected reply" fx.fx_name
    end
    else begin
      match rpc i Proto.Stats with
      | Proto.Stats_reply _ -> ()
      | _ -> div "stats: unexpected reply"
    end
  done;
  let wall = Unix.gettimeofday () -. t_start in
  (* final counters, then shut down *)
  let kvs =
    match Client.rpc conns.(0) Proto.Stats with
    | Ok (Proto.Stats_reply kvs) -> kvs
    | Ok _ | Error _ -> div "final stats request failed"
  in
  Array.iter Client.close conns;
  Shard.stop server;
  if shards > 1 then
    for i = 0 to shards - 1 do
      Experiments.rm_rf_cache (Cache.shard_dir cache_dir i)
    done;
  Experiments.rm_rf_cache cache_dir;
  (try Unix.rmdir dir with Unix.Unix_error _ -> ());
  if counter kvs "errors" <> 0 then
    div "daemon error counter is %d after a well-formed replay"
      (counter kvs "errors");
  if counter kvs "store_invalid" <> 0 then
    div "%d unit stores failed validation" (counter kvs "store_invalid");
  if counter kvs "shards" <> shards then
    div "server reports %d shards, expected %d" (counter kvs "shards") shards;
  let per_shard =
    List.init shards (fun i ->
        let c name = counter kvs (Printf.sprintf "shard%d.%s" i name) in
        { s_shard = i;
          s_requests = shard_reqs.(i);
          s_cold = c "cold";
          s_warm = c "warm";
          s_joined = c "joined";
          s_parked = c "parked";
          s_reports = c "reports";
          s_recompiles = c "recompiles";
          s_cache_hit_ppm = c "cache_hit_ppm";
          s_drift_ppm_max = c "store_drift_ppm_max";
          s_p50_ms = percentile_of_list shard_lat.(i) 0.5;
          s_p99_ms = percentile_of_list shard_lat.(i) 0.99 })
  in
  (* per-shard served counters must re-add to the client's view *)
  let sum f = List.fold_left (fun a s -> a + f s) 0 per_shard in
  if sum (fun s -> s.s_cold) <> !cold then
    div "per-shard cold counters sum to %d, client saw %d"
      (sum (fun s -> s.s_cold)) !cold;
  if sum (fun s -> s.s_warm) <> !warm then
    div "per-shard warm counters sum to %d, client saw %d"
      (sum (fun s -> s.s_warm)) !warm;
  let sorted = Array.copy lat in
  Array.sort compare sorted;
  { t_seed = seed;
    t_shards = shards;
    t_requests = n_requests;
    t_units = n_units;
    t_cold = !cold;
    t_warm = !warm;
    t_joined = counter kvs "joined";
    t_parked = counter kvs "parked";
    t_reports = counter kvs "reports";
    t_recompiles = counter kvs "recompiles";
    t_errors = counter kvs "errors";
    t_divergences = 0;
    t_p50_ms = percentile sorted 0.5;
    t_p99_ms = percentile sorted 0.99;
    t_wall_s = wall;
    t_rps = (if wall > 0. then float_of_int n_requests /. wall else 0.);
    t_per_shard = per_shard }

let to_json c =
  Printf.sprintf
    "{\"seed\":%d,\"requests\":%d,\"units\":%d,\"cold\":%d,\"warm\":%d,\
     \"joined\":%d,\"parked\":%d,\"reports\":%d,\"recompiles\":%d,\
     \"errors\":%d,\"divergences\":%d,\"p50_ms\":%.6f,\"p99_ms\":%.6f,\
     \"wall_s\":%.6f,\"throughput_rps\":%.6f}"
    c.t_seed c.t_requests c.t_units c.t_cold c.t_warm c.t_joined c.t_parked
    c.t_reports c.t_recompiles c.t_errors c.t_divergences c.t_p50_ms
    c.t_p99_ms c.t_wall_s c.t_rps

let shard_cell_to_json s =
  Printf.sprintf
    "{\"shard\":%d,\"requests\":%d,\"cold\":%d,\"warm\":%d,\"joined\":%d,\
     \"parked\":%d,\"reports\":%d,\"recompiles\":%d,\"cache_hit_ppm\":%d,\
     \"drift_ppm_max\":%d,\"p50_ms\":%.6f,\"p99_ms\":%.6f}"
    s.s_shard s.s_requests s.s_cold s.s_warm s.s_joined s.s_parked
    s.s_reports s.s_recompiles s.s_cache_hit_ppm s.s_drift_ppm_max s.s_p50_ms
    s.s_p99_ms

let shards_to_json c =
  Printf.sprintf
    "{\"seed\":%d,\"shards\":%d,\"requests\":%d,\"units\":%d,\
     \"divergences\":%d,\"p50_ms\":%.6f,\"p99_ms\":%.6f,\"wall_s\":%.6f,\
     \"throughput_rps\":%.6f,\"per_shard\":[%s]}"
    c.t_seed c.t_shards c.t_requests c.t_units c.t_divergences c.t_p50_ms
    c.t_p99_ms c.t_wall_s c.t_rps
    (String.concat "," (List.map shard_cell_to_json c.t_per_shard))
