(** Deoptimization-based check recovery.

    The engines' default recovery for a failed ld.c is *reload*: fetch
    the current value from memory, re-arm the ALAT entry, and continue
    in the optimized code.  This module implements the alternative the
    paper's framework leaves open: *deoptimize* — abandon the optimized
    frame and resume execution in the unoptimized function body at the
    program point equivalent to the check.

    Two halves:

    - {b Descriptor construction} ({!attach}): after the optimization
      rounds, each [Mchk] statement gets a {!Sir.deopt} descriptor
      mapping the optimized check site back to a lowering-era statement
      id.  Lowering-era ids survive every segment commit unchanged
      ([Passes.seg_commit] only renumbers ids allocated inside a
      segment), so a second, deterministic lowering of the same source
      reproduces the target statement exactly.  The anchor is found by
      scanning forward from the check for the first statement that
      already existed at lowering time, skipping compiler temporaries
      and nops; if an unrecognizable statement intervenes, no
      descriptor is attached and the engine falls back to reload
      (always sound).  The descriptor's variable list is the function's
      lowering-era register-resident variables: their frame slots are
      the state transferred into the continuation.

    - {b Continuation execution} ({!deoptimize}): an engine-neutral
      tree-walking executor over the *unoptimized* program, semantically
      identical to {!Interp_ref} (same arithmetic, comparison promotion,
      shift masking, error strings, and zero-default uninitialized
      reads).  It owns only the register file; every effect — memory
      loads/stores (with ALAT invalidation), address resolution of
      memory-resident variables, fuel, branch accounting, and calls
      (builtins and user functions alike) — goes through {!hooks}
      provided by the host engine, so output, memory state and counters
      accumulate in the host run as if the continuation were native
      code. *)

open Spec_ir

(* ------------------------------------------------------------------ *)
(* Descriptor construction                                             *)
(* ------------------------------------------------------------------ *)

(** Lowering-era register-resident variables of [f]: the state a
    continuation may read before writing.  Memory-resident variables
    are not transferred — they live at the same addresses in the host
    frame and are read through {!hooks.h_addr_of}. *)
let transfer_vars syms ~vbase (f : Sir.func) : int list =
  let acc = ref [] in
  Symtab.iter
    (fun v ->
      if
        v.Symtab.vid < vbase
        && v.Symtab.vorig = v.Symtab.vid
        && v.Symtab.vfunc = Some f.Sir.fname
        && (match v.Symtab.vstorage with
            | Symtab.Slocal | Symtab.Sformal | Symtab.Stemp -> true
            | Symtab.Sglobal | Symtab.Svirtual -> false)
        && not (Symtab.is_mem syms v.Symtab.vid)
      then acc := v.Symtab.vid :: !acc)
    syms;
  List.rev !acc

(** Attach descriptors to every check statement whose equivalent
    unoptimized program point can be identified.  [sbase]/[vbase] are
    the statement counter and symbol count snapshotted right after
    lowering: ids below them are lowering-era.  Returns the number of
    descriptors attached. *)
let attach (p : Sir.prog) ~sbase ~vbase : int =
  let attached = ref 0 in
  Sir.iter_funcs
    (fun f ->
      let dvars = lazy (transfer_vars p.Sir.syms ~vbase f) in
      Vec.iter
        (fun (b : Sir.bb) ->
          (* First statement at-or-after the scan start that existed at
             lowering time; optimizer temporaries and nops carry no
             original state and are skipped. *)
          let rec anchor = function
            | [] -> None
            | (s : Sir.stmt) :: rest ->
              if s.Sir.sid < sbase then Some s.Sir.sid
              else (
                match s.Sir.kind with
                | Sir.Snop -> anchor rest
                | Sir.Stid (v, _)
                  when (Symtab.orig p.Sir.syms v).Symtab.vid >= vbase ->
                  anchor rest
                | _ -> None)
          in
          let rec walk = function
            | [] -> ()
            | (s : Sir.stmt) :: rest ->
              (if s.Sir.mark = Sir.Mchk then
                 match anchor (s :: rest) with
                 | Some t ->
                   s.Sir.deopt <-
                     Some { Sir.dp_target = t; Sir.dp_vars = Lazy.force dvars };
                   incr attached
                 | None -> s.Sir.deopt <- None);
              walk rest
          in
          walk b.Sir.stmts)
        f.Sir.fblocks)
    p;
  !attached

(** Drop every descriptor in [f] — used when a later sub-pass transforms
    the function in a way that breaks the state mapping (store promotion
    moves memory effects; LFTR retires induction variables).  Returns
    the number cleared. *)
let clear_func (f : Sir.func) : int =
  let n = ref 0 in
  Vec.iter
    (fun (b : Sir.bb) ->
      List.iter
        (fun (s : Sir.stmt) ->
          if s.Sir.deopt <> None then begin
            incr n;
            s.Sir.deopt <- None
          end)
        b.Sir.stmts)
    f.Sir.fblocks;
  !n

let count (p : Sir.prog) : int =
  let n = ref 0 in
  Sir.iter_funcs
    (fun f ->
      Vec.iter
        (fun (b : Sir.bb) ->
          List.iter
            (fun (s : Sir.stmt) -> if s.Sir.deopt <> None then incr n)
            b.Sir.stmts)
        f.Sir.fblocks)
    p;
  !n

(* ------------------------------------------------------------------ *)
(* Runtime plan                                                        *)
(* ------------------------------------------------------------------ *)

(** A recovery plan: the unoptimized program (a fresh lowering of the
    same source the optimized program came from) plus a lazily built
    per-function index from lowering-era statement ids to (block,
    statement-offset) positions. *)
type plan = {
  dp_prog : Sir.prog;
  dp_index : (string, (int, int * int) Hashtbl.t) Hashtbl.t;
}

let make_plan (uprog : Sir.prog) : plan =
  { dp_prog = uprog; dp_index = Hashtbl.create 8 }

let func_index pl fname =
  match Hashtbl.find_opt pl.dp_index fname with
  | Some ix -> ix
  | None ->
    let f = Sir.find_func pl.dp_prog fname in
    let ix = Hashtbl.create 64 in
    Vec.iter
      (fun (b : Sir.bb) ->
        List.iteri
          (fun i (s : Sir.stmt) -> Hashtbl.replace ix s.Sir.sid (b.Sir.bid, i))
          b.Sir.stmts)
      f.Sir.fblocks;
    Hashtbl.replace pl.dp_index fname ix;
    ix

(* ------------------------------------------------------------------ *)
(* Continuation executor                                               *)
(* ------------------------------------------------------------------ *)

type value = Vint of int | Vflt of float

(** Executor-local runtime fault; host engines convert it to their own
    [Runtime_error], preserving the message (which follows the engines'
    shared message discipline). *)
exception Error of string

let error fmt = Fmt.kstr (fun s -> raise (Error s)) fmt

let as_int = function
  | Vint i -> i
  | Vflt f -> error "expected int value, got float %g" f

let as_flt = function
  | Vflt f -> f
  | Vint i -> error "expected float value, got int %d" i

let zero_of ty = if Types.is_fp ty then Vflt 0. else Vint 0

(** Host services.  Every hook mutates host state (memory image,
    counters, fuel, ALAT, output buffer, rng), so the continuation's
    effects are indistinguishable from native execution. *)
type hooks = {
  h_load : Types.ty -> int -> value;
      (** typed memory load; counts a [mem_loads] *)
  h_store : Types.ty -> int -> value -> unit;
      (** typed memory store; counts a [mem_stores] and invalidates
          matching ALAT entries *)
  h_addr_of : int -> int;
      (** absolute address of a memory-resident variable (original,
          lowering-era id): a global, or a slot in the host frame *)
  h_spend : unit -> unit;
      (** one statement's (or terminator's) worth of fuel and steps *)
  h_branch : unit -> unit;  (** one conditional branch *)
  h_call : site:int -> string -> value list -> value;
      (** counts the call and dispatches it: builtins against host
          state, user functions through the host's own (optimized)
          execution path *)
}

(* Mirrors Interp_ref.eval_binop exactly: IEEE float division,
   trapping integer division, 63-masked shifts, and comparisons by
   [compare] with int-to-float promotion. *)
let eval_binop op ty a b =
  match op, ty with
  | Sir.Add, Types.Tflt -> Vflt (as_flt a +. as_flt b)
  | Sir.Sub, Types.Tflt -> Vflt (as_flt a -. as_flt b)
  | Sir.Mul, Types.Tflt -> Vflt (as_flt a *. as_flt b)
  | Sir.Div, Types.Tflt ->
    let d = as_flt b in
    Vflt (as_flt a /. d)
  | Sir.Add, _ -> Vint (as_int a + as_int b)
  | Sir.Sub, _ -> Vint (as_int a - as_int b)
  | Sir.Mul, _ -> Vint (as_int a * as_int b)
  | Sir.Div, _ ->
    let d = as_int b in
    if d = 0 then error "integer division by zero" else Vint (as_int a / d)
  | Sir.Rem, _ ->
    let d = as_int b in
    if d = 0 then error "integer remainder by zero" else Vint (as_int a mod d)
  | Sir.Band, _ -> Vint (as_int a land as_int b)
  | Sir.Bor, _ -> Vint (as_int a lor as_int b)
  | Sir.Bxor, _ -> Vint (as_int a lxor as_int b)
  | Sir.Shl, _ -> Vint (as_int a lsl (as_int b land 63))
  | Sir.Shr, _ -> Vint (as_int a asr (as_int b land 63))
  | (Sir.Lt | Sir.Le | Sir.Gt | Sir.Ge | Sir.Eq | Sir.Ne), _ ->
    let cmp =
      match a, b with
      | Vflt x, Vflt y -> compare x y
      | Vint x, Vint y -> compare x y
      | Vint x, Vflt y -> compare (float_of_int x) y
      | Vflt x, Vint y -> compare x (float_of_int y)
    in
    let r =
      match op with
      | Sir.Lt -> cmp < 0 | Sir.Le -> cmp <= 0
      | Sir.Gt -> cmp > 0 | Sir.Ge -> cmp >= 0
      | Sir.Eq -> cmp = 0 | Sir.Ne -> cmp <> 0
      | _ -> assert false
    in
    Vint (if r then 1 else 0)

(** Execute the unoptimized body of [fname] from lowering-era statement
    [target] to the function's return, seeding the continuation's
    register file with [regs] (original variable id, value) read out of
    the optimized frame.  Unseeded registers read as deterministic
    zeros, matching {!Interp_ref}.  Returns the function's return
    value. *)
let deoptimize (pl : plan) (h : hooks) ~fname ~target
    ~(regs : (int * value) list) : value =
  let f = Sir.find_func pl.dp_prog fname in
  let syms = pl.dp_prog.Sir.syms in
  let bid0, idx0 =
    match Hashtbl.find_opt (func_index pl fname) target with
    | Some loc -> loc
    | None -> error "deopt target s%d not found in %s" target fname
  in
  let rtab : (int, value) Hashtbl.t = Hashtbl.create 32 in
  List.iter (fun (v, x) -> Hashtbl.replace rtab v x) regs;
  let read_reg vid =
    let v = Symtab.orig syms vid in
    match Hashtbl.find_opt rtab v.Symtab.vid with
    | Some x -> x
    | None -> zero_of v.Symtab.vty
  in
  let write_reg vid x =
    Hashtbl.replace rtab (Symtab.orig syms vid).Symtab.vid x
  in
  let addr_of vid = h.h_addr_of (Symtab.orig syms vid).Symtab.vid in
  let rec eval (e : Sir.expr) : value =
    match e with
    | Sir.Const (Sir.Cint i) -> Vint i
    | Sir.Const (Sir.Cflt f) -> Vflt f
    | Sir.Lod vid ->
      if Symtab.is_mem syms vid then
        let v = Symtab.orig syms vid in
        h.h_load v.Symtab.vty (addr_of vid)
      else read_reg vid
    | Sir.Ilod (ty, a, _site) -> h.h_load ty (as_int (eval a))
    | Sir.Lda vid -> Vint (addr_of vid)
    | Sir.Unop (Sir.Neg, Types.Tflt, e) -> Vflt (-.as_flt (eval e))
    | Sir.Unop (Sir.Neg, _, e) -> Vint (- (as_int (eval e)))
    | Sir.Unop (Sir.Lnot, _, e) -> Vint (if as_int (eval e) = 0 then 1 else 0)
    | Sir.Unop (Sir.I2f, _, e) -> Vflt (float_of_int (as_int (eval e)))
    | Sir.Unop (Sir.F2i, _, e) -> Vint (int_of_float (as_flt (eval e)))
    | Sir.Binop (op, ty, a, b) ->
      let va = eval a in
      let vb = eval b in
      eval_binop op ty va vb
  in
  let exec_stmt (s : Sir.stmt) =
    h.h_spend ();
    match s.Sir.kind with
    | Sir.Snop -> ()
    | Sir.Stid (vid, e) ->
      let value = eval e in
      if Symtab.is_mem syms vid then
        let v = Symtab.orig syms vid in
        h.h_store v.Symtab.vty (addr_of vid) value
      else write_reg vid value
    | Sir.Istr (ty, a, e, _site) ->
      let addr = as_int (eval a) in
      let value = eval e in
      h.h_store ty addr value
    | Sir.Call { callee; args; ret; csite } ->
      let argv = List.map eval args in
      let result = h.h_call ~site:csite callee argv in
      (match ret with Some r -> write_reg r result | None -> ())
  in
  let rec run_block bid idx : value =
    let b = Sir.block f bid in
    if b.Sir.phis <> [] then
      error "deopt continuation cannot execute SSA-form code";
    List.iteri (fun i s -> if i >= idx then exec_stmt s) b.Sir.stmts;
    h.h_spend ();
    match b.Sir.term with
    | Sir.Tgoto next -> run_block next 0
    | Sir.Tcond (c, t, e) ->
      h.h_branch ();
      run_block (if as_int (eval c) <> 0 then t else e) 0
    | Sir.Tret None -> Vint 0
    | Sir.Tret (Some e) -> eval e
  in
  run_block bid0 idx0
