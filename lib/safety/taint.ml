(** Speculative-taint checker over optimized SIR.

    After speculative PRE has run, a function's blocks contain advanced
    loads ([Madv]/[Msa]), control-speculative computations ([Mcspec]) and
    their covering checks ([Mchk]).  Between an advanced load and the
    commit of its check, the loaded value is *transient*: on an
    architecture that executes the ld.a eagerly, the value may have been
    produced by a squashed-but-observable micro-architectural path.  This
    module runs a forward may-dataflow over the optimized IR that tracks

    - which values are derived from [secret]-annotated storage
      (two tiers: CONFIRMED when the derivation is syntactic, PLAUSIBLE
      when it only follows from the Steensgaard may-point-to solution);
    - which values are speculative and not yet covered by a committed
      check — the *speculation window*.

    It reports every site where secret-derived data reaches an address
    operand of a speculatively executed load (the Spectre-v1 shape), and
    every site where a value that is both secret-tainted and still
    unchecked reaches any address operand or branch condition.

    Deliberate simplifications, documented here and in DESIGN.md §3.9:
    taint is not tracked through memory cells (a secret stored to memory
    and reloaded is rediscovered only via the points-to tier), and calls
    are assumed to return public data. *)

open Spec_ir
open Spec_alias
open Sir

type tier = Confirmed | Plausible

type rkind =
  | Rspec_addr      (** speculative load at a secret-derived address *)
  | Rtransient_flow (** tainted+unchecked value reaches an address or branch *)

type site = {
  r_func : string;
  r_kind : rkind;
  r_tier : tier;
  r_expr : string;   (** deversioned rendering of the offending expression *)
  r_ord : int;       (** ordinal among same-key reports in the function *)
  r_sid : int;       (** statement id, [-1] for terminator reports *)
}

type verdict = Vunannotated | Vsafe | Vleaks

type func_report = {
  fr_name : string;
  fr_verdict : verdict;
  fr_sites : site list;
}

type report = {
  rp_verdict : verdict;
  rp_funcs : func_report list;
  rp_confirmed : int;
  rp_plausible : int;
}

let rkind_str = function
  | Rspec_addr -> "spec-addr"
  | Rtransient_flow -> "transient-flow"

let tier_str = function Confirmed -> "CONFIRMED" | Plausible -> "PLAUSIBLE"

let verdict_str = function
  | Vunannotated -> "unannotated"
  | Vsafe -> "safe"
  | Vleaks -> "leaks"

(* ------------------------------------------------------------------ *)
(* Deversioned, site-id-free expression rendering for stable keys      *)
(* ------------------------------------------------------------------ *)

let base_name syms v = (Symtab.orig syms v).Symtab.vname

let binop_str = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Rem -> "%"
  | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">=" | Eq -> "==" | Ne -> "!="
  | Band -> "&" | Bor -> "|" | Bxor -> "^" | Shl -> "<<" | Shr -> ">>"

let unop_str = function
  | Neg -> "-" | Lnot -> "!" | I2f -> "(float)" | F2i -> "(int)"

let rec render syms = function
  | Const (Cint i) -> string_of_int i
  | Const (Cflt f) -> Printf.sprintf "%g" f
  | Lod v -> base_name syms v
  | Ilod (_, a, _) -> Printf.sprintf "*(%s)" (render syms a)
  | Lda v -> "&" ^ base_name syms v
  | Unop (o, _, e) -> Printf.sprintf "%s(%s)" (unop_str o) (render syms e)
  | Binop (o, _, a, b) ->
    Printf.sprintf "(%s %s %s)" (render syms a) (binop_str o) (render syms b)

let site_key s =
  Printf.sprintf "%s:%s:%s#%d" s.r_func (rkind_str s.r_kind) s.r_expr s.r_ord

(* ------------------------------------------------------------------ *)
(* Dataflow state                                                      *)
(* ------------------------------------------------------------------ *)

(* Three bit-sets over variable ids: confirmed-tainted, plausibly
   tainted (a superset), and unchecked-speculative.  [Bytes] rather than
   [bool array] keeps per-block copies cheap. *)
type state = { conf : Bytes.t; plaus : Bytes.t; unchk : Bytes.t }

let mk_state n =
  { conf = Bytes.make n '\000'; plaus = Bytes.make n '\000';
    unchk = Bytes.make n '\000' }

let copy_state st =
  { conf = Bytes.copy st.conf; plaus = Bytes.copy st.plaus;
    unchk = Bytes.copy st.unchk }

let get b v = Bytes.get b v <> '\000'
let set b v x = Bytes.set b v (if x then '\001' else '\000')

(* Union [src] into [dst]; returns true if [dst] grew. *)
let join_into dst src =
  let grew = ref false in
  let u d s =
    for i = 0 to Bytes.length d - 1 do
      if Bytes.get s i <> '\000' && Bytes.get d i = '\000' then begin
        Bytes.set d i '\001'; grew := true
      end
    done
  in
  u dst.conf src.conf; u dst.plaus src.plaus; u dst.unchk src.unchk;
  !grew

(* ------------------------------------------------------------------ *)
(* Expression taint                                                    *)
(* ------------------------------------------------------------------ *)

type etaint = { ec : bool; ep : bool; eu : bool }

let e_bot = { ec = false; ep = false; eu = false }
let e_join a b = { ec = a.ec || b.ec; ep = a.ep || b.ep; eu = a.eu || b.eu }

(* Does the address expression syntactically name secret storage?  True
   for [&s] / [s] where [s]'s original variable carries the [secret]
   contract: the canonical lowering of [key[i]] is
   [Ilod (ty, &key + i*8, site)]. *)
let rec addr_names_secret syms = function
  | Lda v | Lod v -> Symtab.is_secret syms v
  | Const _ -> false
  | Ilod (_, a, _) -> addr_names_secret syms a
  | Unop (_, _, e) -> addr_names_secret syms e
  | Binop (_, _, a, b) ->
    addr_names_secret syms a || addr_names_secret syms b

type ctx = {
  syms : Symtab.t;
  pt : Steensgaard.solution option;
  secret_classes : (int, unit) Hashtbl.t;
      (** Steensgaard classes containing at least one secret variable *)
}

let site_may_read_secret ctx site =
  match ctx.pt with
  | None -> false
  | Some sol ->
    (match Steensgaard.class_of_site sol site with
     | None -> false
     | Some c -> Hashtbl.mem ctx.secret_classes c)

let rec etaint ctx st = function
  | Const _ -> e_bot
  | Lod v ->
    if Symtab.is_secret ctx.syms v then
      { ec = true; ep = true; eu = get st.unchk v }
    else
      { ec = get st.conf v; ep = get st.plaus v; eu = get st.unchk v }
  | Lda _ -> e_bot
  | Ilod (_, a, site) ->
    let at = etaint ctx st a in
    let syn = addr_names_secret ctx.syms a in
    let cls = site_may_read_secret ctx site in
    (* The loaded value is secret if it comes out of secret storage
       (syntactically or per points-to), and inherits the address's own
       taint: data loaded at a secret-derived index is secret-derived. *)
    { ec = at.ec || syn;
      ep = at.ep || syn || cls;
      eu = at.eu }
  | Unop (_, _, e) -> etaint ctx st e
  | Binop (_, _, a, b) -> e_join (etaint ctx st a) (etaint ctx st b)

(* ------------------------------------------------------------------ *)
(* Transfer functions                                                  *)
(* ------------------------------------------------------------------ *)

let is_spec_mark = function Madv | Msa | Mcspec -> true | Mnone | Mchk -> false

let def_taint st v (t : etaint) =
  set st.conf v t.ec;
  set st.plaus v (t.ec || t.ep);
  set st.unchk v t.eu

let transfer_stmt ctx st s =
  (match s.kind with
   | Stid (v, e) ->
     let t = etaint ctx st e in
     let eu =
       if s.mark = Mchk then false          (* check commits: window closes *)
       else t.eu || is_spec_mark s.mark     (* speculative def opens it *)
     in
     def_taint st v { t with eu }
   | Call { ret = Some r; _ } -> def_taint st r e_bot
   | Call { ret = None; _ } | Istr _ | Snop -> ());
  (* chi defs: weak may-updates keep the version chain flowing *)
  List.iter
    (fun c ->
      if c.chi_lhs >= 0 && c.chi_rhs >= 0 then begin
        set st.conf c.chi_lhs (get st.conf c.chi_rhs);
        set st.plaus c.chi_lhs (get st.plaus c.chi_rhs);
        set st.unchk c.chi_lhs (get st.unchk c.chi_rhs)
      end)
    s.chis

let transfer_phis ctx st b =
  ignore ctx;
  List.iter
    (fun p ->
      if p.phi_lhs >= 0 then begin
        let c = ref false and pl = ref false and u = ref false in
        Array.iter
          (fun a ->
            if a >= 0 then begin
              c := !c || get st.conf a;
              pl := !pl || get st.plaus a;
              u := !u || get st.unchk a
            end)
          p.phi_args;
        set st.conf p.phi_lhs !c;
        set st.plaus p.phi_lhs !pl;
        set st.unchk p.phi_lhs !u
      end)
    b.phis

(* ------------------------------------------------------------------ *)
(* Report collection                                                   *)
(* ------------------------------------------------------------------ *)

type collector = {
  mutable sites : (rkind * tier * string * int) list;  (* rev order; sid *)
}

let tier_of (t : etaint) = if t.ec then Confirmed else Plausible

(* R1: a speculatively executed load whose address is secret-derived.
   The load itself is transient, so a tainted address leaks through the
   cache no matter whether the value is ever committed. *)
let collect_spec_addr ctx st coll s =
  if is_spec_mark s.mark then
    List.iter
      (fun e ->
        iter_subexprs
          (function
            | Ilod (_, a, _) ->
              let at = etaint ctx st a in
              if at.ec || at.ep then
                coll.sites <-
                  (Rspec_addr, tier_of at, render ctx.syms a, s.sid)
                  :: coll.sites
            | _ -> ())
          e)
      (stmt_exprs s.kind)

(* R2: a value that is both secret-tainted and still inside an open
   speculation window reaches an address operand or branch condition. *)
let transient e (t : etaint) = ignore e; (t.ec || t.ep) && t.eu

let collect_transient ctx st coll s =
  let check_addr a =
    let t = etaint ctx st a in
    if transient a t then
      coll.sites <-
        (Rtransient_flow, tier_of t, render ctx.syms a, s.sid) :: coll.sites
  in
  List.iter
    (fun e ->
      iter_subexprs
        (function Ilod (_, a, _) -> check_addr a | _ -> ())
        e)
    (stmt_exprs s.kind);
  match s.kind with Istr (_, a, _, _) -> check_addr a | _ -> ()

let collect_term ctx st coll = function
  | Tcond (e, _, _) ->
    let t = etaint ctx st e in
    if transient e t then
      coll.sites <-
        (Rtransient_flow, tier_of t, render ctx.syms e, -1) :: coll.sites
  | Tgoto _ | Tret _ -> ()

(* ------------------------------------------------------------------ *)
(* Per-function fixpoint                                               *)
(* ------------------------------------------------------------------ *)

let check_func ctx (f : func) : site list =
  let n = Symtab.count ctx.syms in
  let nb = n_blocks f in
  let ins = Array.init nb (fun _ -> mk_state n) in
  (* Secret formals are tainted from entry. *)
  List.iter
    (fun v ->
      if Symtab.is_secret ctx.syms v then begin
        set ins.(entry_bid).conf v true;
        set ins.(entry_bid).plaus v true
      end)
    f.fformals;
  let inq = Array.make nb false in
  let q = Queue.create () in
  Queue.add entry_bid q;
  inq.(entry_bid) <- true;
  while not (Queue.is_empty q) do
    let bid = Queue.pop q in
    inq.(bid) <- false;
    let b = block f bid in
    let st = copy_state ins.(bid) in
    transfer_phis ctx st b;
    List.iter (fun s -> transfer_stmt ctx st s) b.stmts;
    List.iter
      (fun s ->
        if join_into ins.(s) st && not inq.(s) then begin
          Queue.add s q; inq.(s) <- true
        end)
      (succs b)
  done;
  (* Second pass with converged states: collect reports in block order. *)
  let coll = { sites = [] } in
  Vec.iter
    (fun b ->
      let st = copy_state ins.(b.bid) in
      transfer_phis ctx st b;
      List.iter
        (fun s ->
          collect_spec_addr ctx st coll s;
          collect_transient ctx st coll s;
          transfer_stmt ctx st s)
        b.stmts;
      collect_term ctx st coll b.term)
    f.fblocks;
  (* Assign ordinals per (kind, expr) key, preserving program order. *)
  let seen = Hashtbl.create 8 in
  List.rev_map
    (fun (k, t, e, sid) ->
      let key = (k, e) in
      let ord = try Hashtbl.find seen key with Not_found -> 0 in
      Hashtbl.replace seen key (ord + 1);
      { r_func = f.fname; r_kind = k; r_tier = t; r_expr = e;
        r_ord = ord; r_sid = sid })
    coll.sites
  |> List.rev

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

let prog_has_secrets (p : prog) =
  let found = ref false in
  Symtab.iter
    (fun v -> if v.Symtab.vsecret && v.Symtab.vid = v.Symtab.vorig then
        found := true)
    p.syms;
  !found

let check ?pt (p : prog) : report =
  let secret_classes = Hashtbl.create 8 in
  (match pt with
   | None -> ()
   | Some sol ->
     Symtab.iter
       (fun v ->
         if v.Symtab.vsecret && v.Symtab.vid = v.Symtab.vorig then
           match Steensgaard.class_of_var sol v.Symtab.vid with
           | Some c -> Hashtbl.replace secret_classes c ()
           | None -> ())
       p.syms);
  let ctx = { syms = p.syms; pt; secret_classes } in
  let annotated = prog_has_secrets p in
  let funcs = ref [] in
  iter_funcs
    (fun f ->
      let sites = if annotated then check_func ctx f else [] in
      let v =
        if not annotated then Vunannotated
        else if sites = [] then Vsafe
        else Vleaks
      in
      funcs := { fr_name = f.fname; fr_verdict = v; fr_sites = sites }
               :: !funcs)
    p;
  let funcs = List.rev !funcs in
  let all = List.concat_map (fun fr -> fr.fr_sites) funcs in
  let count t = List.length (List.filter (fun s -> s.r_tier = t) all) in
  let verdict =
    if not annotated then Vunannotated
    else if all = [] then Vsafe
    else Vleaks
  in
  { rp_verdict = verdict; rp_funcs = funcs;
    rp_confirmed = count Confirmed; rp_plausible = count Plausible }
