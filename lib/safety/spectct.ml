(** Rendering and aggregation of speculative-taint reports.

    The textual form is the contract for [speccc --safety] and for the
    goldens in [test/test_safety.ml]: one line per site, keyed by the
    stable {!Taint.site_key} (function, report kind, deversioned
    expression, ordinal), followed by a per-function verdict summary.
    Keys deliberately contain no statement ids, site ids or SSA version
    numbers so that reports diff cleanly across pipeline changes. *)

open Taint

let site_line s =
  Printf.sprintf "%s %s %s" (tier_str s.r_tier) (rkind_str s.r_kind)
    (site_key s)

(** All site lines of a report, program order. *)
let site_lines (r : report) : string list =
  List.concat_map (fun fr -> List.map site_line fr.fr_sites) r.rp_funcs

let summary_line (r : report) =
  Printf.sprintf "safety: %s (%d confirmed, %d plausible)"
    (verdict_str r.rp_verdict) r.rp_confirmed r.rp_plausible

(** Full textual report: per-function verdicts, site lines, and the
    program summary. *)
let to_string (r : report) : string =
  let b = Buffer.create 256 in
  List.iter
    (fun fr ->
      Buffer.add_string b
        (Printf.sprintf "func %s: %s\n" fr.fr_name
           (verdict_str fr.fr_verdict));
      List.iter
        (fun s ->
          Buffer.add_string b ("  " ^ site_line s);
          Buffer.add_char b '\n')
        fr.fr_sites)
    r.rp_funcs;
  Buffer.add_string b (summary_line r);
  Buffer.add_char b '\n';
  Buffer.contents b

(** Strict mode fails the compile on any confirmed report; plausible
    reports alone only warn. *)
let strict_ok (r : report) = r.rp_confirmed = 0

(** Per-report verdict counts keyed for the bench JSON [safety]
    section: (verdict string, confirmed, plausible). *)
let cells (r : report) : string * int * int =
  (verdict_str r.rp_verdict, r.rp_confirmed, r.rp_plausible)
