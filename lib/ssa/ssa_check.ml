(** SSA-form verification.

    Checks the invariants later phases rely on:
    - every SSA version has exactly one definition point
      (phi, direct definition, χ, formal, or "version 0" = the original);
    - every use is dominated by its definition;
    - phi operand versions are live out of the corresponding predecessor.

    Raises [Failure] with a description on the first violation. *)

open Spec_ir
open Spec_cfg

type def_site =
  | Dphi of int                (* block *)
  | Dstmt of int * int         (* block, stmt id *)
  | Dformal
  | Dnone                      (* version 0 *)

let check_func (prog : Sir.prog) (f : Sir.func) (dom : Dom.t) =
  let syms = prog.Sir.syms in
  let defs : (int, def_site) Hashtbl.t = Hashtbl.create 64 in
  let fail fmt = Fmt.kstr failwith fmt in
  let define v site =
    if (Symtab.var syms v).Symtab.vver = 0 then
      fail "definition targets version-0 variable %s" (Symtab.name syms v);
    match Hashtbl.find_opt defs v with
    | Some _ -> fail "%s defined more than once" (Symtab.name syms v)
    | None -> Hashtbl.replace defs v site
  in
  Vec.iter
    (fun (b : Sir.bb) ->
      List.iter
        (fun (p : Sir.phi) ->
          if Array.length p.Sir.phi_args <> List.length b.Sir.preds then
            fail "phi for %s in B%d has %d args but %d preds"
              (Symtab.name syms p.Sir.phi_var) b.Sir.bid
              (Array.length p.Sir.phi_args) (List.length b.Sir.preds);
          define p.Sir.phi_lhs (Dphi b.Sir.bid))
        b.Sir.phis;
      List.iter
        (fun (s : Sir.stmt) ->
          (match Sir.stmt_def s.Sir.kind with
           | Some v -> define v (Dstmt (b.Sir.bid, s.Sir.sid))
           | None -> ());
          List.iter
            (fun (c : Sir.chi) -> define c.Sir.chi_lhs (Dstmt (b.Sir.bid, s.Sir.sid)))
            s.Sir.chis)
        b.Sir.stmts)
    f.Sir.fblocks;
  List.iter (fun v -> ignore v) f.Sir.fformals;
  (* use-site dominance: walk statements in block order, tracking
     statement position *)
  let def_of v =
    match Hashtbl.find_opt defs v with
    | Some d -> d
    | None ->
      if (Symtab.var syms v).Symtab.vver = 0 then Dnone
      else if List.exists
                (fun fv ->
                  (Symtab.var syms v).Symtab.vorig
                  = (Symtab.orig syms fv).Symtab.vid)
                f.Sir.fformals
      then Dformal
      else Dnone
  in
  let check_use ~bid ~pos v =
    match def_of v with
    | Dnone | Dformal -> ()
    | Dphi db ->
      if not (Dom.dominates dom db bid) then
        fail "use of %s in B%d not dominated by its phi in B%d"
          (Symtab.name syms v) bid db
    | Dstmt (db, sid) ->
      if db = bid then begin
        (* same block: definition must come earlier *)
        let b = Sir.block f bid in
        let def_pos = ref (-1) and use_ok = ref false in
        List.iteri
          (fun i (s : Sir.stmt) -> if s.Sir.sid = sid then def_pos := i)
          b.Sir.stmts;
        (* strict: a statement's uses are evaluated before its defs *)
        if !def_pos >= 0 && pos > !def_pos then use_ok := true;
        (* a chi def used by the same statement's own expressions is wrong,
           but chi_rhs refers to the pre-statement version, checked via pos *)
        if not !use_ok then
          fail "use of %s in B%d precedes its definition" (Symtab.name syms v)
            bid
      end
      else if not (Dom.dominates dom db bid) then
        fail "use of %s in B%d not dominated by its def in B%d"
          (Symtab.name syms v) bid db
  in
  Vec.iter
    (fun (b : Sir.bb) ->
      List.iteri
        (fun pos (s : Sir.stmt) ->
          let use v = check_use ~bid:b.Sir.bid ~pos v in
          List.iter (Sir.iter_expr_uses use) (Sir.stmt_exprs s.Sir.kind);
          List.iter (fun m -> use m.Sir.mu_opnd) s.Sir.mus;
          List.iter (fun (c : Sir.chi) -> use c.Sir.chi_rhs) s.Sir.chis)
        b.Sir.stmts;
      let npos = List.length b.Sir.stmts in
      List.iter
        (Sir.iter_expr_uses (fun v -> check_use ~bid:b.Sir.bid ~pos:npos v))
        (Sir.term_exprs b.Sir.term);
      (* phi operands must be available at the end of each predecessor *)
      List.iteri
        (fun i pred ->
          List.iter
            (fun (p : Sir.phi) ->
              let v = p.Sir.phi_args.(i) in
              match def_of v with
              | Dnone | Dformal -> ()
              | Dphi db | Dstmt (db, _) ->
                if not (Dom.dominates dom db pred) then
                  fail "phi operand %s for edge B%d->B%d not available"
                    (Symtab.name syms v) pred b.Sir.bid)
            b.Sir.phis)
        b.Sir.preds)
    f.Sir.fblocks

let check ?dom_of (prog : Sir.prog) =
  Sir.iter_funcs
    (fun f ->
      let dom =
        match dom_of with Some get -> get f | None -> Dom.compute f
      in
      check_func prog f dom)
    prog
