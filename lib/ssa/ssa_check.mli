(** SSA-form verification: single definitions, uses dominated by their
    definitions, phi operands available out of the matching predecessor.
    Raises [Failure] with a description on the first violation. *)

val check_func : Spec_ir.Sir.prog -> Spec_ir.Sir.func -> Spec_cfg.Dom.t -> unit

(** Check every function.  [dom_of] supplies (possibly cached) dominator
    trees; when absent they are computed per function. *)
val check :
  ?dom_of:(Spec_ir.Sir.func -> Spec_cfg.Dom.t) -> Spec_ir.Sir.prog -> unit
