(** HSSA construction: phi insertion at iterated dominance frontiers
    (Cytron et al.) over *all* variables — real scalars, memory-resident
    variables, and the virtual variables introduced by the alias phase —
    followed by stack-based renaming in dominator-tree preorder.

    χ operands are definitions (the statement may update the variable);
    μ operands are uses.  After renaming, every [Lod], [Stid] target,
    χ lhs/rhs, μ operand, and phi lhs/arg refers to an SSA version
    variable whose [vorig] points back to the underlying variable.

    Internals are dense: the variables a function touches are interned
    into consecutive *local indices* in first-occurrence order, so the
    phi worklist, rename stacks and version counters are small arrays
    indexed by local id instead of hashtables keyed by the whole symbol
    table.  Scratch buffers come from the domain-local {!Scratch} pool. *)

open Spec_ir
open Spec_cfg

type t = {
  prog : Sir.prog;
  func : Sir.func;
  dom : Dom.t;
  formals_v1 : (int * int) list;
      (** original formal id -> the vid of its entry version (version 1);
          consumers (SSAPRE's Φ-operand versioning) use this instead of
          scanning the whole symbol table for formal versions *)
}

(* Variables of one function, interned densely in first-touch order. *)
type interner = {
  syms : Symtab.t;
  local_of : int array;            (* orig vid -> local index, or -1 *)
  locals : int array;              (* local index -> orig vid *)
  mutable n_loc : int;
  used : Bytes.t;                  (* per local: referenced in the function *)
  def_blocks : int list array;     (* per local: distinct def blocks *)
}

let intern (it : interner) v =
  let v = (Symtab.orig it.syms v).Symtab.vid in
  let l = it.local_of.(v) in
  if l >= 0 then l
  else begin
    let l = it.n_loc in
    it.local_of.(v) <- l;
    it.locals.(l) <- v;
    it.n_loc <- l + 1;
    l
  end

(* Collect every variable defined / used in [f], with def blocks. *)
let collect_vars (prog : Sir.prog) (f : Sir.func) : interner =
  let syms = prog.Sir.syms in
  let ns = Symtab.count syms in
  let local_of = Scratch.take_ints ns in
  Array.fill local_of 0 ns (-1);
  let it =
    { syms; local_of; locals = Scratch.take_ints ns; n_loc = 0;
      used = Scratch.take_bytes ns; def_blocks = Array.make (max ns 1) [] }
  in
  let add_def v b =
    let l = intern it v in
    let cur = it.def_blocks.(l) in
    if not (List.mem b cur) then it.def_blocks.(l) <- b :: cur
  in
  let add_use v = Bytes.unsafe_set it.used (intern it v) '\001' in
  Vec.iter
    (fun (b : Sir.bb) ->
      let bid = b.Sir.bid in
      List.iter
        (fun (s : Sir.stmt) ->
          List.iter (Sir.iter_expr_uses add_use) (Sir.stmt_exprs s.Sir.kind);
          (match Sir.stmt_def s.Sir.kind with
           | Some v -> add_def v bid
           | None -> ());
          List.iter (fun m -> add_use m.Sir.mu_var) s.Sir.mus;
          List.iter (fun c -> add_def c.Sir.chi_var bid; add_use c.Sir.chi_var)
            s.Sir.chis)
        b.Sir.stmts;
      List.iter (Sir.iter_expr_uses add_use) (Sir.term_exprs b.Sir.term))
    f.Sir.fblocks;
  List.iter (fun v -> add_def v Sir.entry_bid) f.Sir.fformals;
  it

let release (it : interner) =
  Scratch.give_ints it.local_of;
  Scratch.give_ints it.locals;
  Scratch.give_bytes it.used

(* Iterated dominance frontier phi insertion with a dense worklist: one
   queue and two flag rows (queued-ever, has-phi) shared across all
   variables, reset via the queued list between variables. *)
let insert_phis (f : Sir.func) (dom : Dom.t) (it : interner) =
  let nb = Sir.n_blocks f in
  let queue = Scratch.take_ints nb in
  let queued = Scratch.take_bytes nb in
  let has_phi = Scratch.take_bytes nb in
  for l = 0 to it.n_loc - 1 do
    let def_blocks = it.def_blocks.(l) in
    (* semi-pruned: skip variables never used in this function *)
    if (Bytes.unsafe_get it.used l = '\001'
        || match def_blocks with [] | [ _ ] -> false | _ -> true)
       && def_blocks <> []
    then begin
      let v = it.locals.(l) in
      let tail = ref 0 in
      let n_queued = ref 0 in
      let enqueue b =
        if Bytes.unsafe_get queued b = '\000' then begin
          Bytes.unsafe_set queued b '\001';
          queue.(!tail) <- b;
          incr tail
        end
      in
      List.iter enqueue def_blocks;
      let head = ref 0 in
      while !head < !tail do
        let x = queue.(!head) in
        incr head;
        List.iter
          (fun y ->
            if Bytes.unsafe_get has_phi y = '\000' then begin
              Bytes.unsafe_set has_phi y '\001';
              let blk = Sir.block f y in
              if not (List.exists (fun p -> p.Sir.phi_var = v) blk.Sir.phis)
              then begin
                let n = List.length blk.Sir.preds in
                blk.Sir.phis <-
                  { Sir.phi_var = v; Sir.phi_lhs = v;
                    Sir.phi_args = Array.make n v; Sir.phi_live = true }
                  :: blk.Sir.phis
              end;
              enqueue y
            end)
          dom.Dom.df.(x)
      done;
      n_queued := !tail;
      for i = 0 to !n_queued - 1 do
        let b = queue.(i) in
        Bytes.unsafe_set queued b '\000';
        Bytes.unsafe_set has_phi b '\000'
      done
    end
  done;
  Scratch.give_ints queue;
  Scratch.give_bytes queued;
  Scratch.give_bytes has_phi

let rename (prog : Sir.prog) (f : Sir.func) (dom : Dom.t) (it : interner) :
    (int * int) list =
  let syms = prog.Sir.syms in
  let n_loc = it.n_loc in
  let stacks : int list array = Array.make (max n_loc 1) [] in
  let counters = Scratch.take_ints n_loc in
  Array.fill counters 0 n_loc 0;
  let formals_v1 = ref [] in
  let top v =
    let l = it.local_of.((Symtab.orig syms v).Symtab.vid) in
    if l < 0 then v
    else
      match stacks.(l) with
      | top :: _ -> top
      | [] -> it.locals.(l)     (* version 0: the original variable itself *)
  in
  let push_new v =
    let l = intern it v in
    counters.(l) <- counters.(l) + 1;
    let ver =
      Symtab.add_version syms ~orig_id:it.locals.(l) ~ver:counters.(l)
    in
    stacks.(l) <- ver.Symtab.vid :: stacks.(l);
    ver.Symtab.vid
  in
  let rename_expr e = Sir.map_expr_uses top e in
  let rec walk bid =
    let b = Sir.block f bid in
    let pushed = ref [] in
    let note v = pushed := intern it v :: !pushed in
    (* phis define new versions *)
    List.iter
      (fun (p : Sir.phi) ->
        p.Sir.phi_lhs <- push_new p.Sir.phi_var;
        note p.Sir.phi_var)
      b.Sir.phis;
    (* formals at entry: the incoming value *is* version 1 *)
    if bid = Sir.entry_bid then
      List.iter
        (fun v ->
          let nv = push_new v in
          note v;
          formals_v1 := (v, nv) :: !formals_v1)
        f.Sir.fformals;
    List.iter
      (fun (s : Sir.stmt) ->
        (* uses first *)
        s.Sir.kind <- Sir.map_stmt_exprs rename_expr s.Sir.kind;
        List.iter (fun m -> m.Sir.mu_opnd <- top m.Sir.mu_var) s.Sir.mus;
        (* direct definition *)
        (match s.Sir.kind with
         | Sir.Stid (v, e) ->
           let nv = push_new v in
           note v;
           s.Sir.kind <- Sir.Stid (nv, e)
         | Sir.Call c ->
           (match c.Sir.ret with
            | Some r ->
              let nr = push_new r in
              note r;
              s.Sir.kind <- Sir.Call { c with Sir.ret = Some nr }
            | None -> ())
         | Sir.Istr _ | Sir.Snop -> ());
        (* chi definitions come after the statement *)
        List.iter
          (fun (c : Sir.chi) ->
            c.Sir.chi_rhs <- top c.Sir.chi_var;
            c.Sir.chi_lhs <- push_new c.Sir.chi_var;
            note c.Sir.chi_var)
          s.Sir.chis)
      b.Sir.stmts;
    b.Sir.term <- Sir.map_term_exprs rename_expr b.Sir.term;
    (* fill phi operands in successors *)
    List.iter
      (fun sid ->
        let sb = Sir.block f sid in
        let pred_index =
          let rec idx i = function
            | [] -> -1
            | p :: _ when p = bid -> i
            | _ :: rest -> idx (i + 1) rest
          in
          idx 0 sb.Sir.preds
        in
        if pred_index >= 0 then
          List.iter
            (fun (p : Sir.phi) -> p.Sir.phi_args.(pred_index) <- top p.Sir.phi_var)
            sb.Sir.phis)
      (Sir.succs b);
    List.iter walk dom.Dom.children.(bid);
    List.iter
      (fun l ->
        match stacks.(l) with
        | _ :: rest -> stacks.(l) <- rest
        | [] -> assert false)
      !pushed
  in
  walk Sir.entry_bid;
  Scratch.give_ints counters;
  List.rev !formals_v1

(** Build HSSA form for one function.  Assumes χ/μ lists are already
    attached (see [Spec_alias.Annotate]) and critical edges are split.
    [dom_of] supplies a (possibly cached) dominator tree valid for the
    function's current CFG; when absent one is computed here. *)
let build_func ?dom_of (prog : Sir.prog) (f : Sir.func) : t =
  let dom =
    match dom_of with
    | Some get -> get f
    | None ->
      Sir.recompute_preds f;
      Dom.compute f
  in
  let it = collect_vars prog f in
  insert_phis f dom it;
  let formals_v1 = rename prog f dom it in
  release it;
  { prog; func = f; dom; formals_v1 }

(** Build HSSA for every function in the program. *)
let build ?dom_of (prog : Sir.prog) : t list =
  let acc = ref [] in
  Sir.iter_funcs (fun f -> acc := build_func ?dom_of prog f :: !acc) prog;
  List.rev !acc
