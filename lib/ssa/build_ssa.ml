(** HSSA construction: phi insertion at iterated dominance frontiers
    (Cytron et al.) over *all* variables — real scalars, memory-resident
    variables, and the virtual variables introduced by the alias phase —
    followed by stack-based renaming in dominator-tree preorder.

    χ operands are definitions (the statement may update the variable);
    μ operands are uses.  After renaming, every [Lod], [Stid] target,
    χ lhs/rhs, μ operand, and phi lhs/arg refers to an SSA version
    variable whose [vorig] points back to the underlying variable. *)

open Spec_ir
open Spec_cfg

type t = {
  prog : Sir.prog;
  func : Sir.func;
  dom : Dom.t;
}

(* Variables defined / used in a function, by original id. *)
let collect_vars (prog : Sir.prog) (f : Sir.func) =
  let syms = prog.Sir.syms in
  let defs = Hashtbl.create 64 in     (* var -> def block list *)
  let used = Hashtbl.create 64 in
  let add_def v b =
    let v = (Symtab.orig syms v).Symtab.vid in
    let cur = match Hashtbl.find_opt defs v with Some l -> l | None -> [] in
    if not (List.mem b cur) then Hashtbl.replace defs v (b :: cur)
  in
  let add_use v =
    let v = (Symtab.orig syms v).Symtab.vid in
    Hashtbl.replace used v ()
  in
  Vec.iter
    (fun (b : Sir.bb) ->
      let bid = b.Sir.bid in
      List.iter
        (fun (s : Sir.stmt) ->
          List.iter (Sir.iter_expr_uses add_use) (Sir.stmt_exprs s.Sir.kind);
          (match Sir.stmt_def s.Sir.kind with
           | Some v -> add_def v bid
           | None -> ());
          List.iter (fun m -> add_use m.Sir.mu_var) s.Sir.mus;
          List.iter (fun c -> add_def c.Sir.chi_var bid; add_use c.Sir.chi_var)
            s.Sir.chis)
        b.Sir.stmts;
      List.iter (Sir.iter_expr_uses add_use) (Sir.term_exprs b.Sir.term))
    f.Sir.fblocks;
  List.iter (fun v -> add_def v Sir.entry_bid) f.Sir.fformals;
  defs, used

let insert_phis (prog : Sir.prog) (f : Sir.func) (dom : Dom.t) =
  let defs, used = collect_vars prog f in
  Hashtbl.iter
    (fun v def_blocks ->
      (* semi-pruned: skip variables never used in this function *)
      if Hashtbl.mem used v || List.length def_blocks > 1 then
        List.iter
          (fun b ->
            let blk = Sir.block f b in
            if not (List.exists (fun p -> p.Sir.phi_var = v) blk.Sir.phis)
            then begin
              let n = List.length blk.Sir.preds in
              blk.Sir.phis <-
                { Sir.phi_var = v; Sir.phi_lhs = v;
                  Sir.phi_args = Array.make n v; Sir.phi_live = true }
                :: blk.Sir.phis
            end)
          (Dom.df_plus dom def_blocks))
    defs

let rename (prog : Sir.prog) (f : Sir.func) (dom : Dom.t) =
  let syms = prog.Sir.syms in
  let n_orig = Symtab.count syms in
  let stacks : int list array = Array.make n_orig [] in
  let counters : int array = Array.make n_orig 0 in
  let top v =
    let v = (Symtab.orig syms v).Symtab.vid in
    match stacks.(v) with
    | top :: _ -> top
    | [] -> v     (* version 0: the original variable itself *)
  in
  let push_new v =
    let v = (Symtab.orig syms v).Symtab.vid in
    counters.(v) <- counters.(v) + 1;
    let ver = Symtab.add_version syms ~orig_id:v ~ver:counters.(v) in
    stacks.(v) <- ver.Symtab.vid :: stacks.(v);
    ver.Symtab.vid
  in
  let rename_expr e = Sir.map_expr_uses top e in
  let rec walk bid =
    let b = Sir.block f bid in
    let pushed = ref [] in
    let note v = pushed := (Symtab.orig syms v).Symtab.vid :: !pushed in
    (* phis define new versions *)
    List.iter
      (fun (p : Sir.phi) ->
        p.Sir.phi_lhs <- push_new p.Sir.phi_var;
        note p.Sir.phi_var)
      b.Sir.phis;
    (* formals at entry *)
    if bid = Sir.entry_bid then
      List.iter
        (fun v ->
          let nv = push_new v in
          note v;
          (* the formal's incoming value *is* version 1; remember mapping *)
          ignore nv)
        f.Sir.fformals;
    List.iter
      (fun (s : Sir.stmt) ->
        (* uses first *)
        s.Sir.kind <- Sir.map_stmt_exprs rename_expr s.Sir.kind;
        List.iter (fun m -> m.Sir.mu_opnd <- top m.Sir.mu_var) s.Sir.mus;
        (* direct definition *)
        (match s.Sir.kind with
         | Sir.Stid (v, e) ->
           let nv = push_new v in
           note v;
           s.Sir.kind <- Sir.Stid (nv, e)
         | Sir.Call c ->
           (match c.Sir.ret with
            | Some r ->
              let nr = push_new r in
              note r;
              s.Sir.kind <- Sir.Call { c with Sir.ret = Some nr }
            | None -> ())
         | Sir.Istr _ | Sir.Snop -> ());
        (* chi definitions come after the statement *)
        List.iter
          (fun (c : Sir.chi) ->
            c.Sir.chi_rhs <- top c.Sir.chi_var;
            c.Sir.chi_lhs <- push_new c.Sir.chi_var;
            note c.Sir.chi_var)
          s.Sir.chis)
      b.Sir.stmts;
    b.Sir.term <- Sir.map_term_exprs rename_expr b.Sir.term;
    (* fill phi operands in successors *)
    List.iter
      (fun sid ->
        let sb = Sir.block f sid in
        let pred_index =
          let rec idx i = function
            | [] -> -1
            | p :: _ when p = bid -> i
            | _ :: rest -> idx (i + 1) rest
          in
          idx 0 sb.Sir.preds
        in
        if pred_index >= 0 then
          List.iter
            (fun (p : Sir.phi) -> p.Sir.phi_args.(pred_index) <- top p.Sir.phi_var)
            sb.Sir.phis)
      (Sir.succs b);
    List.iter walk dom.Dom.children.(bid);
    List.iter
      (fun v ->
        match stacks.(v) with
        | _ :: rest -> stacks.(v) <- rest
        | [] -> assert false)
      !pushed
  in
  walk Sir.entry_bid

(** Build HSSA form for one function.  Assumes χ/μ lists are already
    attached (see [Spec_alias.Annotate]) and critical edges are split.
    [dom_of] supplies a (possibly cached) dominator tree valid for the
    function's current CFG; when absent one is computed here. *)
let build_func ?dom_of (prog : Sir.prog) (f : Sir.func) : t =
  let dom =
    match dom_of with
    | Some get -> get f
    | None ->
      Sir.recompute_preds f;
      Dom.compute f
  in
  insert_phis prog f dom;
  rename prog f dom;
  { prog; func = f; dom }

(** Build HSSA for every function in the program. *)
let build ?dom_of (prog : Sir.prog) : t list =
  let acc = ref [] in
  Sir.iter_funcs (fun f -> acc := build_func ?dom_of prog f :: !acc) prog;
  List.rev !acc
