(** Flow-sensitive pointer refinement (the last stage of the paper's
    Figure 4): resolve SSA address expressions to definite abstract
    locations through use-def chains, so the next χ/μ annotation round can
    shrink a site's operand lists to its unique target. *)

(** Scan a program in SSA form; returns [site -> definite LOC] for every
    indirect-reference site whose address resolves uniquely.  When [acc]
    is given, facts accumulate into it (sites keep ids across pipeline
    rounds); a site that no longer resolves is removed. *)
val compute :
  ?acc:(int, Spec_ir.Loc.t) Hashtbl.t ->
  Spec_ir.Sir.prog ->
  (int, Spec_ir.Loc.t) Hashtbl.t

(** Per-function variant for the parallel pipeline: scan one function and
    return its refinement decisions in scan order ([Some loc] = record,
    [None] = retract).  Sites are function-disjoint, so decision lists
    from different functions commute. *)
val compute_func :
  Spec_ir.Symtab.t -> Spec_ir.Sir.func -> (int * Spec_ir.Loc.t option) list

(** Apply a decision list to an accumulated [site -> LOC] table. *)
val merge_into :
  (int, Spec_ir.Loc.t) Hashtbl.t -> (int * Spec_ir.Loc.t option) list -> unit
