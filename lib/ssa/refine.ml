(** Flow-sensitive pointer refinement (the last stage of the paper's
    Figure 4: "perform a flow sensitive pointer analysis using factored
    use-def chain to refine the μ and χ lists").

    Once the program is in SSA form, many address expressions resolve to a
    unique abstract location by walking SSA use-def chains: [p = &x; *p =
    e] definitely writes [x] and nothing else, and a pointer fed by a
    single [malloc] definitely writes that allocation site.  The
    refinement records [site -> definite LOC]; the next χ/μ annotation
    round narrows that site's operand lists to the definite target (plus
    the class virtual variable, which keeps the class's value chain
    versioned), instead of the whole equivalence class.

    This sharpens the *nonspeculative* baseline — exactly the paper's
    point that speculation should pay only where static analysis cannot
    already disambiguate. *)

open Spec_ir

type vdef = Dstid of Sir.expr | Dmalloc of int | Dother

(* version -> definition, per function *)
let build_defs (f : Sir.func) : (int, vdef) Hashtbl.t =
  let defs = Hashtbl.create 64 in
  Vec.iter
    (fun (b : Sir.bb) ->
      List.iter
        (fun (p : Sir.phi) -> Hashtbl.replace defs p.Sir.phi_lhs Dother)
        b.Sir.phis;
      List.iter
        (fun (s : Sir.stmt) ->
          (match s.Sir.kind with
           | Sir.Stid (v, e) -> Hashtbl.replace defs v (Dstid e)
           | Sir.Call { callee = "malloc"; ret = Some r; csite; _ } ->
             Hashtbl.replace defs r (Dmalloc csite)
           | Sir.Call { ret = Some r; _ } -> Hashtbl.replace defs r Dother
           | Sir.Istr _ | Sir.Call _ | Sir.Snop -> ());
          List.iter
            (fun (c : Sir.chi) -> Hashtbl.replace defs c.Sir.chi_lhs Dother)
            s.Sir.chis)
        b.Sir.stmts)
    f.Sir.fblocks;
  defs

(** Resolve an (SSA) address expression to a definite abstract location,
    following use-def chains through copies and pointer arithmetic. *)
let rec resolve syms defs ~fuel (e : Sir.expr) : Loc.t option =
  if fuel <= 0 then None
  else
    match e with
    | Sir.Lda v -> Some (Loc.Lvar (Symtab.orig syms v).Symtab.vid)
    | Sir.Lod v -> (
        match Hashtbl.find_opt defs v with
        | Some (Dstid e') -> resolve syms defs ~fuel:(fuel - 1) e'
        | Some (Dmalloc site) -> Some (Loc.Lheap site)
        | Some Dother | None -> None)
    | Sir.Binop ((Sir.Add | Sir.Sub), ty, a, b) when Types.is_ptr ty ->
      (* pointer arithmetic stays within the object; the pointer is the
         operand with pointer type *)
      let pick x y =
        match resolve syms defs ~fuel:(fuel - 1) x with
        | Some l -> Some l
        | None -> resolve syms defs ~fuel:(fuel - 1) y
      in
      pick a b
    | Sir.Unop (_, _, x) -> resolve syms defs ~fuel:(fuel - 1) x
    | Sir.Const _ | Sir.Binop _ | Sir.Ilod _ -> None

(** Scan one function in SSA form; returns the refinement decisions for
    every indirect-reference site it contains, in scan order:
    [Some loc] when the site's address resolves uniquely, [None] when it
    does not (and any previously recorded fact must be dropped).  Sites
    are function-disjoint, so decisions from different functions can be
    merged into a shared table in any function order. *)
let compute_func (syms : Symtab.t) (f : Sir.func) :
    (int * Loc.t option) list =
  let defs = build_defs f in
  let out = ref [] in
  let record site l = out := (site, l) :: !out in
  let scan_expr e =
    Sir.iter_subexprs
      (function
        | Sir.Ilod (_, a, site) -> record site (resolve syms defs ~fuel:16 a)
        | _ -> ())
      e
  in
  Vec.iter
    (fun (b : Sir.bb) ->
      List.iter
        (fun (s : Sir.stmt) ->
          List.iter scan_expr (Sir.stmt_exprs s.Sir.kind);
          match s.Sir.kind with
          | Sir.Istr (_, a, _, site) -> record site (resolve syms defs ~fuel:16 a)
          | _ -> ())
        b.Sir.stmts;
      List.iter scan_expr (Sir.term_exprs b.Sir.term))
    f.Sir.fblocks;
  List.rev !out

(** Apply one function's decisions to the accumulated site table. *)
let merge_into acc decisions =
  List.iter
    (function
      | site, Some l -> Hashtbl.replace acc site l
      | site, None -> Hashtbl.remove acc site)
    decisions

(** Scan a program in SSA form; returns [site -> definite LOC] for every
    indirect-reference site whose address has a unique resolvable
    target.  Accumulates into [acc] when given (sites keep their ids
    across pipeline rounds). *)
let compute ?(acc = Hashtbl.create 32) (prog : Sir.prog) :
    (int, Loc.t) Hashtbl.t =
  Sir.iter_funcs
    (fun f -> merge_into acc (compute_func prog.Sir.syms f))
    prog;
  acc
