(** Shared machine-backend contract: counters, config, the resolved
    program representation and the {!S} signature each core model
    implements.  See {!Machine} for the dispatching façade. *)

open Spec_ir

exception Machine_error of string

(** Raise {!Machine_error} with a formatted message. *)
val error : ('a, Format.formatter, unit, 'b) format4 -> 'a

(** {1 Backend identity} *)

type kind =
  | Inorder  (** the paper's EPIC model: scoreboard + ALAT *)
  | Ooo  (** modern control: ROB + LSQ + memory-dependence predictor *)

val all_kinds : kind list
val kind_name : kind -> string
val kind_of_string : string -> kind option

(** {1 Counters, result, config} *)

type counters = {
  mutable insns : int;
  mutable cycles : int;
  mutable data_cycles : int;  (** stall cycles waiting on loads *)
  mutable loads_plain : int;
  mutable loads_adv : int;
  mutable loads_spec : int;
  mutable checks : int;
  mutable check_misses : int;
  mutable stores : int;
  mutable branches : int;
  mutable rse_stall_cycles : int;
  mutable max_stacked_regs : int;
  mutable br_mispredicts : int;  (** OoO only; 0 on the in-order core *)
  mutable lsq_replays : int;  (** OoO memory-order violations replayed *)
  mutable mdp_poisons : int;  (** OoO injected predictor/LSQ flushes *)
}

val fresh_counters : unit -> counters

(** All loads that actually accessed memory. *)
val loads_retired : counters -> int

(** All retired load-class instructions including successful checks
    (Figure 11's denominator). *)
val loads_retired_with_checks : counters -> int

type result = {
  ret_int : int;
  output : string;
  perf : counters;
  alat : Alat.t;
}

(** Memory-dependence predictor for the out-of-order core's LSQ. *)
type mdp =
  | Mdp_none  (** always speculate loads past unresolved stores *)
  | Mdp_last_violator
  | Mdp_store_set

type config = {
  physical_stacked_regs : int;
  alat_entries : int;
  call_overhead : int;
  heap_bytes : int;
  fuel : int;
  issue_width : int;  (** in-order issue slots per cycle *)
  rob_entries : int;  (** OoO reorder-buffer window *)
  lsq_entries : int;  (** OoO store-queue window *)
  fetch_width : int;
  retire_width : int;
  alu_ports : int;
  mem_ports : int;
  br_penalty : int;  (** checkpoint-restore redirect cost *)
  replay_penalty : int;  (** LSQ violation squash + replay cost *)
  mdp : mdp;
}

val default_config : config

(** {1 Resolved program} *)

type rtarget =
  | Cmalloc of int
  | Cprint_int
  | Cprint_flt
  | Cseed
  | Crnd
  | Cuser of int
  | Cunknown of string
  | Cbad of string * int

type rinsn =
  | RMovi_i of int * int
  | RMovi_f of int * float
  | RMov of int * int
  | RLea_g of int * int
  | RLea_s of int * int
  | RLea_e of int * string
  | RLd of { dst : int; addr : int; fp : bool; kind : Spec_codegen.Itl.lkind }
  | RSt of { src : int; addr : int; fp : bool }
  | RAlu of Sir.binop * bool * int * int * int
  | RUn of Sir.unop * bool * int * int
  | RCall of { target : rtarget; args : int array; ret : int }

type rterm =
  | RTbr of int
  | RTbc of int * int * int
  | RTret_none
  | RTret of int

type rblock = { r_insns : rinsn array; r_term : rterm }

type rformal =
  | RFreg
  | RFmem of { aslot : int; vid : int; bytes : int; fp : bool }

type rfunc = {
  rf_name : string;
  rf_nregs : int;
  rf_blocks : rblock array;
  rf_mem_locals : (int * int * int) array;
  rf_formals : rformal array;
  rf_formal_regs : int array;
  rf_n_addr : int;
}

type rprog = {
  r_sir : Sir.prog;
  rfuncs : rfunc array;
  r_main : int;
}

(** Resolve a whole ITL program: one pass over the instructions. *)
val resolve : Spec_codegen.Itl.mprog -> rprog

(** {1 Backend signature} *)

(** What a core model must provide.  [faults] attaches a stress
    injector (see {!Spec_stress.Faults}); capacity pressure is applied
    by the caller through [config.alat_entries]. *)
module type S = sig
  val kind : kind

  val run_resolved :
    ?config:config -> ?faults:Spec_stress.Faults.injector -> rprog -> result

  (** Resolve and run an ITL program from [main]. *)
  val run :
    ?config:config -> ?faults:Spec_stress.Faults.injector ->
    Spec_codegen.Itl.mprog -> result

  (** Convenience: lower an (out-of-SSA) SIR program and run it. *)
  val run_sir :
    ?config:config -> ?faults:Spec_stress.Faults.injector ->
    Sir.prog -> result
end
