(** ITL machine simulators behind one backend interface.

    Re-exports the shared backend contract ({!Backend}: counters,
    config, resolved programs, the {!Backend.S} signature), keeps the
    in-order EPIC core as the default engine — [run], [run_resolved]
    and [run_sir] behave exactly as before the backend split — and
    dispatches to a selected core model via the [*_on] functions.

    Backends agree on architectural semantics (program output, [insns],
    ALAT behaviour) and differ only in timing; [test/test_backends.ml]
    enforces both halves of that contract. *)

include module type of struct include Backend end

(** {1 The default engine (the in-order EPIC core)} *)

include Backend.S

(** {1 Backend dispatch} *)

type backend = kind

val all_backends : backend list
val backend_name : backend -> string
val backend_of_string : string -> backend option

(** First-class access to a core model. *)
val engine : backend -> (module Backend.S)

val run_resolved_on :
  backend -> ?config:config -> ?faults:Spec_stress.Faults.injector ->
  rprog -> result

val run_on :
  backend -> ?config:config -> ?faults:Spec_stress.Faults.injector ->
  Spec_codegen.Itl.mprog -> result

val run_sir_on :
  backend -> ?config:config -> ?faults:Spec_stress.Faults.injector ->
  Spec_ir.Sir.prog -> result
