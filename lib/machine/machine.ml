(** ITL machine simulators behind one backend interface.

    The shared contract — counters, config, the resolved program form
    and the {!Backend.S} signature — lives in {!Backend}; the two core
    models are {!Inorder} (the paper's EPIC machine: scoreboard + ALAT
    + RSE) and {!Ooo} (the modern control: ROB + LSQ with a
    memory-dependence predictor + checkpoint-restore).  Both execute
    the same resolved program in program order, so program output is
    byte-identical across backends; only the timing model differs.

    This module re-exports the contract, keeps the in-order core as the
    default engine ([run]/[run_resolved]/[run_sir] are unchanged for
    the ~70 historical call sites), and adds [*_on] dispatchers that
    select a backend at runtime. *)

include Backend

(* the in-order EPIC core remains the default engine *)
include Inorder

type backend = kind

let all_backends = all_kinds
let backend_name = kind_name
let backend_of_string = kind_of_string

let engine : backend -> (module Backend.S) = function
  | Inorder -> (module Inorder)
  | Ooo -> (module Ooo)

let run_resolved_on backend ?config ?faults rp =
  let (module B : Backend.S) = engine backend in
  B.run_resolved ?config ?faults rp

let run_on backend ?config ?faults mp =
  let (module B : Backend.S) = engine backend in
  B.run ?config ?faults mp

let run_sir_on backend ?config ?faults prog =
  let (module B : Backend.S) = engine backend in
  B.run_sir ?config ?faults prog
