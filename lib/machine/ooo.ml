(** The out-of-order core — the modern control for the paper's claims.

    Same architectural semantics as {!Inorder} — instructions execute in
    program order over the shared flat memory model, so program output,
    instruction counts and ALAT hit/miss behaviour are identical across
    backends by construction — but the timing model is a dataflow
    out-of-order machine, computed alongside the in-order functional
    walk (trace-driven timing):

    - {b rename}: per-frame [ready] arrays hold the {e completion} time
      of each register's latest writer; a consumer never waits on a
      stale (WAR/WAW) definition, which is exactly what a physical
      register file buys;
    - {b ROB}: a circular buffer of retirement times.  Dispatch stalls
      when the instruction [rob_entries] older has not retired;
      retirement is in order and [retire_width]-wide; [data_cycles]
      counts only latency a load exposes {e at the retirement point} —
      latency the window hid costs nothing, which is the quantity to
      compare against the in-order core's stall counter;
    - {b reservation stations / ports}: instructions issue when their
      sources are complete and a port ([alu_ports]/[mem_ports]) is
      free, modelled as per-port next-free-cycle arrays (greedy);
    - {b LSQ + memory-dependence predictor}: a load may issue while an
      older store's address is still unresolved.  If the store turns
      out to alias, the load (and its dependents, summarily) replays:
      [replay_penalty] cycles and a [lsq_replays] tick — the hardware
      analogue of a failed ld.c.  A store-set (or last-violator)
      predictor learns violating pairs and makes later loads wait;
    - {b checkpoint-restore}: conditional branches run through a 2-bit
      predictor; a mispredict redirects fetch to [resolve +
      br_penalty], modelling flash-copy checkpoint restore.  Wrong-path
      work is never executed functionally, so restore is implicit;
    - {b fault mapping}: stress injectors ({!Spec_stress.Faults})
      attach to the ALAT exactly as on the in-order core; every
      injected {e flush} additionally drains the store queue and
      poisons the memory-dependence predictor ([mdp_poisons]) — the
      context-switch analogue for LSQ state.

    The register-stack engine does not exist on this core:
    [rse_stall_cycles] stays 0 (physical registers are rename-managed);
    [max_stacked_regs] still tracks architectural frame demand. *)

open Spec_ir
open Spec_prof
open Backend

let kind = Backend.Ooo

type frame = {
  fr_serial : int;
  ints : int array;
  flts : float array;
  ready : int array;               (* completion time of latest writer *)
  prod_load : bool array;          (* producer was a load *)
  addrs : int array;               (* memory-resident local -> address *)
}

(* store-queue entry; records are preallocated and mutated in place *)
type store_ent = {
  mutable s_addr : int;
  mutable s_site : int;
  mutable s_addr_ready : int;      (* cycle the address is known *)
  mutable s_data_ready : int;      (* cycle the data can forward *)
}

type state = {
  rp : rprog;
  mem : Memory.t;
  cache : Cache.t;
  alat : Alat.t;
  cfg : config;
  ctrs : counters;
  out : Buffer.t;
  globals : int array;
  faults : Spec_stress.Faults.injector option;
  (* front end *)
  mutable fclock : int;            (* dispatch cycle of the next insn *)
  mutable fslot : int;             (* insns dispatched in cycle fclock *)
  mutable seq : int;               (* next dynamic sequence number *)
  (* ROB: circular buffer of retirement times *)
  retq : int array;
  mutable last_retire : int;
  (* issue ports: next free cycle per port *)
  alu_free : int array;
  mem_free : int array;
  (* store queue (circular) *)
  stq : store_ent array;
  mutable stq_n : int;             (* total stores pushed *)
  mutable stq_base : int;          (* entries below this were drained *)
  (* branch predictor: 2-bit saturating counters *)
  bp : Bytes.t;
  (* memory-dependence predictor *)
  ss_load : (int, int) Hashtbl.t;  (* load site -> store set *)
  ss_store : (int, int) Hashtbl.t; (* store site -> store set *)
  mutable ss_next : int;
  lv : (int, int) Hashtbl.t;       (* load site -> last violating store *)
  mutable flush_seen : int;
  mutable rng : int;
  mutable fuel : int;
  mutable frame_serial : int;
  mutable stacked_regs : int;
}

let bp_size = 4096
let site_of ~func_ix ~bid k = ((func_ix lsl 22) lxor (bid lsl 11)) lor k

let is_cmp = function
  | Sir.Lt | Sir.Le | Sir.Gt | Sir.Ge | Sir.Eq | Sir.Ne -> true
  | Sir.Add | Sir.Sub | Sir.Mul | Sir.Div | Sir.Rem
  | Sir.Band | Sir.Bor | Sir.Bxor | Sir.Shl | Sir.Shr -> false

(* ------------------------------------------------------------------ *)
(* Timing primitives                                                   *)
(* ------------------------------------------------------------------ *)

(* Dispatch the next dynamic instruction: charge it, stall the front
   end if the ROB is full, consume a fetch slot.  Returns the dispatch
   cycle and the instruction's sequence number. *)
let dispatch st =
  st.ctrs.insns <- st.ctrs.insns + 1;
  st.fuel <- st.fuel - 1;
  if st.fuel <= 0 then error "machine out of fuel";
  let s = st.seq in
  st.seq <- s + 1;
  let n = st.cfg.rob_entries in
  if s >= n then begin
    (* the slot we are about to reuse still holds insn [s-n]'s retire *)
    let r = st.retq.(s mod n) in
    if r > st.fclock then begin
      st.fclock <- r;
      st.fslot <- 0
    end
  end;
  let t = st.fclock in
  st.fslot <- st.fslot + 1;
  if st.fslot >= st.cfg.fetch_width then begin
    st.fslot <- 0;
    st.fclock <- st.fclock + 1
  end;
  (t, s)

(* In-order, width-limited retirement.  [data_cycles] counts only the
   latency a load exposes once it reaches the retirement point. *)
let retire st ~seq:s ~complete ~is_load =
  let n = st.cfg.rob_entries in
  let prev = if s = 0 then 0 else st.retq.((s - 1) mod n) in
  let w = st.cfg.retire_width in
  let wprev = if s >= w then st.retq.((s - w) mod n) + 1 else 0 in
  let floor_ = if prev > wprev then prev else wprev in
  if is_load && complete > floor_ then
    st.ctrs.data_cycles <- st.ctrs.data_cycles + (complete - floor_);
  let r = if complete > floor_ then complete else floor_ in
  st.retq.(s mod n) <- r;
  if r > st.last_retire then st.last_retire <- r

(* Greedy port allocation: earliest-free port, busy for one cycle. *)
let port (ports : int array) ready =
  let k = ref 0 in
  for i = 1 to Array.length ports - 1 do
    if ports.(i) < ports.(!k) then k := i
  done;
  let t = if ready > ports.(!k) then ready else ports.(!k) in
  ports.(!k) <- t + 1;
  t

let set_dst (fr : frame) dst complete is_load =
  if dst >= 0 then begin
    fr.ready.(dst) <- complete;
    fr.prod_load.(dst) <- is_load
  end

let rdy1 (fr : frame) t r = let v = fr.ready.(r) in if v > t then v else t

(* ------------------------------------------------------------------ *)
(* Fault mapping: ALAT flush => LSQ drain + predictor poison           *)
(* ------------------------------------------------------------------ *)

let poll_faults st =
  match st.faults with
  | None -> ()
  | Some inj ->
    let f = Spec_stress.Faults.flushes inj in
    if f > st.flush_seen then begin
      st.ctrs.mdp_poisons <- st.ctrs.mdp_poisons + (f - st.flush_seen);
      st.flush_seen <- f;
      st.stq_base <- st.stq_n;
      Hashtbl.reset st.ss_load;
      Hashtbl.reset st.ss_store;
      Hashtbl.reset st.lv
    end

let interfere st ~now =
  Alat.interfere st.alat ~now;
  poll_faults st

(* ------------------------------------------------------------------ *)
(* LSQ and memory-dependence predictor                                 *)
(* ------------------------------------------------------------------ *)

let predicted_dep st ~lsite ~ssite =
  match st.cfg.mdp with
  | Mdp_none -> false
  | Mdp_last_violator -> Hashtbl.find_opt st.lv lsite = Some ssite
  | Mdp_store_set ->
    (match Hashtbl.find_opt st.ss_load lsite with
     | None -> false
     | Some set ->
       (match Hashtbl.find_opt st.ss_store ssite with
        | Some s -> s = set
        | None -> false))

let train st ~lsite ~ssite =
  Hashtbl.replace st.lv lsite ssite;
  let set =
    match Hashtbl.find_opt st.ss_load lsite with
    | Some s -> s
    | None ->
      (match Hashtbl.find_opt st.ss_store ssite with
       | Some s -> s
       | None ->
         st.ss_next <- st.ss_next + 1;
         st.ss_next)
  in
  Hashtbl.replace st.ss_load lsite set;
  Hashtbl.replace st.ss_store ssite set

let push_store st ~addr ~site ~addr_ready ~data_ready =
  let cap = Array.length st.stq in
  let e = st.stq.(st.stq_n mod cap) in
  e.s_addr <- addr;
  e.s_site <- site;
  e.s_addr_ready <- addr_ready;
  e.s_data_ready <- data_ready;
  st.stq_n <- st.stq_n + 1

(* Timing of one load against the store queue.  [base] is the cycle the
   load's address is ready; the predictor may delay issue past stores it
   believes will alias; an actual alias with a still-unresolved store
   address is a memory-order violation: squash + replay. *)
let load_timing st ~t ~base ~site ~fp a =
  let cap = Array.length st.stq in
  let lo =
    let l = st.stq_n - cap in
    if st.stq_base > l then st.stq_base else if l > 0 then l else 0
  in
  (* predictor: wait for predicted-dependent unresolved store addresses *)
  let wait = ref base in
  for i = lo to st.stq_n - 1 do
    let e = st.stq.(i mod cap) in
    if e.s_addr_ready > base && predicted_dep st ~lsite:site ~ssite:e.s_site
    then if e.s_addr_ready > !wait then wait := e.s_addr_ready
  done;
  let issue = port st.mem_free (if !wait > t then !wait else t) in
  let lat = Cache.load_latency st.cache ~fp a in
  let complete = ref (issue + lat) in
  (* youngest older store to the same cell decides forward vs violate *)
  (try
     for i = st.stq_n - 1 downto lo do
       let e = st.stq.(i mod cap) in
       if e.s_addr = a then begin
         if e.s_addr_ready > issue then begin
           (* issued past an unresolved store that aliased: violation *)
           st.ctrs.lsq_replays <- st.ctrs.lsq_replays + 1;
           let src =
             if e.s_data_ready > e.s_addr_ready then e.s_data_ready
             else e.s_addr_ready
           in
           complete := src + st.cfg.replay_penalty;
           train st ~lsite:site ~ssite:e.s_site
         end
         else if e.s_data_ready >= issue then begin
           (* store still in flight: forward from the queue *)
           let c = e.s_data_ready + 1 in
           complete := if c > issue + 1 then c else issue + 1
         end;
         raise_notrace Exit
       end
     done
   with Exit -> ());
  !complete

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

let lea_addr st (fr : frame) = function
  | RLea_g (_, vid) ->
    let a = st.globals.(vid) in
    if a >= 0 then a else Memory.global_addr st.mem vid
  | RLea_s (_, s) -> fr.addrs.(s)
  | RLea_e (_, name) -> error "machine: no slot for %s" name
  | _ -> assert false

let alu_compute fr d op fp a b =
  if fp then begin
    let va = fr.flts.(a) and vb = fr.flts.(b) in
    match op with
    | Sir.Add -> fr.flts.(d) <- va +. vb
    | Sir.Sub -> fr.flts.(d) <- va -. vb
    | Sir.Mul -> fr.flts.(d) <- va *. vb
    | Sir.Div -> fr.flts.(d) <- va /. vb
    | Sir.Lt -> fr.ints.(d) <- (if va < vb then 1 else 0)
    | Sir.Le -> fr.ints.(d) <- (if va <= vb then 1 else 0)
    | Sir.Gt -> fr.ints.(d) <- (if va > vb then 1 else 0)
    | Sir.Ge -> fr.ints.(d) <- (if va >= vb then 1 else 0)
    | Sir.Eq -> fr.ints.(d) <- (if va = vb then 1 else 0)
    | Sir.Ne -> fr.ints.(d) <- (if va <> vb then 1 else 0)
    | Sir.Rem | Sir.Band | Sir.Bor | Sir.Bxor | Sir.Shl | Sir.Shr ->
      error "machine: fp alu %s" (Pp.binop_str op)
  end
  else begin
    let va = fr.ints.(a) and vb = fr.ints.(b) in
    match op with
    | Sir.Add -> fr.ints.(d) <- va + vb
    | Sir.Sub -> fr.ints.(d) <- va - vb
    | Sir.Mul -> fr.ints.(d) <- va * vb
    | Sir.Div ->
      if vb = 0 then error "machine: division by zero";
      fr.ints.(d) <- va / vb
    | Sir.Rem ->
      if vb = 0 then error "machine: remainder by zero";
      fr.ints.(d) <- va mod vb
    | Sir.Band -> fr.ints.(d) <- va land vb
    | Sir.Bor -> fr.ints.(d) <- va lor vb
    | Sir.Bxor -> fr.ints.(d) <- va lxor vb
    | Sir.Shl -> fr.ints.(d) <- va lsl (vb land 63)
    | Sir.Shr -> fr.ints.(d) <- va asr (vb land 63)
    | Sir.Lt -> fr.ints.(d) <- (if va < vb then 1 else 0)
    | Sir.Le -> fr.ints.(d) <- (if va <= vb then 1 else 0)
    | Sir.Gt -> fr.ints.(d) <- (if va > vb then 1 else 0)
    | Sir.Ge -> fr.ints.(d) <- (if va >= vb then 1 else 0)
    | Sir.Eq -> fr.ints.(d) <- (if va = vb then 1 else 0)
    | Sir.Ne -> fr.ints.(d) <- (if va <> vb then 1 else 0)
  end

let rec exec_insn st (fr : frame) ~site (i : rinsn) =
  match i with
  | RMovi_i (d, v) ->
    let t, s = dispatch st in
    set_dst fr d (t + 1) false;
    retire st ~seq:s ~complete:(t + 1) ~is_load:false;
    fr.ints.(d) <- v
  | RMovi_f (d, v) ->
    let t, s = dispatch st in
    set_dst fr d (t + 1) false;
    retire st ~seq:s ~complete:(t + 1) ~is_load:false;
    fr.flts.(d) <- v
  | RMov (d, sr) ->
    let t, s = dispatch st in
    let c = port st.alu_free (rdy1 fr t sr) + 1 in
    set_dst fr d c false;
    retire st ~seq:s ~complete:c ~is_load:false;
    fr.ints.(d) <- fr.ints.(sr);
    fr.flts.(d) <- fr.flts.(sr)
  | (RLea_g (d, _) | RLea_s (d, _) | RLea_e (d, _)) as lea ->
    let t, s = dispatch st in
    set_dst fr d (t + 1) false;
    retire st ~seq:s ~complete:(t + 1) ~is_load:false;
    fr.ints.(d) <- lea_addr st fr lea
  | RLd { dst; addr; fp; kind } -> exec_load st fr ~site ~dst ~addr ~fp ~kind
  | RSt { src; addr; fp } ->
    let t, s = dispatch st in
    st.ctrs.stores <- st.ctrs.stores + 1;
    let addr_rdy = rdy1 fr t addr in
    let data_rdy = rdy1 fr t src in
    let issue = port st.mem_free addr_rdy in
    push_store st ~addr:fr.ints.(addr) ~site ~addr_ready:issue
      ~data_ready:(if data_rdy > issue then data_rdy else issue);
    retire st ~seq:s ~complete:issue ~is_load:false;
    let a = fr.ints.(addr) in
    if fp then Memory.store_flt st.mem a fr.flts.(src)
    else Memory.store_int st.mem a fr.ints.(src);
    Cache.store st.cache a;
    interfere st ~now:t;
    Alat.invalidate_store st.alat ~addr:a ~bytes:Types.cell_size
  | RAlu (op, fp, d, a, b) ->
    let t, s = dispatch st in
    let latency = if fp && not (is_cmp op) then 4 else 1 in
    let r1 = rdy1 fr t a in
    let rdy = let r2 = fr.ready.(b) in if r2 > r1 then r2 else r1 in
    let c = port st.alu_free rdy + latency in
    set_dst fr d c false;
    retire st ~seq:s ~complete:c ~is_load:false;
    alu_compute fr d op fp a b
  | RUn (op, fp, d, sr) ->
    let t, s = dispatch st in
    let latency = if fp then 4 else 1 in
    let c = port st.alu_free (rdy1 fr t sr) + latency in
    set_dst fr d c false;
    retire st ~seq:s ~complete:c ~is_load:false;
    (match op with
     | Sir.Neg -> if fp then fr.flts.(d) <- -.fr.flts.(sr)
       else fr.ints.(d) <- -fr.ints.(sr)
     | Sir.Lnot -> fr.ints.(d) <- (if fr.ints.(sr) = 0 then 1 else 0)
     | Sir.I2f -> fr.flts.(d) <- float_of_int fr.ints.(sr)
     | Sir.F2i -> fr.ints.(d) <- int_of_float fr.flts.(sr))
  | RCall { target; args; ret } -> exec_call st fr ~target ~args ~ret

and exec_load st fr ~site ~dst ~addr ~fp ~kind =
  let open Spec_codegen.Itl in
  let a = fr.ints.(addr) in
  match kind with
  | Lchk ->
    let t, s = dispatch st in
    st.ctrs.checks <- st.ctrs.checks + 1;
    interfere st ~now:t;
    if Alat.check st.alat ~frame:fr.fr_serial ~reg:dst then
      (* speculation held: the check occupies a ROB slot but no port *)
      retire st ~seq:s ~complete:t ~is_load:false
    else begin
      st.ctrs.check_misses <- st.ctrs.check_misses + 1;
      let c = load_timing st ~t ~base:(rdy1 fr t addr) ~site ~fp a in
      set_dst fr dst c true;
      retire st ~seq:s ~complete:c ~is_load:true;
      if fp then fr.flts.(dst) <- Memory.load_flt st.mem a
      else fr.ints.(dst) <- Memory.load_int st.mem a;
      (* re-arm: a reloading ld.c behaves like ld.a for later checks *)
      Alat.insert st.alat ~frame:fr.fr_serial ~reg:dst ~addr:a
    end
  | (Lnorm | Ladv | Lspec | Lsa) as k ->
    let t, s = dispatch st in
    (match k with
     | Lnorm -> st.ctrs.loads_plain <- st.ctrs.loads_plain + 1
     | Ladv -> st.ctrs.loads_adv <- st.ctrs.loads_adv + 1
     | Lspec | Lsa -> st.ctrs.loads_spec <- st.ctrs.loads_spec + 1
     | Lchk -> assert false);
    let spec = k = Lspec || k = Lsa in
    let c = load_timing st ~t ~base:(rdy1 fr t addr) ~site ~fp a in
    set_dst fr dst c true;
    retire st ~seq:s ~complete:c ~is_load:true;
    if fp then
      fr.flts.(dst) <-
        (if spec then Memory.load_flt_spec st.mem a
         else Memory.load_flt st.mem a)
    else
      fr.ints.(dst) <-
        (if spec then Memory.load_int_spec st.mem a
         else Memory.load_int st.mem a);
    if k = Ladv || k = Lsa then begin
      interfere st ~now:t;
      Alat.insert st.alat ~frame:fr.fr_serial ~reg:dst ~addr:a
    end

and exec_call st fr ~target ~args ~ret =
  let t, s = dispatch st in
  let args_rdy =
    Array.fold_left (fun acc r -> let v = fr.ready.(r) in
                      if v > acc then v else acc)
      t args
  in
  retire st ~seq:s ~complete:args_rdy ~is_load:false;
  let set_builtin_ret result =
    if ret >= 0 then begin
      fr.ready.(ret) <- args_rdy + 1;
      fr.prod_load.(ret) <- false;
      fr.ints.(ret) <- result
    end
  in
  match target with
  | Cmalloc site ->
    set_builtin_ret (Memory.malloc st.mem ~site fr.ints.(args.(0)))
  | Cprint_int ->
    Buffer.add_string st.out (string_of_int fr.ints.(args.(0)));
    Buffer.add_char st.out '\n';
    set_builtin_ret 0
  | Cprint_flt ->
    Buffer.add_string st.out (Printf.sprintf "%.6g" fr.flts.(args.(0)));
    Buffer.add_char st.out '\n';
    set_builtin_ret 0
  | Cseed ->
    st.rng <- fr.ints.(args.(0));
    set_builtin_ret 0
  | Crnd ->
    let m = fr.ints.(args.(0)) in
    if m <= 0 then error "machine: rnd bound";
    st.rng <- (st.rng * 0x5851F42D4C957F2D + 0x14057B7EF767814F) land max_int;
    set_builtin_ret ((st.rng lsr 29) mod m)
  | Cbad (callee, n) -> error "machine: bad builtin call %s/%d" callee n
  | Cunknown name ->
    st.fclock <- st.fclock + st.cfg.call_overhead;
    error "machine: unknown function %s" name
  | Cuser ix ->
    (* call: fetch redirects into the callee *)
    st.fslot <- 0;
    st.fclock <- st.fclock + st.cfg.call_overhead;
    let rv, rf, rrdy = exec_func st fr ix args in
    st.fslot <- 0;
    st.fclock <- st.fclock + 1;
    if ret >= 0 then begin
      fr.ready.(ret) <- rrdy;
      fr.prod_load.(ret) <- false;
      fr.ints.(ret) <- rv;
      fr.flts.(ret) <- rf
    end

and exec_func st (caller : frame) ix (args : int array) : int * float * int =
  let rf = st.rp.rfuncs.(ix) in
  st.frame_serial <- st.frame_serial + 1;
  let n = rf.rf_nregs in
  let fr =
    { fr_serial = st.frame_serial;
      ints = Array.make n 0; flts = Array.make n 0.;
      ready = Array.make n 0; prod_load = Array.make n false;
      addrs = (if rf.rf_n_addr = 0 then [||] else Array.make rf.rf_n_addr 0) }
  in
  (* architectural frame accounting; rename absorbs RSE spills *)
  st.stacked_regs <- st.stacked_regs + n;
  if st.stacked_regs > st.ctrs.max_stacked_regs then
    st.ctrs.max_stacked_regs <- st.stacked_regs;
  let mark = Memory.stack_mark st.mem in
  Array.iter
    (fun (slot, vid, bytes) ->
      fr.addrs.(slot) <- Memory.push_frame_var st.mem vid bytes)
    rf.rf_mem_locals;
  let nf = Array.length rf.rf_formals in
  if nf <> Array.length args then
    error "machine: arity mismatch for %s" rf.rf_name;
  for k = 0 to nf - 1 do
    (match rf.rf_formals.(k) with
     | RFreg -> ()
     | RFmem { aslot; vid; bytes; fp } ->
       let a = Memory.push_frame_var st.mem vid bytes in
       fr.addrs.(aslot) <- a;
       if fp then Memory.store_flt st.mem a caller.flts.(args.(k))
       else Memory.store_int st.mem a caller.ints.(args.(k)));
    let r = rf.rf_formal_regs.(k) in
    if r >= 0 && r < n then begin
      fr.ints.(r) <- caller.ints.(args.(k));
      fr.flts.(r) <- caller.flts.(args.(k));
      (* dataflow: the argument's completion time crosses the call *)
      fr.ready.(r) <- caller.ready.(args.(k))
    end
  done;
  let result = exec_blocks st fr ~func_ix:ix rf in
  Memory.pop_frame st.mem mark;
  st.stacked_regs <- st.stacked_regs - n;
  result

and exec_blocks st (fr : frame) ~func_ix (rf : rfunc) : int * float * int =
  let rec run bid =
    let b = rf.rf_blocks.(bid) in
    let insns = b.r_insns in
    for k = 0 to Array.length insns - 1 do
      exec_insn st fr ~site:(site_of ~func_ix ~bid k) insns.(k)
    done;
    match b.r_term with
    | RTbr t ->
      st.ctrs.branches <- st.ctrs.branches + 1;
      (* unconditional taken branch: one-cycle fetch redirect *)
      st.fslot <- 0;
      st.fclock <- st.fclock + 1;
      run t
    | RTbc (c, tb, eb) ->
      st.ctrs.branches <- st.ctrs.branches + 1;
      let t, s = dispatch st in
      let resolve = port st.alu_free (rdy1 fr t c) + 1 in
      retire st ~seq:s ~complete:resolve ~is_load:false;
      let taken = fr.ints.(c) <> 0 in
      let idx = (site_of ~func_ix ~bid 2047 * 0x9E3779B1) land (bp_size - 1) in
      let ctr = Bytes.get_uint8 st.bp idx in
      let predicted = ctr >= 2 in
      Bytes.set_uint8 st.bp idx
        (if taken then (if ctr < 3 then ctr + 1 else 3)
         else if ctr > 0 then ctr - 1
         else 0);
      if predicted <> taken then begin
        (* mispredict: restore the checkpoint, redirect fetch *)
        st.ctrs.br_mispredicts <- st.ctrs.br_mispredicts + 1;
        let redirect = resolve + st.cfg.br_penalty in
        if redirect > st.fclock then begin
          st.fclock <- redirect;
          st.fslot <- 0
        end
      end;
      run (if taken then tb else eb)
    | RTret_none -> (0, 0., st.fclock)
    | RTret r ->
      let t, s = dispatch st in
      let rdy = rdy1 fr t r in
      retire st ~seq:s ~complete:rdy ~is_load:false;
      (fr.ints.(r), fr.flts.(r), rdy)
  in
  run 0

let run_resolved ?(config = default_config) ?faults (rp : rprog) : result =
  if rp.r_main < 0 then error "machine: unknown function main";
  let mem = Memory.create ~heap_bytes:config.heap_bytes rp.r_sir in
  let globals = Array.make (Symtab.count rp.r_sir.Sir.syms) (-1) in
  List.iter
    (fun g -> globals.(g) <- Memory.global_addr mem g)
    rp.r_sir.Sir.globals;
  let st =
    { rp; mem;
      cache = Cache.create ();
      alat = Alat.create ~entries:config.alat_entries ();
      cfg = config;
      ctrs = fresh_counters ();
      out = Buffer.create 256;
      globals;
      faults;
      fclock = 0;
      fslot = 0;
      seq = 0;
      retq = Array.make (max 1 config.rob_entries) 0;
      last_retire = 0;
      alu_free = Array.make (max 1 config.alu_ports) 0;
      mem_free = Array.make (max 1 config.mem_ports) 0;
      stq =
        Array.init (max 1 config.lsq_entries)
          (fun _ ->
            { s_addr = min_int; s_site = -1; s_addr_ready = 0;
              s_data_ready = 0 });
      stq_n = 0;
      stq_base = 0;
      bp = Bytes.make bp_size '\002';
      ss_load = Hashtbl.create 64;
      ss_store = Hashtbl.create 64;
      ss_next = 0;
      lv = Hashtbl.create 64;
      flush_seen = 0;
      rng = 88172645463325252;
      fuel = config.fuel;
      frame_serial = 0;
      stacked_regs = 0 }
  in
  Alat.set_faults st.alat faults;
  let dummy =
    { fr_serial = 0; ints = [||]; flts = [||]; ready = [||];
      prod_load = [||]; addrs = [||] }
  in
  let ri, _, _ = exec_func st dummy rp.r_main [||] in
  st.ctrs.cycles <- st.last_retire;
  let r =
    { ret_int = ri; output = Buffer.contents st.out; perf = st.ctrs;
      alat = st.alat }
  in
  Memory.release st.mem;
  r

let run ?config ?faults (mp : Spec_codegen.Itl.mprog) : result =
  run_resolved ?config ?faults (resolve mp)

let run_sir ?config ?faults (prog : Sir.prog) : result =
  run ?config ?faults (Spec_codegen.Codegen.lower prog)
