(** The in-order EPIC core — the paper's evaluation machine.

    Executes resolved ITL programs over the shared flat memory model
    while running a cycle-approximate in-order core model:

    - single-issue, non-blocking loads: an instruction stalls only when a
      source register is not ready yet (scoreboarding), which is when load
      latency becomes visible;
    - two-level cache with Itanium-flavoured latencies (int L1 hit = 2
      cycles, FP loads bypass L1 and hit L2 = 9 cycles);
    - the ALAT: ld.a allocates entries, stores invalidate them, ld.c
      costs nothing when the entry survives and reloads otherwise;
    - register-stack accounting with spill cycles when the stacked
      register demand exceeds the physical stacked file.

    Like the interpreter ({!Spec_prof.Interp}), the simulator executes
    the *resolved* program form ({!Backend.rprog}): symbol-table
    traversals, callee lookup and builtin dispatch were performed once at
    resolve time, and the per-instruction issue logic is specialized by
    source-operand count so the hot loop allocates nothing.  The
    observable results — output and every performance counter — are
    identical to the pre-refactor [Machine] module; [test/test_engines.ml]
    and [test/test_backends.ml] pin them against golden counters.

    Absolute cycle counts are not meant to match Itanium hardware; the
    mechanisms (what costs what, what invalidates what) are faithful, so
    relative effects — the paper's metrics — carry over. *)

open Spec_ir
open Spec_prof
open Backend

let kind = Backend.Inorder

type frame = {
  fr_serial : int;
  ints : int array;
  flts : float array;
  ready : int array;               (* cycle when register becomes ready *)
  prod_load : bool array;          (* producer was a load *)
  addrs : int array;               (* memory-resident local -> address *)
}

type state = {
  rp : rprog;
  mem : Memory.t;
  cache : Cache.t;
  alat : Alat.t;
  cfg : config;
  ctrs : counters;
  out : Buffer.t;
  globals : int array;             (* global vid -> address, -1 if absent *)
  mutable clock : int;
  mutable slot : int;                (* issue slots used in current cycle *)
  mutable rng : int;
  mutable fuel : int;
  mutable frame_serial : int;
  mutable stacked_regs : int;
}

let is_cmp = function
  | Sir.Lt | Sir.Le | Sir.Gt | Sir.Ge | Sir.Eq | Sir.Ne -> true
  | Sir.Add | Sir.Sub | Sir.Mul | Sir.Div | Sir.Rem
  | Sir.Band | Sir.Bor | Sir.Bxor | Sir.Shl | Sir.Shr -> false

(* timing: issue the instruction, stalling until sources are ready.
   Specialized by source count so the hot path allocates no operand
   lists.  Successful checks issue [free]: they retire without consuming
   an issue slot, per the paper's "a successful check costs 0 cycles". *)

let charge st =
  st.ctrs.insns <- st.ctrs.insns + 1;
  st.fuel <- st.fuel - 1;
  if st.fuel <= 0 then error "machine out of fuel"

let advance_slot st =
  st.slot <- st.slot + 1;
  if st.slot >= st.cfg.issue_width then begin
    st.slot <- 0;
    st.clock <- st.clock + 1
  end

let set_dst (fr : frame) dst start latency is_load =
  if dst >= 0 then begin
    fr.ready.(dst) <- start + (if latency > 1 then latency else 1);
    fr.prod_load.(dst) <- is_load
  end

let issue0 st (fr : frame) ~dst ~latency ~is_load =
  charge st;
  let start = st.clock in
  advance_slot st;
  set_dst fr dst start latency is_load

(* a successful check: retires for free *)
let issue_free st =
  charge st

let issue1 st (fr : frame) ~src ~dst ~latency ~is_load =
  charge st;
  let clock = st.clock in
  let rdy = fr.ready.(src) in
  let start = if rdy > clock then rdy else clock in
  if start > clock then begin
    if fr.prod_load.(src) then
      st.ctrs.data_cycles <- st.ctrs.data_cycles + (start - clock);
    st.clock <- start;
    st.slot <- 0
  end;
  advance_slot st;
  set_dst fr dst start latency is_load

let issue2 st (fr : frame) ~src1 ~src2 ~dst ~latency ~is_load =
  charge st;
  let clock = st.clock in
  let r1 = fr.ready.(src1) and r2 = fr.ready.(src2) in
  let rdy = if r1 > r2 then r1 else r2 in
  let start = if rdy > clock then rdy else clock in
  if start > clock then begin
    if (fr.prod_load.(src1) && r1 > clock)
       || (fr.prod_load.(src2) && r2 > clock) then
      st.ctrs.data_cycles <- st.ctrs.data_cycles + (start - clock);
    st.clock <- start;
    st.slot <- 0
  end;
  advance_slot st;
  set_dst fr dst start latency is_load

(* calls keep the general list form; they are rare *)
let issue_n st (fr : frame) ~(srcs : int array) =
  charge st;
  let clock = st.clock in
  let start = Array.fold_left (fun acc r -> max acc fr.ready.(r)) clock srcs in
  if start > clock then begin
    if Array.exists (fun r -> fr.prod_load.(r) && fr.ready.(r) > clock) srcs
    then st.ctrs.data_cycles <- st.ctrs.data_cycles + (start - clock);
    st.clock <- start;
    st.slot <- 0
  end;
  advance_slot st

let lea_addr st (fr : frame) = function
  | RLea_g (_, vid) ->
    let a = st.globals.(vid) in
    if a >= 0 then a else Memory.global_addr st.mem vid
  | RLea_s (_, s) -> fr.addrs.(s)
  | RLea_e (_, name) -> error "machine: no slot for %s" name
  | _ -> assert false

let rec exec_insn st (fr : frame) (i : rinsn) =
  match i with
  | RMovi_i (d, v) ->
    issue0 st fr ~dst:d ~latency:1 ~is_load:false;
    fr.ints.(d) <- v
  | RMovi_f (d, v) ->
    issue0 st fr ~dst:d ~latency:1 ~is_load:false;
    fr.flts.(d) <- v
  | RMov (d, s) ->
    issue1 st fr ~src:s ~dst:d ~latency:1 ~is_load:false;
    fr.ints.(d) <- fr.ints.(s);
    fr.flts.(d) <- fr.flts.(s)
  | (RLea_g (d, _) | RLea_s (d, _) | RLea_e (d, _)) as lea ->
    issue0 st fr ~dst:d ~latency:1 ~is_load:false;
    fr.ints.(d) <- lea_addr st fr lea
  | RLd { dst; addr; fp; kind } -> exec_load st fr ~dst ~addr ~fp ~kind
  | RSt { src; addr; fp } ->
    issue2 st fr ~src1:src ~src2:addr ~dst:(-1) ~latency:1 ~is_load:false;
    st.ctrs.stores <- st.ctrs.stores + 1;
    let a = fr.ints.(addr) in
    if fp then Memory.store_flt st.mem a fr.flts.(src)
    else Memory.store_int st.mem a fr.ints.(src);
    Cache.store st.cache a;
    Alat.interfere st.alat ~now:st.clock;
    Alat.invalidate_store st.alat ~addr:a ~bytes:Types.cell_size
  | RAlu (op, fp, d, a, b) ->
    let latency = if fp && not (is_cmp op) then 4 else 1 in
    issue2 st fr ~src1:a ~src2:b ~dst:d ~latency ~is_load:false;
    if fp then begin
      let va = fr.flts.(a) and vb = fr.flts.(b) in
      match op with
      | Sir.Add -> fr.flts.(d) <- va +. vb
      | Sir.Sub -> fr.flts.(d) <- va -. vb
      | Sir.Mul -> fr.flts.(d) <- va *. vb
      | Sir.Div -> fr.flts.(d) <- va /. vb
      | Sir.Lt -> fr.ints.(d) <- (if va < vb then 1 else 0)
      | Sir.Le -> fr.ints.(d) <- (if va <= vb then 1 else 0)
      | Sir.Gt -> fr.ints.(d) <- (if va > vb then 1 else 0)
      | Sir.Ge -> fr.ints.(d) <- (if va >= vb then 1 else 0)
      | Sir.Eq -> fr.ints.(d) <- (if va = vb then 1 else 0)
      | Sir.Ne -> fr.ints.(d) <- (if va <> vb then 1 else 0)
      | Sir.Rem | Sir.Band | Sir.Bor | Sir.Bxor | Sir.Shl | Sir.Shr ->
        error "machine: fp alu %s" (Pp.binop_str op)
    end
    else begin
      let va = fr.ints.(a) and vb = fr.ints.(b) in
      match op with
      | Sir.Add -> fr.ints.(d) <- va + vb
      | Sir.Sub -> fr.ints.(d) <- va - vb
      | Sir.Mul -> fr.ints.(d) <- va * vb
      | Sir.Div ->
        if vb = 0 then error "machine: division by zero";
        fr.ints.(d) <- va / vb
      | Sir.Rem ->
        if vb = 0 then error "machine: remainder by zero";
        fr.ints.(d) <- va mod vb
      | Sir.Band -> fr.ints.(d) <- va land vb
      | Sir.Bor -> fr.ints.(d) <- va lor vb
      | Sir.Bxor -> fr.ints.(d) <- va lxor vb
      | Sir.Shl -> fr.ints.(d) <- va lsl (vb land 63)
      | Sir.Shr -> fr.ints.(d) <- va asr (vb land 63)
      | Sir.Lt -> fr.ints.(d) <- (if va < vb then 1 else 0)
      | Sir.Le -> fr.ints.(d) <- (if va <= vb then 1 else 0)
      | Sir.Gt -> fr.ints.(d) <- (if va > vb then 1 else 0)
      | Sir.Ge -> fr.ints.(d) <- (if va >= vb then 1 else 0)
      | Sir.Eq -> fr.ints.(d) <- (if va = vb then 1 else 0)
      | Sir.Ne -> fr.ints.(d) <- (if va <> vb then 1 else 0)
    end
  | RUn (op, fp, d, s) ->
    let latency = if fp then 4 else 1 in
    issue1 st fr ~src:s ~dst:d ~latency ~is_load:false;
    (match op with
     | Sir.Neg -> if fp then fr.flts.(d) <- -.fr.flts.(s)
       else fr.ints.(d) <- -fr.ints.(s)
     | Sir.Lnot -> fr.ints.(d) <- (if fr.ints.(s) = 0 then 1 else 0)
     | Sir.I2f -> fr.flts.(d) <- float_of_int fr.ints.(s)
     | Sir.F2i -> fr.ints.(d) <- int_of_float fr.flts.(s))
  | RCall { target; args; ret } -> exec_call st fr ~target ~args ~ret

and exec_load st fr ~dst ~addr ~fp ~kind =
  let open Spec_codegen.Itl in
  let a = fr.ints.(addr) in
  match kind with
  | Lchk ->
    st.ctrs.checks <- st.ctrs.checks + 1;
    Alat.interfere st.alat ~now:st.clock;
    if Alat.check st.alat ~frame:fr.fr_serial ~reg:dst then
      (* speculation held: value already in dst, the check is free *)
      issue_free st
    else begin
      st.ctrs.check_misses <- st.ctrs.check_misses + 1;
      let latency = Cache.load_latency st.cache ~fp a in
      issue1 st fr ~src:addr ~dst ~latency ~is_load:true;
      if fp then fr.flts.(dst) <- Memory.load_flt st.mem a
      else fr.ints.(dst) <- Memory.load_int st.mem a;
      (* re-arm: a reloading ld.c behaves like ld.a for later checks *)
      Alat.insert st.alat ~frame:fr.fr_serial ~reg:dst ~addr:a
    end
  | (Lnorm | Ladv | Lspec | Lsa) as k ->
    (match k with
     | Lnorm -> st.ctrs.loads_plain <- st.ctrs.loads_plain + 1
     | Ladv -> st.ctrs.loads_adv <- st.ctrs.loads_adv + 1
     | Lspec | Lsa -> st.ctrs.loads_spec <- st.ctrs.loads_spec + 1
     | Lchk -> assert false);
    let spec = k = Lspec || k = Lsa in
    let latency = Cache.load_latency st.cache ~fp a in
    issue1 st fr ~src:addr ~dst ~latency ~is_load:true;
    if fp then
      fr.flts.(dst) <-
        (if spec then Memory.load_flt_spec st.mem a
         else Memory.load_flt st.mem a)
    else
      fr.ints.(dst) <-
        (if spec then Memory.load_int_spec st.mem a
         else Memory.load_int st.mem a);
    if k = Ladv || k = Lsa then begin
      Alat.interfere st.alat ~now:st.clock;
      Alat.insert st.alat ~frame:fr.fr_serial ~reg:dst ~addr:a
    end

and exec_call st fr ~target ~args ~ret =
  issue_n st fr ~srcs:args;
  let set_builtin_ret result =
    if ret >= 0 then begin
      fr.ready.(ret) <- st.clock;
      fr.prod_load.(ret) <- false;
      fr.ints.(ret) <- result
    end
  in
  match target with
  | Cmalloc site ->
    set_builtin_ret (Memory.malloc st.mem ~site fr.ints.(args.(0)))
  | Cprint_int ->
    Buffer.add_string st.out (string_of_int fr.ints.(args.(0)));
    Buffer.add_char st.out '\n';
    set_builtin_ret 0
  | Cprint_flt ->
    Buffer.add_string st.out (Printf.sprintf "%.6g" fr.flts.(args.(0)));
    Buffer.add_char st.out '\n';
    set_builtin_ret 0
  | Cseed ->
    st.rng <- fr.ints.(args.(0));
    set_builtin_ret 0
  | Crnd ->
    let m = fr.ints.(args.(0)) in
    if m <= 0 then error "machine: rnd bound";
    st.rng <- (st.rng * 0x5851F42D4C957F2D + 0x14057B7EF767814F) land max_int;
    set_builtin_ret ((st.rng lsr 29) mod m)
  | Cbad (callee, n) -> error "machine: bad builtin call %s/%d" callee n
  | Cunknown name ->
    st.clock <- st.clock + st.cfg.call_overhead;
    error "machine: unknown function %s" name
  | Cuser ix ->
    st.clock <- st.clock + st.cfg.call_overhead;
    let rv, rf = exec_func st fr ix args in
    st.clock <- st.clock + 1;
    if ret >= 0 then begin
      fr.ready.(ret) <- st.clock;
      fr.prod_load.(ret) <- false;
      fr.ints.(ret) <- rv;
      fr.flts.(ret) <- rf
    end

and exec_func st (caller : frame) ix (args : int array) : int * float =
  let rf = st.rp.rfuncs.(ix) in
  st.frame_serial <- st.frame_serial + 1;
  let n = rf.rf_nregs in
  let fr =
    { fr_serial = st.frame_serial;
      ints = Array.make n 0; flts = Array.make n 0.;
      ready = Array.make n 0; prod_load = Array.make n false;
      addrs = (if rf.rf_n_addr = 0 then [||] else Array.make rf.rf_n_addr 0) }
  in
  (* register-stack accounting *)
  st.stacked_regs <- st.stacked_regs + n;
  if st.stacked_regs > st.ctrs.max_stacked_regs then
    st.ctrs.max_stacked_regs <- st.stacked_regs;
  if st.stacked_regs > st.cfg.physical_stacked_regs then begin
    let spill = min n (st.stacked_regs - st.cfg.physical_stacked_regs) in
    st.ctrs.rse_stall_cycles <- st.ctrs.rse_stall_cycles + (2 * spill);
    st.clock <- st.clock + (2 * spill)
  end;
  let mark = Memory.stack_mark st.mem in
  (* stack slots for memory-resident locals *)
  Array.iter
    (fun (slot, vid, bytes) ->
      fr.addrs.(slot) <- Memory.push_frame_var st.mem vid bytes)
    rf.rf_mem_locals;
  (* bind formals: memory-resident formals spill to their slot; every
     formal with an in-range register is also bound to it *)
  let nf = Array.length rf.rf_formals in
  if nf <> Array.length args then
    error "machine: arity mismatch for %s" rf.rf_name;
  for k = 0 to nf - 1 do
    (match rf.rf_formals.(k) with
     | RFreg -> ()
     | RFmem { aslot; vid; bytes; fp } ->
       let a = Memory.push_frame_var st.mem vid bytes in
       fr.addrs.(aslot) <- a;
       if fp then Memory.store_flt st.mem a caller.flts.(args.(k))
       else Memory.store_int st.mem a caller.ints.(args.(k)));
    let r = rf.rf_formal_regs.(k) in
    if r >= 0 && r < n then begin
      fr.ints.(r) <- caller.ints.(args.(k));
      fr.flts.(r) <- caller.flts.(args.(k))
    end
  done;
  let result = exec_blocks st fr rf in
  Memory.pop_frame st.mem mark;
  st.stacked_regs <- st.stacked_regs - n;
  result

and exec_blocks st (fr : frame) (rf : rfunc) : int * float =
  let rec run bid =
    let b = rf.rf_blocks.(bid) in
    let insns = b.r_insns in
    for k = 0 to Array.length insns - 1 do
      exec_insn st fr insns.(k)
    done;
    match b.r_term with
    | RTbr t ->
      st.ctrs.branches <- st.ctrs.branches + 1;
      st.clock <- st.clock + 1;
      run t
    | RTbc (c, t, e) ->
      st.ctrs.branches <- st.ctrs.branches + 1;
      issue1 st fr ~src:c ~dst:(-1) ~latency:1 ~is_load:false;
      run (if fr.ints.(c) <> 0 then t else e)
    | RTret_none -> (0, 0.)
    | RTret r ->
      issue1 st fr ~src:r ~dst:(-1) ~latency:1 ~is_load:false;
      (fr.ints.(r), fr.flts.(r))
  in
  run 0

let run_resolved ?(config = default_config) ?faults (rp : rprog) : result =
  if rp.r_main < 0 then error "machine: unknown function main";
  let mem = Memory.create ~heap_bytes:config.heap_bytes rp.r_sir in
  let globals = Array.make (Symtab.count rp.r_sir.Sir.syms) (-1) in
  List.iter
    (fun g -> globals.(g) <- Memory.global_addr mem g)
    rp.r_sir.Sir.globals;
  let st =
    { rp; mem;
      cache = Cache.create ();
      alat = Alat.create ~entries:config.alat_entries ();
      cfg = config;
      ctrs = fresh_counters ();
      out = Buffer.create 256;
      globals;
      clock = 0;
      slot = 0;
      rng = 88172645463325252;
      fuel = config.fuel;
      frame_serial = 0;
      stacked_regs = 0 }
  in
  Alat.set_faults st.alat faults;
  (* main has no caller: bind its (empty) args from a dummy frame *)
  let dummy =
    { fr_serial = 0; ints = [||]; flts = [||]; ready = [||];
      prod_load = [||]; addrs = [||] }
  in
  let ri, _ = exec_func st dummy rp.r_main [||] in
  st.ctrs.cycles <- st.clock;
  let r =
    { ret_int = ri; output = Buffer.contents st.out; perf = st.ctrs;
      alat = st.alat }
  in
  Memory.release st.mem;
  r

let run ?config ?faults (mp : Spec_codegen.Itl.mprog) : result =
  run_resolved ?config ?faults (resolve mp)

let run_sir ?config ?faults (prog : Sir.prog) : result =
  run ?config ?faults (Spec_codegen.Codegen.lower prog)
