(** Advanced Load Address Table model.

    A small set-associative table of advanced-load entries, as on
    Itanium: [ld.a] allocates an entry tagged by its destination register
    and recording the accessed address; stores look the table up by
    address and invalidate overlapping entries; [ld.c] searches by
    register tag — a surviving entry means the speculation held and the
    check costs nothing, a missing entry means the value must be
    reloaded.  Entries are also lost to capacity eviction, which the
    ALAT-size ablation experiment measures, and — under a stress plan —
    to injected interference (periodic full flushes and random
    invalidation; see {!Spec_stress.Faults}). *)

type entry = {
  mutable tag_frame : int;   (* activation serial: models distinct
                                physical registers under the register stack *)
  mutable tag_reg : int;
  mutable addr : int;
  mutable valid : bool;
}

type t = {
  sets : entry array array;      (* [n_sets][assoc] *)
  n_sets : int;
  assoc : int;
  mutable next_victim : int;
  (* (frame, reg) -> the entry currently holding that tag.  Kept exact:
     a mapping exists iff its entry is valid with that tag, so insert
     and check are O(1) instead of scanning the whole table. *)
  tags : (int * int, entry) Hashtbl.t;
  mutable faults : Spec_stress.Faults.injector option;
  mutable inserts : int;
  mutable store_invalidations : int;
  mutable capacity_evictions : int;
}

let create ?(entries = 32) ?(assoc = 2) () =
  let n_sets = max 1 (entries / assoc) in
  { sets =
      Array.init n_sets (fun _ ->
          Array.init assoc (fun _ ->
              { tag_frame = -1; tag_reg = -1; addr = 0; valid = false }));
    n_sets; assoc; next_victim = 0;
    tags = Hashtbl.create (max 16 (n_sets * assoc));
    faults = None;
    inserts = 0; store_invalidations = 0; capacity_evictions = 0 }

let set_faults t inj = t.faults <- inj

let set_index t addr = (addr lsr 3) land (t.n_sets - 1)

(* Drop [e]'s tag mapping if it is the current holder.  An invalid entry
   can keep stale tag fields after the same tag was re-inserted
   elsewhere, in which case the mapping belongs to the newer entry and
   must survive. *)
let untag t e =
  match Hashtbl.find_opt t.tags (e.tag_frame, e.tag_reg) with
  | Some e' when e' == e -> Hashtbl.remove t.tags (e.tag_frame, e.tag_reg)
  | _ -> ()

let invalidate_entry t e =
  if e.valid then begin
    e.valid <- false;
    untag t e
  end

(* Injected interference: a full flush (context switch) empties the
   table; chaos invalidation drops one uniformly chosen live entry.
   Both only remove entries, so a faulted run can at worst reload a
   value that is current in memory — semantics are preserved. *)

let flush_all t =
  Array.iter (fun set -> Array.iter (invalidate_entry t) set) t.sets

let invalidate_random t rng =
  let n = Hashtbl.length t.tags in
  if n > 0 then begin
    let k = Spec_stress.Srng.below rng n in
    let i = ref 0 and victim = ref None in
    Array.iter
      (fun set ->
        Array.iter
          (fun e -> if e.valid then begin
               if !i = k then victim := Some e;
               incr i
             end)
          set)
      t.sets;
    match !victim with Some e -> invalidate_entry t e | None -> ()
  end

(** Advance injected interference to the machine clock (no-op without a
    stress plan).  Call before any table operation. *)
let interfere t ~now =
  match t.faults with
  | None -> ()
  | Some inj ->
    Spec_stress.Faults.advance inj ~upto:now
      ~flush:(fun () -> flush_all t)
      ~invalidate:(fun rng -> invalidate_random t rng)

(** Allocate an entry for an advanced load. *)
let insert t ~frame ~reg ~addr =
  t.inserts <- t.inserts + 1;
  (* an existing entry with the same register tag is replaced — found
     through the tag index, not a table scan *)
  (match Hashtbl.find_opt t.tags (frame, reg) with
   | Some e -> invalidate_entry t e
   | None -> ());
  let set = t.sets.(set_index t addr) in
  let victim =
    let rec find i = if i >= t.assoc then None
      else if not set.(i).valid then Some set.(i) else find (i + 1)
    in
    match find 0 with
    | Some e -> e
    | None ->
      t.capacity_evictions <- t.capacity_evictions + 1;
      t.next_victim <- (t.next_victim + 1) mod t.assoc;
      set.(t.next_victim)
  in
  invalidate_entry t victim;
  victim.tag_frame <- frame;
  victim.tag_reg <- reg;
  victim.addr <- addr;
  victim.valid <- true;
  Hashtbl.replace t.tags (frame, reg) victim

(** A store to [addr] of [bytes] invalidates overlapping entries. *)
let invalidate_store t ~addr ~bytes =
  Array.iter
    (fun set ->
      Array.iter
        (fun e ->
          if e.valid && e.addr < addr + bytes
             && addr < e.addr + Spec_ir.Types.cell_size
          then begin
            invalidate_entry t e;
            t.store_invalidations <- t.store_invalidations + 1
          end)
        set)
    t.sets

(** Check load: does the entry for (frame, reg) survive? *)
let check t ~frame ~reg = Hashtbl.mem t.tags (frame, reg)

(** Live (valid) entry count — exposed for the stress tests. *)
let live t = Hashtbl.length t.tags
