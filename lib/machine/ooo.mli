(** The out-of-order core: ROB + rename + LSQ with a memory-dependence
    predictor (store-set or last-violator) and branch checkpoint-restore.

    Architecturally identical to {!Inorder} — same program-order
    functional execution, so output, [insns] and ALAT behaviour match
    the in-order core exactly — with an out-of-order timing model
    computed alongside (trace-driven).  Stress-injected ALAT flushes
    additionally drain the store queue and poison the predictor. *)

include Backend.S
