(** The in-order EPIC core — the paper's evaluation machine.

    Scoreboarded single-issue timing with non-blocking loads, a
    two-level cache, the ALAT and register-stack spill accounting.
    Reproduces the pre-refactor [Machine] counters bit-for-bit
    (pinned by [test/test_engines.ml] and [test/test_backends.ml]). *)

include Backend.S
