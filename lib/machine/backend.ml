(** Shared machine-backend contract.

    Everything two execution backends must agree on lives here: the
    performance-counter record, the run {!result}, the {!config} knobs,
    the resolved program representation and the resolver itself, and the
    {!S} signature each core model implements.  The in-order EPIC core
    ({!Inorder}) and the out-of-order core ({!Ooo}) both execute the
    same {!rprog} in program order — identical architectural semantics,
    so program output is byte-identical across backends by construction
    — and differ only in the timing model behind the counters. *)

open Spec_ir

exception Machine_error of string

let error fmt = Fmt.kstr (fun s -> raise (Machine_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Backend identity                                                    *)
(* ------------------------------------------------------------------ *)

type kind =
  | Inorder  (** the paper's EPIC model: scoreboard + ALAT *)
  | Ooo  (** modern control: ROB + LSQ + memory-dependence predictor *)

let all_kinds = [ Inorder; Ooo ]
let kind_name = function Inorder -> "inorder" | Ooo -> "ooo"

let kind_of_string = function
  | "inorder" | "in-order" -> Some Inorder
  | "ooo" | "out-of-order" -> Some Ooo
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Counters, result, config                                            *)
(* ------------------------------------------------------------------ *)

type counters = {
  mutable insns : int;
  mutable cycles : int;
  mutable data_cycles : int;        (* stall cycles waiting on loads *)
  mutable loads_plain : int;
  mutable loads_adv : int;
  mutable loads_spec : int;
  mutable checks : int;
  mutable check_misses : int;
  mutable stores : int;
  mutable branches : int;
  mutable rse_stall_cycles : int;
  mutable max_stacked_regs : int;
  (* out-of-order core only; the in-order backend leaves these at 0 *)
  mutable br_mispredicts : int;
  mutable lsq_replays : int;        (* memory-order violations replayed *)
  mutable mdp_poisons : int;        (* injected predictor/LSQ flushes *)
}

let fresh_counters () =
  { insns = 0; cycles = 0; data_cycles = 0; loads_plain = 0; loads_adv = 0;
    loads_spec = 0; checks = 0; check_misses = 0; stores = 0; branches = 0;
    rse_stall_cycles = 0; max_stacked_regs = 0; br_mispredicts = 0;
    lsq_replays = 0; mdp_poisons = 0 }

(** All loads that actually accessed memory. *)
let loads_retired c = c.loads_plain + c.loads_adv + c.loads_spec + c.check_misses

(** All retired load-class instructions including successful checks
    (Figure 11's denominator). *)
let loads_retired_with_checks c = loads_retired c + (c.checks - c.check_misses)

type result = {
  ret_int : int;
  output : string;
  perf : counters;
  alat : Alat.t;
}

(** Memory-dependence predictor for the out-of-order core's LSQ. *)
type mdp =
  | Mdp_none  (** always speculate loads past unresolved stores *)
  | Mdp_last_violator
  | Mdp_store_set

type config = {
  physical_stacked_regs : int;
  alat_entries : int;
  call_overhead : int;
  heap_bytes : int;
  fuel : int;
  issue_width : int;               (* in-order issue slots per cycle *)
  (* out-of-order core (ignored by the in-order backend) *)
  rob_entries : int;
  lsq_entries : int;
  fetch_width : int;
  retire_width : int;
  alu_ports : int;
  mem_ports : int;
  br_penalty : int;                (* checkpoint-restore redirect cost *)
  replay_penalty : int;            (* LSQ violation squash + replay cost *)
  mdp : mdp;
}

let default_config =
  { physical_stacked_regs = 96; alat_entries = 32; call_overhead = 2;
    heap_bytes = 24 * 1024 * 1024; fuel = 400_000_000; issue_width = 2;
    rob_entries = 64; lsq_entries = 24; fetch_width = 4; retire_width = 4;
    alu_ports = 4; mem_ports = 2; br_penalty = 8; replay_penalty = 10;
    mdp = Mdp_store_set }

(* ------------------------------------------------------------------ *)
(* Resolved program                                                    *)
(* ------------------------------------------------------------------ *)

(** Builtin and user-call dispatch, decided at resolve time. *)
type rtarget =
  | Cmalloc of int                  (* allocation site *)
  | Cprint_int
  | Cprint_flt
  | Cseed
  | Crnd
  | Cuser of int                    (* index into resolved functions *)
  | Cunknown of string
  | Cbad of string * int            (* ill-formed builtin call: name/arity *)

type rinsn =
  | RMovi_i of int * int
  | RMovi_f of int * float
  | RMov of int * int
  | RLea_g of int * int             (* dst, global vid *)
  | RLea_s of int * int             (* dst, frame address slot *)
  | RLea_e of int * string          (* dst, local without a stack slot *)
  | RLd of { dst : int; addr : int; fp : bool; kind : Spec_codegen.Itl.lkind }
  | RSt of { src : int; addr : int; fp : bool }
  | RAlu of Sir.binop * bool * int * int * int
  | RUn of Sir.unop * bool * int * int
  | RCall of { target : rtarget; args : int array; ret : int }

type rterm =
  | RTbr of int
  | RTbc of int * int * int
  | RTret_none
  | RTret of int

type rblock = { r_insns : rinsn array; r_term : rterm }

type rformal =
  | RFreg                                   (* register-only formal *)
  | RFmem of { aslot : int; vid : int; bytes : int; fp : bool }

type rfunc = {
  rf_name : string;
  rf_nregs : int;                   (* = max 1 mf_nregs, the frame size *)
  rf_blocks : rblock array;
  rf_mem_locals : (int * int * int) array;  (* (addr slot, vid, bytes) *)
  rf_formals : rformal array;
  rf_formal_regs : int array;       (* per-formal register, -1 if none *)
  rf_n_addr : int;
}

type rprog = {
  r_sir : Sir.prog;
  rfuncs : rfunc array;
  r_main : int;
}

let cell_bytes v = max Types.cell_size v.Symtab.vsize

let resolve_func (mp : Spec_codegen.Itl.mprog) ~func_ix
    (mf : Spec_codegen.Itl.mfunc) : rfunc =
  let open Spec_codegen.Itl in
  let syms = mp.mp_sir.Sir.syms in
  let sf = Sir.find_func mp.mp_sir mf.mf_name in
  let addr_slots : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let rf_mem_locals =
    List.filter_map
      (fun vid ->
        if Symtab.is_mem syms vid then begin
          let slot = Hashtbl.length addr_slots in
          Hashtbl.replace addr_slots vid slot;
          Some (slot, vid, cell_bytes (Symtab.var syms vid))
        end
        else None)
      sf.Sir.flocals
    |> Array.of_list
  in
  let rf_formals =
    List.map
      (fun vid ->
        if Symtab.is_mem syms vid then begin
          let slot = Hashtbl.length addr_slots in
          Hashtbl.replace addr_slots vid slot;
          let v = Symtab.var syms vid in
          RFmem { aslot = slot; vid; bytes = cell_bytes v;
                  fp = Types.is_fp v.Symtab.vty }
        end
        else RFreg)
      sf.Sir.fformals
    |> Array.of_list
  in
  let resolve_lea d vid =
    let v = Symtab.var syms vid in
    match v.Symtab.vstorage with
    | Symtab.Sglobal -> RLea_g (d, vid)
    | _ ->
      (match Hashtbl.find_opt addr_slots vid with
       | Some s -> RLea_s (d, s)
       | None -> RLea_e (d, v.Symtab.vname))
  in
  let resolve_call ~callee ~args ~ret ~site =
    let args = Array.of_list args in
    let ret = match ret with Some r -> r | None -> -1 in
    let n = Array.length args in
    let builtin t =
      if n = 1 then RCall { target = t; args; ret }
      else RCall { target = Cbad (callee, n); args; ret }
    in
    match callee with
    | "malloc" -> builtin (Cmalloc site)
    | "print_int" -> builtin Cprint_int
    | "print_flt" -> builtin Cprint_flt
    | "seed" -> builtin Cseed
    | "rnd" -> builtin Crnd
    | name ->
      let target =
        match func_ix name with
        | Some ix -> Cuser ix
        | None -> Cunknown name
      in
      RCall { target; args; ret }
  in
  let resolve_insn = function
    | Movi (d, Sir.Cint v) -> RMovi_i (d, v)
    | Movi (d, Sir.Cflt v) -> RMovi_f (d, v)
    | Mov (d, s) -> RMov (d, s)
    | Lea (d, vid) -> resolve_lea d vid
    | Ld { dst; addr; fp; kind } -> RLd { dst; addr; fp; kind }
    | St { src; addr; fp } -> RSt { src; addr; fp }
    | Alu (op, fp, d, a, b) -> RAlu (op, fp, d, a, b)
    | Un (op, fp, d, s) -> RUn (op, fp, d, s)
    | Call { callee; args; ret; site } -> resolve_call ~callee ~args ~ret ~site
  in
  let rf_blocks =
    Array.map
      (fun b ->
        { r_insns = Array.of_list (List.map resolve_insn b.insns);
          r_term =
            (match b.mterm with
             | Tbr t -> RTbr t
             | Tbc (c, t, e) -> RTbc (c, t, e)
             | Tret None -> RTret_none
             | Tret (Some r) -> RTret r) })
      mf.mf_blocks
  in
  { rf_name = mf.mf_name; rf_nregs = max 1 mf.mf_nregs; rf_blocks;
    rf_mem_locals; rf_formals;
    rf_formal_regs = Array.of_list mf.mf_formals;
    rf_n_addr = Hashtbl.length addr_slots }

(** Resolve a whole ITL program: one pass over the instructions. *)
let resolve (mp : Spec_codegen.Itl.mprog) : rprog =
  let open Spec_codegen.Itl in
  let order = mp.mp_order in
  let ix_of = Hashtbl.create 16 in
  List.iteri (fun i name -> Hashtbl.replace ix_of name i) order;
  let func_ix name = Hashtbl.find_opt ix_of name in
  let rfuncs =
    Array.of_list
      (List.map
         (fun name ->
           resolve_func mp ~func_ix (Hashtbl.find mp.mp_funcs name))
         order)
  in
  { r_sir = mp.mp_sir; rfuncs;
    r_main = (match func_ix "main" with Some i -> i | None -> -1) }

(* ------------------------------------------------------------------ *)
(* Backend signature                                                   *)
(* ------------------------------------------------------------------ *)

(** What a core model must provide.  [faults] attaches a stress
    injector (see {!Spec_stress.Faults}); capacity pressure is applied
    by the caller through [config.alat_entries]. *)
module type S = sig
  val kind : kind

  val run_resolved :
    ?config:config -> ?faults:Spec_stress.Faults.injector -> rprog -> result

  (** Resolve and run an ITL program from [main]. *)
  val run :
    ?config:config -> ?faults:Spec_stress.Faults.injector ->
    Spec_codegen.Itl.mprog -> result

  (** Convenience: lower an (out-of-SSA) SIR program and run it. *)
  val run_sir :
    ?config:config -> ?faults:Spec_stress.Faults.injector ->
    Sir.prog -> result
end
