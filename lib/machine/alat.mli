(** Advanced Load Address Table model (IA-64-style).

    [ld.a] allocates an entry tagged by its destination register and the
    accessed address; stores invalidate overlapping entries; [ld.c]
    queries by register tag — a surviving entry means the data
    speculation held. Entries are also lost to capacity eviction, which
    the ALAT-size ablation measures, and to injected interference when a
    stress plan is attached (see {!Spec_stress.Faults}).

    Insert and check resolve the (frame, reg) tag through a hash index,
    so advanced loads are O(1) rather than a scan of every entry. *)

type entry = {
  mutable tag_frame : int;
  mutable tag_reg : int;
  mutable addr : int;
  mutable valid : bool;
}

type t = {
  sets : entry array array;
  n_sets : int;
  assoc : int;
  mutable next_victim : int;
  tags : (int * int, entry) Hashtbl.t;
  mutable faults : Spec_stress.Faults.injector option;
  mutable inserts : int;
  mutable store_invalidations : int;
  mutable capacity_evictions : int;
}

(** [create ~entries ~assoc ()] — default 32 entries, 2-way. *)
val create : ?entries:int -> ?assoc:int -> unit -> t

(** Attach (or clear) a fault injector; faults fire from {!interfere}. *)
val set_faults : t -> Spec_stress.Faults.injector option -> unit

(** Advance injected interference (flushes, chaos invalidation) to the
    machine clock.  No-op when no injector is attached. *)
val interfere : t -> now:int -> unit

(** Allocate an entry for an advanced load.  An existing entry with the
    same (frame, reg) tag is replaced; a full set evicts a victim.
    [frame] is the activation serial, standing in for the distinct
    physical registers of the register stack. *)
val insert : t -> frame:int -> reg:int -> addr:int -> unit

(** A store of [bytes] at [addr] invalidates every overlapping entry. *)
val invalidate_store : t -> addr:int -> bytes:int -> unit

(** Check-load query: does the entry for (frame, reg) survive? *)
val check : t -> frame:int -> reg:int -> bool

(** Number of live (valid) entries. *)
val live : t -> int
