(** Compilation pipelines, scheduled on the {!Passes} manager.

    A pipeline takes a freshly lowered SIR program through the paper's
    analysis and optimization stack:

      alias analysis -> χ/μ annotation -> speculation flags -> HSSA ->
      speculative SSAPRE -> out of SSA

    repeated for a few rounds so loads nested inside other loads (e.g.
    [A\[i\]\[j\]], which is an iload of an iload) get promoted outside-in,
    then store promotion, strength reduction and scalar cleanup.  The
    schedule is expressed as named passes over a {!Passes.manager}, so
    expensive analyses (Steensgaard points-to, mod/ref, dominator trees)
    are computed once and reused across rounds, every pass is timed, and
    [verify_each] checks IR invariants between passes.  The resulting
    program still runs on the reference interpreter and can be lowered
    to the ITL machine. *)

open Spec_ir
open Spec_prof
open Spec_spec
open Spec_ssapre

type variant =
  | Base                         (** -O3-like: nonspeculative PRE *)
  | Spec_profile of Profile.t    (** data speculation from alias profile *)
  | Spec_heuristic               (** data speculation from heuristic rules *)
  | Aggressive                   (** upper bound: ignore aliases, no checks *)
  | Noopt                        (** no PRE at all *)

let variant_name = function
  | Base -> "base"
  | Spec_profile _ -> "profile"
  | Spec_heuristic -> "heuristic"
  | Aggressive -> "aggressive"
  | Noopt -> "noopt"

(** The Aggressive variant reuses the heuristic speculation machinery but
    drops the checks afterwards — it models the paper's §5.3 "aggressive
    register promotion" upper bound, which allocates memory references to
    registers without considering potential aliasing (correct only when no
    aliasing actually occurs at runtime). *)
let strip_checks (prog : Sir.prog) = ignore (Passes.strip_checks prog : int)

type result = {
  prog : Sir.prog;
  stats : Ssapre.stats;
  variant : variant;
  report : Passes.report;
      (** per-pass wall time, statistics, and analysis-cache counters *)
}

let mode_of_variant = function
  | Base | Noopt -> Flags.Nonspec
  | Spec_profile p -> Flags.Profile_spec p
  | Spec_heuristic | Aggressive -> Flags.Heuristic_spec

(** The flow-sensitive refinement prepass (Figure 4's last stage): build
    SSA once, record definite pointer targets into the manager's
    refinement table, and drop back out of SSA.  Every later annotation
    consumes the recorded facts. *)
let prepass_schedule = [ "annotate"; "split-edges"; "build-ssa"; "refine";
                         "out-of-ssa" ]

(** One outside-in promotion round. *)
let round_schedule = [ "annotate"; "flags"; "split-edges"; "build-ssa";
                       "ssapre"; "out-of-ssa" ]

(** Run the optimizer on [prog] (destructively).  [rounds] bounds the
    outside-in promotion depth; [edge_profile] enables control
    speculation; [verify_each] validates CFG and SSA invariants between
    passes, naming the offending pass on failure; [perturb]
    adversarially corrupts the speculation-flag assignment (stress
    harness). *)
let optimize ?(rounds = 3) ?(config = None) ?(edge_profile = None)
    ?(strength = true) ?(verify_each = false) ?perturb (prog : Sir.prog)
    (variant : variant) : result =
  let mode = mode_of_variant variant in
  let base_cfg =
    match config with
    | Some c -> c
    | None -> Ssapre.default_config mode
  in
  let cfg =
    (* an explicit config keeps its own adversary; the optimize-level
       [perturb] wins when supplied (stress harness) *)
    match perturb with
    | Some _ -> { base_cfg with Ssapre.mode; Ssapre.adversary = perturb }
    | None -> { base_cfg with Ssapre.mode }
  in
  (match edge_profile with
   | Some p -> Profile.annotate_block_freqs p prog
   | None -> ());
  if variant = Noopt then
    { prog; stats = Ssapre.zero_stats; variant;
      report = Passes.empty_report () }
  else begin
    let mgr = Passes.create ~verify_each ?perturb ~mode ~config:cfg prog in
    Passes.run_passes mgr prepass_schedule;
    for _round = 1 to rounds do
      Passes.run_passes mgr round_schedule
    done;
    (* store promotion (SPRE of stores): runs on the de-versioned program
       with a fresh annotation; speculative policies allow promotion past
       unlikely-aliasing stores with ld.c recovery *)
    Passes.run_pass mgr "store-promo";
    if strength then Passes.run_pass mgr "strength";
    Passes.run_pass mgr "cleanup";
    if variant = Aggressive then Passes.run_pass mgr "strip-checks";
    { prog; stats = (Passes.context mgr).Passes.ssapre_total; variant;
      report = Passes.report mgr }
  end

(** Convenience: compile source and optimize. *)
let compile_and_optimize ?rounds ?config ?edge_profile ?strength ?verify_each
    ?perturb src variant =
  let prog = Lower.compile src in
  optimize ?rounds ?config ?edge_profile ?strength ?verify_each ?perturb prog
    variant

(** Profile a fresh compile of [src] (with whatever input [main] selects)
    and return the profile for feeding a [Spec_profile] pipeline of
    another compile. *)
let profile_of_source ?fuel src =
  let prog = Lower.compile src in
  let prof, _ = Profiler.profile ?fuel prog in
  prof
