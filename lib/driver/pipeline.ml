(** Compilation pipelines, scheduled on the {!Passes} manager.

    A pipeline takes a freshly lowered SIR program through the paper's
    analysis and optimization stack:

      alias analysis -> χ/μ annotation -> speculation flags -> HSSA ->
      speculative SSAPRE -> out of SSA

    repeated for a few rounds so loads nested inside other loads (e.g.
    [A\[i\]\[j\]], which is an iload of an iload) get promoted outside-in,
    then store promotion, strength reduction and scalar cleanup.  The
    schedule is expressed as named passes over a {!Passes.manager}, so
    expensive analyses (Steensgaard points-to, mod/ref, dominator trees)
    are computed once and reused across rounds, every pass is timed, and
    [verify_each] checks IR invariants between passes.  The resulting
    program still runs on the reference interpreter and can be lowered
    to the ITL machine. *)

open Spec_ir
open Spec_prof
open Spec_spec
open Spec_ssapre

type variant =
  | Base                         (** -O3-like: nonspeculative PRE *)
  | Spec_profile of Profile.t    (** data speculation from alias profile *)
  | Spec_heuristic               (** data speculation from heuristic rules *)
  | Aggressive                   (** upper bound: ignore aliases, no checks *)
  | Noopt                        (** no PRE at all *)

let variant_name = function
  | Base -> "base"
  | Spec_profile _ -> "profile"
  | Spec_heuristic -> "heuristic"
  | Aggressive -> "aggressive"
  | Noopt -> "noopt"

(** The Aggressive variant reuses the heuristic speculation machinery but
    drops the checks afterwards — it models the paper's §5.3 "aggressive
    register promotion" upper bound, which allocates memory references to
    registers without considering potential aliasing (correct only when no
    aliasing actually occurs at runtime). *)
let strip_checks (prog : Sir.prog) = ignore (Passes.strip_checks prog : int)

type result = {
  prog : Sir.prog;
  stats : Ssapre.stats;
  variant : variant;
  report : Passes.report;
      (** per-pass wall time, statistics, and analysis-cache counters *)
  from_cache : bool;
      (** true when the optimized program came out of the compile cache
          (the report is then empty: no passes ran) *)
  vm : Vmcode.program Lazy.t;
      (** threaded-code lowering of [prog] for the vm engine; already
          forced on a cache hit whose artifact carried valid bytecode
          (the [specart/4] vm section), lowered on demand otherwise *)
  safety : Spec_safety.Taint.report option;
      (** speculative-taint report over the optimized program, present
          when the compile ran with [~safety:true] *)
}

let mode_of_variant = function
  | Base | Noopt -> Flags.Nonspec
  | Spec_profile p -> Flags.Profile_spec p
  | Spec_heuristic | Aggressive -> Flags.Heuristic_spec

(** The flow-sensitive refinement prepass (Figure 4's last stage): build
    SSA once, record definite pointer targets into the manager's
    refinement table, and drop back out of SSA.  Every later annotation
    consumes the recorded facts. *)
let prepass_schedule = [ "annotate"; "split-edges"; "build-ssa"; "refine";
                         "out-of-ssa" ]

(** One outside-in promotion round. *)
let round_schedule = [ "annotate"; "flags"; "split-edges"; "build-ssa";
                       "ssapre"; "out-of-ssa" ]

(** Run the optimizer on [prog] (destructively).  [rounds] bounds the
    outside-in promotion depth; [edge_profile] enables control
    speculation; [verify_each] validates CFG and SSA invariants between
    passes, naming the offending pass on failure; [perturb]
    adversarially corrupts the speculation-flag assignment (stress
    harness).

    [deopt] compiles in deoptimization support: cleanup pins
    lowering-era variables, every surviving check statement gets a
    descriptor mapping optimized live state back to the unoptimized
    program point, and functions transformed by store promotion or LFTR
    (whose state mapping the descriptors cannot express) have their
    descriptors cleared again — the engines fall back to reload
    recovery there.  Off by default so existing compiles stay
    byte-identical.

    [safety] runs the [spec-safety] pass after optimization (one more
    pass-timing row) and surfaces the speculative-taint report in the
    result. *)
let optimize ?(rounds = 3) ?(config = None) ?(edge_profile = None)
    ?(strength = true) ?(verify_each = false) ?(deopt = false)
    ?(safety = false) ?perturb (prog : Sir.prog)
    (variant : variant) : result =
  let mode = mode_of_variant variant in
  let base_cfg =
    match config with
    | Some c -> c
    | None -> Ssapre.default_config mode
  in
  let cfg =
    (* an explicit config keeps its own adversary; the optimize-level
       [perturb] wins when supplied (stress harness) *)
    match perturb with
    | Some _ -> { base_cfg with Ssapre.mode; Ssapre.adversary = perturb }
    | None -> { base_cfg with Ssapre.mode }
  in
  (match edge_profile with
   | Some p -> Profile.annotate_block_freqs p prog
   | None -> ());
  if variant = Noopt then
    { prog; stats = Ssapre.zero_stats; variant;
      report = Passes.empty_report (); from_cache = false;
      vm = lazy (Vmcode.compile prog);
      safety =
        if safety then Some (Spec_safety.Taint.check prog) else None }
  else begin
    (* deoptimization baseline: everything below these marks is
       lowering-era state, reproducible by re-lowering the same source *)
    let vbase = Symtab.count prog.Sir.syms in
    let sbase = prog.Sir.next_stmt in
    let mgr = Passes.create ~verify_each ?perturb ~mode ~config:cfg prog in
    (* the same logical schedule as [prepass_schedule] / [round_schedule],
       fused: whole-program analyses run as sequential barriers and the
       per-function segment in between fans out to the [Parpool] global
       pool ([--jobs n]), joining deterministically in function order *)
    Passes.fused_prepass mgr;
    for _round = 1 to rounds do
      Passes.fused_round mgr
    done;
    (* store promotion (SPRE of stores): runs on the de-versioned program
       with a fresh annotation; speculative policies allow promotion past
       unlikely-aliasing stores with ld.c recovery *)
    let hazards =
      Passes.fused_post mgr
        ?deopt_vbase:(if deopt then Some vbase else None)
        ~strength ~strip:(variant = Aggressive) ()
    in
    if deopt then begin
      ignore (Spec_safety.Deopt.attach prog ~sbase ~vbase : int);
      List.iter
        (fun (fname, unsafe) ->
           if unsafe then
             ignore
               (Spec_safety.Deopt.clear_func (Sir.find_func prog fname)
                : int))
        hazards
    end;
    let safety_report =
      if safety then begin
        Passes.run_pass mgr "spec-safety";
        Some (Passes.safety_of (Passes.context mgr).Passes.cache)
      end else None
    in
    { prog; stats = (Passes.context mgr).Passes.ssapre_total; variant;
      report = Passes.report mgr; from_cache = false;
      vm = lazy (Vmcode.compile prog); safety = safety_report }
  end

(* ------------------------------------------------------------------ *)
(* Compile cache (persistent FDO)                                      *)
(* ------------------------------------------------------------------ *)

(** Cached-compile artifact: the optimized program, its SSAPRE totals,
    the cold compile's pass report (kept as provenance — a warm compile
    runs zero passes, so its own report is empty), and the threaded-code
    bytecode lowered from the program, so a warm compile hands the vm
    engine a ready-to-dispatch program. *)
type artifact = {
  a_stats : Ssapre.stats;
  a_report_json : string;
  a_prog : Sir.prog;
  a_vm : Vmcode.program option;
      (** [None] when the artifact's vm section failed to deserialize —
          the program itself is still good; the caller lowers fresh *)
}

(* /2: the fused parallel pipeline renames temporaries after their
   committed ids and renumbers segment-allocated statement ids, so
   optimized programs differ textually from /1 artifacts.
   /3: a [vm] section carrying the specvm/1 bytecode.
   /4: the program section is specsir/2 (secret bits + deoptimization
   descriptors), the vm section specvm/2, and the cache key includes
   the deopt flag — a deopt compile pins variables and attaches
   descriptors, so its output differs from a plain compile's. *)
let artifact_version = "specart/4"

let write_artifact (r : result) : string =
  let buf = Buffer.create 65536 in
  Printf.bprintf buf "%s\n" artifact_version;
  let s = r.stats in
  Printf.bprintf buf "stats %d %d %d %d %d %d\n" s.Ssapre.checks
    s.Ssapre.reloads s.Ssapre.saves s.Ssapre.inserts s.Ssapre.cspec_phis
    s.Ssapre.items;
  Printf.bprintf buf "report %s\n"
    (Spec_fdo.Textio.quote (Passes.report_to_json r.report));
  Printf.bprintf buf "prog %s\n"
    (Spec_fdo.Textio.quote (Spec_fdo.Sir_io.write r.prog));
  Printf.bprintf buf "vm %s\n"
    (Spec_fdo.Textio.quote (Spec_fdo.Vm_io.to_text (Lazy.force r.vm)));
  Buffer.add_string buf "end\n";
  Buffer.contents buf

let read_artifact (s : string) : (artifact, string) Stdlib.result =
  let open Spec_fdo in
  let lx = Textio.make s in
  try
    Textio.expect lx artifact_version;
    Textio.expect lx "stats";
    let checks = Textio.int_tok lx in
    let reloads = Textio.int_tok lx in
    let saves = Textio.int_tok lx in
    let inserts = Textio.int_tok lx in
    let cspec_phis = Textio.int_tok lx in
    let items = Textio.int_tok lx in
    Textio.expect lx "report";
    let a_report_json = Textio.token lx in
    Textio.expect lx "prog";
    let prog_text = Textio.token lx in
    Textio.expect lx "vm";
    let vm_text = Textio.token lx in
    Textio.expect lx "end";
    if not (Textio.at_eof lx) then Textio.fail lx "trailing data";
    (match Spec_fdo.Sir_io.read prog_text with
     | Ok a_prog ->
       let a_vm =
         (* a corrupt vm section doesn't poison the artifact: the
            program deserialized fine, so fall back to fresh lowering *)
         match Spec_fdo.Vm_io.of_text ~src:a_prog vm_text with
         | Ok v -> Some v
         | Error _ -> None
       in
       Ok { a_stats =
              { Ssapre.checks; reloads; saves; inserts; cspec_phis; items };
            a_report_json; a_prog; a_vm }
     | Error e -> Error e)
  with Textio.Error msg -> Error msg

(* Everything that determines the optimized output goes into the key:
   schema versions, the source text, the variant and its knobs, and the
   digest of the profile evidence.  [verify_each] is excluded (it checks
   invariants; it never changes the output). *)
let cache_key ~rounds ~strength ~deopt ~(config : Ssapre.config) ~variant
    ~edge_profile ~profile_digest src =
  let fp =
    String.concat "\x00"
      [ artifact_version; Spec_fdo.Sir_io.version; src; variant_name variant;
        string_of_int rounds; string_of_bool strength;
        (if deopt then "deopt" else "-");
        string_of_bool config.Ssapre.control_spec;
        string_of_bool config.Ssapre.cspec_always;
        Printf.sprintf "%h" config.Ssapre.cspec_ratio;
        string_of_bool config.Ssapre.arith_pre;
        Printf.sprintf "%h" config.Ssapre.alias_threshold;
        (if edge_profile then "ep" else "-");
        (match profile_digest with Some d -> d | None -> "-") ]
  in
  Digest.to_hex (Digest.string fp)

(** Convenience: compile source and optimize.

    With [cache], look the compile up in the content-addressed cache
    first: a hit deserializes the optimized program and skips every
    pass.  [profile_digest] must identify the profile evidence (the
    {!Spec_fdo.Store} digest) whenever a profile feeds the compile —
    without it, profile-fed compiles bypass the cache rather than risk
    serving an artifact built from different evidence.  Adversarial
    perturbation always bypasses the cache (stress runs are meant to be
    recomputed). *)
let compile_and_optimize ?(rounds = 3) ?(config = None) ?(edge_profile = None)
    ?(strength = true) ?(deopt = false) ?(safety = false) ?verify_each
    ?perturb ?cache ?profile_digest src variant =
  let cold () =
    let prog = Lower.compile src in
    optimize ~rounds ~config ~edge_profile ~strength ~deopt ~safety
      ?verify_each ?perturb prog variant
  in
  let cfg =
    match config with
    | Some c -> c
    | None -> Ssapre.default_config (mode_of_variant variant)
  in
  let needs_digest =
    (match variant with Spec_profile _ -> true | _ -> false)
    || edge_profile <> None
  in
  let bypass =
    perturb <> None
    || cfg.Ssapre.adversary <> None
    || (needs_digest && profile_digest = None)
  in
  match cache with
  | Some c when not bypass ->
    let key =
      cache_key ~rounds ~strength ~deopt ~config:cfg ~variant
        ~edge_profile:(edge_profile <> None) ~profile_digest src
    in
    (match Spec_fdo.Cache.find c key with
     | Some data ->
       (match read_artifact data with
        | Ok a ->
          let vm =
            match a.a_vm with
            | Some v -> Lazy.from_val v
            | None -> lazy (Vmcode.compile a.a_prog)
          in
          let sr =
            (* warm hits re-run the (cheap) checker over the
               deserialized program rather than persisting the report *)
            if safety then
              Some (Spec_safety.Taint.check
                      ~pt:(Spec_alias.Steensgaard.solve a.a_prog) a.a_prog)
            else None
          in
          { prog = a.a_prog; stats = a.a_stats; variant;
            report = Passes.empty_report (); from_cache = true; vm;
            safety = sr }
        | Error _ ->
          (* corrupt artifact: recount as a miss and recompile over it *)
          let st = Spec_fdo.Cache.stats c in
          st.Spec_fdo.Cache.hits <- st.Spec_fdo.Cache.hits - 1;
          st.Spec_fdo.Cache.misses <- st.Spec_fdo.Cache.misses + 1;
          let r = cold () in
          Spec_fdo.Cache.store c key (write_artifact r);
          r)
     | None ->
       let r = cold () in
       Spec_fdo.Cache.store c key (write_artifact r);
       r)
  | _ -> cold ()

(** Compile [src] and run it under the instrumented training
    interpreter once, returning the lowered program (needed to key
    stored profiles by site), the profile, and the training run's
    result.  The single profiling entry point: callers thread the
    triple through instead of re-running the interpreter. *)
let train ?fuel src =
  let prog = Lower.compile src in
  let prof, res = Profiler.profile ?fuel prog in
  (prog, prof, res)

(** Profile a fresh compile of [src] (with whatever input [main] selects)
    and return the profile for feeding a [Spec_profile] pipeline of
    another compile. *)
let profile_of_source ?fuel src =
  let _, prof, _ = train ?fuel src in
  prof
