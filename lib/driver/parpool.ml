(** Fixed domain pool for the experiment harness.

    The harness fans two levels of work out to the pool: the workloads of
    a sweep, and the five independent pipeline variants within one
    workload.  Tasks are submitted as futures and joined *in submission
    order*, so results are deterministic regardless of completion order —
    table output under [--jobs n] is byte-identical to the sequential
    run (enforced by [test/test_engines.ml]).

    Determinism argument: every task is a pure function of its inputs
    (the only module-level mutable state the tasks touch is the
    {!Memory} image pool, which is mutex-guarded and only recycles
    scrubbed images), [map] preserves input order when collecting, and
    nothing reads wall-clock time into results.  Joining therefore
    commutes with any execution interleaving.

    A blocked [await] *helps*: it pops queued tasks and runs them on the
    waiting domain.  This keeps nested fan-out (a workload task awaiting
    its per-variant subtasks) deadlock-free on any pool size, and lets
    the submitting domain contribute work instead of idling.

    With [jobs = 1] (the default) everything runs inline on the calling
    domain with zero overhead — no domains are spawned at all. *)

type task = unit -> unit

type pool = {
  jobs : int;
  mu : Mutex.t;
  cv : Condition.t;                 (* signalled on submit and shutdown *)
  queue : task Queue.t;
  mutable stop : bool;
  mutable domains : unit Domain.t list;
}

type 'a state = Pending | Done of 'a | Err of exn * Printexc.raw_backtrace

type 'a future = {
  fmu : Mutex.t;
  fcv : Condition.t;
  mutable state : 'a state;
}

let try_pop p =
  Mutex.lock p.mu;
  let t = Queue.take_opt p.queue in
  Mutex.unlock p.mu;
  t

let worker p () =
  let rec loop () =
    Mutex.lock p.mu;
    while Queue.is_empty p.queue && not p.stop do
      Condition.wait p.cv p.mu
    done;
    let t = Queue.take_opt p.queue in
    Mutex.unlock p.mu;
    match t with
    | Some t -> t (); loop ()
    | None -> if not p.stop then loop ()
  in
  loop ()

let create ~jobs : pool =
  let jobs = max 1 jobs in
  let p =
    { jobs; mu = Mutex.create (); cv = Condition.create ();
      queue = Queue.create (); stop = false; domains = [] }
  in
  (* the submitting domain helps while awaiting, so spawn jobs-1 workers *)
  if jobs > 1 then
    p.domains <- List.init (jobs - 1) (fun _ -> Domain.spawn (worker p));
  p

let shutdown p =
  if p.domains <> [] then begin
    Mutex.lock p.mu;
    p.stop <- true;
    Condition.broadcast p.cv;
    Mutex.unlock p.mu;
    List.iter Domain.join p.domains;
    p.domains <- []
  end

let submit p (f : unit -> 'a) : 'a future =
  let fut = { fmu = Mutex.create (); fcv = Condition.create ();
              state = Pending } in
  let run () =
    let r = try Done (f ()) with e -> Err (e, Printexc.get_raw_backtrace ()) in
    Mutex.lock fut.fmu;
    fut.state <- r;
    Condition.broadcast fut.fcv;
    Mutex.unlock fut.fmu
  in
  Mutex.lock p.mu;
  Queue.add run p.queue;
  Condition.signal p.cv;
  Mutex.unlock p.mu;
  fut

let resolved fut =
  Mutex.lock fut.fmu;
  let s = fut.state in
  Mutex.unlock fut.fmu;
  match s with Pending -> None | s -> Some s

let finish = function
  | Done v -> v
  | Err (e, bt) -> Printexc.raise_with_backtrace e bt
  | Pending -> assert false

(* Wait for [fut], running queued tasks while it is pending.  If the
   queue is empty the future's task is already running on some domain
   (tasks are only ever queued or running), so blocking is safe. *)
let await p fut =
  let rec spin () =
    match resolved fut with
    | Some s -> finish s
    | None ->
      (match try_pop p with
       | Some t -> t (); spin ()
       | None ->
         Mutex.lock fut.fmu;
         while fut.state = Pending do
           Condition.wait fut.fcv fut.fmu
         done;
         let s = fut.state in
         Mutex.unlock fut.fmu;
         finish s)
  in
  spin ()

(** Apply [f] to every element, in parallel on the pool; results are in
    input order.  Exceptions re-raise at the faulty element's position. *)
let map p f xs =
  if p.jobs = 1 then List.map f xs
  else begin
    let futs = List.map (fun x -> submit p (fun () -> f x)) xs in
    List.map (await p) futs
  end

(* ------------------------------------------------------------------ *)
(* Global pool, configured once from the command line                  *)
(* ------------------------------------------------------------------ *)

let global : pool option ref = ref None
let cleanup_registered = ref false

let shutdown_global () =
  match !global with
  | Some p -> shutdown p; global := None
  | None -> ()

(** Set the harness-wide parallelism ([--jobs n]).  [1] tears the pool
    down and reverts to inline execution. *)
let set_jobs n =
  shutdown_global ();
  if n > 1 then begin
    global := Some (create ~jobs:n);
    if not !cleanup_registered then begin
      cleanup_registered := true;
      at_exit shutdown_global
    end
  end

let get_jobs () = match !global with Some p -> p.jobs | None -> 1

(** [map] on the global pool; inline when no pool is configured. *)
let parmap f xs =
  match !global with
  | Some p -> map p f xs
  | None -> List.map f xs
