(** Pass manager: the compilation stack as first-class, schedulable
    passes over SIR, with cached analyses (Steensgaard points-to +
    mod/ref, χ/μ annotation, per-function dominator trees), a declared
    invalidation model, per-pass wall time and statistics, and optional
    inter-pass IR verification ([--verify-each]).

    Registered passes: [annotate], [flags], [split-edges], [build-ssa],
    [refine], [ssapre], [out-of-ssa], [store-promo], [strength],
    [cleanup], [spec-safety], [strip-checks].  [Spec_driver.Pipeline]
    schedules them; tests and tools may also drive a {!manager}
    directly. *)

(** {1 Cached analyses} *)

type analysis = Points_to | Chi_mu | Dominators | Safety

val analysis_name : analysis -> string

(** Recomputation/reuse counters: how often each analysis was actually
    computed versus served from the cache. *)
type counters = {
  mutable steensgaard_runs : int;
  mutable modref_runs : int;
  mutable annot_runs : int;
  mutable dom_runs : int;        (** per-function dominator computations *)
  mutable safety_runs : int;     (** speculative-taint checker computations *)
  mutable points_to_hits : int;
  mutable annot_hits : int;
  mutable dom_hits : int;
  mutable safety_hits : int;
}

type cache

val create_cache : Spec_ir.Sir.prog -> cache

(** Steensgaard solution + interprocedural mod/ref summary, computed on
    first demand and cached for the life of the manager (sound across
    the stack's transformations, which never create new sites). *)
val points_to :
  cache -> Spec_alias.Steensgaard.solution * Spec_alias.Modref.t

(** χ/μ annotation, recomputed only after a pass invalidated [Chi_mu]. *)
val annot :
  ?refinements:(int, Spec_ir.Loc.t) Hashtbl.t ->
  cache -> Spec_alias.Annotate.info

(** Memoized per-function dominator tree; recomputed only after a pass
    invalidated [Dominators] (i.e. mutated the CFG). *)
val dom_of : cache -> Spec_ir.Sir.func -> Spec_cfg.Dom.t

(** Memoized speculative-taint report over the current program text
    (runs {!Spec_safety.Taint.check} against the cached points-to
    solution); invalidated together with [Chi_mu], since both describe
    the statement-level text. *)
val safety_of : cache -> Spec_safety.Taint.report

val invalidate : cache -> analysis -> unit

(** {1 Passes} *)

type ctx = {
  prog : Spec_ir.Sir.prog;
  cache : cache;
  mode : Spec_spec.Flags.mode;
  config : Spec_ssapre.Ssapre.config;
  refinements : (int, Spec_ir.Loc.t) Hashtbl.t;
  perturb : Spec_spec.Flags.perturbation option;
  mutable in_ssa : bool;
  mutable ssapre_total : Spec_ssapre.Ssapre.stats;
}

type outcome = {
  touched : bool;                  (** did the pass mutate the program? *)
  invalidates : analysis list;     (** cached analyses it clobbered *)
  counters : (string * int) list;  (** pass-specific statistics *)
}

val analysis_only : outcome

type pass = {
  pname : string;
  pdescr : string;
  prun : ctx -> outcome;
}

val register : pass -> unit
val find_pass : string -> pass
val pass_names : unit -> string list

(** Count check statements dropped; the Aggressive variant's second
    step (exposed for [Pipeline.strip_checks]). *)
val strip_checks : Spec_ir.Sir.prog -> int

(** {1 Manager: scheduling, timing, verification} *)

type pass_stat = {
  ps_pass : string;
  mutable ps_runs : int;
  mutable ps_touched : int;
  mutable ps_time : float;        (** accumulated wall time, seconds *)
  mutable ps_counters : (string * int) list;
}

type report = {
  rp_passes : pass_stat list;     (** in first-run order *)
  rp_counters : counters;
  rp_verified : int;
  rp_total_time : float;
}

val empty_report : unit -> report

(** Raised by [--verify-each]: offending pass name, violation text. *)
exception Verify_error of string * string

type manager

val create :
  ?verify_each:bool ->
  ?perturb:Spec_spec.Flags.perturbation ->
  mode:Spec_spec.Flags.mode ->
  config:Spec_ssapre.Ssapre.config ->
  Spec_ir.Sir.prog ->
  manager

val context : manager -> ctx
val run_pass : manager -> string -> unit
val run_passes : manager -> string list -> unit
val report : manager -> report

(** {1 Fused per-function segments (parallel pipeline)}

    Each entry runs its whole-program barrier passes sequentially, then
    fans the per-function portion out to the {!Parpool} global pool —
    one task per function on a program view with a cloned symbol table
    — and commits results deterministically in [func_order], so
    [--jobs n] output is byte-identical to [--jobs 1].  SSA versions
    stay task-local: only surviving temporaries reach the shared symbol
    table.  Sub-pass stats are recorded under the same names as the
    registered passes, one run per segment invocation. *)

(** [annotate] barrier, then per-function
    split-edges / build-ssa / refine / out-of-ssa. *)
val fused_prepass : manager -> unit

(** [annotate] + [flags] barriers, then per-function
    split-edges / build-ssa / ssapre / out-of-ssa. *)
val fused_round : manager -> unit

(** [annotate] barrier (timed under store-promo, as in the sequential
    schedule), then per-function store-promo / strength? / cleanup /
    strip-checks?.  [deopt_vbase] makes cleanup pin lowering-era
    variables (deoptimization state).  Returns, per function, whether
    store promotion or LFTR transformed it — such functions must not
    keep deoptimization descriptors. *)
val fused_post :
  manager -> ?deopt_vbase:int -> strength:bool -> strip:bool -> unit ->
  (string * bool) list

val counters_to_string : counters -> string
val report_to_string : report -> string
val report_to_json : report -> string
