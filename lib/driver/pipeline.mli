(** Compilation pipelines: the paper's analysis and optimization stack

      alias analysis -> chi/mu annotation -> speculation flags -> HSSA ->
      speculative SSAPRE -> out of SSA

    iterated for a few rounds (so loads nested inside other loads promote
    outside-in), preceded by a flow-sensitive refinement prepass and
    followed by strength reduction. *)

type variant =
  | Base                                    (** O3-like nonspeculative PRE *)
  | Spec_profile of Spec_prof.Profile.t     (** data speculation from profile *)
  | Spec_heuristic                          (** data speculation from rules *)
  | Aggressive                              (** §5.3 no-check upper bound *)
  | Noopt                                   (** no PRE at all *)

val variant_name : variant -> string

(** Drop every check statement — the Aggressive variant's second step;
    correct only when no aliasing actually occurs at runtime. *)
val strip_checks : Spec_ir.Sir.prog -> unit

type result = {
  prog : Spec_ir.Sir.prog;
  stats : Spec_ssapre.Ssapre.stats;
  variant : variant;
  report : Passes.report;
      (** per-pass wall time, statistics, and analysis-cache counters *)
  from_cache : bool;
      (** true when the optimized program came out of the compile cache
          (the report is then empty: no passes ran) *)
  vm : Spec_prof.Vmcode.program Lazy.t;
      (** threaded-code lowering of [prog] for the vm engine; already
          forced on a cache hit whose artifact carried valid bytecode
          (the [specart/4] vm section), lowered on demand otherwise *)
  safety : Spec_safety.Taint.report option;
      (** speculative-taint report over the optimized program, present
          when the compile ran with [~safety:true] *)
}

val mode_of_variant : variant -> Spec_spec.Flags.mode

(** The pass schedules [optimize] runs on the {!Passes} manager: the
    refinement prepass and one outside-in promotion round. *)
val prepass_schedule : string list
val round_schedule : string list

(** Optimize [prog] destructively.  [rounds] bounds outside-in promotion
    depth (default 3); [edge_profile] enables control speculation and
    block frequencies; [config] overrides the SSAPRE configuration;
    [strength] toggles strength reduction + LFTR (default on);
    [verify_each] validates CFG and SSA invariants between passes,
    raising [Passes.Verify_error] naming the offending pass; [perturb]
    adversarially corrupts the speculation-flag assignment (stress
    harness — outputs must stay correct, only slower).

    [deopt] (default off) compiles in deoptimization support: cleanup
    pins lowering-era variables, surviving check statements get
    descriptors mapping optimized live state to the unoptimized program
    point, and functions transformed by store promotion or LFTR have
    their descriptors cleared (engines fall back to reload recovery
    there).  [safety] (default off) runs the [spec-safety] pass after
    optimization and surfaces the taint report in the result. *)
val optimize :
  ?rounds:int ->
  ?config:Spec_ssapre.Ssapre.config option ->
  ?edge_profile:Spec_prof.Profile.t option ->
  ?strength:bool ->
  ?verify_each:bool ->
  ?deopt:bool ->
  ?safety:bool ->
  ?perturb:Spec_spec.Flags.perturbation ->
  Spec_ir.Sir.prog ->
  variant ->
  result

(** Cached-compile artifact ([specart/4]): the optimized program, its
    SSAPRE totals, the cold compile's pass report as provenance, and the
    threaded-code bytecode so a warm compile skips vm lowering. *)
type artifact = {
  a_stats : Spec_ssapre.Ssapre.stats;
  a_report_json : string;
  a_prog : Spec_ir.Sir.prog;
  a_vm : Spec_prof.Vmcode.program option;
      (** [None] when the vm section failed to deserialize; the caller
          lowers fresh from [a_prog] *)
}

val artifact_version : string
val write_artifact : result -> string
val read_artifact : string -> (artifact, string) Stdlib.result

(** Content-addressed cache key over every compile input: schema
    versions, source text, variant + knobs, and the digest of the
    profile evidence (a {!Spec_fdo.Store} digest). *)
val cache_key :
  rounds:int ->
  strength:bool ->
  deopt:bool ->
  config:Spec_ssapre.Ssapre.config ->
  variant:variant ->
  edge_profile:bool ->
  profile_digest:string option ->
  string ->
  string

(** Compile source and optimize.  With [cache], consult the compile
    cache first — a hit deserializes the optimized program and skips
    every pass (the result carries [from_cache = true] and an empty
    report).  [profile_digest] must identify the profile evidence
    whenever a profile feeds the compile; profile-fed compiles without
    it, and any adversarially perturbed compile, bypass the cache. *)
val compile_and_optimize :
  ?rounds:int ->
  ?config:Spec_ssapre.Ssapre.config option ->
  ?edge_profile:Spec_prof.Profile.t option ->
  ?strength:bool ->
  ?deopt:bool ->
  ?safety:bool ->
  ?verify_each:bool ->
  ?perturb:Spec_spec.Flags.perturbation ->
  ?cache:Spec_fdo.Cache.t ->
  ?profile_digest:string ->
  string ->
  variant ->
  result

(** Compile the source and run it once under the instrumented training
    interpreter: the lowered program (the site table stored profiles are
    keyed against), the collected profile, and the training run's
    result.  The single profiling entry point — callers thread the
    triple through instead of re-running the interpreter. *)
val train :
  ?fuel:int ->
  string ->
  Spec_ir.Sir.prog * Spec_prof.Profile.t * Spec_prof.Interp.result

(** Profile a fresh compile of the source (with whatever input its [main]
    selects); feed the result to a [Spec_profile] pipeline of another
    compile of the same source. *)
val profile_of_source : ?fuel:int -> string -> Spec_prof.Profile.t
