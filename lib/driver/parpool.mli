(** Fixed domain pool with deterministic join order.

    Work is submitted as futures and collected in submission order, so
    parallel runs produce byte-identical output to sequential ones; a
    blocked {!await} helps by running queued tasks, which keeps nested
    fan-out deadlock-free on any pool size.  See the implementation
    notes in [parpool.ml] and the architecture section of DESIGN.md. *)

type pool

type 'a future

(** [create ~jobs] spawns [jobs - 1] worker domains (the submitting
    domain contributes while awaiting).  [jobs <= 1] spawns none and
    runs everything inline. *)
val create : jobs:int -> pool

(** Join the workers.  Idempotent.  Outstanding queued tasks are still
    drained by awaiting their futures, not by the workers. *)
val shutdown : pool -> unit

val submit : pool -> (unit -> 'a) -> 'a future

(** Wait for a future, helping with queued work meanwhile.  Re-raises
    the task's exception (with its backtrace) if it failed. *)
val await : pool -> 'a future -> 'a

(** Parallel [List.map] with results in input order.  Safe to nest:
    tasks may themselves call [map] on the same pool. *)
val map : pool -> ('a -> 'b) -> 'a list -> 'b list

(** {2 Global pool}

    The harness configures one process-wide pool from [--jobs]. *)

(** [set_jobs n] replaces the global pool; [n <= 1] reverts to inline
    execution.  Registers an [at_exit] teardown. *)
val set_jobs : int -> unit

val get_jobs : unit -> int

(** {!map} on the global pool; plain [List.map] when none is set. *)
val parmap : ('a -> 'b) -> 'a list -> 'b list
