(** Pass manager: the compilation stack as first-class, schedulable
    passes over SIR with cached analyses, per-pass timing/stats, and
    optional inter-pass IR verification.

    The paper (Figure 3) frames speculative analysis as a framework of
    cooperating phases; here each phase is a registered, named pass.  The
    manager owns an analysis cache with a declared invalidation model:

    - {b Points-to} — the Steensgaard solution plus the interprocedural
      mod/ref summary.  Sound across every transformation in the stack
      (transforms reuse existing reference sites and never create new
      address-taken relations), so it is computed once per [optimize]
      call instead of once per promotion round.
    - {b Chi-mu} — the χ/μ annotation ([Spec_alias.Annotate.info]).
      Statement-level lists are wiped by [out-of-ssa] and clobbered by
      any transform that rewrites memory statements, so those passes
      invalidate it; within a round annotate/flags/ssapre share one
      computation.
    - {b Dominators} — per-function dominator trees, keyed by function
      name.  Valid while the CFG (block set and edges) is unchanged;
      only [split-edges] mutates the CFG, and only when it actually
      splits an edge.

    A pass reports whether it mutated the program and which analyses it
    clobbered; the manager invalidates exactly those.  Every pass run
    records wall time and its own counters into a unified {!pass_stat}
    record (nothing is [ignore]d any more), surfaced via
    [speccc stats --timings] and [bench/main.exe --json]. *)

open Spec_ir
open Spec_cfg
open Spec_spec
open Spec_ssapre

(* ------------------------------------------------------------------ *)
(* Analysis cache                                                      *)
(* ------------------------------------------------------------------ *)

type analysis = Points_to | Chi_mu | Dominators

let analysis_name = function
  | Points_to -> "points-to"
  | Chi_mu -> "chi-mu"
  | Dominators -> "dominators"

(** Recomputation/reuse counters, for observability and for the tests
    that pin down how much work the cache saves versus the old pipeline
    (which re-ran Steensgaard every round and rebuilt dominator trees in
    every client). *)
type counters = {
  mutable steensgaard_runs : int;
  mutable modref_runs : int;
  mutable annot_runs : int;
  mutable dom_runs : int;        (** per-function dominator computations *)
  mutable points_to_hits : int;
  mutable annot_hits : int;
  mutable dom_hits : int;
}

let fresh_counters () =
  { steensgaard_runs = 0; modref_runs = 0; annot_runs = 0; dom_runs = 0;
    points_to_hits = 0; annot_hits = 0; dom_hits = 0 }

type cache = {
  cprog : Sir.prog;
  mutable points_to :
    (Spec_alias.Steensgaard.solution * Spec_alias.Modref.t) option;
  mutable chi_mu : Spec_alias.Annotate.info option;
  doms : (string, Dom.t) Hashtbl.t;
  counters : counters;
}

let create_cache prog =
  { cprog = prog; points_to = None; chi_mu = None;
    doms = Hashtbl.create 8; counters = fresh_counters () }

let points_to cache =
  match cache.points_to with
  | Some pt ->
    cache.counters.points_to_hits <- cache.counters.points_to_hits + 1;
    pt
  | None ->
    let sol = Spec_alias.Steensgaard.solve cache.cprog in
    cache.counters.steensgaard_runs <- cache.counters.steensgaard_runs + 1;
    let modref = Spec_alias.Modref.compute cache.cprog sol in
    cache.counters.modref_runs <- cache.counters.modref_runs + 1;
    let pt = (sol, modref) in
    cache.points_to <- Some pt;
    pt

let annot ?refinements cache =
  match cache.chi_mu with
  | Some info ->
    cache.counters.annot_hits <- cache.counters.annot_hits + 1;
    info
  | None ->
    let pt = points_to cache in
    let info =
      Spec_alias.Annotate.run ?refinements ~points_to:pt cache.cprog
    in
    cache.counters.annot_runs <- cache.counters.annot_runs + 1;
    cache.chi_mu <- Some info;
    info

let dom_of cache (f : Sir.func) =
  match Hashtbl.find_opt cache.doms f.Sir.fname with
  | Some d ->
    cache.counters.dom_hits <- cache.counters.dom_hits + 1;
    d
  | None ->
    Sir.recompute_preds f;
    let d = Dom.compute f in
    cache.counters.dom_runs <- cache.counters.dom_runs + 1;
    Hashtbl.replace cache.doms f.Sir.fname d;
    d

let invalidate cache = function
  | Points_to -> cache.points_to <- None
  | Chi_mu -> cache.chi_mu <- None
  | Dominators -> Hashtbl.reset cache.doms

(* ------------------------------------------------------------------ *)
(* Pass context, outcomes, registry                                    *)
(* ------------------------------------------------------------------ *)

type ctx = {
  prog : Sir.prog;
  cache : cache;
  mode : Flags.mode;
  config : Ssapre.config;
  refinements : (int, Loc.t) Hashtbl.t;
      (** flow-sensitive definite-target facts, filled by the [refine]
          pass and consumed by every later χ/μ annotation *)
  perturb : Flags.perturbation option;
      (** adversarial corruption of the flag assignment (stress runs) *)
  mutable in_ssa : bool;
      (** true between [build-ssa] and the next SSA-destroying pass;
          gates the SSA half of inter-pass verification *)
  mutable ssapre_total : Ssapre.stats;
      (** aggregated SSAPRE statistics across rounds, for [result] *)
}

type outcome = {
  touched : bool;                  (** did the pass mutate the program? *)
  invalidates : analysis list;     (** cached analyses it clobbered *)
  counters : (string * int) list;  (** pass-specific statistics *)
}

let analysis_only = { touched = false; invalidates = []; counters = [] }

type pass = {
  pname : string;
  pdescr : string;
  prun : ctx -> outcome;
}

let registry : (string, pass) Hashtbl.t = Hashtbl.create 16
let register p = Hashtbl.replace registry p.pname p

let find_pass name =
  match Hashtbl.find_opt registry name with
  | Some p -> p
  | None ->
    invalid_arg
      (Printf.sprintf "Passes.find_pass: unknown pass %S (known: %s)" name
         (String.concat ", "
            (List.sort compare
               (Hashtbl.fold (fun n _ acc -> n :: acc) registry []))))

let pass_names () =
  List.sort compare (Hashtbl.fold (fun n _ acc -> n :: acc) registry [])

(* ------------------------------------------------------------------ *)
(* The registered passes                                               *)
(* ------------------------------------------------------------------ *)

let count_spec_operands prog =
  let mus = ref 0 and chis = ref 0 in
  Sir.iter_funcs
    (fun f ->
      Vec.iter
        (fun (b : Sir.bb) ->
          List.iter
            (fun (s : Sir.stmt) ->
              List.iter
                (fun (m : Sir.mu) -> if m.Sir.mu_spec then incr mus)
                s.Sir.mus;
              List.iter
                (fun (c : Sir.chi) -> if c.Sir.chi_spec then incr chis)
                s.Sir.chis)
            b.Sir.stmts)
        f.Sir.fblocks)
    prog;
  (!mus, !chis)

let count_phis prog =
  let n = ref 0 in
  Sir.iter_funcs
    (fun f ->
      Vec.iter
        (fun (b : Sir.bb) -> n := !n + List.length b.Sir.phis)
        f.Sir.fblocks)
    prog;
  !n

(** Drop every check statement — the Aggressive variant's second step;
    correct only when no aliasing actually occurs at runtime. *)
let strip_checks (prog : Sir.prog) : int =
  let stripped = ref 0 in
  Sir.iter_funcs
    (fun f ->
      Vec.iter
        (fun (b : Sir.bb) ->
          b.Sir.stmts <-
            List.filter
              (fun (s : Sir.stmt) ->
                let keep = s.Sir.mark <> Sir.Mchk in
                if not keep then incr stripped;
                keep)
              b.Sir.stmts)
        f.Sir.fblocks)
    prog;
  !stripped

let p_annotate =
  { pname = "annotate";
    pdescr = "alias classes + interprocedural mod/ref + chi/mu lists";
    prun =
      (fun ctx ->
        let info = annot ~refinements:ctx.refinements ctx.cache in
        { touched = true;
          invalidates = [];
          counters =
            [ "sites", Hashtbl.length info.Spec_alias.Annotate.site_vv ] }) }

let p_flags =
  { pname = "flags";
    pdescr = "speculation-flag assignment to chi/mu operands";
    prun =
      (fun ctx ->
        let info = annot ~refinements:ctx.refinements ctx.cache in
        Flags.assign ~threshold:ctx.config.Ssapre.alias_threshold
          ?perturb:ctx.perturb ctx.prog info ctx.mode;
        let mus, chis = count_spec_operands ctx.prog in
        { touched = true;
          invalidates = [];
          counters =
            (match ctx.perturb with
             | Some p -> [ "flagged-mus", mus; "flagged-chis", chis;
                           "adversary-flips", Flags.flipped p ]
             | None -> [ "flagged-mus", mus; "flagged-chis", chis ]) }) }

let p_split_edges =
  { pname = "split-edges";
    pdescr = "split critical CFG edges (SSAPRE insertion points)";
    prun =
      (fun ctx ->
        let n = ref 0 in
        Sir.iter_funcs
          (fun f -> n := !n + Cfg_utils.split_critical_edges f)
          ctx.prog;
        { touched = !n > 0;
          invalidates = (if !n > 0 then [ Dominators ] else []);
          counters = [ "edges-split", !n ] }) }

let p_build_ssa =
  { pname = "build-ssa";
    pdescr = "HSSA construction (phi insertion + renaming)";
    prun =
      (fun ctx ->
        ignore
          (Spec_ssa.Build_ssa.build ~dom_of:(dom_of ctx.cache) ctx.prog
           : Spec_ssa.Build_ssa.t list);
        ctx.in_ssa <- true;
        { touched = true;
          invalidates = [];
          counters = [ "phis", count_phis ctx.prog ] }) }

let p_refine =
  { pname = "refine";
    pdescr = "flow-sensitive pointer refinement (definite targets)";
    prun =
      (fun ctx ->
        ignore
          (Spec_ssa.Refine.compute ~acc:ctx.refinements ctx.prog
           : (int, Loc.t) Hashtbl.t);
        (* later annotations depend on the refinement facts *)
        { touched = false;
          invalidates = [ Chi_mu ];
          counters =
            [ "refined-sites", Hashtbl.length ctx.refinements ] }) }

let p_ssapre =
  { pname = "ssapre";
    pdescr = "speculative SSAPRE (register promotion of loads)";
    prun =
      (fun ctx ->
        let info = annot ~refinements:ctx.refinements ctx.cache in
        let st = ref Ssapre.zero_stats in
        Sir.iter_funcs
          (fun f ->
            let dom = dom_of ctx.cache f in
            st :=
              Ssapre.add_stats !st
                (Ssapre.run_func ~dom ctx.prog info ctx.config f))
          ctx.prog;
        ctx.ssapre_total <- Ssapre.add_stats ctx.ssapre_total !st;
        (* run_func leaves functions in flat (non-SSA-maintained) form *)
        ctx.in_ssa <- false;
        let s = !st in
        let touched =
          s.Ssapre.checks + s.Ssapre.reloads + s.Ssapre.saves
          + s.Ssapre.inserts > 0
        in
        { touched;
          invalidates = (if touched then [ Chi_mu ] else []);
          counters =
            [ "items", s.Ssapre.items; "checks", s.Ssapre.checks;
              "reloads", s.Ssapre.reloads; "saves", s.Ssapre.saves;
              "inserts", s.Ssapre.inserts;
              "cspec-phis", s.Ssapre.cspec_phis ] }) }

let p_out_of_ssa =
  { pname = "out-of-ssa";
    pdescr = "de-version SIR, drop phis and chi/mu annotations";
    prun =
      (fun ctx ->
        Spec_ssa.Out_of_ssa.run ctx.prog;
        ctx.in_ssa <- false;
        (* statement-level chi/mu lists are wiped by de-versioning *)
        { touched = true; invalidates = [ Chi_mu ]; counters = [] }) }

let p_store_promo =
  { pname = "store-promo";
    pdescr = "speculative register promotion of stores (SPRE)";
    prun =
      (fun ctx ->
        let info = annot ~refinements:ctx.refinements ctx.cache in
        let kctx =
          Kills.create ~alias_threshold:ctx.config.Ssapre.alias_threshold
            ?adversary:ctx.perturb ctx.prog info ctx.mode
        in
        let st =
          Spec_ssapre.Store_promo.run ~dom_of:(dom_of ctx.cache) ctx.prog
            info kctx
        in
        let touched = st.Store_promo.promoted > 0 in
        { touched;
          invalidates = (if touched then [ Chi_mu ] else []);
          counters =
            [ "promoted", st.Store_promo.promoted;
              "loads-gone", st.Store_promo.loads_gone;
              "stores-gone", st.Store_promo.stores_gone;
              "checks", st.Store_promo.checks ] }) }

let p_strength =
  { pname = "strength";
    pdescr = "strength reduction + linear function test replacement";
    prun =
      (fun ctx ->
        let st =
          Spec_ssapre.Strength.run ~dom_of:(dom_of ctx.cache) ctx.prog
        in
        let touched = st.Strength.reduced + st.Strength.lftr > 0 in
        { touched;
          invalidates = (if touched then [ Chi_mu ] else []);
          counters =
            [ "reduced", st.Strength.reduced; "lftr", st.Strength.lftr ] }) }

let p_cleanup =
  { pname = "cleanup";
    pdescr = "constant folding, copy propagation, dead-code elimination";
    prun =
      (fun ctx ->
        let st = Spec_ssapre.Cleanup.run ctx.prog in
        let touched =
          st.Cleanup.folded + st.Cleanup.propagated + st.Cleanup.removed > 0
        in
        { touched;
          invalidates = (if touched then [ Chi_mu ] else []);
          counters =
            [ "folded", st.Cleanup.folded;
              "propagated", st.Cleanup.propagated;
              "removed", st.Cleanup.removed ] }) }

let p_strip_checks =
  { pname = "strip-checks";
    pdescr = "drop runtime checks (Aggressive upper-bound variant)";
    prun =
      (fun ctx ->
        let n = strip_checks ctx.prog in
        { touched = n > 0;
          invalidates = (if n > 0 then [ Chi_mu ] else []);
          counters = [ "stripped", n ] }) }

let () =
  List.iter register
    [ p_annotate; p_flags; p_split_edges; p_build_ssa; p_refine; p_ssapre;
      p_out_of_ssa; p_store_promo; p_strength; p_cleanup; p_strip_checks ]

(* ------------------------------------------------------------------ *)
(* Manager: scheduling, timing, verification                           *)
(* ------------------------------------------------------------------ *)

type pass_stat = {
  ps_pass : string;
  mutable ps_runs : int;
  mutable ps_touched : int;     (** runs that reported a mutation *)
  mutable ps_time : float;      (** accumulated wall time, seconds *)
  mutable ps_counters : (string * int) list;  (** summed across runs *)
}

type report = {
  rp_passes : pass_stat list;   (** in first-run order *)
  rp_counters : counters;
  rp_verified : int;            (** inter-pass verification runs *)
  rp_total_time : float;
}

let empty_report () =
  { rp_passes = []; rp_counters = fresh_counters (); rp_verified = 0;
    rp_total_time = 0. }

(** Raised by [--verify-each] with the name of the offending pass and
    the underlying invariant violation. *)
exception Verify_error of string * string

type manager = {
  mctx : ctx;
  verify_each : bool;
  mstats : (string, pass_stat) Hashtbl.t;
  mutable morder : string list;   (* reverse first-run order *)
  mutable mverified : int;
  mutable mtotal : float;
}

let create ?(verify_each = false) ?perturb ~mode ~config prog =
  { mctx =
      { prog; cache = create_cache prog; mode; config;
        refinements = Hashtbl.create 16; perturb; in_ssa = false;
        ssapre_total = Ssapre.zero_stats };
    verify_each; mstats = Hashtbl.create 16; morder = []; mverified = 0;
    mtotal = 0. }

let context mgr = mgr.mctx

let merge_counters old add =
  List.fold_left
    (fun acc (k, v) ->
      match List.assoc_opt k acc with
      | Some v0 -> (k, v0 + v) :: List.remove_assoc k acc
      | None -> acc @ [ (k, v) ])
    old add

(** Structural IR verification between passes: CFG invariants always,
    SSA invariants while the program is in SSA form.  Names the pass
    that broke the IR on failure. *)
let verify mgr pass_name =
  mgr.mverified <- mgr.mverified + 1;
  try
    Sir.iter_funcs (fun f -> Cfg_utils.validate f) mgr.mctx.prog;
    if mgr.mctx.in_ssa then
      Spec_ssa.Ssa_check.check ~dom_of:(dom_of mgr.mctx.cache) mgr.mctx.prog
  with
  | Failure msg -> raise (Verify_error (pass_name, msg))
  | Verify_error _ as e -> raise e

let run_pass mgr name =
  let p = find_pass name in
  let t0 = Unix.gettimeofday () in
  let o = p.prun mgr.mctx in
  let dt = Unix.gettimeofday () -. t0 in
  mgr.mtotal <- mgr.mtotal +. dt;
  let st =
    match Hashtbl.find_opt mgr.mstats p.pname with
    | Some st -> st
    | None ->
      let st =
        { ps_pass = p.pname; ps_runs = 0; ps_touched = 0; ps_time = 0.;
          ps_counters = [] }
      in
      Hashtbl.replace mgr.mstats p.pname st;
      mgr.morder <- p.pname :: mgr.morder;
      st
  in
  st.ps_runs <- st.ps_runs + 1;
  if o.touched then st.ps_touched <- st.ps_touched + 1;
  st.ps_time <- st.ps_time +. dt;
  st.ps_counters <- merge_counters st.ps_counters o.counters;
  List.iter (invalidate mgr.mctx.cache) o.invalidates;
  if mgr.verify_each then verify mgr p.pname

let run_passes mgr names = List.iter (run_pass mgr) names

let report mgr =
  { rp_passes =
      List.rev_map (fun n -> Hashtbl.find mgr.mstats n) mgr.morder;
    rp_counters = mgr.mctx.cache.counters;
    rp_verified = mgr.mverified;
    rp_total_time = mgr.mtotal }

(* ------------------------------------------------------------------ *)
(* Report rendering                                                    *)
(* ------------------------------------------------------------------ *)

let counters_to_string c =
  Printf.sprintf
    "analyses: steensgaard=%d modref=%d annotate=%d dom=%d \
     (hits: points-to=%d annotate=%d dom=%d)"
    c.steensgaard_runs c.modref_runs c.annot_runs c.dom_runs
    c.points_to_hits c.annot_hits c.dom_hits

let report_to_string r =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "%-12s %5s %8s  %s\n" "pass" "runs" "ms" "stats");
  List.iter
    (fun st ->
      Buffer.add_string buf
        (Printf.sprintf "%-12s %5d %8.2f  %s\n" st.ps_pass st.ps_runs
           (st.ps_time *. 1000.)
           (String.concat " "
              (List.map
                 (fun (k, v) -> Printf.sprintf "%s=%d" k v)
                 st.ps_counters))))
    r.rp_passes;
  Buffer.add_string buf
    (Printf.sprintf "%-12s %5s %8.2f\n" "total" "" (r.rp_total_time *. 1000.));
  Buffer.add_string buf (counters_to_string r.rp_counters);
  Buffer.add_char buf '\n';
  if r.rp_verified > 0 then
    Buffer.add_string buf
      (Printf.sprintf "inter-pass verification: %d runs, all clean\n"
         r.rp_verified);
  Buffer.contents buf

let report_to_json r =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\"passes\":[";
  List.iteri
    (fun i st ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\":%S,\"runs\":%d,\"touched\":%d,\"ms\":%.3f,\"stats\":{"
           st.ps_pass st.ps_runs st.ps_touched (st.ps_time *. 1000.));
      List.iteri
        (fun j (k, v) ->
          if j > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf (Printf.sprintf "%S:%d" k v))
        st.ps_counters;
      Buffer.add_string buf "}}")
    r.rp_passes;
  let c = r.rp_counters in
  Buffer.add_string buf
    (Printf.sprintf
       "],\"analyses\":{\"steensgaard_runs\":%d,\"modref_runs\":%d,\
        \"annot_runs\":%d,\"dom_runs\":%d,\"points_to_hits\":%d,\
        \"annot_hits\":%d,\"dom_hits\":%d},\"verified\":%d,\
        \"total_ms\":%.3f}"
       c.steensgaard_runs c.modref_runs c.annot_runs c.dom_runs
       c.points_to_hits c.annot_hits c.dom_hits r.rp_verified
       (r.rp_total_time *. 1000.));
  Buffer.contents buf
