(** Pass manager: the compilation stack as first-class, schedulable
    passes over SIR with cached analyses, per-pass timing/stats, and
    optional inter-pass IR verification.

    The paper (Figure 3) frames speculative analysis as a framework of
    cooperating phases; here each phase is a registered, named pass.  The
    manager owns an analysis cache with a declared invalidation model:

    - {b Points-to} — the Steensgaard solution plus the interprocedural
      mod/ref summary.  Sound across every transformation in the stack
      (transforms reuse existing reference sites and never create new
      address-taken relations), so it is computed once per [optimize]
      call instead of once per promotion round.
    - {b Chi-mu} — the χ/μ annotation ([Spec_alias.Annotate.info]).
      Statement-level lists are wiped by [out-of-ssa] and clobbered by
      any transform that rewrites memory statements, so those passes
      invalidate it; within a round annotate/flags/ssapre share one
      computation.
    - {b Dominators} — per-function dominator trees, keyed by function
      name.  Valid while the CFG (block set and edges) is unchanged;
      only [split-edges] mutates the CFG, and only when it actually
      splits an edge.

    A pass reports whether it mutated the program and which analyses it
    clobbered; the manager invalidates exactly those.  Every pass run
    records wall time and its own counters into a unified {!pass_stat}
    record (nothing is [ignore]d any more), surfaced via
    [speccc stats --timings] and [bench/main.exe --json]. *)

open Spec_ir
open Spec_cfg
open Spec_spec
open Spec_ssapre

(* ------------------------------------------------------------------ *)
(* Analysis cache                                                      *)
(* ------------------------------------------------------------------ *)

type analysis = Points_to | Chi_mu | Dominators | Safety

let analysis_name = function
  | Points_to -> "points-to"
  | Chi_mu -> "chi-mu"
  | Dominators -> "dominators"
  | Safety -> "safety"

(** Recomputation/reuse counters, for observability and for the tests
    that pin down how much work the cache saves versus the old pipeline
    (which re-ran Steensgaard every round and rebuilt dominator trees in
    every client). *)
type counters = {
  mutable steensgaard_runs : int;
  mutable modref_runs : int;
  mutable annot_runs : int;
  mutable dom_runs : int;        (** per-function dominator computations *)
  mutable safety_runs : int;     (** speculative-taint checker computations *)
  mutable points_to_hits : int;
  mutable annot_hits : int;
  mutable dom_hits : int;
  mutable safety_hits : int;
}

let fresh_counters () =
  { steensgaard_runs = 0; modref_runs = 0; annot_runs = 0; dom_runs = 0;
    safety_runs = 0; points_to_hits = 0; annot_hits = 0; dom_hits = 0;
    safety_hits = 0 }

type cache = {
  cprog : Sir.prog;
  mutable points_to :
    (Spec_alias.Steensgaard.solution * Spec_alias.Modref.t) option;
  mutable chi_mu : Spec_alias.Annotate.info option;
  doms : (string, Dom.t) Hashtbl.t;
  mutable safety : Spec_safety.Taint.report option;
      (** speculative-taint report over the current program text; any
          transform that clobbers χ/μ also clobbers this *)
  counters : counters;
}

let create_cache prog =
  { cprog = prog; points_to = None; chi_mu = None;
    doms = Hashtbl.create 8; safety = None; counters = fresh_counters () }

let points_to cache =
  match cache.points_to with
  | Some pt ->
    cache.counters.points_to_hits <- cache.counters.points_to_hits + 1;
    pt
  | None ->
    let sol = Spec_alias.Steensgaard.solve cache.cprog in
    cache.counters.steensgaard_runs <- cache.counters.steensgaard_runs + 1;
    let modref = Spec_alias.Modref.compute cache.cprog sol in
    cache.counters.modref_runs <- cache.counters.modref_runs + 1;
    let pt = (sol, modref) in
    cache.points_to <- Some pt;
    pt

let annot ?refinements cache =
  match cache.chi_mu with
  | Some info ->
    cache.counters.annot_hits <- cache.counters.annot_hits + 1;
    info
  | None ->
    let pt = points_to cache in
    let info =
      Spec_alias.Annotate.run ?refinements ~points_to:pt cache.cprog
    in
    cache.counters.annot_runs <- cache.counters.annot_runs + 1;
    cache.chi_mu <- Some info;
    info

let dom_of cache (f : Sir.func) =
  match Hashtbl.find_opt cache.doms f.Sir.fname with
  | Some d ->
    cache.counters.dom_hits <- cache.counters.dom_hits + 1;
    d
  | None ->
    Sir.recompute_preds f;
    let d = Dom.compute f in
    cache.counters.dom_runs <- cache.counters.dom_runs + 1;
    Hashtbl.replace cache.doms f.Sir.fname d;
    d

(** Cached speculative-taint report; recomputed whenever the program
    text changed since the last check (it shares χ/μ's invalidation
    trigger: both describe the current statements). *)
let safety_of cache =
  match cache.safety with
  | Some r ->
    cache.counters.safety_hits <- cache.counters.safety_hits + 1;
    r
  | None ->
    let sol, _ = points_to cache in
    let r = Spec_safety.Taint.check ~pt:sol cache.cprog in
    cache.counters.safety_runs <- cache.counters.safety_runs + 1;
    cache.safety <- Some r;
    r

let invalidate cache = function
  | Points_to -> cache.points_to <- None
  | Chi_mu ->
    cache.chi_mu <- None;
    (* the taint report describes the same statement-level text *)
    cache.safety <- None
  | Dominators -> Hashtbl.reset cache.doms
  | Safety -> cache.safety <- None

(* ------------------------------------------------------------------ *)
(* Pass context, outcomes, registry                                    *)
(* ------------------------------------------------------------------ *)

type ctx = {
  prog : Sir.prog;
  cache : cache;
  mode : Flags.mode;
  config : Ssapre.config;
  refinements : (int, Loc.t) Hashtbl.t;
      (** flow-sensitive definite-target facts, filled by the [refine]
          pass and consumed by every later χ/μ annotation *)
  perturb : Flags.perturbation option;
      (** adversarial corruption of the flag assignment (stress runs) *)
  mutable in_ssa : bool;
      (** true between [build-ssa] and the next SSA-destroying pass;
          gates the SSA half of inter-pass verification *)
  mutable ssapre_total : Ssapre.stats;
      (** aggregated SSAPRE statistics across rounds, for [result] *)
}

type outcome = {
  touched : bool;                  (** did the pass mutate the program? *)
  invalidates : analysis list;     (** cached analyses it clobbered *)
  counters : (string * int) list;  (** pass-specific statistics *)
}

let analysis_only = { touched = false; invalidates = []; counters = [] }

type pass = {
  pname : string;
  pdescr : string;
  prun : ctx -> outcome;
}

let registry : (string, pass) Hashtbl.t = Hashtbl.create 16
let register p = Hashtbl.replace registry p.pname p

let find_pass name =
  match Hashtbl.find_opt registry name with
  | Some p -> p
  | None ->
    invalid_arg
      (Printf.sprintf "Passes.find_pass: unknown pass %S (known: %s)" name
         (String.concat ", "
            (List.sort compare
               (Hashtbl.fold (fun n _ acc -> n :: acc) registry []))))

let pass_names () =
  List.sort compare (Hashtbl.fold (fun n _ acc -> n :: acc) registry [])

(* ------------------------------------------------------------------ *)
(* The registered passes                                               *)
(* ------------------------------------------------------------------ *)

let count_spec_operands prog =
  let mus = ref 0 and chis = ref 0 in
  Sir.iter_funcs
    (fun f ->
      Vec.iter
        (fun (b : Sir.bb) ->
          List.iter
            (fun (s : Sir.stmt) ->
              List.iter
                (fun (m : Sir.mu) -> if m.Sir.mu_spec then incr mus)
                s.Sir.mus;
              List.iter
                (fun (c : Sir.chi) -> if c.Sir.chi_spec then incr chis)
                s.Sir.chis)
            b.Sir.stmts)
        f.Sir.fblocks)
    prog;
  (!mus, !chis)

let count_phis prog =
  let n = ref 0 in
  Sir.iter_funcs
    (fun f ->
      Vec.iter
        (fun (b : Sir.bb) -> n := !n + List.length b.Sir.phis)
        f.Sir.fblocks)
    prog;
  !n

(** Drop every check statement — the Aggressive variant's second step;
    correct only when no aliasing actually occurs at runtime. *)
let strip_checks (prog : Sir.prog) : int =
  let stripped = ref 0 in
  Sir.iter_funcs
    (fun f ->
      Vec.iter
        (fun (b : Sir.bb) ->
          b.Sir.stmts <-
            List.filter
              (fun (s : Sir.stmt) ->
                let keep = s.Sir.mark <> Sir.Mchk in
                if not keep then incr stripped;
                keep)
              b.Sir.stmts)
        f.Sir.fblocks)
    prog;
  !stripped

let p_annotate =
  { pname = "annotate";
    pdescr = "alias classes + interprocedural mod/ref + chi/mu lists";
    prun =
      (fun ctx ->
        let info = annot ~refinements:ctx.refinements ctx.cache in
        { touched = true;
          invalidates = [];
          counters =
            [ "sites", Hashtbl.length info.Spec_alias.Annotate.site_vv ] }) }

let p_flags =
  { pname = "flags";
    pdescr = "speculation-flag assignment to chi/mu operands";
    prun =
      (fun ctx ->
        let info = annot ~refinements:ctx.refinements ctx.cache in
        Flags.assign ~threshold:ctx.config.Ssapre.alias_threshold
          ?perturb:ctx.perturb ctx.prog info ctx.mode;
        let mus, chis = count_spec_operands ctx.prog in
        { touched = true;
          invalidates = [];
          counters =
            (match ctx.perturb with
             | Some p -> [ "flagged-mus", mus; "flagged-chis", chis;
                           "adversary-flips", Flags.flipped p ]
             | None -> [ "flagged-mus", mus; "flagged-chis", chis ]) }) }

let p_split_edges =
  { pname = "split-edges";
    pdescr = "split critical CFG edges (SSAPRE insertion points)";
    prun =
      (fun ctx ->
        let n = ref 0 in
        Sir.iter_funcs
          (fun f -> n := !n + Cfg_utils.split_critical_edges f)
          ctx.prog;
        { touched = !n > 0;
          invalidates = (if !n > 0 then [ Dominators ] else []);
          counters = [ "edges-split", !n ] }) }

let p_build_ssa =
  { pname = "build-ssa";
    pdescr = "HSSA construction (phi insertion + renaming)";
    prun =
      (fun ctx ->
        ignore
          (Spec_ssa.Build_ssa.build ~dom_of:(dom_of ctx.cache) ctx.prog
           : Spec_ssa.Build_ssa.t list);
        ctx.in_ssa <- true;
        { touched = true;
          invalidates = [];
          counters = [ "phis", count_phis ctx.prog ] }) }

let p_refine =
  { pname = "refine";
    pdescr = "flow-sensitive pointer refinement (definite targets)";
    prun =
      (fun ctx ->
        ignore
          (Spec_ssa.Refine.compute ~acc:ctx.refinements ctx.prog
           : (int, Loc.t) Hashtbl.t);
        (* later annotations depend on the refinement facts *)
        { touched = false;
          invalidates = [ Chi_mu ];
          counters =
            [ "refined-sites", Hashtbl.length ctx.refinements ] }) }

let p_ssapre =
  { pname = "ssapre";
    pdescr = "speculative SSAPRE (register promotion of loads)";
    prun =
      (fun ctx ->
        let info = annot ~refinements:ctx.refinements ctx.cache in
        let st = ref Ssapre.zero_stats in
        Sir.iter_funcs
          (fun f ->
            let dom = dom_of ctx.cache f in
            st :=
              Ssapre.add_stats !st
                (Ssapre.run_func ~dom ctx.prog info ctx.config f))
          ctx.prog;
        ctx.ssapre_total <- Ssapre.add_stats ctx.ssapre_total !st;
        (* run_func leaves functions in flat (non-SSA-maintained) form *)
        ctx.in_ssa <- false;
        let s = !st in
        let touched =
          s.Ssapre.checks + s.Ssapre.reloads + s.Ssapre.saves
          + s.Ssapre.inserts > 0
        in
        { touched;
          invalidates = (if touched then [ Chi_mu ] else []);
          counters =
            [ "items", s.Ssapre.items; "checks", s.Ssapre.checks;
              "reloads", s.Ssapre.reloads; "saves", s.Ssapre.saves;
              "inserts", s.Ssapre.inserts;
              "cspec-phis", s.Ssapre.cspec_phis ] }) }

let p_out_of_ssa =
  { pname = "out-of-ssa";
    pdescr = "de-version SIR, drop phis and chi/mu annotations";
    prun =
      (fun ctx ->
        Spec_ssa.Out_of_ssa.run ctx.prog;
        ctx.in_ssa <- false;
        (* statement-level chi/mu lists are wiped by de-versioning *)
        { touched = true; invalidates = [ Chi_mu ]; counters = [] }) }

let p_store_promo =
  { pname = "store-promo";
    pdescr = "speculative register promotion of stores (SPRE)";
    prun =
      (fun ctx ->
        let info = annot ~refinements:ctx.refinements ctx.cache in
        let kctx =
          Kills.create ~alias_threshold:ctx.config.Ssapre.alias_threshold
            ?adversary:ctx.perturb ctx.prog info ctx.mode
        in
        let st =
          Spec_ssapre.Store_promo.run ~dom_of:(dom_of ctx.cache) ctx.prog
            info kctx
        in
        let touched = st.Store_promo.promoted > 0 in
        { touched;
          invalidates = (if touched then [ Chi_mu ] else []);
          counters =
            [ "promoted", st.Store_promo.promoted;
              "loads-gone", st.Store_promo.loads_gone;
              "stores-gone", st.Store_promo.stores_gone;
              "checks", st.Store_promo.checks ] }) }

let p_strength =
  { pname = "strength";
    pdescr = "strength reduction + linear function test replacement";
    prun =
      (fun ctx ->
        let st =
          Spec_ssapre.Strength.run ~dom_of:(dom_of ctx.cache) ctx.prog
        in
        let touched = st.Strength.reduced + st.Strength.lftr > 0 in
        { touched;
          invalidates = (if touched then [ Chi_mu ] else []);
          counters =
            [ "reduced", st.Strength.reduced; "lftr", st.Strength.lftr ] }) }

let p_cleanup =
  { pname = "cleanup";
    pdescr = "constant folding, copy propagation, dead-code elimination";
    prun =
      (fun ctx ->
        let st = Spec_ssapre.Cleanup.run ctx.prog in
        let touched =
          st.Cleanup.folded + st.Cleanup.propagated + st.Cleanup.removed > 0
        in
        { touched;
          invalidates = (if touched then [ Chi_mu ] else []);
          counters =
            [ "folded", st.Cleanup.folded;
              "propagated", st.Cleanup.propagated;
              "removed", st.Cleanup.removed ] }) }

let p_spec_safety =
  { pname = "spec-safety";
    pdescr = "speculative-taint safety checker over the optimized IR";
    prun =
      (fun ctx ->
        let rep = safety_of ctx.cache in
        { touched = false;
          invalidates = [];
          counters =
            [ "confirmed", rep.Spec_safety.Taint.rp_confirmed;
              "plausible", rep.Spec_safety.Taint.rp_plausible ] }) }

let p_strip_checks =
  { pname = "strip-checks";
    pdescr = "drop runtime checks (Aggressive upper-bound variant)";
    prun =
      (fun ctx ->
        let n = strip_checks ctx.prog in
        { touched = n > 0;
          invalidates = (if n > 0 then [ Chi_mu ] else []);
          counters = [ "stripped", n ] }) }

let () =
  List.iter register
    [ p_annotate; p_flags; p_split_edges; p_build_ssa; p_refine; p_ssapre;
      p_out_of_ssa; p_store_promo; p_strength; p_cleanup; p_spec_safety;
      p_strip_checks ]

(* ------------------------------------------------------------------ *)
(* Manager: scheduling, timing, verification                           *)
(* ------------------------------------------------------------------ *)

type pass_stat = {
  ps_pass : string;
  mutable ps_runs : int;
  mutable ps_touched : int;     (** runs that reported a mutation *)
  mutable ps_time : float;      (** accumulated wall time, seconds *)
  mutable ps_counters : (string * int) list;  (** summed across runs *)
}

type report = {
  rp_passes : pass_stat list;   (** in first-run order *)
  rp_counters : counters;
  rp_verified : int;            (** inter-pass verification runs *)
  rp_total_time : float;
}

let empty_report () =
  { rp_passes = []; rp_counters = fresh_counters (); rp_verified = 0;
    rp_total_time = 0. }

(** Raised by [--verify-each] with the name of the offending pass and
    the underlying invariant violation. *)
exception Verify_error of string * string

type manager = {
  mctx : ctx;
  verify_each : bool;
  mstats : (string, pass_stat) Hashtbl.t;
  mutable morder : string list;   (* reverse first-run order *)
  mutable mverified : int;
  mutable mtotal : float;
}

let create ?(verify_each = false) ?perturb ~mode ~config prog =
  { mctx =
      { prog; cache = create_cache prog; mode; config;
        refinements = Hashtbl.create 16; perturb; in_ssa = false;
        ssapre_total = Ssapre.zero_stats };
    verify_each; mstats = Hashtbl.create 16; morder = []; mverified = 0;
    mtotal = 0. }

let context mgr = mgr.mctx

let merge_counters old add =
  List.fold_left
    (fun acc (k, v) ->
      match List.assoc_opt k acc with
      | Some v0 -> (k, v0 + v) :: List.remove_assoc k acc
      | None -> acc @ [ (k, v) ])
    old add

(** Structural IR verification between passes: CFG invariants always,
    SSA invariants while the program is in SSA form.  Names the pass
    that broke the IR on failure. *)
let verify mgr pass_name =
  mgr.mverified <- mgr.mverified + 1;
  try
    Sir.iter_funcs (fun f -> Cfg_utils.validate f) mgr.mctx.prog;
    if mgr.mctx.in_ssa then
      Spec_ssa.Ssa_check.check ~dom_of:(dom_of mgr.mctx.cache) mgr.mctx.prog
  with
  | Failure msg -> raise (Verify_error (pass_name, msg))
  | Verify_error _ as e -> raise e

(* One run's worth of bookkeeping for pass [name]: wall time, touched
   flag, and counters, merged into the manager's stats table. *)
let record_run mgr name ~dt ~touched ~counters =
  mgr.mtotal <- mgr.mtotal +. dt;
  let st =
    match Hashtbl.find_opt mgr.mstats name with
    | Some st -> st
    | None ->
      let st =
        { ps_pass = name; ps_runs = 0; ps_touched = 0; ps_time = 0.;
          ps_counters = [] }
      in
      Hashtbl.replace mgr.mstats name st;
      mgr.morder <- name :: mgr.morder;
      st
  in
  st.ps_runs <- st.ps_runs + 1;
  if touched then st.ps_touched <- st.ps_touched + 1;
  st.ps_time <- st.ps_time +. dt;
  st.ps_counters <- merge_counters st.ps_counters counters

let run_pass mgr name =
  let p = find_pass name in
  let t0 = Unix.gettimeofday () in
  let o = p.prun mgr.mctx in
  let dt = Unix.gettimeofday () -. t0 in
  record_run mgr p.pname ~dt ~touched:o.touched ~counters:o.counters;
  List.iter (invalidate mgr.mctx.cache) o.invalidates;
  if mgr.verify_each then verify mgr p.pname

let run_passes mgr names = List.iter (run_pass mgr) names

(* ------------------------------------------------------------------ *)
(* Fused per-function segments (parallel pipeline)                     *)
(* ------------------------------------------------------------------ *)

(* The pass-at-a-time schedule above is whole-program: every pass
   commits its SSA versions and temporaries into the shared symbol
   table before the next pass starts.  The fused segments below run the
   per-function portion of the pipeline — split-edges, build-ssa, and
   the SSAPRE-family clients down to out-of-ssa — as one task per
   function, on a *view* of the program: a record copy whose symbol
   table is cloned and whose statement counter is snapshotted, while
   the function bodies (owned exclusively by their task) are mutated in
   place.  Whole-program analyses (annotate, flags) stay sequential
   barriers between segments.

   Determinism: tasks are joined in submission order ([Parpool.map]),
   and all cross-task allocation — surviving temporaries, statement
   ids, refinement facts, dominator-cache entries, counters — is
   committed sequentially in [func_order] after the join.  The jobs=1
   path runs the identical task/commit machinery inline, so [--jobs n]
   output is byte-identical to [--jobs 1] by construction.

   This is also the dense-optimizer win on a single thread: SSA
   versions live and die inside a task's cloned table, so the shared
   symbol table only ever grows by surviving temporaries and the
   rename/occurrence structures stay small. *)

type seg_step = {
  sg_name : string;
  sg_dt : float;
  sg_touched : bool;
  sg_counters : (string * int) list;
}

type seg_result = {
  sr_fname : string;
  sr_view : Sir.prog;                      (* the task's program view *)
  sr_dom : Dom.t;                          (* valid for the final CFG *)
  sr_dom_ran : int;                        (* dominator computations *)
  sr_dom_hit : int;                        (* cache reuses *)
  sr_steps : seg_step list;                (* in schedule order *)
  sr_refine : (int * Loc.t option) list;   (* prepass only *)
  sr_ssapre : Ssapre.stats;                (* rounds only *)
  sr_verified : int;                       (* in-task verification runs *)
}

let count_phis_func (f : Sir.func) =
  let n = ref 0 in
  Vec.iter (fun (b : Sir.bb) -> n := !n + List.length b.Sir.phis) f.Sir.fblocks;
  !n

(* A task-private step recorder + in-task verification.  Verification
   failures surface as [Verify_error] through the pool's ordered join,
   so the reported pass is deterministic. *)
type stepper = {
  step : 'a. string -> (unit -> bool * (string * int) list * 'a) -> 'a;
}

let seg_env ~verify_each view f =
  let steps = ref [] in
  let verified = ref 0 in
  let step name thunk =
    let t0 = Unix.gettimeofday () in
    let touched, counters, x = thunk () in
    steps :=
      { sg_name = name; sg_dt = Unix.gettimeofday () -. t0;
        sg_touched = touched; sg_counters = counters }
      :: !steps;
    x
  in
  let check name ~ssa_dom =
    if verify_each then begin
      incr verified;
      try
        Cfg_utils.validate f;
        match ssa_dom with
        | Some dom -> Spec_ssa.Ssa_check.check_func view f dom
        | None -> ()
      with Failure msg -> raise (Verify_error (name, msg))
    end
  in
  (steps, verified, { step }, check)

(* Shared head of the prepass/round segments: split critical edges,
   then produce a dominator tree — reusing [dom_cached] when the task
   split nothing — and build HSSA. *)
let seg_split_and_ssa ~(sp : stepper)
    ~(check : string -> ssa_dom:Dom.t option -> unit) ~dom_cached view
    (f : Sir.func) =
  let nsplit =
    sp.step "split-edges" (fun () ->
        let n = Cfg_utils.split_critical_edges f in
        (n > 0, [ ("edges-split", n) ], n))
  in
  check "split-edges" ~ssa_dom:None;
  let bt, dom, dom_ran, dom_hit =
    sp.step "build-ssa" (fun () ->
        let dom, ran, hit =
          match dom_cached with
          | Some d when nsplit = 0 -> (d, 0, 1)
          | _ ->
            Sir.recompute_preds f;
            (Dom.compute f, 1, 0)
        in
        let bt = Spec_ssa.Build_ssa.build_func ~dom_of:(fun _ -> dom) view f in
        (true, [ ("phis", count_phis_func f) ], (bt, dom, ran, hit)))
  in
  check "build-ssa" ~ssa_dom:(Some dom);
  (bt, dom, dom_ran, dom_hit)

let prepass_task ~verify_each ~dom_cached (view : Sir.prog) (f : Sir.func) :
    seg_result =
  let steps, verified, sp, check = seg_env ~verify_each view f in
  let _bt, dom, dom_ran, dom_hit =
    seg_split_and_ssa ~sp ~check ~dom_cached view f
  in
  let decisions =
    sp.step "refine" (fun () ->
        let d = Spec_ssa.Refine.compute_func view.Sir.syms f in
        (* the "refined-sites" counter is global; recorded at commit *)
        (false, [], d))
  in
  check "refine" ~ssa_dom:(Some dom);
  sp.step "out-of-ssa" (fun () ->
      Spec_ssa.Out_of_ssa.run_func view f;
      (true, [], ()));
  check "out-of-ssa" ~ssa_dom:None;
  { sr_fname = f.Sir.fname; sr_view = view; sr_dom = dom; sr_dom_ran = dom_ran;
    sr_dom_hit = dom_hit; sr_steps = List.rev !steps; sr_refine = decisions;
    sr_ssapre = Ssapre.zero_stats; sr_verified = !verified }

let round_task ~verify_each ~dom_cached ~annot_info ~config (view : Sir.prog)
    (f : Sir.func) : seg_result =
  let steps, verified, sp, check = seg_env ~verify_each view f in
  let bt, dom, dom_ran, dom_hit =
    seg_split_and_ssa ~sp ~check ~dom_cached view f
  in
  let st =
    sp.step "ssapre" (fun () ->
        let st =
          Ssapre.run_func ~dom ~formals:bt.Spec_ssa.Build_ssa.formals_v1 view
            annot_info config f
        in
        let touched =
          st.Ssapre.checks + st.Ssapre.reloads + st.Ssapre.saves
          + st.Ssapre.inserts > 0
        in
        ( touched,
          [ ("items", st.Ssapre.items); ("checks", st.Ssapre.checks);
            ("reloads", st.Ssapre.reloads); ("saves", st.Ssapre.saves);
            ("inserts", st.Ssapre.inserts);
            ("cspec-phis", st.Ssapre.cspec_phis) ],
          st ))
  in
  (* run_func leaves the function flat: CFG checks only from here on *)
  check "ssapre" ~ssa_dom:None;
  sp.step "out-of-ssa" (fun () ->
      Spec_ssa.Out_of_ssa.run_func view f;
      (true, [], ()));
  check "out-of-ssa" ~ssa_dom:None;
  { sr_fname = f.Sir.fname; sr_view = view; sr_dom = dom; sr_dom_ran = dom_ran;
    sr_dom_hit = dom_hit; sr_steps = List.rev !steps; sr_refine = [];
    sr_ssapre = st; sr_verified = !verified }

let post_task ~verify_each ~dom_cached ~annot_info ~config ~perturb ~strength
    ~strip ~deopt_vbase (view : Sir.prog) (f : Sir.func) : seg_result =
  let steps, verified, sp, check = seg_env ~verify_each view f in
  let dom, dom_ran, dom_hit =
    match dom_cached with
    | Some d -> (d, 0, 1)
    | None ->
      Sir.recompute_preds f;
      (Dom.compute f, 1, 0)
  in
  sp.step "store-promo" (fun () ->
      let kctx =
        Kills.create ~alias_threshold:config.Ssapre.alias_threshold
          ?adversary:perturb view annot_info config.Ssapre.mode
      in
      let st = Store_promo.run_func ~dom view annot_info kctx f in
      ( st.Store_promo.promoted > 0,
        [ ("promoted", st.Store_promo.promoted);
          ("loads-gone", st.Store_promo.loads_gone);
          ("stores-gone", st.Store_promo.stores_gone);
          ("checks", st.Store_promo.checks) ],
        () ));
  check "store-promo" ~ssa_dom:None;
  if strength then begin
    sp.step "strength" (fun () ->
        let st = Strength.run_func ~dom view f in
        ( st.Strength.reduced + st.Strength.lftr > 0,
          [ ("reduced", st.Strength.reduced); ("lftr", st.Strength.lftr) ],
          () ));
    check "strength" ~ssa_dom:None
  end;
  sp.step "cleanup" (fun () ->
      (* deopt descriptors transfer lowering-era register state, so the
         variables they name must survive dead-code elimination *)
      let pin =
        match deopt_vbase with
        | None -> None
        | Some vbase ->
          Some
            (fun v ->
              (Symtab.orig view.Sir.syms v).Symtab.vid < vbase)
      in
      let st = Cleanup.run_func ?pin view f in
      ( st.Cleanup.folded + st.Cleanup.propagated + st.Cleanup.removed > 0,
        [ ("folded", st.Cleanup.folded);
          ("propagated", st.Cleanup.propagated);
          ("removed", st.Cleanup.removed) ],
        () ));
  check "cleanup" ~ssa_dom:None;
  if strip then begin
    sp.step "strip-checks" (fun () ->
        let n = ref 0 in
        Vec.iter
          (fun (b : Sir.bb) ->
            b.Sir.stmts <-
              List.filter
                (fun (s : Sir.stmt) ->
                  let keep = s.Sir.mark <> Sir.Mchk in
                  if not keep then incr n;
                  keep)
                b.Sir.stmts)
          f.Sir.fblocks;
        (!n > 0, [ ("stripped", !n) ], ()));
    check "strip-checks" ~ssa_dom:None
  end;
  { sr_fname = f.Sir.fname; sr_view = view; sr_dom = dom; sr_dom_ran = dom_ran;
    sr_dom_hit = dom_hit; sr_steps = List.rev !steps; sr_refine = [];
    sr_ssapre = Ssapre.zero_stats; sr_verified = !verified }

(* Fan one task per function out to the domain pool.  Each task clones
   the symbol table and snapshots the statement counter itself (reads
   of the shared structures are safe: nothing writes them until the
   sequential commit).  Adversarial runs share one perturbation RNG, so
   they stay inline regardless of the pool size to keep the draw order
   deterministic. *)
let seg_map mgr (task : Sir.prog -> Sir.func -> seg_result) : seg_result list =
  let ctx = mgr.mctx in
  let prog = ctx.prog in
  let adversarial =
    ctx.perturb <> None || ctx.config.Ssapre.adversary <> None
  in
  let run name =
    let f = Hashtbl.find prog.Sir.funcs name in
    let view = { prog with Sir.syms = Symtab.clone prog.Sir.syms } in
    task view f
  in
  if adversarial then List.map run prog.Sir.func_order
  else Parpool.parmap run prog.Sir.func_order

(* Sequential, func_order commit of everything the tasks allocated:

   - Surviving new variables (temporaries; every SSA version has been
     de-versioned away inside the segment) are re-allocated into the
     real symbol table.  Their names are re-derived as the task-side
     prefix plus the *committed* id, preserving the sequential scheme
     where a temp is named after its own id.
   - New statements get fresh ids from the real counter in block order;
     [check_of] references into the segment are remapped along.
   - Refinement facts, dominator-cache entries, analysis counters and
     SSAPRE totals merge in the same order. *)
let seg_commit mgr ~vbase ~sbase (results : seg_result list) =
  let ctx = mgr.mctx in
  let prog = ctx.prog in
  let syms = prog.Sir.syms in
  List.iter
    (fun r ->
      let f = Hashtbl.find prog.Sir.funcs r.sr_fname in
      let view = r.sr_view in
      let vsyms = view.Sir.syms in
      let vcount = Symtab.count vsyms in
      (* surviving new variables *)
      let vmap =
        if vcount > vbase then Array.make (vcount - vbase) (-1) else [||]
      in
      for vid = vbase to vcount - 1 do
        let v = Symtab.var vsyms vid in
        if v.Symtab.vorig = v.Symtab.vid then begin
          let prefix =
            let n = v.Symtab.vname in
            let len = ref (String.length n) in
            while
              !len > 0
              && match n.[!len - 1] with '0' .. '9' -> true | _ -> false
            do
              decr len
            done;
            String.sub n 0 !len
          in
          let nv =
            Symtab.add syms
              ~name:(prefix ^ string_of_int (Symtab.count syms))
              ~ty:v.Symtab.vty ~storage:v.Symtab.vstorage ~func:v.Symtab.vfunc
              ~size:v.Symtab.vsize ~elt:v.Symtab.velt
              ~is_array:v.Symtab.varray ()
          in
          vmap.(vid - vbase) <- nv.Symtab.vid
        end
      done;
      let mv v =
        if v >= vbase then begin
          let nv = vmap.(v - vbase) in
          assert (nv >= 0);     (* versions never survive a segment *)
          nv
        end
        else v
      in
      (* new statement ids, allocated in block/statement order *)
      let nstmts = view.Sir.next_stmt - sbase in
      let smap = if nstmts > 0 then Array.make nstmts (-1) else [||] in
      if nstmts > 0 then
        Vec.iter
          (fun (b : Sir.bb) ->
            List.iter
              (fun (s : Sir.stmt) ->
                if s.Sir.sid >= sbase then begin
                  smap.(s.Sir.sid - sbase) <- prog.Sir.next_stmt;
                  prog.Sir.next_stmt <- prog.Sir.next_stmt + 1
                end)
              b.Sir.stmts)
          f.Sir.fblocks;
      let remap_vars = Array.length vmap > 0 in
      if remap_vars || nstmts > 0 then
        Vec.iter
          (fun (b : Sir.bb) ->
            b.Sir.stmts <-
              List.map
                (fun (s : Sir.stmt) ->
                  let kind =
                    if not remap_vars then s.Sir.kind
                    else
                      let k =
                        Sir.map_stmt_exprs (Sir.map_expr_uses mv) s.Sir.kind
                      in
                      match k with
                      | Sir.Stid (v, e) when v >= vbase ->
                        Sir.Stid (mv v, e)
                      | Sir.Call ({ Sir.ret = Some v; _ } as c)
                        when v >= vbase ->
                        Sir.Call { c with Sir.ret = Some (mv v) }
                      | k -> k
                  in
                  let sid =
                    if s.Sir.sid >= sbase then smap.(s.Sir.sid - sbase)
                    else s.Sir.sid
                  in
                  let check_of =
                    if s.Sir.check_of >= sbase then
                      smap.(s.Sir.check_of - sbase)
                    else s.Sir.check_of
                  in
                  if
                    sid = s.Sir.sid && check_of = s.Sir.check_of
                    && kind == s.Sir.kind
                  then s
                  else { s with Sir.sid; Sir.kind; Sir.check_of })
                b.Sir.stmts;
            if remap_vars then
              b.Sir.term <- Sir.map_term_exprs (Sir.map_expr_uses mv) b.Sir.term)
          f.Sir.fblocks;
      if remap_vars then f.Sir.flocals <- List.map mv f.Sir.flocals;
      (* analyses, facts, totals *)
      Hashtbl.replace ctx.cache.doms r.sr_fname r.sr_dom;
      let c = ctx.cache.counters in
      c.dom_runs <- c.dom_runs + r.sr_dom_ran;
      c.dom_hits <- c.dom_hits + r.sr_dom_hit;
      Spec_ssa.Refine.merge_into ctx.refinements r.sr_refine;
      ctx.ssapre_total <- Ssapre.add_stats ctx.ssapre_total r.sr_ssapre;
      mgr.mverified <- mgr.mverified + r.sr_verified)
    results

(* Record each sub-pass once per segment invocation: times are summed
   across tasks (CPU seconds — under --jobs n the wall time is lower),
   counters merge in any order (they are sums), touched is an OR. *)
let seg_record mgr step_names (results : seg_result list) =
  List.iter
    (fun name ->
      let dt = ref 0. and touched = ref false and counters = ref [] in
      List.iter
        (fun r ->
          List.iter
            (fun s ->
              if s.sg_name = name then begin
                dt := !dt +. s.sg_dt;
                if s.sg_touched then touched := true;
                counters := merge_counters !counters s.sg_counters
              end)
            r.sr_steps)
        results;
      let counters =
        if name = "refine" then
          [ ("refined-sites", Hashtbl.length mgr.mctx.refinements) ]
        else !counters
      in
      record_run mgr name ~dt:!dt ~touched:!touched ~counters)
    step_names

let seg_run mgr step_names task : seg_result list =
  let ctx = mgr.mctx in
  let vbase = Symtab.count ctx.prog.Sir.syms in
  let sbase = ctx.prog.Sir.next_stmt in
  let results = seg_map mgr task in
  seg_commit mgr ~vbase ~sbase results;
  seg_record mgr step_names results;
  (* statement-level chi/mu lists are wiped inside the segment *)
  invalidate ctx.cache Chi_mu;
  ctx.in_ssa <- false;
  results

(** The refinement prepass as one fused parallel segment: an [annotate]
    barrier, then per-function split-edges / build-ssa / refine /
    out-of-ssa tasks.  Equivalent to scheduling
    [Pipeline.prepass_schedule] pass-at-a-time, except that SSA versions
    stay task-local. *)
let fused_prepass mgr =
  let ctx = mgr.mctx in
  run_pass mgr "annotate";
  let verify_each = mgr.verify_each in
  ignore
    (seg_run mgr [ "split-edges"; "build-ssa"; "refine"; "out-of-ssa" ]
       (fun view f ->
         prepass_task ~verify_each
           ~dom_cached:(Hashtbl.find_opt ctx.cache.doms f.Sir.fname) view f)
     : seg_result list)

(** One promotion round as a fused parallel segment: [annotate] and
    [flags] barriers, then per-function split-edges / build-ssa / ssapre
    / out-of-ssa tasks. *)
let fused_round mgr =
  let ctx = mgr.mctx in
  run_pass mgr "annotate";
  run_pass mgr "flags";
  let annot_info = annot ~refinements:ctx.refinements ctx.cache in
  let verify_each = mgr.verify_each and config = ctx.config in
  ignore
    (seg_run mgr [ "split-edges"; "build-ssa"; "ssapre"; "out-of-ssa" ]
       (fun view f ->
         round_task ~verify_each
           ~dom_cached:(Hashtbl.find_opt ctx.cache.doms f.Sir.fname)
           ~annot_info ~config view f)
     : seg_result list)

(** The post-rounds tail as a fused parallel segment: an [annotate]
    barrier (the store promoter's annotation), then per-function
    store-promo / strength / cleanup / strip-checks tasks.

    With [deopt_vbase] set, cleanup pins lowering-era variables (their
    values feed deoptimization descriptors).  Returns, per function,
    whether a sub-pass transformed it in a way that breaks the
    deopt state mapping: store promotion defers memory effects and
    linear-function test replacement retires induction variables, so
    any function they touched must not keep descriptors. *)
let fused_post mgr ?deopt_vbase ~strength ~strip () : (string * bool) list =
  let ctx = mgr.mctx in
  (* barrier annotation, timed under store-promo as in the sequential
     schedule (where the pass's own run pays for the cache miss) *)
  let t0 = Unix.gettimeofday () in
  let annot_info = annot ~refinements:ctx.refinements ctx.cache in
  let annot_dt = Unix.gettimeofday () -. t0 in
  let verify_each = mgr.verify_each in
  let config = ctx.config and perturb = ctx.perturb in
  let names =
    [ "store-promo" ] @ (if strength then [ "strength" ] else [])
    @ [ "cleanup" ] @ (if strip then [ "strip-checks" ] else [])
  in
  let results =
    seg_run mgr names (fun view f ->
        post_task ~verify_each
          ~dom_cached:(Hashtbl.find_opt ctx.cache.doms f.Sir.fname)
          ~annot_info ~config ~perturb ~strength ~strip ~deopt_vbase view f)
  in
  (match Hashtbl.find_opt mgr.mstats "store-promo" with
   | Some st -> st.ps_time <- st.ps_time +. annot_dt
   | None -> ());
  mgr.mtotal <- mgr.mtotal +. annot_dt;
  List.map
    (fun r ->
      let counter step key =
        List.fold_left
          (fun acc s ->
            if s.sg_name = step then
              acc + (try List.assoc key s.sg_counters with Not_found -> 0)
            else acc)
          0 r.sr_steps
      in
      ( r.sr_fname,
        counter "store-promo" "promoted" > 0 || counter "strength" "lftr" > 0
      ))
    results

let report mgr =
  { rp_passes =
      List.rev_map (fun n -> Hashtbl.find mgr.mstats n) mgr.morder;
    rp_counters = mgr.mctx.cache.counters;
    rp_verified = mgr.mverified;
    rp_total_time = mgr.mtotal }

(* ------------------------------------------------------------------ *)
(* Report rendering                                                    *)
(* ------------------------------------------------------------------ *)

let counters_to_string c =
  Printf.sprintf
    "analyses: steensgaard=%d modref=%d annotate=%d dom=%d safety=%d \
     (hits: points-to=%d annotate=%d dom=%d safety=%d)"
    c.steensgaard_runs c.modref_runs c.annot_runs c.dom_runs c.safety_runs
    c.points_to_hits c.annot_hits c.dom_hits c.safety_hits

let report_to_string r =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "%-12s %5s %8s  %s\n" "pass" "runs" "ms" "stats");
  List.iter
    (fun st ->
      Buffer.add_string buf
        (Printf.sprintf "%-12s %5d %8.2f  %s\n" st.ps_pass st.ps_runs
           (st.ps_time *. 1000.)
           (String.concat " "
              (List.map
                 (fun (k, v) -> Printf.sprintf "%s=%d" k v)
                 st.ps_counters))))
    r.rp_passes;
  Buffer.add_string buf
    (Printf.sprintf "%-12s %5s %8.2f\n" "total" "" (r.rp_total_time *. 1000.));
  Buffer.add_string buf (counters_to_string r.rp_counters);
  Buffer.add_char buf '\n';
  if r.rp_verified > 0 then
    Buffer.add_string buf
      (Printf.sprintf "inter-pass verification: %d runs, all clean\n"
         r.rp_verified);
  Buffer.contents buf

let report_to_json r =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\"passes\":[";
  List.iteri
    (fun i st ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\":%S,\"runs\":%d,\"touched\":%d,\"ms\":%.3f,\"stats\":{"
           st.ps_pass st.ps_runs st.ps_touched (st.ps_time *. 1000.));
      List.iteri
        (fun j (k, v) ->
          if j > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf (Printf.sprintf "%S:%d" k v))
        st.ps_counters;
      Buffer.add_string buf "}}")
    r.rp_passes;
  let c = r.rp_counters in
  Buffer.add_string buf
    (Printf.sprintf
       "],\"analyses\":{\"steensgaard_runs\":%d,\"modref_runs\":%d,\
        \"annot_runs\":%d,\"dom_runs\":%d,\"safety_runs\":%d,\
        \"points_to_hits\":%d,\"annot_hits\":%d,\"dom_hits\":%d,\
        \"safety_hits\":%d},\"verified\":%d,\
        \"total_ms\":%.3f}"
       c.steensgaard_runs c.modref_runs c.annot_runs c.dom_runs
       c.safety_runs c.points_to_hits c.annot_hits c.dom_hits
       c.safety_hits r.rp_verified
       (r.rp_total_time *. 1000.));
  Buffer.contents buf
