(** Machine-readable bench dump (schema [specpre-bench/4]): emission,
    parsing, and validation.

    The [--json] harness mode writes a trajectory record
    ([BENCH_<date>.json]) that later PRs diff against, so its shape is a
    contract: {!validate} pins the field names and types of every
    section, and the test suite golden-checks both the committed
    baselines and a freshly emitted dump against it.  The parser is a
    small recursive-descent JSON reader (no external JSON dependency in
    the tree) that accepts exactly the JSON subset the emitter produces
    plus standard escapes.

    [specpre-bench/4] added the execution-engine dimension: every
    variant row carries a required [engine] field naming the
    interpreter engine(s) that validated it ("tree", "vm" or
    "tree+vm"), and every dump carries an [engines] throughput section
    (tree-walking oracle vs pre-compiled tree vs threaded-code vm, with
    speedups and Mstmt/s / Minsn/s rates) plus an [mdp] section sweeping
    the OoO core's memory-dependence predictors.

    [specpre-bench/5] added the optional [service] section: the
    compile-service traffic replay ([bench/main.exe --traffic]) —
    request mix, cold/warm/joined split, online-FDO reports and
    drift-triggered recompiles, divergence count (always 0: the replay
    hard-fails on any daemon-vs-offline mismatch), p50/p99 latency and
    throughput.

    [specpre-bench/6] added the [safety] section: the
    speculative-taint checker's verdict per (workload, speculative
    variant) — confirmed/plausible counts and the stable site keys —
    plus the recovery-cost comparison (check misses recovered by
    reloading vs by deoptimizing, under one forced interference plan).

    [specpre-bench/7] (this PR) adds the sharded compile service:
    the [service] section gains the required [parked] counter
    (cross-wakeup single-flight joins), and the optional [shards]
    section records a key-routed multi-shard traffic replay
    ([bench/main.exe --traffic --shards n]) — topology width,
    aggregate latency/throughput, and one row per shard with its
    request/served/FDO counters and latency percentiles.  [per_shard]
    must hold exactly [shards] rows and [divergences] must be 0 (the
    replay hard-fails if a sharded answer differs by one byte from
    the unsharded oracle).  /6 and older dumps are rejected. *)

open Spec_workloads

let schema_tag = "specpre-bench/7"

(* ------------------------------------------------------------------ *)
(* Emission                                                            *)
(* ------------------------------------------------------------------ *)

let variant_json ~backend ~engine name (r : Experiments.run) =
  let open Spec_machine in
  let p = r.Experiments.r_machine.Machine.perf in
  Printf.sprintf
    "{\"variant\":%S,\"backend\":%S,\"engine\":%S,\"wall_s\":%.6f,\
     \"cycles\":%d,\
     \"insns\":%d,\"data_cycles\":%d,\"loads_retired\":%d,\"checks\":%d,\
     \"check_misses\":%d,\"br_mispredicts\":%d,\"lsq_replays\":%d}"
    name
    (Machine.backend_name backend)
    engine
    r.Experiments.r_wall_s p.Machine.cycles p.Machine.insns
    p.Machine.data_cycles
    (Machine.loads_retired p)
    p.Machine.checks p.Machine.check_misses p.Machine.br_mispredicts
    p.Machine.lsq_replays

(** One workload's JSON object: wall time per phase, machine counters per
    variant, the paper metrics, and the pass manager's per-pass reports
    (timings + statistics + analysis-cache counters, on the train
    compile). *)
let workload_json (w : Workloads.workload) (b : Experiments.bench_result) =
  let buf = Buffer.create 4096 in
  let backend = b.Experiments.backend in
  let engine = Experiments.engines_label b.Experiments.engines in
  Printf.bprintf buf
    "{\"name\":%S,\"backend\":%S,\"wall_s\":%.6f,\"profile_wall_s\":%.6f,\
     \"variants\":["
    b.Experiments.wname
    (Spec_machine.Machine.backend_name backend)
    b.Experiments.total_wall_s b.Experiments.prof_wall_s;
  List.iteri
    (fun i (name, r) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (variant_json ~backend ~engine name r))
    [ "noopt", b.Experiments.noopt; "base", b.Experiments.base;
      "profile", b.Experiments.prof_spec;
      "heuristic", b.Experiments.heur_spec;
      "aggressive", b.Experiments.aggressive ];
  Printf.bprintf buf
    "],\"metrics\":{\"load_reduction_pct\":%.3f,\"speedup_pct\":%.3f,\
     \"data_cycle_reduction_pct\":%.3f,\"check_pct\":%.3f,\
     \"misspec_pct\":%.3f,\"reuse_potential_pct\":%.3f},\"passes\":["
    (Experiments.load_reduction ~base:b.Experiments.base
       ~spec:b.Experiments.prof_spec)
    (Experiments.speedup ~base:b.Experiments.base
       ~spec:b.Experiments.prof_spec)
    (Experiments.data_cycle_reduction ~base:b.Experiments.base
       ~spec:b.Experiments.prof_spec)
    (Experiments.check_pct b.Experiments.prof_spec)
    (Experiments.misspec_ratio b.Experiments.prof_spec)
    (100. *. b.Experiments.reuse_frac);
  let src = Workloads.train_source w in
  (* the harness profiled this workload already — reuse its training
     profile rather than running the interpreter a second time *)
  let prof = b.Experiments.train_profile in
  List.iteri
    (fun j (vname, v) ->
      if j > 0 then Buffer.add_char buf ',';
      let r = Pipeline.compile_and_optimize ~edge_profile:(Some prof) src v in
      Printf.bprintf buf "{\"variant\":%S,\"report\":%s}" vname
        (Passes.report_to_json r.Pipeline.report))
    [ "base", Pipeline.Base; "profile", Pipeline.Spec_profile prof;
      "heuristic", Pipeline.Spec_heuristic;
      "aggressive", Pipeline.Aggressive ];
  Buffer.add_string buf "]}";
  Buffer.contents buf

let stress_cell_json (cells : Experiments.stress_cell list)
    (c : Experiments.stress_cell) =
  Printf.sprintf
    "{\"workload\":%S,\"backend\":%S,\"point\":%S,\"variant\":%S,\"adv_flips\":%d,\
     \"checks\":%d,\"check_misses\":%d,\"hit_rate_pct\":%.3f,\
     \"cycles\":%d,\"insns\":%d,\"cycle_overhead_pct\":%.3f,\
     \"machine_flushes\":%d,\"machine_invalidations\":%d,\
     \"interp_checks\":%d,\"interp_reloads\":%d,\"interp_flushes\":%d,\
     \"interp_invalidations\":%d}"
    c.Experiments.sc_workload c.Experiments.sc_backend c.Experiments.sc_point
    c.Experiments.sc_variant
    c.Experiments.sc_adv_flips c.Experiments.sc_checks
    c.Experiments.sc_misses
    (Experiments.stress_hit_rate c)
    c.Experiments.sc_cycles c.Experiments.sc_insns
    (Experiments.stress_overhead cells c)
    c.Experiments.sc_m_flushes c.Experiments.sc_m_invs
    c.Experiments.sc_i_checks c.Experiments.sc_i_reloads
    c.Experiments.sc_i_flushes c.Experiments.sc_i_invs

(** The [--stress] sweep as a JSON object: the seed plus one flat cell
    per (workload, grid point, variant), in sweep order. *)
let stress_json ~seed (cells : Experiments.stress_cell list) =
  let buf = Buffer.create 4096 in
  Printf.bprintf buf "{\"seed\":%d,\"cells\":[" seed;
  List.iteri
    (fun i c ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (stress_cell_json cells c))
    cells;
  Buffer.add_string buf "]}";
  Buffer.contents buf

let backends_entry_json ~(inorder : Experiments.bench_result)
    ~(ooo : Experiments.bench_result) =
  let open Spec_machine in
  let replays (r : Experiments.run) =
    r.Experiments.r_machine.Machine.perf.Machine.lsq_replays
  in
  let win (b : Experiments.bench_result) =
    Experiments.speedup ~base:b.Experiments.base
      ~spec:b.Experiments.prof_spec
  in
  Printf.sprintf
    "{\"name\":%S,\"inorder\":{\"speedup_pct\":%.3f,\
     \"data_cycle_reduction_pct\":%.3f},\"ooo\":{\"speedup_pct\":%.3f,\
     \"data_cycle_reduction_pct\":%.3f,\"replays_base\":%d,\
     \"replays_spec\":%d},\"hw_captured_pts\":%.3f}"
    inorder.Experiments.wname (win inorder)
    (Experiments.data_cycle_reduction ~base:inorder.Experiments.base
       ~spec:inorder.Experiments.prof_spec)
    (win ooo)
    (Experiments.data_cycle_reduction ~base:ooo.Experiments.base
       ~spec:ooo.Experiments.prof_spec)
    (replays ooo.Experiments.base)
    (replays ooo.Experiments.prof_spec)
    (win inorder -. win ooo)

(** The [--backend both] in-order-vs-OoO comparison as a JSON object:
    one entry per workload pairing the two backends' paper metrics, the
    OoO core's LSQ replay counts on base vs speculative code, and the
    speedup points the hardware captures on its own
    ([hw_captured_pts] = in-order speedup − OoO speedup). *)
let backends_json (pairs :
    (Experiments.bench_result * Experiments.bench_result) list) =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\"workloads\":[";
  List.iteri
    (fun i (inorder, ooo) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (backends_entry_json ~inorder ~ooo))
    pairs;
  Buffer.add_string buf "]}";
  Buffer.contents buf

let engine_cell_json (c : Experiments.engine_cell) =
  Printf.sprintf
    "{\"workload\":%S,\"steps\":%d,\"insns\":%d,\"ref_wall_s\":%.6f,\
     \"tree_wall_s\":%.6f,\"vm_wall_s\":%.6f,\"tree_over_vm\":%.3f,\
     \"ref_over_vm\":%.3f,\"vm_mstmt_s\":%.3f,\"vm_minsn_s\":%.3f}"
    c.Experiments.e_wname c.Experiments.e_steps c.Experiments.e_insns
    c.Experiments.e_ref_s c.Experiments.e_tree_s c.Experiments.e_vm_s
    (Experiments.engine_tree_over_vm c)
    (Experiments.engine_ref_over_vm c)
    (Experiments.engine_mrate c.Experiments.e_steps c.Experiments.e_vm_s)
    (Experiments.engine_mrate c.Experiments.e_insns c.Experiments.e_vm_s)

(** The engine-throughput sweep as a JSON object: per-workload wall
    times for the three engines plus the geometric-mean speedups. *)
let engines_json (cells : Experiments.engine_cell list) =
  let buf = Buffer.create 2048 in
  Printf.bprintf buf
    "{\"geomean_tree_over_vm\":%.3f,\"geomean_ref_over_vm\":%.3f,\
     \"workloads\":["
    (Experiments.engine_geomean Experiments.engine_tree_over_vm cells)
    (Experiments.engine_geomean Experiments.engine_ref_over_vm cells);
  List.iteri
    (fun i c ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (engine_cell_json c))
    cells;
  Buffer.add_string buf "]}";
  Buffer.contents buf

let mdp_cell_json (cells : Experiments.mdp_cell list)
    (c : Experiments.mdp_cell) =
  Printf.sprintf
    "{\"workload\":%S,\"mdp\":%S,\"cycles\":%d,\"insns\":%d,\
     \"lsq_replays\":%d,\"vs_none_pct\":%.3f}"
    c.Experiments.md_wname
    (Experiments.mdp_name c.Experiments.md_policy)
    c.Experiments.md_cycles c.Experiments.md_insns
    c.Experiments.md_replays
    (Experiments.mdp_overhead cells c)

(** The memory-dependence-predictor sweep as a JSON object: one cell per
    (workload, policy) on the OoO core's profile-speculative build. *)
let mdp_json (cells : Experiments.mdp_cell list) =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\"cells\":[";
  List.iteri
    (fun i c ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (mdp_cell_json cells c))
    cells;
  Buffer.add_string buf "]}";
  Buffer.contents buf

let fdo_cell_json (f : Experiments.fdo_result) =
  Printf.sprintf
    "{\"workload\":%S,\"cold_wall_s\":%.6f,\"warm_wall_s\":%.6f,\
     \"hits\":%d,\"misses\":%d,\"stores\":%d,\"evictions\":%d,\
     \"cold_pass_runs\":%d,\"warm_pass_runs\":%d,\"warm_hit\":%b,\
     \"identical\":%b,\"match_rate\":%.6f}"
    f.Experiments.f_wname f.Experiments.f_cold_s f.Experiments.f_warm_s
    f.Experiments.f_hits f.Experiments.f_misses f.Experiments.f_stores
    f.Experiments.f_evictions f.Experiments.f_cold_passes
    f.Experiments.f_warm_passes f.Experiments.f_warm_hit
    f.Experiments.f_identical f.Experiments.f_match_rate

(** The warm-vs-cold compile-cache sweep as a JSON object. *)
let fdo_json (cells : Experiments.fdo_result list) =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\"workloads\":[";
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (fdo_cell_json f))
    cells;
  Buffer.add_string buf "]}";
  Buffer.contents buf

let compile_cell_json (c : Experiments.compile_result) =
  Printf.sprintf
    "{\"workload\":%S,\"funcs\":%d,\"seq_wall_s\":%.6f,\"par_wall_s\":%.6f,\
     \"speedup\":%.3f,\"seq_alloc_words\":%.0f,\"identical\":%b,\
     \"report\":%s}"
    c.Experiments.c_wname c.Experiments.c_funcs c.Experiments.c_seq_s
    c.Experiments.c_par_s
    (Experiments.compile_speedup c)
    c.Experiments.c_seq_alloc_w c.Experiments.c_identical
    (Passes.report_to_json c.Experiments.c_report)

(** The [--compile-bench] sweep as a JSON object: the parallel leg's
    domain count, the aggregate sweep speedup, and one cell per workload
    with the sequential compile's pass breakdown. *)
let compile_json (cells : Experiments.compile_result list) =
  let buf = Buffer.create 4096 in
  let jobs =
    match cells with c :: _ -> c.Experiments.c_jobs | [] -> 1
  in
  Printf.bprintf buf "{\"jobs\":%d,\"total_speedup\":%.3f,\"workloads\":["
    jobs
    (Experiments.compile_total_speedup cells);
  List.iteri
    (fun i c ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (compile_cell_json c))
    cells;
  Buffer.add_string buf "]}";
  Buffer.contents buf

let safety_cell_json (c : Experiments.safety_cell) =
  let buf = Buffer.create 256 in
  Printf.bprintf buf
    "{\"workload\":%S,\"variant\":%S,\"verdict\":%S,\"confirmed\":%d,\
     \"plausible\":%d,\"sites\":["
    c.Experiments.sf_wname c.Experiments.sf_variant c.Experiments.sf_verdict
    c.Experiments.sf_confirmed c.Experiments.sf_plausible;
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_char buf ',';
      Printf.bprintf buf "%S" s)
    c.Experiments.sf_sites;
  Printf.bprintf buf
    "],\"checks\":%d,\"reloads\":%d,\"reload_steps\":%d,\"deopts\":%d,\
     \"deopt_steps\":%d}"
    c.Experiments.sf_checks c.Experiments.sf_reloads
    c.Experiments.sf_reload_steps c.Experiments.sf_deopts
    c.Experiments.sf_deopt_steps;
  Buffer.contents buf

(** The speculative-safety sweep as a JSON object: the interference
    plan the recovery comparison ran under, and one cell per (workload,
    speculative variant) with the checker's verdict, its stable site
    keys, and the reload-vs-deopt recovery costs. *)
let safety_json ~seed (cells : Experiments.safety_cell list) =
  let buf = Buffer.create 4096 in
  Printf.bprintf buf "{\"seed\":%d,\"fault_plan\":%S,\"cells\":[" seed
    (Spec_stress.Faults.to_string (Experiments.safety_fault_plan ~seed));
  List.iteri
    (fun i c ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (safety_cell_json c))
    cells;
  Buffer.add_string buf "]}";
  Buffer.contents buf

(** Assemble the top-level dump.  [workloads] are pre-rendered
    {!workload_json} blobs; [engines], [mdp], [stress], [fdo],
    [compile], [service] and [shards] are pre-rendered section blobs —
    the first five from the emitters above, [service] and [shards]
    from [Spec_service.Traffic.to_json]/[shards_to_json] (the service
    library sits above this one, so its emitters live there; the
    validators below still pin the sections' shapes).  [date] is
    supplied by the caller (the library stays clock-free). *)
let dump ~date ~inputs ~jobs ~harness_wall_s ?pre_pr2_quick_wall_s ?backends
    ?engines ?mdp ?stress ?fdo ?compile ?safety ?service ?shards
    (workloads : string list) =
  let buf = Buffer.create 65536 in
  Printf.bprintf buf
    "{\"schema\":%S,\"date\":%S,\"inputs\":%S,\
     \"jobs\":%d,\"harness_wall_s\":%.3f,"
    schema_tag date inputs jobs harness_wall_s;
  (match pre_pr2_quick_wall_s with
   | Some w -> Printf.bprintf buf "\"pre_pr2_quick_wall_s\":%.3f," w
   | None -> ());
  Buffer.add_string buf "\"workloads\":[";
  List.iteri
    (fun i blob ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf blob)
    workloads;
  Buffer.add_string buf "]";
  (match backends with
   | Some s ->
     Buffer.add_string buf ",\"backends\":";
     Buffer.add_string buf s
   | None -> ());
  (match engines with
   | Some s ->
     Buffer.add_string buf ",\"engines\":";
     Buffer.add_string buf s
   | None -> ());
  (match mdp with
   | Some s ->
     Buffer.add_string buf ",\"mdp\":";
     Buffer.add_string buf s
   | None -> ());
  (match stress with
   | Some s ->
     Buffer.add_string buf ",\"stress\":";
     Buffer.add_string buf s
   | None -> ());
  (match fdo with
   | Some s ->
     Buffer.add_string buf ",\"fdo\":";
     Buffer.add_string buf s
   | None -> ());
  (match compile with
   | Some s ->
     Buffer.add_string buf ",\"compile\":";
     Buffer.add_string buf s
   | None -> ());
  (match safety with
   | Some s ->
     Buffer.add_string buf ",\"safety\":";
     Buffer.add_string buf s
   | None -> ());
  (match service with
   | Some s ->
     Buffer.add_string buf ",\"service\":";
     Buffer.add_string buf s
   | None -> ());
  (match shards with
   | Some s ->
     Buffer.add_string buf ",\"shards\":";
     Buffer.add_string buf s
   | None -> ());
  Buffer.add_string buf "}\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Parse_error of string

let parse (s : string) : (json, string) result =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "at %d: %s" !pos msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') -> advance (); skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail (Printf.sprintf "expected %c, got %c" c c')
    | None -> fail (Printf.sprintf "expected %c, got end of input" c)
  in
  let literal word v =
    if !pos + String.length word <= n
       && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
         | Some '"' -> Buffer.add_char buf '"'; advance ()
         | Some '\\' -> Buffer.add_char buf '\\'; advance ()
         | Some '/' -> Buffer.add_char buf '/'; advance ()
         | Some 'n' -> Buffer.add_char buf '\n'; advance ()
         | Some 't' -> Buffer.add_char buf '\t'; advance ()
         | Some 'r' -> Buffer.add_char buf '\r'; advance ()
         | Some 'b' -> Buffer.add_char buf '\b'; advance ()
         | Some 'f' -> Buffer.add_char buf '\012'; advance ()
         | Some 'u' ->
           advance ();
           if !pos + 4 > n then fail "truncated \\u escape";
           let hex = String.sub s !pos 4 in
           (match int_of_string_opt ("0x" ^ hex) with
            | Some code when code < 0x80 ->
              Buffer.add_char buf (Char.chr code)
            | Some _ ->
              (* the emitter never produces non-ASCII escapes *)
              Buffer.add_string buf ("\\u" ^ hex)
            | None -> fail "bad \\u escape");
           pos := !pos + 4
         | _ -> fail "bad escape");
        go ()
      | Some c -> Buffer.add_char buf c; advance (); go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    let rec go () =
      match peek () with
      | Some ('0' .. '9' | '-' | '+') -> advance (); go ()
      | Some ('.' | 'e' | 'E') -> is_float := true; advance (); go ()
      | _ -> ()
    in
    go ();
    let tok = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail (Printf.sprintf "bad number %s" tok)
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> fail (Printf.sprintf "bad number %s" tok)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin advance (); Obj [] end
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          fields := (k, v) :: !fields;
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); members ()
          | Some '}' -> advance ()
          | _ -> fail "expected , or } in object"
        in
        members ();
        Obj (List.rev !fields)
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin advance (); Arr [] end
      else begin
        let items = ref [] in
        let rec elements () =
          let v = parse_value () in
          items := v :: !items;
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); elements ()
          | Some ']' -> advance ()
          | _ -> fail "expected , or ] in array"
        in
        elements ();
        Arr (List.rev !items)
      end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected %c" c)
  in
  try
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then Error (Printf.sprintf "trailing data at %d" !pos)
    else Ok v
  with Parse_error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Schema validation                                                   *)
(* ------------------------------------------------------------------ *)

exception Invalid of string

(** The pinned [specpre-bench/4] shape.  A field is described by its name
    and a type tag; [`Num] accepts ints where floats are expected (JSON
    does not distinguish) but not the reverse, so counter fields stay
    integers. *)
let field path name ty fields =
  let where = String.concat "." (List.rev (name :: path)) in
  match List.assoc_opt name fields with
  | None -> raise (Invalid (Printf.sprintf "missing field %s" where))
  | Some v ->
    (match ty, v with
     | `Str, Str _ | `Int, Int _ | `Num, (Int _ | Float _)
     | `Arr, Arr _ | `Obj, Obj _ -> v
     | _ ->
       raise
         (Invalid (Printf.sprintf "field %s has the wrong type" where)))

let as_obj path what = function
  | Obj fields -> fields
  | _ ->
    raise
      (Invalid
         (Printf.sprintf "%s is not an object at %s" what
            (String.concat "." (List.rev path))))

let as_arr = function Arr items -> items | _ -> assert false

let validate_backend_name path name f =
  match field path name `Str f with
  | Str s when Spec_machine.Machine.backend_of_string s <> None -> ()
  | Str other ->
    raise
      (Invalid
         (Printf.sprintf "field %s.%s: unknown backend %S"
            (String.concat "." (List.rev path)) name other))
  | _ -> assert false

(* the per-variant engine label: one or more engine names joined by '+'
   ("tree", "vm", "tree+vm") *)
let validate_engine_label path name f =
  match field path name `Str f with
  | Str s
    when s <> ""
         && List.for_all
              (fun e -> Experiments.engine_of_string e <> None)
              (String.split_on_char '+' s) -> ()
  | Str other ->
    raise
      (Invalid
         (Printf.sprintf "field %s.%s: unknown engine %S"
            (String.concat "." (List.rev path)) name other))
  | _ -> assert false

let validate_variant path v =
  let f = as_obj path "variant entry" v in
  ignore (field path "variant" `Str f);
  validate_backend_name path "backend" f;
  validate_engine_label path "engine" f;
  ignore (field path "wall_s" `Num f);
  List.iter
    (fun name -> ignore (field path name `Int f))
    [ "cycles"; "insns"; "data_cycles"; "loads_retired"; "checks";
      "check_misses"; "br_mispredicts"; "lsq_replays" ]

let validate_workload i v =
  let path = [ Printf.sprintf "workloads[%d]" i ] in
  let f = as_obj path "workload entry" v in
  ignore (field path "name" `Str f);
  validate_backend_name path "backend" f;
  ignore (field path "wall_s" `Num f);
  ignore (field path "profile_wall_s" `Num f);
  let variants = as_arr (field path "variants" `Arr f) in
  if List.length variants <> 5 then
    raise
      (Invalid
         (Printf.sprintf "workloads[%d].variants: expected 5 entries" i));
  List.iter (validate_variant ("variants" :: path)) variants;
  let metrics =
    as_obj ("metrics" :: path) "metrics" (field path "metrics" `Obj f)
  in
  List.iter
    (fun name -> ignore (field ("metrics" :: path) name `Num metrics))
    [ "load_reduction_pct"; "speedup_pct"; "data_cycle_reduction_pct";
      "check_pct"; "misspec_pct"; "reuse_potential_pct" ];
  let passes = as_arr (field path "passes" `Arr f) in
  List.iter
    (fun p ->
      let pf = as_obj ("passes" :: path) "passes entry" p in
      ignore (field ("passes" :: path) "variant" `Str pf);
      ignore (field ("passes" :: path) "report" `Obj pf))
    passes

let validate_stress_cell i v =
  let path = [ Printf.sprintf "stress.cells[%d]" i ] in
  let f = as_obj path "stress cell" v in
  List.iter
    (fun name -> ignore (field path name `Str f))
    [ "workload"; "point"; "variant" ];
  validate_backend_name path "backend" f;
  List.iter
    (fun name -> ignore (field path name `Int f))
    [ "adv_flips"; "checks"; "check_misses"; "cycles"; "insns";
      "machine_flushes"; "machine_invalidations"; "interp_checks";
      "interp_reloads"; "interp_flushes"; "interp_invalidations" ];
  List.iter
    (fun name -> ignore (field path name `Num f))
    [ "hit_rate_pct"; "cycle_overhead_pct" ]

let validate_engine_cell i v =
  let path = [ Printf.sprintf "engines.workloads[%d]" i ] in
  let f = as_obj path "engine cell" v in
  ignore (field path "workload" `Str f);
  List.iter
    (fun name -> ignore (field path name `Int f))
    [ "steps"; "insns" ];
  List.iter
    (fun name -> ignore (field path name `Num f))
    [ "ref_wall_s"; "tree_wall_s"; "vm_wall_s"; "tree_over_vm";
      "ref_over_vm"; "vm_mstmt_s"; "vm_minsn_s" ]

let validate_mdp_cell i v =
  let path = [ Printf.sprintf "mdp.cells[%d]" i ] in
  let f = as_obj path "mdp cell" v in
  ignore (field path "workload" `Str f);
  (match field path "mdp" `Str f with
   | Str s when Experiments.mdp_of_string s <> None -> ()
   | Str other ->
     raise
       (Invalid
          (Printf.sprintf "field %s.mdp: unknown predictor %S"
             (String.concat "." (List.rev path)) other))
   | _ -> assert false);
  List.iter
    (fun name -> ignore (field path name `Int f))
    [ "cycles"; "insns"; "lsq_replays" ];
  ignore (field path "vs_none_pct" `Num f)

let validate_fdo_cell i v =
  let path = [ Printf.sprintf "fdo.workloads[%d]" i ] in
  let f = as_obj path "fdo cell" v in
  ignore (field path "workload" `Str f);
  List.iter
    (fun name -> ignore (field path name `Num f))
    [ "cold_wall_s"; "warm_wall_s"; "match_rate" ];
  List.iter
    (fun name -> ignore (field path name `Int f))
    [ "hits"; "misses"; "stores"; "evictions"; "cold_pass_runs";
      "warm_pass_runs" ];
  List.iter
    (fun name ->
      match List.assoc_opt name f with
      | Some (Bool _) -> ()
      | _ ->
        raise
          (Invalid
             (Printf.sprintf "field %s.%s must be a boolean"
                (String.concat "." (List.rev path)) name)))
    [ "warm_hit"; "identical" ]

let validate_compile_cell i v =
  let path = [ Printf.sprintf "compile.workloads[%d]" i ] in
  let f = as_obj path "compile cell" v in
  ignore (field path "workload" `Str f);
  ignore (field path "funcs" `Int f);
  List.iter
    (fun name -> ignore (field path name `Num f))
    [ "seq_wall_s"; "par_wall_s"; "speedup"; "seq_alloc_words" ];
  (match List.assoc_opt "identical" f with
   | Some (Bool _) -> ()
   | _ ->
     raise
       (Invalid
          (Printf.sprintf "field %s.identical must be a boolean"
             (String.concat "." (List.rev path)))));
  ignore (field path "report" `Obj f)

let validate_backends_entry i v =
  let path = [ Printf.sprintf "backends.workloads[%d]" i ] in
  let f = as_obj path "backends entry" v in
  ignore (field path "name" `Str f);
  ignore (field path "hw_captured_pts" `Num f);
  let side name extra =
    let sf =
      as_obj (name :: path) name (field path name `Obj f)
    in
    List.iter
      (fun fl -> ignore (field (name :: path) fl `Num sf))
      [ "speedup_pct"; "data_cycle_reduction_pct" ];
    List.iter
      (fun fl -> ignore (field (name :: path) fl `Int sf))
      extra
  in
  side "inorder" [];
  side "ooo" [ "replays_base"; "replays_spec" ]

let validate_safety_cell i v =
  let path = [ Printf.sprintf "safety.cells[%d]" i ] in
  let f = as_obj path "safety cell" v in
  List.iter
    (fun name -> ignore (field path name `Str f))
    [ "workload"; "variant" ];
  (match field path "verdict" `Str f with
   | Str ("unannotated" | "safe" | "leaks") -> ()
   | Str other ->
     raise
       (Invalid
          (Printf.sprintf "field %s.verdict: unknown verdict %S"
             (String.concat "." (List.rev path)) other))
   | _ -> assert false);
  List.iter
    (fun name -> ignore (field path name `Int f))
    [ "confirmed"; "plausible"; "checks"; "reloads"; "reload_steps";
      "deopts"; "deopt_steps" ];
  let sites = as_arr (field path "sites" `Arr f) in
  List.iter
    (fun s ->
      match s with
      | Str _ -> ()
      | _ ->
        raise
          (Invalid
             (Printf.sprintf "field %s.sites must hold strings"
                (String.concat "." (List.rev path)))))
    sites

(* The speculative-safety sweep: checker verdicts + recovery costs. *)
let validate_safety v =
  let path = [ "safety" ] in
  let f = as_obj path "safety" v in
  ignore (field path "seed" `Int f);
  ignore (field path "fault_plan" `Str f);
  let cells = as_arr (field path "cells" `Arr f) in
  List.iteri validate_safety_cell cells

(* The compile-service traffic replay ([--traffic]). *)
let validate_service v =
  let path = [ "service" ] in
  let f = as_obj path "service" v in
  List.iter
    (fun name -> ignore (field path name `Int f))
    [ "seed"; "requests"; "units"; "cold"; "warm"; "joined"; "parked";
      "reports"; "recompiles"; "errors"; "divergences" ];
  List.iter
    (fun name -> ignore (field path name `Num f))
    [ "p50_ms"; "p99_ms"; "wall_s"; "throughput_rps" ];
  (match List.assoc_opt "divergences" f with
   | Some (Int 0) -> ()
   | _ ->
     raise
       (Invalid
          "service.divergences must be 0: the replay hard-fails on any \
           daemon-vs-offline divergence"))

(* One shard's row of the sharded traffic replay. *)
let validate_shard_cell i v =
  let path = [ Printf.sprintf "shards.per_shard[%d]" i ] in
  let f = as_obj path "shard cell" v in
  List.iter
    (fun name -> ignore (field path name `Int f))
    [ "shard"; "requests"; "cold"; "warm"; "joined"; "parked"; "reports";
      "recompiles"; "cache_hit_ppm"; "drift_ppm_max" ];
  List.iter
    (fun name -> ignore (field path name `Num f))
    [ "p50_ms"; "p99_ms" ];
  match List.assoc_opt "shard" f with
  | Some (Int s) when s = i -> ()
  | _ ->
    raise
      (Invalid
         (Printf.sprintf "shards.per_shard[%d].shard must be %d" i i))

(* The sharded traffic replay ([--traffic --shards n]). *)
let validate_shards v =
  let path = [ "shards" ] in
  let f = as_obj path "shards" v in
  List.iter
    (fun name -> ignore (field path name `Int f))
    [ "seed"; "shards"; "requests"; "units"; "divergences" ];
  List.iter
    (fun name -> ignore (field path name `Num f))
    [ "p50_ms"; "p99_ms"; "wall_s"; "throughput_rps" ];
  (match List.assoc_opt "divergences" f with
   | Some (Int 0) -> ()
   | _ ->
     raise
       (Invalid
          "shards.divergences must be 0: the sharded replay hard-fails on \
           any byte-level divergence from the unsharded oracle"));
  let n =
    match List.assoc_opt "shards" f with
    | Some (Int n) when n >= 1 -> n
    | _ -> raise (Invalid "shards.shards must be a positive integer")
  in
  let rows = as_arr (field path "per_shard" `Arr f) in
  if List.length rows <> n then
    raise
      (Invalid
         (Printf.sprintf "shards.per_shard: expected %d rows, got %d" n
            (List.length rows)));
  List.iteri validate_shard_cell rows

(** Validate a parsed dump against the [specpre-bench/7] schema.  The
    [backends], [engines], [mdp], [stress], [fdo], [compile],
    [safety], [service] and [shards] sections are optional (present
    only when the corresponding sweep ran) but fully pinned when
    present.  Older schema tags — including [specpre-bench/6], whose
    [service] section lacked the [parked] counter and which had no
    [shards] section — are rejected. *)
let validate (v : json) : (unit, string) result =
  try
    let f = as_obj [] "bench dump" v in
    (match field [] "schema" `Str f with
     | Str s when s = schema_tag -> ()
     | Str other ->
       raise (Invalid (Printf.sprintf "unknown schema %S" other))
     | _ -> assert false);
    ignore (field [] "date" `Str f);
    (match field [] "inputs" `Str f with
     | Str ("train" | "ref") -> ()
     | Str other ->
       raise (Invalid (Printf.sprintf "inputs must be train|ref, got %S" other))
     | _ -> assert false);
    ignore (field [] "jobs" `Int f);
    ignore (field [] "harness_wall_s" `Num f);
    let workloads = as_arr (field [] "workloads" `Arr f) in
    List.iteri validate_workload workloads;
    (match List.assoc_opt "backends" f with
     | None -> ()
     | Some bv ->
       let bf = as_obj [ "backends" ] "backends" bv in
       let entries = as_arr (field [ "backends" ] "workloads" `Arr bf) in
       List.iteri validate_backends_entry entries);
    (match List.assoc_opt "engines" f with
     | None -> ()
     | Some ev ->
       let ef = as_obj [ "engines" ] "engines" ev in
       List.iter
         (fun name -> ignore (field [ "engines" ] name `Num ef))
         [ "geomean_tree_over_vm"; "geomean_ref_over_vm" ];
       let cells = as_arr (field [ "engines" ] "workloads" `Arr ef) in
       List.iteri validate_engine_cell cells);
    (match List.assoc_opt "mdp" f with
     | None -> ()
     | Some mv ->
       let mf = as_obj [ "mdp" ] "mdp" mv in
       let cells = as_arr (field [ "mdp" ] "cells" `Arr mf) in
       List.iteri validate_mdp_cell cells);
    (match List.assoc_opt "stress" f with
     | None -> ()
     | Some sv ->
       let sf = as_obj [ "stress" ] "stress" sv in
       ignore (field [ "stress" ] "seed" `Int sf);
       let cells = as_arr (field [ "stress" ] "cells" `Arr sf) in
       List.iteri validate_stress_cell cells);
    (match List.assoc_opt "fdo" f with
     | None -> ()
     | Some fv ->
       let ff = as_obj [ "fdo" ] "fdo" fv in
       let cells = as_arr (field [ "fdo" ] "workloads" `Arr ff) in
       List.iteri validate_fdo_cell cells);
    (match List.assoc_opt "compile" f with
     | None -> ()
     | Some cv ->
       let cf = as_obj [ "compile" ] "compile" cv in
       ignore (field [ "compile" ] "jobs" `Int cf);
       ignore (field [ "compile" ] "total_speedup" `Num cf);
       let cells = as_arr (field [ "compile" ] "workloads" `Arr cf) in
       List.iteri validate_compile_cell cells);
    (match List.assoc_opt "safety" f with
     | None -> ()
     | Some sv -> validate_safety sv);
    (match List.assoc_opt "service" f with
     | None -> ()
     | Some sv -> validate_service sv);
    (match List.assoc_opt "shards" f with
     | None -> ()
     | Some sv -> validate_shards sv);
    Ok ()
  with Invalid msg -> Error msg

(** Parse and validate in one step (the golden-file check). *)
let check (s : string) : (unit, string) result =
  match parse s with
  | Error msg -> Error ("parse error " ^ msg)
  | Ok v -> validate v
