(** Machine-readable bench dump (schema [specpre-bench/7]): emission,
    parsing, and validation.  See [bench/main.ml] for the harness side
    and [test/test_stress.ml] for the golden schema check.

    /7 adds the sharded compile service: the [service] section gains
    the required [parked] counter (cross-wakeup single-flight joins)
    and the optional [shards] section records a key-routed multi-shard
    traffic replay — topology width, aggregate latency/throughput, and
    one pinned row per shard.  /6 dumps (no [parked], no [shards])
    no longer validate. *)

(** The schema tag emitted and required by this build,
    ["specpre-bench/7"]. *)
val schema_tag : string

(** {1 Emission} *)

val variant_json :
  backend:Spec_machine.Machine.backend -> engine:string -> string ->
  Experiments.run -> string

val workload_json :
  Spec_workloads.Workloads.workload -> Experiments.bench_result -> string

val stress_cell_json :
  Experiments.stress_cell list -> Experiments.stress_cell -> string

val stress_json : seed:int -> Experiments.stress_cell list -> string

(** The [--backend both] comparison as a JSON object: one entry per
    workload pairing the in-order and OoO results for the same source —
    paper metrics per backend, OoO LSQ replays on base vs speculative
    code, and [hw_captured_pts] (in-order speedup − OoO speedup). *)
val backends_json :
  (Experiments.bench_result * Experiments.bench_result) list -> string

val engine_cell_json : Experiments.engine_cell -> string

(** The engine-throughput sweep as a JSON object: per-workload wall
    times for the tree-walking oracle, the pre-compiled tree engine and
    the threaded-code vm, plus geometric-mean speedups. *)
val engines_json : Experiments.engine_cell list -> string

val mdp_cell_json :
  Experiments.mdp_cell list -> Experiments.mdp_cell -> string

(** The OoO memory-dependence-predictor sweep as a JSON object. *)
val mdp_json : Experiments.mdp_cell list -> string

val fdo_cell_json : Experiments.fdo_result -> string

(** The warm-vs-cold compile-cache sweep as a JSON object. *)
val fdo_json : Experiments.fdo_result list -> string

val compile_cell_json : Experiments.compile_result -> string

(** The [--compile-bench] throughput sweep as a JSON object: parallel
    domain count, aggregate speedup, and one cell per workload with the
    sequential compile's pass breakdown. *)
val compile_json : Experiments.compile_result list -> string

val safety_cell_json : Experiments.safety_cell -> string

(** The speculative-safety sweep as a JSON object: the interference
    plan, plus one cell per (workload, speculative variant) with the
    checker verdict, stable site keys, and reload-vs-deopt recovery
    costs. *)
val safety_json : seed:int -> Experiments.safety_cell list -> string

(** Assemble the top-level dump from pre-rendered section blobs.
    [date] is supplied by the caller so the library stays clock-free. *)
val dump :
  date:string -> inputs:string -> jobs:int -> harness_wall_s:float ->
  ?pre_pr2_quick_wall_s:float -> ?backends:string -> ?engines:string ->
  ?mdp:string -> ?stress:string ->
  ?fdo:string -> ?compile:string -> ?safety:string -> ?service:string ->
  ?shards:string -> string list -> string

(** {1 Parsing} *)

type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

val parse : string -> (json, string) result

(** {1 Schema validation} *)

(** Validate a parsed dump against the pinned [specpre-bench/7] shape:
    every field name and type of the top level, workload entries,
    variant counters, metrics, pass reports, and (when present) the
    [backends], [engines], [mdp], [stress], [fdo], [compile],
    [safety], [service] and [shards] sections ([shards.per_shard] must
    hold exactly [shards.shards] rows).  Older schema tags are
    rejected. *)
val validate : json -> (unit, string) result

(** Parse and validate in one step. *)
val check : string -> (unit, string) result
