(** Machine-readable bench dump (schema [specpre-bench/5]): emission,
    parsing, and validation.  See [bench/main.ml] for the harness side
    and [test/test_stress.ml] for the golden schema check.

    /5 adds the optional [service] section — the compile-service
    traffic replay ([--traffic]): request mix, cold/warm/joined split,
    online-FDO reports and drift recompiles, p50/p99 latency and
    throughput.  Its blob is emitted by [Spec_service.Traffic.to_json]
    (that library sits above this one); the validator here still pins
    the section's shape.  /4 dumps no longer validate. *)

(** The schema tag emitted and required by this build,
    ["specpre-bench/5"]. *)
val schema_tag : string

(** {1 Emission} *)

val variant_json :
  backend:Spec_machine.Machine.backend -> engine:string -> string ->
  Experiments.run -> string

val workload_json :
  Spec_workloads.Workloads.workload -> Experiments.bench_result -> string

val stress_cell_json :
  Experiments.stress_cell list -> Experiments.stress_cell -> string

val stress_json : seed:int -> Experiments.stress_cell list -> string

(** The [--backend both] comparison as a JSON object: one entry per
    workload pairing the in-order and OoO results for the same source —
    paper metrics per backend, OoO LSQ replays on base vs speculative
    code, and [hw_captured_pts] (in-order speedup − OoO speedup). *)
val backends_json :
  (Experiments.bench_result * Experiments.bench_result) list -> string

val engine_cell_json : Experiments.engine_cell -> string

(** The engine-throughput sweep as a JSON object: per-workload wall
    times for the tree-walking oracle, the pre-compiled tree engine and
    the threaded-code vm, plus geometric-mean speedups. *)
val engines_json : Experiments.engine_cell list -> string

val mdp_cell_json :
  Experiments.mdp_cell list -> Experiments.mdp_cell -> string

(** The OoO memory-dependence-predictor sweep as a JSON object. *)
val mdp_json : Experiments.mdp_cell list -> string

val fdo_cell_json : Experiments.fdo_result -> string

(** The warm-vs-cold compile-cache sweep as a JSON object. *)
val fdo_json : Experiments.fdo_result list -> string

val compile_cell_json : Experiments.compile_result -> string

(** The [--compile-bench] throughput sweep as a JSON object: parallel
    domain count, aggregate speedup, and one cell per workload with the
    sequential compile's pass breakdown. *)
val compile_json : Experiments.compile_result list -> string

(** Assemble the top-level dump from pre-rendered section blobs.
    [date] is supplied by the caller so the library stays clock-free. *)
val dump :
  date:string -> inputs:string -> jobs:int -> harness_wall_s:float ->
  ?pre_pr2_quick_wall_s:float -> ?backends:string -> ?engines:string ->
  ?mdp:string -> ?stress:string ->
  ?fdo:string -> ?compile:string -> ?service:string -> string list -> string

(** {1 Parsing} *)

type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

val parse : string -> (json, string) result

(** {1 Schema validation} *)

(** Validate a parsed dump against the pinned [specpre-bench/5] shape:
    every field name and type of the top level, workload entries,
    variant counters, metrics, pass reports, and (when present) the
    [backends], [engines], [mdp], [stress], [fdo], [compile] and
    [service] sections.  Older schema tags are rejected. *)
val validate : json -> (unit, string) result

(** Parse and validate in one step. *)
val check : string -> (unit, string) result
