(** Experiment harness: regenerates every table and figure of the paper's
    evaluation (§5) on the workload kernels.

    Methodology, as in the paper: profiles (edge + alias) are collected on
    each kernel's *train* input; every pipeline variant is compiled with
    that profile and measured on the *ref* input on the ITL machine
    simulator.  All variants must produce the reference output — the
    harness asserts this, so every experiment run doubles as an
    end-to-end correctness check of speculation and recovery. *)

open Spec_ir
open Spec_prof
open Spec_machine
open Spec_workloads

(** Interpreter-side execution engine: the pre-compiled tree walker
    ({!Spec_prof.Interp}) or the threaded-code bytecode vm
    ({!Spec_prof.Vm}).  Every harness measurement validates each variant
    on the selected engine(s) against the machine's program output, so
    an engine bug fails the run rather than skewing a table. *)
type engine = Etree | Evm

let engine_name = function Etree -> "tree" | Evm -> "vm"

let engine_of_string = function
  | "tree" -> Some Etree
  | "vm" -> Some Evm
  | _ -> None

let all_engines = [ Etree; Evm ]

(** Label for a selection of engines as it appears in the bench JSON's
    per-variant [engine] field: "tree", "vm", or "tree+vm". *)
let engines_label es = String.concat "+" (List.map engine_name es)

(** Execute an optimized program on [engine].  The vm leg forces the
    pipeline result's cached bytecode, so a warm compile whose artifact
    carried a vm section runs without re-lowering. *)
let engine_exec engine (r : Pipeline.result) : Interp.result =
  match engine with
  | Etree -> Interp.run r.Pipeline.prog
  | Evm -> Vm.run_program (Lazy.force r.Pipeline.vm)

type run = {
  r_machine : Machine.result;
  r_stats : Spec_ssapre.Ssapre.stats;
  r_wall_s : float;  (** compile + simulate wall time for this variant *)
}

type bench_result = {
  wname : string;
  backend : Machine.backend;  (** core model the variants ran on *)
  engines : engine list;  (** engines that validated every variant *)
  fp : bool;
  noopt : run;
  base : run;
  prof_spec : run;
  heur_spec : run;
  aggressive : run;
  reuse_frac : float;  (** simulation-based potential load reuse (Fig 12a) *)
  prof_wall_s : float;   (** train-input profiling wall time *)
  total_wall_s : float;  (** whole-workload wall time (sum over tasks when
                             variants run in parallel) *)
  train_profile : Profile.t;
      (** the training run's profile — collected exactly once per
          workload; downstream consumers (JSON pass reports, FDO bench)
          reuse it instead of re-running the interpreter *)
}

let machine_config = ref Machine.default_config

(** Compile the ref input under [variant] and run it on the machine
    backend [backend] (default: the in-order EPIC core).  Every variant
    gets the local list scheduler, like the paper's O3 baseline (ORC
    schedules everything).  The same optimized program is then executed
    on every selected interpreter engine, which must reproduce the
    machine's output byte-for-byte — an engine/machine divergence fails
    the measurement. *)
let run_variant ?(quick = false) ?(backend = Machine.Inorder)
    ?(engines = [ Etree ]) (w : Workloads.workload) profile variant : run =
  let t0 = Unix.gettimeofday () in
  let params = if quick then w.Workloads.train else w.Workloads.ref_ in
  let prog = Lower.compile (w.Workloads.source params) in
  let r =
    Pipeline.optimize ~edge_profile:(Some profile) prog variant
  in
  let mp = Spec_codegen.Codegen.lower r.Pipeline.prog in
  ignore (Spec_codegen.Schedule.run mp : Spec_codegen.Schedule.stats);
  let m = Machine.run_on backend ~config:!machine_config mp in
  List.iter
    (fun e ->
      let i = engine_exec e r in
      if i.Interp.output <> m.Machine.output then
        failwith
          (Printf.sprintf
             "experiment %s/%s: %s engine output diverged from the machine"
             w.Workloads.name
             (Pipeline.variant_name variant)
             (engine_name e)))
    engines;
  { r_machine = m; r_stats = r.Pipeline.stats;
    r_wall_s = Unix.gettimeofday () -. t0 }

(* Fig 12a: load-reuse potential, measured on the base-optimized program *)
let reuse_fraction ?(quick = false) (w : Workloads.workload) profile : float =
  let params = if quick then w.Workloads.train else w.Workloads.ref_ in
  let reuse_prog = Lower.compile (w.Workloads.source params) in
  let rr = Pipeline.optimize ~edge_profile:(Some profile) reuse_prog Pipeline.Base in
  let lr, _ = Load_reuse.analyse rr.Pipeline.prog in
  Load_reuse.reuse_fraction lr

let run_workload ?(quick = false) ?(backend = Machine.Inorder)
    ?(engines = [ Etree ]) (w : Workloads.workload) : bench_result =
  let t0 = Unix.gettimeofday () in
  let train_prog = Lower.compile (Workloads.train_source w) in
  let profile, _ = Profiler.profile train_prog in
  let prof_wall_s = Unix.gettimeofday () -. t0 in
  (* The six measurement tasks are independent; fan them out to the
     domain pool.  [Parpool.parmap] joins in submission order, so the
     result record — and hence all table output — is identical to the
     sequential run. *)
  let tasks =
    [ (fun () -> `Run (run_variant ~quick ~backend ~engines w profile Pipeline.Noopt));
      (fun () -> `Run (run_variant ~quick ~backend ~engines w profile Pipeline.Base));
      (fun () -> `Run (run_variant ~quick ~backend ~engines w profile (Pipeline.Spec_profile profile)));
      (fun () -> `Run (run_variant ~quick ~backend ~engines w profile Pipeline.Spec_heuristic));
      (fun () -> `Run (run_variant ~quick ~backend ~engines w profile Pipeline.Aggressive));
      (fun () -> `Reuse (reuse_fraction ~quick w profile)) ]
  in
  let noopt, base, prof_spec, heur_spec, aggressive, reuse_frac =
    match Parpool.parmap (fun f -> f ()) tasks with
    | [ `Run noopt; `Run base; `Run prof_spec; `Run heur_spec;
        `Run aggressive; `Reuse reuse_frac ] ->
      noopt, base, prof_spec, heur_spec, aggressive, reuse_frac
    | _ -> assert false
  in
  (* correctness gate: every variant reproduces the unoptimized output *)
  let expect = noopt.r_machine.Machine.output in
  List.iter
    (fun (name, r) ->
      if r.r_machine.Machine.output <> expect then
        failwith
          (Printf.sprintf "experiment %s: variant %s diverged" w.Workloads.name
             name))
    [ "base", base; "profile", prof_spec; "heuristic", heur_spec ];
  (* the aggressive upper bound is only correct when no aliasing actually
     occurs; kernels with real aliasing legitimately diverge there *)
  let total_wall_s =
    prof_wall_s
    +. List.fold_left (fun acc r -> acc +. r.r_wall_s) 0.
         [ noopt; base; prof_spec; heur_spec; aggressive ]
  in
  { wname = w.Workloads.name; backend; engines; fp = w.Workloads.fp; noopt;
    base; prof_spec; heur_spec; aggressive; reuse_frac; prof_wall_s;
    total_wall_s; train_profile = profile }

(** Run a sweep of workloads on the domain pool; results are in input
    order, so output is independent of [--jobs].  The per-workload
    variant fan-out nests inside this one — [Parpool.await] helps with
    queued tasks, so the nesting cannot deadlock. *)
let run_workloads ?(quick = false) ?(backend = Machine.Inorder)
    ?(engines = [ Etree ]) (ws : Workloads.workload list) :
    bench_result list =
  Parpool.parmap (fun w -> run_workload ~quick ~backend ~engines w) ws

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let pct x = 100. *. x

let load_reduction ~(base : run) ~(spec : run) =
  let lb = Machine.loads_retired base.r_machine.Machine.perf in
  let ls = Machine.loads_retired spec.r_machine.Machine.perf in
  if lb = 0 then 0. else pct (1. -. float_of_int ls /. float_of_int lb)

let speedup ~(base : run) ~(spec : run) =
  let cb = base.r_machine.Machine.perf.Machine.cycles in
  let cs = spec.r_machine.Machine.perf.Machine.cycles in
  if cs = 0 then 0. else pct (float_of_int cb /. float_of_int cs -. 1.)

let data_cycle_reduction ~(base : run) ~(spec : run) =
  let db = base.r_machine.Machine.perf.Machine.data_cycles in
  let ds = spec.r_machine.Machine.perf.Machine.data_cycles in
  if db = 0 then 0. else pct (1. -. float_of_int ds /. float_of_int db)

let check_pct (r : run) =
  let p = r.r_machine.Machine.perf in
  let total = Machine.loads_retired_with_checks p in
  if total = 0 then 0. else pct (float_of_int p.Machine.checks /. float_of_int total)

let misspec_ratio (r : run) =
  let p = r.r_machine.Machine.perf in
  if p.Machine.checks = 0 then 0.
  else pct (float_of_int p.Machine.check_misses /. float_of_int p.Machine.checks)

(* ------------------------------------------------------------------ *)
(* Tables                                                              *)
(* ------------------------------------------------------------------ *)

let fig10_header =
  "benchmark | load reduction % | speedup % | data-access-cycle reduction %"

let fig10_row (b : bench_result) =
  Printf.sprintf "%-9s | %16.1f | %9.1f | %29.1f" b.wname
    (load_reduction ~base:b.base ~spec:b.prof_spec)
    (speedup ~base:b.base ~spec:b.prof_spec)
    (data_cycle_reduction ~base:b.base ~spec:b.prof_spec)

let fig11_header =
  "benchmark | check loads / loads retired % | mis-speculation ratio %"

let fig11_row (b : bench_result) =
  Printf.sprintf "%-9s | %29.2f | %23.2f" b.wname (check_pct b.prof_spec)
    (misspec_ratio b.prof_spec)

let fig12_header =
  "benchmark | potential (load-reuse sim) % | potential (aggressive promo) % | achieved %"

let fig12_row (b : bench_result) =
  Printf.sprintf "%-9s | %28.1f | %30.1f | %10.1f" b.wname
    (pct b.reuse_frac)
    (load_reduction ~base:b.base ~spec:b.aggressive)
    (load_reduction ~base:b.base ~spec:b.prof_spec)

let heuristics_header =
  "benchmark | profile: loads% / speedup% | heuristic: loads% / speedup%"

let heuristics_row (b : bench_result) =
  Printf.sprintf "%-9s | %10.1f / %8.1f | %12.1f / %8.1f" b.wname
    (load_reduction ~base:b.base ~spec:b.prof_spec)
    (speedup ~base:b.base ~spec:b.prof_spec)
    (load_reduction ~base:b.base ~spec:b.heur_spec)
    (speedup ~base:b.base ~spec:b.heur_spec)

let rse_header =
  "benchmark | base max stacked regs | spec max stacked regs | spec RSE stall cycles"

let rse_row (b : bench_result) =
  Printf.sprintf "%-9s | %21d | %21d | %21d" b.wname
    b.base.r_machine.Machine.perf.Machine.max_stacked_regs
    b.prof_spec.r_machine.Machine.perf.Machine.max_stacked_regs
    b.prof_spec.r_machine.Machine.perf.Machine.rse_stall_cycles

(* ------------------------------------------------------------------ *)
(* Backend comparison (in-order EPIC vs out-of-order)                  *)
(* ------------------------------------------------------------------ *)

(** Hard agreement gate: two backends measuring the same workload must
    report byte-identical program output (and instruction counts — the
    dynamic trace is shared) for every variant.  Raises on divergence;
    the bench smoke runs this under [--backend both]. *)
let check_backend_agreement (a : bench_result) (b : bench_result) =
  List.iter
    (fun (vname, sel) ->
      let ra = (sel a).r_machine and rb = (sel b).r_machine in
      if ra.Machine.output <> rb.Machine.output then
        failwith
          (Printf.sprintf "backend disagreement on %s/%s: %s vs %s output"
             a.wname vname
             (Machine.backend_name a.backend)
             (Machine.backend_name b.backend));
      if ra.Machine.perf.Machine.insns <> rb.Machine.perf.Machine.insns then
        failwith
          (Printf.sprintf
             "backend disagreement on %s/%s: instruction counts differ"
             a.wname vname))
    [ ("noopt", fun r -> r.noopt); ("base", fun r -> r.base);
      ("profile", fun r -> r.prof_spec); ("heuristic", fun r -> r.heur_spec);
      ("aggressive", fun r -> r.aggressive) ]

let backends_header =
  "benchmark | inorder: speedup% / dcyc-red% | ooo: speedup% / dcyc-red% | ooo replays base>spec | hw captured pts"

(** Side-by-side paper metrics: the speculative-vs-base cycle delta on
    each core.  [hw captured pts] is the in-order win minus the OoO win
    in percentage points — the part of the compiler's speculation gain
    that an LSQ + dependence predictor already gets for free; what
    remains is what ld.a/ld.c still buys on modern hardware. *)
let backends_row ~(inorder : bench_result) ~(ooo : bench_result) =
  let replays (r : run) = r.r_machine.Machine.perf.Machine.lsq_replays in
  let win_in = speedup ~base:inorder.base ~spec:inorder.prof_spec in
  let win_ooo = speedup ~base:ooo.base ~spec:ooo.prof_spec in
  Printf.sprintf "%-9s | %13.1f / %13.1f | %9.1f / %13.1f | %10d>%-10d | %15.1f"
    inorder.wname win_in
    (data_cycle_reduction ~base:inorder.base ~spec:inorder.prof_spec)
    win_ooo
    (data_cycle_reduction ~base:ooo.base ~spec:ooo.prof_spec)
    (replays ooo.base) (replays ooo.prof_spec)
    (win_in -. win_ooo)

(** §5.1 case study on the equake smvp kernel. *)
type smvp_study = {
  checks_pct : float;        (** % of load-class operations that are checks *)
  spec_speedup : float;      (** speculative vs base *)
  tuned_speedup : float;     (** aggressive ("hand-tuned") vs base *)
}

let smvp_case_study (b : bench_result) : smvp_study =
  { checks_pct = check_pct b.prof_spec;
    spec_speedup = speedup ~base:b.base ~spec:b.prof_spec;
    tuned_speedup = speedup ~base:b.base ~spec:b.aggressive }

(* ------------------------------------------------------------------ *)
(* Engine throughput (tree-walking oracle vs pre-compiled tree vs vm)  *)
(* ------------------------------------------------------------------ *)

(** One workload's engine-throughput cell: the same (unoptimized)
    program executed by the tree-walking oracle ({!Interp_ref}), the
    pre-compiled tree engine ({!Interp}) and the threaded-code vm
    ({!Vm}), with best-of-[reps] wall times.  [e_steps] is the number of
    source statements every engine retires; [e_insns] is the resolved
    machine's instruction count on the same program — a fixed work
    measure, so Mstmt/s and Minsn/s rates compare engines on identical
    work. *)
type engine_cell = {
  e_wname : string;
  e_steps : int;
  e_insns : int;
  e_ref_s : float;   (** tree-walking oracle, best-of wall *)
  e_tree_s : float;  (** pre-compiled tree engine, best-of wall *)
  e_vm_s : float;    (** threaded-code vm, best-of wall *)
}

let engine_tree_over_vm (c : engine_cell) =
  if c.e_vm_s > 0. then c.e_tree_s /. c.e_vm_s else 0.

let engine_ref_over_vm (c : engine_cell) =
  if c.e_vm_s > 0. then c.e_ref_s /. c.e_vm_s else 0.

(** Throughput of one engine leg in million units per second. *)
let engine_mrate units wall_s =
  if wall_s > 0. then float_of_int units /. wall_s /. 1e6 else 0.

let best_of_wall reps f =
  let rec go i best =
    if i >= reps then best
    else begin
      let t0 = Unix.gettimeofday () in
      ignore (f ());
      let dt = Unix.gettimeofday () -. t0 in
      go (i + 1) (if dt < best then dt else best)
    end
  in
  go 0 infinity

(** Measure one workload's engine throughput.  The first (untimed) run
    of each engine doubles as the agreement gate: output, return value
    and retired-statement count must match the tree-walking oracle
    exactly.  Timed runs are best-of-[reps] and must execute
    sequentially — the caller must not put this on the domain pool. *)
let engine_bench_workload ?(quick = false) ?(reps = 5)
    (w : Workloads.workload) : engine_cell =
  let params = if quick then w.Workloads.train else w.Workloads.ref_ in
  let src = w.Workloads.source params in
  let iprog = Lower.compile src in
  let compiled = Interp.compile iprog in
  let vprog = Vmcode.compile iprog in
  let oracle = Interp_ref.run iprog in
  let tree = Interp.run_compiled compiled in
  let vm = Vm.run_program vprog in
  let agree engine (i : Interp.result) =
    if i.Interp.output <> oracle.Interp_ref.output
       || i.Interp.counters.Interp.steps
          <> oracle.Interp_ref.counters.Interp_ref.steps
    then
      failwith
        (Printf.sprintf
           "engine bench %s: %s engine diverged from the tree-walking oracle"
           w.Workloads.name engine)
  in
  agree "tree" tree;
  agree "vm" vm;
  let insns =
    let p = Lower.compile src in
    let r = Pipeline.optimize p Pipeline.Noopt in
    let mp = Spec_codegen.Codegen.lower r.Pipeline.prog in
    ignore (Spec_codegen.Schedule.run mp : Spec_codegen.Schedule.stats);
    (Machine.run ~config:!machine_config mp).Machine.perf.Machine.insns
  in
  { e_wname = w.Workloads.name;
    e_steps = tree.Interp.counters.Interp.steps;
    e_insns = insns;
    e_ref_s = best_of_wall reps (fun () -> Interp_ref.run iprog);
    e_tree_s = best_of_wall reps (fun () -> Interp.run_compiled compiled);
    e_vm_s = best_of_wall reps (fun () -> Vm.run_program vprog) }

(** Engine-throughput sweep.  Strictly sequential: the cells carry wall
    times, so the pool would only add scheduler noise. *)
let run_engine_bench ?(quick = false) ?reps (ws : Workloads.workload list) :
    engine_cell list =
  List.map (fun w -> engine_bench_workload ~quick ?reps w) ws

let engine_header =
  "workload  |   ref ms |  tree ms |    vm ms | tree/vm | ref/vm | vm Mstmt/s | vm Minsn/s"

let engine_row (c : engine_cell) =
  Printf.sprintf "%-9s | %8.3f | %8.3f | %8.3f | %6.2fx | %5.1fx | %10.1f | %10.1f"
    c.e_wname (1000. *. c.e_ref_s) (1000. *. c.e_tree_s) (1000. *. c.e_vm_s)
    (engine_tree_over_vm c) (engine_ref_over_vm c)
    (engine_mrate c.e_steps c.e_vm_s)
    (engine_mrate c.e_insns c.e_vm_s)

(** Geometric-mean speedups over a sweep — the headline engine numbers. *)
let engine_geomean sel (cells : engine_cell list) =
  match cells with
  | [] -> 0.
  | _ ->
    exp
      (List.fold_left (fun acc c -> acc +. log (sel c)) 0. cells
       /. float_of_int (List.length cells))

(* ------------------------------------------------------------------ *)
(* Memory-dependence-predictor sweep (out-of-order core)               *)
(* ------------------------------------------------------------------ *)

(** One (workload, predictor) cell of the [--table mdp] sweep: the
    profile-speculative build on the OoO core under one
    memory-dependence prediction policy. *)
type mdp_cell = {
  md_wname : string;
  md_policy : Machine.mdp;
  md_cycles : int;
  md_insns : int;
  md_replays : int;  (** LSQ order-violation replays *)
}

let mdp_name = function
  | Machine.Mdp_store_set -> "store-set"
  | Machine.Mdp_last_violator -> "last-violator"
  | Machine.Mdp_none -> "none"

let mdp_of_string = function
  | "store-set" -> Some Machine.Mdp_store_set
  | "last-violator" -> Some Machine.Mdp_last_violator
  | "none" -> Some Machine.Mdp_none
  | _ -> None

let all_mdps =
  [ Machine.Mdp_store_set; Machine.Mdp_last_violator; Machine.Mdp_none ]

(** Sweep one workload's *base* (non-speculative) build across the
    memory-dependence predictors.  Base is the interesting build: its
    loads still sit below stores in program order, so the OoO core's
    eager issue is what discovers the conflicts (on the speculative
    builds the compiler has already replaced those loads with checks and
    the LSQ sees nothing — the compile-time/hardware overlap §3.6
    documents).  The program is compiled and resolved once; every policy
    re-runs it on the OoO core and must reproduce the same output and
    instruction count (prediction is a timing-only concern — a
    difference is a simulator bug and fails the sweep). *)
let mdp_cells_of ~name (prog : Sir.prog) : mdp_cell list =
  let mp = Spec_codegen.Codegen.lower prog in
  ignore (Spec_codegen.Schedule.run mp : Spec_codegen.Schedule.stats);
  let rp = Machine.resolve mp in
  let runs =
    List.map
      (fun policy ->
        let config = { !machine_config with Machine.mdp = policy } in
        (policy, Machine.run_resolved_on Machine.Ooo ~config rp))
      all_mdps
  in
  (match runs with
   | (_, first) :: rest ->
     List.iter
       (fun (policy, m) ->
         if m.Machine.output <> first.Machine.output then
           failwith
             (Printf.sprintf "mdp sweep %s: output differs under %s" name
                (mdp_name policy));
         if m.Machine.perf.Machine.insns <> first.Machine.perf.Machine.insns
         then
           failwith
             (Printf.sprintf
                "mdp sweep %s: instruction count differs under %s" name
                (mdp_name policy)))
       rest
   | [] -> ());
  List.map
    (fun (policy, m) ->
      { md_wname = name;
        md_policy = policy;
        md_cycles = m.Machine.perf.Machine.cycles;
        md_insns = m.Machine.perf.Machine.insns;
        md_replays = m.Machine.perf.Machine.lsq_replays })
    runs

let mdp_workload ?(quick = false) (w : Workloads.workload) : mdp_cell list =
  let train_prog = Lower.compile (Workloads.train_source w) in
  let profile, _ = Profiler.profile train_prog in
  let params = if quick then w.Workloads.train else w.Workloads.ref_ in
  let prog = Lower.compile (w.Workloads.source params) in
  let r = Pipeline.optimize ~edge_profile:(Some profile) prog Pipeline.Base in
  mdp_cells_of ~name:w.Workloads.name r.Pipeline.prog

(* The workload kernels never replay — their store addresses resolve
   inside the OoO window before any conflicting load issues — so an
   adversarial rider differentiates the predictors: the store address
   takes a division chain to resolve, the next load issues eagerly
   underneath it, and every fifth iteration they collide. *)
let mdp_chain_src n =
  Printf.sprintf
    "int A[64];\n\
     int acc;\n\
     int main() {\n\
    \  int i; int j;\n\
    \  i = 0; acc = 0;\n\
    \  while (i < %d) {\n\
    \    j = (i / 5) * 5 - i + 4;\n\
    \    A[j] = i;\n\
    \    acc = acc + A[4];\n\
    \    i = i + 1;\n\
    \  }\n\
    \  print_int(acc);\n\
    \  return 0;\n\
     }\n"
    n

let mdp_chain ?(quick = false) () : mdp_cell list =
  let prog = Lower.compile (mdp_chain_src (if quick then 300 else 2000)) in
  let r = Pipeline.optimize prog Pipeline.Base in
  mdp_cells_of ~name:"chain" r.Pipeline.prog

(** Sweep every workload × predictor on the domain pool, plus the
    adversarial chain kernel; cells are grouped by unit in input order
    (deterministic in [--jobs]). *)
let run_mdp_sweep ?(quick = false) (ws : Workloads.workload list) :
    mdp_cell list =
  List.concat (Parpool.parmap (fun w -> mdp_workload ~quick w) ws)
  @ mdp_chain ~quick ()

(** Cycle cost of a cell versus the same workload under [Mdp_none], in
    percent (negative = the predictor is faster than always-speculate). *)
let mdp_overhead (cells : mdp_cell list) (c : mdp_cell) =
  match
    List.find_opt
      (fun b -> b.md_wname = c.md_wname && b.md_policy = Machine.Mdp_none)
      cells
  with
  | Some b when b.md_cycles > 0 ->
    pct (float_of_int c.md_cycles /. float_of_int b.md_cycles -. 1.)
  | _ -> 0.

let mdp_header =
  "workload  | predictor     |  cycles | lsq replays | vs none %"

let mdp_row (cells : mdp_cell list) (c : mdp_cell) =
  Printf.sprintf "%-9s | %-13s | %7d | %11d | %+8.1f"
    c.md_wname (mdp_name c.md_policy) c.md_cycles c.md_replays
    (mdp_overhead cells c)

(* ------------------------------------------------------------------ *)
(* Ablations (§6 of DESIGN.md)                                          *)
(* ------------------------------------------------------------------ *)

(** Control-speculation ablation: speculative PRE with and without
    insertion at non-downsafe Phis. *)
let ablate_control_spec ?(quick = false) (w : Workloads.workload) =
  let train_prog = Lower.compile (Workloads.train_source w) in
  let profile, _ = Profiler.profile train_prog in
  let params = if quick then w.Workloads.train else w.Workloads.ref_ in
  let run ~control_spec =
    let prog = Lower.compile (w.Workloads.source params) in
    let config =
      { (Spec_ssapre.Ssapre.default_config Spec_spec.Flags.Nonspec) with
        Spec_ssapre.Ssapre.control_spec }
    in
    let r =
      Pipeline.optimize ~config:(Some config) ~edge_profile:(Some profile)
        prog (Pipeline.Spec_profile profile)
    in
    Machine.run ~config:!machine_config
      (Spec_codegen.Codegen.lower r.Pipeline.prog)
  in
  let with_cs = run ~control_spec:true in
  let without_cs = run ~control_spec:false in
  (w.Workloads.name,
   Machine.loads_retired with_cs.Machine.perf,
   Machine.loads_retired without_cs.Machine.perf,
   with_cs.Machine.perf.Machine.cycles,
   without_cs.Machine.perf.Machine.cycles)

(** Degree-of-likeliness threshold ablation (§3.1's "the compiler can use
    the profiling information ... to specify the degree of likeliness").

    A synthetic kernel whose store truly aliases the hot load in a small
    fraction of executions, on the training input as well.  With the
    default threshold (0 = "any observed alias is likely") the profile
    blocks speculation; raising the threshold trades a small
    mis-speculation rate for the load reduction.  Returns
    (threshold, loads, checks, misses, cycles) rows. *)
let ablate_threshold ?(alias_permille = 30) thresholds =
  let src =
    Printf.sprintf
      "int g; int decoy;        int main(){ int s; s = 0; g = 1; int* w; w = &decoy;        for (int i = 0; i < 4000; i++) {          if (rnd(1000) < %d) w = &g; else w = &decoy;          s = s + g; *w = i; s = s + g; }        print_int(s); print_int(g); return 0; }"
      alias_permille
  in
  let profile = Pipeline.profile_of_source src in
  List.map
    (fun threshold ->
      let prog = Lower.compile src in
      let config =
        { (Spec_ssapre.Ssapre.default_config Spec_spec.Flags.Nonspec) with
          Spec_ssapre.Ssapre.alias_threshold = threshold }
      in
      let r =
        Pipeline.optimize ~config:(Some config) ~edge_profile:(Some profile)
          prog (Pipeline.Spec_profile profile)
      in
      let m =
        Machine.run ~config:!machine_config
          (Spec_codegen.Codegen.lower r.Pipeline.prog)
      in
      let p = m.Machine.perf in
      (threshold, Machine.loads_retired p, p.Machine.checks,
       p.Machine.check_misses, p.Machine.cycles))
    thresholds

(** Local-scheduling ablation: cycles with and without the ITL list
    scheduler, on the profile-speculative build. *)
let ablate_schedule ?(quick = false) (w : Workloads.workload) =
  let train_prog = Lower.compile (Workloads.train_source w) in
  let profile, _ = Profiler.profile train_prog in
  let params = if quick then w.Workloads.train else w.Workloads.ref_ in
  let build () =
    let prog = Lower.compile (w.Workloads.source params) in
    let r =
      Pipeline.optimize ~edge_profile:(Some profile) prog
        (Pipeline.Spec_profile profile)
    in
    Spec_codegen.Codegen.lower r.Pipeline.prog
  in
  let plain = Machine.run ~config:!machine_config (build ()) in
  let mp = build () in
  ignore (Spec_codegen.Schedule.run mp : Spec_codegen.Schedule.stats);
  let sched = Machine.run ~config:!machine_config mp in
  if plain.Machine.output <> sched.Machine.output then
    failwith ("scheduling changed behaviour on " ^ w.Workloads.name);
  (w.Workloads.name, plain.Machine.perf.Machine.cycles,
   sched.Machine.perf.Machine.cycles)

(* ------------------------------------------------------------------ *)
(* Misspeculation stress sweep (DESIGN.md §3.3)                        *)
(* ------------------------------------------------------------------ *)

(** One point of the misspeculation grid: a label and a fault plan. *)
type stress_point = {
  sp_label : string;
  sp_plan : Spec_stress.Faults.plan;
}

(** The default grid: no faults (must reproduce the baseline numbers
    bit-for-bit), per-cycle chaos invalidation at 1%/10%/50%, a full
    flush every 64 cycles (context-switch pressure), a 4-entry ALAT
    (capacity pressure, machine only), and an adversarially inverted
    profile — alone and combined with 10% chaos. *)
let stress_grid ~seed () =
  let p = Spec_stress.Faults.null seed in
  [ { sp_label = "0%"; sp_plan = p };
    { sp_label = "inv-1%";
      sp_plan = { p with Spec_stress.Faults.inv_ppm = 10_000 } };
    { sp_label = "inv-10%";
      sp_plan = { p with Spec_stress.Faults.inv_ppm = 100_000 } };
    { sp_label = "inv-50%";
      sp_plan = { p with Spec_stress.Faults.inv_ppm = 500_000 } };
    { sp_label = "flush-64";
      sp_plan = { p with Spec_stress.Faults.flush_period = 64 } };
    { sp_label = "alat-4";
      sp_plan = { p with Spec_stress.Faults.alat_entries = Some 4 } };
    { sp_label = "adv-invert";
      sp_plan = { p with Spec_stress.Faults.adversary =
                           Spec_stress.Faults.Adv_invert } };
    { sp_label = "adv+inv-10%";
      sp_plan = { p with Spec_stress.Faults.adversary =
                           Spec_stress.Faults.Adv_invert;
                         Spec_stress.Faults.inv_ppm = 100_000 } } ]

(** One (workload, point, variant) measurement: both engines ran to
    completion with outputs bit-identical to the unoptimized oracle. *)
type stress_cell = {
  sc_workload : string;
  sc_backend : string;  (** machine backend name ("inorder"/"ooo") *)
  sc_point : string;
  sc_variant : string;
  sc_adv_flips : int;   (** speculation flags the adversary corrupted *)
  sc_checks : int;      (** machine ld.c executed *)
  sc_misses : int;      (** machine ld.c whose entry was gone: reloads *)
  sc_cycles : int;
  sc_insns : int;
  sc_m_flushes : int;   (** injected full flushes, machine ALAT *)
  sc_m_invs : int;      (** injected chaos invalidations, machine ALAT *)
  sc_i_checks : int;    (** interpreter check statements executed *)
  sc_i_reloads : int;   (** interpreter check reloads *)
  sc_i_flushes : int;   (** injected full flushes, semantic ALAT *)
  sc_i_invs : int;      (** injected chaos invalidations, semantic ALAT *)
}

(** Check-load hit rate of a cell on the machine, in percent. *)
let stress_hit_rate (c : stress_cell) =
  if c.sc_checks = 0 then 100.
  else pct (1. -. float_of_int c.sc_misses /. float_of_int c.sc_checks)

exception Stress_divergence of string

let stress_diverged ~workload ~variant ~point ~engine =
  raise
    (Stress_divergence
       (Printf.sprintf
          "stress %s/%s@%s: %s output diverged from the unoptimized oracle"
          workload variant point engine))

(* Run every grid point of one (workload, variant) pair.  The program is
   compiled once per distinct adversary (runtime-only fault points share
   the honest compile) and re-run with a fresh, scope-derived injector
   per point and engine, so results do not depend on point order or on
   which pool worker executes the task. *)
let stress_variant ~quick ~seed ~oracle ~backend (w : Workloads.workload)
    profile points (vname, variant) : stress_cell list =
  let params = if quick then w.Workloads.train else w.Workloads.ref_ in
  let compile_for adv =
    let prog = Lower.compile (w.Workloads.source params) in
    let perturb =
      Spec_spec.Flags.perturbation ~seed ~scope:[ w.Workloads.name; vname ]
        adv
    in
    let r = Pipeline.optimize ~edge_profile:(Some profile) ?perturb prog variant in
    let flips =
      match perturb with Some p -> Spec_spec.Flags.flipped p | None -> 0
    in
    let mp = Spec_codegen.Codegen.lower r.Pipeline.prog in
    ignore (Spec_codegen.Schedule.run mp : Spec_codegen.Schedule.stats);
    (Machine.resolve mp, Interp.compile r.Pipeline.prog, flips)
  in
  let adversaries =
    List.sort_uniq compare
      (List.map (fun pt -> pt.sp_plan.Spec_stress.Faults.adversary) points)
  in
  let compiled = List.map (fun adv -> (adv, compile_for adv)) adversaries in
  (* the Aggressive variant has no checks, so it cannot recover from a
     wrong profile: adversarial points are skipped for it, and under
     runtime interference it is held to its own fault-free output (it
     legitimately diverges from the oracle on kernels with real
     aliasing, as in the main harness's correctness gate) *)
  let aggressive = variant = Pipeline.Aggressive in
  List.concat_map
    (fun pt ->
      let plan = pt.sp_plan in
      if aggressive
         && plan.Spec_stress.Faults.adversary <> Spec_stress.Faults.Adv_none
      then []
      else begin
        let rp, cprog, flips =
          match List.assoc plan.Spec_stress.Faults.adversary compiled with
          | c -> c
        in
        let scope tail =
          [ w.Workloads.name; vname; pt.sp_label; tail ]
        in
        (* the in-order core keeps the historical "machine" scope so its
           fault streams (and hence the committed stress baselines) are
           unchanged; other backends get their own streams *)
        let machine_scope =
          match backend with
          | Machine.Inorder -> "machine"
          | b -> "machine-" ^ Machine.backend_name b
        in
        let mf =
          Spec_stress.Faults.injector_opt plan ~scope:(scope machine_scope)
        in
        let cfg =
          match plan.Spec_stress.Faults.alat_entries with
          | Some n -> { !machine_config with Machine.alat_entries = n }
          | None -> !machine_config
        in
        let m = Machine.run_resolved_on backend ~config:cfg ?faults:mf rp in
        if m.Machine.output <> oracle then
          stress_diverged ~workload:w.Workloads.name ~variant:vname
            ~point:pt.sp_label ~engine:"machine";
        let fi =
          Spec_stress.Faults.injector_opt plan ~scope:(scope "interp")
        in
        let i = Interp.run_compiled ?faults:fi cprog in
        if i.Interp.output <> oracle then
          stress_diverged ~workload:w.Workloads.name ~variant:vname
            ~point:pt.sp_label ~engine:"interp";
        let p = m.Machine.perf in
        let ic = i.Interp.counters in
        let injected f = function None -> 0 | Some inj -> f inj in
        [ { sc_workload = w.Workloads.name;
            sc_backend = Machine.backend_name backend;
            sc_point = pt.sp_label;
            sc_variant = vname;
            sc_adv_flips = flips;
            sc_checks = p.Machine.checks;
            sc_misses = p.Machine.check_misses;
            sc_cycles = p.Machine.cycles;
            sc_insns = p.Machine.insns;
            sc_m_flushes = injected Spec_stress.Faults.flushes mf;
            sc_m_invs = injected Spec_stress.Faults.invalidations mf;
            sc_i_checks = ic.Interp.check_stmts;
            sc_i_reloads = ic.Interp.check_reloads;
            sc_i_flushes = injected Spec_stress.Faults.flushes fi;
            sc_i_invs = injected Spec_stress.Faults.invalidations fi } ]
      end)
    points

(** Stress-sweep one workload: every variant × grid point, outputs
    asserted bit-identical to the unoptimized oracle at every point
    (raises {!Stress_divergence} otherwise).  Variants fan out on the
    domain pool; the grid runs inside each variant task with
    scope-derived fault streams, so cell order and content are
    independent of [--jobs]. *)
let stress_workload ?(quick = false) ?(seed = 1) ?points
    ?(backend = Machine.Inorder) (w : Workloads.workload) : stress_cell list =
  let points = match points with Some p -> p | None -> stress_grid ~seed () in
  let train_prog = Lower.compile (Workloads.train_source w) in
  let profile, _ = Profiler.profile train_prog in
  let params = if quick then w.Workloads.train else w.Workloads.ref_ in
  let oracle_run () =
    let prog = Lower.compile (w.Workloads.source params) in
    let r = Pipeline.optimize ~edge_profile:(Some profile) prog Pipeline.Noopt in
    let mp = Spec_codegen.Codegen.lower r.Pipeline.prog in
    ignore (Spec_codegen.Schedule.run mp : Spec_codegen.Schedule.stats);
    Machine.run_on backend ~config:!machine_config mp
  in
  let oracle = (oracle_run ()).Machine.output in
  let variants =
    [ ("base", Pipeline.Base);
      ("profile", Pipeline.Spec_profile profile);
      ("heuristic", Pipeline.Spec_heuristic);
      ("aggressive", Pipeline.Aggressive) ]
  in
  let tasks =
    List.map
      (fun v () ->
        match v with
        | ("aggressive", variant) ->
          (* self-oracle: run the fault-free point once to learn the
             variant's own reference output, then sweep against it *)
          let prog = Lower.compile (w.Workloads.source params) in
          let r =
            Pipeline.optimize ~edge_profile:(Some profile) prog variant
          in
          let mp = Spec_codegen.Codegen.lower r.Pipeline.prog in
          ignore (Spec_codegen.Schedule.run mp : Spec_codegen.Schedule.stats);
          let self =
            (Machine.run_on backend ~config:!machine_config mp).Machine.output
          in
          stress_variant ~quick ~seed ~oracle:self ~backend w profile points
            ("aggressive", variant)
        | v -> stress_variant ~quick ~seed ~oracle ~backend w profile points v)
      variants
  in
  List.concat (Parpool.parmap (fun f -> f ()) tasks)

(** Stress-sweep a list of workloads (deterministic under any
    [--jobs N]); cells are grouped by workload in input order. *)
let run_stress ?(quick = false) ?(seed = 1) ?points
    ?(backend = Machine.Inorder) (ws : Workloads.workload list) :
    stress_cell list =
  List.concat
    (Parpool.parmap
       (fun w -> stress_workload ~quick ~seed ?points ~backend w)
       ws)

(** Cycle overhead of a cell versus the same (workload, variant) at the
    zero-fault point, in percent; 0 when the baseline cell is absent. *)
let stress_overhead (cells : stress_cell list) (c : stress_cell) =
  match
    List.find_opt
      (fun b ->
        b.sc_workload = c.sc_workload && b.sc_backend = c.sc_backend
        && b.sc_variant = c.sc_variant && b.sc_point = "0%")
      cells
  with
  | Some b when b.sc_cycles > 0 ->
    pct (float_of_int c.sc_cycles /. float_of_int b.sc_cycles -. 1.)
  | _ -> 0.

let stress_header =
  "workload  | point       | variant    | checks | misses |  hit% | reloads |  cycles |  ovh% | inj m(f/i) | inj i(f/i)"

let stress_row (cells : stress_cell list) (c : stress_cell) =
  Printf.sprintf
    "%-9s | %-11s | %-10s | %6d | %6d | %5.1f | %7d | %7d | %5.1f | %4d/%-5d | %4d/%-5d"
    c.sc_workload c.sc_point c.sc_variant c.sc_checks c.sc_misses
    (stress_hit_rate c) c.sc_i_reloads c.sc_cycles
    (stress_overhead cells c) c.sc_m_flushes c.sc_m_invs c.sc_i_flushes
    c.sc_i_invs

(* ------------------------------------------------------------------ *)
(* Persistent FDO: warm-vs-cold compile bench (DESIGN.md §3.4)          *)
(* ------------------------------------------------------------------ *)

(** One workload's warm-vs-cold comparison: the same profile-fed compile
    run twice against a fresh compile cache.  The cold run populates the
    cache; the warm run must hit, run zero passes, and reproduce the
    cold program exactly. *)
type fdo_result = {
  f_wname : string;
  f_cold_s : float;        (** cold compile wall time (miss + store) *)
  f_warm_s : float;        (** warm compile wall time (hit) *)
  f_hits : int;
  f_misses : int;
  f_stores : int;
  f_evictions : int;
  f_cold_passes : int;     (** pass runs in the cold compile's report *)
  f_warm_passes : int;     (** pass runs in the warm report — must be 0 *)
  f_warm_hit : bool;       (** the warm compile came out of the cache *)
  f_identical : bool;      (** warm program prints identically to cold *)
  f_match_rate : float;    (** store self-match rate — must be 1.0 *)
}

let total_pass_runs (r : Passes.report) =
  List.fold_left (fun acc ps -> acc + ps.Passes.ps_runs) 0 r.Passes.rp_passes

let rm_rf_cache dir =
  (match Sys.readdir dir with
   | files ->
     Array.iter
       (fun f ->
         try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
       files
   | exception Sys_error _ -> ());
  try Unix.rmdir dir with Unix.Unix_error _ -> ()

(** Warm-vs-cold compile of one workload through the persistent-FDO
    path: train once, persist the profile through the {!Spec_fdo.Store}
    round-trip (as [speccc --profile-out]/[--profile-in] would), then
    compile the ref source twice against a fresh cache. *)
let run_fdo ?(quick = false) (w : Workloads.workload) : fdo_result =
  let train_prog = Lower.compile (Workloads.train_source w) in
  let profile0, _ = Profiler.profile train_prog in
  let store = Spec_fdo.Store.of_profile train_prog profile0 in
  let profile, mr = Spec_fdo.Store.bind store train_prog in
  let digest = Spec_fdo.Store.digest store in
  let params = if quick then w.Workloads.train else w.Workloads.ref_ in
  let src = w.Workloads.source params in
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "speccc-fdo-%d-%s" (Unix.getpid ()) w.Workloads.name)
  in
  rm_rf_cache dir;
  let cache = Spec_fdo.Cache.create dir in
  let compile () =
    let t0 = Unix.gettimeofday () in
    let r =
      Pipeline.compile_and_optimize ~edge_profile:(Some profile) ~cache
        ~profile_digest:digest src (Pipeline.Spec_profile profile)
    in
    (r, Unix.gettimeofday () -. t0)
  in
  let cold, cold_s = compile () in
  let warm, warm_s = compile () in
  rm_rf_cache dir;
  let st = Spec_fdo.Cache.stats cache in
  { f_wname = w.Workloads.name;
    f_cold_s = cold_s;
    f_warm_s = warm_s;
    f_hits = st.Spec_fdo.Cache.hits;
    f_misses = st.Spec_fdo.Cache.misses;
    f_stores = st.Spec_fdo.Cache.stores;
    f_evictions = st.Spec_fdo.Cache.evictions;
    f_cold_passes = total_pass_runs cold.Pipeline.report;
    f_warm_passes = total_pass_runs warm.Pipeline.report;
    f_warm_hit = warm.Pipeline.from_cache;
    f_identical =
      Pp.prog_to_string warm.Pipeline.prog
      = Pp.prog_to_string cold.Pipeline.prog;
    f_match_rate = Spec_fdo.Store.match_rate mr }

(** Warm-vs-cold sweep on the domain pool; results in input order. *)
let run_fdos ?(quick = false) (ws : Workloads.workload list) :
    fdo_result list =
  Parpool.parmap (fun w -> run_fdo ~quick w) ws

let fdo_header =
  "benchmark |  cold ms |  warm ms | speedup | hit | passes c/w | identical | match%"

let fdo_row (f : fdo_result) =
  Printf.sprintf "%-9s | %8.2f | %8.2f | %6.1fx | %3s | %6d/%-3d | %9s | %5.1f"
    f.f_wname (1000. *. f.f_cold_s) (1000. *. f.f_warm_s)
    (if f.f_warm_s > 0. then f.f_cold_s /. f.f_warm_s else 0.)
    (if f.f_warm_hit then "yes" else "NO")
    f.f_cold_passes f.f_warm_passes
    (if f.f_identical then "yes" else "NO")
    (100. *. f.f_match_rate)

(* ------------------------------------------------------------------ *)
(* Compile-throughput bench (parallel per-function pipeline)           *)
(* ------------------------------------------------------------------ *)

(** One workload's cold-compile throughput comparison: the heuristic
    pipeline (no profile needed — pure compile cost) run at [--jobs 1]
    and at [--jobs N] against the same source.  The optimized programs
    must print byte-identically; the sequential run also records its
    allocation footprint and per-pass breakdown (the dense-internals
    metrics). *)
type compile_result = {
  c_wname : string;
  c_funcs : int;            (** functions in the lowered program *)
  c_jobs : int;             (** domain count of the parallel measurement *)
  c_seq_s : float;          (** best cold-compile wall, jobs = 1 *)
  c_par_s : float;          (** best cold-compile wall, jobs = N *)
  c_seq_alloc_w : float;    (** words allocated by one sequential compile *)
  c_identical : bool;       (** parallel output byte-identical to sequential *)
  c_report : Passes.report; (** the sequential compile's pass breakdown *)
}

(* A compile-throughput unit: [copies] renamed copies of a kernel's
   source concatenated into one translation unit, plus a driver [main]
   invoking each copy.  Per-function parallelism needs many functions to
   chew on, and the workload kernels have only a handful each — so the
   bench scales them the way a real translation unit grows: more
   functions, not bigger ones.  Renaming is plain alpha-renaming of the
   kernel's top-level names (functions and globals), discovered from a
   probe compile; builtins are untouched. *)
let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_'

let rename_idents names suffix src =
  let n = String.length src in
  let buf = Buffer.create (n + 256) in
  let i = ref 0 in
  while !i < n do
    if is_ident_char src.[!i] then begin
      let j = ref !i in
      while !j < n && is_ident_char src.[!j] do incr j done;
      let tok = String.sub src !i (!j - !i) in
      Buffer.add_string buf tok;
      if List.mem tok names then Buffer.add_string buf suffix;
      i := !j
    end
    else begin
      Buffer.add_char buf src.[!i];
      incr i
    end
  done;
  Buffer.contents buf

let compile_unit ~copies src =
  let probe = Lower.compile src in
  let names =
    let globals = ref [] in
    Symtab.iter
      (fun v ->
        if v.Symtab.vstorage = Symtab.Sglobal then
          globals := v.Symtab.vname :: !globals)
      probe.Sir.syms;
    probe.Sir.func_order @ !globals
  in
  let buf = Buffer.create (copies * (String.length src + 64)) in
  for k = 0 to copies - 1 do
    Buffer.add_string buf (rename_idents names (Printf.sprintf "_%d" k) src);
    Buffer.add_char buf '\n'
  done;
  Buffer.add_string buf "int main() {\n";
  for k = 0 to copies - 1 do
    Printf.bprintf buf "  main_%d();\n" k
  done;
  Buffer.add_string buf "  return 0;\n}\n";
  Buffer.contents buf

(* One cold compile: lower outside the timed region (the bench measures
   the optimizer, not the frontend), then the full heuristic pipeline. *)
let compile_once src =
  let prog = Lower.compile src in
  let t0 = Unix.gettimeofday () in
  let r = Pipeline.optimize prog Pipeline.Spec_heuristic in
  (Unix.gettimeofday () -. t0, r)

(* Best-of-[reps] cold compile at the current pool size.  The repeats
   absorb scheduler noise; every repetition starts from a fresh lowered
   program, so each one is a genuinely cold compile. *)
let best_compile ~reps src =
  let dt0, r0 = compile_once src in
  let rec go i ((bdt, _) as acc) =
    if i >= reps then acc
    else
      let dt, r = compile_once src in
      go (i + 1) (if dt < bdt then (dt, r) else acc)
  in
  go 1 (dt0, r0)

(** Compile-throughput measurement of one workload.  Flips the global
    pool between the two legs, so it must not itself run on the pool;
    the caller restores the pool afterwards. *)
let compile_workload ?(quick = false) ~jobs (w : Workloads.workload) :
    compile_result =
  let params = if quick then w.Workloads.train else w.Workloads.ref_ in
  let copies = if quick then 6 else 24 in
  let src = compile_unit ~copies (w.Workloads.source params) in
  let reps = if quick then 1 else 3 in
  Parpool.set_jobs 1;
  (* allocation words measured on a dedicated run: [Gc.allocated_bytes]
     counts the calling domain only, which is exact when jobs = 1 *)
  let a0 = Gc.allocated_bytes () in
  let _, _ = compile_once src in
  let alloc_w =
    (Gc.allocated_bytes () -. a0) /. float_of_int (Sys.word_size / 8)
  in
  let seq_s, seq_r = best_compile ~reps src in
  Parpool.set_jobs jobs;
  let par_s, par_r = best_compile ~reps src in
  { c_wname = w.Workloads.name;
    c_funcs = List.length seq_r.Pipeline.prog.Sir.func_order;
    c_jobs = jobs;
    c_seq_s = seq_s;
    c_par_s = par_s;
    c_seq_alloc_w = alloc_w;
    c_identical =
      Pp.prog_to_string par_r.Pipeline.prog
      = Pp.prog_to_string seq_r.Pipeline.prog;
    c_report = seq_r.Pipeline.report }

(** Sweep the compile bench over [ws].  Runs strictly sequentially (each
    measurement owns the global pool) and restores the pool size the
    harness configured before returning. *)
let run_compile_bench ?(quick = false) ?(jobs = 4)
    (ws : Workloads.workload list) : compile_result list =
  let prev = Parpool.get_jobs () in
  let results = List.map (fun w -> compile_workload ~quick ~jobs w) ws in
  Parpool.set_jobs prev;
  results

let compile_speedup (c : compile_result) =
  if c.c_par_s > 0. then c.c_seq_s /. c.c_par_s else 0.

(** Aggregate sweep speedup: total sequential wall over total parallel
    wall (the whole-sweep number the acceptance gate checks). *)
let compile_total_speedup (cells : compile_result list) =
  let seq = List.fold_left (fun a c -> a +. c.c_seq_s) 0. cells in
  let par = List.fold_left (fun a c -> a +. c.c_par_s) 0. cells in
  if par > 0. then seq /. par else 0.

let compile_header =
  "benchmark | funcs |  seq ms |  par ms | speedup | alloc Mwords | identical"

let compile_row (c : compile_result) =
  Printf.sprintf "%-9s | %5d | %7.2f | %7.2f | %6.2fx | %12.2f | %9s"
    c.c_wname c.c_funcs (1000. *. c.c_seq_s) (1000. *. c.c_par_s)
    (compile_speedup c)
    (c.c_seq_alloc_w /. 1e6)
    (if c.c_identical then "yes" else "NO")

(** ALAT capacity ablation: mis-speculation ratio vs table size. *)
let ablate_alat ?(quick = false) (w : Workloads.workload) sizes =
  let train_prog = Lower.compile (Workloads.train_source w) in
  let profile, _ = Profiler.profile train_prog in
  let params = if quick then w.Workloads.train else w.Workloads.ref_ in
  List.map
    (fun entries ->
      let prog = Lower.compile (w.Workloads.source params) in
      let r =
        Pipeline.optimize ~edge_profile:(Some profile) prog
          (Pipeline.Spec_profile profile)
      in
      let m =
        Machine.run
          ~config:{ !machine_config with Machine.alat_entries = entries }
          (Spec_codegen.Codegen.lower r.Pipeline.prog)
      in
      let p = m.Machine.perf in
      (entries, p.Machine.checks, p.Machine.check_misses))
    sizes

(* ------------------------------------------------------------------ *)
(* Speculative-safety sweep (--table safety)                           *)
(* ------------------------------------------------------------------ *)

exception Safety_divergence of string

(** One (workload, variant) row of the safety sweep: the speculative-taint
    checker's verdict on the deopt-capable optimized program, the stable
    site keys it reported, and the cost of the two recovery policies under
    one forced interference plan — the same build re-run with check misses
    recovered by reloading vs by deoptimizing into the unoptimized body.
    The deopt leg runs on both interpreter engines with the same
    scope-derived fault stream and must agree to the counter, and every
    run must reproduce the unoptimized oracle's output byte-for-byte. *)
type safety_cell = {
  sf_wname : string;
  sf_variant : string;
  sf_verdict : string;      (** "unannotated" | "safe" | "leaks" *)
  sf_confirmed : int;
  sf_plausible : int;
  sf_sites : string list;   (** tier + kind + stable site key, program order *)
  sf_checks : int;          (** ld.c executions on the reload leg *)
  sf_reloads : int;         (** check misses recovered by reloading *)
  sf_reload_steps : int;    (** tree-engine steps, reload recovery *)
  sf_deopts : int;          (** check misses recovered by deoptimizing *)
  sf_deopt_steps : int;     (** tree-engine steps, deopt recovery *)
}

(* the interference plan the recovery comparison runs under: periodic
   full ALAT flushes, frequent enough to fire on every kernel with
   checks, seeded so the stream is reproducible per scope *)
let safety_fault_plan ~seed =
  { (Spec_stress.Faults.null seed) with Spec_stress.Faults.flush_period = 25 }

let safety_diverged ~workload ~variant ~leg msg =
  raise
    (Safety_divergence
       (Printf.sprintf "safety %s/%s (%s): %s" workload variant leg msg))

let safety_variant ~quick ~seed (w : Workloads.workload) profile
    (vname, variant) : safety_cell =
  let params = if quick then w.Workloads.train else w.Workloads.ref_ in
  let src = w.Workloads.source params in
  let prog = Lower.compile src in
  let r =
    Pipeline.optimize ~edge_profile:(Some profile) ~deopt:true ~safety:true
      prog variant
  in
  let report =
    match r.Pipeline.safety with
    | Some rep -> rep
    | None -> failwith "safety sweep: pipeline dropped the safety report"
  in
  let verdict, confirmed, plausible = Spec_safety.Spectct.cells report in
  let dplan = Spec_safety.Deopt.make_plan (Lower.compile src) in
  (* the Aggressive variant has no runtime checks, so on kernels with
     real aliasing it legitimately diverges from the unoptimized oracle
     (as in the main harness); it is held to its own fault-free output
     instead — faults only ever remove ALAT entries, so a faulted run
     must still reproduce it exactly *)
  let expected =
    if variant = Pipeline.Aggressive then
      (Interp.run r.Pipeline.prog).Interp.output
    else (Interp_ref.run (Lower.compile src)).Interp_ref.output
  in
  let plan = safety_fault_plan ~seed in
  let inj leg =
    Spec_stress.Faults.injector plan
      ~scope:[ w.Workloads.name; vname; "safety"; leg ]
  in
  let check leg (i : Interp.result) =
    if i.Interp.output <> expected then
      safety_diverged ~workload:w.Workloads.name ~variant:vname ~leg
        "output diverged from the unoptimized oracle"
  in
  let reload = Interp.run ~faults:(inj "reload") r.Pipeline.prog in
  check "reload" reload;
  (* both engines replay the same fault stream (they share the ALAT
     operation clock), so the deopt legs must agree exactly *)
  let deo_tree =
    Interp.run ~faults:(inj "deopt") ~recover:dplan r.Pipeline.prog
  in
  check "deopt-tree" deo_tree;
  let deo_vm = Vm.run ~faults:(inj "deopt") ~recover:dplan r.Pipeline.prog in
  check "deopt-vm" deo_vm;
  if deo_vm.Interp.output <> deo_tree.Interp.output
     || deo_vm.Interp.ret <> deo_tree.Interp.ret
     || deo_vm.Interp.counters <> deo_tree.Interp.counters
  then
    safety_diverged ~workload:w.Workloads.name ~variant:vname ~leg:"deopt-vm"
      "vm engine disagreed with the tree engine";
  { sf_wname = w.Workloads.name;
    sf_variant = vname;
    sf_verdict = verdict;
    sf_confirmed = confirmed;
    sf_plausible = plausible;
    sf_sites = Spec_safety.Spectct.site_lines report;
    sf_checks = reload.Interp.counters.Interp.check_stmts;
    sf_reloads = reload.Interp.counters.Interp.check_reloads;
    sf_reload_steps = reload.Interp.counters.Interp.steps;
    sf_deopts = deo_tree.Interp.counters.Interp.deopts;
    sf_deopt_steps = deo_tree.Interp.counters.Interp.steps }

let safety_variants =
  [ "profile", `Profile; "heuristic", `Heuristic; "aggressive", `Aggressive ]

(** Safety-sweep one workload: checker verdict + recovery-cost cells for
    each speculative variant.  The profile is collected inside the task so
    cells are self-contained (deterministic under any [--jobs]). *)
let safety_workload ?(quick = false) ?(seed = 1) (w : Workloads.workload) :
    safety_cell list =
  let train_prog = Lower.compile (Workloads.train_source w) in
  let profile, _ = Profiler.profile train_prog in
  List.map
    (fun (vname, v) ->
      let variant =
        match v with
        | `Profile -> Pipeline.Spec_profile profile
        | `Heuristic -> Pipeline.Spec_heuristic
        | `Aggressive -> Pipeline.Aggressive
      in
      safety_variant ~quick ~seed w profile (vname, variant))
    safety_variants

(** The full safety sweep, one workload per pool task. *)
let run_safety ?(quick = false) ?(seed = 1) (ws : Workloads.workload list) :
    safety_cell list =
  List.concat (Parpool.parmap (fun w -> safety_workload ~quick ~seed w) ws)

let safety_header =
  "benchmark | variant    | verdict     | conf | plaus | checks | reloads | \
   steps(rel) | deopts | steps(deo)"

let safety_row (c : safety_cell) =
  Printf.sprintf
    "%-9s | %-10s | %-11s | %4d | %5d | %6d | %7d | %10d | %6d | %10d"
    c.sf_wname c.sf_variant c.sf_verdict c.sf_confirmed c.sf_plausible
    c.sf_checks c.sf_reloads c.sf_reload_steps c.sf_deopts c.sf_deopt_steps
