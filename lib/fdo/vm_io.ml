(** Bytecode serialization ([specvm/2]) for the content-addressed
    compile cache.

    A [specart/4] artifact stores the optimized SIR *and* the bytecode
    {!Spec_prof.Vmcode} lowered from it, so a cache hit hands the vm
    engine a ready-to-dispatch program with no lowering pass.
    [specvm/2] additionally carries each function's per-check
    deoptimization descriptor table, so warm hits can run under
    [--recover deopt] without relowering.  Same
    deterministic token-stream discipline as {!Sir_io}: writer below,
    recursive-descent reader after it, via {!Textio}; no [Marshal], so
    artifacts are stable across OCaml versions and safe to inspect.

    The source program is deliberately *not* part of the format — the
    artifact's own SIR section supplies it at load time ({!of_text}'s
    [src]), which keeps the two sections from ever disagreeing. *)

module V = Spec_prof.Vmcode
module I = Spec_prof.Interp

let version = "specvm/2"

(** Serialize the bytecode (without the source program — the cache
    artifact stores the optimized SIR alongside it). *)
let to_text (p : V.program) : string =
  let buf = Buffer.create 4096 in
  Printf.bprintf buf "%s\n" version;
  Printf.bprintf buf "main %d\n" p.V.vmain;
  Printf.bprintf buf "fpool %d" (Array.length p.V.fpool);
  Array.iter (fun f -> Printf.bprintf buf " %h" f) p.V.fpool;
  Buffer.add_char buf '\n';
  Printf.bprintf buf "spool %d" (Array.length p.V.spool);
  Array.iter
    (fun s -> Printf.bprintf buf " %s" (Textio.quote s))
    p.V.spool;
  Buffer.add_char buf '\n';
  Printf.bprintf buf "funcs %d\n" (Array.length p.V.vfuncs);
  Array.iter
    (fun f ->
      Printf.bprintf buf "func %s %d %d\n"
        (Textio.quote f.V.vname) f.V.n_regs f.V.n_addr;
      Printf.bprintf buf "mem %d" (Array.length f.V.vmem_locals);
      Array.iter
        (fun (s, v, b) -> Printf.bprintf buf " %d %d %d" s v b)
        f.V.vmem_locals;
      Buffer.add_char buf '\n';
      Printf.bprintf buf "formals %d" (Array.length f.V.vformals);
      Array.iter
        (fun fm ->
          match fm with
          | I.Fm_reg { slot; fp } ->
            Printf.bprintf buf " r %d %d" slot (if fp then 1 else 0)
          | I.Fm_mem { aslot; vid; bytes; fp } ->
            Printf.bprintf buf " m %d %d %d %d" aslot vid bytes
              (if fp then 1 else 0))
        f.V.vformals;
      Buffer.add_char buf '\n';
      Printf.bprintf buf "code %d" (Array.length f.V.vcode);
      Array.iter (fun w -> Printf.bprintf buf " %d" w) f.V.vcode;
      Buffer.add_char buf '\n';
      (* pc-sorted for a deterministic byte stream (hashtable order is
         not stable across runs) *)
      let dds =
        List.sort
          (fun (a, _) (b, _) -> compare a b)
          (Hashtbl.fold (fun pc d acc -> (pc, d) :: acc) f.V.vdeopt [])
      in
      Printf.bprintf buf "deopt %d" (List.length dds);
      List.iter
        (fun (pc, ((d : I.cdeopt), refund)) ->
          Printf.bprintf buf " %d %d %d %d" pc d.I.d_sid refund
            (Array.length d.I.d_vars);
          Array.iter
            (fun (vid, slot, fp) ->
              Printf.bprintf buf " %d %d %d" vid slot (if fp then 1 else 0))
            d.I.d_vars)
        dds;
      Buffer.add_char buf '\n')
    p.V.vfuncs;
  Buffer.add_string buf "end\n";
  Buffer.contents buf

(** Deserialize bytecode produced by {!to_text}; [src] must be the
    program the bytecode was lowered from (the artifact's optimized
    SIR). *)
let of_text ~(src : Spec_ir.Sir.prog) (s : string)
    : (V.program, string) Stdlib.result =
  let lx = Textio.make s in
  (* token order matters: read sequentially with an explicit loop rather
     than trusting Array.init's application order *)
  let read_seq n f =
    if n < 0 then Textio.fail lx "negative count";
    let rec go k acc = if k = 0 then acc else go (k - 1) (f () :: acc) in
    Array.of_list (List.rev (go n []))
  in
  try
    Textio.expect lx version;
    Textio.expect lx "main";
    let vmain = Textio.int_tok lx in
    Textio.expect lx "fpool";
    let nf = Textio.int_tok lx in
    let fpool = read_seq nf (fun () -> Textio.float_tok lx) in
    Textio.expect lx "spool";
    let ns = Textio.int_tok lx in
    let spool = read_seq ns (fun () -> Textio.token lx) in
    Textio.expect lx "funcs";
    let n = Textio.int_tok lx in
    let vfuncs =
      read_seq n (fun () ->
          Textio.expect lx "func";
          let vname = Textio.token lx in
          let n_regs = Textio.int_tok lx in
          let n_addr = Textio.int_tok lx in
          Textio.expect lx "mem";
          let nm = Textio.int_tok lx in
          let vmem_locals =
            read_seq nm (fun () ->
                let s = Textio.int_tok lx in
                let v = Textio.int_tok lx in
                let b = Textio.int_tok lx in
                (s, v, b))
          in
          Textio.expect lx "formals";
          let nfm = Textio.int_tok lx in
          let vformals =
            read_seq nfm (fun () ->
                match Textio.token lx with
                | "r" ->
                  let slot = Textio.int_tok lx in
                  let fp = Textio.bool_tok lx in
                  I.Fm_reg { slot; fp }
                | "m" ->
                  let aslot = Textio.int_tok lx in
                  let vid = Textio.int_tok lx in
                  let bytes = Textio.int_tok lx in
                  let fp = Textio.bool_tok lx in
                  I.Fm_mem { aslot; vid; bytes; fp }
                | t -> Textio.fail lx (Printf.sprintf "bad formal kind %S" t))
          in
          Textio.expect lx "code";
          let nc = Textio.int_tok lx in
          let vcode = read_seq nc (fun () -> Textio.int_tok lx) in
          Textio.expect lx "deopt";
          let nd = Textio.int_tok lx in
          let vdeopt = Hashtbl.create (max 1 nd) in
          for _ = 1 to nd do
            let pc = Textio.int_tok lx in
            let d_sid = Textio.int_tok lx in
            let refund = Textio.int_tok lx in
            let nv = Textio.int_tok lx in
            let d_vars =
              read_seq nv (fun () ->
                  let vid = Textio.int_tok lx in
                  let slot = Textio.int_tok lx in
                  let fp = Textio.bool_tok lx in
                  (vid, slot, fp))
            in
            Hashtbl.replace vdeopt pc ({ I.d_sid; d_vars }, refund)
          done;
          { V.vname; vcode; n_regs; n_addr; vmem_locals; vformals; vdeopt })
    in
    Textio.expect lx "end";
    if not (Textio.at_eof lx) then Textio.fail lx "trailing data";
    Ok { V.vsrc = src; vfuncs; vmain; fpool; spool }
  with Textio.Error msg -> Error msg
