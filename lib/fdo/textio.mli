(** Token-level reader/writer helpers for the FDO on-disk formats. *)

exception Error of string

(** Deterministic quoting: double-quoted with backslash escapes (quote,
    backslash, newline, tab, hex byte). *)
val quote : string -> string

type lexer

val make : string -> lexer
val fail : lexer -> string -> 'a
val at_eof : lexer -> bool

(** Next token: a bare word or the contents of a quoted string. *)
val token : lexer -> string

(** Next token, which must equal the argument. *)
val expect : lexer -> string -> unit

val int_tok : lexer -> int

(** Hex-float ([%h]) tokens; round-trip exactly. *)
val float_tok : lexer -> float

val bool_tok : lexer -> bool
