(** Full-fidelity SIR serialization ([specsir/2]) for the compile cache.

    A cache hit must hand back a program byte-for-byte equivalent to the
    one the optimizer produced — same variable table (including SSA
    versions and temporaries, so ids and pretty-printed output are
    identical), same site table, statements, marks, check links, block
    frequencies and predecessor lists.  The format is a deterministic
    token stream (writer below, recursive-descent reader after it, via
    {!Textio}); no [Marshal], so artifacts are stable across OCaml
    versions and safe to inspect.

    [specsir/2] adds the speculative-safety metadata: per-variable
    [secret] contract bits and per-check deoptimization descriptors.
    Old [specsir/1] text still reads, degrading soundly: every variable
    is public (the checker reports the program as unannotated) and no
    check carries a descriptor (recovery falls back to the reload
    path). *)

open Spec_ir

let version = "specsir/2"
let version_v1 = "specsir/1"

let q = Textio.quote

(* ------------------------------------------------------------------ *)
(* Token tags                                                          *)
(* ------------------------------------------------------------------ *)

let rec ty_str = function
  | Types.Tptr t -> "p" ^ ty_str t
  | Types.Tint -> "i"
  | Types.Tflt -> "f"
  | Types.Tvoid -> "v"

let ty_of_string lx s =
  let n = String.length s in
  let rec go i =
    if i >= n then Textio.fail lx "empty type token"
    else
      match s.[i] with
      | 'p' -> Types.Tptr (go (i + 1))
      | 'i' when i = n - 1 -> Types.Tint
      | 'f' when i = n - 1 -> Types.Tflt
      | 'v' when i = n - 1 -> Types.Tvoid
      | _ -> Textio.fail lx (Printf.sprintf "bad type token %S" s)
  in
  go 0

let storage_tag = function
  | Symtab.Sglobal -> "g"
  | Symtab.Slocal -> "l"
  | Symtab.Sformal -> "f"
  | Symtab.Stemp -> "t"
  | Symtab.Svirtual -> "v"

let storage_of_tag lx = function
  | "g" -> Symtab.Sglobal
  | "l" -> Symtab.Slocal
  | "f" -> Symtab.Sformal
  | "t" -> Symtab.Stemp
  | "v" -> Symtab.Svirtual
  | s -> Textio.fail lx (Printf.sprintf "bad storage tag %S" s)

let mark_tag = function
  | Sir.Mnone -> "n"
  | Sir.Madv -> "a"
  | Sir.Mchk -> "c"
  | Sir.Mcspec -> "s"
  | Sir.Msa -> "sa"

let mark_of_tag lx = function
  | "n" -> Sir.Mnone
  | "a" -> Sir.Madv
  | "c" -> Sir.Mchk
  | "s" -> Sir.Mcspec
  | "sa" -> Sir.Msa
  | s -> Textio.fail lx (Printf.sprintf "bad mark tag %S" s)

let binop_of_tag lx = function
  | "+" -> Sir.Add | "-" -> Sir.Sub | "*" -> Sir.Mul | "/" -> Sir.Div
  | "%" -> Sir.Rem | "<" -> Sir.Lt | "<=" -> Sir.Le | ">" -> Sir.Gt
  | ">=" -> Sir.Ge | "==" -> Sir.Eq | "!=" -> Sir.Ne | "&" -> Sir.Band
  | "|" -> Sir.Bor | "^" -> Sir.Bxor | "<<" -> Sir.Shl | ">>" -> Sir.Shr
  | s -> Textio.fail lx (Printf.sprintf "bad binop tag %S" s)

let unop_of_tag lx = function
  | "neg" -> Sir.Neg | "not" -> Sir.Lnot | "i2f" -> Sir.I2f | "f2i" -> Sir.F2i
  | s -> Textio.fail lx (Printf.sprintf "bad unop tag %S" s)

let kind_tag = function
  | Sir.Kiload -> "ld"
  | Sir.Kistore -> "st"
  | Sir.Kcall -> "call"

let site_kind_of_tag lx = function
  | "ld" -> Sir.Kiload
  | "st" -> Sir.Kistore
  | "call" -> Sir.Kcall
  | s -> Textio.fail lx (Printf.sprintf "bad site kind %S" s)

(* ------------------------------------------------------------------ *)
(* Writer                                                              *)
(* ------------------------------------------------------------------ *)

let bool_str b = if b then "1" else "0"

let rec write_expr buf (e : Sir.expr) =
  match e with
  | Sir.Const (Sir.Cint i) -> Printf.bprintf buf " ci %d" i
  | Sir.Const (Sir.Cflt f) -> Printf.bprintf buf " cf %h" f
  | Sir.Lod v -> Printf.bprintf buf " lod %d" v
  | Sir.Ilod (t, a, site) ->
    Printf.bprintf buf " ild %s %d" (ty_str t) site;
    write_expr buf a
  | Sir.Lda v -> Printf.bprintf buf " lda %d" v
  | Sir.Unop (o, t, x) ->
    Printf.bprintf buf " un %s %s" (Sitekey.unop_tag o) (ty_str t);
    write_expr buf x
  | Sir.Binop (o, t, a, b) ->
    Printf.bprintf buf " bin %s %s" (Sitekey.binop_tag o) (ty_str t);
    write_expr buf a;
    write_expr buf b

let write_stmt buf (s : Sir.stmt) =
  Printf.bprintf buf "stmt %d %s %d" s.Sir.sid (mark_tag s.Sir.mark)
    s.Sir.check_of;
  (match s.Sir.deopt with
   | None -> Buffer.add_string buf " -"
   | Some d ->
     Printf.bprintf buf " d %d %d" d.Sir.dp_target
       (List.length d.Sir.dp_vars);
     List.iter (fun v -> Printf.bprintf buf " %d" v) d.Sir.dp_vars);
  Printf.bprintf buf " %d %d"
    (List.length s.Sir.mus)
    (List.length s.Sir.chis);
  (match s.Sir.kind with
   | Sir.Stid (v, e) ->
     Printf.bprintf buf " tid %d" v;
     write_expr buf e
   | Sir.Istr (t, a, v, site) ->
     Printf.bprintf buf " istr %s %d" (ty_str t) site;
     write_expr buf a;
     write_expr buf v
   | Sir.Call c ->
     Printf.bprintf buf " call %s %d %d %s"
       (match c.Sir.ret with Some r -> string_of_int r | None -> "-")
       c.Sir.csite
       (List.length c.Sir.args)
       (q c.Sir.callee);
     List.iter (write_expr buf) c.Sir.args
   | Sir.Snop -> Buffer.add_string buf " nop");
  Buffer.add_char buf '\n';
  List.iter
    (fun (m : Sir.mu) ->
      Printf.bprintf buf "mu %d %d %s\n" m.Sir.mu_opnd m.Sir.mu_var
        (bool_str m.Sir.mu_spec))
    s.Sir.mus;
  List.iter
    (fun (c : Sir.chi) ->
      Printf.bprintf buf "chi %d %d %d %s\n" c.Sir.chi_lhs c.Sir.chi_rhs
        c.Sir.chi_var (bool_str c.Sir.chi_spec))
    s.Sir.chis

let write_block buf (b : Sir.bb) =
  Printf.bprintf buf "block %d %h %d" b.Sir.bid b.Sir.freq
    (List.length b.Sir.preds);
  List.iter (fun p -> Printf.bprintf buf " %d" p) b.Sir.preds;
  Printf.bprintf buf " %d %d\n" (List.length b.Sir.phis)
    (List.length b.Sir.stmts);
  List.iter
    (fun (p : Sir.phi) ->
      Printf.bprintf buf "phi %d %d %s %d" p.Sir.phi_var p.Sir.phi_lhs
        (bool_str p.Sir.phi_live)
        (Array.length p.Sir.phi_args);
      Array.iter (fun a -> Printf.bprintf buf " %d" a) p.Sir.phi_args;
      Buffer.add_char buf '\n')
    b.Sir.phis;
  List.iter (write_stmt buf) b.Sir.stmts;
  (match b.Sir.term with
   | Sir.Tgoto t -> Printf.bprintf buf "term goto %d\n" t
   | Sir.Tcond (e, t, el) ->
     Printf.bprintf buf "term cond %d %d" t el;
     write_expr buf e;
     Buffer.add_char buf '\n'
   | Sir.Tret None -> Buffer.add_string buf "term retv\n"
   | Sir.Tret (Some e) ->
     Buffer.add_string buf "term ret";
     write_expr buf e;
     Buffer.add_char buf '\n')

let write_func buf (f : Sir.func) =
  Printf.bprintf buf "func %s %d" (ty_str f.Sir.fret)
    (List.length f.Sir.fformals);
  List.iter (fun v -> Printf.bprintf buf " %d" v) f.Sir.fformals;
  Printf.bprintf buf " %d" (List.length f.Sir.flocals);
  List.iter (fun v -> Printf.bprintf buf " %d" v) f.Sir.flocals;
  Printf.bprintf buf " %d %s\n" (Sir.n_blocks f) (q f.Sir.fname);
  Vec.iter (write_block buf) f.Sir.fblocks

(** Serialize a program.  Deterministic: equal programs produce
    byte-identical output. *)
let write (p : Sir.prog) : string =
  let buf = Buffer.create 65536 in
  Printf.bprintf buf "%s\n" version;
  let syms = p.Sir.syms in
  Printf.bprintf buf "vars %d\n" (Symtab.count syms);
  Symtab.iter
    (fun (v : Symtab.var) ->
      Printf.bprintf buf "v %s %d %d %s %d %s %s %s %s %s %s\n"
        (storage_tag v.Symtab.vstorage)
        v.Symtab.vver v.Symtab.vorig
        (bool_str v.Symtab.vaddr_taken)
        v.Symtab.vsize
        (bool_str v.Symtab.varray)
        (bool_str v.Symtab.vsecret)
        (ty_str v.Symtab.vty) (ty_str v.Symtab.velt)
        (match v.Symtab.vfunc with Some f -> q f | None -> "-")
        (q v.Symtab.vname))
    syms;
  Printf.bprintf buf "globals %d" (List.length p.Sir.globals);
  List.iter (fun g -> Printf.bprintf buf " %d" g) p.Sir.globals;
  Buffer.add_char buf '\n';
  let sites =
    List.sort compare
      (Hashtbl.fold (fun id si acc -> (id, si) :: acc) p.Sir.sites [])
  in
  Printf.bprintf buf "sites %d\n" (List.length sites);
  List.iter
    (fun (id, (si : Sir.site_info)) ->
      Printf.bprintf buf "site %d %s %d %s\n" id (kind_tag si.Sir.si_kind)
        si.Sir.si_line (q si.Sir.si_func))
    sites;
  Printf.bprintf buf "next %d %d %d\n" p.Sir.next_site p.Sir.next_stmt
    p.Sir.next_label;
  Printf.bprintf buf "funcs %d\n" (List.length p.Sir.func_order);
  List.iter (fun name -> write_func buf (Sir.find_func p name))
    p.Sir.func_order;
  Buffer.add_string buf "end\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Reader                                                              *)
(* ------------------------------------------------------------------ *)

let rec read_expr lx : Sir.expr =
  match Textio.token lx with
  | "ci" -> Sir.Const (Sir.Cint (Textio.int_tok lx))
  | "cf" -> Sir.Const (Sir.Cflt (Textio.float_tok lx))
  | "lod" -> Sir.Lod (Textio.int_tok lx)
  | "ild" ->
    let t = ty_of_string lx (Textio.token lx) in
    let site = Textio.int_tok lx in
    let a = read_expr lx in
    Sir.Ilod (t, a, site)
  | "lda" -> Sir.Lda (Textio.int_tok lx)
  | "un" ->
    let o = unop_of_tag lx (Textio.token lx) in
    let t = ty_of_string lx (Textio.token lx) in
    let x = read_expr lx in
    Sir.Unop (o, t, x)
  | "bin" ->
    let o = binop_of_tag lx (Textio.token lx) in
    let t = ty_of_string lx (Textio.token lx) in
    let a = read_expr lx in
    let b = read_expr lx in
    Sir.Binop (o, t, a, b)
  | w -> Textio.fail lx (Printf.sprintf "bad expression tag %S" w)

let read_ints lx n = List.init n (fun _ -> Textio.int_tok lx)

let read_stmt ~v2 lx : Sir.stmt =
  Textio.expect lx "stmt";
  let sid = Textio.int_tok lx in
  let mark = mark_of_tag lx (Textio.token lx) in
  let check_of = Textio.int_tok lx in
  let deopt =
    if not v2 then None
    else
      match Textio.token lx with
      | "-" -> None
      | "d" ->
        let target = Textio.int_tok lx in
        let n = Textio.int_tok lx in
        Some { Sir.dp_target = target; dp_vars = read_ints lx n }
      | w -> Textio.fail lx (Printf.sprintf "bad deopt tag %S" w)
  in
  let nmus = Textio.int_tok lx in
  let nchis = Textio.int_tok lx in
  let kind =
    match Textio.token lx with
    | "tid" ->
      let v = Textio.int_tok lx in
      Sir.Stid (v, read_expr lx)
    | "istr" ->
      let t = ty_of_string lx (Textio.token lx) in
      let site = Textio.int_tok lx in
      let a = read_expr lx in
      let v = read_expr lx in
      Sir.Istr (t, a, v, site)
    | "call" ->
      let ret =
        match Textio.token lx with
        | "-" -> None
        | r ->
          (match int_of_string_opt r with
           | Some r -> Some r
           | None -> Textio.fail lx "bad call return")
      in
      let csite = Textio.int_tok lx in
      let nargs = Textio.int_tok lx in
      let callee = Textio.token lx in
      let args = List.init nargs (fun _ -> read_expr lx) in
      Sir.Call { Sir.callee; args; ret; csite }
    | "nop" -> Sir.Snop
    | w -> Textio.fail lx (Printf.sprintf "bad statement kind %S" w)
  in
  let mus =
    List.init nmus (fun _ ->
        Textio.expect lx "mu";
        let opnd = Textio.int_tok lx in
        let var = Textio.int_tok lx in
        let spec = Textio.bool_tok lx in
        { Sir.mu_opnd = opnd; mu_var = var; mu_spec = spec })
  in
  let chis =
    List.init nchis (fun _ ->
        Textio.expect lx "chi";
        let lhs = Textio.int_tok lx in
        let rhs = Textio.int_tok lx in
        let var = Textio.int_tok lx in
        let spec = Textio.bool_tok lx in
        { Sir.chi_lhs = lhs; chi_rhs = rhs; chi_var = var; chi_spec = spec })
  in
  { Sir.sid; kind; mus; chis; mark; check_of; deopt }

let read_block ~v2 lx : Sir.bb =
  Textio.expect lx "block";
  let bid = Textio.int_tok lx in
  let freq = Textio.float_tok lx in
  let npreds = Textio.int_tok lx in
  let preds = read_ints lx npreds in
  let nphis = Textio.int_tok lx in
  let nstmts = Textio.int_tok lx in
  let phis =
    List.init nphis (fun _ ->
        Textio.expect lx "phi";
        let var = Textio.int_tok lx in
        let lhs = Textio.int_tok lx in
        let live = Textio.bool_tok lx in
        let nargs = Textio.int_tok lx in
        let args = Array.of_list (read_ints lx nargs) in
        { Sir.phi_var = var; phi_lhs = lhs; phi_args = args;
          phi_live = live })
  in
  let stmts = List.init nstmts (fun _ -> read_stmt ~v2 lx) in
  let term =
    Textio.expect lx "term";
    match Textio.token lx with
    | "goto" -> Sir.Tgoto (Textio.int_tok lx)
    | "cond" ->
      let t = Textio.int_tok lx in
      let el = Textio.int_tok lx in
      let e = read_expr lx in
      Sir.Tcond (e, t, el)
    | "retv" -> Sir.Tret None
    | "ret" -> Sir.Tret (Some (read_expr lx))
    | w -> Textio.fail lx (Printf.sprintf "bad terminator %S" w)
  in
  { Sir.bid; phis; stmts; term; preds; freq }

let read_func ~v2 lx : Sir.func =
  Textio.expect lx "func";
  let fret = ty_of_string lx (Textio.token lx) in
  let nformals = Textio.int_tok lx in
  let fformals = read_ints lx nformals in
  let nlocals = Textio.int_tok lx in
  let flocals = read_ints lx nlocals in
  let nblocks = Textio.int_tok lx in
  let fname = Textio.token lx in
  let blocks = List.init nblocks (fun _ -> read_block ~v2 lx) in
  { Sir.fname; fret; fformals;
    fblocks = Vec.of_list Sir.dummy_bb blocks; flocals }

(** Parse what {!write} emits.  [specsir/1] input (no contracts, no
    deopt descriptors) is accepted and degrades soundly. *)
let read (s : string) : (Sir.prog, string) result =
  let lx = Textio.make s in
  try
    let v2 =
      match Textio.token lx with
      | w when w = version -> true
      | w when w = version_v1 -> false
      | w ->
        Textio.fail lx
          (Printf.sprintf "expected %S or %S, got %S" version version_v1 w)
    in
    let p = Sir.create_prog () in
    Textio.expect lx "vars";
    let nvars = Textio.int_tok lx in
    for vid = 0 to nvars - 1 do
      Textio.expect lx "v";
      let storage = storage_of_tag lx (Textio.token lx) in
      let vver = Textio.int_tok lx in
      let vorig = Textio.int_tok lx in
      let addr = Textio.bool_tok lx in
      let size = Textio.int_tok lx in
      let arr = Textio.bool_tok lx in
      let secret = if v2 then Textio.bool_tok lx else false in
      let ty = ty_of_string lx (Textio.token lx) in
      let elt = ty_of_string lx (Textio.token lx) in
      let vfunc = match Textio.token lx with "-" -> None | f -> Some f in
      let name = Textio.token lx in
      Vec.push p.Sir.syms.Symtab.vars
        { Symtab.vid; vname = name; vty = ty; vstorage = storage; vfunc;
          vsize = size; velt = elt; varray = arr; vaddr_taken = addr;
          vsecret = secret; vorig; vver }
    done;
    Textio.expect lx "globals";
    let ng = Textio.int_tok lx in
    p.Sir.globals <- read_ints lx ng;
    Textio.expect lx "sites";
    let nsites = Textio.int_tok lx in
    for _ = 1 to nsites do
      Textio.expect lx "site";
      let id = Textio.int_tok lx in
      let kind = site_kind_of_tag lx (Textio.token lx) in
      let line = Textio.int_tok lx in
      let func = Textio.token lx in
      Hashtbl.replace p.Sir.sites id
        { Sir.si_id = id; si_kind = kind; si_func = func; si_line = line }
    done;
    Textio.expect lx "next";
    p.Sir.next_site <- Textio.int_tok lx;
    p.Sir.next_stmt <- Textio.int_tok lx;
    p.Sir.next_label <- Textio.int_tok lx;
    Textio.expect lx "funcs";
    let nfuncs = Textio.int_tok lx in
    for _ = 1 to nfuncs do
      let f = read_func ~v2 lx in
      Hashtbl.replace p.Sir.funcs f.Sir.fname f;
      p.Sir.func_order <- p.Sir.func_order @ [ f.Sir.fname ]
    done;
    Textio.expect lx "end";
    if not (Textio.at_eof lx) then Textio.fail lx "trailing data after end";
    Ok p
  with Textio.Error msg -> Error msg
