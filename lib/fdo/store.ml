(** Persistent profile store ([specprof/1]): a versioned, deterministic
    on-disk format for the three profile kinds the instrumented
    interpreter collects — edge counts, per-site alias LOC sets with
    observation counts, and call-site mod/ref LOC sets (§3.2.1 of the
    paper) — plus the algebra that makes profiles durable, first-class
    artifacts:

    - {!merge} is commutative and associative with {!empty} as identity
      (canonical form compared by {!write}), so any number of train runs
      aggregate into one store in any order;
    - {!scale} / {!decay} down-weight old evidence (exponential decay:
      [decay ~lambda] before merging a fresh run);
    - {!bind} re-binds a store to a freshly lowered — possibly edited —
      program by stable {!Sitekey}s, reporting the match rate.  Unmatched
      sites carry no evidence into the bound {!Spec_prof.Profile.t}, so
      the speculation-flag assignment treats them conservatively
      (flag everything): a stale profile can only *forgo* speculation,
      never make a wrong program.

    Everything in the store is keyed symbolically (function names,
    variable names, reference shapes) — never by the dense integer ids of
    one particular compile — and counts are kept, not just LOC sets, so
    the χs degree-of-likeliness threshold keeps working on merged
    multi-run evidence.  The writer emits a canonical (sorted) rendering;
    the reader is a recursive-descent token reader in the style of
    {!Spec_driver.Bench_json}; no [Marshal] anywhere. *)

open Spec_ir
open Spec_prof

let version = "specprof/1"

(** A symbolic LOC: a named variable (qualified by its owning function;
    [None] for globals) or a heap object named by its allocation call
    site's key. *)
type sloc =
  | Svar of string option * string
  | Sheap of Sitekey.t

let compare_sloc a b =
  match a, b with
  | Svar (f1, n1), Svar (f2, n2) ->
    let c = Stdlib.compare f1 f2 in
    if c <> 0 then c else String.compare n1 n2
  | Sheap k1, Sheap k2 -> Sitekey.compare k1 k2
  | Svar _, Sheap _ -> -1
  | Sheap _, Svar _ -> 1

type site_entry = {
  e_key : Sitekey.t;
  e_count : int;                 (** dynamic executions of the site *)
  e_locs : (sloc * int) list;    (** observed LOC → observation count *)
}

type call_entry = {
  c_key : Sitekey.t;
  c_mod : sloc list;             (** LOCs the call subtree may modify *)
  c_ref : sloc list;             (** LOCs the call subtree may reference *)
}

(** The digest recorded for a function whose body differed between two
    merged stores: it can never match a real digest, so edge profiles of
    ambiguous functions are dropped at {!bind} time.  Absorbing, which
    keeps {!merge} associative. *)
let conflict_digest = "!"

type t = {
  runs : int;                    (** train runs aggregated in this store *)
  funcs : (string * string) list;       (** function → body digest (hex) *)
  entries : (string * int) list;        (** function → entry count *)
  edges : ((string * int * int) * int) list;
      (** (function, from bb, to bb) → traversal count *)
  sites : site_entry list;
  calls : call_entry list;
}

let empty =
  { runs = 0; funcs = []; entries = []; edges = []; sites = []; calls = [] }

(* ------------------------------------------------------------------ *)
(* Canonical form                                                      *)
(* ------------------------------------------------------------------ *)

let canon_site e =
  { e with
    e_locs = List.sort (fun (a, _) (b, _) -> compare_sloc a b) e.e_locs }

let canon_call c =
  { c with
    c_mod = List.sort_uniq compare_sloc c.c_mod;
    c_ref = List.sort_uniq compare_sloc c.c_ref }

(** Sort every section by key.  [write] always emits canonical form, so
    stores that are equal up to ordering serialize identically. *)
let canon t =
  { t with
    funcs = List.sort (fun (a, _) (b, _) -> String.compare a b) t.funcs;
    entries = List.sort (fun (a, _) (b, _) -> String.compare a b) t.entries;
    edges =
      List.sort (fun (a, _) (b, _) -> Stdlib.compare a b) t.edges;
    sites =
      List.sort (fun a b -> Sitekey.compare a.e_key b.e_key)
        (List.map canon_site t.sites);
    calls =
      List.sort (fun a b -> Sitekey.compare a.c_key b.c_key)
        (List.map canon_call t.calls) }

(* ------------------------------------------------------------------ *)
(* Extraction from a fresh profiling run                               *)
(* ------------------------------------------------------------------ *)

let sloc_of_loc syms ix (l : Loc.t) : sloc option =
  match l with
  | Loc.Lvar vid ->
    let v = Symtab.orig syms vid in
    Some (Svar (v.Symtab.vfunc, v.Symtab.vname))
  | Loc.Lheap site ->
    (match Sitekey.key_of_site ix site with
     | Some k -> Some (Sheap k)
     | None -> None)

(** Extract a store from one training run: [prog] must be the freshly
    lowered program the profile was collected on (its site ids give the
    keys their meaning). *)
let of_profile (prog : Sir.prog) (prof : Profile.t) : t =
  let ix = Sitekey.index prog in
  let syms = prog.Sir.syms in
  let sloc l = sloc_of_loc syms ix l in
  let funcs =
    List.filter_map
      (fun f ->
        match Sitekey.digest_of_func ix f with
        | Some d -> Some (f, d)
        | None -> None)
      prog.Sir.func_order
  in
  let entries =
    Hashtbl.fold (fun f c acc -> (f, c) :: acc) prof.Profile.edge.Profile.entries []
  in
  let edges =
    Hashtbl.fold (fun k c acc -> (k, c) :: acc) prof.Profile.edge.Profile.edges []
  in
  let sites =
    Hashtbl.fold
      (fun site count acc ->
        match Sitekey.key_of_site ix site with
        | None -> acc
        | Some key ->
          let locs =
            match Hashtbl.find_opt prof.Profile.alias.Profile.ref_locs site with
            | None -> []
            | Some counts ->
              Hashtbl.fold
                (fun l n acc ->
                  match sloc l with
                  | Some s -> (s, n) :: acc
                  | None -> acc)
                counts []
          in
          { e_key = key; e_count = count; e_locs = locs } :: acc)
      prof.Profile.alias.Profile.ref_counts []
  in
  let call_sites =
    let tbl = Hashtbl.create 64 in
    Hashtbl.iter (fun s _ -> Hashtbl.replace tbl s ())
      prof.Profile.alias.Profile.call_mod;
    Hashtbl.iter (fun s _ -> Hashtbl.replace tbl s ())
      prof.Profile.alias.Profile.call_ref;
    Hashtbl.fold (fun s () acc -> s :: acc) tbl []
  in
  let calls =
    List.filter_map
      (fun site ->
        match Sitekey.key_of_site ix site with
        | None -> None
        | Some key ->
          let locs_of tbl =
            match Hashtbl.find_opt tbl site with
            | None -> []
            | Some set ->
              Loc.Set.fold
                (fun l acc ->
                  match sloc l with Some s -> s :: acc | None -> acc)
                set []
          in
          Some
            { c_key = key;
              c_mod = locs_of prof.Profile.alias.Profile.call_mod;
              c_ref = locs_of prof.Profile.alias.Profile.call_ref })
      call_sites
  in
  canon { runs = 1; funcs; entries; edges; sites; calls }

(* ------------------------------------------------------------------ *)
(* Merge, scale, decay                                                 *)
(* ------------------------------------------------------------------ *)

let merge_assoc_counts merge_v xs ys =
  List.fold_left
    (fun acc (k, v) ->
      match List.assoc_opt k acc with
      | Some v0 -> (k, merge_v v0 v) :: List.remove_assoc k acc
      | None -> (k, v) :: acc)
    xs ys

(** Commutative/associative aggregation: counts sum, LOC sets union,
    function digests union with conflicting digests poisoned (so the
    ambiguous function's edges are dropped at bind time).  [empty] is the
    identity.  Equalities hold up to canonical form — compare with
    {!write} or {!equal}. *)
let merge (a : t) (b : t) : t =
  let funcs =
    merge_assoc_counts
      (fun d1 d2 -> if d1 = d2 then d1 else conflict_digest)
      a.funcs b.funcs
  in
  let entries = merge_assoc_counts ( + ) a.entries b.entries in
  let edges = merge_assoc_counts ( + ) a.edges b.edges in
  let sites =
    List.fold_left
      (fun acc (e : site_entry) ->
        match List.partition (fun x -> Sitekey.equal x.e_key e.e_key) acc with
        | [ x ], rest ->
          { e_key = e.e_key; e_count = x.e_count + e.e_count;
            e_locs = merge_assoc_counts ( + ) x.e_locs e.e_locs }
          :: rest
        | [], _ -> e :: acc
        | _ -> assert false)
      a.sites b.sites
  in
  let calls =
    List.fold_left
      (fun acc (c : call_entry) ->
        match List.partition (fun x -> Sitekey.equal x.c_key c.c_key) acc with
        | [ x ], rest ->
          { c_key = c.c_key; c_mod = x.c_mod @ c.c_mod;
            c_ref = x.c_ref @ c.c_ref }
          :: rest
        | [], _ -> c :: acc
        | _ -> assert false)
      a.calls b.calls
  in
  canon { runs = a.runs + b.runs; funcs; entries; edges; sites; calls }

let equal a b = canon a = canon b

let scale_count w c = int_of_float (Float.round (w *. float_of_int c))

(** Multiply every count by [w] (rounded to nearest).  LOC sets, function
    digests and the run counter are unchanged.  For [w <= 1] every count
    is monotonically non-increasing. *)
let scale w (t : t) : t =
  if w < 0. then invalid_arg "Store.scale: negative weight";
  { t with
    entries = List.map (fun (k, c) -> (k, scale_count w c)) t.entries;
    edges = List.map (fun (k, c) -> (k, scale_count w c)) t.edges;
    sites =
      List.map
        (fun e ->
          { e with
            e_count = scale_count w e.e_count;
            e_locs = List.map (fun (l, c) -> (l, scale_count w c)) e.e_locs })
        t.sites }

(** Exponential decay: down-weight [t]'s evidence by [lambda] before
    merging a fresh run, so [merge (decay ~lambda acc) fresh] keeps a
    moving average where a run observed [k] merges ago carries weight
    [lambda^k]. *)
let decay ~lambda (t : t) : t =
  if lambda < 0. || lambda > 1. then
    invalid_arg "Store.decay: lambda must be in [0, 1]";
  scale lambda t

(** Weighted merge of two stores. *)
let merge_weighted ~wa ~wb a b = merge (scale wa a) (scale wb b)

(* ------------------------------------------------------------------ *)
(* Profile drift                                                       *)
(* ------------------------------------------------------------------ *)

(* Every counted record of a store, flattened to a stable string key.
   Entry counts, edge counts, site execution counts and per-site LOC
   observation counts all participate: a shift in any of them is
   evidence the program now behaves differently from what the last
   compile saw. *)
let count_profile (t : t) : (string, int) Hashtbl.t =
  let tbl = Hashtbl.create 64 in
  let add k c = Hashtbl.replace tbl k (c + try Hashtbl.find tbl k with Not_found -> 0) in
  List.iter (fun (f, n) -> add ("e:" ^ f) n) t.entries;
  List.iter
    (fun ((f, s, d), n) -> add (Printf.sprintf "g:%s:%d:%d" f s d) n)
    t.edges;
  List.iter
    (fun e ->
      let k = Sitekey.to_string e.e_key in
      add ("s:" ^ k) e.e_count;
      List.iter
        (fun (l, n) ->
          let ls =
            match l with
            | Svar (Some f, v) -> "v:" ^ f ^ ":" ^ v
            | Svar (None, v) -> "v::" ^ v
            | Sheap hk -> "h:" ^ Sitekey.to_string hk
          in
          add ("l:" ^ k ^ ":" ^ ls) n)
        e.e_locs)
    t.sites;
  tbl

let distance a b =
  let ta = count_profile a and tb = count_profile b in
  let num = ref 0 and den = ref 0 in
  Hashtbl.iter
    (fun k ca ->
      let cb = try Hashtbl.find tb k with Not_found -> 0 in
      num := !num + abs (ca - cb);
      den := !den + max ca cb)
    ta;
  Hashtbl.iter
    (fun k cb ->
      if not (Hashtbl.mem ta k) then begin
        num := !num + cb;
        den := !den + cb
      end)
    tb;
  if !den = 0 then 0. else float_of_int !num /. float_of_int !den

(* ------------------------------------------------------------------ *)
(* Writer                                                              *)
(* ------------------------------------------------------------------ *)

let q = Textio.quote

let sloc_str = function
  | Svar (None, name) -> Printf.sprintf "v - %s" (q name)
  | Svar (Some f, name) -> Printf.sprintf "v %s %s" (q f) (q name)
  | Sheap k ->
    Printf.sprintf "h %d %s %s" k.Sitekey.sk_ord (q k.Sitekey.sk_func)
      (q k.Sitekey.sk_shape)

let key_str (k : Sitekey.t) =
  Printf.sprintf "%s %d %s %s" (Sitekey.kind_tag k.Sitekey.sk_kind)
    k.Sitekey.sk_ord (q k.Sitekey.sk_func) (q k.Sitekey.sk_shape)

(** Canonical rendering: sections in a fixed order, each sorted by key.
    Equal stores (up to ordering) produce byte-identical output, which is
    what {!digest} and the golden tests rely on. *)
let write (t : t) : string =
  let t = canon t in
  let buf = Buffer.create 4096 in
  Printf.bprintf buf "%s\n" version;
  Printf.bprintf buf "runs %d\n" t.runs;
  List.iter
    (fun (f, d) -> Printf.bprintf buf "func %s %s\n" (q d) (q f))
    t.funcs;
  List.iter
    (fun (f, c) -> Printf.bprintf buf "entry %d %s\n" c (q f))
    t.entries;
  List.iter
    (fun ((f, src, dst), c) ->
      Printf.bprintf buf "edge %d %d %d %s\n" src dst c (q f))
    t.edges;
  List.iter
    (fun e ->
      Printf.bprintf buf "site %s %d\n" (key_str e.e_key) e.e_count;
      List.iter
        (fun (l, c) -> Printf.bprintf buf "loc %d %s\n" c (sloc_str l))
        e.e_locs)
    t.sites;
  List.iter
    (fun c ->
      Printf.bprintf buf "callsite %s\n" (key_str c.c_key);
      List.iter (fun l -> Printf.bprintf buf "mod %s\n" (sloc_str l)) c.c_mod;
      List.iter (fun l -> Printf.bprintf buf "ref %s\n" (sloc_str l)) c.c_ref)
    t.calls;
  Buffer.add_string buf "end\n";
  Buffer.contents buf

let digest t = Digest.to_hex (Digest.string (write t))

(* Which of [shards] slices owns a unit's profile store.  A unit's
   whole store must live on one shard (binding evidence to a program
   needs every site key of the unit together), so the partition is by
   unit name, hashed through MD5 and folded with the same stable
   key-prefix rule the compile cache uses. *)
let shard_of_unit ~shards name =
  Cache.shard_of_key ~shards (Digest.to_hex (Digest.string name))

(* ------------------------------------------------------------------ *)
(* Reader                                                              *)
(* ------------------------------------------------------------------ *)

let read_key lx kind_tok =
  match Sitekey.kind_of_tag kind_tok with
  | None -> Textio.fail lx (Printf.sprintf "bad site kind %S" kind_tok)
  | Some kind ->
    let ord = Textio.int_tok lx in
    let func = Textio.token lx in
    let shape = Textio.token lx in
    { Sitekey.sk_func = func; sk_kind = kind; sk_shape = shape;
      sk_ord = ord }

let read_sloc lx =
  match Textio.token lx with
  | "v" ->
    let f = match Textio.token lx with "-" -> None | f -> Some f in
    let name = Textio.token lx in
    Svar (f, name)
  | "h" ->
    let ord = Textio.int_tok lx in
    let func = Textio.token lx in
    let shape = Textio.token lx in
    Sheap
      { Sitekey.sk_func = func; sk_kind = Sir.Kcall; sk_shape = shape;
        sk_ord = ord }
  | w -> Textio.fail lx (Printf.sprintf "expected v or h, got %S" w)

(** Parse a store.  Accepts exactly what {!write} emits (any section
    order/sorting, but the fixed token grammar and version header). *)
let read (s : string) : (t, string) result =
  let lx = Textio.make s in
  try
    Textio.expect lx version;
    Textio.expect lx "runs";
    let runs = Textio.int_tok lx in
    if runs < 0 then Textio.fail lx "negative run count";
    let funcs = ref [] and entries = ref [] and edges = ref [] in
    let sites = ref [] and calls = ref [] in
    let finished = ref false in
    while not !finished do
      match Textio.token lx with
      | "end" -> finished := true
      | "func" ->
        let d = Textio.token lx in
        let f = Textio.token lx in
        funcs := (f, d) :: !funcs
      | "entry" ->
        let c = Textio.int_tok lx in
        let f = Textio.token lx in
        entries := (f, c) :: !entries
      | "edge" ->
        let src = Textio.int_tok lx in
        let dst = Textio.int_tok lx in
        let c = Textio.int_tok lx in
        let f = Textio.token lx in
        edges := ((f, src, dst), c) :: !edges
      | "site" ->
        let key = read_key lx (Textio.token lx) in
        let count = Textio.int_tok lx in
        sites := { e_key = key; e_count = count; e_locs = [] } :: !sites
      | "loc" ->
        (match !sites with
         | [] -> Textio.fail lx "loc before any site"
         | e :: rest ->
           let c = Textio.int_tok lx in
           let l = read_sloc lx in
           sites := { e with e_locs = (l, c) :: e.e_locs } :: rest)
      | "callsite" ->
        let key = read_key lx (Textio.token lx) in
        calls := { c_key = key; c_mod = []; c_ref = [] } :: !calls
      | "mod" ->
        (match !calls with
         | [] -> Textio.fail lx "mod before any callsite"
         | c :: rest ->
           calls := { c with c_mod = read_sloc lx :: c.c_mod } :: rest)
      | "ref" ->
        (match !calls with
         | [] -> Textio.fail lx "ref before any callsite"
         | c :: rest ->
           calls := { c with c_ref = read_sloc lx :: c.c_ref } :: rest)
      | w -> Textio.fail lx (Printf.sprintf "unknown record %S" w)
    done;
    if not (Textio.at_eof lx) then Textio.fail lx "trailing data after end";
    Ok
      (canon
         { runs; funcs = List.rev !funcs; entries = List.rev !entries;
           edges = List.rev !edges;
           sites = List.rev_map (fun e -> { e with e_locs = List.rev e.e_locs }) !sites;
           calls =
             List.rev_map
               (fun c ->
                 { c with c_mod = List.rev c.c_mod;
                   c_ref = List.rev c.c_ref })
               !calls })
  with Textio.Error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Schema validation                                                   *)
(* ------------------------------------------------------------------ *)

(** Structural pinning beyond what the token grammar enforces: no
    negative counts, no duplicate keys within a section.  Together with
    the version-header check in {!read}, this is the drift detector the
    golden test runs against the committed store. *)
let validate (t : t) : (unit, string) result =
  let dup name keys cmp =
    let sorted = List.sort cmp keys in
    let rec go = function
      | a :: b :: _ when cmp a b = 0 ->
        Some (Printf.sprintf "duplicate %s key" name)
      | _ :: rest -> go rest
      | [] -> None
    in
    go sorted
  in
  let neg name c =
    if c < 0 then Some (Printf.sprintf "negative %s count" name) else None
  in
  let checks =
    [ neg "run" t.runs;
      dup "func" (List.map fst t.funcs) String.compare;
      dup "entry" (List.map fst t.entries) String.compare;
      dup "edge" (List.map fst t.edges) Stdlib.compare;
      dup "site" (List.map (fun e -> e.e_key) t.sites) Sitekey.compare;
      dup "callsite" (List.map (fun c -> c.c_key) t.calls) Sitekey.compare ]
    @ List.map (fun (_, c) -> neg "entry" c) t.entries
    @ List.map (fun (_, c) -> neg "edge" c) t.edges
    @ List.concat_map
        (fun e ->
          neg "site" e.e_count
          :: List.map (fun (_, c) -> neg "loc" c) e.e_locs)
        t.sites
  in
  match List.find_opt (fun o -> o <> None) checks with
  | Some (Some msg) -> Error msg
  | _ -> Ok ()

(** Parse and validate in one step (the golden-file check). *)
let check (s : string) : (unit, string) result =
  match read s with
  | Error msg -> Error ("parse error at " ^ msg)
  | Ok t -> validate t

(* ------------------------------------------------------------------ *)
(* Stale-profile matching: binding a store to a program                *)
(* ------------------------------------------------------------------ *)

type match_report = {
  mr_sites : int;            (** reference sites in the store *)
  mr_sites_matched : int;
  mr_calls : int;            (** call sites in the store *)
  mr_calls_matched : int;
  mr_locs : int;             (** LOC observations in the store *)
  mr_locs_matched : int;
  mr_funcs : int;            (** functions with a recorded body digest *)
  mr_funcs_matched : int;    (** digests matching the bound program *)
  mr_edges : int;            (** edge records in the store *)
  mr_edges_kept : int;       (** edges re-bound (digest-matching funcs) *)
}

(** Fraction of reference + call sites that re-bound; 1 for an empty
    store. *)
let match_rate r =
  let total = r.mr_sites + r.mr_calls in
  if total = 0 then 1.
  else float_of_int (r.mr_sites_matched + r.mr_calls_matched)
       /. float_of_int total

let report_to_string r =
  Printf.sprintf
    "sites %d/%d  calls %d/%d  locs %d/%d  funcs %d/%d  edges %d/%d  \
     match-rate %.1f%%"
    r.mr_sites_matched r.mr_sites r.mr_calls_matched r.mr_calls
    r.mr_locs_matched r.mr_locs r.mr_funcs_matched r.mr_funcs
    r.mr_edges_kept r.mr_edges
    (100. *. match_rate r)

(** Re-bind a store to a freshly lowered program.  Site entries re-bind
    by key; LOCs re-resolve by qualified variable name or allocation-site
    key; edge/entry counts re-bind only for functions whose body digest
    is unchanged.  Anything that fails to match is dropped — the bound
    profile then simply has no evidence there, and the flag assignment
    falls back to its conservative (flag-everything) path, which forgoes
    speculation but can never be unsound: speculation that *does* happen
    is still guarded by check loads. *)
let bind (t : t) (prog : Sir.prog) : Profile.t * match_report =
  let ix = Sitekey.index prog in
  let syms = prog.Sir.syms in
  let prof = Profile.create () in
  (* qualified-name → original variable id *)
  let vars : (string option * string, int) Hashtbl.t = Hashtbl.create 256 in
  Symtab.iter
    (fun (v : Symtab.var) ->
      if v.Symtab.vorig = v.Symtab.vid
         && v.Symtab.vstorage <> Symtab.Svirtual
         && v.Symtab.vstorage <> Symtab.Stemp
      then begin
        let key = (v.Symtab.vfunc, v.Symtab.vname) in
        if not (Hashtbl.mem vars key) then Hashtbl.add vars key v.Symtab.vid
      end)
    syms;
  let locs_total = ref 0 and locs_matched = ref 0 in
  let resolve_sloc (l : sloc) : Loc.t option =
    incr locs_total;
    let r =
      match l with
      | Svar (f, name) ->
        (match Hashtbl.find_opt vars (f, name) with
         | Some vid -> Some (Loc.Lvar vid)
         | None -> None)
      | Sheap k ->
        (match Sitekey.find ix k with
         | Some site -> Some (Loc.Lheap site)
         | None -> None)
    in
    if r <> None then incr locs_matched;
    r
  in
  let sites_matched = ref 0 in
  List.iter
    (fun e ->
      if e.e_count > 0 then
        match Sitekey.find ix e.e_key with
        | None -> ()
        | Some site ->
          incr sites_matched;
          Hashtbl.replace prof.Profile.alias.Profile.ref_counts site
            e.e_count;
          let live =
            List.filter_map
              (fun (l, c) ->
                if c <= 0 then None
                else
                  match resolve_sloc l with
                  | Some loc -> Some (loc, c)
                  | None -> None)
              (List.filter (fun (_, c) -> c > 0) e.e_locs)
          in
          if live <> [] then begin
            let counts = Hashtbl.create (List.length live) in
            List.iter (fun (loc, c) -> Hashtbl.replace counts loc c) live;
            Hashtbl.replace prof.Profile.alias.Profile.ref_locs site counts
          end)
    t.sites;
  let calls_matched = ref 0 in
  List.iter
    (fun c ->
      match Sitekey.find ix c.c_key with
      | None -> ()
      | Some site ->
        incr calls_matched;
        let set locs =
          List.fold_left
            (fun acc l ->
              match resolve_sloc l with
              | Some loc -> Loc.Set.add loc acc
              | None -> acc)
            Loc.Set.empty locs
        in
        Hashtbl.replace prof.Profile.alias.Profile.call_mod site
          (set c.c_mod);
        Hashtbl.replace prof.Profile.alias.Profile.call_ref site
          (set c.c_ref))
    t.calls;
  (* edge profile: only for functions whose lowering is provably the one
     the block ids were recorded against *)
  let func_ok =
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun (f, d) ->
        match Sitekey.digest_of_func ix f with
        | Some d' when d = d' && d <> conflict_digest ->
          Hashtbl.replace tbl f ()
        | _ -> ())
      t.funcs;
    tbl
  in
  let edges_kept = ref 0 in
  List.iter
    (fun ((f, src, dst), c) ->
      if Hashtbl.mem func_ok f then begin
        incr edges_kept;
        Hashtbl.replace prof.Profile.edge.Profile.edges (f, src, dst) c
      end)
    t.edges;
  List.iter
    (fun (f, c) ->
      if Hashtbl.mem func_ok f then
        Hashtbl.replace prof.Profile.edge.Profile.entries f c)
    t.entries;
  let report =
    { mr_sites = List.length t.sites;
      mr_sites_matched = !sites_matched;
      mr_calls = List.length t.calls;
      mr_calls_matched = !calls_matched;
      mr_locs = !locs_total;
      mr_locs_matched = !locs_matched;
      mr_funcs = List.length t.funcs;
      mr_funcs_matched = Hashtbl.length func_ok;
      mr_edges = List.length t.edges;
      mr_edges_kept = !edges_kept }
  in
  (prof, report)

(* ------------------------------------------------------------------ *)
(* Summary (speccc profile show)                                       *)
(* ------------------------------------------------------------------ *)

let summary (t : t) : string =
  let nlocs =
    List.fold_left (fun acc e -> acc + List.length e.e_locs) 0 t.sites
  in
  Printf.sprintf
    "%s: %d run%s, %d function%s, %d edges, %d reference sites \
     (%d loc observations), %d call sites"
    version t.runs
    (if t.runs = 1 then "" else "s")
    (List.length t.funcs)
    (if List.length t.funcs = 1 then "" else "s")
    (List.length t.edges) (List.length t.sites) nlocs (List.length t.calls)

(* ------------------------------------------------------------------ *)
(* File I/O                                                            *)
(* ------------------------------------------------------------------ *)

let save path t =
  let oc = open_out_bin path in
  output_string oc (write t);
  close_out oc

let load path : (t, string) result =
  match
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  with
  | s -> read s
  | exception Sys_error msg -> Error msg
