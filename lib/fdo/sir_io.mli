(** Full-fidelity SIR serialization ([specsir/1]) for the compile
    cache.  [read] of [write] reconstructs the program exactly —
    variable table (including SSA versions and temporaries), sites,
    statement ids, speculation marks, check links, block frequencies and
    predecessor lists — so a cache hit is indistinguishable from a fresh
    compile, down to pretty-printed output. *)

val version : string

(** Deterministic: equal programs serialize to byte-identical strings. *)
val write : Spec_ir.Sir.prog -> string

(** Parse what {!write} emits; [Error] describes the first offending
    line (corrupt artifacts are treated as cache misses upstream). *)
val read : string -> (Spec_ir.Sir.prog, string) result
