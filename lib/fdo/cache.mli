(** Content-addressed compile cache: a blob store keyed by hex digests
    the caller computes over every compile input (source, pipeline
    variant, merged-profile digest, schema version).  Atomic writes,
    corrupt/missing entries read as misses, optional LRU entry cap. *)

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable stores : int;
  mutable evictions : int;
}

type t

(** Open (creating if needed) a cache directory.  [max_entries] caps the
    number of artifacts; the oldest by mtime are evicted on store. *)
val create : ?max_entries:int -> string -> t

val stats : t -> stats
val stats_to_string : t -> string

(** Look up an artifact; counts a hit or miss, refreshes mtime on hit. *)
val find : t -> string -> string option

(** Store an artifact under a key (atomic; then evicts past the cap). *)
val store : t -> string -> string -> unit

(** Number of artifacts currently on disk. *)
val length : t -> int

(** Stable key-prefix partition: which of [shards] slices owns a hex
    key.  Deterministic across restarts (folds the leading hex digits;
    never [Hashtbl.hash]), total over valid keys, and uniform enough
    for MD5 keys.  The compile service routes cache-keyed requests with
    this. *)
val shard_of_key : shards:int -> string -> int

(** [shard_dir dir i] is shard [i]'s slice of cache directory [dir]
    ([dir/shard-<i>]); creates [dir] itself on demand so
    [create (shard_dir dir i)] works on a fresh path.  Distinct shards
    get disjoint directories, so their artifact sets are disjoint by
    construction. *)
val shard_dir : string -> int -> string
