(** Token-level reader/writer helpers shared by the FDO on-disk formats
    ([specprof/1] profile stores, [specsir/1] cached artifacts).

    Both formats are deterministic whitespace-separated token streams: a
    token is either a bare word (no whitespace, never starts with ['"'])
    or a quoted string with a fixed escape set.  The reader is a small
    hand-rolled lexer in the style of {!Spec_driver.Bench_json}'s JSON
    reader — no external dependency, and it accepts exactly what the
    writers produce. *)

exception Error of string

(* ------------------------------------------------------------------ *)
(* Writing                                                             *)
(* ------------------------------------------------------------------ *)

let hex = "0123456789abcdef"

(* Quote a string: double-quoted with backslash escapes for the quote,
   the backslash, newline, tab, and \xHH for other control or non-ASCII
   bytes.  Deterministic; the only quoting the reader accepts. *)
let quote s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 || Char.code c >= 0x7f ->
        Buffer.add_string buf "\\x";
        Buffer.add_char buf hex.[Char.code c lsr 4];
        Buffer.add_char buf hex.[Char.code c land 0xf]
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Reading                                                             *)
(* ------------------------------------------------------------------ *)

type lexer = { src : string; mutable pos : int; mutable line : int }

let make src = { src; pos = 0; line = 1 }

let fail lx msg =
  raise (Error (Printf.sprintf "line %d: %s" lx.line msg))

let rec skip_ws lx =
  if lx.pos < String.length lx.src then
    match lx.src.[lx.pos] with
    | '\n' -> lx.line <- lx.line + 1; lx.pos <- lx.pos + 1; skip_ws lx
    | ' ' | '\t' | '\r' -> lx.pos <- lx.pos + 1; skip_ws lx
    | _ -> ()

let at_eof lx =
  skip_ws lx;
  lx.pos >= String.length lx.src

let hex_val lx c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> fail lx "bad hex digit in \\x escape"

let quoted_body lx =
  (* positioned just after the opening quote *)
  let n = String.length lx.src in
  let buf = Buffer.create 16 in
  let rec go () =
    if lx.pos >= n then fail lx "unterminated string";
    match lx.src.[lx.pos] with
    | '"' -> lx.pos <- lx.pos + 1
    | '\\' ->
      lx.pos <- lx.pos + 1;
      if lx.pos >= n then fail lx "truncated escape";
      (match lx.src.[lx.pos] with
       | '"' -> Buffer.add_char buf '"'; lx.pos <- lx.pos + 1
       | '\\' -> Buffer.add_char buf '\\'; lx.pos <- lx.pos + 1
       | 'n' -> Buffer.add_char buf '\n'; lx.pos <- lx.pos + 1
       | 't' -> Buffer.add_char buf '\t'; lx.pos <- lx.pos + 1
       | 'x' ->
         if lx.pos + 2 >= n then fail lx "truncated \\x escape";
         let h = hex_val lx lx.src.[lx.pos + 1] in
         let l = hex_val lx lx.src.[lx.pos + 2] in
         Buffer.add_char buf (Char.chr ((h lsl 4) lor l));
         lx.pos <- lx.pos + 3
       | _ -> fail lx "bad escape");
      go ()
    | '\n' -> fail lx "newline in string"
    | c -> Buffer.add_char buf c; lx.pos <- lx.pos + 1; go ()
  in
  go ();
  Buffer.contents buf

(** Next token: a bare word or the contents of a quoted string. *)
let token lx =
  skip_ws lx;
  let n = String.length lx.src in
  if lx.pos >= n then fail lx "unexpected end of input";
  if lx.src.[lx.pos] = '"' then begin
    lx.pos <- lx.pos + 1;
    quoted_body lx
  end
  else begin
    let start = lx.pos in
    while
      lx.pos < n
      && (match lx.src.[lx.pos] with
          | ' ' | '\t' | '\r' | '\n' -> false
          | _ -> true)
    do
      lx.pos <- lx.pos + 1
    done;
    String.sub lx.src start (lx.pos - start)
  end

(** Next token, which must equal [w]. *)
let expect lx w =
  let t = token lx in
  if t <> w then fail lx (Printf.sprintf "expected %S, got %S" w t)

let int_tok lx =
  let t = token lx in
  match int_of_string_opt t with
  | Some i -> i
  | None -> fail lx (Printf.sprintf "expected integer, got %S" t)

(** Floats are written with [%h] (hex-float) so they round-trip exactly. *)
let float_tok lx =
  let t = token lx in
  match float_of_string_opt t with
  | Some f -> f
  | None -> fail lx (Printf.sprintf "expected float, got %S" t)

let bool_tok lx =
  match token lx with
  | "0" -> false
  | "1" -> true
  | t -> fail lx (Printf.sprintf "expected 0 or 1, got %S" t)
