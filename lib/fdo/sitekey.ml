(** Stable keys for static memory-reference and call sites.

    The profiler keys its measurements on dense integer site ids assigned
    in lowering order ({!Spec_ir.Sir.new_site}), which shift whenever the
    source is edited — adding one statement renumbers every later site in
    the program.  A persisted profile therefore cannot store raw ids; it
    stores *site keys* instead:

      (function name, site kind, reference shape, occurrence ordinal)

    The reference shape is a canonical rendering of the address expression
    (callee name and arity for call sites) using original variable
    *names*, never ids, so it survives recompilation and edits elsewhere
    in the program.  The ordinal disambiguates textually identical
    references inside one function (the k-th [*(p + i)] iload of [f], in
    layout order).  A key matches a recompiled — possibly edited — source
    exactly when the function still contains a same-kind reference of the
    same shape at the same ordinal; everything else degrades to
    "no profile evidence", which only forgoes speculation (see
    {!Spec_spec.Flags.assign}).

    The per-function body digest serves the coarser control-flow side:
    edge profiles are keyed on basic-block ids, which have no stable
    textual identity, so stored edges re-bind only when the whole
    function body is unchanged (same digest ⇒ same lowering ⇒ same block
    ids). *)

open Spec_ir

type t = {
  sk_func : string;        (** enclosing function name *)
  sk_kind : Sir.site_kind; (** iload / istore / call *)
  sk_shape : string;       (** canonical reference shape *)
  sk_ord : int;            (** occurrence ordinal within (func, kind, shape) *)
}

let kind_tag = function
  | Sir.Kiload -> "ld"
  | Sir.Kistore -> "st"
  | Sir.Kcall -> "call"

let kind_of_tag = function
  | "ld" -> Some Sir.Kiload
  | "st" -> Some Sir.Kistore
  | "call" -> Some Sir.Kcall
  | _ -> None

let compare (a : t) (b : t) =
  let c = String.compare a.sk_func b.sk_func in
  if c <> 0 then c
  else
    let c = Stdlib.compare a.sk_kind b.sk_kind in
    if c <> 0 then c
    else
      let c = String.compare a.sk_shape b.sk_shape in
      if c <> 0 then c else Stdlib.compare a.sk_ord b.sk_ord

let equal a b = compare a b = 0

let to_string k =
  Printf.sprintf "%s:%s#%d %s" (kind_tag k.sk_kind) k.sk_func k.sk_ord
    k.sk_shape

(* ------------------------------------------------------------------ *)
(* Canonical shapes                                                    *)
(* ------------------------------------------------------------------ *)

let ty_tag = function
  | Types.Tint -> "i"
  | Types.Tflt -> "f"
  | Types.Tvoid -> "v"
  | Types.Tptr _ -> "p"

let rec ty_shape = function
  | Types.Tptr t -> "p" ^ ty_shape t
  | t -> ty_tag t

let binop_tag = function
  | Sir.Add -> "+" | Sir.Sub -> "-" | Sir.Mul -> "*" | Sir.Div -> "/"
  | Sir.Rem -> "%" | Sir.Lt -> "<" | Sir.Le -> "<=" | Sir.Gt -> ">"
  | Sir.Ge -> ">=" | Sir.Eq -> "==" | Sir.Ne -> "!=" | Sir.Band -> "&"
  | Sir.Bor -> "|" | Sir.Bxor -> "^" | Sir.Shl -> "<<" | Sir.Shr -> ">>"

let unop_tag = function
  | Sir.Neg -> "neg" | Sir.Lnot -> "not" | Sir.I2f -> "i2f" | Sir.F2i -> "f2i"

(** Canonical shape of an expression: variable names (of the original,
    un-versioned variable), no site ids, fully parenthesized.  Two
    references with equal shapes compute the same address from the same
    named inputs — the stable identity an edited source preserves. *)
let rec expr_shape syms (e : Sir.expr) =
  match e with
  | Sir.Const (Sir.Cint i) -> string_of_int i
  | Sir.Const (Sir.Cflt f) -> Printf.sprintf "%h" f
  | Sir.Lod v -> (Symtab.orig syms v).Symtab.vname
  | Sir.Ilod (t, a, _) ->
    Printf.sprintf "*%s(%s)" (ty_shape t) (expr_shape syms a)
  | Sir.Lda v -> "&" ^ (Symtab.orig syms v).Symtab.vname
  | Sir.Unop (o, _, e) ->
    Printf.sprintf "%s(%s)" (unop_tag o) (expr_shape syms e)
  | Sir.Binop (o, _, a, b) ->
    Printf.sprintf "(%s%s%s)" (expr_shape syms a) (binop_tag o)
      (expr_shape syms b)

(* ------------------------------------------------------------------ *)
(* Indexing a program                                                  *)
(* ------------------------------------------------------------------ *)

type index = {
  by_key : (t, int) Hashtbl.t;       (** key → current site id *)
  by_site : (int, t) Hashtbl.t;      (** current site id → key *)
  func_digest : (string, string) Hashtbl.t;
      (** function name → body digest (hex), for edge-profile rebinding *)
}

let find ix key = Hashtbl.find_opt ix.by_key key
let key_of_site ix site = Hashtbl.find_opt ix.by_site site
let digest_of_func ix f = Hashtbl.find_opt ix.func_digest f

(** Canonical body rendering for the per-function digest: every statement
    kind, expression shape and terminator, in layout order.  Site ids and
    variable ids are excluded, so the digest is invariant under edits to
    *other* functions. *)
let func_body_string syms (f : Sir.func) =
  let buf = Buffer.create 1024 in
  let shape e = Buffer.add_string buf (expr_shape syms e) in
  Vec.iter
    (fun (b : Sir.bb) ->
      Printf.bprintf buf "b%d:" b.Sir.bid;
      List.iter
        (fun (s : Sir.stmt) ->
          (match s.Sir.kind with
           | Sir.Stid (v, e) ->
             Printf.bprintf buf "tid %s=" (Symtab.orig syms v).Symtab.vname;
             shape e
           | Sir.Istr (t, a, v, _) ->
             Printf.bprintf buf "istr %s " (ty_shape t);
             shape a;
             Buffer.add_string buf "<-";
             shape v
           | Sir.Call c ->
             Printf.bprintf buf "call %s/%d" c.Sir.callee
               (List.length c.Sir.args);
             List.iter (fun a -> Buffer.add_char buf ' '; shape a) c.Sir.args
           | Sir.Snop -> Buffer.add_string buf "nop");
          Buffer.add_char buf ';')
        b.Sir.stmts;
      (match b.Sir.term with
       | Sir.Tgoto t -> Printf.bprintf buf "goto %d" t
       | Sir.Tcond (e, t, el) ->
         Buffer.add_string buf "cond ";
         shape e;
         Printf.bprintf buf " %d %d" t el
       | Sir.Tret None -> Buffer.add_string buf "ret"
       | Sir.Tret (Some e) -> Buffer.add_string buf "ret "; shape e);
      Buffer.add_char buf '\n')
    f.Sir.fblocks;
  Buffer.contents buf

(** Build the key index of a (freshly lowered, unoptimized) program.
    Sites are visited in layout order — functions in [func_order], blocks
    by id, statements in list order, expressions left-to-right — so
    ordinals are deterministic and identical across recompiles of the
    same source. *)
let index (p : Sir.prog) : index =
  let syms = p.Sir.syms in
  let ix =
    { by_key = Hashtbl.create 256; by_site = Hashtbl.create 256;
      func_digest = Hashtbl.create 16 }
  in
  let ords : (string * Sir.site_kind * string, int) Hashtbl.t =
    Hashtbl.create 256
  in
  let add fname kind shape site =
    let okey = (fname, kind, shape) in
    let ord =
      match Hashtbl.find_opt ords okey with Some n -> n | None -> 0
    in
    Hashtbl.replace ords okey (ord + 1);
    let key = { sk_func = fname; sk_kind = kind; sk_shape = shape;
                sk_ord = ord } in
    Hashtbl.replace ix.by_key key site;
    Hashtbl.replace ix.by_site site key
  in
  Sir.iter_funcs
    (fun f ->
      let fname = f.Sir.fname in
      (* expression iloads, outermost-first left-to-right *)
      let rec expr_sites (e : Sir.expr) =
        match e with
        | Sir.Const _ | Sir.Lod _ | Sir.Lda _ -> ()
        | Sir.Ilod (_, a, site) ->
          add fname Sir.Kiload (expr_shape syms a) site;
          expr_sites a
        | Sir.Unop (_, _, x) -> expr_sites x
        | Sir.Binop (_, _, a, b) -> expr_sites a; expr_sites b
      in
      Vec.iter
        (fun (b : Sir.bb) ->
          List.iter
            (fun (s : Sir.stmt) ->
              (match s.Sir.kind with
               | Sir.Istr (_, addr, _, site) ->
                 add fname Sir.Kistore (expr_shape syms addr) site
               | Sir.Call c ->
                 add fname Sir.Kcall
                   (Printf.sprintf "%s/%d" c.Sir.callee
                      (List.length c.Sir.args))
                   c.Sir.csite
               | Sir.Stid _ | Sir.Snop -> ());
              List.iter expr_sites (Sir.stmt_exprs s.Sir.kind))
            b.Sir.stmts;
          List.iter expr_sites (Sir.term_exprs b.Sir.term))
        f.Sir.fblocks;
      Hashtbl.replace ix.func_digest fname
        (Digest.to_hex (Digest.string (func_body_string syms f))))
    p;
  ix
