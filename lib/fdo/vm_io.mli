(** Bytecode serialization ([specvm/1]) for the content-addressed
    compile cache.

    A [specart/3] artifact stores the optimized SIR {e and} the
    bytecode {!Spec_prof.Vmcode} lowered from it, so a cache hit hands
    the vm engine a ready-to-dispatch program with no lowering pass.
    Same deterministic token-stream discipline as {!Sir_io}: no
    [Marshal], so artifacts are stable across OCaml versions and safe
    to inspect.

    The source program is deliberately {e not} part of the format — the
    artifact's own SIR section supplies it at load time ({!of_text}'s
    [src]), which keeps the two sections from ever disagreeing. *)

val version : string

(** Serialize the bytecode (without the source program — the cache
    artifact stores the optimized SIR alongside it). *)
val to_text : Spec_prof.Vmcode.program -> string

(** Parse serialized bytecode back, wiring [src] in as the program the
    code was lowered from.  Total: malformed input is [Error _]. *)
val of_text :
  src:Spec_ir.Sir.prog -> string ->
  (Spec_prof.Vmcode.program, string) Stdlib.result
