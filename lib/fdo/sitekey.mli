(** Stable keys for static memory-reference and call sites: (function
    name, site kind, canonical reference shape, occurrence ordinal).
    Raw site ids shift whenever the source is edited; keys survive any
    edit that leaves the reference itself intact, which is what lets a
    persisted profile re-bind to a newer source ({!Store.bind}). *)

type t = {
  sk_func : string;                  (** enclosing function name *)
  sk_kind : Spec_ir.Sir.site_kind;   (** iload / istore / call *)
  sk_shape : string;                 (** canonical reference shape *)
  sk_ord : int;   (** occurrence ordinal within (func, kind, shape) *)
}

val compare : t -> t -> int
val equal : t -> t -> bool
val to_string : t -> string

(** Round-trippable tag for a site kind ("ld" / "st" / "call"). *)
val kind_tag : Spec_ir.Sir.site_kind -> string
val kind_of_tag : string -> Spec_ir.Sir.site_kind option

(** Operator spellings, shared with the [specsir/1] serializer. *)
val binop_tag : Spec_ir.Sir.binop -> string
val unop_tag : Spec_ir.Sir.unop -> string

(** Canonical shape of an address expression: original variable names,
    no site or variable ids. *)
val expr_shape : Spec_ir.Symtab.t -> Spec_ir.Sir.expr -> string

(** Site-key index of a freshly lowered (unoptimized) program. *)
type index

(** Build the index: deterministic layout-order traversal, so ordinals
    are identical across recompiles of the same source. *)
val index : Spec_ir.Sir.prog -> index

val find : index -> t -> int option
val key_of_site : index -> int -> t option

(** Hex digest of the function's canonical body rendering; equal digests
    mean equal lowering (same block ids), which gates edge-profile
    rebinding. *)
val digest_of_func : index -> string -> string option
