(** Content-addressed compile cache.

    A generic blob store: keys are hex digests computed by the caller
    (the driver hashes source text, pipeline variant, merged-profile
    digest and compiler schema version — see [Pipeline.cache_key]); the
    value is an opaque artifact string ([specart/1], assembled by the
    driver from a serialized program plus its stats).  Content
    addressing makes invalidation automatic: any input change produces a
    different key, and stale entries are simply never looked up again
    until evicted.

    Writes are atomic (temp file + rename) so a crashed compile never
    leaves a truncated artifact behind; unreadable entries are treated
    as misses.  An optional entry cap evicts least-recently-used
    artifacts by mtime — lookups touch their entry's mtime. *)

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable stores : int;
  mutable evictions : int;
}

type t = {
  dir : string;
  max_entries : int option;
  stats : stats;
}

let create ?max_entries dir =
  (match max_entries with
   | Some n when n < 1 -> invalid_arg "Cache.create: max_entries < 1"
   | _ -> ());
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755
  else if not (Sys.is_directory dir) then
    invalid_arg (Printf.sprintf "Cache.create: %s is not a directory" dir);
  { dir; max_entries;
    stats = { hits = 0; misses = 0; stores = 0; evictions = 0 } }

let stats t = t.stats

let valid_key k =
  k <> ""
  && String.for_all
       (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false)
       k

let path_of t key =
  if not (valid_key key) then invalid_arg "Cache.path_of: malformed key";
  Filename.concat t.dir (key ^ ".sart")

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(** Look up [key]; a hit refreshes the entry's mtime so LRU eviction
    spares it. *)
let find t key =
  let path = path_of t key in
  match read_file path with
  | data ->
    t.stats.hits <- t.stats.hits + 1;
    (try Unix.utimes path 0. 0. with Unix.Unix_error _ -> ());
    Some data
  | exception Sys_error _ ->
    t.stats.misses <- t.stats.misses + 1;
    None

let entries t =
  Sys.readdir t.dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".sart")

(* Drop oldest entries (by mtime) until we are back under the cap.
   [keep] is the key just written, never evicted. *)
let evict t ~keep =
  match t.max_entries with
  | None -> ()
  | Some cap ->
    let aged =
      List.filter_map
        (fun f ->
          let p = Filename.concat t.dir f in
          match Unix.stat p with
          | st -> Some (st.Unix.st_mtime, f, p)
          | exception Unix.Unix_error _ -> None)
        (entries t)
      |> List.sort compare
    in
    let excess = List.length aged - cap in
    if excess > 0 then begin
      let dropped = ref 0 in
      List.iter
        (fun (_, f, p) ->
          if !dropped < excess && f <> keep ^ ".sart" then begin
            (try Sys.remove p with Sys_error _ -> ());
            t.stats.evictions <- t.stats.evictions + 1;
            incr dropped
          end)
        aged
    end

let store t key data =
  let path = path_of t key in
  let tmp =
    Filename.concat t.dir
      (Printf.sprintf ".tmp.%d.%s" (Unix.getpid ()) key)
  in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc data);
  Sys.rename tmp path;
  t.stats.stores <- t.stats.stores + 1;
  evict t ~keep:key

let length t = List.length (entries t)

(* ---- sharding helpers ---- *)

(* Key-prefix partition: fold the leading hex digits so every key maps
   to a stable shard index — the same key lands on the same shard
   across daemon restarts (no dependence on [Hashtbl.hash] internals).
   Eight digits are enough to spread MD5 keys evenly; shorter keys
   fold what they have. *)
let shard_of_key ~shards key =
  if shards < 1 then invalid_arg "Cache.shard_of_key: shards < 1";
  if not (valid_key key) then
    invalid_arg "Cache.shard_of_key: malformed key";
  let n = min 8 (String.length key) in
  let acc = ref 0 in
  for i = 0 to n - 1 do
    let v =
      match key.[i] with
      | '0' .. '9' as c -> Char.code c - Char.code '0'
      | c -> Char.code c - Char.code 'a' + 10
    in
    acc := ((!acc * 16) + v) mod shards
  done;
  !acc

(* A shard's slice of a cache directory: [dir/shard-<i>].  The parent
   directory is created on demand so [create (shard_dir dir i)] works
   on a fresh path. *)
let shard_dir dir i =
  if i < 0 then invalid_arg "Cache.shard_dir: negative shard";
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755
  else if not (Sys.is_directory dir) then
    invalid_arg (Printf.sprintf "Cache.shard_dir: %s is not a directory" dir);
  Filename.concat dir (Printf.sprintf "shard-%d" i)

let stats_to_string t =
  Printf.sprintf "hits %d  misses %d  stores %d  evictions %d"
    t.stats.hits t.stats.misses t.stats.stores t.stats.evictions
