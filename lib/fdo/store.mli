(** Persistent profile store ([specprof/1]): versioned deterministic
    serialization of edge, alias and call mod/ref profiles keyed by
    stable {!Sitekey}s; commutative/associative merge with optional
    exponential decay; stale-profile matching against an edited source.
    No [Marshal]. *)

val version : string

(** Symbolic LOC: named variable (owning function, [None] for globals)
    or heap object named by its allocation call site's key. *)
type sloc =
  | Svar of string option * string
  | Sheap of Sitekey.t

val compare_sloc : sloc -> sloc -> int

type site_entry = {
  e_key : Sitekey.t;
  e_count : int;                 (** dynamic executions of the site *)
  e_locs : (sloc * int) list;    (** observed LOC → observation count *)
}

type call_entry = {
  c_key : Sitekey.t;
  c_mod : sloc list;
  c_ref : sloc list;
}

type t = {
  runs : int;                    (** train runs aggregated in this store *)
  funcs : (string * string) list;      (** function → body digest (hex) *)
  entries : (string * int) list;       (** function → entry count *)
  edges : ((string * int * int) * int) list;
  sites : site_entry list;
  calls : call_entry list;
}

(** Identity of {!merge}. *)
val empty : t

(** Sort every section by key; [write] applies it automatically. *)
val canon : t -> t

(** Extract a store from one training run; [prog] must be the freshly
    lowered program the profile was collected on. *)
val of_profile : Spec_ir.Sir.prog -> Spec_prof.Profile.t -> t

(** Commutative and associative up to canonical form; counts sum, LOC
    sets union, conflicting function digests are poisoned (their edge
    profiles drop at bind time). *)
val merge : t -> t -> t

(** Structural equality up to canonical form. *)
val equal : t -> t -> bool

(** Multiply every count by the weight (rounded to nearest); counts are
    non-increasing for weights [<= 1]. *)
val scale : float -> t -> t

(** [decay ~lambda t = scale lambda t] with [lambda] checked to lie in
    [0, 1]: down-weight old evidence before merging a fresh run. *)
val decay : lambda:float -> t -> t

val merge_weighted : wa:float -> wb:float -> t -> t -> t

(** Normalized drift between two stores' evidence, in [0, 1]: the L1
    distance over every counted record (entry, edge, site and LOC
    observation counts) divided by the mass of the pointwise maximum.
    0 for equal evidence, 1 for disjoint evidence; the compile service
    recompiles a unit when the accumulated store drifts past a
    threshold from the snapshot its current artifact was compiled
    against. *)
val distance : t -> t -> float

(** Canonical rendering; byte-identical for equal stores. *)
val write : t -> string

(** MD5 hex of {!write} — the profile component of compile-cache keys. *)
val digest : t -> string

(** Stable partition of compilation units across [shards] shards: MD5
    of the unit name folded with {!Cache.shard_of_key}'s prefix rule.
    A unit's whole store lives on one shard ({!bind} needs every site
    key of the unit together); deterministic across restarts. *)
val shard_of_unit : shards:int -> string -> int

(** Parse what {!write} emits; rejects unknown versions and records. *)
val read : string -> (t, string) result

(** Structural pinning: non-negative counts, no duplicate keys. *)
val validate : t -> (unit, string) result

(** Parse + validate (the golden-file drift check). *)
val check : string -> (unit, string) result

type match_report = {
  mr_sites : int;
  mr_sites_matched : int;
  mr_calls : int;
  mr_calls_matched : int;
  mr_locs : int;
  mr_locs_matched : int;
  mr_funcs : int;
  mr_funcs_matched : int;
  mr_edges : int;
  mr_edges_kept : int;
}

(** Fraction of reference + call sites that re-bound; 1 for an empty
    store. *)
val match_rate : match_report -> float

val report_to_string : match_report -> string

(** Re-bind a store to a freshly lowered (possibly edited) program by
    site keys.  Unmatched sites/LOCs are dropped: the bound profile has
    no evidence there, so flag assignment is conservative — a stale
    profile only forgoes speculation, never changes program output. *)
val bind : t -> Spec_ir.Sir.prog -> Spec_prof.Profile.t * match_report

(** One-line summary for [speccc profile show]. *)
val summary : t -> string

val save : string -> t -> unit
val load : string -> (t, string) result
