(** SPEC2000-like workload kernels.

    One kernel per benchmark in the paper's evaluation (§5.2), written in
    the mini-C frontend.  Each captures the memory-aliasing structure the
    paper discusses for that program: what the compiler cannot disambiguate
    (pointers fetched from pointer tables, as with C's multi-level arrays),
    what actually aliases at runtime, and where the redundant loads are.

    Every kernel comes with a *train* and a *ref* input (sizes and seeds).
    Profiles are collected on the train input and programs are measured on
    the ref input, mirroring the paper's methodology — and creating the
    input-sensitivity that produces real mis-speculation (notably in the
    gzip and parser kernels, whose ref inputs exhibit aliasing the train
    inputs never show).

    The pointer-table idiom ([float* fpt\[k\]]; kernels re-fetch their row
    pointers from it) is what makes the baseline conservative: all pointers
    fetched from one table fall into one Steensgaard class, exactly like
    the [double**] rows of equake's [smvp] may alias its output vector. *)

type params = { size : int; reps : int; seed : int }

type workload = {
  name : string;
  description : string;
  fp : bool;                       (** dominated by floating-point loads *)
  train : params;
  ref_ : params;
  source : params -> string;
}

let sprintf = Printf.sprintf

(* ------------------------------------------------------------------ *)
(* equake: the smvp sparse matrix-vector kernel of §5.1                 *)
(* ------------------------------------------------------------------ *)

let equake =
  { name = "equake";
    description = "smvp sparse matrix-vector product (§5.1 case study)";
    fp = true;
    train = { size = 60; reps = 2; seed = 11 };
    ref_ = { size = 200; reps = 4; seed = 23 };
    source =
      (fun p ->
        (* DEG fixed at 6, the average row degree in equake's meshes *)
        sprintf
          {|
int NODES; int DEG;
float* fpt[9];
int* ipt[2];
float checksum;

void init() {
  NODES = %d; DEG = 6;
  int nnz; nnz = NODES * DEG;
  ipt[0] = (int*)malloc(nnz * 8);
  ipt[1] = (int*)malloc((NODES + 1) * 8);
  // one allocation site per array: heap objects are named by site, and
  // merging them would destroy the alias profile's resolution
  fpt[0] = (float*)malloc(nnz * 8);
  fpt[1] = (float*)malloc(nnz * 8);
  fpt[2] = (float*)malloc(nnz * 8);
  fpt[3] = (float*)malloc(NODES * 8);
  fpt[4] = (float*)malloc(NODES * 8);
  fpt[5] = (float*)malloc(NODES * 8);
  fpt[6] = (float*)malloc(NODES * 8);
  fpt[7] = (float*)malloc(NODES * 8);
  fpt[8] = (float*)malloc(NODES * 8);
  int* Acol; Acol = ipt[0];
  int* Aindex; Aindex = ipt[1];
  for (int i = 0; i <= NODES; i++) Aindex[i] = i * DEG;
  int nz; nz = nnz;
  for (int k = 0; k < nz; k++) Acol[k] = rnd(NODES);
  float* A0; A0 = fpt[0];
  float* A1; A1 = fpt[1];
  float* A2; A2 = fpt[2];
  for (int k = 0; k < nz; k++) {
    A0[k] = (float)(rnd(1000)) / 100.0;
    A1[k] = (float)(rnd(1000)) / 100.0;
    A2[k] = (float)(rnd(1000)) / 100.0;
  }
  float* v0; v0 = fpt[3];
  float* v1; v1 = fpt[4];
  float* v2; v2 = fpt[5];
  float* w0; w0 = fpt[6];
  float* w1; w1 = fpt[7];
  float* w2; w2 = fpt[8];
  for (int i = 0; i < NODES; i++) {
    v0[i] = (float)(rnd(100)) / 10.0;
    v1[i] = (float)(rnd(100)) / 10.0;
    v2[i] = (float)(rnd(100)) / 10.0;
    w0[i] = 0.0; w1[i] = 0.0; w2[i] = 0.0;
  }
}

void smvp() {
  int* Acol; Acol = ipt[0];
  int* Aindex; Aindex = ipt[1];
  float* A0; A0 = fpt[0];
  float* A1; A1 = fpt[1];
  float* A2; A2 = fpt[2];
  float* v0; v0 = fpt[3];
  float* v1; v1 = fpt[4];
  float* v2; v2 = fpt[5];
  float* w0; w0 = fpt[6];
  float* w1; w1 = fpt[7];
  float* w2; w2 = fpt[8];
  for (int i = 0; i < NODES; i++) {
    int anext; anext = Aindex[i];
    int alast; alast = Aindex[i + 1];
    float sum0; sum0 = 0.0;
    float sum1; sum1 = 0.0;
    float sum2; sum2 = 0.0;
    while (anext < alast) {
      int col; col = Acol[anext];
      sum0 = sum0 + A0[anext] * v0[col];
      sum1 = sum1 + A1[anext] * v1[col];
      sum2 = sum2 + A2[anext] * v2[col];
      w0[col] = w0[col] + A0[anext] * v0[i];
      w1[col] = w1[col] + A1[anext] * v1[i];
      w2[col] = w2[col] + A2[anext] * v2[i];
      anext++;
    }
    w0[i] = w0[i] + sum0;
    w1[i] = w1[i] + sum1;
    w2[i] = w2[i] + sum2;
  }
}

int main() {
  seed(%d);
  init();
  for (int r = 0; r < %d; r++) smvp();
  checksum = 0.0;
  float* w0; w0 = fpt[6];
  for (int i = 0; i < NODES; i++) checksum = checksum + w0[i];
  print_flt(checksum);
  return 0;
}
|}
          p.size p.seed p.reps) }

(* ------------------------------------------------------------------ *)
(* mcf: network-simplex arc pricing (integer, memory-bound)            *)
(* ------------------------------------------------------------------ *)

let mcf =
  { name = "mcf";
    description = "network simplex arc pricing sweep (pointer-chasing, \
                   large working set)";
    fp = false;
    train = { size = 4000; reps = 3; seed = 5 };
    ref_ = { size = 60000; reps = 3; seed = 17 };
    source =
      (fun p ->
        sprintf
          {|
int NARCS; int NNODES;
int* tab[5];
int result;

void init() {
  NARCS = %d;
  NNODES = NARCS / 4 + 16;
  tab[0] = (int*)malloc(NARCS * 8);
  tab[1] = (int*)malloc(NARCS * 8);
  tab[2] = (int*)malloc(NARCS * 8);
  tab[3] = (int*)malloc(NNODES * 8);
  tab[4] = (int*)malloc(NARCS * 8);
  int* cost; cost = tab[0];
  int* tail; tail = tab[1];
  int* head; head = tab[2];
  int* pot; pot = tab[3];
  int* flow; flow = tab[4];
  for (int a = 0; a < NARCS; a++) {
    cost[a] = rnd(200) - 100;
    tail[a] = rnd(NNODES);
    head[a] = rnd(NNODES);
    flow[a] = 0;
  }
  for (int n = 0; n < NNODES; n++) pot[n] = rnd(50);
}

int price() {
  int* cost; cost = tab[0];
  int* tail; tail = tab[1];
  int* head; head = tab[2];
  int* pot; pot = tab[3];
  int* flow; flow = tab[4];
  int found; found = 0;
  for (int a = 0; a < NARCS; a++) {
    int t; t = tail[a];
    int h; h = head[a];
    int red; red = cost[a] + pot[t] - pot[h];
    if (red < 0) {
      flow[a] = flow[a] + 1;
      // reload of cost[a] across the flow store: speculatively redundant
      found = found + cost[a] + 1;
    }
  }
  return found;
}

int main() {
  seed(%d);
  init();
  result = 0;
  for (int r = 0; r < %d; r++) result = result + price();
  print_int(result);
  return 0;
}
|}
          p.size p.seed p.reps) }

(* ------------------------------------------------------------------ *)
(* art: neural-network match/recall scan (floating point)              *)
(* ------------------------------------------------------------------ *)

let art =
  { name = "art";
    description = "ART neural network f1-layer scan";
    fp = true;
    train = { size = 40; reps = 3; seed = 3 };
    ref_ = { size = 120; reps = 6; seed = 31 };
    source =
      (fun p ->
        sprintf
          {|
int NN;
float* net[4];
float score;

void init() {
  NN = %d;
  net[0] = (float*)malloc(NN * NN * 8);
  net[1] = (float*)malloc(NN * 8);
  net[2] = (float*)malloc(NN * 8);
  net[3] = (float*)malloc(NN * 8);
  float* bus; bus = net[0];
  float* tds; tds = net[1];
  for (int k = 0; k < NN * NN; k++) bus[k] = (float)(rnd(100)) / 50.0;
  for (int j = 0; j < NN; j++) tds[j] = (float)(rnd(100)) / 25.0;
}

void pass() {
  float* bus; bus = net[0];
  float* tds; tds = net[1];
  float* y; y = net[2];
  float* u; u = net[3];
  for (int i = 0; i < NN; i++) {
    float sum; sum = 0.0;
    for (int j = 0; j < NN; j++) {
      // tds[j] read twice per iteration around the y store
      float w; w = bus[i * NN + j] * tds[j];
      y[i] = y[i] + w;
      u[j] = u[j] + tds[j] * 0.5;
      sum = sum + w;
    }
    y[i] = y[i] / (1.0 + sum);
  }
}

int main() {
  seed(%d);
  init();
  for (int r = 0; r < %d; r++) pass();
  score = 0.0;
  float* y; y = net[2];
  for (int i = 0; i < NN; i++) score = score + y[i];
  print_flt(score);
  return 0;
}
|}
          p.size p.seed p.reps) }

(* ------------------------------------------------------------------ *)
(* ammp: molecular-dynamics nonbonded force loop (floating point)      *)
(* ------------------------------------------------------------------ *)

let ammp =
  { name = "ammp";
    description = "molecular dynamics neighbour-list force accumulation";
    fp = true;
    train = { size = 120; reps = 3; seed = 7 };
    ref_ = { size = 500; reps = 5; seed = 41 };
    source =
      (fun p ->
        sprintf
          {|
int NATOM; int NNBR;
float* atom[6];
int* nbr[1];
float energy;

void init() {
  NATOM = %d;
  NNBR = 8;
  atom[0] = (float*)malloc(NATOM * 8);
  atom[1] = (float*)malloc(NATOM * 8);
  atom[2] = (float*)malloc(NATOM * 8);
  atom[3] = (float*)malloc(NATOM * 8);
  atom[4] = (float*)malloc(NATOM * 8);
  atom[5] = (float*)malloc(NATOM * 8);
  nbr[0] = (int*)malloc(NATOM * NNBR * 8);
  float* px; px = atom[0];
  float* py; py = atom[1];
  float* pz; pz = atom[2];
  int* nb; nb = nbr[0];
  for (int i = 0; i < NATOM; i++) {
    px[i] = (float)(rnd(1000)) / 100.0;
    py[i] = (float)(rnd(1000)) / 100.0;
    pz[i] = (float)(rnd(1000)) / 100.0;
  }
  for (int k = 0; k < NATOM * NNBR; k++) nb[k] = rnd(NATOM);
}

void forces() {
  float* px; px = atom[0];
  float* py; py = atom[1];
  float* pz; pz = atom[2];
  float* fx; fx = atom[3];
  float* fy; fy = atom[4];
  float* fz; fz = atom[5];
  int* nb; nb = nbr[0];
  for (int i = 0; i < NATOM; i++) {
    for (int k = 0; k < NNBR; k++) {
      int j; j = nb[i * NNBR + k];
      // px[i]/py[i]/pz[i] are loop invariant but the fx/fy/fz stores
      // may alias them in the baseline's alias classes
      float dx; dx = px[i] - px[j];
      float dy; dy = py[i] - py[j];
      float dz; dz = pz[i] - pz[j];
      float r2; r2 = dx * dx + dy * dy + dz * dz + 1.0;
      fx[i] = fx[i] + dx / r2;
      fy[i] = fy[i] + dy / r2;
      fz[i] = fz[i] + dz / r2;
    }
  }
}

int main() {
  seed(%d);
  init();
  for (int r = 0; r < %d; r++) forces();
  energy = 0.0;
  float* fx; fx = atom[3];
  for (int i = 0; i < NATOM; i++) energy = energy + fx[i];
  print_flt(energy);
  return 0;
}
|}
          p.size p.seed p.reps) }

(* ------------------------------------------------------------------ *)
(* twolf: placement cost evaluation (integer)                          *)
(* ------------------------------------------------------------------ *)

let twolf =
  { name = "twolf";
    description = "standard-cell placement incremental cost evaluation";
    fp = false;
    train = { size = 300; reps = 4; seed = 13 };
    ref_ = { size = 1500; reps = 8; seed = 53 };
    source =
      (fun p ->
        sprintf
          {|
int NCELL;
int* place[4];
int cost;

void init() {
  NCELL = %d;
  place[0] = (int*)malloc(NCELL * 8);
  place[1] = (int*)malloc(NCELL * 8);
  place[2] = (int*)malloc(NCELL * 8);
  place[3] = (int*)malloc(NCELL * 8);
  int* x; x = place[0];
  int* y; y = place[1];
  int* netof; netof = place[2];
  int* weight; weight = place[3];
  for (int c = 0; c < NCELL; c++) {
    x[c] = rnd(1000);
    y[c] = rnd(1000);
    netof[c] = rnd(NCELL);
    weight[c] = rnd(8) + 1;
  }
}

int sweep() {
  int* x; x = place[0];
  int* y; y = place[1];
  int* netof; netof = place[2];
  int* weight; weight = place[3];
  int total; total = 0;
  for (int c = 0; c + 1 < NCELL; c++) {
    int n; n = netof[c];
    int dx; dx = x[c] - x[n];
    int dy; dy = y[c] - y[n];
    if (dx < 0) dx = -dx;
    if (dy < 0) dy = -dy;
    int w; w = weight[c];
    // accepted move: writes x[c], then re-reads x[c+1] etc.
    if ((dx + dy) * w > 900) {
      x[c] = (x[c] + x[n]) / 2;
      y[c] = (y[c] + y[n]) / 2;
    }
    total = total + (dx + dy) * w + weight[c];
  }
  return total;
}

int main() {
  seed(%d);
  init();
  cost = 0;
  for (int r = 0; r < %d; r++) cost = cost + sweep();
  print_int(cost);
  return 0;
}
|}
          p.size p.seed p.reps) }

(* ------------------------------------------------------------------ *)
(* gzip: longest-match scan (integer, scalar-heavy, rare aliasing)     *)
(* ------------------------------------------------------------------ *)

let gzip =
  { name = "gzip";
    description = "deflate longest_match over the sliding window; on the ref \
                   input the hash insertion occasionally rewrites the window \
                   cell a speculated load anchors on (high mis-speculation \
                   ratio, negligible check volume)";
    fp = false;
    train = { size = 2048; reps = 2; seed = 19 };
    ref_ = { size = 8192; reps = 2; seed = 61 };
    source =
      (fun p ->
        sprintf
          {|
int WSIZE;
int* buf[2];
int best;

void init() {
  WSIZE = %d;
  buf[0] = (int*)malloc(WSIZE * 8);
  buf[1] = (int*)malloc(WSIZE * 8);
  int* window; window = buf[0];
  int* chain; chain = buf[1];
  for (int i = 0; i < WSIZE; i++) {
    window[i] = rnd(8);
    chain[i] = rnd(WSIZE);
  }
}

int longest_match(int scan) {
  int* window; window = buf[0];
  int* chain; chain = buf[1];
  int best_len; best_len = 0;
  int w0; w0 = window[scan];
  int cur; cur = chain[scan];
  int tries; tries = 8;
  while (tries > 0 && cur > 0) {
    int len; len = 0;
    while (len < 8 && window[(cur + len) %% WSIZE] == window[(scan + len) %% WSIZE])
      len = len + 1;
    if (len > best_len) best_len = len;
    cur = chain[cur];
    tries = tries - 1;
  }
  // hash insertion: under the train input this always updates the chain,
  // so the profile says the store never touches the window; on the large
  // ref input it occasionally rewrites window[scan], the exact cell the
  // speculated reload below anchors on
  int* upd; upd = buf[1];
  int x; x = chain[scan %% 512];
  if (x > 7700) upd = buf[0];
  upd[scan] = w0 + 1;
  return best_len + window[scan];
}

int main() {
  seed(%d);
  init();
  best = 0;
  for (int r = 0; r < %d; r++) {
    for (int s = 0; s + 16 < WSIZE; s = s + 7) best = best + longest_match(s);
  }
  print_int(best);
  return 0;
}
|}
          p.size p.seed p.reps) }

(* ------------------------------------------------------------------ *)
(* vpr: FPGA routing cost recomputation (mixed int/fp)                 *)
(* ------------------------------------------------------------------ *)

let vpr =
  { name = "vpr";
    description = "FPGA route-cost recomputation over rr-node fanouts \
                   (one speculated invariant per node, modest gains)";
    fp = true;
    train = { size = 250; reps = 3; seed = 29 };
    ref_ = { size = 1200; reps = 6; seed = 71 };
    source =
      (fun p ->
        sprintf
          {|
int NRR;
float* rr[3];
int* topo[1];
float total;

void init() {
  NRR = %d;
  rr[0] = (float*)malloc(NRR * 8);
  rr[1] = (float*)malloc(NRR * 8);
  rr[2] = (float*)malloc(NRR * 8);
  topo[0] = (int*)malloc(NRR * 4 * 8);
  float* base_cost; base_cost = rr[0];
  float* acc_cost; acc_cost = rr[1];
  float* pres_cost; pres_cost = rr[2];
  int* edges; edges = topo[0];
  for (int i = 0; i < NRR; i++) {
    base_cost[i] = (float)(rnd(100) + 1) / 10.0;
    acc_cost[i] = 0.0;
    pres_cost[i] = 1.0;
  }
  for (int k = 0; k < NRR * 4; k++) edges[k] = rnd(NRR);
}

void route_pass() {
  float* base_cost; base_cost = rr[0];
  float* acc_cost; acc_cost = rr[1];
  float* pres_cost; pres_cost = rr[2];
  int* edges; edges = topo[0];
  for (int i = 0; i < NRR; i++) {
    float pc; pc = pres_cost[i];
    for (int k = 0; k < 4; k++) {
      int to; to = edges[i * 4 + k];
      float c; c = base_cost[to] * pc + base_cost[to] * 0.3;
      acc_cost[to] = acc_cost[to] + c;
    }
    // pres_cost[i] is re-read after the acc_cost stores: speculatively
    // redundant with the read into pc above
    pres_cost[i] = pres_cost[i] * 0.99 + 0.01;
    total = total + pres_cost[i];
  }
}

int main() {
  seed(%d);
  init();
  total = 0.0;
  for (int r = 0; r < %d; r++) route_pass();
  float check; check = 0.0;
  float* acc_cost; acc_cost = rr[1];
  for (int i = 0; i < NRR; i++) check = check + acc_cost[i];
  print_flt(check + total);
  return 0;
}
|}
          p.size p.seed p.reps) }

(* ------------------------------------------------------------------ *)
(* parser: dictionary hash-chain lookups (integer, some real aliasing) *)
(* ------------------------------------------------------------------ *)

let parser =
  { name = "parser";
    description = "dictionary hash-chain probing with an in-place splay of \
                   hot entries; the ref input's splay occasionally rewrites \
                   the probed bucket head (small real mis-speculation)";
    fp = false;
    train = { size = 1024; reps = 4; seed = 37 };
    ref_ = { size = 6144; reps = 4; seed = 83 };
    source =
      (fun p ->
        sprintf
          {|
int HSIZE;
int* ht[2];
int hits;

void init() {
  HSIZE = %d;
  ht[0] = (int*)malloc(HSIZE * 8);
  ht[1] = (int*)malloc(HSIZE * 8);
  int* keys; keys = ht[0];
  int* next; next = ht[1];
  for (int i = 0; i < HSIZE; i++) {
    keys[i] = rnd(HSIZE);
    next[i] = rnd(HSIZE);
  }
}

int probe(int want) {
  int* keys; keys = ht[0];
  int* next; next = ht[1];
  int home; home = want %% HSIZE;
  int hk; hk = keys[home];
  int i; i = home;
  int steps; steps = 0;
  int found; found = 0;
  int last; last = 0;
  while (steps < 12) {
    int k; k = keys[i];
    if (k == want) found = found + 1;
    last = k;
    i = next[i];
    steps = steps + 1;
  }
  // splay: under the train input this always rewrites the chain links;
  // on the ref input it rarely targets the key table and clobbers the
  // bucket head re-read below
  int* upd; upd = ht[1];
  if (last > 6000) upd = ht[0];
  upd[home] = last;
  return found + keys[home] + hk;
}

int main() {
  seed(%d);
  init();
  hits = 0;
  for (int r = 0; r < %d; r++) {
    for (int q = 0; q < HSIZE; q = q + 3) hits = hits + probe(q);
  }
  print_int(hits);
  return 0;
}
|}
          p.size p.seed p.reps) }

(* ------------------------------------------------------------------ *)
(* cipher: table-based cipher round over a secret key (leaky)          *)
(* ------------------------------------------------------------------ *)

let cipher =
  { name = "cipher";
    description = "table-based cipher round: the sbox lookup at a \
                   key-derived index is re-loaded across the in-place \
                   state update, so speculation advances a \
                   secret-addressed load (flagged by the safety checker)";
    fp = false;
    train = { size = 64; reps = 3; seed = 41 };
    ref_ = { size = 512; reps = 6; seed = 97 };
    source =
      (fun p ->
        sprintf
          {|
secret int key[16];
int* tab[2];
int SIZE;

void init() {
  SIZE = %d;
  tab[0] = (int*)malloc(256 * 8);
  tab[1] = (int*)malloc(SIZE * 8);
  int* sbox; sbox = tab[0];
  int* st; st = tab[1];
  for (int i = 0; i < 256; i++) sbox[i] = rnd(256);
  for (int i = 0; i < SIZE; i++) st[i] = rnd(256);
  for (int i = 0; i < 16; i++) key[i] = rnd(256);
}

int round() {
  int* sbox; sbox = tab[0];
  int* st; st = tab[1];
  int acc; acc = 0;
  for (int i = 0; i < SIZE; i++) {
    int k; k = key[i & 15];
    int idx; idx = (st[i] + k) & 255;
    int t; t = sbox[idx];
    // st came from the same pointer table as sbox, so this in-place
    // update may clobber the sbox as far as the compiler can prove;
    // speculating the re-load below advances a secret-indexed load
    st[i] = (st[i] + t) & 255;
    acc = acc + sbox[idx] + t;
  }
  return acc;
}

int main() {
  seed(%d);
  init();
  int total; total = 0;
  for (int r = 0; r < %d; r++) total = total + round();
  print_int(total);
  return 0;
}
|}
          p.size p.seed p.reps) }

(* ------------------------------------------------------------------ *)
(* ctsel: constant-time select over the same tables (safe)             *)
(* ------------------------------------------------------------------ *)

let ctsel =
  { name = "ctsel";
    description = "constant-time select: the secret key only ever feeds \
                   bit-masks, every load and store address is public, so \
                   the same speculation is flagged clean by the checker";
    fp = false;
    train = { size = 96; reps = 3; seed = 59 };
    ref_ = { size = 768; reps = 5; seed = 131 };
    source =
      (fun p ->
        sprintf
          {|
secret int key[16];
int* tab[2];
int SIZE;

void init() {
  SIZE = %d;
  tab[0] = (int*)malloc(SIZE * 8);
  tab[1] = (int*)malloc(SIZE * 8);
  int* a; a = tab[0];
  int* b; b = tab[1];
  for (int i = 0; i < SIZE; i++) {
    a[i] = rnd(1000);
    b[i] = rnd(1000);
  }
  for (int i = 0; i < 16; i++) key[i] = rnd(2);
}

int blend() {
  int* a; a = tab[0];
  int* b; b = tab[1];
  int acc; acc = 0;
  for (int i = 0; i < SIZE; i++) {
    int k; k = key[i & 15];
    int mask; mask = 0 - (k & 1);
    int x; x = a[i];
    // maybe-aliasing sibling-table update at a public index: the a[i]
    // re-load below is speculated exactly like cipher's sbox re-load,
    // but its address never depends on the key
    b[i] = (b[i] + x) & 1023;
    int sel; sel = (a[i] & mask) | (b[i] & (mask ^ (0 - 1)));
    acc = acc + sel;
  }
  return acc;
}

int main() {
  seed(%d);
  init();
  int total; total = 0;
  for (int r = 0; r < %d; r++) total = total + blend();
  print_int(total);
  return 0;
}
|}
          p.size p.seed p.reps) }

let all = [ art; ammp; equake; gzip; mcf; parser; twolf; vpr; cipher; ctsel ]

let find name =
  match List.find_opt (fun w -> w.name = name) all with
  | Some w -> w
  | None -> invalid_arg ("Workloads.find: unknown workload " ^ name)

(** Source text for the given input set. *)
let train_source w = w.source w.train

let ref_source w = w.source w.ref_
