(** HSSA χ/μ list construction (pre-SSA).

    Following Chow et al.'s HSSA and §3.2 of the paper:
    - every alias class accessed in a function gets a *virtual variable*;
    - an indirect store gets a χ for the class's virtual variable and for
      every type-compatible, visible member variable of its class;
    - an indirect load gets the corresponding μ list;
    - a direct store to an aliased variable gets a χ for its class's
      virtual variable (it may change the value seen by indirect loads);
    - a call gets χ/μ lists from the callee's interprocedural mod/ref
      summary.

    Lists are built in terms of original variables; SSA renaming later
    rewrites the operands to versions.  Speculation flags are assigned
    afterwards by [Spec_spec] from profiles or heuristic rules. *)

open Spec_ir

type info = {
  sol : Steensgaard.solution;
  modref : Modref.t;
  vv_of_class : (string * int, int) Hashtbl.t;  (* (func, class) -> vv id *)
  site_vv : (int, int) Hashtbl.t;               (* site -> vv id *)
  accessed : (int, unit) Hashtbl.t;             (* classes with indirect refs *)
  refined : (int, Loc.t) Hashtbl.t;
      (* flow-sensitive refinement: sites with a definite unique target
         (Figure 4's last stage); their chi/mu lists shrink accordingly *)
  prog : Sir.prog;
}

(* members of a refined site: just the definite target, when it is a
   visible variable; a definite heap object contributes no variable *)
let refined_members info (f : Sir.func) site =
  match Hashtbl.find_opt info.refined site with
  | Some (Loc.Lvar x) when Modref.visible_in info.prog f x -> Some [ x ]
  | Some (Loc.Lvar _) | Some (Loc.Lheap _) -> Some []
  | None -> None

let vv info (f : Sir.func) cls =
  match Hashtbl.find_opt info.vv_of_class (f.Sir.fname, cls) with
  | Some v -> v
  | None ->
    let v =
      Symtab.add info.prog.Sir.syms
        ~name:(Printf.sprintf "v$%d" cls)
        ~ty:Types.Tint ~storage:Symtab.Svirtual ~func:(Some f.Sir.fname) ()
    in
    Hashtbl.replace info.vv_of_class (f.Sir.fname, cls) v.Symtab.vid;
    v.Symtab.vid

(** Member variables of class [cls] that a reference of type [ty] inside
    [f] may access: type-compatible (the baseline type-based
    disambiguation) and visible in [f]. *)
let relevant_members info (f : Sir.func) cls ty =
  List.filter
    (fun vid ->
      let v = Symtab.var info.prog.Sir.syms vid in
      Modref.visible_in info.prog f vid
      && (match ty with
          | None -> true
          | Some t -> Types.compatible t v.Symtab.velt))
    (Steensgaard.vars_in_class info.sol cls)

let mk_mu v = { Sir.mu_opnd = v; Sir.mu_var = v; Sir.mu_spec = false }
let mk_chi v =
  { Sir.chi_lhs = v; Sir.chi_rhs = v; Sir.chi_var = v; Sir.chi_spec = false }

let annotate_stmt info (f : Sir.func) (s : Sir.stmt) =
  let mus = ref [] and chis = ref [] in
  let add_mu v = if not (List.exists (fun m -> m.Sir.mu_var = v) !mus) then
      mus := mk_mu v :: !mus in
  let add_chi v = if not (List.exists (fun c -> c.Sir.chi_var = v) !chis) then
      chis := mk_chi v :: !chis in
  (* μ from indirect loads anywhere in the statement's expressions *)
  let scan_expr e =
    Sir.iter_subexprs
      (function
        | Sir.Ilod (ty, _, site) ->
          (match Steensgaard.class_of_site info.sol site with
           | Some cls ->
             let v = vv info f cls in
             Hashtbl.replace info.site_vv site v;
             add_mu v;
             let members =
               match refined_members info f site with
               | Some ms -> ms
               | None -> relevant_members info f cls (Some ty)
             in
             List.iter add_mu members
           | None -> ())
        | _ -> ())
      e
  in
  List.iter scan_expr (Sir.stmt_exprs s.Sir.kind);
  (match s.Sir.kind with
   | Sir.Istr (ty, _, _, site) ->
     (match Steensgaard.class_of_site info.sol site with
      | Some cls ->
        let v = vv info f cls in
        Hashtbl.replace info.site_vv site v;
        add_chi v;
        let members =
          match refined_members info f site with
          | Some ms -> ms
          | None -> relevant_members info f cls (Some ty)
        in
        List.iter add_chi members
      | None -> ())
   | Sir.Stid (v, _) when Symtab.is_mem info.prog.Sir.syms v ->
     (* a direct store to an aliased variable may change what indirect
        loads of its class observe *)
     (match Steensgaard.class_of_var info.sol v with
      | Some cls when Hashtbl.mem info.accessed cls -> add_chi (vv info f cls)
      | Some _ | None -> ())
   | Sir.Call { callee; _ } when not (Sir.is_builtin callee) ->
     let cs = Modref.get info.modref callee in
     List.iter
       (fun cls ->
         add_chi (vv info f cls);
         List.iter add_chi (relevant_members info f cls None))
       cs.Modref.mod_classes;
     List.iter
       (fun cls ->
         add_mu (vv info f cls);
         List.iter add_mu (relevant_members info f cls None))
       cs.Modref.ref_classes;
     (* a named variable the callee accesses directly is also observed
        by this function's indirect references through its alias class:
        without the virtual-variable chi/mu here, a load of [*p] with
        [p -> g] would keep its version across a call that writes [g]
        directly, and PRE would wrongly treat the reload as redundant *)
     let vv_of_var v =
       match Steensgaard.class_of_var info.sol v with
       | Some cls when Hashtbl.mem info.accessed cls ->
         Some (vv info f cls)
       | Some _ | None -> None
     in
     List.iter
       (fun v ->
         if Modref.visible_in info.prog f v then add_chi v;
         Option.iter add_chi (vv_of_var v))
       cs.Modref.mod_vars;
     List.iter
       (fun v ->
         if Modref.visible_in info.prog f v then add_mu v;
         Option.iter add_mu (vv_of_var v))
       cs.Modref.ref_vars
   | Sir.Stid _ | Sir.Call _ | Sir.Snop -> ());
  let by_var_mu a b = compare a.Sir.mu_var b.Sir.mu_var in
  let by_var_chi a b = compare a.Sir.chi_var b.Sir.chi_var in
  s.Sir.mus <- List.sort by_var_mu !mus;
  s.Sir.chis <- List.sort by_var_chi !chis

(** Terminator expressions can contain indirect loads too; attach their μs
    to a fresh trailing no-op statement so SSA sees the uses. *)
let annotate_term info (f : Sir.func) (b : Sir.bb) =
  let has_ilod =
    List.exists
      (fun e ->
        let found = ref false in
        Sir.iter_subexprs
          (function Sir.Ilod _ -> found := true | _ -> ())
          e;
        !found)
      (Sir.term_exprs b.Sir.term)
  in
  if has_ilod then begin
    let s = Sir.new_stmt info.prog Sir.Snop in
    let saved = s.Sir.kind in
    ignore saved;
    (* reuse statement-level scanning by temporarily viewing the terminator
       expression as a statement expression *)
    let mus = ref [] in
    let add_mu v =
      if not (List.exists (fun m -> m.Sir.mu_var = v) !mus) then
        mus := mk_mu v :: !mus
    in
    List.iter
      (fun e ->
        Sir.iter_subexprs
          (function
            | Sir.Ilod (ty, _, site) ->
              (match Steensgaard.class_of_site info.sol site with
               | Some cls ->
                 let v = vv info f cls in
                 Hashtbl.replace info.site_vv site v;
                 add_mu v;
                 List.iter add_mu (relevant_members info f cls (Some ty))
               | None -> ())
            | _ -> ())
          e)
      (Sir.term_exprs b.Sir.term);
    s.Sir.mus <- List.sort (fun a b -> compare a.Sir.mu_var b.Sir.mu_var) !mus;
    b.Sir.stmts <- b.Sir.stmts @ [ s ]
  end

(** Run the full alias pipeline and annotate every statement.
    [refinements] carries flow-sensitive definite-target facts from a
    previous SSA round (see [Spec_ssa.Refine]).  [points_to] supplies a
    cached Steensgaard solution and mod/ref summary (sound across the
    optimizer's transformations, which never create new reference sites);
    when absent both are solved from scratch. *)
let run ?refinements ?points_to (prog : Sir.prog) : info =
  let sol, modref =
    match points_to with
    | Some (sol, modref) -> sol, modref
    | None ->
      let sol = Steensgaard.solve prog in
      sol, Modref.compute prog sol
  in
  let accessed = Hashtbl.create 16 in
  List.iter (fun c -> Hashtbl.replace accessed c ())
    (Steensgaard.accessed_classes sol);
  let refined =
    match refinements with Some r -> r | None -> Hashtbl.create 4
  in
  let info =
    { sol; modref; vv_of_class = Hashtbl.create 16;
      site_vv = Hashtbl.create 64; accessed; refined; prog }
  in
  Sir.iter_funcs
    (fun f ->
      Vec.iter
        (fun (b : Sir.bb) ->
          List.iter (annotate_stmt info f) b.Sir.stmts;
          annotate_term info f b)
        f.Sir.fblocks)
    prog;
  info

(** Virtual variable of an indirect-reference site, if classified. *)
let site_virtual info site = Hashtbl.find_opt info.site_vv site

(** Definite unique target of a site, when flow-sensitive refinement
    established one. *)
let site_definite info site = Hashtbl.find_opt info.refined site
