(** Deterministic misspeculation fault plans.

    A {!plan} describes how hard to attack data speculation; an
    {!injector} executes a plan against one engine run, drawing every
    random decision from a {!Srng} stream derived from the plan's seed
    and a scope label, so results are byte-identical for any [--jobs N].

    Fault sources (§DESIGN 3.3):
    - {b flushes}: the whole ALAT is emptied every [flush_period] time
      units, modeling context switches / interrupts;
    - {b chaos invalidation}: each time unit, one random live entry is
      dropped with probability [inv_ppm] ppm, modeling interference from
      other threads' stores and ALAT pressure;
    - {b capacity pressure}: [alat_entries] shrinks the ITL machine's
      ALAT (the interpreter's semantic ALAT is unbounded and unaffected);
    - {b adversarial profiles}: {!adversary} perturbs the speculation
      flags the compiler assigns (see {!Spec_spec.Flags.perturb}), so
      speculation crosses references that really do alias at runtime.

    Time units are cycles on the ITL machine and ALAT operations
    (arm/check/store-invalidate) on the interpreters.  Faults only ever
    {e remove} ALAT entries, never add or corrupt them, so a faulted run
    can at worst reload a value that is current in memory — observable
    outputs stay bit-identical to the unoptimized oracle. *)

type adversary =
  | Adv_none
  | Adv_invert
      (** invert the likeliness of every may-alias relation: everything
          the policy would respect as a likely alias is speculated past
          (flags cleared, strong kill verdicts downgraded to weak), so
          recovery fires wherever aliasing is real *)
  | Adv_drop of int  (** like [Adv_invert] for each relation with this ppm *)

type plan = {
  seed : int;
  flush_period : int;  (** full ALAT flush every k time units; 0 = off *)
  inv_ppm : int;  (** per-time-unit random-entry invalidation, ppm *)
  alat_entries : int option;  (** shrink the machine ALAT; None = default *)
  adversary : adversary;
}

(** All fault sources off (but still carrying [seed]). *)
val null : int -> plan

(** No fault source is active (adversary included). *)
val is_null : plan -> bool

(** Parse a [--faults] spec: comma-separated [flush=K], [inv=PPM],
    [alat=N], [adv=invert|drop:PPM|none].  Errors out with [Error msg]
    on unknown keys or malformed values. *)
val parse : seed:int -> string -> (plan, string) result

(** Render a plan back to the [--faults] syntax (inverse of {!parse}
    for non-null plans). *)
val to_string : plan -> string

(** {1 Injection} *)

type injector

(** [injector plan ~scope] — fresh injector whose stream is
    [Srng.of_path plan.seed (scope)].  The scope labels must uniquely
    identify the run (workload, variant, grid point, engine). *)
val injector : plan -> scope:string list -> injector

(** [injector_opt] returns [None] for plans with no runtime fault
    source (adversarial-only plans included), so the zero-fault point
    takes exactly the unfaulted code path. *)
val injector_opt : plan -> scope:string list -> injector option

val plan_of : injector -> plan

(** [advance inj ~upto ~flush ~invalidate] — process time units from the
    previous mark up to [upto] (monotone; earlier marks are no-ops).
    [flush] empties the ALAT; [invalidate] drops one entry chosen with
    the supplied stream. *)
val advance :
  injector -> upto:int -> flush:(unit -> unit) -> invalidate:(Srng.t -> unit)
  -> unit

(** Count of full flushes fired so far. *)
val flushes : injector -> int

(** Count of chaos single-entry invalidation events fired so far. *)
val invalidations : injector -> int
