(** Splittable deterministic RNG for fault injection (SplitMix64-style).

    Every fault source in the stress harness draws from a stream derived
    from [(master seed, path of string labels)].  Because a stream's
    identity depends only on those labels — never on how many draws some
    other stream has made, nor on which {!Spec_driver.Parpool} worker
    runs the task — any [--jobs N] produces byte-identical fault
    sequences.  Streams derived from distinct paths are statistically
    independent (distinct gamma/odd increments). *)

type t

(** [make seed] — root stream for a master seed. *)
val make : int -> t

(** [of_path seed labels] — the stream for a labelled task, e.g.
    [of_path 1 ["equake"; "profile"; "inv-10%"]].  Same seed and labels
    always yield the same stream, in any process and at any
    parallelism. *)
val of_path : int -> string list -> t

(** [split t label] — derive an independent child stream without
    disturbing [t]'s own sequence. *)
val split : t -> string -> t

(** Next 62 uniformly random non-negative bits. *)
val bits : t -> int

(** [below t n] — uniform in [\[0, n)]. [n > 0]. *)
val below : t -> int -> int

(** [chance t ~ppm] — true with probability [ppm] / 1_000_000. *)
val chance : t -> ppm:int -> bool
