type adversary = Adv_none | Adv_invert | Adv_drop of int

type plan = {
  seed : int;
  flush_period : int;
  inv_ppm : int;
  alat_entries : int option;
  adversary : adversary;
}

let null seed =
  { seed; flush_period = 0; inv_ppm = 0; alat_entries = None;
    adversary = Adv_none }

let is_null p =
  p.flush_period = 0 && p.inv_ppm = 0 && p.alat_entries = None
  && p.adversary = Adv_none

let parse ~seed spec =
  let ( let* ) = Result.bind in
  let int_of k v =
    match int_of_string_opt v with
    | Some n when n >= 0 -> Ok n
    | _ -> Error (Printf.sprintf "--faults: %s wants a non-negative int, got %S" k v)
  in
  let field plan kv =
    match String.index_opt kv '=' with
    | None -> Error (Printf.sprintf "--faults: expected key=value, got %S" kv)
    | Some i ->
      let k = String.sub kv 0 i in
      let v = String.sub kv (i + 1) (String.length kv - i - 1) in
      (match k with
       | "flush" ->
         let* n = int_of k v in Ok { plan with flush_period = n }
       | "inv" ->
         let* n = int_of k v in Ok { plan with inv_ppm = n }
       | "alat" ->
         let* n = int_of k v in
         if n <= 0 then Error "--faults: alat wants a positive entry count"
         else Ok { plan with alat_entries = Some n }
       | "adv" ->
         (match v with
          | "none" -> Ok { plan with adversary = Adv_none }
          | "invert" -> Ok { plan with adversary = Adv_invert }
          | _ ->
            (match String.index_opt v ':' with
             | Some j when String.sub v 0 j = "drop" ->
               let* n =
                 int_of "adv=drop" (String.sub v (j + 1) (String.length v - j - 1))
               in
               Ok { plan with adversary = Adv_drop n }
             | _ ->
               Error
                 (Printf.sprintf
                    "--faults: adv wants none|invert|drop:PPM, got %S" v)))
       | _ -> Error (Printf.sprintf "--faults: unknown key %S" k))
  in
  String.split_on_char ',' spec
  |> List.filter (fun s -> s <> "")
  |> List.fold_left (fun acc kv -> let* plan = acc in field plan kv)
       (Ok (null seed))

let to_string p =
  let parts =
    (if p.flush_period > 0 then [ Printf.sprintf "flush=%d" p.flush_period ]
     else [])
    @ (if p.inv_ppm > 0 then [ Printf.sprintf "inv=%d" p.inv_ppm ] else [])
    @ (match p.alat_entries with
       | Some n -> [ Printf.sprintf "alat=%d" n ]
       | None -> [])
    @ (match p.adversary with
       | Adv_none -> []
       | Adv_invert -> [ "adv=invert" ]
       | Adv_drop ppm -> [ Printf.sprintf "adv=drop:%d" ppm ])
  in
  if parts = [] then "none" else String.concat "," parts

type injector = {
  plan : plan;
  rng : Srng.t;
  mutable mark : int;  (* time units already processed *)
  mutable until_flush : int;
  mutable n_flushes : int;
  mutable n_invalidations : int;
}

let injector plan ~scope =
  { plan; rng = Srng.of_path plan.seed scope; mark = 0;
    until_flush = plan.flush_period; n_flushes = 0; n_invalidations = 0 }

(* Runtime fault sources only — an adversarial-but-quiet plan needs no
   injector, and the zero point must take the exact unfaulted code path
   so baseline counters reproduce bit-for-bit. *)
let has_runtime_faults p = p.flush_period > 0 || p.inv_ppm > 0

let injector_opt plan ~scope =
  if has_runtime_faults plan then Some (injector plan ~scope) else None

let plan_of inj = inj.plan

let advance inj ~upto ~flush ~invalidate =
  if upto > inj.mark then begin
    for _t = inj.mark + 1 to upto do
      if inj.plan.flush_period > 0 then begin
        inj.until_flush <- inj.until_flush - 1;
        if inj.until_flush <= 0 then begin
          inj.until_flush <- inj.plan.flush_period;
          inj.n_flushes <- inj.n_flushes + 1;
          flush ()
        end
      end;
      if inj.plan.inv_ppm > 0 && Srng.chance inj.rng ~ppm:inj.plan.inv_ppm
      then begin
        inj.n_invalidations <- inj.n_invalidations + 1;
        invalidate inj.rng
      end
    done;
    inj.mark <- upto
  end

let flushes inj = inj.n_flushes
let invalidations inj = inj.n_invalidations
