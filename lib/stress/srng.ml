(** Splittable deterministic RNG (SplitMix64-style).

    State advances by a per-stream odd increment ("gamma"); outputs are
    a finalizing mix of the state.  Deriving a stream from a label path
    hashes the labels (FNV-1a, fixed here rather than [Hashtbl.hash] so
    the sequence is pinned independent of the OCaml runtime) into both
    the initial state and the gamma, so streams for distinct paths are
    independent and reproducible across processes and [--jobs N]. *)

type t = { mutable state : int; gamma : int }

(* 64-bit golden-gamma and mix constants, truncated to OCaml's 63-bit
   native int.  All arithmetic is modular in the native int width, which
   is the same on every 64-bit platform. *)
let golden_gamma = 0x1F39_2491_AB32_5DA9
let mix_c1 = 0x2E25_1B27_B492_DB8D
let mix_c2 = 0x1B03_7387_12F8_4E6D

let mix z =
  let z = (z lxor (z lsr 30)) * mix_c1 in
  let z = (z lxor (z lsr 27)) * mix_c2 in
  z lxor (z lsr 31)

(* FNV-1a over the bytes of a string, folded into an accumulator. *)
let fnv_string acc s =
  let h = ref acc in
  String.iter
    (fun c ->
      h := (!h lxor Char.code c) * 0x100_0000_01B3;
      (* keep a separator's worth of avalanche per byte *)
      h := !h lxor (!h lsr 29))
    s;
  (* separator between labels so ["ab";"c"] <> ["a";"bc"] *)
  (!h lxor 0xFF) * 0x100_0000_01B3

let make seed = { state = mix (seed * golden_gamma); gamma = golden_gamma }

let of_path seed labels =
  let h = List.fold_left fnv_string (mix (seed lxor 0x5EED_FACE)) labels in
  (* gamma must be odd for the increment to have full period *)
  { state = mix h; gamma = mix (h lxor golden_gamma) lor 1 }

let next_raw t =
  t.state <- t.state + t.gamma;
  mix t.state

let split t label =
  let h = fnv_string (next_raw t) label in
  { state = mix h; gamma = mix (h lxor golden_gamma) lor 1 }

let bits t = next_raw t land max_int

let below t n =
  if n <= 0 then invalid_arg "Srng.below";
  (* rejection-free modulo is fine for the small ranges used here *)
  bits t mod n

let chance t ~ppm =
  if ppm <= 0 then false
  else if ppm >= 1_000_000 then true
  else below t 1_000_000 < ppm
