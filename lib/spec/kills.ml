(** Kill classification for candidate expressions under speculation.

    The SSAPRE Rename step asks, for every statement crossed while an
    expression's value is on the rename stack: does this statement kill
    the value strongly (a real redefinition), weakly (a may-alias update
    the chosen speculation policy says is unlikely — the paper's
    speculative weak update), or not at all?

    The verdicts are exactly the χ/μ speculation-flag semantics of
    {!Flags}, expressed as a per-(statement, expression) query so that
    heap-object aliasing (which the paper's footnote 1 excludes from χ/μ
    lists because heap objects have no variable names) is covered by the
    same policy via profiled LOC sets. *)

open Spec_ir
open Spec_prof

type verdict = Knone | Kweak | Kstrong

(** What kind of memory value a candidate expression denotes. *)
type target =
  | Tpure                      (** no memory access: killed only by leaf redefs *)
  | Tvar of int                (** direct load of memory-resident variable *)
  | Tsite of int               (** indirect load, by site id *)

let worst a b =
  match a, b with
  | Kstrong, _ | _, Kstrong -> Kstrong
  | Kweak, _ | _, Kweak -> Kweak
  | Knone, Knone -> Knone

type ctx = {
  prog : Sir.prog;
  annot : Spec_alias.Annotate.info;
  mode : Flags.mode;
  addr_key : (int, string) Hashtbl.t;  (* istore/iload site -> address key *)
  alias_threshold : float;
      (** degree-of-likeliness knob: an alias relation observed in at most
          this fraction of a site's profiled executions is still treated
          as unlikely (speculative weak update).  0.0 = the paper's
          default ("exists during profiling" means likely). *)
  adversary : Flags.perturbation option;
      (** stress harness: corrupt the mode-derived heap-aliasing verdicts
          (flag-derived verdicts are already corrupted by
          {!Flags.assign}'s perturbation, so they are not attacked twice) *)
}

let create ?(alias_threshold = 0.) ?adversary prog annot mode =
  let adversary =
    match mode with Flags.Nonspec -> None | _ -> adversary
  in
  { prog; annot; mode; addr_key = Hashtbl.create 64; alias_threshold;
    adversary }

(* Adversarial corruption of a may-alias policy verdict: likely aliases
   are downgraded to unlikely (always under [Adv_invert], with the given
   probability under [Adv_drop]), so speculation crosses exactly the
   updates the profile says do alias at runtime.  [Knone] (no alias
   relation at all) stays — inventing relations models a broken
   analysis, not a wrong profile.  Statically disambiguated
   definitely-aliasing pairs are attacked like profiled ones: forcing
   speculation across a known alias is the worst case the recovery path
   must absorb.  Every resulting [Kweak] is still guarded by a check
   load, so outputs are preserved and only recovery cost grows. *)
let attack ctx (v : verdict) : verdict =
  match ctx.adversary with
  | None -> v
  | Some p ->
    (match v, p.Flags.padv with
     | Kstrong, Spec_stress.Faults.Adv_invert ->
       p.Flags.flipped <- p.Flags.flipped + 1;
       Kweak
     | Kstrong, Spec_stress.Faults.Adv_drop ppm
       when Spec_stress.Srng.chance p.Flags.prng ~ppm ->
       p.Flags.flipped <- p.Flags.flipped + 1;
       Kweak
     | v, _ -> v)

(* Deversioned textual address key for heuristic rule 1 ("identical address
   expression"). *)
let key_of_addr ctx (a : Sir.expr) =
  let syms = ctx.prog.Sir.syms in
  let dv = Sir.map_expr_uses (fun v -> (Symtab.orig syms v).Symtab.vid) a in
  Pp.expr_to_string syms dv

let register_site_addr ctx site (a : Sir.expr) =
  if not (Hashtbl.mem ctx.addr_key site) then
    Hashtbl.replace ctx.addr_key site (key_of_addr ctx a)

let site_addr_key ctx site = Hashtbl.find_opt ctx.addr_key site

let chi_on ctx (s : Sir.stmt) v =
  let syms = ctx.prog.Sir.syms in
  let ov = (Symtab.orig syms v).Symtab.vid in
  List.find_opt (fun (c : Sir.chi) -> c.Sir.chi_var = ov) s.Sir.chis

let chi_on_vv_of_site ctx (s : Sir.stmt) site =
  match Spec_alias.Annotate.site_virtual ctx.annot site with
  | None -> None
  | Some vv -> chi_on ctx s vv

(** Classify the memory effect of statement [s] on a candidate whose
    target is [tgt].  Leaf (address operand) redefinitions are handled
    separately by the caller. *)
let classify ctx (tgt : target) (s : Sir.stmt) : verdict =
  let syms = ctx.prog.Sir.syms in
  match tgt with
  | Tpure -> Knone
  | Tvar g -> (
      (* value of variable g: a direct store is a strong kill (caller sees
         it as a leaf redefinition as well); a χ on g kills per its flag *)
      match s.Sir.kind with
      | Sir.Stid (v, _) when (Symtab.orig syms v).Symtab.vid = g -> Kstrong
      | _ ->
        (match chi_on ctx s g with
         | Some c -> if c.Sir.chi_spec then Kstrong else Kweak
         | None -> Knone))
  | Tsite l -> (
      let same_class_chi = chi_on_vv_of_site ctx s l in
      (* flow-sensitive refinement: when both sides have definite targets,
         the static analysis already disambiguates them, in every mode *)
      let definite_verdict =
        match s.Sir.kind with
        | Sir.Istr (_, _, _, store_site) -> (
            match
              Spec_alias.Annotate.site_definite ctx.annot store_site,
              Spec_alias.Annotate.site_definite ctx.annot l
            with
            | Some a, Some b ->
              Some (if Loc.equal a b then Kstrong else Knone)
            | _ -> None)
        | _ -> None
      in
      match definite_verdict with
      | Some v -> attack ctx v
      | None ->
      attack ctx @@
      match ctx.mode with
      | Flags.Nonspec -> (
          match same_class_chi with Some _ -> Kstrong | None -> Knone)
      | Flags.Heuristic_spec -> (
          match s.Sir.kind with
          | Sir.Call _ -> (
              (* rule 3: calls that may touch the class kill strongly *)
              match same_class_chi with Some _ -> Kstrong | None -> Knone)
          | Sir.Istr (_, _, _, store_site) -> (
              match same_class_chi with
              | None -> Knone
              | Some _ ->
                (* rule 1: identical address syntax = same location *)
                (match site_addr_key ctx store_site, site_addr_key ctx l with
                 | Some ks, Some kl when ks = kl -> Kstrong
                 | _ -> Kweak))
          | Sir.Stid _ | Sir.Snop -> (
              match same_class_chi with Some _ -> Kweak | None -> Knone))
      | Flags.Profile_spec prof -> (
          let load_locs = Profile.locs_at prof l in
          if Loc.Set.is_empty load_locs then
            (* the load never executed while profiling: no evidence *)
            match same_class_chi with Some _ -> Kstrong | None -> Knone
          else
            match s.Sir.kind with
            | Sir.Istr (_, _, _, store_site) -> (
                match same_class_chi with
                | None -> Knone
                | Some _ ->
                  let store_locs = Profile.locs_at prof store_site in
                  if Loc.Set.is_empty store_locs then Kstrong
                  else if
                    Profile.overlap_fraction prof store_site load_locs
                    > ctx.alias_threshold
                  then Kstrong
                  else Kweak)
            | Sir.Stid (v, _) when Symtab.is_mem syms v -> (
                let g = (Symtab.orig syms v).Symtab.vid in
                if Loc.Set.mem (Loc.Lvar g) load_locs then Kstrong
                else
                  match same_class_chi with
                  | Some _ -> Kweak
                  | None -> Knone)
            | Sir.Call { csite; _ } -> (
                match same_class_chi with
                | None -> Knone
                | Some _ ->
                  let mods = Profile.call_mod_locs prof csite in
                  if not (Loc.Set.is_empty (Loc.Set.inter load_locs mods))
                  then Kstrong
                  else Kweak)
            | Sir.Stid _ | Sir.Snop -> Knone))

(** Classify the effect of [s] on an address/operand leaf variable [v]
    (an SSA version): strong on direct redefinition or flagged χ, weak on
    unflagged χ. *)
let classify_leaf ctx (v_orig : int) (s : Sir.stmt) : verdict =
  let syms = ctx.prog.Sir.syms in
  let direct =
    match Sir.stmt_def s.Sir.kind with
    | Some d -> (Symtab.orig syms d).Symtab.vid = v_orig
    | None -> false
  in
  if direct then Kstrong
  else
    match chi_on ctx s v_orig with
    | Some c -> if c.Sir.chi_spec then Kstrong else Kweak
    | None -> Knone
