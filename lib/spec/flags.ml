(** Speculative SSA form: assignment of speculation flags to χ/μ operands
    (§3.2.1 and §3.2.2 of the paper).

    A flagged χ (written χs) is an update that is *highly likely* to happen
    at runtime and must not be ignored; an unflagged χ is a *speculative
    weak update* that speculative optimizations may ignore at the price of
    a runtime check.  Flags come from either the alias profile or the
    paper's three heuristic rules:

    1. two indirect references with an identical address expression are
       highly likely to access the same location;
    2. two direct references of the same variable are highly likely to
       hold the same value;
    3. call side effects are always assumed highly likely (all call χs
       become χs; μ lists stay unflagged).

    Virtual-variable operands always keep their flag set: they carry the
    non-speculative (conservative) value chain that the baseline analysis
    uses. *)

open Spec_ir
open Spec_prof

type mode =
  | Nonspec               (** baseline: every may-alias kills *)
  | Profile_spec of Profile.t
  | Heuristic_spec

let mode_name = function
  | Nonspec -> "nonspec"
  | Profile_spec _ -> "profile"
  | Heuristic_spec -> "heuristic"

(** LOC of a memory-resident variable. *)
let var_loc syms vid = Loc.Lvar (Symtab.orig syms vid).Symtab.vid

let assign_stmt ?(threshold = 0.) prog (annot : Spec_alias.Annotate.info)
    mode (s : Sir.stmt) =
  let syms = prog.Sir.syms in
  let is_vv v = Symtab.is_virtual syms v in
  let flag_all value =
    List.iter
      (fun (c : Sir.chi) ->
        c.Sir.chi_spec <- value || is_vv c.Sir.chi_var)
      s.Sir.chis;
    List.iter
      (fun (m : Sir.mu) -> m.Sir.mu_spec <- value || is_vv m.Sir.mu_var)
      s.Sir.mus
  in
  match mode with
  | Nonspec -> flag_all true
  | Heuristic_spec ->
    (match s.Sir.kind with
     | Sir.Call _ ->
       (* rule 3: call side effects are highly likely *)
       List.iter (fun (c : Sir.chi) -> c.Sir.chi_spec <- true) s.Sir.chis;
       List.iter
         (fun (m : Sir.mu) -> m.Sir.mu_spec <- is_vv m.Sir.mu_var)
         s.Sir.mus
     | Sir.Istr _ | Sir.Stid _ | Sir.Snop ->
       (* rules 1 and 2: non-call updates between identical references are
          speculatively ignorable, so real-variable χ/μ stay unflagged *)
       flag_all false)
  | Profile_spec prof ->
    let flag_by_locs site =
      let locs = Profile.locs_at prof site in
      if Loc.Set.is_empty locs then
        (* never executed during profiling: no speculation evidence *)
        flag_all true
      else begin
        (* the degree-of-likeliness knob: a relation observed in at most
           [threshold] of the site's executions stays speculative *)
        let likely v = Profile.loc_fraction prof site (var_loc syms v) > threshold in
        List.iter
          (fun (c : Sir.chi) ->
            c.Sir.chi_spec <- is_vv c.Sir.chi_var || likely c.Sir.chi_var)
          s.Sir.chis;
        List.iter
          (fun (m : Sir.mu) ->
            m.Sir.mu_spec <- is_vv m.Sir.mu_var || likely m.Sir.mu_var)
          s.Sir.mus
      end
    in
    (match s.Sir.kind with
     | Sir.Istr (_, _, _, site) -> flag_by_locs site
     | Sir.Call { csite; _ } ->
       let mods = Profile.call_mod_locs prof csite in
       let refs = Profile.call_ref_locs prof csite in
       List.iter
         (fun (c : Sir.chi) ->
           c.Sir.chi_spec <-
             is_vv c.Sir.chi_var
             || Loc.Set.mem (var_loc syms c.Sir.chi_var) mods)
         s.Sir.chis;
       List.iter
         (fun (m : Sir.mu) ->
           m.Sir.mu_spec <-
             is_vv m.Sir.mu_var
             || Loc.Set.mem (var_loc syms m.Sir.mu_var) refs)
         s.Sir.mus
     | Sir.Stid _ | Sir.Snop ->
       (* μ lists on load-carrying statements: flag by each iload's profile;
          conservatively flag by union of the statement's iload sites *)
       let sites = ref [] in
       List.iter
         (fun e ->
           Sir.iter_subexprs
             (function
               | Sir.Ilod (_, _, st) -> sites := st :: !sites
               | _ -> ())
             e)
         (Sir.stmt_exprs s.Sir.kind);
       let locs =
         List.fold_left
           (fun acc st -> Loc.Set.union acc (Profile.locs_at prof st))
           Loc.Set.empty !sites
       in
       if !sites = [] then flag_all true
       else
         List.iter
           (fun (m : Sir.mu) ->
             m.Sir.mu_spec <-
               is_vv m.Sir.mu_var
               || Loc.Set.mem (var_loc syms m.Sir.mu_var) locs)
           s.Sir.mus)

(* ------------------------------------------------------------------ *)
(* Adversarial perturbation (stress harness)                           *)
(* ------------------------------------------------------------------ *)

type perturbation = {
  prng : Spec_stress.Srng.t;
  padv : Spec_stress.Faults.adversary;
  mutable flipped : int;
}

let perturbation ~seed ~scope adv =
  match (adv : Spec_stress.Faults.adversary) with
  | Spec_stress.Faults.Adv_none -> None
  | _ ->
    Some
      { prng = Spec_stress.Srng.of_path seed ("adversary" :: scope);
        padv = adv; flipped = 0 }

let flipped p = p.flipped

(* Attack the flag assignment after the honest policy ran: clear (always
   under [Adv_invert], probabilistically under [Adv_drop]) every
   real-variable flag the policy set, so the compiler speculates exactly
   where the profile/heuristic said a real alias is likely — the
   recovery path must then fire at high rates.  Virtual variables keep
   their flags set: they carry the conservative value chain the
   framework's correctness argument relies on, so perturbing them would
   not model a wrong profile but a broken compiler. *)
let perturb_stmt p syms (s : Sir.stmt) =
  let is_vv = Symtab.is_virtual syms in
  let attack current =
    match p.padv with
    | Spec_stress.Faults.Adv_none -> current
    | Spec_stress.Faults.Adv_invert ->
      if current then p.flipped <- p.flipped + 1;
      false
    | Spec_stress.Faults.Adv_drop ppm ->
      if current && Spec_stress.Srng.chance p.prng ~ppm then begin
        p.flipped <- p.flipped + 1;
        false
      end
      else current
  in
  List.iter
    (fun (c : Sir.chi) ->
      if not (is_vv c.Sir.chi_var) then c.Sir.chi_spec <- attack c.Sir.chi_spec)
    s.Sir.chis;
  List.iter
    (fun (m : Sir.mu) ->
      if not (is_vv m.Sir.mu_var) then m.Sir.mu_spec <- attack m.Sir.mu_spec)
    s.Sir.mus

(** Assign speculation flags program-wide.  Must run after χ/μ annotation
    and before (or after) SSA renaming — flags live on the operand records
    that renaming preserves.  [perturb] adversarially corrupts the result
    for the speculative modes (stress harness): the framework must stay
    correct — only slower — under an arbitrarily wrong flag assignment,
    because every ignored weak update is guarded by a check load. *)
let assign ?threshold ?perturb prog annot mode =
  let perturb =
    (* the baseline (Nonspec) assignment is not a speculation policy;
       adversarial profiles only make sense against speculative modes *)
    match mode with Nonspec -> None | _ -> perturb
  in
  Sir.iter_funcs
    (fun f ->
      Vec.iter
        (fun (b : Sir.bb) ->
          List.iter
            (fun s ->
              assign_stmt ?threshold prog annot mode s;
              match perturb with
              | Some p -> perturb_stmt p prog.Sir.syms s
              | None -> ())
            b.Sir.stmts)
        f.Sir.fblocks)
    prog
