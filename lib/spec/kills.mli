(** Kill classification for PRE candidate expressions under speculation.

    For every statement crossed while an expression's value is live on the
    SSAPRE rename stack, the classifier answers: does this statement kill
    the value strongly (a real redefinition), weakly (a may-alias update
    the speculation policy deems unlikely — the paper's speculative weak
    update), or not at all?  The verdicts realize the χ/μ speculation-flag
    semantics of {!Flags} as a per-(statement, expression) query, which
    also covers heap-object aliasing through profiled LOC sets. *)

type verdict = Knone | Kweak | Kstrong

(** What kind of memory value a candidate expression denotes. *)
type target =
  | Tpure        (** no memory access: killed only by operand redefinition *)
  | Tvar of int  (** direct load of a memory-resident variable (orig id) *)
  | Tsite of int (** indirect load, by site id *)

(** Most severe of two verdicts. *)
val worst : verdict -> verdict -> verdict

type ctx

(** [create prog annot mode] builds a classification context.
    [alias_threshold] is the degree-of-likeliness knob: an alias relation
    observed in at most this fraction of a site's profiled executions is
    still treated as unlikely (0.0, the default, reproduces the paper's
    "exists during profiling" criterion).  [adversary] corrupts the
    mode-derived heap-aliasing verdicts (stress harness); it is ignored
    under [Nonspec]. *)
val create :
  ?alias_threshold:float ->
  ?adversary:Flags.perturbation ->
  Spec_ir.Sir.prog ->
  Spec_alias.Annotate.info ->
  Flags.mode ->
  ctx

(** Record the (deversioned, textual) address expression of a site, for
    heuristic rule 1's identical-address-syntax test. *)
val register_site_addr : ctx -> int -> Spec_ir.Sir.expr -> unit

val site_addr_key : ctx -> int -> string option

(** Memory effect of a statement on a candidate with the given target.
    Operand (leaf) redefinitions are the caller's concern. *)
val classify : ctx -> target -> Spec_ir.Sir.stmt -> verdict

(** Effect of a statement on an operand variable (by original id): strong
    on direct redefinition or flagged χ, weak on an unflagged χ. *)
val classify_leaf : ctx -> int -> Spec_ir.Sir.stmt -> verdict
