(** Speculative SSA form: speculation-flag assignment to χ/μ operands
    (§3.2.1–§3.2.2 of the paper).

    A flagged χ (χs) is highly likely to be substantiated at runtime and
    must not be ignored; an unflagged χ is a speculative weak update that
    speculative optimization may ignore at the price of a runtime check. *)

type mode =
  | Nonspec
      (** baseline: every may-alias operand is flagged (kills) *)
  | Profile_spec of Spec_prof.Profile.t
      (** flags from the alias profile's LOC sets (§3.2.1) *)
  | Heuristic_spec
      (** flags from the paper's three heuristic rules (§3.2.2) *)

val mode_name : mode -> string

(** LOC of a memory-resident variable (by any of its SSA versions). *)
val var_loc : Spec_ir.Symtab.t -> int -> Spec_ir.Loc.t

(** Adversarial corruption of the flag assignment (stress harness): a
    seeded, deterministic attacker that flips or drops the flags the
    honest policy produced, making the compiler speculate on references
    that really do alias at runtime.  Virtual-variable flags are never
    touched (they carry the conservative value chain). *)
type perturbation = {
  prng : Spec_stress.Srng.t;
  padv : Spec_stress.Faults.adversary;
  mutable flipped : int;
}

(** [perturbation ~seed ~scope adv] — [None] for {!Spec_stress.Faults.Adv_none};
    otherwise a perturbation whose RNG stream is derived from [seed] and
    the scope labels (deterministic under any [--jobs N]). *)
val perturbation :
  seed:int -> scope:string list -> Spec_stress.Faults.adversary ->
  perturbation option

(** Number of flags flipped/dropped so far. *)
val flipped : perturbation -> int

(** Assign speculation flags to every statement's χ/μ operands.  Must run
    after χ/μ annotation; flags survive SSA renaming (they live on the
    operand records).  [threshold] is the degree-of-likeliness knob: an
    alias relation observed in at most this fraction of a site's profiled
    executions stays speculative (default 0 = the paper's "observed at
    all" criterion).  [perturb] adversarially corrupts the assignment in
    the speculative modes; it is ignored under [Nonspec]. *)
val assign :
  ?threshold:float ->
  ?perturb:perturbation ->
  Spec_ir.Sir.prog ->
  Spec_alias.Annotate.info ->
  mode ->
  unit
