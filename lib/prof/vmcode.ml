(** Threaded-code lowering: resolved SIR to a flat bytecode array.

    The third execution engine compiles {!Interp}'s resolved tree form
    one step further, into a dense [int array] instruction stream per
    function — opcode words with inline operand slots — executed by the
    tight dispatch loop in {!Vm}.  Lowering from [Interp.compiled]
    (rather than from [Sir] directly) means every type-resolution,
    slot-assignment and speculation-classification decision is inherited
    from the tree engine, which is what keeps the two engines
    byte-identical by construction.

    Layout decisions:

    - one shared slot space per frame: the named register slots assigned
      by [Interp.compile] come first, expression temporaries are
      appended after them ([n_regs] is the total); a slot index reads
      the frame's [int] or [float] bank depending on the opcode;
    - branch targets are absolute code offsets, resolved at lowering
      time (block structure disappears);
    - [Mchk]/[Madv]/[Msa] dispatch is resolved at lowering time into
      dedicated check/arm opcodes carrying the ALAT tag inline;
    - builtin calls ([malloc]/[print_int]/[print_flt]/[seed]/[rnd]) are
      lowered to dedicated opcodes, user calls to a [CALL] with an
      inline argument-descriptor list;
    - superinstructions fuse the hot patterns: ALU ops with an immediate
      right operand, int/float [load;binop] pairs ([x + A[i]]), indirect
      stores of a sum or an immediate, and compare-and-branch
      terminators (reg/reg, reg/imm and float forms).

    Fuel is spent per *block* (statement count + terminator, one [STEPS]
    word) rather than per statement; on any run that terminates normally
    the [steps] counter is identical to the tree engines', and an
    out-of-fuel run raises the same error.

    The module also serializes bytecode ([specvm/1]) for the
    content-addressed compile cache, so a warm compile skips lowering
    entirely. *)

module I = Interp

(* ------------------------------------------------------------------ *)
(* Opcode table                                                        *)
(*                                                                     *)
(* The dispatch loop in vm.ml matches on these values as integer       *)
(* literals (OCaml compiles the dense match to a jump table), so the   *)
(* numbering here is load-bearing: keep both files in sync.  The       *)
(* differential suites catch any mismatch immediately.                 *)
(* ------------------------------------------------------------------ *)

let op_steps = 0        (* n        — steps += n; fuel -= n *)
let op_err = 1          (* s        — raise Runtime_error spool.(s) *)
let op_movi = 2         (* d i      — ints.(d) <- i *)
let op_movf = 3         (* d f      — flts.(d) <- fpool.(f) *)
let op_movr = 4         (* d a      — ints.(d) <- ints.(a) *)
let op_movrf = 5        (* d a      — flts.(d) <- flts.(a) *)
let op_ldg_i = 6        (* d g      — int load of global g *)
let op_lds_i = 7        (* d a      — int load via frame addr slot a *)
let op_ldg_f = 8        (* d g *)
let op_lds_f = 9        (* d a *)
let op_iload_i = 10     (* d a      — ints.(d) <- mem[ints.(a)] *)
let op_iload_si = 11    (* d a      — non-faulting (ld.s) variant *)
let op_iload_f = 12     (* d a *)
let op_iload_sf = 13    (* d a *)
let op_lda_g = 14       (* d g      — ints.(d) <- &global *)
let op_lda_s = 15       (* d a      — ints.(d) <- addrs.(a) *)
let op_neg = 16         (* d a *)
let op_lnot = 17        (* d a *)
let op_f2i = 18         (* d a      — ints.(d) <- int_of_float flts.(a) *)
let op_fneg = 19        (* d a *)
let op_i2f = 20         (* d a      — flts.(d) <- float_of_int ints.(a) *)
let op_of_f = 21        (* a        — raise expected-int with flts.(a) *)
let op_of_i = 22        (* a        — raise expected-float with ints.(a) *)
let op_add = 23         (* d a b *)
let op_sub = 24
let op_mul = 25
let op_div = 26
let op_rem = 27
let op_and = 28
let op_or = 29
let op_xor = 30
let op_shl = 31
let op_shr = 32
let op_addi = 33        (* d a i *)
let op_subi = 34
let op_muli = 35
let op_divi = 36
let op_remi = 37
let op_andi = 38
let op_ori = 39
let op_xori = 40
let op_shli = 41
let op_shri = 42
let op_add_ld = 43      (* d a b    — ints.(d) <- ints.(a) + mem[ints.(b)] *)
let op_sub_ld = 44
let op_mul_ld = 45
let op_fadd = 46        (* d a b *)
let op_fsub = 47
let op_fmul = 48
let op_fdiv = 49
let op_fadd_ld = 50     (* d a b    — flts.(d) <- flts.(a) +. mem[ints.(b)] *)
let op_fsub_ld = 51
let op_fmul_ld = 52
let op_cmp_lt = 53      (* d a b *)
let op_cmp_le = 54
let op_cmp_gt = 55
let op_cmp_ge = 56
let op_cmp_eq = 57
let op_cmp_ne = 58
let op_cmpi_lt = 59     (* d a i *)
let op_cmpi_le = 60
let op_cmpi_gt = 61
let op_cmpi_ge = 62
let op_cmpi_eq = 63
let op_cmpi_ne = 64
let op_fcmp_lt = 65     (* d a b    — polymorphic-compare semantics *)
let op_fcmp_le = 66
let op_fcmp_gt = 67
let op_fcmp_ge = 68
let op_fcmp_eq = 69
let op_fcmp_ne = 70
let op_stg_i = 71       (* g a      — store ints.(a) to global g *)
let op_sts_i = 72       (* s a *)
let op_stg_f = 73       (* g a *)
let op_sts_f = 74       (* s a *)
let op_ist_i = 75       (* a v      — mem[ints.(a)] <- ints.(v) *)
let op_ist_f = 76       (* a v *)
let op_ist_ii = 77      (* a i      — mem[ints.(a)] <- i *)
let op_ist_add = 78     (* a v w    — mem[ints.(a)] <- ints.(v)+ints.(w) *)
let op_ist_addi = 79    (* a v i *)
let op_chkstmt = 80     (*          — check_stmts++ (non-ld.c chk stmt) *)
let op_chk_ilod_i = 81  (* t d a    — ld.c: check ALAT, reload on miss *)
let op_chk_ilod_f = 82  (* t d a *)
let op_chk_ldg_i = 83   (* t d g *)
let op_chk_ldg_f = 84   (* t d g *)
let op_chk_lds_i = 85   (* t d s *)
let op_chk_lds_f = 86   (* t d s *)
let op_arm_try = 87     (* L        — arm address code follows; Runtime_error
                                      inside it resumes at L (ld.a semantics) *)
let op_arm = 88         (* t a      — arm ALAT (t, ints.(a)); clears the trap *)
let op_arm_g = 89       (* t g *)
let op_arm_s = 90       (* t s *)
let op_jmp = 91         (* L *)
let op_bnz = 92         (* a Lt Le *)
let op_br_lt = 93       (* a b Lt Le *)
let op_br_le = 94
let op_br_gt = 95
let op_br_ge = 96
let op_br_eq = 97
let op_br_ne = 98
let op_bri_lt = 99      (* a i Lt Le *)
let op_bri_le = 100
let op_bri_gt = 101
let op_bri_ge = 102
let op_bri_eq = 103
let op_bri_ne = 104
let op_brf_lt = 105     (* a b Lt Le *)
let op_brf_le = 106
let op_brf_gt = 107
let op_brf_ge = 108
let op_brf_eq = 109
let op_brf_ne = 110
let op_ret0 = 111       (*          — return Vint 0 *)
let op_ret_i = 112      (* a *)
let op_ret_f = 113      (* a *)
let op_malloc = 114     (* a rs rfp c *)
let op_print_i = 115    (* a rs rfp *)
let op_print_f = 116    (* a rs rfp *)
let op_seed = 117       (* a rs rfp *)
let op_rnd = 118        (* a rs rfp *)
let op_call = 119       (* fix rs rfp n enc0..enc(n-1); enc = slot*2+fp *)
let op_call_err = 120   (* s        — calls++; raise spool.(s) *)
let op_call_unknown = 121 (* s      — calls++; raise Invalid_argument *)

let n_opcodes = 122

(* ------------------------------------------------------------------ *)
(* Program representation                                              *)
(* ------------------------------------------------------------------ *)

type func = {
  vname : string;
  vcode : int array;
  n_regs : int;                          (* slots incl. temporaries *)
  n_addr : int;
  vmem_locals : (int * int * int) array; (* (addr slot, vid, bytes) *)
  vformals : I.formal array;
  vdeopt : (int, I.cdeopt * int) Hashtbl.t;
      (* check-opcode pc -> deoptimization descriptor plus the step
         refund: the block's steps were charged up-front, so a mid-block
         deopt credits back the statements (and terminator) that will
         not execute, keeping counters and fuel identical to the
         per-statement tree engine (slot numbering is
         the tree compiler's, which the bytecode shares) *)
}

type program = {
  vsrc : Spec_ir.Sir.prog;
  vfuncs : func array;
  vmain : int;
  fpool : float array;
  spool : string array;
}

(* ------------------------------------------------------------------ *)
(* Emitter                                                             *)
(* ------------------------------------------------------------------ *)

type pools = {
  mutable fl : float list;               (* reversed *)
  mutable fn : int;
  ftbl : (int64, int) Hashtbl.t;
  mutable sl : string list;              (* reversed *)
  mutable sn : int;
  stbl : (string, int) Hashtbl.t;
}

let fpool_ix p f =
  let bits = Int64.bits_of_float f in
  match Hashtbl.find_opt p.ftbl bits with
  | Some i -> i
  | None ->
    let i = p.fn in
    p.fl <- f :: p.fl;
    p.fn <- i + 1;
    Hashtbl.replace p.ftbl bits i;
    i

let spool_ix p s =
  match Hashtbl.find_opt p.stbl s with
  | Some i -> i
  | None ->
    let i = p.sn in
    p.sl <- s :: p.sl;
    p.sn <- i + 1;
    Hashtbl.replace p.stbl s i;
    i

type em = {
  mutable code : int array;
  mutable len : int;
  n_slots : int;                         (* named slots; temps follow *)
  mutable n_temps : int;                 (* high-water of temp use *)
  pools : pools;
  mutable patches : (int * int) list;    (* (code pos, block id) *)
  mutable dlist : (int * (I.cdeopt * int)) list;
      (* (check-opcode pc, (descriptor, step refund)) *)
  mutable refund : int;  (* block steps after the statement being lowered *)
}

let emit em v =
  if em.len = Array.length em.code then begin
    let a = Array.make (2 * max 64 em.len) 0 in
    Array.blit em.code 0 a 0 em.len;
    em.code <- a
  end;
  em.code.(em.len) <- v;
  em.len <- em.len + 1

let e1 em op = emit em op
let e2 em op a = emit em op; emit em a
let e3 em op a b = emit em op; emit em a; emit em b
let e4 em op a b c = emit em op; emit em a; emit em b; emit em c

(* temporary slot at [depth]; temps share the frame's int/float banks *)
let tmp em depth =
  if depth + 1 > em.n_temps then em.n_temps <- depth + 1;
  em.n_slots + depth

(* branch operand referring to block [bid]; patched to an offset later *)
let blockref em bid =
  em.patches <- (em.len, bid) :: em.patches;
  emit em bid

let err em msg = e2 em op_err (spool_ix em.pools msg)

let no_slot_err em name = err em (Fmt.str "no stack slot for %s" name)

(* ------------------------------------------------------------------ *)
(* Expression lowering                                                 *)
(*                                                                     *)
(* [force_* em depth dst e] compiles [e] so its value lands in slot    *)
(* [dst]; temporaries at indices >= [tmp em depth] may be used, and    *)
(* [dst] is written only by the final instruction (so [i = i + 1]      *)
(* reads the old value).  Sub-expressions are evaluated left to right, *)
(* exactly as the tree engine's recursion does — load counters and     *)
(* fault order are observably identical.                               *)
(* ------------------------------------------------------------------ *)

let int_alu_op = function
  | Spec_ir.Sir.Add -> op_add | Spec_ir.Sir.Sub -> op_sub
  | Spec_ir.Sir.Mul -> op_mul | Spec_ir.Sir.Div -> op_div
  | Spec_ir.Sir.Rem -> op_rem | Spec_ir.Sir.Band -> op_and
  | Spec_ir.Sir.Bor -> op_or | Spec_ir.Sir.Bxor -> op_xor
  | Spec_ir.Sir.Shl -> op_shl | Spec_ir.Sir.Shr -> op_shr
  | _ -> assert false

let cmp_base = function
  | Spec_ir.Sir.Lt -> 0 | Spec_ir.Sir.Le -> 1 | Spec_ir.Sir.Gt -> 2
  | Spec_ir.Sir.Ge -> 3 | Spec_ir.Sir.Eq -> 4 | Spec_ir.Sir.Ne -> 5
  | _ -> assert false

let rec force_i em depth dst (e : I.iexpr) =
  match e with
  | I.Iconst i -> e3 em op_movi dst i
  | I.Ireg s -> if s <> dst then e3 em op_movr dst s
  | I.Ildv { vr; _ } ->
    (match vr with
     | I.Rglob g -> e3 em op_ldg_i dst g
     | I.Rslot s -> e3 em op_lds_i dst s
     | I.Rnone n -> no_slot_err em n)
  | I.Iilod { a; spec; _ } ->
    let sa = slot_i em depth a in
    e3 em (if spec then op_iload_si else op_iload_i) dst sa
  | I.Ilda vr ->
    (match vr with
     | I.Rglob g -> e3 em op_lda_g dst g
     | I.Rslot s -> e3 em op_lda_s dst s
     | I.Rnone n -> no_slot_err em n)
  | I.Ineg x -> let s = slot_i em depth x in e3 em op_neg dst s
  | I.Ilnot x -> let s = slot_i em depth x in e3 em op_lnot dst s
  | I.If2i f -> let s = slot_f em depth f in e3 em op_f2i dst s
  | I.Ibin (op, a, b) ->
    (match op, b with
     (* superinstruction: [x op A[i]] — the load is the right operand,
        so evaluation order matches the tree engine *)
     | (Spec_ir.Sir.Add | Spec_ir.Sir.Sub | Spec_ir.Sir.Mul),
       I.Iilod { a = ba; spec = false; _ } ->
       let sa = slot_i em depth a in
       let sb = slot_i em (depth + 1) ba in
       let fused =
         match op with
         | Spec_ir.Sir.Add -> op_add_ld
         | Spec_ir.Sir.Sub -> op_sub_ld
         | _ -> op_mul_ld
       in
       e4 em fused dst sa sb
     | _, I.Iconst i ->
       let sa = slot_i em depth a in
       e4 em (int_alu_op op - op_add + op_addi) dst sa i
     | _ ->
       let sa = slot_i em depth a in
       let sb = slot_i em (depth + 1) b in
       e4 em (int_alu_op op) dst sa sb)
  | I.Icmp_i (op, a, b) ->
    (match b with
     | I.Iconst i ->
       let sa = slot_i em depth a in
       e4 em (op_cmpi_lt + cmp_base op) dst sa i
     | _ ->
       let sa = slot_i em depth a in
       let sb = slot_i em (depth + 1) b in
       e4 em (op_cmp_lt + cmp_base op) dst sa sb)
  | I.Icmp_f (op, a, b) ->
    let sa = slot_f em depth a in
    let sb = slot_f em (depth + 1) b in
    e4 em (op_fcmp_lt + cmp_base op) dst sa sb
  | I.Iof_f f -> let s = slot_f em depth f in e2 em op_of_f s

and force_f em depth dst (e : I.fexpr) =
  match e with
  | I.Fconst f -> e3 em op_movf dst (fpool_ix em.pools f)
  | I.Freg s -> if s <> dst then e3 em op_movrf dst s
  | I.Fldv { vr; _ } ->
    (match vr with
     | I.Rglob g -> e3 em op_ldg_f dst g
     | I.Rslot s -> e3 em op_lds_f dst s
     | I.Rnone n -> no_slot_err em n)
  | I.Filod { a; spec; _ } ->
    let sa = slot_i em depth a in
    e3 em (if spec then op_iload_sf else op_iload_f) dst sa
  | I.Fneg x -> let s = slot_f em depth x in e3 em op_fneg dst s
  | I.Fi2f x -> let s = slot_i em depth x in e3 em op_i2f dst s
  | I.Fbin (op, a, b) ->
    (match op, b with
     | (Spec_ir.Sir.Add | Spec_ir.Sir.Sub | Spec_ir.Sir.Mul),
       I.Filod { a = ba; spec = false; _ } ->
       let sa = slot_f em depth a in
       let sb = slot_i em (depth + 1) ba in
       let fused =
         match op with
         | Spec_ir.Sir.Add -> op_fadd_ld
         | Spec_ir.Sir.Sub -> op_fsub_ld
         | _ -> op_fmul_ld
       in
       e4 em fused dst sa sb
     | _ ->
       let sa = slot_f em depth a in
       let sb = slot_f em (depth + 1) b in
       let o =
         match op with
         | Spec_ir.Sir.Add -> op_fadd | Spec_ir.Sir.Sub -> op_fsub
         | Spec_ir.Sir.Mul -> op_fmul | Spec_ir.Sir.Div -> op_fdiv
         | _ -> assert false
       in
       e4 em o dst sa sb)
  | I.Fof_i x -> let s = slot_i em depth x in e2 em op_of_i s

(* value of [e] in *some* slot: named registers are used in place,
   anything else is forced into the temp at [depth] *)
and slot_i em depth (e : I.iexpr) : int =
  match e with
  | I.Ireg s -> s
  | _ -> let t = tmp em depth in force_i em depth t e; t

and slot_f em depth (e : I.fexpr) : int =
  match e with
  | I.Freg s -> s
  | _ -> let t = tmp em depth in force_f em depth t e; t

(* ------------------------------------------------------------------ *)
(* Statement lowering                                                  *)
(* ------------------------------------------------------------------ *)

let lower_arm em = function
  | I.Arm_none -> ()
  | I.Arm_ilod { tvid; a } ->
    (* the address is re-evaluated (side effects included); a
       Runtime_error inside it skips the arm and execution continues,
       matching the tree engines' try/with *)
    e2 em op_arm_try 0;
    let patch = em.len - 1 in
    let s = slot_i em 0 a in
    e3 em op_arm tvid s;
    em.code.(patch) <- em.len
  | I.Arm_var { tvid; vr } ->
    (match vr with
     | I.Rglob g -> e3 em op_arm_g tvid g
     | I.Rslot s -> e3 em op_arm_s tvid s
     | I.Rnone n -> no_slot_err em n)

(* statements that lower to a dedicated check opcode bump [check_stmts]
   inside the opcode; any other [Mchk]-marked statement needs an
   explicit CHKSTMT first *)
let lowers_to_chk_op = function
  | I.CSchk_ilod _ -> true
  | I.CSchk_lod { vr = I.Rglob _ | I.Rslot _; _ } -> true
  | _ -> false

let lower_stmt em (s : I.cstmt) =
  match s with
  | I.CSnop -> ()
  | I.CSseti { slot; e; arm } ->
    force_i em 0 slot e;
    lower_arm em arm
  | I.CSsetf { slot; e; arm } ->
    force_f em 0 slot e;
    lower_arm em arm
  | I.CSstorev_i { vr; e } ->
    (* value first, then the address resolve — tree-engine order *)
    let v = slot_i em 0 e in
    (match vr with
     | I.Rglob g -> e3 em op_stg_i g v
     | I.Rslot s -> e3 em op_sts_i s v
     | I.Rnone n -> no_slot_err em n)
  | I.CSstorev_f { vr; e } ->
    let v = slot_f em 0 e in
    (match vr with
     | I.Rglob g -> e3 em op_stg_f g v
     | I.Rslot s -> e3 em op_sts_f s v
     | I.Rnone n -> no_slot_err em n)
  | I.CSchk_ilod { tvid; slot; fp; a; dd; _ } ->
    let sa = slot_i em 0 a in
    (match dd with
     | Some d -> em.dlist <- (em.len, (d, em.refund)) :: em.dlist
     | None -> ());
    e4 em (if fp then op_chk_ilod_f else op_chk_ilod_i) tvid slot sa
  | I.CSchk_lod { tvid; slot; fp; vr; dd } ->
    let record () =
      match dd with
      | Some d -> em.dlist <- (em.len, (d, em.refund)) :: em.dlist
      | None -> ()
    in
    (match vr with
     | I.Rglob g ->
       record ();
       e4 em (if fp then op_chk_ldg_f else op_chk_ldg_i) tvid slot g
     | I.Rslot s ->
       record ();
       e4 em (if fp then op_chk_lds_f else op_chk_lds_i) tvid slot s
     | I.Rnone n -> e1 em op_chkstmt; no_slot_err em n)
  | I.CSistr_i { a; e; _ } ->
    let sa = slot_i em 0 a in
    (match e with
     | I.Iconst i -> e3 em op_ist_ii sa i
     | I.Ibin (Spec_ir.Sir.Add, x, I.Iconst i) ->
       let sx = slot_i em 1 x in
       e4 em op_ist_addi sa sx i
     | I.Ibin (Spec_ir.Sir.Add, x, y) ->
       let sx = slot_i em 1 x in
       let sy = slot_i em 2 y in
       e4 em op_ist_add sa sx sy
     | _ ->
       let v = slot_i em 1 e in
       e3 em op_ist_i sa v)
  | I.CSistr_f { a; e; _ } ->
    let sa = slot_i em 0 a in
    let v = slot_f em 1 e in
    e3 em op_ist_f sa v
  | I.CScall { target; args; ret_slot; ret_fp; csite } ->
    let rfp = if ret_fp then 1 else 0 in
    let builtin_arg () =
      (* builtins take one int argument by construction; a wrongly typed
         arg is not evaluated (tree-engine semantics: the value is 0) *)
      match args.(0) with
      | I.Ai a -> slot_i em 0 a
      | I.Af _ -> let t = tmp em 0 in e3 em op_movi t 0; t
    in
    (match target with
     | I.Tmalloc ->
       let a = builtin_arg () in
       emit em op_malloc; emit em a; emit em ret_slot; emit em rfp;
       emit em csite
     | I.Tprint_int ->
       let a = builtin_arg () in
       e4 em op_print_i a ret_slot rfp
     | I.Tprint_flt ->
       let a =
         match args.(0) with
         | I.Af f -> slot_f em 0 f
         | I.Ai _ ->
           let t = tmp em 0 in
           e3 em op_movf t (fpool_ix em.pools 0.); t
       in
       e4 em op_print_f a ret_slot rfp
     | I.Tseed ->
       let a = builtin_arg () in
       e4 em op_seed a ret_slot rfp
     | I.Trnd ->
       let a = builtin_arg () in
       e4 em op_rnd a ret_slot rfp
     | I.Tuser ix ->
       let n = Array.length args in
       (* argument k lands in temp k; its own evaluation scratch lives
          above the temps still holding earlier arguments *)
       let encs =
         Array.mapi
           (fun k a ->
             let t = tmp em k in
             match a with
             | I.Ai e -> force_i em (k + 1) t e; t * 2
             | I.Af e -> force_f em (k + 1) t e; (t * 2) + 1)
           args
       in
       emit em op_call; emit em ix; emit em ret_slot; emit em rfp;
       emit em n;
       Array.iter (emit em) encs
     | I.Tunknown name ->
       Array.iter
         (fun a ->
           let t = tmp em 0 in
           match a with
           | I.Ai e -> force_i em 1 t e
           | I.Af e -> force_f em 1 t e)
         args;
       e2 em op_call_unknown
         (spool_ix em.pools ("Sir.find_func: no function " ^ name)))
  | I.CSerr { args; msg } ->
    Array.iter
      (fun a ->
        let t = tmp em 0 in
        match a with
        | I.Ai e -> force_i em 1 t e
        | I.Af e -> force_f em 1 t e)
      args;
    e2 em op_call_err (spool_ix em.pools msg)

let lower_term em (t : I.cterm) =
  match t with
  | I.CTgoto b -> emit em op_jmp; blockref em b
  | I.CTcond (c, bt, be) ->
    (match c with
     | I.Icmp_i (op, a, I.Iconst i) ->
       let sa = slot_i em 0 a in
       emit em (op_bri_lt + cmp_base op); emit em sa; emit em i;
       blockref em bt; blockref em be
     | I.Icmp_i (op, a, b) ->
       let sa = slot_i em 0 a in
       let sb = slot_i em 1 b in
       emit em (op_br_lt + cmp_base op); emit em sa; emit em sb;
       blockref em bt; blockref em be
     | I.Icmp_f (op, a, b) ->
       let sa = slot_f em 0 a in
       let sb = slot_f em 1 b in
       emit em (op_brf_lt + cmp_base op); emit em sa; emit em sb;
       blockref em bt; blockref em be
     | _ ->
       let s = slot_i em 0 c in
       emit em op_bnz; emit em s; blockref em bt; blockref em be)
  | I.CTret_none -> e1 em op_ret0
  | I.CTret (I.Ai e) -> let s = slot_i em 0 e in e2 em op_ret_i s
  | I.CTret (I.Af e) -> let s = slot_f em 0 e in e2 em op_ret_f s

let lower_func pools (cf : I.cfunc) : func =
  let em = { code = Array.make 256 0; len = 0; n_slots = cf.I.n_slots;
             n_temps = 0; pools; patches = []; dlist = []; refund = 0 } in
  let n = Array.length cf.I.cblocks in
  let offsets = Array.make n 0 in
  for bid = 0 to n - 1 do
    offsets.(bid) <- em.len;
    let b = cf.I.cblocks.(bid) in
    if b.I.cb_phis then
      err em "interpreter cannot execute SSA-form code (phis present)"
    else begin
      let stmts = b.I.cb_stmts in
      e2 em op_steps (Array.length stmts + 1);
      Array.iteri
        (fun k s ->
          em.refund <- Array.length stmts - k;
          if b.I.cb_chk.(k) && not (lowers_to_chk_op s) then
            e1 em op_chkstmt;
          lower_stmt em s)
        stmts;
      lower_term em b.I.cb_term
    end
  done;
  List.iter (fun (pos, bid) -> em.code.(pos) <- offsets.(bid)) em.patches;
  let vdeopt = Hashtbl.create (max 1 (List.length em.dlist)) in
  List.iter (fun (pc, d) -> Hashtbl.replace vdeopt pc d) em.dlist;
  { vname = cf.I.cname;
    vcode = Array.sub em.code 0 em.len;
    n_regs = cf.I.n_slots + em.n_temps;
    n_addr = cf.I.n_addr;
    vmem_locals = cf.I.mem_locals;
    vformals = cf.I.formals;
    vdeopt }

(** Lower an already tree-compiled program. *)
let of_compiled (comp : I.compiled) : program =
  let pools = { fl = []; fn = 0; ftbl = Hashtbl.create 16;
                sl = []; sn = 0; stbl = Hashtbl.create 16 } in
  let vfuncs = Array.map (lower_func pools) comp.I.cfuncs in
  { vsrc = comp.I.cprog;
    vfuncs;
    vmain = comp.I.main_ix;
    fpool = Array.of_list (List.rev pools.fl);
    spool = Array.of_list (List.rev pools.sl) }

(** Compile a whole (non-SSA) program to bytecode: the tree compiler's
    resolution pass followed by flattening.  Still cheap relative to any
    execution. *)
let compile (p : Spec_ir.Sir.prog) : program = of_compiled (I.compile p)

