(** Flat cell-addressed memory shared by the reference interpreter and the
    machine simulator.

    The address space is split into a data segment (globals), a stack, and a
    heap.  Every scalar occupies one 8-byte cell; integer and float cells
    are stored unboxed in two parallel arrays (the typed source language
    never reads a cell at a different scalar kind than it was written, the
    same assumption the type-based alias analysis makes).

    The memory also resolves addresses to abstract memory locations (LOCs)
    for the alias profiler. *)

open Spec_ir

let data_base = 0x1000
let stack_base = 0x100_000
let stack_limit = 0x400_000
let heap_base = 0x1_000_000

type t = {
  ints : int array;
  flts : float array;
  size : int;                          (* in bytes *)
  (* LOC resolution *)
  data_locs : int array;               (* data cell index -> var id *)
  mutable stack_locs : int array;      (* stack cell index -> var id, -1 none *)
  mutable heap_allocs : (int * int * int) array;
      (* (start addr, byte length, alloc site), sorted by start *)
  mutable heap_n : int;
  mutable sp : int;                    (* next free stack address *)
  mutable hp : int;                    (* next free heap address *)
  global_addr : (int, int) Hashtbl.t;  (* var id -> address *)
  (* high-water marks, so a recycled image only re-zeroes what the
     previous run actually dirtied (see the pool below).  The dirty
     range is tracked per segment: the heap starts 16 MB into the
     address space, so a single mark would drag the untouched
     stack-to-heap gap into every scrub — milliseconds of memset that
     used to dominate short engine runs. *)
  mutable hw_low : int;                (* written cells below the heap *)
  mutable hw_heap : int;               (* written cells >= heap_cell0 *)
  mutable data_hw : int;               (* data_locs cells used by layout *)
  mutable stack_hw : int;              (* exclusive bound of stack_locs use *)
}

exception Fault of string

let fault fmt = Fmt.kstr (fun s -> raise (Fault s)) fmt

(* ------------------------------------------------------------------ *)
(* Image pool                                                          *)
(*                                                                     *)
(* A fresh image is two ~size/8-element arrays — 80 MB of zeroing for  *)
(* the default 24 MB heap — and the experiment harness creates one per *)
(* profiling or simulation run.  Instead of paying that alloc+zero     *)
(* cost every time, [release] parks an image in a small pool and       *)
(* [create] revives one of matching size, re-zeroing only the cells    *)
(* the previous run wrote (tracked by the high-water marks).  The pool *)
(* is shared across domains and guarded by a mutex; the arrays of a    *)
(* pooled image are owned by exactly one run at a time.                *)
(* ------------------------------------------------------------------ *)

let pool : t list ref = ref []
let pool_mu = Mutex.create ()
let pool_cap = 4

(** Return [m] to the image pool.  The caller must not touch [m] again:
    the engines call this once a run is over, after which any [t] handed
    out through hooks (e.g. {!Spec_prof.Interp.hooks.on_memory}) is dead. *)
let release (m : t) =
  Mutex.lock pool_mu;
  if List.length !pool < pool_cap then pool := m :: !pool;
  Mutex.unlock pool_mu

let take_pooled size =
  Mutex.lock pool_mu;
  let rec pick acc = function
    | [] -> pool := List.rev acc; None
    | m :: rest when m.size = size ->
      pool := List.rev_append acc rest;
      Some m
    | m :: rest -> pick (m :: acc) rest
  in
  let r = pick [] !pool in
  Mutex.unlock pool_mu;
  r

(* Scrub the regions the previous run dirtied, bringing the image back
   to the all-zeros state a fresh allocation guarantees. *)
let heap_cell0 = heap_base / Types.cell_size

let scrub (m : t) =
  Array.fill m.ints 0 m.hw_low 0;
  Array.fill m.flts 0 m.hw_low 0.;
  Array.fill m.ints heap_cell0 (m.hw_heap - heap_cell0) 0;
  Array.fill m.flts heap_cell0 (m.hw_heap - heap_cell0) 0.;
  Array.fill m.data_locs 0 m.data_hw (-1);
  Array.fill m.stack_locs 0 m.stack_hw (-1);
  m.heap_n <- 0;
  m.sp <- stack_base;
  m.hp <- heap_base;
  Hashtbl.reset m.global_addr;
  m.hw_low <- 0;
  m.hw_heap <- heap_cell0;
  m.data_hw <- 0;
  m.stack_hw <- 0

(** Create a memory image with the program's globals laid out in the data
    segment.  [heap_bytes] bounds heap allocation. *)
let create ?(heap_bytes = 24 * 1024 * 1024) (p : Sir.prog) : t =
  let size = heap_base + heap_bytes in
  let cells = size / Types.cell_size in
  let data_cells = (stack_base - data_base) / Types.cell_size in
  let stack_cells = (stack_limit - stack_base) / Types.cell_size in
  let m =
    match take_pooled size with
    | Some m -> scrub m; m
    | None ->
      { ints = Array.make cells 0;
        flts = Array.make cells 0.;
        size;
        data_locs = Array.make data_cells (-1);
        stack_locs = Array.make stack_cells (-1);
        heap_allocs = Array.make 64 (0, 0, 0);
        heap_n = 0;
        sp = stack_base;
        hp = heap_base;
        global_addr = Hashtbl.create 16;
        hw_low = 0;
        hw_heap = heap_cell0;
        data_hw = 0;
        stack_hw = 0 }
  in
  let next = ref data_base in
  List.iter
    (fun g ->
      let v = Symtab.var p.Sir.syms g in
      Hashtbl.replace m.global_addr g !next;
      let cells_used = max 1 (v.Symtab.vsize / Types.cell_size) in
      for c = 0 to cells_used - 1 do
        m.data_locs.((!next - data_base) / Types.cell_size + c) <- g
      done;
      next := !next + cells_used * Types.cell_size)
    p.Sir.globals;
  m.data_hw <- (!next - data_base) / Types.cell_size;
  if !next > stack_base then fault "data segment overflow";
  m

let check m addr what =
  if addr < data_base || addr + Types.cell_size > m.size then
    fault "%s at invalid address 0x%x" what addr;
  if addr mod Types.cell_size <> 0 then
    fault "%s at unaligned address 0x%x" what addr

let cell addr = addr / Types.cell_size

let load_int m addr = check m addr "load"; m.ints.(cell addr)
let load_flt m addr = check m addr "load"; m.flts.(cell addr)

let touch m c =
  if c >= heap_cell0 then begin
    if c >= m.hw_heap then m.hw_heap <- c + 1
  end
  else if c >= m.hw_low then m.hw_low <- c + 1

let store_int m addr v =
  check m addr "store";
  let c = cell addr in
  touch m c;
  m.ints.(c) <- v

let store_flt m addr v =
  check m addr "store";
  let c = cell addr in
  touch m c;
  m.flts.(c) <- v

(** Non-faulting load for control-speculatively hoisted code (ld.s
    semantics: a bad address defers the fault; the value is never consumed
    on the mis-speculated path). *)
let load_int_spec m addr =
  if addr < data_base || addr + Types.cell_size > m.size
     || addr mod Types.cell_size <> 0
  then 0
  else m.ints.(cell addr)

let load_flt_spec m addr =
  if addr < data_base || addr + Types.cell_size > m.size
     || addr mod Types.cell_size <> 0
  then 0.
  else m.flts.(cell addr)

let global_addr m vid =
  match Hashtbl.find_opt m.global_addr vid with
  | Some a -> a
  | None -> fault "global %d has no address" vid

(* ---- stack frames ---- *)

(** Allocate [bytes] of stack for variable [vid]; returns the address. *)
let push_frame_var m vid bytes =
  let addr = m.sp in
  if addr + bytes > stack_limit then fault "stack overflow";
  m.sp <- m.sp + bytes;
  let base_cell = (addr - stack_base) / Types.cell_size in
  let ncells = bytes / Types.cell_size in
  for c = 0 to ncells - 1 do
    m.stack_locs.(base_cell + c) <- vid
  done;
  if base_cell + ncells > m.stack_hw then m.stack_hw <- base_cell + ncells;
  addr

let stack_mark m = m.sp

let pop_frame m mark =
  (* stale [stack_locs] entries above the mark are cleared lazily: they are
     overwritten on the next push; clear eagerly for LOC accuracy *)
  for c = (mark - stack_base) / Types.cell_size
      to (m.sp - stack_base) / Types.cell_size - 1 do
    m.stack_locs.(c) <- -1
  done;
  m.sp <- mark

(* ---- heap ---- *)

let malloc m ~site bytes =
  let bytes = max Types.cell_size ((bytes + 7) / 8 * 8) in
  let addr = m.hp in
  if addr + bytes > m.size then fault "heap exhausted";
  m.hp <- m.hp + bytes;
  if m.heap_n = Array.length m.heap_allocs then begin
    let a = Array.make (2 * m.heap_n) (0, 0, 0) in
    Array.blit m.heap_allocs 0 a 0 m.heap_n;
    m.heap_allocs <- a
  end;
  m.heap_allocs.(m.heap_n) <- (addr, bytes, site);
  m.heap_n <- m.heap_n + 1;
  addr

(* ---- LOC resolution ---- *)

(** Resolve an address to its abstract memory location. *)
let loc_of_addr m addr : Loc.t option =
  if addr >= data_base && addr < stack_base then begin
    let v = m.data_locs.(cell (addr - data_base)) in
    if v >= 0 then Some (Loc.Lvar v) else None
  end
  else if addr >= stack_base && addr < stack_limit then begin
    let v = m.stack_locs.(cell (addr - stack_base)) in
    if v >= 0 then Some (Loc.Lvar v) else None
  end
  else if addr >= heap_base && addr < m.hp then begin
    (* binary search over allocations *)
    let lo = ref 0 and hi = ref (m.heap_n - 1) in
    let found = ref None in
    while !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      let start, len, site = m.heap_allocs.(mid) in
      if addr < start then hi := mid - 1
      else if addr >= start + len then lo := mid + 1
      else begin
        found := Some (Loc.Lheap site);
        lo := !hi + 1
      end
    done;
    !found
  end
  else None
