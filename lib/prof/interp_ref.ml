(** Frozen tree-walking reference interpreter for SIR.

    This is the seed interpreter, kept verbatim as the *semantic oracle*
    for the pre-compiled engine in {!Interp}: the differential test suite
    runs every workload under every pipeline variant on both engines and
    asserts identical output, return value, and counters.  It walks the
    SIR tree directly — symbol-table lookups and hash tables on every
    variable access — so it is slow but obviously faithful to the
    language definition.  Do not optimize this module; optimize
    {!Interp} and prove it equivalent here. *)

open Spec_ir

type value = Vint of int | Vflt of float

exception Runtime_error of string

let error fmt = Fmt.kstr (fun s -> raise (Runtime_error s)) fmt

let as_int = function
  | Vint i -> i
  | Vflt f -> error "expected int value, got float %g" f

let as_flt = function
  | Vflt f -> f
  | Vint i -> error "expected float value, got int %d" i

type counters = {
  mutable steps : int;
  mutable mem_loads : int;
  mutable mem_stores : int;
  mutable branches : int;
  mutable calls : int;
  mutable check_stmts : int;
  mutable check_reloads : int;
}

type result = {
  ret : value;
  output : string;
  counters : counters;
}

type state = {
  prog : Sir.prog;
  mem : Memory.t;
  ctrs : counters;
  out : Buffer.t;
  mutable rng : int;
  mutable fuel : int;
  (* semantic ALAT: advanced loads arm an entry (frame serial, temp) ->
     address; stores invalidate matching addresses; a check reload is
     skipped when its entry survives.  Unbounded (ideal): capacity
     effects belong to the machine model, not the language semantics. *)
  alat : (int * int, int) Hashtbl.t;
  mutable frame_serial : int;
  (* injected ALAT interference (stress runs only); time counted in ALAT
     operations, mirroring Interp so both engines stay comparable *)
  finj : Spec_stress.Faults.injector option;
  mutable fevents : int;
}

type frame = {
  func : Sir.func;
  serial : int;
  regs : (int, value) Hashtbl.t;       (* register-resident vars *)
  addrs : (int, int) Hashtbl.t;        (* memory-resident locals -> address *)
}

(* Interference only removes entries: a faulted run reloads values that
   are current in memory, so observable behavior is unchanged. *)
let alat_interfere st =
  match st.finj with
  | None -> ()
  | Some inj ->
    st.fevents <- st.fevents + 1;
    Spec_stress.Faults.advance inj ~upto:st.fevents
      ~flush:(fun () -> Hashtbl.reset st.alat)
      ~invalidate:(fun rng ->
        let n = Hashtbl.length st.alat in
        if n > 0 then begin
          let k = Spec_stress.Srng.below rng n in
          let i = ref 0 and victim = ref None in
          Hashtbl.iter
            (fun key _ -> if !i = k then victim := Some key; incr i)
            st.alat;
          match !victim with
          | Some key -> Hashtbl.remove st.alat key
          | None -> ()
        end)

let alat_arm st (fr : frame) tvid addr =
  alat_interfere st;
  Hashtbl.replace st.alat (fr.serial, tvid) addr

let alat_check st (fr : frame) tvid addr =
  alat_interfere st;
  match Hashtbl.find_opt st.alat (fr.serial, tvid) with
  | Some a -> a = addr
  | None -> false

let alat_invalidate st addr =
  alat_interfere st;
  let stale =
    Hashtbl.fold
      (fun k a acc -> if a = addr then k :: acc else acc)
      st.alat []
  in
  List.iter (Hashtbl.remove st.alat) stale

let zero_of ty = if Types.is_fp ty then Vflt 0. else Vint 0

let spend st =
  st.ctrs.steps <- st.ctrs.steps + 1;
  st.fuel <- st.fuel - 1;
  if st.fuel <= 0 then error "out of fuel (infinite loop?)"

let var_addr st frame vid =
  let v = Symtab.orig st.prog.Sir.syms vid in
  match v.Symtab.vstorage with
  | Symtab.Sglobal -> Memory.global_addr st.mem v.Symtab.vid
  | _ ->
    (match Hashtbl.find_opt frame.addrs v.Symtab.vid with
     | Some a -> a
     | None -> error "no stack slot for %s" v.Symtab.vname)

let read_reg st frame vid =
  let v = Symtab.orig st.prog.Sir.syms vid in
  match Hashtbl.find_opt frame.regs v.Symtab.vid with
  | Some x -> x
  | None -> zero_of v.Symtab.vty     (* uninitialized: deterministic zero *)

let write_reg st frame vid x =
  let v = Symtab.orig st.prog.Sir.syms vid in
  Hashtbl.replace frame.regs v.Symtab.vid x

let load_mem st ~spec ~site:_ ty addr =
  st.ctrs.mem_loads <- st.ctrs.mem_loads + 1;
  if Types.is_fp ty then
    Vflt (if spec then Memory.load_flt_spec st.mem addr
          else Memory.load_flt st.mem addr)
  else
    Vint (if spec then Memory.load_int_spec st.mem addr
          else Memory.load_int st.mem addr)

(** Direct load of a memory-resident variable: counter + typed cell read.
    Shared between ordinary [Lod] evaluation and the direct check-load
    reload path. *)
let load_var_raw st vid addr =
  st.ctrs.mem_loads <- st.ctrs.mem_loads + 1;
  let v = Symtab.orig st.prog.Sir.syms vid in
  if Types.is_fp v.Symtab.vty then Vflt (Memory.load_flt st.mem addr)
  else Vint (Memory.load_int st.mem addr)

let eval_binop op ty a b =
  match op, ty with
  | Sir.Add, Types.Tflt -> Vflt (as_flt a +. as_flt b)
  | Sir.Sub, Types.Tflt -> Vflt (as_flt a -. as_flt b)
  | Sir.Mul, Types.Tflt -> Vflt (as_flt a *. as_flt b)
  | Sir.Div, Types.Tflt ->
    let d = as_flt b in
    Vflt (as_flt a /. d)     (* IEEE semantics: inf/nan allowed *)
  | Sir.Add, _ -> Vint (as_int a + as_int b)
  | Sir.Sub, _ -> Vint (as_int a - as_int b)
  | Sir.Mul, _ -> Vint (as_int a * as_int b)
  | Sir.Div, _ ->
    let d = as_int b in
    if d = 0 then error "integer division by zero" else Vint (as_int a / d)
  | Sir.Rem, _ ->
    let d = as_int b in
    if d = 0 then error "integer remainder by zero" else Vint (as_int a mod d)
  | Sir.Band, _ -> Vint (as_int a land as_int b)
  | Sir.Bor, _ -> Vint (as_int a lor as_int b)
  | Sir.Bxor, _ -> Vint (as_int a lxor as_int b)
  | Sir.Shl, _ -> Vint (as_int a lsl (as_int b land 63))
  | Sir.Shr, _ -> Vint (as_int a asr (as_int b land 63))
  | (Sir.Lt | Sir.Le | Sir.Gt | Sir.Ge | Sir.Eq | Sir.Ne), _ ->
    let cmp =
      match a, b with
      | Vflt x, Vflt y -> compare x y
      | Vint x, Vint y -> compare x y
      | Vint x, Vflt y -> compare (float_of_int x) y
      | Vflt x, Vint y -> compare x (float_of_int y)
    in
    let r =
      match op with
      | Sir.Lt -> cmp < 0 | Sir.Le -> cmp <= 0
      | Sir.Gt -> cmp > 0 | Sir.Ge -> cmp >= 0
      | Sir.Eq -> cmp = 0 | Sir.Ne -> cmp <> 0
      | _ -> assert false
    in
    Vint (if r then 1 else 0)

let rec eval st frame ~spec (e : Sir.expr) : value =
  match e with
  | Sir.Const (Sir.Cint i) -> Vint i
  | Sir.Const (Sir.Cflt f) -> Vflt f
  | Sir.Lod vid ->
    if Symtab.is_mem st.prog.Sir.syms vid then
      load_var_raw st vid (var_addr st frame vid)
    else read_reg st frame vid
  | Sir.Ilod (ty, a, site) ->
    let addr = as_int (eval st frame ~spec a) in
    load_mem st ~spec ~site:(Some site) ty addr
  | Sir.Lda vid -> Vint (var_addr st frame vid)
  | Sir.Unop (Sir.Neg, Types.Tflt, e) -> Vflt (-.as_flt (eval st frame ~spec e))
  | Sir.Unop (Sir.Neg, _, e) -> Vint (- (as_int (eval st frame ~spec e)))
  | Sir.Unop (Sir.Lnot, _, e) ->
    Vint (if as_int (eval st frame ~spec e) = 0 then 1 else 0)
  | Sir.Unop (Sir.I2f, _, e) -> Vflt (float_of_int (as_int (eval st frame ~spec e)))
  | Sir.Unop (Sir.F2i, _, e) -> Vint (int_of_float (as_flt (eval st frame ~spec e)))
  | Sir.Binop (op, ty, a, b) ->
    let va = eval st frame ~spec a in
    let vb = eval st frame ~spec b in
    eval_binop op ty va vb

(** Shared ld.c structure: reload and re-arm only when the armed entry was
    invalidated by an intervening aliasing store (IA-64 semantics). *)
and exec_check st frame ~tvid ~vid ~addr ~reload =
  if not (alat_check st frame tvid addr) then begin
    st.ctrs.check_reloads <- st.ctrs.check_reloads + 1;
    write_reg st frame vid (reload ());
    alat_arm st frame tvid addr
  end

and exec_stmt st frame (s : Sir.stmt) : unit =
  spend st;
  if s.Sir.mark = Sir.Mchk then st.ctrs.check_stmts <- st.ctrs.check_stmts + 1;
  let spec = s.Sir.mark = Sir.Mcspec || s.Sir.mark = Sir.Msa in
  match s.Sir.kind with
  | Sir.Snop -> ()
  (* a check load of an indirect reference *)
  | Sir.Stid (vid, Sir.Ilod (ty, a, site))
    when s.Sir.mark = Sir.Mchk && not (Symtab.is_mem st.prog.Sir.syms vid) ->
    let tvid = (Symtab.orig st.prog.Sir.syms vid).Symtab.vid in
    let addr = as_int (eval st frame ~spec a) in
    exec_check st frame ~tvid ~vid ~addr ~reload:(fun () ->
        load_mem st ~spec:false ~site:(Some site) ty addr)
  (* same, for a check of a direct (global / address-taken) variable load *)
  | Sir.Stid (vid, Sir.Lod g)
    when s.Sir.mark = Sir.Mchk
         && (not (Symtab.is_mem st.prog.Sir.syms vid))
         && Symtab.is_mem st.prog.Sir.syms g ->
    let tvid = (Symtab.orig st.prog.Sir.syms vid).Symtab.vid in
    let addr = var_addr st frame g in
    exec_check st frame ~tvid ~vid ~addr ~reload:(fun () ->
        load_var_raw st g addr)
  | Sir.Stid (vid, e) ->
    let value = eval st frame ~spec e in
    if Symtab.is_mem st.prog.Sir.syms vid then begin
      let addr = var_addr st frame vid in
      st.ctrs.mem_stores <- st.ctrs.mem_stores + 1;
      alat_invalidate st addr;
      let v = Symtab.orig st.prog.Sir.syms vid in
      if Types.is_fp v.Symtab.vty then
        Memory.store_flt st.mem addr (as_flt value)
      else Memory.store_int st.mem addr (as_int value)
    end
    else begin
      write_reg st frame vid value;
      (* advanced loads arm the semantic ALAT *)
      (match s.Sir.mark, e with
       | (Sir.Madv | Sir.Msa), Sir.Ilod (_, a, _) ->
         let tvid = (Symtab.orig st.prog.Sir.syms vid).Symtab.vid in
         (try alat_arm st frame tvid (as_int (eval st frame ~spec a))
          with Runtime_error _ -> ())
       | (Sir.Madv | Sir.Msa), Sir.Lod g
         when Symtab.is_mem st.prog.Sir.syms g ->
         let tvid = (Symtab.orig st.prog.Sir.syms vid).Symtab.vid in
         alat_arm st frame tvid (var_addr st frame g)
       | _ -> ())
    end
  | Sir.Istr (ty, a, e, _site) ->
    let addr = as_int (eval st frame ~spec a) in
    let value = eval st frame ~spec e in
    st.ctrs.mem_stores <- st.ctrs.mem_stores + 1;
    alat_invalidate st addr;
    if Types.is_fp ty then Memory.store_flt st.mem addr (as_flt value)
    else Memory.store_int st.mem addr (as_int value)
  | Sir.Call { callee; args; ret; csite } ->
    let argv = List.map (eval st frame ~spec) args in
    st.ctrs.calls <- st.ctrs.calls + 1;
    let result = call st ~site:csite callee argv in
    (match ret with
     | Some r -> write_reg st frame r result
     | None -> ())

and call st ~site callee argv : value =
  match callee with
  | "malloc" ->
    (match argv with
     | [ Vint bytes ] -> Vint (Memory.malloc st.mem ~site bytes)
     | _ -> error "malloc expects one int")
  | "print_int" ->
    (match argv with
     | [ Vint i ] -> Buffer.add_string st.out (string_of_int i);
       Buffer.add_char st.out '\n'; Vint 0
     | _ -> error "print_int expects one int")
  | "print_flt" ->
    (match argv with
     | [ Vflt f ] -> Buffer.add_string st.out (Printf.sprintf "%.6g" f);
       Buffer.add_char st.out '\n'; Vint 0
     | _ -> error "print_flt expects one float")
  | "seed" ->
    (match argv with
     | [ Vint s ] -> st.rng <- s; Vint 0
     | _ -> error "seed expects one int")
  | "rnd" ->
    (match argv with
     | [ Vint m ] ->
       if m <= 0 then error "rnd expects a positive bound";
       st.rng <- (st.rng * 0x5851F42D4C957F2D + 0x14057B7EF767814F)
                 land max_int;
       Vint ((st.rng lsr 29) mod m)
     | _ -> error "rnd expects one int")
  | name -> call_user st name argv

and call_user st name argv : value =
  let f = Sir.find_func st.prog name in
  st.frame_serial <- st.frame_serial + 1;
  let frame =
    { func = f; serial = st.frame_serial; regs = Hashtbl.create 16;
      addrs = Hashtbl.create 8 }
  in
  let mark = Memory.stack_mark st.mem in
  (* stack slots for memory-resident locals *)
  List.iter
    (fun vid ->
      let v = Symtab.var st.prog.Sir.syms vid in
      if Symtab.is_mem st.prog.Sir.syms vid then
        Hashtbl.replace frame.addrs vid
          (Memory.push_frame_var st.mem vid (max Types.cell_size v.Symtab.vsize)))
    f.Sir.flocals;
  (* bind formals; address-taken formals spill to their slot *)
  (try
     List.iter2
       (fun vid value ->
         if Symtab.is_mem st.prog.Sir.syms vid then begin
           let v = Symtab.var st.prog.Sir.syms vid in
           let addr =
             Memory.push_frame_var st.mem vid (max Types.cell_size v.Symtab.vsize)
           in
           Hashtbl.replace frame.addrs vid addr;
           if Types.is_fp v.Symtab.vty then
             Memory.store_flt st.mem addr (as_flt value)
           else Memory.store_int st.mem addr (as_int value)
         end
         else Hashtbl.replace frame.regs vid value)
       f.Sir.fformals argv
   with Invalid_argument _ ->
     error "arity mismatch calling %s" name);
  let ret = exec_blocks st frame in
  Memory.pop_frame st.mem mark;
  ret

and exec_blocks st frame : value =
  let f = frame.func in
  let rec run_block bid : value =
    let b = Sir.block f bid in
    if b.Sir.phis <> [] then
      error "interpreter cannot execute SSA-form code (phis present)";
    List.iter (exec_stmt st frame) b.Sir.stmts;
    spend st;
    match b.Sir.term with
    | Sir.Tgoto next -> run_block next
    | Sir.Tcond (c, t, e) ->
      st.ctrs.branches <- st.ctrs.branches + 1;
      let taken = as_int (eval st frame ~spec:false c) <> 0 in
      run_block (if taken then t else e)
    | Sir.Tret None -> Vint 0
    | Sir.Tret (Some e) -> eval st frame ~spec:false e
  in
  run_block Sir.entry_bid

(** Run [main].  [fuel] bounds the number of executed statements.
    [faults] attaches injected ALAT interference for stress runs. *)
let run ?(fuel = 200_000_000) ?faults ?(heap_bytes = 24 * 1024 * 1024)
    (p : Sir.prog) : result =
  if not (Hashtbl.mem p.Sir.funcs "main") then
    error "program has no main function";
  let st =
    { prog = p; mem = Memory.create ~heap_bytes p;
      ctrs = { steps = 0; mem_loads = 0; mem_stores = 0; branches = 0;
               calls = 0; check_stmts = 0; check_reloads = 0 };
      out = Buffer.create 256; rng = 88172645463325252; fuel;
      alat = Hashtbl.create 32; frame_serial = 0;
      finj = faults; fevents = 0 }
  in
  let ret = call_user st "main" [] in
  let r = { ret; output = Buffer.contents st.out; counters = st.ctrs } in
  Memory.release st.mem;
  r
