(** Flat cell-addressed memory shared by the execution engines and the
    machine simulator.

    The address space is split into a data segment (globals), a stack,
    and a heap.  Every scalar occupies one 8-byte cell; integer and
    float cells are stored unboxed in two parallel arrays (the typed
    source language never reads a cell at a different scalar kind than
    it was written — the same assumption the type-based alias analysis
    makes).

    The record type is exposed (rather than abstract) deliberately: the
    threaded-code engine ({!Vm}) inlines the bounds check and the cell
    array access in its dispatch loop, falling back to the checked
    accessors below on the slow path.  Any layout change here is a
    change to the engine contract. *)

open Spec_ir

val data_base : int
val stack_base : int
val stack_limit : int
val heap_base : int

(** First heap cell index; the boundary between the [hw_low] and
    [hw_heap] dirty-range marks below. *)
val heap_cell0 : int

type t = {
  ints : int array;
  flts : float array;
  size : int;                          (* in bytes *)
  (* LOC resolution *)
  data_locs : int array;               (* data cell index -> var id *)
  mutable stack_locs : int array;      (* stack cell index -> var id, -1 none *)
  mutable heap_allocs : (int * int * int) array;
      (* (start addr, byte length, alloc site), sorted by start *)
  mutable heap_n : int;
  mutable sp : int;                    (* next free stack address *)
  mutable hp : int;                    (* next free heap address *)
  global_addr : (int, int) Hashtbl.t;  (* var id -> address *)
  (* high-water marks, so a recycled image only re-zeroes what the
     previous run actually dirtied; tracked per segment because the
     heap sits 16 MB into the address space *)
  mutable hw_low : int;                (* written cells below the heap *)
  mutable hw_heap : int;               (* written cells in the heap *)
  mutable data_hw : int;               (* data_locs cells used by layout *)
  mutable stack_hw : int;              (* exclusive bound of stack_locs use *)
}

exception Fault of string

(** Return [m] to the image pool.  The caller must not touch [m] again:
    the engines call this once a run is over, after which any [t] handed
    out through hooks (e.g. {!Interp.hooks.on_memory}) is dead. *)
val release : t -> unit

(** Create a memory image with the program's globals laid out in the
    data segment.  [heap_bytes] bounds heap allocation.  Images are
    recycled through a small domain-shared pool; only the cells the
    previous run dirtied are re-zeroed. *)
val create : ?heap_bytes:int -> Sir.prog -> t

val load_int : t -> int -> int
val load_flt : t -> int -> float
val store_int : t -> int -> int -> unit
val store_flt : t -> int -> float -> unit

(** Non-faulting loads for control-speculatively hoisted code (ld.s
    semantics: a bad address defers the fault; the value is never
    consumed on the mis-speculated path). *)
val load_int_spec : t -> int -> int

val load_flt_spec : t -> int -> float

(** Address of a global variable; faults if the variable has none. *)
val global_addr : t -> int -> int

(** Allocate [bytes] of stack for variable [vid]; returns the address. *)
val push_frame_var : t -> int -> int -> int

val stack_mark : t -> int
val pop_frame : t -> int -> unit

val malloc : t -> site:int -> int -> int

(** Resolve an address to its abstract memory location. *)
val loc_of_addr : t -> int -> Loc.t option
