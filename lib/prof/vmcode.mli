(** Threaded-code lowering: resolved SIR to a flat bytecode array.

    Compiles {!Interp}'s resolved tree form one step further, into a
    dense [int array] instruction stream per function — opcode words
    with inline operand slots — executed by the dispatch loop in {!Vm}.
    Lowering from {!Interp.compiled} (rather than from [Sir] directly)
    means every type-resolution, slot-assignment and
    speculation-classification decision is inherited from the tree
    engine, which is what keeps the two engines byte-identical by
    construction.

    The opcode numbering is private to this module and {!Vm} — the
    serialized form ([specvm/2], {!Spec_fdo.Vm_io}) carries raw code
    words, so the two files must stay in sync; the differential suites
    catch any mismatch immediately. *)

type func = {
  vname : string;
  vcode : int array;                     (** flat opcode/operand words *)
  n_regs : int;                          (** slots incl. temporaries *)
  n_addr : int;                          (** frame address slots *)
  vmem_locals : (int * int * int) array; (** (addr slot, vid, bytes) *)
  vformals : Interp.formal array;
  vdeopt : (int, Interp.cdeopt * int) Hashtbl.t;
      (** check-opcode pc -> (deoptimization descriptor, step refund).
          Slot numbering is the tree compiler's, which the bytecode
          shares; the refund undoes the block's up-front step charge for
          the statements a mid-block deopt never executes, keeping the
          step counter identical to the tree engine's. *)
}

type program = {
  vsrc : Spec_ir.Sir.prog;   (** the SIR the bytecode was lowered from *)
  vfuncs : func array;
  vmain : int;               (** index into [vfuncs], [-1] if no main *)
  fpool : float array;       (** float-literal pool *)
  spool : string array;      (** error-message pool *)
}

(** Lower an already-compiled tree program (shares its resolution
    decisions). *)
val of_compiled : Interp.compiled -> program

(** [of_compiled] of {!Interp.compile}. *)
val compile : Spec_ir.Sir.prog -> program
