(** Threaded-code execution engine: a tight dispatch loop over the flat
    bytecode produced by {!Vmcode} (the "vm" engine).

    One closure-free [loop] per activation dispatches on dense integer
    opcodes (the match compiles to a jump table) over the same unboxed
    per-frame int/float slot arrays the tree engine uses.  Memory access
    inlines the bounds check and falls back to {!Memory}'s checked
    accessors on the slow path, so every fault is raised with the exact
    message the tree engines produce.

    All speculation semantics carry over: the semantic ALAT is the same
    unbounded [(frame serial, tag) -> address] table, advanced loads arm
    it (with the tree engine's re-evaluated-address side effects and its
    try/with via a per-activation trap continuation), stores invalidate
    matching addresses, check loads reload only when their entry is
    gone, and injected interference ({!Spec_stress.Faults}) advances on
    the same ALAT-operation clock.  Observable behaviour — output,
    return value, and all counters — is identical to {!Interp} and
    {!Interp_ref} on every run that terminates; the differential suites
    in [test/test_engines.ml] and [test/test_fuzz.ml] enforce this
    across workloads, variants and fault plans. *)

open Spec_ir
module I = Interp
module V = Vmcode

type result = I.result

let error = I.error

type state = {
  vp : V.program;
  mem : Memory.t;
  ctrs : I.counters;
  out : Buffer.t;
  globals : int array;   (* orig vid -> data-segment address, -1 if none *)
  mutable rng : int;
  mutable fuel : int;
  (* semantic ALAT, identical protocol to the tree engines *)
  alat : (int * int, int) Hashtbl.t;
  mutable frame_serial : int;
  finj : Spec_stress.Faults.injector option;
  mutable fevents : int;
  (* return-value registers: callee -> caller, no allocation *)
  mutable ret_isf : bool;
  mutable ret_i : int;
  mutable ret_f : float;
  (* deopt recovery plan: failed checks whose pc has a descriptor finish
     the function in its unoptimized body instead of reloading *)
  recover : Spec_safety.Deopt.plan option;
}

(** Raised after a deoptimizing check's continuation has run: the return
    registers are already set, so the activation just unwinds to its
    frame pop. *)
exception Deopt_done

let no_ints : int array = [||]
let no_flts : float array = [||]

(* ---- ALAT (same semantics and fold-order determinism as Interp) ---- *)

let alat_interfere st =
  match st.finj with
  | None -> ()
  | Some inj ->
    st.fevents <- st.fevents + 1;
    Spec_stress.Faults.advance inj ~upto:st.fevents
      ~flush:(fun () -> Hashtbl.reset st.alat)
      ~invalidate:(fun rng ->
        let n = Hashtbl.length st.alat in
        if n > 0 then begin
          let k = Spec_stress.Srng.below rng n in
          let i = ref 0 and victim = ref None in
          Hashtbl.iter
            (fun key _ -> if !i = k then victim := Some key; incr i)
            st.alat;
          match !victim with
          | Some key -> Hashtbl.remove st.alat key
          | None -> ()
        end)

let alat_arm st serial tvid addr =
  alat_interfere st;
  Hashtbl.replace st.alat (serial, tvid) addr

let alat_check st serial tvid addr =
  alat_interfere st;
  match Hashtbl.find_opt st.alat (serial, tvid) with
  | Some a -> a = addr
  | None -> false

(* The empty-ALAT/no-injector case is every store of a non-speculative
   run (and most stores of speculative ones): skipping it entirely is
   unobservable — the interference clock only ticks under an injector,
   and there is nothing to invalidate. *)
let alat_invalidate st addr =
  if st.finj != None || Hashtbl.length st.alat > 0 then begin
    alat_interfere st;
    let stale =
      Hashtbl.fold
        (fun k a acc -> if a = addr then k :: acc else acc)
        st.alat []
    in
    List.iter (Hashtbl.remove st.alat) stale
  end

(* ---- memory fast paths ---- *)
(* The range test avoids `addr + 8` so a near-max_int address cannot
   wrap into the fast path; out-of-range traffic falls back to the
   checked accessors, which raise (or, for spec loads, absorb) the
   exact faults the tree engines see. *)

let data_base = Memory.data_base

let[@inline] ld_i (m : Memory.t) addr =
  if addr >= data_base && addr <= m.Memory.size - 8 && addr land 7 = 0
  then Array.unsafe_get m.Memory.ints (addr lsr 3)
  else Memory.load_int m addr

let[@inline] ld_f (m : Memory.t) addr =
  if addr >= data_base && addr <= m.Memory.size - 8 && addr land 7 = 0
  then Array.unsafe_get m.Memory.flts (addr lsr 3)
  else Memory.load_flt m addr

let[@inline] ld_i_spec (m : Memory.t) addr =
  if addr >= data_base && addr <= m.Memory.size - 8 && addr land 7 = 0
  then Array.unsafe_get m.Memory.ints (addr lsr 3)
  else Memory.load_int_spec m addr

let[@inline] ld_f_spec (m : Memory.t) addr =
  if addr >= data_base && addr <= m.Memory.size - 8 && addr land 7 = 0
  then Array.unsafe_get m.Memory.flts (addr lsr 3)
  else Memory.load_flt_spec m addr

let[@inline] touch (m : Memory.t) c =
  if c >= Memory.heap_cell0 then begin
    if c >= m.Memory.hw_heap then m.Memory.hw_heap <- c + 1
  end
  else if c >= m.Memory.hw_low then m.Memory.hw_low <- c + 1

let[@inline] st_i (m : Memory.t) addr v =
  if addr >= data_base && addr <= m.Memory.size - 8 && addr land 7 = 0
  then begin
    let c = addr lsr 3 in
    touch m c;
    Array.unsafe_set m.Memory.ints c v
  end
  else Memory.store_int m addr v

let[@inline] st_f (m : Memory.t) addr v =
  if addr >= data_base && addr <= m.Memory.size - 8 && addr land 7 = 0
  then begin
    let c = addr lsr 3 in
    touch m c;
    Array.unsafe_set m.Memory.flts c v
  end
  else Memory.store_flt m addr v

let[@inline] glob_addr st g =
  let a = Array.unsafe_get st.globals g in
  if a >= 0 then a else Memory.global_addr st.mem g

(* ---- dispatch ---- *)

let rec exec_func st fix (ai : int array) (af : float array) : unit =
  let vf = Array.unsafe_get st.vp.V.vfuncs fix in
  st.frame_serial <- st.frame_serial + 1;
  let serial = st.frame_serial in
  let nr = vf.V.n_regs in
  let ints = if nr = 0 then no_ints else Array.make nr 0 in
  let flts = if nr = 0 then no_flts else Array.make nr 0. in
  let addrs =
    if vf.V.n_addr = 0 then no_ints else Array.make vf.V.n_addr 0
  in
  let mem = st.mem in
  let mark = Memory.stack_mark mem in
  Array.iter
    (fun (slot, vid, bytes) ->
      addrs.(slot) <- Memory.push_frame_var mem vid bytes)
    vf.V.vmem_locals;
  let nf = Array.length vf.V.vformals in
  if nf <> Array.length ai then error "arity mismatch calling %s" vf.V.vname;
  for k = 0 to nf - 1 do
    match vf.V.vformals.(k) with
    | I.Fm_reg { slot; fp } ->
      if fp then flts.(slot) <- af.(k) else ints.(slot) <- ai.(k)
    | I.Fm_mem { aslot; vid; bytes; fp } ->
      let addr = Memory.push_frame_var mem vid bytes in
      addrs.(aslot) <- addr;
      if fp then Memory.store_flt mem addr af.(k)
      else Memory.store_int mem addr ai.(k)
  done;
  let code = vf.V.vcode in
  let fpool = st.vp.V.fpool in
  let spool = st.vp.V.spool in
  let ctrs = st.ctrs in
  (* advanced-load arm spans set [trap]: a Runtime_error raised inside
     one resumes after the span (ld.a address-evaluation try/with) *)
  let trap = ref (-1) in
  let[@inline] set_ret rs rfp v =
    if rs >= 0 then begin
      if rfp <> 0 then error "expected float value, got int %d" v
      else Array.unsafe_set ints rs v
    end
  in
  (* failed check at [pc]: deoptimize instead of reloading when a plan is
     attached and the opcode carries a descriptor.  [vm_deopt] never
     returns normally (it raises [Deopt_done]); the [true] keeps the
     reload path conditional on the [false] branches. *)
  let deopting pc =
    match st.recover with
    | None -> false
    | Some pl ->
      (match Hashtbl.find_opt vf.V.vdeopt pc with
       | None -> false
       | Some (d, refund) ->
         vm_deopt st pl vf ints flts addrs d refund;
         true)
  in
  let rec loop pc : unit =
    match Array.unsafe_get code pc with
    | 0 (* STEPS *) ->
      let n = Array.unsafe_get code (pc + 1) in
      ctrs.I.steps <- ctrs.I.steps + n;
      st.fuel <- st.fuel - n;
      if st.fuel <= 0 then error "out of fuel (infinite loop?)";
      loop (pc + 2)
    | 1 (* ERR *) ->
      error "%s" (Array.unsafe_get spool (Array.unsafe_get code (pc + 1)))
    | 2 (* MOVI *) ->
      Array.unsafe_set ints
        (Array.unsafe_get code (pc + 1)) (Array.unsafe_get code (pc + 2));
      loop (pc + 3)
    | 3 (* MOVF *) ->
      Array.unsafe_set flts (Array.unsafe_get code (pc + 1))
        (Array.unsafe_get fpool (Array.unsafe_get code (pc + 2)));
      loop (pc + 3)
    | 4 (* MOVR *) ->
      Array.unsafe_set ints (Array.unsafe_get code (pc + 1))
        (Array.unsafe_get ints (Array.unsafe_get code (pc + 2)));
      loop (pc + 3)
    | 5 (* MOVRF *) ->
      Array.unsafe_set flts (Array.unsafe_get code (pc + 1))
        (Array.unsafe_get flts (Array.unsafe_get code (pc + 2)));
      loop (pc + 3)
    | 6 (* LDG_I *) ->
      let addr = glob_addr st (Array.unsafe_get code (pc + 2)) in
      ctrs.I.mem_loads <- ctrs.I.mem_loads + 1;
      Array.unsafe_set ints (Array.unsafe_get code (pc + 1)) (ld_i mem addr);
      loop (pc + 3)
    | 7 (* LDS_I *) ->
      let addr = Array.unsafe_get addrs (Array.unsafe_get code (pc + 2)) in
      ctrs.I.mem_loads <- ctrs.I.mem_loads + 1;
      Array.unsafe_set ints (Array.unsafe_get code (pc + 1)) (ld_i mem addr);
      loop (pc + 3)
    | 8 (* LDG_F *) ->
      let addr = glob_addr st (Array.unsafe_get code (pc + 2)) in
      ctrs.I.mem_loads <- ctrs.I.mem_loads + 1;
      Array.unsafe_set flts (Array.unsafe_get code (pc + 1)) (ld_f mem addr);
      loop (pc + 3)
    | 9 (* LDS_F *) ->
      let addr = Array.unsafe_get addrs (Array.unsafe_get code (pc + 2)) in
      ctrs.I.mem_loads <- ctrs.I.mem_loads + 1;
      Array.unsafe_set flts (Array.unsafe_get code (pc + 1)) (ld_f mem addr);
      loop (pc + 3)
    | 10 (* ILOAD_I *) ->
      let addr = Array.unsafe_get ints (Array.unsafe_get code (pc + 2)) in
      ctrs.I.mem_loads <- ctrs.I.mem_loads + 1;
      Array.unsafe_set ints (Array.unsafe_get code (pc + 1)) (ld_i mem addr);
      loop (pc + 3)
    | 11 (* ILOAD_SI *) ->
      let addr = Array.unsafe_get ints (Array.unsafe_get code (pc + 2)) in
      ctrs.I.mem_loads <- ctrs.I.mem_loads + 1;
      Array.unsafe_set ints (Array.unsafe_get code (pc + 1))
        (ld_i_spec mem addr);
      loop (pc + 3)
    | 12 (* ILOAD_F *) ->
      let addr = Array.unsafe_get ints (Array.unsafe_get code (pc + 2)) in
      ctrs.I.mem_loads <- ctrs.I.mem_loads + 1;
      Array.unsafe_set flts (Array.unsafe_get code (pc + 1)) (ld_f mem addr);
      loop (pc + 3)
    | 13 (* ILOAD_SF *) ->
      let addr = Array.unsafe_get ints (Array.unsafe_get code (pc + 2)) in
      ctrs.I.mem_loads <- ctrs.I.mem_loads + 1;
      Array.unsafe_set flts (Array.unsafe_get code (pc + 1))
        (ld_f_spec mem addr);
      loop (pc + 3)
    | 14 (* LDA_G *) ->
      Array.unsafe_set ints (Array.unsafe_get code (pc + 1))
        (glob_addr st (Array.unsafe_get code (pc + 2)));
      loop (pc + 3)
    | 15 (* LDA_S *) ->
      Array.unsafe_set ints (Array.unsafe_get code (pc + 1))
        (Array.unsafe_get addrs (Array.unsafe_get code (pc + 2)));
      loop (pc + 3)
    | 16 (* NEG *) ->
      Array.unsafe_set ints (Array.unsafe_get code (pc + 1))
        (- (Array.unsafe_get ints (Array.unsafe_get code (pc + 2))));
      loop (pc + 3)
    | 17 (* LNOT *) ->
      Array.unsafe_set ints (Array.unsafe_get code (pc + 1))
        (if Array.unsafe_get ints (Array.unsafe_get code (pc + 2)) = 0
         then 1 else 0);
      loop (pc + 3)
    | 18 (* F2I *) ->
      Array.unsafe_set ints (Array.unsafe_get code (pc + 1))
        (int_of_float
           (Array.unsafe_get flts (Array.unsafe_get code (pc + 2))));
      loop (pc + 3)
    | 19 (* FNEG *) ->
      Array.unsafe_set flts (Array.unsafe_get code (pc + 1))
        (-. (Array.unsafe_get flts (Array.unsafe_get code (pc + 2))));
      loop (pc + 3)
    | 20 (* I2F *) ->
      Array.unsafe_set flts (Array.unsafe_get code (pc + 1))
        (float_of_int
           (Array.unsafe_get ints (Array.unsafe_get code (pc + 2))));
      loop (pc + 3)
    | 21 (* OF_F *) ->
      error "expected int value, got float %g"
        (Array.unsafe_get flts (Array.unsafe_get code (pc + 1)))
    | 22 (* OF_I *) ->
      error "expected float value, got int %d"
        (Array.unsafe_get ints (Array.unsafe_get code (pc + 1)))
    | 23 (* ADD *) ->
      Array.unsafe_set ints (Array.unsafe_get code (pc + 1))
        (Array.unsafe_get ints (Array.unsafe_get code (pc + 2))
         + Array.unsafe_get ints (Array.unsafe_get code (pc + 3)));
      loop (pc + 4)
    | 24 (* SUB *) ->
      Array.unsafe_set ints (Array.unsafe_get code (pc + 1))
        (Array.unsafe_get ints (Array.unsafe_get code (pc + 2))
         - Array.unsafe_get ints (Array.unsafe_get code (pc + 3)));
      loop (pc + 4)
    | 25 (* MUL *) ->
      Array.unsafe_set ints (Array.unsafe_get code (pc + 1))
        (Array.unsafe_get ints (Array.unsafe_get code (pc + 2))
         * Array.unsafe_get ints (Array.unsafe_get code (pc + 3)));
      loop (pc + 4)
    | 26 (* DIV *) ->
      let vb = Array.unsafe_get ints (Array.unsafe_get code (pc + 3)) in
      if vb = 0 then error "integer division by zero";
      Array.unsafe_set ints (Array.unsafe_get code (pc + 1))
        (Array.unsafe_get ints (Array.unsafe_get code (pc + 2)) / vb);
      loop (pc + 4)
    | 27 (* REM *) ->
      let vb = Array.unsafe_get ints (Array.unsafe_get code (pc + 3)) in
      if vb = 0 then error "integer remainder by zero";
      Array.unsafe_set ints (Array.unsafe_get code (pc + 1))
        (Array.unsafe_get ints (Array.unsafe_get code (pc + 2)) mod vb);
      loop (pc + 4)
    | 28 (* AND *) ->
      Array.unsafe_set ints (Array.unsafe_get code (pc + 1))
        (Array.unsafe_get ints (Array.unsafe_get code (pc + 2))
         land Array.unsafe_get ints (Array.unsafe_get code (pc + 3)));
      loop (pc + 4)
    | 29 (* OR *) ->
      Array.unsafe_set ints (Array.unsafe_get code (pc + 1))
        (Array.unsafe_get ints (Array.unsafe_get code (pc + 2))
         lor Array.unsafe_get ints (Array.unsafe_get code (pc + 3)));
      loop (pc + 4)
    | 30 (* XOR *) ->
      Array.unsafe_set ints (Array.unsafe_get code (pc + 1))
        (Array.unsafe_get ints (Array.unsafe_get code (pc + 2))
         lxor Array.unsafe_get ints (Array.unsafe_get code (pc + 3)));
      loop (pc + 4)
    | 31 (* SHL *) ->
      Array.unsafe_set ints (Array.unsafe_get code (pc + 1))
        (Array.unsafe_get ints (Array.unsafe_get code (pc + 2))
         lsl (Array.unsafe_get ints (Array.unsafe_get code (pc + 3))
              land 63));
      loop (pc + 4)
    | 32 (* SHR *) ->
      Array.unsafe_set ints (Array.unsafe_get code (pc + 1))
        (Array.unsafe_get ints (Array.unsafe_get code (pc + 2))
         asr (Array.unsafe_get ints (Array.unsafe_get code (pc + 3))
              land 63));
      loop (pc + 4)
    | 33 (* ADDI *) ->
      Array.unsafe_set ints (Array.unsafe_get code (pc + 1))
        (Array.unsafe_get ints (Array.unsafe_get code (pc + 2))
         + Array.unsafe_get code (pc + 3));
      loop (pc + 4)
    | 34 (* SUBI *) ->
      Array.unsafe_set ints (Array.unsafe_get code (pc + 1))
        (Array.unsafe_get ints (Array.unsafe_get code (pc + 2))
         - Array.unsafe_get code (pc + 3));
      loop (pc + 4)
    | 35 (* MULI *) ->
      Array.unsafe_set ints (Array.unsafe_get code (pc + 1))
        (Array.unsafe_get ints (Array.unsafe_get code (pc + 2))
         * Array.unsafe_get code (pc + 3));
      loop (pc + 4)
    | 36 (* DIVI *) ->
      let vb = Array.unsafe_get code (pc + 3) in
      if vb = 0 then error "integer division by zero";
      Array.unsafe_set ints (Array.unsafe_get code (pc + 1))
        (Array.unsafe_get ints (Array.unsafe_get code (pc + 2)) / vb);
      loop (pc + 4)
    | 37 (* REMI *) ->
      let vb = Array.unsafe_get code (pc + 3) in
      if vb = 0 then error "integer remainder by zero";
      Array.unsafe_set ints (Array.unsafe_get code (pc + 1))
        (Array.unsafe_get ints (Array.unsafe_get code (pc + 2)) mod vb);
      loop (pc + 4)
    | 38 (* ANDI *) ->
      Array.unsafe_set ints (Array.unsafe_get code (pc + 1))
        (Array.unsafe_get ints (Array.unsafe_get code (pc + 2))
         land Array.unsafe_get code (pc + 3));
      loop (pc + 4)
    | 39 (* ORI *) ->
      Array.unsafe_set ints (Array.unsafe_get code (pc + 1))
        (Array.unsafe_get ints (Array.unsafe_get code (pc + 2))
         lor Array.unsafe_get code (pc + 3));
      loop (pc + 4)
    | 40 (* XORI *) ->
      Array.unsafe_set ints (Array.unsafe_get code (pc + 1))
        (Array.unsafe_get ints (Array.unsafe_get code (pc + 2))
         lxor Array.unsafe_get code (pc + 3));
      loop (pc + 4)
    | 41 (* SHLI *) ->
      Array.unsafe_set ints (Array.unsafe_get code (pc + 1))
        (Array.unsafe_get ints (Array.unsafe_get code (pc + 2))
         lsl (Array.unsafe_get code (pc + 3) land 63));
      loop (pc + 4)
    | 42 (* SHRI *) ->
      Array.unsafe_set ints (Array.unsafe_get code (pc + 1))
        (Array.unsafe_get ints (Array.unsafe_get code (pc + 2))
         asr (Array.unsafe_get code (pc + 3) land 63));
      loop (pc + 4)
    | 43 (* ADD_LD *) ->
      let va = Array.unsafe_get ints (Array.unsafe_get code (pc + 2)) in
      let addr = Array.unsafe_get ints (Array.unsafe_get code (pc + 3)) in
      ctrs.I.mem_loads <- ctrs.I.mem_loads + 1;
      Array.unsafe_set ints (Array.unsafe_get code (pc + 1))
        (va + ld_i mem addr);
      loop (pc + 4)
    | 44 (* SUB_LD *) ->
      let va = Array.unsafe_get ints (Array.unsafe_get code (pc + 2)) in
      let addr = Array.unsafe_get ints (Array.unsafe_get code (pc + 3)) in
      ctrs.I.mem_loads <- ctrs.I.mem_loads + 1;
      Array.unsafe_set ints (Array.unsafe_get code (pc + 1))
        (va - ld_i mem addr);
      loop (pc + 4)
    | 45 (* MUL_LD *) ->
      let va = Array.unsafe_get ints (Array.unsafe_get code (pc + 2)) in
      let addr = Array.unsafe_get ints (Array.unsafe_get code (pc + 3)) in
      ctrs.I.mem_loads <- ctrs.I.mem_loads + 1;
      Array.unsafe_set ints (Array.unsafe_get code (pc + 1))
        (va * ld_i mem addr);
      loop (pc + 4)
    | 46 (* FADD *) ->
      Array.unsafe_set flts (Array.unsafe_get code (pc + 1))
        (Array.unsafe_get flts (Array.unsafe_get code (pc + 2))
         +. Array.unsafe_get flts (Array.unsafe_get code (pc + 3)));
      loop (pc + 4)
    | 47 (* FSUB *) ->
      Array.unsafe_set flts (Array.unsafe_get code (pc + 1))
        (Array.unsafe_get flts (Array.unsafe_get code (pc + 2))
         -. Array.unsafe_get flts (Array.unsafe_get code (pc + 3)));
      loop (pc + 4)
    | 48 (* FMUL *) ->
      Array.unsafe_set flts (Array.unsafe_get code (pc + 1))
        (Array.unsafe_get flts (Array.unsafe_get code (pc + 2))
         *. Array.unsafe_get flts (Array.unsafe_get code (pc + 3)));
      loop (pc + 4)
    | 49 (* FDIV *) ->
      Array.unsafe_set flts (Array.unsafe_get code (pc + 1))
        (Array.unsafe_get flts (Array.unsafe_get code (pc + 2))
         /. Array.unsafe_get flts (Array.unsafe_get code (pc + 3)));
      loop (pc + 4)
    | 50 (* FADD_LD *) ->
      let va = Array.unsafe_get flts (Array.unsafe_get code (pc + 2)) in
      let addr = Array.unsafe_get ints (Array.unsafe_get code (pc + 3)) in
      ctrs.I.mem_loads <- ctrs.I.mem_loads + 1;
      Array.unsafe_set flts (Array.unsafe_get code (pc + 1))
        (va +. ld_f mem addr);
      loop (pc + 4)
    | 51 (* FSUB_LD *) ->
      let va = Array.unsafe_get flts (Array.unsafe_get code (pc + 2)) in
      let addr = Array.unsafe_get ints (Array.unsafe_get code (pc + 3)) in
      ctrs.I.mem_loads <- ctrs.I.mem_loads + 1;
      Array.unsafe_set flts (Array.unsafe_get code (pc + 1))
        (va -. ld_f mem addr);
      loop (pc + 4)
    | 52 (* FMUL_LD *) ->
      let va = Array.unsafe_get flts (Array.unsafe_get code (pc + 2)) in
      let addr = Array.unsafe_get ints (Array.unsafe_get code (pc + 3)) in
      ctrs.I.mem_loads <- ctrs.I.mem_loads + 1;
      Array.unsafe_set flts (Array.unsafe_get code (pc + 1))
        (va *. ld_f mem addr);
      loop (pc + 4)
    | 53 (* CMP_LT *) ->
      Array.unsafe_set ints (Array.unsafe_get code (pc + 1))
        (if Array.unsafe_get ints (Array.unsafe_get code (pc + 2))
            < Array.unsafe_get ints (Array.unsafe_get code (pc + 3))
         then 1 else 0);
      loop (pc + 4)
    | 54 (* CMP_LE *) ->
      Array.unsafe_set ints (Array.unsafe_get code (pc + 1))
        (if Array.unsafe_get ints (Array.unsafe_get code (pc + 2))
            <= Array.unsafe_get ints (Array.unsafe_get code (pc + 3))
         then 1 else 0);
      loop (pc + 4)
    | 55 (* CMP_GT *) ->
      Array.unsafe_set ints (Array.unsafe_get code (pc + 1))
        (if Array.unsafe_get ints (Array.unsafe_get code (pc + 2))
            > Array.unsafe_get ints (Array.unsafe_get code (pc + 3))
         then 1 else 0);
      loop (pc + 4)
    | 56 (* CMP_GE *) ->
      Array.unsafe_set ints (Array.unsafe_get code (pc + 1))
        (if Array.unsafe_get ints (Array.unsafe_get code (pc + 2))
            >= Array.unsafe_get ints (Array.unsafe_get code (pc + 3))
         then 1 else 0);
      loop (pc + 4)
    | 57 (* CMP_EQ *) ->
      Array.unsafe_set ints (Array.unsafe_get code (pc + 1))
        (if Array.unsafe_get ints (Array.unsafe_get code (pc + 2))
            = Array.unsafe_get ints (Array.unsafe_get code (pc + 3))
         then 1 else 0);
      loop (pc + 4)
    | 58 (* CMP_NE *) ->
      Array.unsafe_set ints (Array.unsafe_get code (pc + 1))
        (if Array.unsafe_get ints (Array.unsafe_get code (pc + 2))
            <> Array.unsafe_get ints (Array.unsafe_get code (pc + 3))
         then 1 else 0);
      loop (pc + 4)
    | 59 (* CMPI_LT *) ->
      Array.unsafe_set ints (Array.unsafe_get code (pc + 1))
        (if Array.unsafe_get ints (Array.unsafe_get code (pc + 2))
            < Array.unsafe_get code (pc + 3)
         then 1 else 0);
      loop (pc + 4)
    | 60 (* CMPI_LE *) ->
      Array.unsafe_set ints (Array.unsafe_get code (pc + 1))
        (if Array.unsafe_get ints (Array.unsafe_get code (pc + 2))
            <= Array.unsafe_get code (pc + 3)
         then 1 else 0);
      loop (pc + 4)
    | 61 (* CMPI_GT *) ->
      Array.unsafe_set ints (Array.unsafe_get code (pc + 1))
        (if Array.unsafe_get ints (Array.unsafe_get code (pc + 2))
            > Array.unsafe_get code (pc + 3)
         then 1 else 0);
      loop (pc + 4)
    | 62 (* CMPI_GE *) ->
      Array.unsafe_set ints (Array.unsafe_get code (pc + 1))
        (if Array.unsafe_get ints (Array.unsafe_get code (pc + 2))
            >= Array.unsafe_get code (pc + 3)
         then 1 else 0);
      loop (pc + 4)
    | 63 (* CMPI_EQ *) ->
      Array.unsafe_set ints (Array.unsafe_get code (pc + 1))
        (if Array.unsafe_get ints (Array.unsafe_get code (pc + 2))
            = Array.unsafe_get code (pc + 3)
         then 1 else 0);
      loop (pc + 4)
    | 64 (* CMPI_NE *) ->
      Array.unsafe_set ints (Array.unsafe_get code (pc + 1))
        (if Array.unsafe_get ints (Array.unsafe_get code (pc + 2))
            <> Array.unsafe_get code (pc + 3)
         then 1 else 0);
      loop (pc + 4)
    | 65 (* FCMP_LT *) ->
      let c =
        compare
          (Array.unsafe_get flts (Array.unsafe_get code (pc + 2)) : float)
          (Array.unsafe_get flts (Array.unsafe_get code (pc + 3)))
      in
      Array.unsafe_set ints (Array.unsafe_get code (pc + 1))
        (if c < 0 then 1 else 0);
      loop (pc + 4)
    | 66 (* FCMP_LE *) ->
      let c =
        compare
          (Array.unsafe_get flts (Array.unsafe_get code (pc + 2)) : float)
          (Array.unsafe_get flts (Array.unsafe_get code (pc + 3)))
      in
      Array.unsafe_set ints (Array.unsafe_get code (pc + 1))
        (if c <= 0 then 1 else 0);
      loop (pc + 4)
    | 67 (* FCMP_GT *) ->
      let c =
        compare
          (Array.unsafe_get flts (Array.unsafe_get code (pc + 2)) : float)
          (Array.unsafe_get flts (Array.unsafe_get code (pc + 3)))
      in
      Array.unsafe_set ints (Array.unsafe_get code (pc + 1))
        (if c > 0 then 1 else 0);
      loop (pc + 4)
    | 68 (* FCMP_GE *) ->
      let c =
        compare
          (Array.unsafe_get flts (Array.unsafe_get code (pc + 2)) : float)
          (Array.unsafe_get flts (Array.unsafe_get code (pc + 3)))
      in
      Array.unsafe_set ints (Array.unsafe_get code (pc + 1))
        (if c >= 0 then 1 else 0);
      loop (pc + 4)
    | 69 (* FCMP_EQ *) ->
      let c =
        compare
          (Array.unsafe_get flts (Array.unsafe_get code (pc + 2)) : float)
          (Array.unsafe_get flts (Array.unsafe_get code (pc + 3)))
      in
      Array.unsafe_set ints (Array.unsafe_get code (pc + 1))
        (if c = 0 then 1 else 0);
      loop (pc + 4)
    | 70 (* FCMP_NE *) ->
      let c =
        compare
          (Array.unsafe_get flts (Array.unsafe_get code (pc + 2)) : float)
          (Array.unsafe_get flts (Array.unsafe_get code (pc + 3)))
      in
      Array.unsafe_set ints (Array.unsafe_get code (pc + 1))
        (if c <> 0 then 1 else 0);
      loop (pc + 4)
    | 71 (* STG_I *) ->
      let v = Array.unsafe_get ints (Array.unsafe_get code (pc + 2)) in
      let addr = glob_addr st (Array.unsafe_get code (pc + 1)) in
      ctrs.I.mem_stores <- ctrs.I.mem_stores + 1;
      alat_invalidate st addr;
      st_i mem addr v;
      loop (pc + 3)
    | 72 (* STS_I *) ->
      let v = Array.unsafe_get ints (Array.unsafe_get code (pc + 2)) in
      let addr = Array.unsafe_get addrs (Array.unsafe_get code (pc + 1)) in
      ctrs.I.mem_stores <- ctrs.I.mem_stores + 1;
      alat_invalidate st addr;
      st_i mem addr v;
      loop (pc + 3)
    | 73 (* STG_F *) ->
      let v = Array.unsafe_get flts (Array.unsafe_get code (pc + 2)) in
      let addr = glob_addr st (Array.unsafe_get code (pc + 1)) in
      ctrs.I.mem_stores <- ctrs.I.mem_stores + 1;
      alat_invalidate st addr;
      st_f mem addr v;
      loop (pc + 3)
    | 74 (* STS_F *) ->
      let v = Array.unsafe_get flts (Array.unsafe_get code (pc + 2)) in
      let addr = Array.unsafe_get addrs (Array.unsafe_get code (pc + 1)) in
      ctrs.I.mem_stores <- ctrs.I.mem_stores + 1;
      alat_invalidate st addr;
      st_f mem addr v;
      loop (pc + 3)
    | 75 (* IST_I *) ->
      let addr = Array.unsafe_get ints (Array.unsafe_get code (pc + 1)) in
      let v = Array.unsafe_get ints (Array.unsafe_get code (pc + 2)) in
      ctrs.I.mem_stores <- ctrs.I.mem_stores + 1;
      alat_invalidate st addr;
      st_i mem addr v;
      loop (pc + 3)
    | 76 (* IST_F *) ->
      let addr = Array.unsafe_get ints (Array.unsafe_get code (pc + 1)) in
      let v = Array.unsafe_get flts (Array.unsafe_get code (pc + 2)) in
      ctrs.I.mem_stores <- ctrs.I.mem_stores + 1;
      alat_invalidate st addr;
      st_f mem addr v;
      loop (pc + 3)
    | 77 (* IST_II *) ->
      let addr = Array.unsafe_get ints (Array.unsafe_get code (pc + 1)) in
      let v = Array.unsafe_get code (pc + 2) in
      ctrs.I.mem_stores <- ctrs.I.mem_stores + 1;
      alat_invalidate st addr;
      st_i mem addr v;
      loop (pc + 3)
    | 78 (* IST_ADD *) ->
      let addr = Array.unsafe_get ints (Array.unsafe_get code (pc + 1)) in
      let v =
        Array.unsafe_get ints (Array.unsafe_get code (pc + 2))
        + Array.unsafe_get ints (Array.unsafe_get code (pc + 3))
      in
      ctrs.I.mem_stores <- ctrs.I.mem_stores + 1;
      alat_invalidate st addr;
      st_i mem addr v;
      loop (pc + 4)
    | 79 (* IST_ADDI *) ->
      let addr = Array.unsafe_get ints (Array.unsafe_get code (pc + 1)) in
      let v =
        Array.unsafe_get ints (Array.unsafe_get code (pc + 2))
        + Array.unsafe_get code (pc + 3)
      in
      ctrs.I.mem_stores <- ctrs.I.mem_stores + 1;
      alat_invalidate st addr;
      st_i mem addr v;
      loop (pc + 4)
    | 80 (* CHKSTMT *) ->
      ctrs.I.check_stmts <- ctrs.I.check_stmts + 1;
      loop (pc + 1)
    | 81 (* CHK_ILOD_I *) ->
      ctrs.I.check_stmts <- ctrs.I.check_stmts + 1;
      let t = Array.unsafe_get code (pc + 1) in
      let addr = Array.unsafe_get ints (Array.unsafe_get code (pc + 3)) in
      if not (alat_check st serial t addr) && not (deopting pc) then begin
        ctrs.I.check_reloads <- ctrs.I.check_reloads + 1;
        ctrs.I.mem_loads <- ctrs.I.mem_loads + 1;
        Array.unsafe_set ints (Array.unsafe_get code (pc + 2))
          (ld_i mem addr);
        alat_arm st serial t addr
      end;
      loop (pc + 4)
    | 82 (* CHK_ILOD_F *) ->
      ctrs.I.check_stmts <- ctrs.I.check_stmts + 1;
      let t = Array.unsafe_get code (pc + 1) in
      let addr = Array.unsafe_get ints (Array.unsafe_get code (pc + 3)) in
      if not (alat_check st serial t addr) && not (deopting pc) then begin
        ctrs.I.check_reloads <- ctrs.I.check_reloads + 1;
        ctrs.I.mem_loads <- ctrs.I.mem_loads + 1;
        Array.unsafe_set flts (Array.unsafe_get code (pc + 2))
          (ld_f mem addr);
        alat_arm st serial t addr
      end;
      loop (pc + 4)
    | 83 (* CHK_LDG_I *) ->
      ctrs.I.check_stmts <- ctrs.I.check_stmts + 1;
      let t = Array.unsafe_get code (pc + 1) in
      let addr = glob_addr st (Array.unsafe_get code (pc + 3)) in
      if not (alat_check st serial t addr) && not (deopting pc) then begin
        ctrs.I.check_reloads <- ctrs.I.check_reloads + 1;
        ctrs.I.mem_loads <- ctrs.I.mem_loads + 1;
        Array.unsafe_set ints (Array.unsafe_get code (pc + 2))
          (ld_i mem addr);
        alat_arm st serial t addr
      end;
      loop (pc + 4)
    | 84 (* CHK_LDG_F *) ->
      ctrs.I.check_stmts <- ctrs.I.check_stmts + 1;
      let t = Array.unsafe_get code (pc + 1) in
      let addr = glob_addr st (Array.unsafe_get code (pc + 3)) in
      if not (alat_check st serial t addr) && not (deopting pc) then begin
        ctrs.I.check_reloads <- ctrs.I.check_reloads + 1;
        ctrs.I.mem_loads <- ctrs.I.mem_loads + 1;
        Array.unsafe_set flts (Array.unsafe_get code (pc + 2))
          (ld_f mem addr);
        alat_arm st serial t addr
      end;
      loop (pc + 4)
    | 85 (* CHK_LDS_I *) ->
      ctrs.I.check_stmts <- ctrs.I.check_stmts + 1;
      let t = Array.unsafe_get code (pc + 1) in
      let addr = Array.unsafe_get addrs (Array.unsafe_get code (pc + 3)) in
      if not (alat_check st serial t addr) && not (deopting pc) then begin
        ctrs.I.check_reloads <- ctrs.I.check_reloads + 1;
        ctrs.I.mem_loads <- ctrs.I.mem_loads + 1;
        Array.unsafe_set ints (Array.unsafe_get code (pc + 2))
          (ld_i mem addr);
        alat_arm st serial t addr
      end;
      loop (pc + 4)
    | 86 (* CHK_LDS_F *) ->
      ctrs.I.check_stmts <- ctrs.I.check_stmts + 1;
      let t = Array.unsafe_get code (pc + 1) in
      let addr = Array.unsafe_get addrs (Array.unsafe_get code (pc + 3)) in
      if not (alat_check st serial t addr) && not (deopting pc) then begin
        ctrs.I.check_reloads <- ctrs.I.check_reloads + 1;
        ctrs.I.mem_loads <- ctrs.I.mem_loads + 1;
        Array.unsafe_set flts (Array.unsafe_get code (pc + 2))
          (ld_f mem addr);
        alat_arm st serial t addr
      end;
      loop (pc + 4)
    | 87 (* ARM_TRY *) ->
      trap := Array.unsafe_get code (pc + 1);
      loop (pc + 2)
    | 88 (* ARM *) ->
      let t = Array.unsafe_get code (pc + 1) in
      let addr = Array.unsafe_get ints (Array.unsafe_get code (pc + 2)) in
      alat_arm st serial t addr;
      trap := -1;
      loop (pc + 3)
    | 89 (* ARM_G *) ->
      let t = Array.unsafe_get code (pc + 1) in
      alat_arm st serial t (glob_addr st (Array.unsafe_get code (pc + 2)));
      loop (pc + 3)
    | 90 (* ARM_S *) ->
      let t = Array.unsafe_get code (pc + 1) in
      alat_arm st serial t
        (Array.unsafe_get addrs (Array.unsafe_get code (pc + 2)));
      loop (pc + 3)
    | 91 (* JMP *) -> loop (Array.unsafe_get code (pc + 1))
    | 92 (* BNZ *) ->
      ctrs.I.branches <- ctrs.I.branches + 1;
      if Array.unsafe_get ints (Array.unsafe_get code (pc + 1)) <> 0
      then loop (Array.unsafe_get code (pc + 2))
      else loop (Array.unsafe_get code (pc + 3))
    | 93 (* BR_LT *) ->
      ctrs.I.branches <- ctrs.I.branches + 1;
      if Array.unsafe_get ints (Array.unsafe_get code (pc + 1))
         < Array.unsafe_get ints (Array.unsafe_get code (pc + 2))
      then loop (Array.unsafe_get code (pc + 3))
      else loop (Array.unsafe_get code (pc + 4))
    | 94 (* BR_LE *) ->
      ctrs.I.branches <- ctrs.I.branches + 1;
      if Array.unsafe_get ints (Array.unsafe_get code (pc + 1))
         <= Array.unsafe_get ints (Array.unsafe_get code (pc + 2))
      then loop (Array.unsafe_get code (pc + 3))
      else loop (Array.unsafe_get code (pc + 4))
    | 95 (* BR_GT *) ->
      ctrs.I.branches <- ctrs.I.branches + 1;
      if Array.unsafe_get ints (Array.unsafe_get code (pc + 1))
         > Array.unsafe_get ints (Array.unsafe_get code (pc + 2))
      then loop (Array.unsafe_get code (pc + 3))
      else loop (Array.unsafe_get code (pc + 4))
    | 96 (* BR_GE *) ->
      ctrs.I.branches <- ctrs.I.branches + 1;
      if Array.unsafe_get ints (Array.unsafe_get code (pc + 1))
         >= Array.unsafe_get ints (Array.unsafe_get code (pc + 2))
      then loop (Array.unsafe_get code (pc + 3))
      else loop (Array.unsafe_get code (pc + 4))
    | 97 (* BR_EQ *) ->
      ctrs.I.branches <- ctrs.I.branches + 1;
      if Array.unsafe_get ints (Array.unsafe_get code (pc + 1))
         = Array.unsafe_get ints (Array.unsafe_get code (pc + 2))
      then loop (Array.unsafe_get code (pc + 3))
      else loop (Array.unsafe_get code (pc + 4))
    | 98 (* BR_NE *) ->
      ctrs.I.branches <- ctrs.I.branches + 1;
      if Array.unsafe_get ints (Array.unsafe_get code (pc + 1))
         <> Array.unsafe_get ints (Array.unsafe_get code (pc + 2))
      then loop (Array.unsafe_get code (pc + 3))
      else loop (Array.unsafe_get code (pc + 4))
    | 99 (* BRI_LT *) ->
      ctrs.I.branches <- ctrs.I.branches + 1;
      if Array.unsafe_get ints (Array.unsafe_get code (pc + 1))
         < Array.unsafe_get code (pc + 2)
      then loop (Array.unsafe_get code (pc + 3))
      else loop (Array.unsafe_get code (pc + 4))
    | 100 (* BRI_LE *) ->
      ctrs.I.branches <- ctrs.I.branches + 1;
      if Array.unsafe_get ints (Array.unsafe_get code (pc + 1))
         <= Array.unsafe_get code (pc + 2)
      then loop (Array.unsafe_get code (pc + 3))
      else loop (Array.unsafe_get code (pc + 4))
    | 101 (* BRI_GT *) ->
      ctrs.I.branches <- ctrs.I.branches + 1;
      if Array.unsafe_get ints (Array.unsafe_get code (pc + 1))
         > Array.unsafe_get code (pc + 2)
      then loop (Array.unsafe_get code (pc + 3))
      else loop (Array.unsafe_get code (pc + 4))
    | 102 (* BRI_GE *) ->
      ctrs.I.branches <- ctrs.I.branches + 1;
      if Array.unsafe_get ints (Array.unsafe_get code (pc + 1))
         >= Array.unsafe_get code (pc + 2)
      then loop (Array.unsafe_get code (pc + 3))
      else loop (Array.unsafe_get code (pc + 4))
    | 103 (* BRI_EQ *) ->
      ctrs.I.branches <- ctrs.I.branches + 1;
      if Array.unsafe_get ints (Array.unsafe_get code (pc + 1))
         = Array.unsafe_get code (pc + 2)
      then loop (Array.unsafe_get code (pc + 3))
      else loop (Array.unsafe_get code (pc + 4))
    | 104 (* BRI_NE *) ->
      ctrs.I.branches <- ctrs.I.branches + 1;
      if Array.unsafe_get ints (Array.unsafe_get code (pc + 1))
         <> Array.unsafe_get code (pc + 2)
      then loop (Array.unsafe_get code (pc + 3))
      else loop (Array.unsafe_get code (pc + 4))
    | 105 (* BRF_LT *) ->
      ctrs.I.branches <- ctrs.I.branches + 1;
      let c =
        compare
          (Array.unsafe_get flts (Array.unsafe_get code (pc + 1)) : float)
          (Array.unsafe_get flts (Array.unsafe_get code (pc + 2)))
      in
      if c < 0 then loop (Array.unsafe_get code (pc + 3))
      else loop (Array.unsafe_get code (pc + 4))
    | 106 (* BRF_LE *) ->
      ctrs.I.branches <- ctrs.I.branches + 1;
      let c =
        compare
          (Array.unsafe_get flts (Array.unsafe_get code (pc + 1)) : float)
          (Array.unsafe_get flts (Array.unsafe_get code (pc + 2)))
      in
      if c <= 0 then loop (Array.unsafe_get code (pc + 3))
      else loop (Array.unsafe_get code (pc + 4))
    | 107 (* BRF_GT *) ->
      ctrs.I.branches <- ctrs.I.branches + 1;
      let c =
        compare
          (Array.unsafe_get flts (Array.unsafe_get code (pc + 1)) : float)
          (Array.unsafe_get flts (Array.unsafe_get code (pc + 2)))
      in
      if c > 0 then loop (Array.unsafe_get code (pc + 3))
      else loop (Array.unsafe_get code (pc + 4))
    | 108 (* BRF_GE *) ->
      ctrs.I.branches <- ctrs.I.branches + 1;
      let c =
        compare
          (Array.unsafe_get flts (Array.unsafe_get code (pc + 1)) : float)
          (Array.unsafe_get flts (Array.unsafe_get code (pc + 2)))
      in
      if c >= 0 then loop (Array.unsafe_get code (pc + 3))
      else loop (Array.unsafe_get code (pc + 4))
    | 109 (* BRF_EQ *) ->
      ctrs.I.branches <- ctrs.I.branches + 1;
      let c =
        compare
          (Array.unsafe_get flts (Array.unsafe_get code (pc + 1)) : float)
          (Array.unsafe_get flts (Array.unsafe_get code (pc + 2)))
      in
      if c = 0 then loop (Array.unsafe_get code (pc + 3))
      else loop (Array.unsafe_get code (pc + 4))
    | 110 (* BRF_NE *) ->
      ctrs.I.branches <- ctrs.I.branches + 1;
      let c =
        compare
          (Array.unsafe_get flts (Array.unsafe_get code (pc + 1)) : float)
          (Array.unsafe_get flts (Array.unsafe_get code (pc + 2)))
      in
      if c <> 0 then loop (Array.unsafe_get code (pc + 3))
      else loop (Array.unsafe_get code (pc + 4))
    | 111 (* RET0 *) ->
      st.ret_isf <- false;
      st.ret_i <- 0
    | 112 (* RET_I *) ->
      st.ret_isf <- false;
      st.ret_i <- Array.unsafe_get ints (Array.unsafe_get code (pc + 1))
    | 113 (* RET_F *) ->
      st.ret_isf <- true;
      st.ret_f <- Array.unsafe_get flts (Array.unsafe_get code (pc + 1))
    | 114 (* B_MALLOC *) ->
      let bytes = Array.unsafe_get ints (Array.unsafe_get code (pc + 1)) in
      ctrs.I.calls <- ctrs.I.calls + 1;
      set_ret (Array.unsafe_get code (pc + 2)) (Array.unsafe_get code (pc + 3))
        (Memory.malloc mem ~site:(Array.unsafe_get code (pc + 4)) bytes);
      loop (pc + 5)
    | 115 (* B_PRINT_I *) ->
      let v = Array.unsafe_get ints (Array.unsafe_get code (pc + 1)) in
      ctrs.I.calls <- ctrs.I.calls + 1;
      Buffer.add_string st.out (string_of_int v);
      Buffer.add_char st.out '\n';
      set_ret (Array.unsafe_get code (pc + 2))
        (Array.unsafe_get code (pc + 3)) 0;
      loop (pc + 4)
    | 116 (* B_PRINT_F *) ->
      let v = Array.unsafe_get flts (Array.unsafe_get code (pc + 1)) in
      ctrs.I.calls <- ctrs.I.calls + 1;
      Buffer.add_string st.out (Printf.sprintf "%.6g" v);
      Buffer.add_char st.out '\n';
      set_ret (Array.unsafe_get code (pc + 2))
        (Array.unsafe_get code (pc + 3)) 0;
      loop (pc + 4)
    | 117 (* B_SEED *) ->
      let v = Array.unsafe_get ints (Array.unsafe_get code (pc + 1)) in
      ctrs.I.calls <- ctrs.I.calls + 1;
      st.rng <- v;
      set_ret (Array.unsafe_get code (pc + 2))
        (Array.unsafe_get code (pc + 3)) 0;
      loop (pc + 4)
    | 118 (* B_RND *) ->
      let m = Array.unsafe_get ints (Array.unsafe_get code (pc + 1)) in
      ctrs.I.calls <- ctrs.I.calls + 1;
      if m <= 0 then error "rnd expects a positive bound";
      st.rng <-
        (st.rng * 0x5851F42D4C957F2D + 0x14057B7EF767814F) land max_int;
      set_ret (Array.unsafe_get code (pc + 2)) (Array.unsafe_get code (pc + 3))
        ((st.rng lsr 29) mod m);
      loop (pc + 4)
    | 119 (* CALL *) ->
      let fix = Array.unsafe_get code (pc + 1) in
      let rs = Array.unsafe_get code (pc + 2) in
      let rfp = Array.unsafe_get code (pc + 3) in
      let n = Array.unsafe_get code (pc + 4) in
      let cai = if n = 0 then no_ints else Array.make n 0 in
      let caf = if n = 0 then no_flts else Array.make n 0. in
      for k = 0 to n - 1 do
        let enc = Array.unsafe_get code (pc + 5 + k) in
        let s = enc lsr 1 in
        if enc land 1 = 1 then caf.(k) <- Array.unsafe_get flts s
        else cai.(k) <- Array.unsafe_get ints s
      done;
      ctrs.I.calls <- ctrs.I.calls + 1;
      exec_func st fix cai caf;
      if rs >= 0 then begin
        if rfp <> 0 then begin
          if st.ret_isf then Array.unsafe_set flts rs st.ret_f
          else error "expected float value, got int %d" st.ret_i
        end
        else begin
          if st.ret_isf then error "expected int value, got float %g" st.ret_f
          else Array.unsafe_set ints rs st.ret_i
        end
      end;
      loop (pc + 5 + n)
    | 120 (* CALL_ERR *) ->
      ctrs.I.calls <- ctrs.I.calls + 1;
      error "%s" (Array.unsafe_get spool (Array.unsafe_get code (pc + 1)))
    | 121 (* CALL_UNKNOWN *) ->
      ctrs.I.calls <- ctrs.I.calls + 1;
      invalid_arg
        (Array.unsafe_get spool (Array.unsafe_get code (pc + 1)))
    | op -> error "vm: corrupt bytecode (opcode %d at %d in %s)" op pc
              vf.V.vname
  in
  let rec go pc =
    try loop pc
    with I.Runtime_error _ when !trap >= 0 ->
      let t = !trap in
      trap := -1;
      go t
  in
  (try go 0 with Deopt_done -> ());
  Memory.pop_frame mem mark

(* Deoptimization: transfer the live register state into the
   unoptimized body and finish the function there.  Hook-side counter
   updates mirror [Interp.do_deopt] exactly, which keeps the two
   engines' counters identical under [--recover deopt]. *)
and vm_deopt st (pl : Spec_safety.Deopt.plan) (vf : V.func)
    (ints : int array) (flts : float array) (addrs : int array)
    (d : I.cdeopt) (refund : int) : unit =
  let module D = Spec_safety.Deopt in
  st.ctrs.I.deopts <- st.ctrs.I.deopts + 1;
  (* the block's steps were charged up-front at its STEPS opcode; credit
     back the statements (and terminator) the deopt skips, so step and
     fuel accounting match the per-statement tree engine exactly *)
  st.ctrs.I.steps <- st.ctrs.I.steps - refund;
  st.fuel <- st.fuel + refund;
  let regs =
    Array.fold_right
      (fun (vid, slot, fp) acc ->
        (vid, if fp then D.Vflt flts.(slot) else D.Vint ints.(slot)) :: acc)
      d.I.d_vars []
  in
  (* orig vid -> frame address of memory-resident locals and formals *)
  let frame_addr = Hashtbl.create 8 in
  Array.iter
    (fun (slot, vid, _) -> Hashtbl.replace frame_addr vid addrs.(slot))
    vf.V.vmem_locals;
  Array.iter
    (function
      | I.Fm_mem { aslot; vid; _ } ->
        Hashtbl.replace frame_addr vid addrs.(aslot)
      | I.Fm_reg _ -> ())
    vf.V.vformals;
  let h =
    { D.h_load =
        (fun ty addr ->
          st.ctrs.I.mem_loads <- st.ctrs.I.mem_loads + 1;
          if Types.is_fp ty then D.Vflt (Memory.load_flt st.mem addr)
          else D.Vint (Memory.load_int st.mem addr));
      D.h_store =
        (fun ty addr v ->
          st.ctrs.I.mem_stores <- st.ctrs.I.mem_stores + 1;
          alat_invalidate st addr;
          if Types.is_fp ty then Memory.store_flt st.mem addr (D.as_flt v)
          else Memory.store_int st.mem addr (D.as_int v));
      D.h_addr_of =
        (fun vid ->
          match Hashtbl.find_opt frame_addr vid with
          | Some a -> a
          | None -> glob_addr st vid);
      D.h_spend =
        (fun () ->
          st.ctrs.I.steps <- st.ctrs.I.steps + 1;
          st.fuel <- st.fuel - 1;
          if st.fuel <= 0 then error "out of fuel (infinite loop?)");
      D.h_branch =
        (fun () -> st.ctrs.I.branches <- st.ctrs.I.branches + 1);
      D.h_call = (fun ~site name argv -> vm_deopt_call st ~site name argv) }
  in
  let ret =
    try D.deoptimize pl h ~fname:vf.V.vname ~target:d.I.d_sid ~regs
    with D.Error msg -> raise (I.Runtime_error msg)
  in
  (match ret with
   | D.Vint i -> st.ret_isf <- false; st.ret_i <- i
   | D.Vflt f -> st.ret_isf <- true; st.ret_f <- f);
  raise Deopt_done

(* Call dispatch for the deopt continuation: builtins mirror
   [Interp_ref.call] exactly; user calls re-enter this engine's
   (optimized) bytecode bodies. *)
and vm_deopt_call st ~site name (argv : Spec_safety.Deopt.value list)
  : Spec_safety.Deopt.value =
  let module D = Spec_safety.Deopt in
  st.ctrs.I.calls <- st.ctrs.I.calls + 1;
  match name, argv with
  | "malloc", [ D.Vint bytes ] ->
    D.Vint (Memory.malloc st.mem ~site bytes)
  | "malloc", _ -> raise (I.Runtime_error "malloc expects one int")
  | "print_int", [ D.Vint i ] ->
    Buffer.add_string st.out (string_of_int i);
    Buffer.add_char st.out '\n';
    D.Vint 0
  | "print_int", _ -> raise (I.Runtime_error "print_int expects one int")
  | "print_flt", [ D.Vflt f ] ->
    Buffer.add_string st.out (Printf.sprintf "%.6g" f);
    Buffer.add_char st.out '\n';
    D.Vint 0
  | "print_flt", _ -> raise (I.Runtime_error "print_flt expects one float")
  | "seed", [ D.Vint s ] ->
    st.rng <- s;
    D.Vint 0
  | "seed", _ -> raise (I.Runtime_error "seed expects one int")
  | "rnd", [ D.Vint m ] ->
    if m <= 0 then raise (I.Runtime_error "rnd expects a positive bound");
    st.rng <- (st.rng * 0x5851F42D4C957F2D + 0x14057B7EF767814F) land max_int;
    D.Vint ((st.rng lsr 29) mod m)
  | "rnd", _ -> raise (I.Runtime_error "rnd expects one int")
  | _ ->
    let ix = ref (-1) in
    Array.iteri
      (fun i f -> if f.V.vname = name then ix := i)
      st.vp.V.vfuncs;
    if !ix < 0 then invalid_arg ("Sir.find_func: no function " ^ name);
    let callee = st.vp.V.vfuncs.(!ix) in
    let n = List.length argv in
    let cai = if n = 0 then no_ints else Array.make n 0 in
    let caf = if n = 0 then no_flts else Array.make n 0. in
    List.iteri
      (fun k v ->
        let fp =
          if k < Array.length callee.V.vformals then
            match callee.V.vformals.(k) with
            | I.Fm_reg { fp; _ } | I.Fm_mem { fp; _ } -> fp
          else false
        in
        try if fp then caf.(k) <- D.as_flt v else cai.(k) <- D.as_int v
        with D.Error msg -> raise (I.Runtime_error msg))
      argv;
    exec_func st !ix cai caf;
    if st.ret_isf then D.Vflt st.ret_f else D.Vint st.ret_i

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

(** Run a lowered program.  [faults] attaches injected ALAT interference
    for stress runs; the interference clock and victim selection match
    the tree engines exactly.  [recover] supplies a deoptimization plan:
    failed checks whose pc carries a descriptor finish their function in
    the unoptimized body instead of reloading. *)
let run_program ?(fuel = 200_000_000) ?faults ?recover
    ?(heap_bytes = 24 * 1024 * 1024) (p : V.program) : I.result =
  if p.V.vmain < 0 then error "program has no main function";
  let mem = Memory.create ~heap_bytes p.V.vsrc in
  let syms = p.V.vsrc.Sir.syms in
  let globals = Array.make (Symtab.count syms) (-1) in
  List.iter
    (fun g -> globals.(g) <- Memory.global_addr mem g)
    p.V.vsrc.Sir.globals;
  let st =
    { vp = p; mem;
      ctrs = { I.steps = 0; mem_loads = 0; mem_stores = 0; branches = 0;
               calls = 0; check_stmts = 0; check_reloads = 0; deopts = 0 };
      out = Buffer.create 256; globals; rng = 88172645463325252; fuel;
      alat = Hashtbl.create 32; frame_serial = 0;
      finj = faults; fevents = 0;
      ret_isf = false; ret_i = 0; ret_f = 0.; recover }
  in
  exec_func st p.V.vmain no_ints no_flts;
  let ret = if st.ret_isf then I.Vflt st.ret_f else I.Vint st.ret_i in
  let r = { I.ret; output = Buffer.contents st.out; counters = st.ctrs } in
  Memory.release mem;
  r

(** Lower [p] and run [main] (one cheap pass; callers that execute the
    same program repeatedly should {!Vmcode.compile} once and use
    {!run_program}). *)
let run ?fuel ?faults ?recover ?heap_bytes (p : Sir.prog) : I.result =
  run_program ?fuel ?faults ?recover ?heap_bytes (Vmcode.compile p)
