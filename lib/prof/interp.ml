(** Pre-compiled execution engine for SIR.

    The semantic oracle of the project ({!Interp_ref}) walks the SIR tree
    directly, paying a symbol-table traversal ([Symtab.orig], [is_mem])
    and a hash-table probe on every variable read and write.  This module
    is the production engine: before executing, it *compiles* each
    [Sir.func] into a resolved form

    - register-resident variables get dense per-frame slots in unboxed
      [int]/[float] arrays (the slot table is computed once per function);
    - memory-resident locals get dense address slots;
    - [Symtab.orig] / [is_mem] / [Types.is_fp] are resolved at compile
      time — no symbol-table access happens during execution;
    - expressions are compiled into int-typed and float-typed node trees,
      so evaluation never allocates boxed values;
    - statement dispatch (check-load vs plain assign, advanced-load
      arming, builtin vs user call) is decided at compile time rather
      than re-matched per execution.

    Instrumentation hooks are optional: when the caller passes no hooks
    (pure simulation), the engine takes a fast path that never invokes a
    closure; profiling runs pass hooks and keep full instrumentation.
    Observable behaviour — output, return value, and all counters — is
    identical to {!Interp_ref}; the differential suite in
    [test/test_engines.ml] enforces this for every workload under every
    pipeline variant. *)

open Spec_ir

type value = Vint of int | Vflt of float

exception Runtime_error of string

let error fmt = Fmt.kstr (fun s -> raise (Runtime_error s)) fmt

let as_int = function
  | Vint i -> i
  | Vflt f -> error "expected int value, got float %g" f

let as_flt = function
  | Vflt f -> f
  | Vint i -> error "expected float value, got int %d" i

(** Instrumentation hooks; all default to no-ops. *)
type hooks = {
  mutable on_edge : func:string -> src:int -> dst:int -> unit;
  mutable on_entry : func:string -> unit;
  mutable on_mem :
    site:int option -> addr:int -> is_store:bool -> unit;
      (** every memory access; [site] is set for indirect references *)
  mutable on_load :
    which:[ `Site of int | `Var of int ] ->
    func:string -> addr:int -> v:value -> unit;
      (** every memory load, for load-reuse analysis *)
  mutable on_call : site:int -> callee:string -> unit;
      (** user-function call about to execute *)
  mutable on_call_ret : site:int -> callee:string -> unit;
  mutable on_memory : Memory.t -> unit;
      (** invoked once, when the memory image is created *)
}

let no_hooks () =
  { on_edge = (fun ~func:_ ~src:_ ~dst:_ -> ());
    on_entry = (fun ~func:_ -> ());
    on_mem = (fun ~site:_ ~addr:_ ~is_store:_ -> ());
    on_load = (fun ~which:_ ~func:_ ~addr:_ ~v:_ -> ());
    on_call = (fun ~site:_ ~callee:_ -> ());
    on_call_ret = (fun ~site:_ ~callee:_ -> ());
    on_memory = (fun _ -> ()) }

type counters = {
  mutable steps : int;
  mutable mem_loads : int;
  mutable mem_stores : int;
  mutable branches : int;
  mutable calls : int;
  mutable check_stmts : int;
      (** executions of ld.c-marked statements; their reloads are counted
          in [mem_loads] too, but cost nothing on the machine when the
          ALAT check succeeds *)
  mutable check_reloads : int;
      (** ld.c executions whose ALAT entry was gone (a real intervening
          alias, or injected interference) and had to reload *)
  mutable deopts : int;
      (** failed checks recovered by deoptimization instead of reload:
          the engine abandoned the optimized frame and finished the
          function in its unoptimized body *)
}

type result = {
  ret : value;
  output : string;
  counters : counters;
}

(* ------------------------------------------------------------------ *)
(* Compiled representation                                             *)
(* ------------------------------------------------------------------ *)

(** Resolved reference to a memory-resident variable's address. *)
type vref =
  | Rglob of int          (* original vid; address via the globals table *)
  | Rslot of int          (* frame address-slot of a memory-resident local *)
  | Rnone of string       (* no stack slot: runtime error with var name *)

(** Int-typed and float-typed compiled expressions.  Type mismatches the
    tree-walking engine would discover dynamically ([as_int] on a float)
    are compiled into [Iof_f]/[Fof_i] nodes that evaluate the wrongly
    typed subtree and raise the same [Runtime_error]. *)
type iexpr =
  | Iconst of int
  | Ireg of int                                  (* register slot *)
  | Ildv of { vr : vref; vid : int }             (* direct load, int mem var *)
  | Iilod of { a : iexpr; site : int; spec : bool;
               which : [ `Site of int | `Var of int ] }
  | Ilda of vref
  | Ineg of iexpr
  | Ilnot of iexpr
  | If2i of fexpr
  | Ibin of Sir.binop * iexpr * iexpr            (* int arithmetic *)
  | Icmp_i of Sir.binop * iexpr * iexpr
  | Icmp_f of Sir.binop * fexpr * fexpr
  | Iof_f of fexpr                               (* as_int of a float value *)

and fexpr =
  | Fconst of float
  | Freg of int
  | Fldv of { vr : vref; vid : int }             (* direct load, fp mem var *)
  | Filod of { a : iexpr; site : int; spec : bool;
               which : [ `Site of int | `Var of int ] }
  | Fneg of fexpr
  | Fi2f of iexpr
  | Fbin of Sir.binop * fexpr * fexpr            (* fp add/sub/mul/div *)
  | Fof_i of iexpr                               (* as_flt of an int value *)

(** Either-typed expression, for call arguments and return expressions. *)
type aexpr = Ai of iexpr | Af of fexpr

(** Advanced-load (ld.a / ld.sa) ALAT arming, resolved at compile time. *)
type arm =
  | Arm_none
  | Arm_ilod of { tvid : int; a : iexpr }   (* re-evaluates the address *)
  | Arm_var of { tvid : int; vr : vref }

(** A check statement's deoptimization descriptor, resolved against this
    engine's register slots: on a failed check (when the run supplies a
    recovery plan) the listed slots are read out of the frame and handed
    to {!Spec_safety.Deopt.deoptimize} as the continuation's seed
    state. *)
type cdeopt = {
  d_sid : int;                        (* lowering-era target statement id *)
  d_vars : (int * int * bool) array;  (* (orig vid, register slot, is_fp) *)
}

type cstmt =
  | CSnop
  | CSseti of { slot : int; e : iexpr; arm : arm }
  | CSsetf of { slot : int; e : fexpr; arm : arm }
  | CSstorev_i of { vr : vref; e : iexpr }   (* direct store to int mem var *)
  | CSstorev_f of { vr : vref; e : fexpr }
  | CSchk_ilod of { tvid : int; slot : int; fp : bool; a : iexpr; site : int;
                    which : [ `Site of int | `Var of int ];
                    dd : cdeopt option }
  | CSchk_lod of { tvid : int; slot : int; fp : bool; vr : vref;
                   dd : cdeopt option }
  | CSistr_i of { a : iexpr; e : iexpr; site : int }
  | CSistr_f of { a : iexpr; e : fexpr; site : int }
  | CScall of { target : ctarget; args : aexpr array;
                ret_slot : int; ret_fp : bool; csite : int }
  | CSerr of { args : aexpr array; msg : string }
      (* ill-formed builtin call: evaluate args, count the call, raise *)

and ctarget =
  | Tmalloc | Tprint_int | Tprint_flt | Tseed | Trnd
  | Tuser of int                        (* index into compiled functions *)
  | Tunknown of string                  (* Sir.find_func failure, deferred *)

type cterm =
  | CTgoto of int
  | CTcond of iexpr * int * int
  | CTret_none
  | CTret of aexpr

type cblock = {
  cb_phis : bool;                       (* phis present: error if executed *)
  cb_stmts : cstmt array;
  cb_chk : bool array;                  (* per-stmt: counts as check stmt *)
  cb_term : cterm;
}

type formal =
  | Fm_reg of { slot : int; fp : bool }
  | Fm_mem of { aslot : int; vid : int; bytes : int; fp : bool }

type cfunc = {
  cname : string;
  cblocks : cblock array;
  n_slots : int;
  n_addr : int;
  mem_locals : (int * int * int) array; (* (addr slot, vid, bytes) *)
  formals : formal array;
}

type compiled = {
  cprog : Sir.prog;
  cfuncs : cfunc array;
  main_ix : int;
}

(* ------------------------------------------------------------------ *)
(* Compilation                                                         *)
(* ------------------------------------------------------------------ *)

type fenv = {
  prog : Sir.prog;
  reg_slots : (int, int) Hashtbl.t;     (* orig vid -> register slot *)
  mutable next_reg : int;
  addr_slots : (int, int) Hashtbl.t;    (* orig vid -> address slot *)
}

let cell_bytes v = max Types.cell_size v.Symtab.vsize

let orig_of env vid = Symtab.orig env.prog.Sir.syms vid

let is_fp_var env vid = Types.is_fp (orig_of env vid).Symtab.vty

let reg_slot env vid =
  let ov = (orig_of env vid).Symtab.vid in
  match Hashtbl.find_opt env.reg_slots ov with
  | Some s -> s
  | None ->
    let s = env.next_reg in
    env.next_reg <- s + 1;
    Hashtbl.replace env.reg_slots ov s;
    s

let vref_of env vid =
  let v = orig_of env vid in
  match v.Symtab.vstorage with
  | Symtab.Sglobal -> Rglob v.Symtab.vid
  | _ ->
    (match Hashtbl.find_opt env.addr_slots v.Symtab.vid with
     | Some s -> Rslot s
     | None -> Rnone v.Symtab.vname)

let is_float_arith op = function
  | Types.Tflt ->
    (match op with
     | Sir.Add | Sir.Sub | Sir.Mul | Sir.Div -> true
     | _ -> false)
  | _ -> false

let is_cmp = function
  | Sir.Lt | Sir.Le | Sir.Gt | Sir.Ge | Sir.Eq | Sir.Ne -> true
  | _ -> false

let rec compile_i env ~spec (e : Sir.expr) : iexpr =
  match e with
  | Sir.Const (Sir.Cint i) -> Iconst i
  | Sir.Const (Sir.Cflt _) -> Iof_f (compile_f env ~spec e)
  | Sir.Lod vid ->
    if is_fp_var env vid then Iof_f (compile_f env ~spec e)
    else if Symtab.is_mem env.prog.Sir.syms vid then
      Ildv { vr = vref_of env vid; vid = (orig_of env vid).Symtab.vid }
    else Ireg (reg_slot env vid)
  | Sir.Ilod (ty, a, site) ->
    if Types.is_fp ty then Iof_f (compile_f env ~spec e)
    else Iilod { a = compile_i env ~spec a; site; spec; which = `Site site }
  | Sir.Lda vid -> Ilda (vref_of env vid)
  | Sir.Unop (Sir.Neg, Types.Tflt, _) -> Iof_f (compile_f env ~spec e)
  | Sir.Unop (Sir.Neg, _, x) -> Ineg (compile_i env ~spec x)
  | Sir.Unop (Sir.Lnot, _, x) -> Ilnot (compile_i env ~spec x)
  | Sir.Unop (Sir.I2f, _, _) -> Iof_f (compile_f env ~spec e)
  | Sir.Unop (Sir.F2i, _, x) -> If2i (compile_f env ~spec x)
  | Sir.Binop (op, ty, a, b) ->
    if is_cmp op then begin
      let ta = Types.is_fp (Sir.expr_ty env.prog.Sir.syms a) in
      let tb = Types.is_fp (Sir.expr_ty env.prog.Sir.syms b) in
      if ta || tb then
        let fa = if ta then compile_f env ~spec a
          else Fi2f (compile_i env ~spec a) in
        let fb = if tb then compile_f env ~spec b
          else Fi2f (compile_i env ~spec b) in
        Icmp_f (op, fa, fb)
      else Icmp_i (op, compile_i env ~spec a, compile_i env ~spec b)
    end
    else if is_float_arith op ty then Iof_f (compile_f env ~spec e)
    else Ibin (op, compile_i env ~spec a, compile_i env ~spec b)

and compile_f env ~spec (e : Sir.expr) : fexpr =
  match e with
  | Sir.Const (Sir.Cflt f) -> Fconst f
  | Sir.Const (Sir.Cint _) -> Fof_i (compile_i env ~spec e)
  | Sir.Lod vid ->
    if not (is_fp_var env vid) then Fof_i (compile_i env ~spec e)
    else if Symtab.is_mem env.prog.Sir.syms vid then
      Fldv { vr = vref_of env vid; vid = (orig_of env vid).Symtab.vid }
    else Freg (reg_slot env vid)
  | Sir.Ilod (ty, a, site) ->
    if not (Types.is_fp ty) then Fof_i (compile_i env ~spec e)
    else Filod { a = compile_i env ~spec a; site; spec; which = `Site site }
  | Sir.Lda _ -> Fof_i (compile_i env ~spec e)
  | Sir.Unop (Sir.Neg, Types.Tflt, x) -> Fneg (compile_f env ~spec x)
  | Sir.Unop (Sir.I2f, _, x) -> Fi2f (compile_i env ~spec x)
  | Sir.Unop ((Sir.Neg | Sir.Lnot | Sir.F2i), _, _) ->
    Fof_i (compile_i env ~spec e)
  | Sir.Binop (op, ty, a, b) ->
    if is_float_arith op ty && not (is_cmp op) then
      Fbin (op, compile_f env ~spec a, compile_f env ~spec b)
    else Fof_i (compile_i env ~spec e)

let compile_a env ~spec (e : Sir.expr) : aexpr =
  if Types.is_fp (Sir.expr_ty env.prog.Sir.syms e) then
    Af (compile_f env ~spec e)
  else Ai (compile_i env ~spec e)

(* Resolve a check's deopt descriptor against this function's register
   slots.  Descriptor variables are lowering-era originals; pinning in
   cleanup keeps their assignments alive, so the slots hold live
   values. *)
let cdeopt_of env (s : Sir.stmt) : cdeopt option =
  match s.Sir.deopt with
  | None -> None
  | Some d ->
    Some { d_sid = d.Sir.dp_target;
           d_vars =
             Array.of_list
               (List.map
                  (fun v -> (v, reg_slot env v, is_fp_var env v))
                  d.Sir.dp_vars) }

let compile_stmt env ~func_ix (s : Sir.stmt) : cstmt =
  let syms = env.prog.Sir.syms in
  let spec = s.Sir.mark = Sir.Mcspec || s.Sir.mark = Sir.Msa in
  match s.Sir.kind with
  | Sir.Snop -> CSnop
  (* a check load: reload only when the armed entry was invalidated by an
     intervening aliasing store (IA-64 ld.c semantics) *)
  | Sir.Stid (vid, Sir.Ilod (ty, a, site))
    when s.Sir.mark = Sir.Mchk && not (Symtab.is_mem syms vid) ->
    CSchk_ilod { tvid = (orig_of env vid).Symtab.vid;
                 slot = reg_slot env vid; fp = Types.is_fp ty;
                 a = compile_i env ~spec a; site; which = `Site site;
                 dd = cdeopt_of env s }
  (* same, for a check of a direct (global / address-taken) variable load *)
  | Sir.Stid (vid, Sir.Lod g)
    when s.Sir.mark = Sir.Mchk
         && (not (Symtab.is_mem syms vid))
         && Symtab.is_mem syms g ->
    CSchk_lod { tvid = (orig_of env vid).Symtab.vid;
                slot = reg_slot env vid; fp = is_fp_var env g;
                vr = vref_of env g; dd = cdeopt_of env s }
  | Sir.Stid (vid, e) ->
    if Symtab.is_mem syms vid then begin
      if is_fp_var env vid then
        CSstorev_f { vr = vref_of env vid; e = compile_f env ~spec e }
      else CSstorev_i { vr = vref_of env vid; e = compile_i env ~spec e }
    end
    else begin
      let arm =
        match s.Sir.mark, e with
        | (Sir.Madv | Sir.Msa), Sir.Ilod (_, a, _) ->
          Arm_ilod { tvid = (orig_of env vid).Symtab.vid;
                     a = compile_i env ~spec a }
        | (Sir.Madv | Sir.Msa), Sir.Lod g when Symtab.is_mem syms g ->
          Arm_var { tvid = (orig_of env vid).Symtab.vid; vr = vref_of env g }
        | _ -> Arm_none
      in
      let slot = reg_slot env vid in
      if is_fp_var env vid then
        CSsetf { slot; e = compile_f env ~spec e; arm }
      else CSseti { slot; e = compile_i env ~spec e; arm }
    end
  | Sir.Istr (ty, a, e, site) ->
    if Types.is_fp ty then
      CSistr_f { a = compile_i env ~spec a; e = compile_f env ~spec e; site }
    else CSistr_i { a = compile_i env ~spec a; e = compile_i env ~spec e; site }
  | Sir.Call { callee; args; ret; csite } ->
    let any_args () = Array.of_list (List.map (compile_a env ~spec) args) in
    let ret_slot, ret_fp =
      match ret with
      | None -> -1, false
      | Some r -> reg_slot env r, is_fp_var env r
    in
    let builtin_1i name =
      (* builtins taking one int argument *)
      match args with
      | [ a ] when not (Types.is_fp (Sir.expr_ty syms a)) ->
        Some (compile_i env ~spec a)
      | _ -> ignore name; None
    in
    let err msg = CSerr { args = any_args (); msg } in
    (match callee with
     | "malloc" ->
       (match builtin_1i "malloc" with
        | Some a -> CScall { target = Tmalloc; args = [| Ai a |];
                             ret_slot; ret_fp; csite }
        | None -> err "malloc expects one int")
     | "print_int" ->
       (match builtin_1i "print_int" with
        | Some a -> CScall { target = Tprint_int; args = [| Ai a |];
                             ret_slot; ret_fp; csite }
        | None -> err "print_int expects one int")
     | "print_flt" ->
       (match args with
        | [ a ] when Types.is_fp (Sir.expr_ty syms a) ->
          CScall { target = Tprint_flt; args = [| Af (compile_f env ~spec a) |];
                   ret_slot; ret_fp; csite }
        | _ -> err "print_flt expects one float")
     | "seed" ->
       (match builtin_1i "seed" with
        | Some a -> CScall { target = Tseed; args = [| Ai a |];
                             ret_slot; ret_fp; csite }
        | None -> err "seed expects one int")
     | "rnd" ->
       (match builtin_1i "rnd" with
        | Some a -> CScall { target = Trnd; args = [| Ai a |];
                             ret_slot; ret_fp; csite }
        | None -> err "rnd expects one int")
     | name ->
       (match func_ix name with
        | None ->
          CScall { target = Tunknown name; args = any_args ();
                   ret_slot; ret_fp; csite }
        | Some ix ->
          (* arguments are compiled at the callee's declared formal types
             (when arities match), so the invoke protocol can pass them in
             unboxed per-kind arrays *)
          let formals = (Sir.find_func env.prog name).Sir.fformals in
          let cargs =
            if List.length formals <> List.length args then any_args ()
            else
              Array.of_list
                (List.map2
                   (fun fvid a ->
                     if is_fp_var env fvid then Af (compile_f env ~spec a)
                     else Ai (compile_i env ~spec a))
                   formals args)
          in
          CScall { target = Tuser ix; args = cargs; ret_slot; ret_fp; csite }))

let compile_func (prog : Sir.prog) ~func_ix (f : Sir.func) : cfunc =
  let env = { prog; reg_slots = Hashtbl.create 32;
              next_reg = 0; addr_slots = Hashtbl.create 8 } in
  let syms = prog.Sir.syms in
  (* address slots for memory-resident locals and formals, in the order the
     tree-walking engine pushes them (locals first, then formals) *)
  let mem_locals =
    List.filter_map
      (fun vid ->
        if Symtab.is_mem syms vid then begin
          let slot = Hashtbl.length env.addr_slots in
          Hashtbl.replace env.addr_slots vid slot;
          Some (slot, vid, cell_bytes (Symtab.var syms vid))
        end
        else None)
      f.Sir.flocals
    |> Array.of_list
  in
  let formals =
    List.map
      (fun vid ->
        if Symtab.is_mem syms vid then begin
          let slot = Hashtbl.length env.addr_slots in
          Hashtbl.replace env.addr_slots vid slot;
          Fm_mem { aslot = slot; vid; bytes = cell_bytes (Symtab.var syms vid);
                   fp = is_fp_var env vid }
        end
        else Fm_reg { slot = reg_slot env vid; fp = is_fp_var env vid })
      f.Sir.fformals
    |> Array.of_list
  in
  let n = Sir.n_blocks f in
  let cblocks =
    Array.init n (fun bid ->
        let b = Sir.block f bid in
        let stmts = Array.of_list b.Sir.stmts in
        let cb_stmts = Array.map (compile_stmt env ~func_ix) stmts in
        let cb_chk = Array.map (fun s -> s.Sir.mark = Sir.Mchk) stmts in
        let cb_term =
          match b.Sir.term with
          | Sir.Tgoto t -> CTgoto t
          | Sir.Tcond (c, t, e) -> CTcond (compile_i env ~spec:false c, t, e)
          | Sir.Tret None -> CTret_none
          | Sir.Tret (Some e) -> CTret (compile_a env ~spec:false e)
        in
        { cb_phis = b.Sir.phis <> []; cb_stmts; cb_chk; cb_term })
  in
  { cname = f.Sir.fname; cblocks; n_slots = env.next_reg;
    n_addr = Hashtbl.length env.addr_slots; mem_locals; formals }

(** Compile a whole (non-SSA) program.  Cheap relative to any execution:
    one pass over the statements. *)
let compile (p : Sir.prog) : compiled =
  let order = p.Sir.func_order in
  let ix_of = Hashtbl.create 16 in
  List.iteri (fun i name -> Hashtbl.replace ix_of name i) order;
  let func_ix name = Hashtbl.find_opt ix_of name in
  let cfuncs =
    Array.of_list
      (List.map
         (fun name -> compile_func p ~func_ix (Sir.find_func p name))
         order)
  in
  let main_ix =
    match func_ix "main" with Some i -> i | None -> -1
  in
  { cprog = p; cfuncs; main_ix }

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

type state = {
  comp : compiled;
  mem : Memory.t;
  hooks : hooks;
  instr : bool;          (* hooks present: invoke instrumentation closures *)
  ctrs : counters;
  out : Buffer.t;
  globals : int array;   (* orig vid -> data-segment address, -1 if none *)
  mutable rng : int;
  mutable fuel : int;
  (* semantic ALAT: advanced loads arm an entry (frame serial, temp) ->
     address; stores invalidate matching addresses; a check reload is
     skipped when its entry survives.  Unbounded (ideal): capacity
     effects belong to the machine model, not the language semantics. *)
  alat : (int * int, int) Hashtbl.t;
  mutable frame_serial : int;
  (* injected ALAT interference (stress runs only); time is counted in
     ALAT operations since the interpreter has no cycle clock *)
  finj : Spec_stress.Faults.injector option;
  mutable fevents : int;
  (* deopt recovery plan: failed checks carrying a descriptor finish the
     function in its unoptimized body instead of reloading *)
  recover : Spec_safety.Deopt.plan option;
}

type frame = {
  cf : cfunc;
  serial : int;
  ints : int array;      (* int/pointer register slots *)
  flts : float array;    (* fp register slots *)
  addrs : int array;     (* memory-resident local -> address *)
}

(** Raised by a deoptimizing check: the continuation already executed
    the rest of the function, so the carried value is the function's
    return value; caught in [exec_func] before the frame pops. *)
exception Deopt_return of value

let no_addrs : int array = [||]

(* Interference only removes entries, so a faulted run reloads values
   that are current in memory — observable behavior is unchanged.  The
   chaos victim is the k-th entry in [Hashtbl] fold order, which is a
   pure function of the table's (deterministic) history. *)
let alat_interfere st =
  match st.finj with
  | None -> ()
  | Some inj ->
    st.fevents <- st.fevents + 1;
    Spec_stress.Faults.advance inj ~upto:st.fevents
      ~flush:(fun () -> Hashtbl.reset st.alat)
      ~invalidate:(fun rng ->
        let n = Hashtbl.length st.alat in
        if n > 0 then begin
          let k = Spec_stress.Srng.below rng n in
          let i = ref 0 and victim = ref None in
          Hashtbl.iter
            (fun key _ -> if !i = k then victim := Some key; incr i)
            st.alat;
          match !victim with
          | Some key -> Hashtbl.remove st.alat key
          | None -> ()
        end)

let alat_arm st serial tvid addr =
  alat_interfere st;
  Hashtbl.replace st.alat (serial, tvid) addr

let alat_check st serial tvid addr =
  alat_interfere st;
  match Hashtbl.find_opt st.alat (serial, tvid) with
  | Some a -> a = addr
  | None -> false

let alat_invalidate st addr =
  alat_interfere st;
  let stale =
    Hashtbl.fold
      (fun k a acc -> if a = addr then k :: acc else acc)
      st.alat []
  in
  List.iter (Hashtbl.remove st.alat) stale

let spend st =
  st.ctrs.steps <- st.ctrs.steps + 1;
  st.fuel <- st.fuel - 1;
  if st.fuel <= 0 then error "out of fuel (infinite loop?)"

let resolve_addr st (fr : frame) = function
  | Rglob vid ->
    let a = st.globals.(vid) in
    if a >= 0 then a else Memory.global_addr st.mem vid
  | Rslot s -> fr.addrs.(s)
  | Rnone name -> error "no stack slot for %s" name

let rec eval_i st (fr : frame) (e : iexpr) : int =
  match e with
  | Iconst i -> i
  | Ireg s -> fr.ints.(s)
  | Ildv { vr; vid } ->
    let addr = resolve_addr st fr vr in
    if st.instr then st.hooks.on_mem ~site:None ~addr ~is_store:false;
    st.ctrs.mem_loads <- st.ctrs.mem_loads + 1;
    let v = Memory.load_int st.mem addr in
    if st.instr then
      st.hooks.on_load ~which:(`Var vid) ~func:fr.cf.cname ~addr ~v:(Vint v);
    v
  | Iilod { a; site; spec; which } ->
    let addr = eval_i st fr a in
    st.ctrs.mem_loads <- st.ctrs.mem_loads + 1;
    if st.instr then st.hooks.on_mem ~site:(Some site) ~addr ~is_store:false;
    let v =
      if spec then Memory.load_int_spec st.mem addr
      else Memory.load_int st.mem addr
    in
    if st.instr then
      st.hooks.on_load ~which ~func:fr.cf.cname ~addr ~v:(Vint v);
    v
  | Ilda vr -> resolve_addr st fr vr
  | Ineg x -> - (eval_i st fr x)
  | Ilnot x -> if eval_i st fr x = 0 then 1 else 0
  | If2i x -> int_of_float (eval_f st fr x)
  | Ibin (op, a, b) ->
    let va = eval_i st fr a in
    let vb = eval_i st fr b in
    (match op with
     | Sir.Add -> va + vb
     | Sir.Sub -> va - vb
     | Sir.Mul -> va * vb
     | Sir.Div ->
       if vb = 0 then error "integer division by zero" else va / vb
     | Sir.Rem ->
       if vb = 0 then error "integer remainder by zero" else va mod vb
     | Sir.Band -> va land vb
     | Sir.Bor -> va lor vb
     | Sir.Bxor -> va lxor vb
     | Sir.Shl -> va lsl (vb land 63)
     | Sir.Shr -> va asr (vb land 63)
     | _ -> assert false)
  | Icmp_i (op, a, b) ->
    let va = eval_i st fr a in
    let vb = eval_i st fr b in
    let r =
      match op with
      | Sir.Lt -> va < vb | Sir.Le -> va <= vb
      | Sir.Gt -> va > vb | Sir.Ge -> va >= vb
      | Sir.Eq -> va = vb | Sir.Ne -> va <> vb
      | _ -> assert false
    in
    if r then 1 else 0
  | Icmp_f (op, a, b) ->
    let va = eval_f st fr a in
    let vb = eval_f st fr b in
    (* [compare], not IEEE operators: the tree-walking engine uses the
       polymorphic comparison, whose NaN ordering we must reproduce *)
    let cmp = compare va vb in
    let r =
      match op with
      | Sir.Lt -> cmp < 0 | Sir.Le -> cmp <= 0
      | Sir.Gt -> cmp > 0 | Sir.Ge -> cmp >= 0
      | Sir.Eq -> cmp = 0 | Sir.Ne -> cmp <> 0
      | _ -> assert false
    in
    if r then 1 else 0
  | Iof_f x ->
    let f = eval_f st fr x in
    error "expected int value, got float %g" f

and eval_f st (fr : frame) (e : fexpr) : float =
  match e with
  | Fconst f -> f
  | Freg s -> fr.flts.(s)
  | Fldv { vr; vid } ->
    let addr = resolve_addr st fr vr in
    if st.instr then st.hooks.on_mem ~site:None ~addr ~is_store:false;
    st.ctrs.mem_loads <- st.ctrs.mem_loads + 1;
    let v = Memory.load_flt st.mem addr in
    if st.instr then
      st.hooks.on_load ~which:(`Var vid) ~func:fr.cf.cname ~addr ~v:(Vflt v);
    v
  | Filod { a; site; spec; which } ->
    let addr = eval_i st fr a in
    st.ctrs.mem_loads <- st.ctrs.mem_loads + 1;
    if st.instr then st.hooks.on_mem ~site:(Some site) ~addr ~is_store:false;
    let v =
      if spec then Memory.load_flt_spec st.mem addr
      else Memory.load_flt st.mem addr
    in
    if st.instr then
      st.hooks.on_load ~which ~func:fr.cf.cname ~addr ~v:(Vflt v);
    v
  | Fneg x -> -. (eval_f st fr x)
  | Fi2f x -> float_of_int (eval_i st fr x)
  | Fbin (op, a, b) ->
    let va = eval_f st fr a in
    let vb = eval_f st fr b in
    (match op with
     | Sir.Add -> va +. vb
     | Sir.Sub -> va -. vb
     | Sir.Mul -> va *. vb
     | Sir.Div -> va /. vb     (* IEEE semantics: inf/nan allowed *)
     | _ -> assert false)
  | Fof_i x ->
    let i = eval_i st fr x in
    error "expected float value, got int %d" i

let eval_a st fr = function
  | Ai e -> Vint (eval_i st fr e)
  | Af e -> Vflt (eval_f st fr e)

let no_flts : float array = [||]

let set_ret fr slot fp v =
  if slot >= 0 then begin
    if fp then error "expected float value, got int %d" v
    else fr.ints.(slot) <- v
  end

let rec exec_stmt st (fr : frame) (s : cstmt) : unit =
  match s with
  | CSnop -> ()
  | CSseti { slot; e; arm } ->
    fr.ints.(slot) <- eval_i st fr e;
    exec_arm st fr arm
  | CSsetf { slot; e; arm } ->
    fr.flts.(slot) <- eval_f st fr e;
    exec_arm st fr arm
  | CSstorev_i { vr; e } ->
    let v = eval_i st fr e in
    let addr = resolve_addr st fr vr in
    if st.instr then st.hooks.on_mem ~site:None ~addr ~is_store:true;
    st.ctrs.mem_stores <- st.ctrs.mem_stores + 1;
    alat_invalidate st addr;
    Memory.store_int st.mem addr v
  | CSstorev_f { vr; e } ->
    let v = eval_f st fr e in
    let addr = resolve_addr st fr vr in
    if st.instr then st.hooks.on_mem ~site:None ~addr ~is_store:true;
    st.ctrs.mem_stores <- st.ctrs.mem_stores + 1;
    alat_invalidate st addr;
    Memory.store_flt st.mem addr v
  | CSchk_ilod { tvid; slot; fp; a; site; which; dd } ->
    let addr = eval_i st fr a in
    if not (alat_check st fr.serial tvid addr) then begin
      match st.recover, dd with
      | Some pl, Some d -> do_deopt st fr pl d
      | _ ->
        st.ctrs.check_reloads <- st.ctrs.check_reloads + 1;
        st.ctrs.mem_loads <- st.ctrs.mem_loads + 1;
        if st.instr then
          st.hooks.on_mem ~site:(Some site) ~addr ~is_store:false;
        if fp then begin
          let v = Memory.load_flt st.mem addr in
          if st.instr then
            st.hooks.on_load ~which ~func:fr.cf.cname ~addr ~v:(Vflt v);
          fr.flts.(slot) <- v
        end
        else begin
          let v = Memory.load_int st.mem addr in
          if st.instr then
            st.hooks.on_load ~which ~func:fr.cf.cname ~addr ~v:(Vint v);
          fr.ints.(slot) <- v
        end;
        alat_arm st fr.serial tvid addr
    end
  | CSchk_lod { tvid; slot; fp; vr; dd } ->
    let addr = resolve_addr st fr vr in
    if not (alat_check st fr.serial tvid addr) then begin
      match st.recover, dd with
      | Some pl, Some d -> do_deopt st fr pl d
      | _ ->
        st.ctrs.check_reloads <- st.ctrs.check_reloads + 1;
        if st.instr then st.hooks.on_mem ~site:None ~addr ~is_store:false;
        st.ctrs.mem_loads <- st.ctrs.mem_loads + 1;
        if fp then fr.flts.(slot) <- Memory.load_flt st.mem addr
        else fr.ints.(slot) <- Memory.load_int st.mem addr;
        alat_arm st fr.serial tvid addr
    end
  | CSistr_i { a; e; site } ->
    let addr = eval_i st fr a in
    let v = eval_i st fr e in
    if st.instr then st.hooks.on_mem ~site:(Some site) ~addr ~is_store:true;
    st.ctrs.mem_stores <- st.ctrs.mem_stores + 1;
    alat_invalidate st addr;
    Memory.store_int st.mem addr v
  | CSistr_f { a; e; site } ->
    let addr = eval_i st fr a in
    let v = eval_f st fr e in
    if st.instr then st.hooks.on_mem ~site:(Some site) ~addr ~is_store:true;
    st.ctrs.mem_stores <- st.ctrs.mem_stores + 1;
    alat_invalidate st addr;
    Memory.store_flt st.mem addr v
  | CScall { target; args; ret_slot; ret_fp; csite } ->
    exec_call st fr ~target ~args ~ret_slot ~ret_fp ~csite
  | CSerr { args; msg } ->
    Array.iter (fun a -> ignore (eval_a st fr a : value)) args;
    st.ctrs.calls <- st.ctrs.calls + 1;
    error "%s" msg

(* Deopt recovery: read the descriptor's slots out of the optimized
   frame, run the unoptimized continuation (all effects through hooks
   against this engine's state), and unwind to [exec_func] with the
   continuation's return value.  Instrumentation closures are not
   invoked during the continuation — only counters accumulate — so the
   tree and vm engines stay counter-identical under recovery. *)
and do_deopt st (fr : frame) (pl : Spec_safety.Deopt.plan) (d : cdeopt)
  : unit =
  let module D = Spec_safety.Deopt in
  st.ctrs.deopts <- st.ctrs.deopts + 1;
  let regs =
    Array.fold_right
      (fun (vid, slot, fp) acc ->
        (vid,
         if fp then D.Vflt fr.flts.(slot) else D.Vint fr.ints.(slot))
        :: acc)
      d.d_vars []
  in
  (* orig vid -> frame address of memory-resident locals and formals *)
  let frame_addr = Hashtbl.create 8 in
  Array.iter
    (fun (slot, vid, _) -> Hashtbl.replace frame_addr vid fr.addrs.(slot))
    fr.cf.mem_locals;
  Array.iter
    (function
      | Fm_mem { aslot; vid; _ } ->
        Hashtbl.replace frame_addr vid fr.addrs.(aslot)
      | Fm_reg _ -> ())
    fr.cf.formals;
  let h =
    { D.h_load =
        (fun ty addr ->
          st.ctrs.mem_loads <- st.ctrs.mem_loads + 1;
          if Types.is_fp ty then D.Vflt (Memory.load_flt st.mem addr)
          else D.Vint (Memory.load_int st.mem addr));
      D.h_store =
        (fun ty addr v ->
          st.ctrs.mem_stores <- st.ctrs.mem_stores + 1;
          alat_invalidate st addr;
          if Types.is_fp ty then Memory.store_flt st.mem addr (D.as_flt v)
          else Memory.store_int st.mem addr (D.as_int v));
      D.h_addr_of =
        (fun vid ->
          match Hashtbl.find_opt frame_addr vid with
          | Some a -> a
          | None ->
            let a = st.globals.(vid) in
            if a >= 0 then a else Memory.global_addr st.mem vid);
      D.h_spend = (fun () -> spend st);
      D.h_branch =
        (fun () -> st.ctrs.branches <- st.ctrs.branches + 1);
      D.h_call = (fun ~site name argv -> deopt_call st ~site name argv) }
  in
  let ret =
    try D.deoptimize pl h ~fname:fr.cf.cname ~target:d.d_sid ~regs
    with D.Error msg -> raise (Runtime_error msg)
  in
  raise (Deopt_return
           (match ret with D.Vint i -> Vint i | D.Vflt f -> Vflt f))

(* Call dispatch for the deopt continuation: builtins mirror
   [Interp_ref.call] exactly; user calls re-enter this engine's
   (optimized) bodies. *)
and deopt_call st ~site name (argv : Spec_safety.Deopt.value list)
  : Spec_safety.Deopt.value =
  let module D = Spec_safety.Deopt in
  st.ctrs.calls <- st.ctrs.calls + 1;
  match name, argv with
  | "malloc", [ D.Vint bytes ] ->
    D.Vint (Memory.malloc st.mem ~site bytes)
  | "malloc", _ -> raise (Runtime_error "malloc expects one int")
  | "print_int", [ D.Vint i ] ->
    Buffer.add_string st.out (string_of_int i);
    Buffer.add_char st.out '\n';
    D.Vint 0
  | "print_int", _ -> raise (Runtime_error "print_int expects one int")
  | "print_flt", [ D.Vflt f ] ->
    Buffer.add_string st.out (Printf.sprintf "%.6g" f);
    Buffer.add_char st.out '\n';
    D.Vint 0
  | "print_flt", _ -> raise (Runtime_error "print_flt expects one float")
  | "seed", [ D.Vint s ] ->
    st.rng <- s;
    D.Vint 0
  | "seed", _ -> raise (Runtime_error "seed expects one int")
  | "rnd", [ D.Vint m ] ->
    if m <= 0 then raise (Runtime_error "rnd expects a positive bound");
    st.rng <- (st.rng * 0x5851F42D4C957F2D + 0x14057B7EF767814F) land max_int;
    D.Vint ((st.rng lsr 29) mod m)
  | "rnd", _ -> raise (Runtime_error "rnd expects one int")
  | _ ->
    let ix = ref (-1) in
    Array.iteri
      (fun i cf -> if cf.cname = name then ix := i)
      st.comp.cfuncs;
    if !ix < 0 then invalid_arg ("Sir.find_func: no function " ^ name);
    let callee = st.comp.cfuncs.(!ix) in
    let n = List.length argv in
    let ai = if n = 0 then no_addrs else Array.make n 0 in
    let af = if n = 0 then no_flts else Array.make n 0. in
    List.iteri
      (fun k v ->
        let fp =
          if k < Array.length callee.formals then
            match callee.formals.(k) with
            | Fm_reg { fp; _ } | Fm_mem { fp; _ } -> fp
          else false
        in
        try if fp then af.(k) <- D.as_flt v else ai.(k) <- D.as_int v
        with D.Error msg -> raise (Runtime_error msg))
      argv;
    (match exec_func st !ix ai af with
     | Vint i -> D.Vint i
     | Vflt f -> D.Vflt f)

and exec_arm st fr = function
  | Arm_none -> ()
  | Arm_ilod { tvid; a } ->
    (* advanced loads arm the semantic ALAT; the address is re-evaluated,
       as in the tree-walking engine (its side effects included) *)
    (try alat_arm st fr.serial tvid (eval_i st fr a)
     with Runtime_error _ -> ())
  | Arm_var { tvid; vr } ->
    alat_arm st fr.serial tvid (resolve_addr st fr vr)

and exec_call st fr ~target ~args ~ret_slot ~ret_fp ~csite =
  match target with
  | Tmalloc ->
    let bytes = (match args.(0) with Ai a -> eval_i st fr a | Af _ -> 0) in
    st.ctrs.calls <- st.ctrs.calls + 1;
    set_ret fr ret_slot ret_fp (Memory.malloc st.mem ~site:csite bytes)
  | Tprint_int ->
    let v = (match args.(0) with Ai a -> eval_i st fr a | Af _ -> 0) in
    st.ctrs.calls <- st.ctrs.calls + 1;
    Buffer.add_string st.out (string_of_int v);
    Buffer.add_char st.out '\n';
    set_ret fr ret_slot ret_fp 0
  | Tprint_flt ->
    let v = (match args.(0) with Af a -> eval_f st fr a | Ai _ -> 0.) in
    st.ctrs.calls <- st.ctrs.calls + 1;
    Buffer.add_string st.out (Printf.sprintf "%.6g" v);
    Buffer.add_char st.out '\n';
    set_ret fr ret_slot ret_fp 0
  | Tseed ->
    let v = (match args.(0) with Ai a -> eval_i st fr a | Af _ -> 0) in
    st.ctrs.calls <- st.ctrs.calls + 1;
    st.rng <- v;
    set_ret fr ret_slot ret_fp 0
  | Trnd ->
    let m = (match args.(0) with Ai a -> eval_i st fr a | Af _ -> 0) in
    st.ctrs.calls <- st.ctrs.calls + 1;
    if m <= 0 then error "rnd expects a positive bound";
    st.rng <- (st.rng * 0x5851F42D4C957F2D + 0x14057B7EF767814F) land max_int;
    set_ret fr ret_slot ret_fp ((st.rng lsr 29) mod m)
  | Tuser ix ->
    let callee = st.comp.cfuncs.(ix) in
    let n = Array.length args in
    let ai = if n = 0 then no_addrs else Array.make n 0 in
    let af = if n = 0 then no_flts else Array.make n 0. in
    for k = 0 to n - 1 do
      match args.(k) with
      | Ai e -> ai.(k) <- eval_i st fr e
      | Af e -> af.(k) <- eval_f st fr e
    done;
    st.ctrs.calls <- st.ctrs.calls + 1;
    if st.instr then st.hooks.on_call ~site:csite ~callee:callee.cname;
    let result = exec_func st ix ai af in
    if st.instr then st.hooks.on_call_ret ~site:csite ~callee:callee.cname;
    if ret_slot >= 0 then begin
      if ret_fp then fr.flts.(ret_slot) <- as_flt result
      else fr.ints.(ret_slot) <- as_int result
    end
  | Tunknown name ->
    Array.iter (fun a -> ignore (eval_a st fr a : value)) args;
    st.ctrs.calls <- st.ctrs.calls + 1;
    if st.instr then st.hooks.on_call ~site:csite ~callee:name;
    invalid_arg ("Sir.find_func: no function " ^ name)

and exec_func st ix (ai : int array) (af : float array) : value =
  let cf = st.comp.cfuncs.(ix) in
  if st.instr then st.hooks.on_entry ~func:cf.cname;
  st.frame_serial <- st.frame_serial + 1;
  let fr =
    { cf; serial = st.frame_serial;
      ints = (if cf.n_slots = 0 then no_addrs else Array.make cf.n_slots 0);
      flts = (if cf.n_slots = 0 then no_flts else Array.make cf.n_slots 0.);
      addrs = (if cf.n_addr = 0 then no_addrs else Array.make cf.n_addr 0) }
  in
  let mark = Memory.stack_mark st.mem in
  (* stack slots for memory-resident locals *)
  Array.iter
    (fun (slot, vid, bytes) ->
      fr.addrs.(slot) <- Memory.push_frame_var st.mem vid bytes)
    cf.mem_locals;
  (* bind formals; address-taken formals spill to their slot *)
  let nf = Array.length cf.formals in
  if nf <> Array.length ai then error "arity mismatch calling %s" cf.cname;
  for k = 0 to nf - 1 do
    match cf.formals.(k) with
    | Fm_reg { slot; fp } ->
      if fp then fr.flts.(slot) <- af.(k) else fr.ints.(slot) <- ai.(k)
    | Fm_mem { aslot; vid; bytes; fp } ->
      let addr = Memory.push_frame_var st.mem vid bytes in
      fr.addrs.(aslot) <- addr;
      if fp then Memory.store_flt st.mem addr af.(k)
      else Memory.store_int st.mem addr ai.(k)
  done;
  let ret =
    try exec_blocks st fr with Deopt_return v -> v
  in
  Memory.pop_frame st.mem mark;
  ret

and exec_blocks st (fr : frame) : value =
  let cf = fr.cf in
  let rec run_block bid : value =
    let b = cf.cblocks.(bid) in
    if b.cb_phis then
      error "interpreter cannot execute SSA-form code (phis present)";
    let stmts = b.cb_stmts in
    let chk = b.cb_chk in
    for k = 0 to Array.length stmts - 1 do
      spend st;
      if chk.(k) then st.ctrs.check_stmts <- st.ctrs.check_stmts + 1;
      exec_stmt st fr stmts.(k)
    done;
    spend st;
    match b.cb_term with
    | CTgoto next ->
      if st.instr then st.hooks.on_edge ~func:cf.cname ~src:bid ~dst:next;
      run_block next
    | CTcond (c, t, e) ->
      st.ctrs.branches <- st.ctrs.branches + 1;
      let next = if eval_i st fr c <> 0 then t else e in
      if st.instr then st.hooks.on_edge ~func:cf.cname ~src:bid ~dst:next;
      run_block next
    | CTret_none -> Vint 0
    | CTret e -> eval_a st fr e
  in
  run_block Sir.entry_bid

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

(** Run a pre-compiled program.  Omitting [hooks] selects the
    uninstrumented fast path (no closure is ever invoked).  [faults]
    attaches injected ALAT interference for stress runs.  [recover]
    supplies a deoptimization plan: failed checks whose statements carry
    descriptors finish their function in the unoptimized body instead of
    reloading. *)
let run_compiled ?(fuel = 200_000_000) ?hooks ?faults ?recover
    ?(heap_bytes = 24 * 1024 * 1024) (comp : compiled) : result =
  if comp.main_ix < 0 then error "program has no main function";
  let instr, hooks =
    match hooks with None -> false, no_hooks () | Some h -> true, h
  in
  let syms = comp.cprog.Sir.syms in
  let mem = Memory.create ~heap_bytes comp.cprog in
  let globals = Array.make (Symtab.count syms) (-1) in
  List.iter
    (fun g -> globals.(g) <- Memory.global_addr mem g)
    comp.cprog.Sir.globals;
  let st =
    { comp; mem; hooks; instr;
      ctrs = { steps = 0; mem_loads = 0; mem_stores = 0; branches = 0;
               calls = 0; check_stmts = 0; check_reloads = 0; deopts = 0 };
      out = Buffer.create 256; globals; rng = 88172645463325252; fuel;
      alat = Hashtbl.create 32; frame_serial = 0;
      finj = faults; fevents = 0; recover }
  in
  if instr then hooks.on_memory st.mem;
  let ret = exec_func st comp.main_ix no_addrs no_flts in
  let r = { ret; output = Buffer.contents st.out; counters = st.ctrs } in
  Memory.release st.mem;
  r

(** Run [main].  [fuel] bounds the number of executed statements.  The
    program is compiled first (one cheap pass); callers that execute the
    same program repeatedly can {!compile} once and use
    {!run_compiled}. *)
let run ?fuel ?hooks ?faults ?recover ?heap_bytes (p : Sir.prog) : result =
  if not (Hashtbl.mem p.Sir.funcs "main") then
    error "program has no main function";
  run_compiled ?fuel ?hooks ?faults ?recover ?heap_bytes (compile p)
