(** Profiling driver: run a program under the interpreter with
    instrumentation wired to a {!Profile.t}, maintaining the dynamic
    call-site stack so call-site mod/ref LOC sets accumulate the effects
    of entire call subtrees (§3.2.1). *)

(** Run the program and collect edge + alias profiles, with whatever
    inputs its [main] sets up (workloads select train vs ref inputs
    through a global).  Also annotates the program's block frequencies
    from the collected edge profile. *)
val profile :
  ?fuel:int ->
  ?heap_bytes:int ->
  Spec_ir.Sir.prog ->
  Profile.t * Interp.result
