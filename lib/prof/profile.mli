(** Profile data collected by instrumented interpretation: edge profiles
    (control speculation) and alias profiles — the LOC sets observed at
    each indirect memory reference with observation counts, and the
    mod/ref LOC sets of each call site (data speculation), per §3.2.1 of
    the paper.

    The types are transparent on purpose: this is the stable surface the
    persistent FDO store ({!Spec_fdo.Store}) serializes and re-populates
    when binding a stored profile to a fresh compile. *)

open Spec_ir

type edge_profile = {
  edges : (string * int * int, int) Hashtbl.t;
      (** (function, from bb, to bb) → traversal count *)
  entries : (string, int) Hashtbl.t;   (** function → entry count *)
}

type alias_profile = {
  ref_locs : (int, (Loc.t, int) Hashtbl.t) Hashtbl.t;
      (** iload/istore site → LOC → observation count *)
  ref_counts : (int, int) Hashtbl.t;   (** site → dynamic execution count *)
  call_mod : (int, Loc.Set.t) Hashtbl.t;  (** call site → modified LOCs *)
  call_ref : (int, Loc.Set.t) Hashtbl.t;  (** call site → referenced LOCs *)
}

type t = { edge : edge_profile; alias : alias_profile }

val create : unit -> t

(** Recording hooks, driven by {!Profiler}. *)

val record_edge : t -> func:string -> src:int -> dst:int -> unit
val record_entry : t -> func:string -> unit
val record_ref : t -> site:int -> loc:Loc.t option -> unit
val record_call_effect :
  t -> site:int -> loc:Loc.t option -> is_store:bool -> unit

(** Queries, consumed by the speculation-flag assignment. *)

(** LOC set observed at an indirect-reference site; empty if the site
    never executed during profiling. *)
val locs_at : t -> int -> Loc.Set.t

(** Fraction of the site's dynamic executions that touched the LOC. *)
val loc_fraction : t -> int -> Loc.t -> float

(** Fraction of the site's executions that touched any location in the
    set — the paper's "degree of likeliness" of an alias relation. *)
val overlap_fraction : t -> int -> Loc.Set.t -> float

val ref_count : t -> int -> int
val call_mod_locs : t -> int -> Loc.Set.t
val call_ref_locs : t -> int -> Loc.Set.t
val edge_count : t -> func:string -> src:int -> dst:int -> int
val entry_count : t -> func:string -> int

(** Write block execution frequencies into [bb.freq] for every function
    (entry frequency = call count; other blocks = sum of incoming
    edges). *)
val annotate_block_freqs : t -> Sir.prog -> unit
