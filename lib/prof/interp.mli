(** Pre-compiled tree execution engine for SIR (the "tree" engine).

    Before executing, the engine *compiles* each [Sir.func] into a
    resolved form: register-resident variables get dense per-frame slots
    in unboxed [int]/[float] arrays, memory-resident locals get dense
    address slots, symbol-table and type dispatch are resolved at
    compile time, and statement dispatch (check-load vs plain assign,
    advanced-load arming, builtin vs user call) is decided once.

    The compiled representation is exposed because it is the input of
    the threaded-code lowerer ({!Vmcode}): the bytecode engine inherits
    every type-resolution and speculation-classification decision from
    this compiler, which is what keeps the engines byte-identical.

    Observable behaviour — output, return value, and all counters — is
    identical to {!Interp_ref}; the differential suites in
    [test/test_engines.ml] and [test/test_fuzz.ml] enforce this for
    every workload under every pipeline variant and fault plan. *)

open Spec_ir

type value = Vint of int | Vflt of float

exception Runtime_error of string

val error : ('a, Format.formatter, unit, 'b) format4 -> 'a
val as_int : value -> int
val as_flt : value -> float

(** Instrumentation hooks; all default to no-ops. *)
type hooks = {
  mutable on_edge : func:string -> src:int -> dst:int -> unit;
  mutable on_entry : func:string -> unit;
  mutable on_mem :
    site:int option -> addr:int -> is_store:bool -> unit;
      (** every memory access; [site] is set for indirect references *)
  mutable on_load :
    which:[ `Site of int | `Var of int ] ->
    func:string -> addr:int -> v:value -> unit;
      (** every memory load, for load-reuse analysis *)
  mutable on_call : site:int -> callee:string -> unit;
      (** user-function call about to execute *)
  mutable on_call_ret : site:int -> callee:string -> unit;
  mutable on_memory : Memory.t -> unit;
      (** invoked once, when the memory image is created *)
}

val no_hooks : unit -> hooks

type counters = {
  mutable steps : int;
  mutable mem_loads : int;
  mutable mem_stores : int;
  mutable branches : int;
  mutable calls : int;
  mutable check_stmts : int;
      (** executions of ld.c-marked statements; their reloads are counted
          in [mem_loads] too, but cost nothing on the machine when the
          ALAT check succeeds *)
  mutable check_reloads : int;
      (** ld.c executions whose ALAT entry was gone (a real intervening
          alias, or injected interference) and had to reload *)
  mutable deopts : int;
      (** failed checks recovered by deoptimization instead of reload
          (only under [?recover]) *)
}

type result = {
  ret : value;
  output : string;
  counters : counters;
}

(** {1 Compiled representation} *)

(** Resolved reference to a memory-resident variable's address. *)
type vref =
  | Rglob of int          (* original vid; address via the globals table *)
  | Rslot of int          (* frame address-slot of a memory-resident local *)
  | Rnone of string       (* no stack slot: runtime error with var name *)

(** Int-typed and float-typed compiled expressions.  Type mismatches the
    tree-walking engine would discover dynamically ([as_int] on a float)
    are compiled into [Iof_f]/[Fof_i] nodes that evaluate the wrongly
    typed subtree and raise the same [Runtime_error]. *)
type iexpr =
  | Iconst of int
  | Ireg of int                                  (* register slot *)
  | Ildv of { vr : vref; vid : int }             (* direct load, int mem var *)
  | Iilod of { a : iexpr; site : int; spec : bool;
               which : [ `Site of int | `Var of int ] }
  | Ilda of vref
  | Ineg of iexpr
  | Ilnot of iexpr
  | If2i of fexpr
  | Ibin of Sir.binop * iexpr * iexpr            (* int arithmetic *)
  | Icmp_i of Sir.binop * iexpr * iexpr
  | Icmp_f of Sir.binop * fexpr * fexpr
  | Iof_f of fexpr                               (* as_int of a float value *)

and fexpr =
  | Fconst of float
  | Freg of int
  | Fldv of { vr : vref; vid : int }             (* direct load, fp mem var *)
  | Filod of { a : iexpr; site : int; spec : bool;
               which : [ `Site of int | `Var of int ] }
  | Fneg of fexpr
  | Fi2f of iexpr
  | Fbin of Sir.binop * fexpr * fexpr            (* fp add/sub/mul/div *)
  | Fof_i of iexpr                               (* as_flt of an int value *)

(** Either-typed expression, for call arguments and return expressions. *)
type aexpr = Ai of iexpr | Af of fexpr

(** Advanced-load (ld.a / ld.sa) ALAT arming, resolved at compile time. *)
type arm =
  | Arm_none
  | Arm_ilod of { tvid : int; a : iexpr }   (* re-evaluates the address *)
  | Arm_var of { tvid : int; vr : vref }

(** A check statement's deoptimization descriptor, resolved against this
    engine's register slots. *)
type cdeopt = {
  d_sid : int;                        (* lowering-era target statement id *)
  d_vars : (int * int * bool) array;  (* (orig vid, register slot, is_fp) *)
}

type cstmt =
  | CSnop
  | CSseti of { slot : int; e : iexpr; arm : arm }
  | CSsetf of { slot : int; e : fexpr; arm : arm }
  | CSstorev_i of { vr : vref; e : iexpr }   (* direct store to int mem var *)
  | CSstorev_f of { vr : vref; e : fexpr }
  | CSchk_ilod of { tvid : int; slot : int; fp : bool; a : iexpr; site : int;
                    which : [ `Site of int | `Var of int ];
                    dd : cdeopt option }
  | CSchk_lod of { tvid : int; slot : int; fp : bool; vr : vref;
                   dd : cdeopt option }
  | CSistr_i of { a : iexpr; e : iexpr; site : int }
  | CSistr_f of { a : iexpr; e : fexpr; site : int }
  | CScall of { target : ctarget; args : aexpr array;
                ret_slot : int; ret_fp : bool; csite : int }
  | CSerr of { args : aexpr array; msg : string }
      (* ill-formed builtin call: evaluate args, count the call, raise *)

and ctarget =
  | Tmalloc | Tprint_int | Tprint_flt | Tseed | Trnd
  | Tuser of int                        (* index into compiled functions *)
  | Tunknown of string                  (* Sir.find_func failure, deferred *)

type cterm =
  | CTgoto of int
  | CTcond of iexpr * int * int
  | CTret_none
  | CTret of aexpr

type cblock = {
  cb_phis : bool;                       (* phis present: error if executed *)
  cb_stmts : cstmt array;
  cb_chk : bool array;                  (* per-stmt: counts as check stmt *)
  cb_term : cterm;
}

type formal =
  | Fm_reg of { slot : int; fp : bool }
  | Fm_mem of { aslot : int; vid : int; bytes : int; fp : bool }

type cfunc = {
  cname : string;
  cblocks : cblock array;
  n_slots : int;
  n_addr : int;
  mem_locals : (int * int * int) array; (* (addr slot, vid, bytes) *)
  formals : formal array;
}

type compiled = {
  cprog : Sir.prog;
  cfuncs : cfunc array;
  main_ix : int;
}

(** Compile a whole (non-SSA) program.  Cheap relative to any execution:
    one pass over the statements. *)
val compile : Sir.prog -> compiled

(** {1 Execution} *)

(** Run a pre-compiled program.  Omitting [hooks] selects the
    uninstrumented fast path (no closure is ever invoked).  [faults]
    attaches injected ALAT interference for stress runs.  [recover]
    supplies a deoptimization plan (built over a fresh lowering of the
    same source): failed checks whose statements carry descriptors
    finish their function in the unoptimized body instead of
    reloading. *)
val run_compiled :
  ?fuel:int ->
  ?hooks:hooks ->
  ?faults:Spec_stress.Faults.injector ->
  ?recover:Spec_safety.Deopt.plan ->
  ?heap_bytes:int ->
  compiled ->
  result

(** Run [main].  [fuel] bounds the number of executed statements.  The
    program is compiled first (one cheap pass); callers that execute the
    same program repeatedly can {!compile} once and use
    {!run_compiled}. *)
val run :
  ?fuel:int ->
  ?hooks:hooks ->
  ?faults:Spec_stress.Faults.injector ->
  ?recover:Spec_safety.Deopt.plan ->
  ?heap_bytes:int ->
  Sir.prog ->
  result
