(** Threaded-code execution engine: a tight dispatch loop over the flat
    bytecode produced by {!Vmcode} (the "vm" engine).

    One closure-free dispatch loop per activation over dense integer
    opcodes (the match compiles to a jump table) and unboxed per-frame
    int/float slot arrays.  All speculation semantics carry over from
    the tree engines: the same semantic ALAT protocol, advanced loads,
    check loads, store invalidation, and injected interference on the
    same ALAT-operation clock.  Observable behaviour — output, return
    value, and every counter — is identical to {!Interp} and
    {!Interp_ref} on every run that terminates; [test/test_engines.ml]
    and [test/test_fuzz.ml] enforce this differentially across
    workloads, variants and fault plans. *)

type result = Interp.result

(** {!Interp.error}: raise {!Interp.Runtime_error} with the engines'
    shared message discipline. *)
val error : ('a, Format.formatter, unit, 'b) format4 -> 'a

(** Execute pre-lowered bytecode from [main].  [fuel] bounds the step
    count (default 200M, spent per block exactly as the tree engines
    spend it); [faults] injects ALAT interference on the shared clock;
    [recover] supplies a deoptimization plan — failed checks whose pc
    carries a descriptor finish their function in the unoptimized body
    instead of reloading (counted in [deopts], not [check_reloads]);
    [heap_bytes] sizes the heap (default 24MB).  Raises
    {!Interp.Runtime_error} on any fault, with the tree engines'
    message. *)
val run_program :
  ?fuel:int -> ?faults:Spec_stress.Faults.injector ->
  ?recover:Spec_safety.Deopt.plan -> ?heap_bytes:int ->
  Vmcode.program -> Interp.result

(** Lower [p] and run [main] in one step (one cheap pass; callers that
    execute the same program repeatedly should {!Vmcode.compile} once
    and use {!run_program}). *)
val run :
  ?fuel:int -> ?faults:Spec_stress.Faults.injector ->
  ?recover:Spec_safety.Deopt.plan -> ?heap_bytes:int ->
  Spec_ir.Sir.prog -> Interp.result
