(** Hand-written lexer for the mini-C frontend. *)

type token =
  | Tint_lit of int
  | Tflt_lit of float
  | Tident of string
  | Tkw of string
  | Tpunct of string
  | Teof

type lexeme = { tok : token; line : int }

let keywords =
  [ "int"; "float"; "void"; "if"; "else"; "while"; "for"; "return";
    "break"; "continue"; "secret" ]

let is_digit c = c >= '0' && c <= '9'
let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_alnum c = is_alpha c || is_digit c

(* Multi-character punctuation, longest first. *)
let puncts2 =
  [ "=="; "!="; "<="; ">="; "&&"; "||"; "<<"; ">>"; "+="; "-="; "*="; "/=";
    "++"; "--" ]

let tokenize (src : string) : lexeme list =
  let n = String.length src in
  let toks = ref [] in
  let line = ref 1 in
  let emit tok = toks := { tok; line = !line } :: !toks in
  let i = ref 0 in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin incr line; incr i end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '/' then begin
      while !i < n && src.[!i] <> '\n' do incr i done
    end
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '*' then begin
      i := !i + 2;
      let fin = ref false in
      while not !fin do
        if !i + 1 >= n then
          raise (Ast.Frontend_error (!line, "unterminated comment"))
        else if src.[!i] = '*' && src.[!i + 1] = '/' then begin
          i := !i + 2; fin := true
        end else begin
          if src.[!i] = '\n' then incr line;
          incr i
        end
      done
    end
    else if is_digit c
         || (c = '.' && !i + 1 < n && is_digit src.[!i + 1]) then begin
      let start = !i in
      let is_flt = ref false in
      while !i < n
            && (is_digit src.[!i] || src.[!i] = '.' || src.[!i] = 'e'
                || src.[!i] = 'E'
                || ((src.[!i] = '+' || src.[!i] = '-')
                    && !i > start
                    && (src.[!i - 1] = 'e' || src.[!i - 1] = 'E'))) do
        if src.[!i] = '.' || src.[!i] = 'e' || src.[!i] = 'E' then
          is_flt := true;
        incr i
      done;
      let s = String.sub src start (!i - start) in
      if !is_flt then emit (Tflt_lit (float_of_string s))
      else emit (Tint_lit (int_of_string s))
    end
    else if is_alpha c then begin
      let start = !i in
      while !i < n && is_alnum src.[!i] do incr i done;
      let s = String.sub src start (!i - start) in
      if List.mem s keywords then emit (Tkw s) else emit (Tident s)
    end
    else begin
      let two =
        if !i + 1 < n then Some (String.sub src !i 2) else None
      in
      match two with
      | Some p when List.mem p puncts2 -> emit (Tpunct p); i := !i + 2
      | _ ->
        (match c with
         | '+' | '-' | '*' | '/' | '%' | '<' | '>' | '=' | '!' | '&' | '|'
         | '^' | '(' | ')' | '{' | '}' | '[' | ']' | ';' | ',' ->
           emit (Tpunct (String.make 1 c)); incr i
         | _ ->
           raise (Ast.Frontend_error
                    (!line, Printf.sprintf "unexpected character %C" c)))
    end
  done;
  emit Teof;
  List.rev !toks

let token_str = function
  | Tint_lit i -> string_of_int i
  | Tflt_lit f -> string_of_float f
  | Tident s -> s
  | Tkw s -> s
  | Tpunct s -> Printf.sprintf "%S" s
  | Teof -> "<eof>"
