(** Program-wide variable table.

    Every variable — global, local, formal, compiler temporary, HSSA virtual
    variable, and every SSA version of any of these — is registered here and
    identified by a dense integer id.  SSA versions carry a pointer to their
    original variable ([vorig]) so analyses can recover the underlying
    storage location. *)

type storage =
  | Sglobal          (** program-lifetime, memory resident *)
  | Slocal           (** stack local *)
  | Sformal          (** incoming parameter *)
  | Stemp            (** compiler-generated temporary, register resident *)
  | Svirtual         (** HSSA virtual variable standing for an alias class *)

type var = {
  vid : int;
  vname : string;
  vty : Types.ty;
  vstorage : storage;
  vfunc : string option;       (** owning function; [None] for globals *)
  vsize : int;                 (** byte size; larger than one cell for arrays *)
  velt : Types.ty;             (** element type for arrays; [vty] otherwise *)
  varray : bool;               (** declared as an array *)
  mutable vaddr_taken : bool;
  vsecret : bool;              (** carries secret data (speculative-safety
                                   contract); versions inherit the flag *)
  vorig : int;                 (** original variable id; [vid] if not a version *)
  vver : int;                  (** SSA version number; 0 before renaming *)
}

type t = { vars : var Vec.t }

let dummy_var =
  { vid = -1; vname = "?"; vty = Types.Tvoid; vstorage = Stemp; vfunc = None;
    vsize = 0; velt = Types.Tvoid; varray = false; vaddr_taken = false;
    vsecret = false; vorig = -1; vver = 0 }

let create () = { vars = Vec.create dummy_var }

let var t id = Vec.get t.vars id
let count t = Vec.length t.vars

let add t ~name ~ty ~storage ~func ?(size = Types.size_of ty) ?(elt = ty)
    ?(is_array = false) ?(secret = false) () =
  let vid = Vec.length t.vars in
  let v = { vid; vname = name; vty = ty; vstorage = storage; vfunc = func;
            vsize = size; velt = elt; varray = is_array;
            vaddr_taken = false; vsecret = secret; vorig = vid; vver = 0 } in
  Vec.push t.vars v;
  v

(** Register a fresh SSA version of variable [orig_id]. *)
let add_version t ~orig_id ~ver =
  let o = var t orig_id in
  assert (o.vorig = o.vid);
  let vid = Vec.length t.vars in
  let v = { o with vid; vver = ver;
            vname = Printf.sprintf "%s.%d" o.vname ver; vorig = o.vid } in
  Vec.push t.vars v;
  v

(** Snapshot for a per-function compile task: a new table over a copied
    vector, sharing the [var] records.  Ids allocated in the clone do not
    appear in the original (and vice versa); the task's surviving
    temporaries are re-allocated into the real table when the task's
    results are committed. *)
let clone t = { vars = Vec.copy t.vars }

let orig t id = var t (var t id).vorig

(** A variable lives in memory (has an addressable cell) rather than being
    purely register-resident.  Globals, arrays, and address-taken locals are
    memory resident; other locals, formals and temps live in registers. *)
let is_mem t id =
  let v = orig t id in
  match v.vstorage with
  | Sglobal -> true
  | Slocal | Sformal -> v.vaddr_taken || v.varray
  | Stemp -> false
  | Svirtual -> false

let is_virtual t id = (var t id).vstorage = Svirtual

(** The variable (or the original behind an SSA version) is covered by a
    [secret] contract. *)
let is_secret t id = (orig t id).vsecret

let set_addr_taken t id =
  let v = orig t id in
  v.vaddr_taken <- true

let name t id = (var t id).vname
let ty t id = (var t id).vty

let iter f t = Vec.iter f t.vars
