(** SIR: the mid-level intermediate representation.

    SIR mirrors the slice of ORC's WHIRL that the paper's algorithms operate
    on: a control-flow graph of basic blocks whose statements carry
    expression *trees*; direct loads/stores of named variables; indirect
    loads/stores through arbitrary address expressions; and calls.  After
    HSSA construction, statements additionally carry [mu] (may-use) and
    [chi] (may-def) operand lists and blocks carry phi nodes; the
    speculation flags of the paper's speculative SSA form live on those
    [mu]/[chi] operands. *)

type const = Cint of int | Cflt of float

type binop =
  | Add | Sub | Mul | Div | Rem
  | Lt | Le | Gt | Ge | Eq | Ne
  | Band | Bor | Bxor | Shl | Shr

type unop = Neg | Lnot | I2f | F2i

type expr =
  | Const of const
  | Lod of int
      (** direct load of variable (by id).  For register-resident variables
          this is just a use; for memory-resident ones it is a memory load. *)
  | Ilod of Types.ty * expr * int
      (** [Ilod (ty, addr, site)]: indirect load of a [ty] value from the
          address computed by [addr].  [site] uniquely identifies this
          static memory reference for alias profiling. *)
  | Lda of int
      (** address of a memory-resident variable *)
  | Unop of unop * Types.ty * expr
  | Binop of binop * Types.ty * expr * expr

(** May-use operand: variable [mu_opnd] (an SSA version of [mu_var]) may be
    referenced here.  [mu_spec] is the paper's speculation flag: the use is
    highly likely to be substantiated at runtime. *)
type mu = { mutable mu_opnd : int; mu_var : int; mutable mu_spec : bool }

(** May-def operand: this statement may update [chi_var]; in SSA form it
    defines version [chi_lhs] from [chi_rhs].  An unflagged chi is a
    *speculative weak update* that speculative optimizations may ignore. *)
type chi = {
  mutable chi_lhs : int;
  mutable chi_rhs : int;
  chi_var : int;
  mutable chi_spec : bool;
}

(** Speculation marks attached to statements by the CodeMotion step.
    [Madv] becomes an advanced load (ld.a), [Mchk] a check load (ld.c),
    [Mcspec] marks a control-speculatively inserted computation (ld.s), and
    [Msa] a combined control+data speculative advanced load (ld.sa). *)
type spec_mark = Mnone | Madv | Mchk | Mcspec | Msa

type call_info = {
  callee : string;
  args : expr list;
  ret : int option;
  csite : int;
}

type stmt_kind =
  | Stid of int * expr                    (** x = e *)
  | Istr of Types.ty * expr * expr * int  (** *(addr) = value, at site *)
  | Call of call_info
  | Snop

(** Deoptimization descriptor attached to a check statement: on check
    failure the engine may transfer to the *unoptimized* function body at
    statement [dp_target] (a lowering-era statement id, which survives
    optimization unchanged), carrying the values of the lowering-era
    register-resident variables [dp_vars] read out of the optimized
    frame.  Built by {!Spec_safety.Deopt.attach} after the optimization
    rounds; cleared again for any function a later sub-pass transforms in
    a way that breaks the state mapping. *)
type deopt = {
  dp_target : int;
  dp_vars : int list;
}

type stmt = {
  sid : int;
  mutable kind : stmt_kind;
  mutable mus : mu list;
  mutable chis : chi list;
  mutable mark : spec_mark;
  mutable check_of : int;
      (** for [Mchk] statements: the statement id of the weak update this
          check guards, [-1] otherwise *)
  mutable deopt : deopt option;
      (** for [Mchk] statements: recovery descriptor, if one could be
          soundly constructed *)
}

type phi = {
  phi_var : int;                    (** original variable *)
  mutable phi_lhs : int;            (** defined SSA version *)
  mutable phi_args : int array;     (** one version per predecessor *)
  mutable phi_live : bool;
}

type term =
  | Tgoto of int
  | Tcond of expr * int * int   (** condition, then-target, else-target *)
  | Tret of expr option

type bb = {
  bid : int;
  mutable phis : phi list;
  mutable stmts : stmt list;
  mutable term : term;
  mutable preds : int list;     (** maintained by {!recompute_preds} *)
  mutable freq : float;         (** execution frequency from edge profile *)
}

type func = {
  fname : string;
  fret : Types.ty;
  fformals : int list;
  fblocks : bb Vec.t;           (** indexed by block id *)
  mutable flocals : int list;
}

let entry_bid = 0

(** Static memory-reference and call sites, the units the alias profiler
    keys its measurements on. *)
type site_kind = Kiload | Kistore | Kcall

type site_info = {
  si_id : int;
  si_kind : site_kind;
  si_func : string;
  si_line : int;
}

type prog = {
  syms : Symtab.t;
  mutable globals : int list;
  funcs : (string, func) Hashtbl.t;
  mutable func_order : string list;
  sites : (int, site_info) Hashtbl.t;
  mutable next_site : int;
  mutable next_stmt : int;
  mutable next_label : int;
}

let create_prog () =
  { syms = Symtab.create (); globals = []; funcs = Hashtbl.create 16;
    func_order = []; sites = Hashtbl.create 64; next_site = 0;
    next_stmt = 0; next_label = 0 }

let new_site ?(func = "?") ?(line = 0) ?(kind = Kiload) p =
  let s = p.next_site in
  p.next_site <- s + 1;
  Hashtbl.replace p.sites s
    { si_id = s; si_kind = kind; si_func = func; si_line = line };
  s

let site_info p s = Hashtbl.find_opt p.sites s

let new_stmt p kind =
  let sid = p.next_stmt in
  p.next_stmt <- sid + 1;
  { sid; kind; mus = []; chis = []; mark = Mnone; check_of = -1;
    deopt = None }

let dummy_bb =
  { bid = -1; phis = []; stmts = []; term = Tret None; preds = []; freq = 0. }

let new_bb f =
  let bid = Vec.length f.fblocks in
  let b = { bid; phis = []; stmts = []; term = Tret None; preds = [];
            freq = 0. } in
  Vec.push f.fblocks b;
  b

let block f bid = Vec.get f.fblocks bid
let n_blocks f = Vec.length f.fblocks

let create_func p ~name ~ret ~formals =
  let f = { fname = name; fret = ret; fformals = formals;
            fblocks = Vec.create dummy_bb; flocals = [] } in
  ignore (new_bb f : bb);                      (* entry block, id 0 *)
  Hashtbl.replace p.funcs name f;
  p.func_order <- p.func_order @ [ name ];
  f

let find_func p name =
  match Hashtbl.find_opt p.funcs name with
  | Some f -> f
  | None -> invalid_arg ("Sir.find_func: no function " ^ name)

let iter_funcs f p =
  List.iter (fun name -> f (Hashtbl.find p.funcs name)) p.func_order

let succs_of_term = function
  | Tgoto b -> [ b ]
  | Tcond (_, t, e) -> if t = e then [ t ] else [ t; e ]
  | Tret _ -> []

let succs b = succs_of_term b.term

let recompute_preds f =
  Vec.iter (fun b -> b.preds <- []) f.fblocks;
  Vec.iter
    (fun b ->
      List.iter
        (fun s -> let sb = block f s in sb.preds <- sb.preds @ [ b.bid ])
        (succs b))
    f.fblocks

(* ------------------------------------------------------------------ *)
(* Expression utilities                                               *)
(* ------------------------------------------------------------------ *)

let expr_ty syms = function
  | Const (Cint _) -> Types.Tint
  | Const (Cflt _) -> Types.Tflt
  | Lod v -> Symtab.ty syms v
  | Ilod (t, _, _) -> t
  | Lda v -> Types.Tptr (Symtab.var syms v).Symtab.velt
  | Unop (_, t, _) -> t
  | Binop (_, t, _, _) -> t

(** Iterate over every variable use in an expression (not addresses taken). *)
let rec iter_expr_uses f = function
  | Const _ | Lda _ -> ()
  | Lod v -> f v
  | Ilod (_, a, _) -> iter_expr_uses f a
  | Unop (_, _, e) -> iter_expr_uses f e
  | Binop (_, _, a, b) -> iter_expr_uses f a; iter_expr_uses f b

let rec map_expr_uses f = function
  | (Const _ | Lda _) as e -> e
  | Lod v -> Lod (f v)
  | Ilod (t, a, s) -> Ilod (t, map_expr_uses f a, s)
  | Unop (o, t, e) -> Unop (o, t, map_expr_uses f e)
  | Binop (o, t, a, b) -> Binop (o, t, map_expr_uses f a, map_expr_uses f b)

let rec iter_subexprs f e =
  f e;
  match e with
  | Const _ | Lod _ | Lda _ -> ()
  | Ilod (_, a, _) -> iter_subexprs f a
  | Unop (_, _, x) -> iter_subexprs f x
  | Binop (_, _, a, b) -> iter_subexprs f a; iter_subexprs f b

(** All expressions directly contained in a statement kind. *)
let stmt_exprs = function
  | Stid (_, e) -> [ e ]
  | Istr (_, a, v, _) -> [ a; v ]
  | Call c -> c.args
  | Snop -> []

let term_exprs = function
  | Tcond (e, _, _) -> [ e ]
  | Tret (Some e) -> [ e ]
  | Tgoto _ | Tret None -> []

(** Variable directly defined by a statement, if any (not chi defs). *)
let stmt_def = function
  | Stid (v, _) -> Some v
  | Call { ret; _ } -> ret
  | Istr _ | Snop -> None

let map_stmt_exprs f = function
  | Stid (v, e) -> Stid (v, f e)
  | Istr (t, a, v, s) -> Istr (t, f a, f v, s)
  | Call c -> Call { c with args = List.map f c.args }
  | Snop -> Snop

let map_term_exprs f = function
  | Tcond (e, a, b) -> Tcond (f e, a, b)
  | Tret (Some e) -> Tret (Some (f e))
  | (Tgoto _ | Tret None) as t -> t

(** Indirect-reference sites contained in an expression. *)
let expr_sites e =
  let acc = ref [] in
  iter_subexprs (function Ilod (_, _, s) -> acc := s :: !acc | _ -> ()) e;
  !acc

let rec expr_equal a b =
  match a, b with
  | Const x, Const y -> x = y
  | Lod x, Lod y | Lda x, Lda y -> x = y
  | Ilod (t1, a1, _), Ilod (t2, a2, _) -> t1 = t2 && expr_equal a1 a2
  | Unop (o1, t1, e1), Unop (o2, t2, e2) ->
    o1 = o2 && t1 = t2 && expr_equal e1 e2
  | Binop (o1, t1, a1, b1), Binop (o2, t2, a2, b2) ->
    o1 = o2 && t1 = t2 && expr_equal a1 a2 && expr_equal b1 b2
  | (Const _ | Lod _ | Lda _ | Ilod _ | Unop _ | Binop _), _ -> false

(* ------------------------------------------------------------------ *)
(* Builtin functions                                                  *)
(* ------------------------------------------------------------------ *)

let builtins = [ "malloc"; "print_int"; "print_flt"; "seed"; "rnd" ]
let is_builtin name = List.mem name builtins
