(** Pretty-printing of SIR programs, including HSSA annotations
    (phi nodes, mu/chi lists, speculation flags and marks). *)

open Sir

let pp_const fmt = function
  | Cint i -> Fmt.int fmt i
  | Cflt f -> Fmt.pf fmt "%g" f

let binop_str = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Rem -> "%"
  | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">=" | Eq -> "==" | Ne -> "!="
  | Band -> "&" | Bor -> "|" | Bxor -> "^" | Shl -> "<<" | Shr -> ">>"

let unop_str = function
  | Neg -> "-" | Lnot -> "!" | I2f -> "(float)" | F2i -> "(int)"

let pp_var syms fmt v = Fmt.string fmt (Symtab.name syms v)

let rec pp_expr syms fmt = function
  | Const c -> pp_const fmt c
  | Lod v -> pp_var syms fmt v
  | Ilod (t, a, s) -> Fmt.pf fmt "*{%a@@%d}(%a)" Types.pp t s (pp_expr syms) a
  | Lda v -> Fmt.pf fmt "&%a" (pp_var syms) v
  | Unop (o, _, e) -> Fmt.pf fmt "%s(%a)" (unop_str o) (pp_expr syms) e
  | Binop (o, _, a, b) ->
    Fmt.pf fmt "(%a %s %a)" (pp_expr syms) a (binop_str o) (pp_expr syms) b

let pp_mu syms fmt m =
  Fmt.pf fmt "mu%s(%a)" (if m.mu_spec then "s" else "") (pp_var syms) m.mu_opnd

let pp_chi syms fmt c =
  Fmt.pf fmt "%a <- chi%s(%a)" (pp_var syms) c.chi_lhs
    (if c.chi_spec then "s" else "") (pp_var syms) c.chi_rhs

let mark_str = function
  | Mnone -> ""
  | Madv -> " [ld.a]"
  | Mchk -> " [ld.c]"
  | Mcspec -> " [ld.s]"
  | Msa -> " [ld.sa]"

let pp_stmt syms fmt s =
  let pp_lists fmt () =
    if s.mark = Mchk && s.check_of >= 0 then
      Fmt.pf fmt " (covers s%d)" s.check_of;
    (match s.deopt with
     | None -> ()
     | Some d ->
       Fmt.pf fmt " (deopt s%d [%a])" d.dp_target
         (Fmt.list ~sep:Fmt.sp Fmt.int) d.dp_vars);
    if s.mus <> [] then
      Fmt.pf fmt "  {%a}" (Fmt.list ~sep:Fmt.comma (pp_mu syms)) s.mus;
    if s.chis <> [] then
      Fmt.pf fmt "  {%a}" (Fmt.list ~sep:Fmt.comma (pp_chi syms)) s.chis
  in
  (match s.kind with
   | Stid (v, e) ->
     Fmt.pf fmt "%a = %a%s" (pp_var syms) v (pp_expr syms) e (mark_str s.mark)
   | Istr (t, a, v, site) ->
     Fmt.pf fmt "*{%a@@%d}(%a) = %a" Types.pp t site (pp_expr syms) a
       (pp_expr syms) v
   | Call { callee; args; ret; _ } ->
     (match ret with
      | Some r -> Fmt.pf fmt "%a = " (pp_var syms) r
      | None -> ());
     Fmt.pf fmt "%s(%a)" callee
       (Fmt.list ~sep:Fmt.comma (pp_expr syms)) args
   | Snop -> Fmt.string fmt "nop");
  pp_lists fmt ()

let pp_phi syms fmt p =
  Fmt.pf fmt "%a = phi(%a)%s" (pp_var syms) p.phi_lhs
    (Fmt.array ~sep:Fmt.comma (pp_var syms)) p.phi_args
    (if p.phi_live then "" else " [dead]")

let pp_term syms fmt = function
  | Tgoto b -> Fmt.pf fmt "goto B%d" b
  | Tcond (e, t, e') -> Fmt.pf fmt "if %a then B%d else B%d" (pp_expr syms) e t e'
  | Tret None -> Fmt.string fmt "ret"
  | Tret (Some e) -> Fmt.pf fmt "ret %a" (pp_expr syms) e

let pp_bb syms fmt b =
  Fmt.pf fmt "@[<v2>B%d:  (preds %a, freq %.0f)@ " b.bid
    (Fmt.list ~sep:Fmt.comma Fmt.int) b.preds b.freq;
  List.iter (fun p -> Fmt.pf fmt "%a@ " (pp_phi syms) p) b.phis;
  List.iter
    (fun s ->
      match s.kind with
      | Snop when s.chis = [] && s.mus = [] -> ()
      | _ -> Fmt.pf fmt "%a@ " (pp_stmt syms) s)
    b.stmts;
  Fmt.pf fmt "%a@]" (pp_term syms) b.term

let pp_func syms fmt f =
  Fmt.pf fmt "@[<v>func %s(%a) : %a {@ " f.fname
    (Fmt.list ~sep:Fmt.comma (pp_var syms)) f.fformals Types.pp f.fret;
  Vec.iter (fun b -> Fmt.pf fmt "%a@ " (pp_bb syms) b) f.fblocks;
  Fmt.pf fmt "}@]"

let pp_prog fmt p =
  List.iter
    (fun g ->
      let v = Symtab.var p.syms g in
      Fmt.pf fmt "global %s%a %s[%d]@."
        (if v.Symtab.vsecret then "secret " else "")
        Types.pp v.Symtab.vty v.Symtab.vname v.Symtab.vsize)
    p.globals;
  iter_funcs (fun f -> Fmt.pf fmt "%a@.@." (pp_func p.syms) f) p

let func_to_string syms f = Fmt.str "%a" (pp_func syms) f
let prog_to_string p = Fmt.str "%a" pp_prog p
let expr_to_string syms e = Fmt.str "%a" (pp_expr syms) e
let stmt_to_string syms s = Fmt.str "%a" (pp_stmt syms) s
