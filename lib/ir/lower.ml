(** Typed lowering from the mini-C AST to SIR.

    This pass performs type checking (with numeric coercions and scaled
    pointer arithmetic) while building the control-flow graph.  Array
    variables decay to their address; address-taken locals are flagged in
    the symbol table so later phases treat them as memory resident. *)

open Ast

type fsig = { sig_ret : Types.ty; sig_formals : Types.ty list }

type env = {
  prog : Sir.prog;
  fsigs : (string, fsig) Hashtbl.t;
  mutable scopes : (string * int) list list;  (* innermost first *)
  mutable func : Sir.func;
  mutable cur : Sir.bb;                        (* block under construction *)
  mutable breaks : int list;                   (* target stack *)
  mutable continues : int list;
}

let builtin_sigs =
  [ "malloc", { sig_ret = Types.Tptr Types.Tint; sig_formals = [ Types.Tint ] };
    "print_int", { sig_ret = Types.Tvoid; sig_formals = [ Types.Tint ] };
    "print_flt", { sig_ret = Types.Tvoid; sig_formals = [ Types.Tflt ] };
    "seed", { sig_ret = Types.Tvoid; sig_formals = [ Types.Tint ] };
    "rnd", { sig_ret = Types.Tint; sig_formals = [ Types.Tint ] } ]

let lookup_var env pos name =
  let rec go = function
    | [] -> error pos "undefined variable %s" name
    | scope :: rest ->
      (match List.assoc_opt name scope with
       | Some id -> id
       | None -> go rest)
  in
  go env.scopes

let bind_var env name id =
  match env.scopes with
  | scope :: rest -> env.scopes <- ((name, id) :: scope) :: rest
  | [] -> assert false

let push_scope env = env.scopes <- [] :: env.scopes
let pop_scope env =
  match env.scopes with
  | _ :: rest -> env.scopes <- rest
  | [] -> assert false

let emit env kind =
  let s = Sir.new_stmt env.prog kind in
  env.cur.Sir.stmts <- env.cur.Sir.stmts @ [ s ]

let start_block env =
  let b = Sir.new_bb env.func in
  env.cur <- b;
  b

(* ---- expression lowering ---- *)

(** Coerce expression [e] of type [from_] to type [to_]. *)
let coerce pos (e, from_) to_ =
  let open Types in
  match from_, to_ with
  | a, b when Types.equal a b -> e
  | Tint, Tflt -> Sir.Unop (Sir.I2f, Tflt, e)
  | Tflt, Tint -> Sir.Unop (Sir.F2i, Tint, e)
  | Tptr _, Tptr _ | Tptr _, Tint | Tint, Tptr _ -> e  (* re-typing only *)
  | _ ->
    error pos "cannot convert %s to %s"
      (Types.to_string from_) (Types.to_string to_)

let scale_index e =
  match e with
  | Sir.Const (Sir.Cint i) -> Sir.Const (Sir.Cint (i * Types.cell_size))
  | _ ->
    Sir.Binop (Sir.Mul, Types.Tint, e, Sir.Const (Sir.Cint Types.cell_size))

let is_array syms id = (Symtab.var syms id).Symtab.varray

let rec lower_expr env (e : Ast.expr) : Sir.expr * Types.ty =
  let syms = env.prog.Sir.syms in
  match e with
  | Eint (_, i) -> Sir.Const (Sir.Cint i), Types.Tint
  | Eflt (_, f) -> Sir.Const (Sir.Cflt f), Types.Tflt
  | Evar (pos, name) ->
    let id = lookup_var env pos name in
    if is_array syms id then
      (* array decays to its address *)
      Sir.Lda id, Types.Tptr (Symtab.var syms id).Symtab.velt
    else Sir.Lod id, Symtab.ty syms id
  | Eun (pos, "*", inner) ->
    let a, ta = lower_expr env inner in
    if not (Types.is_ptr ta) then
      error pos "dereference of non-pointer (%s)" (Types.to_string ta);
    let elt = Types.deref ta in
    let fn = env.func.Sir.fname in
    let site = Sir.new_site ~func:fn ~line:pos ~kind:Sir.Kiload env.prog in
    Sir.Ilod (elt, a, site), elt
  | Eun (pos, "&", inner) -> lower_addr env pos inner
  | Eun (pos, "-", inner) ->
    let e', t = lower_expr env inner in
    (match t with
     | Types.Tint -> Sir.Unop (Sir.Neg, Types.Tint, e'), Types.Tint
     | Types.Tflt -> Sir.Unop (Sir.Neg, Types.Tflt, e'), Types.Tflt
     | _ -> error pos "cannot negate %s" (Types.to_string t))
  | Eun (pos, "!", inner) ->
    let e', t = lower_expr env inner in
    let e' = coerce pos (e', t) Types.Tint in
    Sir.Unop (Sir.Lnot, Types.Tint, e'), Types.Tint
  | Eun (pos, op, _) -> error pos "unknown unary operator %s" op
  | Eidx (pos, base, idx) ->
    let addr, elt = lower_index_addr env pos base idx in
    let fn = env.func.Sir.fname in
    let site = Sir.new_site ~func:fn ~line:pos ~kind:Sir.Kiload env.prog in
    Sir.Ilod (elt, addr, site), elt
  | Ebin (pos, op, a, b) -> lower_binop env pos op a b
  | Ecall (pos, name, args) ->
    (* calls in expression position: only builtins with results (rnd) or
       user functions — materialize through a temp *)
    let ret_ty, stmt_ret = lower_call env pos name args in
    (match stmt_ret with
     | Some tmp -> Sir.Lod tmp, ret_ty
     | None -> error pos "void call %s used as a value" name)
  | Ecast (pos, t, inner) ->
    let e', from_ = lower_expr env inner in
    let to_ = Ast.to_ir_ty t in
    coerce pos (e', from_) to_, to_

and lower_index_addr env pos base idx =
  let b, tb = lower_expr env base in
  if not (Types.is_ptr tb) then
    error pos "indexing a non-pointer (%s)" (Types.to_string tb);
  let elt = Types.deref tb in
  let i, ti = lower_expr env idx in
  let i = coerce pos (i, ti) Types.Tint in
  Sir.Binop (Sir.Add, tb, b, scale_index i), elt

and lower_addr env pos (e : Ast.expr) : Sir.expr * Types.ty =
  let syms = env.prog.Sir.syms in
  match e with
  | Evar (p, name) ->
    let id = lookup_var env p name in
    Symtab.set_addr_taken syms id;
    let v = Symtab.var syms id in
    Sir.Lda id, Types.Tptr v.Symtab.velt
  | Eidx (p, base, idx) ->
    let addr, elt = lower_index_addr env p base idx in
    addr, Types.Tptr elt
  | Eun (_, "*", inner) ->
    let a, ta = lower_expr env inner in
    if not (Types.is_ptr ta) then
      error pos "dereference of non-pointer in address expression";
    a, ta
  | _ -> error pos "cannot take address of this expression"

and lower_binop env pos op a b =
  let ea, ta = lower_expr env a in
  let eb, tb = lower_expr env b in
  let open Types in
  let arith sop =
    match ta, tb with
    | Tflt, _ | _, Tflt ->
      let ea = coerce pos (ea, ta) Tflt and eb = coerce pos (eb, tb) Tflt in
      Sir.Binop (sop, Tflt, ea, eb), Tflt
    | Tptr _, Tint when sop = Sir.Add || sop = Sir.Sub ->
      Sir.Binop (sop, ta, ea, scale_index eb), ta
    | Tint, Tptr _ when sop = Sir.Add ->
      Sir.Binop (sop, tb, eb, scale_index ea), tb
    | _ ->
      let ea = coerce pos (ea, ta) Tint and eb = coerce pos (eb, tb) Tint in
      Sir.Binop (sop, Tint, ea, eb), Tint
  in
  let compare sop =
    match ta, tb with
    | Tflt, _ | _, Tflt ->
      let ea = coerce pos (ea, ta) Tflt and eb = coerce pos (eb, tb) Tflt in
      Sir.Binop (sop, Tint, ea, eb), Tint
    | _ -> Sir.Binop (sop, Tint, ea, eb), Tint
  in
  let logical sop =
    (* strict (non-short-circuit) logical operators over 0/1 ints *)
    let norm e t =
      let e = coerce pos (e, t) Tint in
      Sir.Binop (Sir.Ne, Tint, e, Sir.Const (Sir.Cint 0))
    in
    Sir.Binop (sop, Tint, norm ea ta, norm eb tb), Tint
  in
  match op with
  | "+" -> arith Sir.Add
  | "-" -> arith Sir.Sub
  | "*" -> arith Sir.Mul
  | "/" -> arith Sir.Div
  | "%" -> arith Sir.Rem
  | "<" -> compare Sir.Lt
  | "<=" -> compare Sir.Le
  | ">" -> compare Sir.Gt
  | ">=" -> compare Sir.Ge
  | "==" -> compare Sir.Eq
  | "!=" -> compare Sir.Ne
  | "&" -> arith Sir.Band
  | "|" -> arith Sir.Bor
  | "^" -> arith Sir.Bxor
  | "<<" -> arith Sir.Shl
  | ">>" -> arith Sir.Shr
  | "&&" -> logical Sir.Band
  | "||" -> logical Sir.Bor
  | _ -> error pos "unknown binary operator %s" op

(** Lower a call; returns its type and, for non-void calls, the temp
    holding the result. *)
and lower_call env pos name args =
  let fsig =
    match Hashtbl.find_opt env.fsigs name with
    | Some s -> s
    | None ->
      (match List.assoc_opt name builtin_sigs with
       | Some s -> s
       | None -> error pos "undefined function %s" name)
  in
  if List.length args <> List.length fsig.sig_formals then
    error pos "%s expects %d argument(s), got %d" name
      (List.length fsig.sig_formals) (List.length args);
  let lowered =
    List.map2
      (fun a ft -> coerce pos (lower_expr env a) ft)
      args fsig.sig_formals
  in
  let ret =
    if Types.equal fsig.sig_ret Types.Tvoid then None
    else begin
      let tmp =
        Symtab.add env.prog.Sir.syms
          ~name:(Printf.sprintf "%s_r%d" name (Symtab.count env.prog.Sir.syms))
          ~ty:fsig.sig_ret ~storage:Symtab.Stemp
          ~func:(Some env.func.Sir.fname) ()
      in
      env.func.Sir.flocals <- tmp.Symtab.vid :: env.func.Sir.flocals;
      Some tmp.Symtab.vid
    end
  in
  let fn = env.func.Sir.fname in
  let csite = Sir.new_site ~func:fn ~line:pos ~kind:Sir.Kcall env.prog in
  emit env (Sir.Call { callee = name; args = lowered; ret; csite });
  fsig.sig_ret, ret

(* ---- statement lowering ---- *)

let rec lower_stmt env (s : Ast.stmt) : unit =
  let syms = env.prog.Sir.syms in
  match s with
  | Sblock body ->
    push_scope env;
    List.iter (lower_stmt env) body;
    pop_scope env
  | Sdecl (pos, t, name, size, init) ->
    let ty = Ast.to_ir_ty t in
    let v =
      match size with
      | None ->
        Symtab.add syms ~name ~ty ~storage:Symtab.Slocal
          ~func:(Some env.func.Sir.fname) ()
      | Some n ->
        if n <= 0 then error pos "array size must be positive";
        Symtab.add syms ~name ~ty:(Types.Tptr ty)
          ~storage:Symtab.Slocal ~func:(Some env.func.Sir.fname)
          ~size:(n * Types.cell_size) ~elt:ty ~is_array:true ()
    in
    env.func.Sir.flocals <- v.Symtab.vid :: env.func.Sir.flocals;
    bind_var env name v.Symtab.vid;
    (match init with
     | None -> ()
     | Some e ->
       if size <> None then error pos "array initializers are not supported";
       let rhs = coerce pos (lower_expr env e) ty in
       emit env (Sir.Stid (v.Symtab.vid, rhs)))
  | Sassign (pos, lhs, rhs) -> lower_assign env pos lhs rhs
  | Sexpr (pos, e) ->
    (match e with
     | Ecall (p, name, args) -> ignore (lower_call env p name args)
     | _ ->
       (* evaluate for effect; side-effect-free expressions are dropped *)
       ignore (lower_expr env e);
       ignore pos)
  | Sreturn (pos, e) ->
    let ret_e =
      match e, env.func.Sir.fret with
      | None, Types.Tvoid -> None
      | None, t ->
        error pos "missing return value (function returns %s)"
          (Types.to_string t)
      | Some _, Types.Tvoid -> error pos "void function returns a value"
      | Some e, t -> Some (coerce pos (lower_expr env e) t)
    in
    env.cur.Sir.term <- Sir.Tret ret_e;
    ignore (start_block env)  (* unreachable continuation *)
  | Sif (pos, cond, th, el) ->
    let c = coerce pos (lower_expr env cond) Types.Tint in
    let cond_bb = env.cur in
    let then_bb = start_block env in
    lower_stmt env th;
    let then_end = env.cur in
    let else_bb, else_end =
      match el with
      | None -> None, None
      | Some s ->
        let b = start_block env in
        lower_stmt env s;
        Some b, Some env.cur
    in
    let join = start_block env in
    (match else_bb with
     | None ->
       cond_bb.Sir.term <- Sir.Tcond (c, then_bb.Sir.bid, join.Sir.bid)
     | Some eb ->
       cond_bb.Sir.term <- Sir.Tcond (c, then_bb.Sir.bid, eb.Sir.bid));
    then_end.Sir.term <- Sir.Tgoto join.Sir.bid;
    (match else_end with
     | Some ee -> ee.Sir.term <- Sir.Tgoto join.Sir.bid
     | None -> ())
  | Swhile (pos, cond, body) ->
    let before = env.cur in
    let head = start_block env in
    before.Sir.term <- Sir.Tgoto head.Sir.bid;
    let c = coerce pos (lower_expr env cond) Types.Tint in
    let cond_end = env.cur in
    let body_bb = start_block env in
    (* exit target allocated after body so ids stay compact *)
    env.breaks <- (-1) :: env.breaks;          (* patched below *)
    env.continues <- head.Sir.bid :: env.continues;
    let fixup_breaks = ref [] in
    lower_loop_body env body fixup_breaks;
    let body_end = env.cur in
    env.breaks <- List.tl env.breaks;
    env.continues <- List.tl env.continues;
    let exit_bb = start_block env in
    cond_end.Sir.term <- Sir.Tcond (c, body_bb.Sir.bid, exit_bb.Sir.bid);
    body_end.Sir.term <- Sir.Tgoto head.Sir.bid;
    List.iter (fun b -> b.Sir.term <- Sir.Tgoto exit_bb.Sir.bid) !fixup_breaks
  | Sfor (pos, init, cond, step, body) ->
    (match init with Some s -> lower_stmt env s | None -> ());
    let before = env.cur in
    let head = start_block env in
    before.Sir.term <- Sir.Tgoto head.Sir.bid;
    let c =
      match cond with
      | Some e -> coerce pos (lower_expr env e) Types.Tint
      | None -> Sir.Const (Sir.Cint 1)
    in
    let cond_end = env.cur in
    let body_bb = start_block env in
    let fixup_breaks = ref [] in
    (* continue in a for loop jumps to the step block *)
    let step_bb_id = ref (-1) in
    env.continues <- (-2) :: env.continues;  (* -2 = "pending step block" *)
    let fixup_continues = ref [] in
    lower_for_body env body fixup_breaks fixup_continues;
    let body_end = env.cur in
    env.continues <- List.tl env.continues;
    let step_bb = start_block env in
    step_bb_id := step_bb.Sir.bid;
    (match step with Some s -> lower_stmt env s | None -> ());
    let step_end = env.cur in
    let exit_bb = start_block env in
    cond_end.Sir.term <- Sir.Tcond (c, body_bb.Sir.bid, exit_bb.Sir.bid);
    body_end.Sir.term <- Sir.Tgoto step_bb.Sir.bid;
    step_end.Sir.term <- Sir.Tgoto head.Sir.bid;
    List.iter (fun b -> b.Sir.term <- Sir.Tgoto exit_bb.Sir.bid) !fixup_breaks;
    List.iter
      (fun b -> b.Sir.term <- Sir.Tgoto step_bb.Sir.bid)
      !fixup_continues
  | Sbreak pos ->
    if env.breaks = [] && env.continues = [] then error pos "break outside loop";
    record_jump env `Break
  | Scontinue pos ->
    if env.continues = [] then error pos "continue outside loop";
    record_jump env `Continue

(* break/continue support: since loop exit blocks are allocated after the
   body is lowered, jumps are recorded and patched by the loop lowerer.
   The current pending lists live in mutable refs threaded via
   [lower_loop_body]/[lower_for_body]. *)
and pending_breaks : Sir.bb list ref ref = ref (ref [])
and pending_continues : Sir.bb list ref ref = ref (ref [])

and record_jump env which =
  let b = env.cur in
  (match which with
   | `Break -> !pending_breaks := b :: !(!pending_breaks)
   | `Continue ->
     (match env.continues with
      | target :: _ when target >= 0 -> b.Sir.term <- Sir.Tgoto target
      | _ -> !pending_continues := b :: !(!pending_continues)));
  ignore (start_block env)

and lower_loop_body env body fixup_breaks =
  let saved_b = !pending_breaks and saved_c = !pending_continues in
  pending_breaks := fixup_breaks;
  lower_stmt env body;
  pending_breaks := saved_b;
  pending_continues := saved_c

and lower_for_body env body fixup_breaks fixup_continues =
  let saved_b = !pending_breaks and saved_c = !pending_continues in
  pending_breaks := fixup_breaks;
  pending_continues := fixup_continues;
  lower_stmt env body;
  pending_breaks := saved_b;
  pending_continues := saved_c

and lower_assign env pos lhs rhs =
  let syms = env.prog.Sir.syms in
  match lhs with
  | Evar (p, name) ->
    let id = lookup_var env p name in
    if is_array syms id then error p "cannot assign to an array";
    let ty = Symtab.ty syms id in
    let e = coerce pos (lower_expr env rhs) ty in
    emit env (Sir.Stid (id, e))
  | Eun (p, "*", inner) ->
    let a, ta = lower_expr env inner in
    if not (Types.is_ptr ta) then error p "store through non-pointer";
    let elt = Types.deref ta in
    let e = coerce pos (lower_expr env rhs) elt in
    let fn = env.func.Sir.fname in
    let site = Sir.new_site ~func:fn ~line:p ~kind:Sir.Kistore env.prog in
    emit env (Sir.Istr (elt, a, e, site))
  | Eidx (p, base, idx) ->
    let addr, elt = lower_index_addr env p base idx in
    let e = coerce pos (lower_expr env rhs) elt in
    let fn = env.func.Sir.fname in
    let site = Sir.new_site ~func:fn ~line:p ~kind:Sir.Kistore env.prog in
    emit env (Sir.Istr (elt, addr, e, site))
  | _ -> error pos "invalid assignment target"

(* ---- unreachable-block pruning ---- *)

(** Drop blocks unreachable from the entry, remapping block ids. *)
let prune_unreachable (f : Sir.func) =
  let n = Sir.n_blocks f in
  let reachable = Array.make n false in
  let rec dfs b =
    if not reachable.(b) then begin
      reachable.(b) <- true;
      List.iter dfs (Sir.succs (Sir.block f b))
    end
  in
  dfs Sir.entry_bid;
  let remap = Array.make n (-1) in
  let kept = ref [] in
  let next = ref 0 in
  for b = 0 to n - 1 do
    if reachable.(b) then begin
      remap.(b) <- !next;
      incr next;
      kept := Sir.block f b :: !kept
    end
  done;
  let kept = List.rev !kept in
  let remap_term = function
    | Sir.Tgoto b -> Sir.Tgoto remap.(b)
    | Sir.Tcond (e, t, e') -> Sir.Tcond (e, remap.(t), remap.(e'))
    | Sir.Tret _ as t -> t
  in
  (* rebuild the block table in place *)
  let blocks =
    List.map
      (fun (b : Sir.bb) ->
        { b with Sir.bid = remap.(b.Sir.bid); Sir.term = remap_term b.Sir.term })
      kept
  in
  f.Sir.fblocks.Vec.len <- 0;
  List.iter (Vec.push f.Sir.fblocks) blocks;
  Sir.recompute_preds f

(* ---- top level ---- *)

let lower (ast : Ast.program) : Sir.prog =
  let prog = Sir.create_prog () in
  let syms = prog.Sir.syms in
  let fsigs = Hashtbl.create 16 in
  let globals_scope = ref [] in
  (* pass 1: globals and signatures *)
  List.iter
    (function
      | Dglobal (pos, t, name, size, secret) ->
        if List.mem_assoc name !globals_scope then
          error pos "duplicate global %s" name;
        let ty = Ast.to_ir_ty t in
        let v =
          match size with
          | None ->
            Symtab.add syms ~name ~ty ~storage:Symtab.Sglobal ~func:None
              ~secret ()
          | Some n ->
            if n <= 0 then error pos "array size must be positive";
            Symtab.add syms ~name ~ty:(Types.Tptr ty) ~storage:Symtab.Sglobal
              ~func:None ~size:(n * Types.cell_size) ~elt:ty ~is_array:true
              ~secret ()
        in
        prog.Sir.globals <- prog.Sir.globals @ [ v.Symtab.vid ];
        globals_scope := (name, v.Symtab.vid) :: !globals_scope
      | Dfunc (pos, ret, name, formals, _) ->
        if Hashtbl.mem fsigs name || Sir.is_builtin name then
          error pos "duplicate function %s" name;
        Hashtbl.replace fsigs name
          { sig_ret =
              (match ret with Some t -> Ast.to_ir_ty t | None -> Types.Tvoid);
            sig_formals = List.map (fun (t, _, _) -> Ast.to_ir_ty t) formals })
    ast;
  (* pass 2: function bodies *)
  List.iter
    (function
      | Dglobal _ -> ()
      | Dfunc (_, ret, name, formals, body) ->
        let fret =
          match ret with Some t -> Ast.to_ir_ty t | None -> Types.Tvoid
        in
        let formal_vars =
          List.map
            (fun (t, n, secret) ->
              Symtab.add syms ~name:n ~ty:(Ast.to_ir_ty t)
                ~storage:Symtab.Sformal ~func:(Some name) ~secret ())
            formals
        in
        let f =
          Sir.create_func prog ~name ~ret:fret
            ~formals:(List.map (fun v -> v.Symtab.vid) formal_vars)
        in
        let env =
          { prog; fsigs; scopes = []; func = f;
            cur = Sir.block f Sir.entry_bid; breaks = []; continues = [] }
        in
        env.scopes <- [ !globals_scope ];
        push_scope env;
        List.iter2
          (fun (_, n, _) v -> bind_var env n v.Symtab.vid)
          formals formal_vars;
        push_scope env;
        List.iter (lower_stmt env) body;
        (* implicit return at fall-through *)
        (match env.cur.Sir.term, fret with
         | Sir.Tret _, _ -> ()
         | _, Types.Tvoid -> env.cur.Sir.term <- Sir.Tret None
         | _, Types.Tflt ->
           env.cur.Sir.term <- Sir.Tret (Some (Sir.Const (Sir.Cflt 0.)))
         | _, _ -> env.cur.Sir.term <- Sir.Tret (Some (Sir.Const (Sir.Cint 0))));
        prune_unreachable f)
    ast;
  prog

(** Parse and lower a source string. *)
let compile (src : string) : Sir.prog = lower (Parser.parse src)
