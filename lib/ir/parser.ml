(** Recursive-descent parser for the mini-C frontend.

    Menhir is not available in this environment, and the grammar is small
    enough that a hand-written parser with explicit precedence climbing is
    the simpler, idiomatic choice. *)

open Ast

type state = { toks : Lexer.lexeme array; mutable pos : int }

let cur st = st.toks.(st.pos)
let line st = (cur st).Lexer.line
let advance st = st.pos <- st.pos + 1

let peek_tok st = (cur st).Lexer.tok

let fail st what =
  error (line st) "expected %s, found %s" what
    (Lexer.token_str (peek_tok st))

let eat_punct st p =
  match peek_tok st with
  | Lexer.Tpunct q when q = p -> advance st
  | _ -> fail st (Printf.sprintf "%S" p)

let eat_ident st =
  match peek_tok st with
  | Lexer.Tident s -> advance st; s
  | _ -> fail st "identifier"

let is_punct st p =
  match peek_tok st with Lexer.Tpunct q -> q = p | _ -> false

let is_kw st k = match peek_tok st with Lexer.Tkw q -> q = k | _ -> false

let accept_punct st p = if is_punct st p then (advance st; true) else false

let accept_kw st k = if is_kw st k then (advance st; true) else false

(* ---- types ---- *)

let base_ty st =
  match peek_tok st with
  | Lexer.Tkw "int" -> advance st; Some Aint
  | Lexer.Tkw "float" -> advance st; Some Aflt
  | _ -> None

let rec ptr_suffix st t = if accept_punct st "*" then ptr_suffix st (Aptr t) else t

let starts_type st = is_kw st "int" || is_kw st "float"

let parse_ty st =
  match base_ty st with
  | Some t -> ptr_suffix st t
  | None -> fail st "type"

(* ---- expressions: precedence climbing ---- *)

(* Precedence levels, loosest first. *)
let binop_prec = function
  | "||" -> 1 | "&&" -> 2
  | "|" -> 3 | "^" -> 4 | "&" -> 5
  | "==" | "!=" -> 6
  | "<" | "<=" | ">" | ">=" -> 7
  | "<<" | ">>" -> 8
  | "+" | "-" -> 9
  | "*" | "/" | "%" -> 10
  | _ -> -1

let rec parse_expr st = parse_bin st 1

and parse_bin st min_prec =
  let lhs = ref (parse_unary st) in
  let continue_ = ref true in
  while !continue_ do
    match peek_tok st with
    | Lexer.Tpunct p when binop_prec p >= min_prec ->
      let prec = binop_prec p in
      let ln = line st in
      advance st;
      let rhs = parse_bin st (prec + 1) in
      lhs := Ebin (ln, p, !lhs, rhs)
    | _ -> continue_ := false
  done;
  !lhs

and parse_unary st =
  let ln = line st in
  match peek_tok st with
  | Lexer.Tpunct "-" -> advance st; Eun (ln, "-", parse_unary st)
  | Lexer.Tpunct "!" -> advance st; Eun (ln, "!", parse_unary st)
  | Lexer.Tpunct "*" -> advance st; Eun (ln, "*", parse_unary st)
  | Lexer.Tpunct "&" -> advance st; Eun (ln, "&", parse_unary st)
  | Lexer.Tpunct "(" when starts_type_at st 1 ->
    (* cast: "(" type ")" unary *)
    advance st;
    let t = parse_ty st in
    eat_punct st ")";
    Ecast (ln, t, parse_unary st)
  | _ -> parse_postfix st

and starts_type_at st k =
  match st.toks.(st.pos + k).Lexer.tok with
  | Lexer.Tkw ("int" | "float") -> true
  | _ -> false

and parse_postfix st =
  let e = ref (parse_primary st) in
  let continue_ = ref true in
  while !continue_ do
    let ln = line st in
    if is_punct st "[" then begin
      advance st;
      let i = parse_expr st in
      eat_punct st "]";
      e := Eidx (ln, !e, i)
    end
    else continue_ := false
  done;
  !e

and parse_primary st =
  let ln = line st in
  match peek_tok st with
  | Lexer.Tint_lit i -> advance st; Eint (ln, i)
  | Lexer.Tflt_lit f -> advance st; Eflt (ln, f)
  | Lexer.Tident name ->
    advance st;
    if is_punct st "(" then begin
      advance st;
      let args = parse_args st in
      Ecall (ln, name, args)
    end
    else Evar (ln, name)
  | Lexer.Tpunct "(" ->
    advance st;
    let e = parse_expr st in
    eat_punct st ")";
    e
  | _ -> fail st "expression"

and parse_args st =
  if accept_punct st ")" then []
  else begin
    let rec more acc =
      let e = parse_expr st in
      if accept_punct st "," then more (e :: acc)
      else begin eat_punct st ")"; List.rev (e :: acc) end
    in
    more []
  end

(* ---- statements ---- *)

let desugar_compound ln op lhs rhs =
  (* x op= e  ==>  x = x op e *)
  Sassign (ln, lhs, Ebin (ln, op, lhs, rhs))

let rec parse_stmt st =
  let ln = line st in
  if is_punct st "{" then begin
    advance st;
    let body = parse_stmts st in
    eat_punct st "}";
    Sblock body
  end
  else if is_kw st "if" then begin
    advance st;
    eat_punct st "(";
    let c = parse_expr st in
    eat_punct st ")";
    let th = parse_stmt st in
    let el = if is_kw st "else" then (advance st; Some (parse_stmt st)) else None in
    Sif (ln, c, th, el)
  end
  else if is_kw st "while" then begin
    advance st;
    eat_punct st "(";
    let c = parse_expr st in
    eat_punct st ")";
    Swhile (ln, c, parse_stmt st)
  end
  else if is_kw st "for" then begin
    advance st;
    eat_punct st "(";
    let init =
      if is_punct st ";" then None
      else if starts_type st then begin
        (* declaration in for-init: "type ident = expr" *)
        let ln2 = line st in
        let t = parse_ty st in
        let name = eat_ident st in
        eat_punct st "=";
        Some (Sdecl (ln2, t, name, None, Some (parse_expr st)))
      end
      else Some (parse_simple st)
    in
    eat_punct st ";";
    let cond = if is_punct st ";" then None else Some (parse_expr st) in
    eat_punct st ";";
    let step = if is_punct st ")" then None else Some (parse_simple st) in
    eat_punct st ")";
    Sfor (ln, init, cond, step, parse_stmt st)
  end
  else if is_kw st "return" then begin
    advance st;
    let e = if is_punct st ";" then None else Some (parse_expr st) in
    eat_punct st ";";
    Sreturn (ln, e)
  end
  else if is_kw st "break" then begin
    advance st; eat_punct st ";"; Sbreak ln
  end
  else if is_kw st "continue" then begin
    advance st; eat_punct st ";"; Scontinue ln
  end
  else if starts_type st then begin
    let t = parse_ty st in
    let name = eat_ident st in
    let size =
      if accept_punct st "[" then begin
        match peek_tok st with
        | Lexer.Tint_lit n -> advance st; eat_punct st "]"; Some n
        | _ -> fail st "array size literal"
      end
      else None
    in
    let init = if accept_punct st "=" then Some (parse_expr st) else None in
    eat_punct st ";";
    Sdecl (ln, t, name, size, init)
  end
  else begin
    let s = parse_simple st in
    eat_punct st ";";
    s
  end

(* A "simple" statement: assignment, increment, or expression. *)
and parse_simple st =
  let ln = line st in
  let lhs = parse_expr st in
  match peek_tok st with
  | Lexer.Tpunct "=" -> advance st; Sassign (ln, lhs, parse_expr st)
  | Lexer.Tpunct "+=" -> advance st; desugar_compound ln "+" lhs (parse_expr st)
  | Lexer.Tpunct "-=" -> advance st; desugar_compound ln "-" lhs (parse_expr st)
  | Lexer.Tpunct "*=" -> advance st; desugar_compound ln "*" lhs (parse_expr st)
  | Lexer.Tpunct "/=" -> advance st; desugar_compound ln "/" lhs (parse_expr st)
  | Lexer.Tpunct "++" -> advance st; desugar_compound ln "+" lhs (Eint (ln, 1))
  | Lexer.Tpunct "--" -> advance st; desugar_compound ln "-" lhs (Eint (ln, 1))
  | _ -> Sexpr (ln, lhs)

and parse_stmts st =
  let rec go acc =
    if is_punct st "}" then List.rev acc else go (parse_stmt st :: acc)
  in
  go []

(* ---- top level ---- *)

let parse_decl st =
  let ln = line st in
  (* [secret] marks a public/secret contract on a global or, inside a
     formal list, on a parameter *)
  let secret = accept_kw st "secret" in
  let ret =
    if is_kw st "void" then (advance st; None)
    else Some (parse_ty st)
  in
  let name = eat_ident st in
  if is_punct st "(" then begin
    if secret then
      error ln "secret applies to globals and parameters, not functions";
    advance st;
    let formals =
      if accept_punct st ")" then []
      else begin
        let rec more acc =
          let sec = accept_kw st "secret" in
          let t = parse_ty st in
          let n = eat_ident st in
          if accept_punct st "," then more ((t, n, sec) :: acc)
          else begin eat_punct st ")"; List.rev ((t, n, sec) :: acc) end
        in
        more []
      end
    in
    eat_punct st "{";
    let body = parse_stmts st in
    eat_punct st "}";
    Dfunc (ln, ret, name, formals, body)
  end
  else begin
    let t = match ret with
      | Some t -> t
      | None -> error ln "global variable cannot have type void"
    in
    let size =
      if accept_punct st "[" then begin
        match peek_tok st with
        | Lexer.Tint_lit n -> advance st; eat_punct st "]"; Some n
        | _ -> fail st "array size literal"
      end
      else None
    in
    eat_punct st ";";
    Dglobal (ln, t, name, size, secret)
  end

(** Parse a complete mini-C program from source text.
    Raises {!Ast.Frontend_error} on malformed input. *)
let parse (src : string) : Ast.program =
  let toks = Array.of_list (Lexer.tokenize src) in
  let st = { toks; pos = 0 } in
  let rec go acc =
    match peek_tok st with
    | Lexer.Teof -> List.rev acc
    | _ -> go (parse_decl st :: acc)
  in
  go []
