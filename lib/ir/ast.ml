(** Abstract syntax of the mini-C source language accepted by the frontend.

    The language is the subset of C that the paper's workloads need:
    [int]/[float] scalars (both 64-bit), pointers, one-dimensional arrays,
    heap allocation via [malloc], function calls, and structured control
    flow.  Logical [&&]/[||] are strict (no short-circuit); this keeps the
    lowered CFG simple and is documented in the README. *)

type ty = Aint | Aflt | Aptr of ty

type pos = int  (** 1-based source line *)

type expr =
  | Eint of pos * int
  | Eflt of pos * float
  | Evar of pos * string
  | Eun of pos * string * expr          (** "-", "!", "*", "&" *)
  | Ebin of pos * string * expr * expr
  | Eidx of pos * expr * expr           (** a[i] *)
  | Ecall of pos * string * expr list
  | Ecast of pos * ty * expr

type stmt =
  | Sblock of stmt list
  | Sif of pos * expr * stmt * stmt option
  | Swhile of pos * expr * stmt
  | Sfor of pos * stmt option * expr option * stmt option * stmt
  | Sreturn of pos * expr option
  | Sdecl of pos * ty * string * int option * expr option
      (** [ty name [size]? = init?] — local declaration; [size] makes it a
          stack array *)
  | Sassign of pos * expr * expr        (** lvalue = expr *)
  | Sexpr of pos * expr                 (** expression statement (calls) *)
  | Sbreak of pos
  | Scontinue of pos

type decl =
  | Dglobal of pos * ty * string * int option * bool
      (** type, name, array size, [secret] contract *)
  | Dfunc of pos * ty option * string * (ty * string * bool) list * stmt list
      (** return type ([None] = void), name, formals (type, name,
          [secret] contract), body *)

type program = decl list

exception Frontend_error of int * string

let error pos fmt = Fmt.kstr (fun s -> raise (Frontend_error (pos, s))) fmt

let rec pp_ty fmt = function
  | Aint -> Fmt.string fmt "int"
  | Aflt -> Fmt.string fmt "float"
  | Aptr t -> Fmt.pf fmt "%a*" pp_ty t

let rec to_ir_ty = function
  | Aint -> Types.Tint
  | Aflt -> Types.Tflt
  | Aptr t -> Types.Tptr (to_ir_ty t)
