(** Growable arrays, used for block tables and other id-indexed stores. *)

type 'a t = { mutable data : 'a array; mutable len : int; dummy : 'a }

let create ?(capacity = 8) dummy =
  { data = Array.make (max capacity 1) dummy; len = 0; dummy }

let length v = v.len

let get v i =
  if i < 0 || i >= v.len then invalid_arg "Vec.get: index out of bounds";
  v.data.(i)

let set v i x =
  if i < 0 || i >= v.len then invalid_arg "Vec.set: index out of bounds";
  v.data.(i) <- x

let ensure_capacity v n =
  if n > Array.length v.data then begin
    let cap = ref (Array.length v.data) in
    while !cap < n do cap := !cap * 2 done;
    let data = Array.make !cap v.dummy in
    Array.blit v.data 0 data 0 v.len;
    v.data <- data
  end

let push v x =
  ensure_capacity v (v.len + 1);
  v.data.(v.len) <- x;
  v.len <- v.len + 1

(** [push_get v x] appends [x] and returns its index. *)
let push_get v x =
  let i = v.len in
  push v x; i

(** Shallow copy: a new vector over a fresh backing array; elements are
    shared.  Pushes to either side are invisible to the other. *)
let copy v = { data = Array.copy v.data; len = v.len; dummy = v.dummy }

let iter f v = for i = 0 to v.len - 1 do f v.data.(i) done
let iteri f v = for i = 0 to v.len - 1 do f i v.data.(i) done

let fold f acc v =
  let acc = ref acc in
  for i = 0 to v.len - 1 do acc := f !acc v.data.(i) done;
  !acc

let exists p v =
  let rec go i = i < v.len && (p v.data.(i) || go (i + 1)) in
  go 0

let to_list v = List.init v.len (fun i -> v.data.(i))

let of_list dummy xs =
  let v = create ~capacity:(List.length xs + 1) dummy in
  List.iter (push v) xs; v
