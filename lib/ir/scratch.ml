(** Domain-local pools of per-function scratch buffers.

    The SSA construction and SSAPRE steps need several id-indexed arrays
    and bitsets per function per round; allocating them fresh each time
    dominates the optimizer's minor-heap traffic.  Buffers are pooled per
    domain (no locking, no sharing), handed out dirty — callers must
    initialize the prefix they use — and returned with [give_*].  The
    pool keeps at most a handful of buffers per kind; anything beyond
    that is dropped for the GC. *)

let max_pooled = 8

type pools = {
  mutable ints : int array list;
  mutable bytes : Bytes.t list;
}

let key : pools Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { ints = []; bytes = [] })

(* first pooled buffer with capacity >= n, or a fresh one; contents are
   arbitrary *)
let pick get set make length n =
  let p = Domain.DLS.get key in
  let rec go acc = function
    | [] ->
      set p (List.rev acc);
      make (max n 64)
    | a :: rest when length a >= n ->
      set p (List.rev_append acc rest);
      a
    | a :: rest -> go (a :: acc) rest
  in
  go [] (get p)

let put get set length a =
  let p = Domain.DLS.get key in
  if List.length (get p) < max_pooled && length a > 0 then set p (a :: get p)

(** An int array of length >= [n], dirty. *)
let take_ints n =
  pick (fun p -> p.ints) (fun p l -> p.ints <- l)
    (fun n -> Array.make n 0) Array.length n

let give_ints a =
  put (fun p -> p.ints) (fun p l -> p.ints <- l) Array.length a

(** A byte buffer of length >= [n] with the first [n] bytes zeroed — the
    usual bitset/flag-row starting state. *)
let take_bytes n =
  let b =
    pick (fun p -> p.bytes) (fun p l -> p.bytes <- l)
      Bytes.create Bytes.length n
  in
  Bytes.fill b 0 n '\000';
  b

let give_bytes b =
  put (fun p -> p.bytes) (fun p l -> p.bytes <- l) Bytes.length b
