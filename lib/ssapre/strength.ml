(** Strength reduction and linear function test replacement.

    The paper lists both as SSAPRE-family clients (after Kennedy et al.,
    CC'98): multiplications of an induction variable by a loop-invariant
    constant are *speculatively redundant across the injuring definition*
    (the i = i + c update); the repair code is the incremental update of a
    strength-reduced temporary.  We implement the classical loop-based
    formulation over the de-versioned SIR:

    - basic induction variables: register variables with exactly one
      in-loop definition of the form [i = i + c] (or [i = i - c]);
    - candidates: [i * k] subexpressions with constant [k] inside the loop
      (this includes every scaled array index the frontend emits);
    - transformation: a temporary [t] initialized to [i * k] in the
      preheader and updated by [t = t + c*k] after the injury, replacing
      the multiplications;
    - LFTR: when the only remaining uses of [i] are its own update and the
      loop exit test [i cmp bound] with a loop-invariant bound, the test is
      rewritten to [t cmp bound * k] and the dead update removed. *)

open Spec_ir
open Spec_cfg

type stats = {
  mutable reduced : int;        (* multiplications strength-reduced *)
  mutable lftr : int;           (* loop tests replaced *)
}

(* variables (register-resident) with their in-loop definition statements *)
let defs_in_loop prog (f : Sir.func) (body : int list) =
  let defs : (int, Sir.stmt list) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun bid ->
      let b = Sir.block f bid in
      List.iter
        (fun (s : Sir.stmt) ->
          match Sir.stmt_def s.Sir.kind with
          | Some v ->
            let v = (Symtab.orig prog.Sir.syms v).Symtab.vid in
            let cur =
              match Hashtbl.find_opt defs v with Some l -> l | None -> []
            in
            Hashtbl.replace defs v (s :: cur)
          | None -> ())
        b.Sir.stmts)
    body;
  defs

(* i = i + c / i = i - c / i = c + i *)
let increment_of prog v (s : Sir.stmt) : int option =
  let ov = (Symtab.orig prog.Sir.syms v).Symtab.vid in
  match s.Sir.kind with
  | Sir.Stid (d, e) when (Symtab.orig prog.Sir.syms d).Symtab.vid = ov -> (
      match e with
      | Sir.Binop (Sir.Add, Types.Tint, Sir.Lod u, Sir.Const (Sir.Cint c))
        when (Symtab.orig prog.Sir.syms u).Symtab.vid = ov -> Some c
      | Sir.Binop (Sir.Add, Types.Tint, Sir.Const (Sir.Cint c), Sir.Lod u)
        when (Symtab.orig prog.Sir.syms u).Symtab.vid = ov -> Some c
      | Sir.Binop (Sir.Sub, Types.Tint, Sir.Lod u, Sir.Const (Sir.Cint c))
        when (Symtab.orig prog.Sir.syms u).Symtab.vid = ov -> Some (-c)
      | _ -> None)
  | _ -> None

(* loop-invariant pure expression: no loads, and none of its variables are
   defined inside the loop *)
let is_invariant prog defs e =
  let ok = ref true in
  Sir.iter_subexprs
    (function
      | Sir.Ilod _ -> ok := false
      | Sir.Lod v when Symtab.is_mem prog.Sir.syms v -> ok := false
      | Sir.Lod v ->
        if Hashtbl.mem defs (Symtab.orig prog.Sir.syms v).Symtab.vid then
          ok := false
      | _ -> ())
    e;
  !ok

(* candidate forms for IV [iv]: iv*k, (iv+inv)*k, (inv+iv)*k *)
let candidate_of prog defs iv e =
  let syms = prog.Sir.syms in
  let is_iv u = (Symtab.orig syms u).Symtab.vid = iv in
  match e with
  | Sir.Binop (Sir.Mul, Types.Tint, Sir.Lod u, Sir.Const (Sir.Cint k))
    when is_iv u && k <> 0 -> Some (k, None)
  | Sir.Binop
      (Sir.Mul, Types.Tint,
       Sir.Binop (Sir.Add, Types.Tint, Sir.Lod u, inv),
       Sir.Const (Sir.Cint k))
    when is_iv u && k <> 0 && is_invariant prog defs inv -> Some (k, Some inv)
  | Sir.Binop
      (Sir.Mul, Types.Tint,
       Sir.Binop (Sir.Add, Types.Tint, inv, Sir.Lod u),
       Sir.Const (Sir.Cint k))
    when is_iv u && k <> 0 && is_invariant prog defs inv -> Some (k, Some inv)
  | _ -> None

(* count uses of [v] in an expression *)
let uses_in_expr prog v e =
  let ov = (Symtab.orig prog.Sir.syms v).Symtab.vid in
  let n = ref 0 in
  Sir.iter_expr_uses
    (fun u -> if (Symtab.orig prog.Sir.syms u).Symtab.vid = ov then incr n)
    e;
  !n

let rec reduce_loop prog (f : Sir.func) (stats : stats) (l : Cfg_utils.loop) =
  let syms = prog.Sir.syms in
  let header = Sir.block f l.Cfg_utils.header in
  (* unique preheader: the single predecessor outside the loop *)
  let outside =
    List.filter (fun p -> not (List.mem p l.Cfg_utils.body)) header.Sir.preds
  in
  match outside with
  | [ ph ] ->
    let preheader = Sir.block f ph in
    let defs = defs_in_loop prog f l.Cfg_utils.body in
    (* basic induction variables *)
    let ivs =
      Hashtbl.fold
        (fun v ss acc ->
          if Symtab.is_mem syms v then acc
          else
            match ss with
            | [ s ] -> (
                match increment_of prog v s with
                | Some c when c <> 0 -> (v, c, s) :: acc
                | _ -> acc)
            | _ -> acc)
        defs []
    in
    List.iter
      (fun (iv, step, inj_stmt) ->
        let reduced_pairs = ref [] in
        let inits = ref [] in
        (* collect linear candidates (k, invariant addend) in the loop *)
        let ks = ref [] in
        let have (k, inv) =
          List.exists
            (fun (k', inv') ->
              k = k'
              && (match inv, inv' with
                  | None, None -> true
                  | Some a, Some b -> Sir.expr_equal a b
                  | None, Some _ | Some _, None -> false))
            !ks
        in
        let scan e =
          Sir.iter_subexprs
            (fun sub ->
              match candidate_of prog defs iv sub with
              | Some c -> if not (have c) then ks := c :: !ks
              | None -> ())
            e
        in
        List.iter
          (fun bid ->
            let b = Sir.block f bid in
            List.iter
              (fun (s : Sir.stmt) ->
                if s != inj_stmt then
                  List.iter scan (Sir.stmt_exprs s.Sir.kind))
              b.Sir.stmts;
            List.iter scan (Sir.term_exprs b.Sir.term))
          l.Cfg_utils.body;
        List.iter
          (fun ((k, inv) as cand) ->
            (* the strength-reduced temporary *)
            let t =
              Symtab.add syms
                ~name:(Printf.sprintf "sr%d" (Symtab.count syms))
                ~ty:Types.Tint ~storage:Symtab.Stemp
                ~func:(Some f.Sir.fname) ()
            in
            f.Sir.flocals <- t.Symtab.vid :: f.Sir.flocals;
            let tv = t.Symtab.vid in
            (* preheader: t = (i [+ inv]) * k; invariant operands have
               their final pre-loop values there *)
            let base =
              match inv with
              | None -> Sir.Lod iv
              | Some e -> Sir.Binop (Sir.Add, Types.Tint, Sir.Lod iv, e)
            in
            let init =
              Sir.new_stmt prog
                (Sir.Stid
                   (tv,
                    Sir.Binop (Sir.Mul, Types.Tint, base,
                               Sir.Const (Sir.Cint k))))
            in
            preheader.Sir.stmts <- preheader.Sir.stmts @ [ init ];
            inits := init :: !inits;
            (* rewrite matching candidates -> t inside the loop *)
            let rec rw e =
              match candidate_of prog defs iv e with
              | Some c when
                  (match c, cand with
                   | (k1, None), (k2, None) -> k1 = k2
                   | (k1, Some a), (k2, Some b) ->
                     k1 = k2 && Sir.expr_equal a b
                   | _ -> false) ->
                stats.reduced <- stats.reduced + 1;
                Sir.Lod tv
              | _ ->
                (match e with
                 | Sir.Const _ | Sir.Lod _ | Sir.Lda _ -> e
                 | Sir.Ilod (ty, a, site) -> Sir.Ilod (ty, rw a, site)
                 | Sir.Unop (o, ty, x) -> Sir.Unop (o, ty, rw x)
                 | Sir.Binop (o, ty, a, b) -> Sir.Binop (o, ty, rw a, rw b))
            in
            List.iter
              (fun bid ->
                let b = Sir.block f bid in
                List.iter
                  (fun (s : Sir.stmt) ->
                    if s != inj_stmt then
                      s.Sir.kind <- Sir.map_stmt_exprs rw s.Sir.kind)
                  b.Sir.stmts;
                b.Sir.term <- Sir.map_term_exprs rw b.Sir.term)
              l.Cfg_utils.body;
            (* repair after the injuring definition: t = t + step*k *)
            let repair =
              Sir.new_stmt prog
                (Sir.Stid
                   (tv,
                    Sir.Binop (Sir.Add, Types.Tint, Sir.Lod tv,
                               Sir.Const (Sir.Cint (step * k)))))
            in
            let inj_bb =
              List.find
                (fun bid ->
                  List.memq inj_stmt (Sir.block f bid).Sir.stmts)
                l.Cfg_utils.body
            in
            let b = Sir.block f inj_bb in
            b.Sir.stmts <-
              List.concat_map
                (fun s -> if s == inj_stmt then [ s; repair ] else [ s ])
                b.Sir.stmts;
            (match inv with
             | None -> reduced_pairs := (k, tv) :: !reduced_pairs
             | Some _ -> ()))
          !ks;
        (* LFTR once, after every multiplication of this IV is reduced;
           only the pure iv*k form gives a directly comparable test *)
        (match List.rev !reduced_pairs with
         | (k, tv) :: _ when k > 0 ->
           lftr prog f stats l ~iv ~tv ~k ~inj_stmt ~defs
             ~ignore_stmts:!inits
         | _ -> ()))
      ivs
  | _ -> ()

and lftr prog (f : Sir.func) (stats : stats) (l : Cfg_utils.loop) ~iv ~tv ~k
    ~inj_stmt ~defs ~ignore_stmts =
  let syms = prog.Sir.syms in
  if k <= 0 then ()    (* flipping the comparison for k<0 is not worth it *)
  else begin
    let header = Sir.block f l.Cfg_utils.header in
    match header.Sir.term with
    | Sir.Tcond
        (Sir.Binop ((Sir.Lt | Sir.Le | Sir.Gt | Sir.Ge) as cmp, Types.Tint,
                    Sir.Lod u, bound),
         tt, ee)
      when (Symtab.orig syms u).Symtab.vid = iv ->
      (* the bound must be loop-invariant: no defs of its variables inside *)
      let invariant = ref true in
      Sir.iter_expr_uses
        (fun b ->
          let ob = (Symtab.orig syms b).Symtab.vid in
          if Hashtbl.mem defs ob then invariant := false)
        bound;
      let pure =
        let ok = ref true in
        Sir.iter_subexprs
          (function
            | Sir.Ilod _ -> ok := false
            | Sir.Lod v when Symtab.is_mem syms v -> ok := false
            | _ -> ())
          bound;
        !ok
      in
      if !invariant && pure then begin
        (* are the remaining uses of i only its own update and this test? *)
        let uses = ref 0 in
        Vec.iter
          (fun (b : Sir.bb) ->
            List.iter
              (fun (s : Sir.stmt) ->
                (* the strength-reduction inits read the IV before the
                   loop; they do not keep the in-loop update alive *)
                if s != inj_stmt && not (List.memq s ignore_stmts) then
                  List.iter
                    (fun e -> uses := !uses + uses_in_expr prog iv e)
                    (Sir.stmt_exprs s.Sir.kind))
              b.Sir.stmts;
            match b.Sir.term with
            | t when b.Sir.bid = l.Cfg_utils.header -> ignore t
            | t ->
              List.iter
                (fun e -> uses := !uses + uses_in_expr prog iv e)
                (Sir.term_exprs t))
          f.Sir.fblocks;
        if !uses = 0 then begin
          (* i cmp bound  ==>  t cmp bound * k   (k > 0 preserves order) *)
          let bound' =
            match bound with
            | Sir.Const (Sir.Cint c) -> Sir.Const (Sir.Cint (c * k))
            | e -> Sir.Binop (Sir.Mul, Types.Tint, e, Sir.Const (Sir.Cint k))
          in
          header.Sir.term <-
            Sir.Tcond
              (Sir.Binop (cmp, Types.Tint, Sir.Lod tv, bound'), tt, ee);
          stats.lftr <- stats.lftr + 1;
          (* the induction variable update is now dead *)
          let inj_bb =
            List.find
              (fun bid -> List.memq inj_stmt (Sir.block f bid).Sir.stmts)
              l.Cfg_utils.body
          in
          let b = Sir.block f inj_bb in
          b.Sir.stmts <- List.filter (fun s -> s != inj_stmt) b.Sir.stmts
        end
      end
    | _ -> ()
  end

(** Run strength reduction (with LFTR) on one function's loops,
    innermost first.  [prog] may be a per-task view of the real program
    (cloned symbol table, private statement counter). *)
let run_func ?dom (prog : Sir.prog) (f : Sir.func) : stats =
  let stats = { reduced = 0; lftr = 0 } in
  let dom =
    match dom with
    | Some d -> d
    | None ->
      Sir.recompute_preds f;
      Dom.compute f
  in
  let loops = Cfg_utils.natural_loops f dom in
  (* innermost first so inner rewrites do not disturb outer IVs *)
  let loops =
    List.sort
      (fun a b -> compare b.Cfg_utils.depth a.Cfg_utils.depth)
      loops
  in
  List.iter (reduce_loop prog f stats) loops;
  stats

(** Run strength reduction (with LFTR) on every loop of every function.
    Expects de-versioned (non-SSA) SIR. *)
let run ?dom_of (prog : Sir.prog) : stats =
  let stats = { reduced = 0; lftr = 0 } in
  Sir.iter_funcs
    (fun f ->
      let dom = Option.map (fun get -> get f) dom_of in
      let fst_ = run_func ?dom prog f in
      stats.reduced <- stats.reduced + fst_.reduced;
      stats.lftr <- stats.lftr + fst_.lftr)
    prog;
  stats
