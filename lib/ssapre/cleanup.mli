(** Scalar cleanup: constant folding, block-local copy/constant
    propagation, and liveness-based dead-code elimination over
    register-resident variables.  Statements with speculation marks are
    never deleted, and a check load's destination counts as used (ld.c
    conditionally preserves it). *)

type stats = {
  mutable folded : int;
  mutable propagated : int;
  mutable removed : int;
}

val run : Spec_ir.Sir.prog -> stats

(** Per-function variant for the parallel pipeline; equivalent to [run]
    restricted to one function (cleanup has no cross-function state).
    [pin v] protects variable [v]'s assignments from dead-code
    elimination — deoptimization descriptors transfer lowering-era
    register state, so those variables must stay materialized even when
    the optimized code no longer reads them. *)
val run_func :
  ?pin:(int -> bool) -> Spec_ir.Sir.prog -> Spec_ir.Sir.func -> stats

(** Accumulate [b]'s counters into [a]. *)
val add_stats : stats -> stats -> unit
