(** Speculative SSAPRE: the six-step SSAPRE algorithm (Kennedy et al.,
    TOPLAS 21(3)) extended with the paper's control- and data-speculation
    support (Appendices A and B).  See the implementation header for the
    algorithm walk-through; drive it through [Spec_driver.Pipeline]. *)

type config = {
  mode : Spec_spec.Flags.mode;
  control_spec : bool;
      (** allow insertion at non-downsafe Phis when profitable *)
  cspec_always : bool;
      (** force control speculation regardless of the edge profile (tests) *)
  cspec_ratio : float;
      (** insert speculatively when the insertion-edge frequency is below
          this fraction of the Phi block's frequency *)
  arith_pre : bool;
      (** also PRE pure arithmetic expressions (not just loads) *)
  alias_threshold : float;
      (** degree-of-likeliness knob, see [Spec_spec.Kills.create] *)
  adversary : Spec_spec.Flags.perturbation option;
      (** stress harness: corrupt kill-classification verdicts, see
          [Spec_spec.Kills.create] *)
}

val default_config : Spec_spec.Flags.mode -> config

type stats = {
  checks : int;        (** check (ld.c) statements generated *)
  reloads : int;       (** redundant occurrences replaced by temp reads *)
  saves : int;         (** defining occurrences saved into temps *)
  inserts : int;       (** Phi-operand insertions *)
  cspec_phis : int;    (** Phis kept alive by control speculation *)
  items : int;         (** lexically distinct candidate expressions *)
}

val zero_stats : stats
val add_stats : stats -> stats -> stats

(** Run one SSAPRE pass over a function in HSSA form with speculation
    flags assigned.  Leaves the function in "flat" (non-SSA-maintained)
    form: run [Spec_ssa.Out_of_ssa] before executing it.  [dom] supplies
    a (possibly cached) dominator tree for the function's current CFG;
    when absent one is computed.  [formals] is [Spec_ssa.Build_ssa]'s
    formal-to-entry-version mapping ([formals_v1]); when absent the
    symbol table is scanned for the entry versions instead. *)
val run_func :
  ?dom:Spec_cfg.Dom.t ->
  ?formals:(int * int) list ->
  Spec_ir.Sir.prog -> Spec_alias.Annotate.info -> config -> Spec_ir.Sir.func ->
  stats
