(** Speculative SSAPRE: the six-step SSAPRE algorithm (Kennedy et al.,
    TOPLAS 21(3)) extended with the paper's control- and data-speculation
    support.

    Φ-Insertion and Rename follow the enhanced algorithms of the paper's
    Appendices A and B: definition chains are traced *through* speculative
    weak updates (unflagged χs), which exposes speculatively redundant
    occurrences; CodeMotion then emits check statements (ld.c) for
    speculative reloads and marks the reaching computations as advanced
    loads (ld.a).  Control speculation permits insertion at non-downsafe
    Φs when the edge profile says the insertion paths are cold.

    The engine processes one function at a time, assuming HSSA form with
    χ/μ lists and speculation flags assigned.  Its rewrites deliberately
    produce "flat" (non-SSA-maintained) temporaries; the pipeline
    de-versions the function immediately afterwards (see
    [Spec_ssa.Out_of_ssa] for why this is sound). *)

open Spec_ir
open Spec_cfg
open Spec_spec

type config = {
  mode : Flags.mode;
  control_spec : bool;
  cspec_always : bool;
      (** force insertion at non-downsafe Φs regardless of profile (tests) *)
  cspec_ratio : float;
      (** insert speculatively when insertion-edge frequency is below this
          fraction of the Φ block's frequency *)
  arith_pre : bool;
  alias_threshold : float;
      (** alias relations observed in at most this fraction of profiled
          executions are still speculated over (see [Spec_spec.Kills]) *)
  adversary : Flags.perturbation option;
      (** stress harness: corrupt the kill-classification verdicts (see
          [Spec_spec.Kills.create]) *)
}

let default_config mode =
  { mode; control_spec = true; cspec_always = false; cspec_ratio = 0.5;
    arith_pre = true; alias_threshold = 0.; adversary = None }

(* ------------------------------------------------------------------ *)
(* Occurrence structures                                               *)
(* ------------------------------------------------------------------ *)

type place = Pstmt of Sir.stmt | Pterm

type real_occ = {
  ro_bb : int;
  ro_place : place;
  ro_idx : int;                    (* nth same-key candidate in the place *)
  ro_expr : Sir.expr;
  mutable ro_cls : int;
  mutable ro_def : def option;
  mutable ro_weaks : Sir.stmt list;
  mutable ro_used : bool;
}

and phi_occ = {
  po_bb : int;
  po_cls : int;
  po_opnds : opnd array;
  mutable po_ds : bool;
  mutable po_cba : bool;
  mutable po_later : bool;
  mutable po_wba : bool;
  mutable po_cspec : bool;
  mutable po_live : bool;
}

and opnd = {
  mutable op_def : def option;        (* None = bottom *)
  mutable op_has_real_use : bool;
  mutable op_expr : Sir.expr option;  (* insertion expression at pred end *)
  mutable op_weaks : Sir.stmt list;
  mutable op_insert : bool;
}

and def = Dreal of real_occ | Dphi of phi_occ

type item = {
  it_id : int;                           (* dense index, creation order *)
  it_key : string;
  it_proto : Sir.expr;                   (* deversioned representative *)
  it_target : Kills.target;
  it_leaves : int list;                  (* orig ids of pure leaves *)
  mutable it_reals : real_occ list;      (* reverse collection order *)
  it_phis : (int, phi_occ) Hashtbl.t;    (* bb -> phi *)
  mutable it_next_cls : int;
  mutable it_temp : int;                 (* temp var id, -1 until created *)
  mutable it_has_checks : bool;
}

type stack_entry =
  | Ebot
  | Ereal of { cls : int; occ : real_occ; weaks : Sir.stmt list }
  | Ephi of { cls : int; phi : phi_occ; weaks : Sir.stmt list }

(* ------------------------------------------------------------------ *)
(* Per-function context                                                *)
(* ------------------------------------------------------------------ *)

type vdef =
  | Vphi of Sir.phi * int
  | Vchi of Sir.stmt * Sir.chi
  | Vdirect
  | Vnone

type fctx = {
  prog : Sir.prog;
  func : Sir.func;
  dom : Dom.t;
  cfg : config;
  kctx : Kills.ctx;
  items : (string, item) Hashtbl.t;
  mutable item_list : item list;
  (* occurrences grouped by statement id / terminator block *)
  stmt_occs : (int, (item * real_occ) list) Hashtbl.t;
  term_occs : (int, (item * real_occ) list) Hashtbl.t;
  (* version vid -> its definition; dense over the post-rename symtab *)
  mutable vdefs : vdef array;
  (* versions current at block ends, dense rows over the interned proto
     variables: ev_rows.(bb * ev_n + slot), -1 = version 0 (the original) *)
  ev_index : int array;            (* orig vid -> slot, or -1; pooled *)
  ev_origs : int array;            (* slot -> orig vid; pooled *)
  mutable ev_n : int;
  mutable ev_rows : int array;     (* pooled *)
  mutable stats_checks : int;
  mutable stats_reloads : int;
  mutable stats_saves : int;
  mutable stats_inserts : int;
  mutable stats_cspec_phis : int;
}

let syms_of ctx = ctx.prog.Sir.syms

(* ---- step 0: collect candidates & auxiliary tables ---- *)

let get_item ctx key target expr =
  match Hashtbl.find_opt ctx.items key with
  | Some it -> it
  | None ->
    let syms = syms_of ctx in
    let proto =
      Sir.map_expr_uses (fun v -> (Symtab.orig syms v).Symtab.vid) expr
    in
    let it =
      { it_id = Hashtbl.length ctx.items; it_key = key; it_proto = proto;
        it_target = target;
        it_leaves = Candidates.leaves syms expr; it_reals = [];
        it_phis = Hashtbl.create 4; it_next_cls = 0; it_temp = -1;
        it_has_checks = false }
    in
    Hashtbl.replace ctx.items key it;
    ctx.item_list <- it :: ctx.item_list;
    it

let collect_occurrences ctx =
  let syms = syms_of ctx in
  let arith_pre = ctx.cfg.arith_pre in
  Vec.iter
    (fun (b : Sir.bb) ->
      List.iter
        (fun (s : Sir.stmt) ->
          (* register istore address keys for heuristic rule 1 *)
          (match s.Sir.kind with
           | Sir.Istr (_, a, _, site) -> Kills.register_site_addr ctx.kctx site a
           | _ -> ());
          List.iter
            (Sir.iter_subexprs (function
              | Sir.Ilod (_, a, site) -> Kills.register_site_addr ctx.kctx site a
              | _ -> ()))
            (Sir.stmt_exprs s.Sir.kind);
          if s.Sir.mark = Sir.Mnone then begin
            let counts = Hashtbl.create 4 in
            List.iter
              (Candidates.iter_candidates syms ~arith_pre (fun key target e ->
                   let idx =
                     match Hashtbl.find_opt counts key with
                     | Some i -> i | None -> 0
                   in
                   Hashtbl.replace counts key (idx + 1);
                   let it = get_item ctx key target e in
                   let occ =
                     { ro_bb = b.Sir.bid; ro_place = Pstmt s; ro_idx = idx;
                       ro_expr = e; ro_cls = -1; ro_def = None; ro_weaks = [];
                       ro_used = false }
                   in
                   it.it_reals <- occ :: it.it_reals;
                   let cur =
                     match Hashtbl.find_opt ctx.stmt_occs s.Sir.sid with
                     | Some l -> l | None -> []
                   in
                   (* prepended; reversed once collection is complete *)
                   Hashtbl.replace ctx.stmt_occs s.Sir.sid ((it, occ) :: cur)))
              (Sir.stmt_exprs s.Sir.kind)
          end)
        b.Sir.stmts;
      (* terminator occurrences *)
      let counts = Hashtbl.create 4 in
      List.iter
        (fun e ->
          Sir.iter_subexprs
            (function
              | Sir.Ilod (_, a, site) -> Kills.register_site_addr ctx.kctx site a
              | _ -> ())
            e;
          Candidates.iter_candidates syms ~arith_pre
            (fun key target sub ->
              let idx =
                match Hashtbl.find_opt counts key with Some i -> i | None -> 0
              in
              Hashtbl.replace counts key (idx + 1);
              let it = get_item ctx key target sub in
              let occ =
                { ro_bb = b.Sir.bid; ro_place = Pterm; ro_idx = idx;
                  ro_expr = sub; ro_cls = -1; ro_def = None; ro_weaks = [];
                  ro_used = false }
              in
              it.it_reals <- occ :: it.it_reals;
              let cur =
                match Hashtbl.find_opt ctx.term_occs b.Sir.bid with
                | Some l -> l | None -> []
              in
              Hashtbl.replace ctx.term_occs b.Sir.bid ((it, occ) :: cur))
            e)
        (Sir.term_exprs b.Sir.term))
    ctx.func.Sir.fblocks;
  ctx.item_list <- List.rev ctx.item_list;
  List.iter (fun it -> it.it_reals <- List.rev it.it_reals) ctx.item_list;
  Hashtbl.filter_map_inplace (fun _ l -> Some (List.rev l)) ctx.stmt_occs;
  Hashtbl.filter_map_inplace (fun _ l -> Some (List.rev l)) ctx.term_occs

let build_version_def ctx =
  let vdefs = Array.make (Symtab.count (syms_of ctx)) Vnone in
  Vec.iter
    (fun (b : Sir.bb) ->
      List.iter
        (fun (p : Sir.phi) -> vdefs.(p.Sir.phi_lhs) <- Vphi (p, b.Sir.bid))
        b.Sir.phis;
      List.iter
        (fun (s : Sir.stmt) ->
          (match Sir.stmt_def s.Sir.kind with
           | Some v -> vdefs.(v) <- Vdirect
           | None -> ());
          List.iter
            (fun (c : Sir.chi) -> vdefs.(c.Sir.chi_lhs) <- Vchi (s, c))
            s.Sir.chis)
        b.Sir.stmts)
    ctx.func.Sir.fblocks;
  ctx.vdefs <- vdefs

(* Intern the variables the items' prototype expressions read; only their
   block-end versions are ever queried (by [assign_phi_opnds]). *)
let intern_proto_vars ctx =
  List.iter
    (fun it ->
      Sir.iter_expr_uses
        (fun ov ->
          if ctx.ev_index.(ov) < 0 then begin
            ctx.ev_index.(ov) <- ctx.ev_n;
            ctx.ev_origs.(ctx.ev_n) <- ov;
            ctx.ev_n <- ctx.ev_n + 1
          end)
        it.it_proto)
    ctx.item_list

(* versions of the interned proto variables current at each block's end *)
let build_end_versions ?formals ctx =
  let syms = syms_of ctx in
  let nb = Sir.n_blocks ctx.func in
  let ev_n = ctx.ev_n in
  let rows = Scratch.take_ints (max (nb * ev_n) 1) in
  Array.fill rows 0 (nb * ev_n) (-1);
  ctx.ev_rows <- rows;
  if ev_n > 0 then begin
    let stacks : int list array = Array.make ev_n [] in
    let orig_of v = (Symtab.orig syms v).Symtab.vid in
    let formal_v1s =
      (* formals were renamed to version 1 at entry; the SSA builder hands
         us the mapping, sparing a scan of the whole symbol table *)
      match formals with
      | Some l -> List.map snd l
      | None ->
        let acc = ref [] in
        Vec.iter
          (fun (v : Symtab.var) ->
            if v.Symtab.vver = 1
               && List.exists
                    (fun fv -> orig_of fv = v.Symtab.vorig)
                    ctx.func.Sir.fformals
            then acc := v.Symtab.vid :: !acc)
          syms.Symtab.vars;
        List.rev !acc
    in
    let rec walk bid =
      let b = Sir.block ctx.func bid in
      let pushed = ref [] in
      let def v =
        let k = ctx.ev_index.(orig_of v) in
        if k >= 0 then begin
          stacks.(k) <- v :: stacks.(k);
          pushed := k :: !pushed
        end
      in
      List.iter (fun (p : Sir.phi) -> def p.Sir.phi_lhs) b.Sir.phis;
      if bid = Sir.entry_bid then List.iter def formal_v1s;
      List.iter
        (fun (s : Sir.stmt) ->
          (match Sir.stmt_def s.Sir.kind with Some v -> def v | None -> ());
          List.iter (fun (c : Sir.chi) -> def c.Sir.chi_lhs) s.Sir.chis)
        b.Sir.stmts;
      (* snapshot the tops into this block's row *)
      let base = bid * ev_n in
      for k = 0 to ev_n - 1 do
        match stacks.(k) with
        | v :: _ -> rows.(base + k) <- v
        | [] -> ()
      done;
      List.iter walk ctx.dom.Dom.children.(bid);
      List.iter
        (fun k ->
          match stacks.(k) with
          | _ :: rest -> stacks.(k) <- rest
          | [] -> assert false)
        !pushed
    in
    walk Sir.entry_bid
  end

let version_at_end ctx bid orig =
  let k = ctx.ev_index.(orig) in
  if k < 0 then orig
  else
    match ctx.ev_rows.(bid * ctx.ev_n + k) with
    | -1 -> orig
    | v -> v

(* ---- step 1: Phi insertion ---- *)

(* Phi insertion with one dense worklist per item.  The result set is

     E ∪ DF+(occ_blocks ∪ E)

   where E is the set of phi blocks reached by the Appendix-A traces
   (definition chains followed *through* speculative weak updates).
   Since iterated dominance frontiers distribute over union this equals
   the reference formulation DF+(occ) ∪ E ∪ DF+(E).  One queue plus two
   flag rows ([queued] = ever enqueued, [has] = in the result) replace
   the per-item association lists; the traces all run before the DF
   propagation, so [has] doubles as the trace-visited set. *)
let insert_phis ctx =
  let nb = Sir.n_blocks ctx.func in
  let queue = Scratch.take_ints nb in
  let queued = Scratch.take_bytes nb in
  let has = Scratch.take_bytes nb in
  List.iter
    (fun (it : item) ->
      let tail = ref 0 in
      let enqueue b =
        if Bytes.unsafe_get queued b = '\000' then begin
          Bytes.unsafe_set queued b '\001';
          queue.(!tail) <- b;
          incr tail
        end
      in
      let add_result b =
        if Bytes.unsafe_get has b = '\000' then begin
          Bytes.unsafe_set has b '\001';
          enqueue b
        end
      in
      (* Appendix A: trace a version's definition through speculative weak
         updates; phi blocks reached join the result (and the queue). *)
      let rec trace v =
        match ctx.vdefs.(v) with
        | Vnone | Vdirect -> ()
        | Vphi (p, bb) ->
          if Bytes.unsafe_get has bb = '\000' then begin
            add_result bb;
            Array.iter trace p.Sir.phi_args
          end
        | Vchi (s, c) ->
          let weak =
            match it.it_target with
            | Kills.Tsite _ when Symtab.is_virtual (syms_of ctx) c.Sir.chi_var
              ->
              Kills.classify ctx.kctx it.it_target s = Kills.Kweak
            | _ -> not c.Sir.chi_spec
          in
          if weak then trace c.Sir.chi_rhs
      in
      (* occurrence blocks seed the DF propagation but are not results *)
      List.iter (fun (o : real_occ) -> enqueue o.ro_bb) it.it_reals;
      List.iter
        (fun (occ : real_occ) ->
          Sir.iter_expr_uses trace occ.ro_expr;
          (* the memory dimension: trace the virtual variable's chain from
             this occurrence's mu operand *)
          match it.it_target, occ.ro_place with
          | Kills.Tsite _site, Pstmt s ->
            List.iter
              (fun (m : Sir.mu) ->
                if Symtab.is_virtual (syms_of ctx) m.Sir.mu_var then
                  trace m.Sir.mu_opnd)
              s.Sir.mus
          | Kills.Tvar _, Pstmt s ->
            List.iter (fun (m : Sir.mu) -> trace m.Sir.mu_opnd) s.Sir.mus
          | _ -> ())
        it.it_reals;
      let head = ref 0 in
      while !head < !tail do
        let x = queue.(!head) in
        incr head;
        List.iter add_result ctx.dom.Dom.df.(x)
      done;
      (* create phis in queue (= discovery) order: deterministic *)
      for i = 0 to !tail - 1 do
        let bb = queue.(i) in
        if Bytes.unsafe_get has bb = '\001'
           && not (Hashtbl.mem it.it_phis bb)
        then begin
          let n = List.length (Sir.block ctx.func bb).Sir.preds in
          if n > 0 then begin
            let phi =
              { po_bb = bb; po_cls = it.it_next_cls;
                po_opnds =
                  Array.init n (fun _ ->
                      { op_def = None; op_has_real_use = false;
                        op_expr = None; op_weaks = []; op_insert = false });
                po_ds = true; po_cba = true; po_later = true;
                po_wba = false; po_cspec = false; po_live = false }
            in
            it.it_next_cls <- it.it_next_cls + 1;
            Hashtbl.replace it.it_phis bb phi
          end
        end
      done;
      for i = 0 to !tail - 1 do
        let b = queue.(i) in
        Bytes.unsafe_set queued b '\000';
        Bytes.unsafe_set has b '\000'
      done)
    ctx.item_list;
  Scratch.give_ints queue;
  Scratch.give_bytes queued;
  Scratch.give_bytes has

(* ---- step 2: rename (event-driven walk) ---- *)

let rename ctx =
  let items = Array.of_list ctx.item_list in
  let n_items = Array.length items in
  let stacks : stack_entry list array = Array.make n_items [] in
  (* [it_id] is the item's creation rank, which is exactly its index in
     [item_list] (and hence [items]) — no keyed lookup needed *)
  let idx_of (it : item) = it.it_id in
  let new_cls it =
    let c = it.it_next_cls in
    it.it_next_cls <- c + 1;
    c
  in
  let process_occ (it : item) (occ : real_occ) =
    let i = idx_of it in
    (match stacks.(i) with
     | [] | Ebot :: _ ->
       occ.ro_cls <- new_cls it;
       occ.ro_def <- None;
       occ.ro_weaks <- [];
       stacks.(i) <- Ereal { cls = occ.ro_cls; occ; weaks = [] } :: stacks.(i)
     | Ereal { cls; occ = d; weaks } :: _ ->
       occ.ro_cls <- cls;
       occ.ro_def <- Some (Dreal d);
       occ.ro_weaks <- weaks;
       (* the occurrence re-establishes the value: checks cover the weaks *)
       stacks.(i) <- Ereal { cls; occ; weaks = [] } :: stacks.(i)
     | Ephi { cls; phi; weaks } :: _ ->
       occ.ro_cls <- cls;
       occ.ro_def <- Some (Dphi phi);
       occ.ro_weaks <- weaks;
       stacks.(i) <- Ereal { cls; occ; weaks = [] } :: stacks.(i))
  in
  let seed_not_downsafe i =
    match stacks.(i) with
    | Ephi { phi; _ } :: _ -> phi.po_ds <- false
    | _ -> ()
  in
  let process_kills (s : Sir.stmt) =
    Array.iteri
      (fun i it ->
        match stacks.(i) with
        | [] | Ebot :: _ -> ()
        | (Ereal _ | Ephi _) :: _ ->
          let leaf_verdict =
            List.fold_left
              (fun acc leaf ->
                Kills.worst acc (Kills.classify_leaf ctx.kctx leaf s))
              Kills.Knone it.it_leaves
          in
          let mem_verdict = Kills.classify ctx.kctx it.it_target s in
          (match Kills.worst leaf_verdict mem_verdict with
           | Kills.Knone -> ()
           | Kills.Kstrong ->
             seed_not_downsafe i;
             stacks.(i) <- Ebot :: stacks.(i)
           | Kills.Kweak ->
             (match stacks.(i) with
              | Ereal { cls; occ; weaks } :: _ ->
                stacks.(i) <- Ereal { cls; occ; weaks = s :: weaks } :: stacks.(i)
              | Ephi { cls; phi; weaks } :: _ ->
                stacks.(i) <- Ephi { cls; phi; weaks = s :: weaks } :: stacks.(i)
              | _ -> ())))
      items
  in
  let assign_phi_opnds bid =
    let b = Sir.block ctx.func bid in
    List.iter
      (fun succ ->
        let sb = Sir.block ctx.func succ in
        let pred_index =
          let rec idx i = function
            | [] -> -1
            | p :: _ when p = bid -> i
            | _ :: rest -> idx (i + 1) rest
          in
          idx 0 sb.Sir.preds
        in
        if pred_index >= 0 then
          Array.iteri
            (fun i it ->
              match Hashtbl.find_opt it.it_phis succ with
              | None -> ()
              | Some phi ->
                let op = phi.po_opnds.(pred_index) in
                (* capture the insertion expression: leaf versions current
                   at the end of this predecessor *)
                let expr_here =
                  Sir.map_expr_uses
                    (fun ov -> version_at_end ctx bid ov)
                    it.it_proto
                in
                op.op_expr <- Some expr_here;
                (match stacks.(i) with
                 | [] | Ebot :: _ ->
                   op.op_def <- None
                 | Ereal { occ; weaks; _ } :: _ ->
                   op.op_def <- Some (Dreal occ);
                   op.op_has_real_use <- true;
                   op.op_weaks <- weaks
                 | Ephi { phi = p'; weaks; _ } :: _ ->
                   op.op_def <- Some (Dphi p');
                   op.op_has_real_use <- false;
                   op.op_weaks <- weaks))
            items)
      (Sir.succs b)
  in
  let rec walk bid =
    let saved = Array.copy stacks in
    let b = Sir.block ctx.func bid in
    (* item phis at this block start new classes *)
    Array.iteri
      (fun i it ->
        match Hashtbl.find_opt it.it_phis bid with
        | Some phi ->
          stacks.(i) <- Ephi { cls = phi.po_cls; phi; weaks = [] } :: stacks.(i)
        | None -> ())
      items;
    List.iter
      (fun (s : Sir.stmt) ->
        (match Hashtbl.find_opt ctx.stmt_occs s.Sir.sid with
         | Some occs -> List.iter (fun (it, occ) -> process_occ it occ) occs
         | None -> ());
        process_kills s)
      b.Sir.stmts;
    (match Hashtbl.find_opt ctx.term_occs bid with
     | Some occs -> List.iter (fun (it, occ) -> process_occ it occ) occs
     | None -> ());
    (match b.Sir.term with
     | Sir.Tret _ ->
       (* exposed at exit: phis on top without a real use are not downsafe *)
       Array.iteri (fun i _ -> seed_not_downsafe i) items
     | Sir.Tgoto _ | Sir.Tcond _ -> ());
    assign_phi_opnds bid;
    List.iter walk ctx.dom.Dom.children.(bid);
    Array.blit saved 0 stacks 0 n_items
  in
  walk Sir.entry_bid

(* ---- steps 3-4: DownSafety, CanBeAvail, Later ---- *)

let iter_phis it f = Hashtbl.iter (fun _ p -> f p) it.it_phis

let downsafety ctx =
  List.iter
    (fun it ->
      let changed = ref true in
      while !changed do
        changed := false;
        iter_phis it (fun p ->
            if not p.po_ds then
              Array.iter
                (fun op ->
                  if not op.op_has_real_use then
                    match op.op_def with
                    | Some (Dphi p') when p'.po_ds ->
                      p'.po_ds <- false;
                      changed := true
                    | _ -> ())
                p.po_opnds)
      done)
    ctx.item_list

(* control speculation: may we insert at a non-downsafe phi? *)
let cspec_allowed ctx (it : item) (p : phi_occ) =
  ctx.cfg.control_spec
  && (match it.it_target with
      | Kills.Tpure -> true    (* pure arithmetic cannot fault *)
      | Kills.Tsite _ | Kills.Tvar _ -> true)
  && (ctx.cfg.cspec_always
      ||
      let b = Sir.block ctx.func p.po_bb in
      let phi_freq = b.Sir.freq in
      if phi_freq <= 0. then false
      else begin
        (* cost: frequency of operand edges that would need insertion *)
        let cost = ref 0. in
        List.iteri
          (fun i pred ->
            let op = p.po_opnds.(i) in
            let needs =
              match op.op_def with
              | None -> true
              | Some (Dphi _) -> not op.op_has_real_use
              | Some (Dreal _) -> false
            in
            if needs then cost := !cost +. (Sir.block ctx.func pred).Sir.freq)
          b.Sir.preds;
        !cost < ctx.cfg.cspec_ratio *. phi_freq
      end)

let availability ctx =
  List.iter
    (fun it ->
      (* treat profitable non-downsafe phis as speculation candidates *)
      iter_phis it (fun p ->
          if not p.po_ds && cspec_allowed ctx it p then begin
            p.po_cspec <- true
          end);
      let safe p = p.po_ds || p.po_cspec in
      (* CanBeAvail *)
      iter_phis it (fun p ->
          if not (safe p)
             && Array.exists (fun op -> op.op_def = None) p.po_opnds
          then p.po_cba <- false);
      let changed = ref true in
      while !changed do
        changed := false;
        iter_phis it (fun p ->
            if p.po_cba && not (safe p) then begin
              let dead_operand =
                Array.exists
                  (fun op ->
                    (not op.op_has_real_use)
                    &&
                    match op.op_def with
                    | Some (Dphi p') -> not p'.po_cba
                    | _ -> false)
                  p.po_opnds
              in
              if dead_operand then begin
                p.po_cba <- false;
                changed := true
              end
            end)
      done;
      (* Later *)
      iter_phis it (fun p -> p.po_later <- p.po_cba);
      let changed = ref true in
      while !changed do
        changed := false;
        iter_phis it (fun p ->
            if p.po_later then begin
              let must_now =
                Array.exists
                  (fun op ->
                    match op.op_def with
                    | Some _ when op.op_has_real_use -> true
                    | Some (Dphi p') -> p'.po_cba && not p'.po_later
                    | _ -> false)
                  p.po_opnds
              in
              if must_now then begin
                p.po_later <- false;
                changed := true
              end
            end)
      done;
      iter_phis it (fun p ->
          p.po_wba <- p.po_cba && not p.po_later;
          if p.po_wba && p.po_cspec && not p.po_ds then
            ctx.stats_cspec_phis <- ctx.stats_cspec_phis + 1;
          if p.po_wba then
            Array.iter
              (fun op ->
                op.op_insert <-
                  (match op.op_def with
                   | None -> true
                   | Some (Dphi p') ->
                     (not op.op_has_real_use) && not p'.po_wba
                   | Some (Dreal _) -> false))
              p.po_opnds))
    ctx.item_list

(* ---- steps 5-6: finalize + code motion ---- *)

let is_avail_reload (occ : real_occ) =
  match occ.ro_def with
  | Some (Dreal _) -> true
  | Some (Dphi p) -> p.po_wba
  | None -> false

(* mark liveness of the value web feeding the given definition *)
let rec mark_def_used (d : def) =
  match d with
  | Dreal occ -> occ.ro_used <- true
  | Dphi p ->
    if not p.po_live then begin
      p.po_live <- true;
      Array.iter
        (fun op ->
          if not op.op_insert then
            match op.op_def with
            | Some d' -> mark_def_used d'
            | None -> ())
        p.po_opnds
    end

let new_temp ctx (it : item) =
  if it.it_temp < 0 then begin
    let syms = syms_of ctx in
    let ty = Sir.expr_ty syms it.it_proto in
    let v =
      Symtab.add syms
        ~name:(Printf.sprintf "t%d" (Symtab.count syms))
        ~ty ~storage:Symtab.Stemp ~func:(Some ctx.func.Sir.fname) ()
    in
    ctx.func.Sir.flocals <- v.Symtab.vid :: ctx.func.Sir.flocals;
    it.it_temp <- v.Symtab.vid
  end;
  it.it_temp

type action = Asave | Areload | Acheck of Sir.stmt list

let code_motion ctx =
  let syms = syms_of ctx in
  (* 1. decide reloads and mark used defs *)
  let transforms : (item * real_occ * action) list ref = ref [] in
  List.iter
    (fun it ->
      List.iter
        (fun (occ : real_occ) ->
          if is_avail_reload occ then begin
            (match occ.ro_def with
             | Some d -> mark_def_used d
             | None -> ());
            if occ.ro_weaks <> [] then begin
              it.it_has_checks <- true;
              transforms := (it, occ, Acheck occ.ro_weaks) :: !transforms
            end
            else transforms := (it, occ, Areload) :: !transforms
          end)
        it.it_reals)
    ctx.item_list;
  (* a phi operand whose path passed weak updates needs an edge check *)
  List.iter
    (fun it ->
      iter_phis it (fun p ->
          if p.po_live && p.po_wba then
            Array.iter
              (fun op ->
                if (not op.op_insert) && op.op_weaks <> [] then
                  it.it_has_checks <- true)
              p.po_opnds))
    ctx.item_list;
  (* 2. saves: used defining occurrences that are not themselves reloads *)
  List.iter
    (fun it ->
      List.iter
        (fun (occ : real_occ) ->
          if occ.ro_used && not (is_avail_reload occ) then
            transforms := (it, occ, Asave) :: !transforms)
        it.it_reals)
    ctx.item_list;
  (* 3. group rewrites by place *)
  let by_stmt : (int, (item * real_occ * action) list) Hashtbl.t =
    Hashtbl.create 16
  in
  let by_term : (int, (item * real_occ * action) list) Hashtbl.t =
    Hashtbl.create 16
  in
  List.iter
    (fun ((_, occ, _) as t) ->
      match occ.ro_place with
      | Pstmt s ->
        let cur =
          match Hashtbl.find_opt by_stmt s.Sir.sid with
          | Some l -> l | None -> []
        in
        Hashtbl.replace by_stmt s.Sir.sid (t :: cur)
      | Pterm ->
        let cur =
          match Hashtbl.find_opt by_term occ.ro_bb with
          | Some l -> l | None -> []
        in
        Hashtbl.replace by_term occ.ro_bb (t :: cur))
    !transforms;
  (* 4. apply rewrites *)
  let apply_in_exprs rewrites map_exprs =
    (* rewrites: (key, idx) -> (item, action); returns pre-statements *)
    let pre = ref [] in
    let counts = Hashtbl.create 4 in
    let rewrite key idx e =
      match Hashtbl.find_opt rewrites (key, idx) with
      | None -> None
      | Some (it, action) ->
        let t = new_temp ctx it in
        (match action with
         | Asave ->
           let s = Sir.new_stmt ctx.prog (Sir.Stid (t, e)) in
           if it.it_has_checks then s.Sir.mark <- Sir.Madv;
           pre := s :: !pre;
           ctx.stats_saves <- ctx.stats_saves + 1
         | Areload -> ctx.stats_reloads <- ctx.stats_reloads + 1
         | Acheck weaks ->
           let s = Sir.new_stmt ctx.prog (Sir.Stid (t, e)) in
           s.Sir.mark <- Sir.Mchk;
           (match weaks with
            | w :: _ -> s.Sir.check_of <- w.Sir.sid
            | [] -> ());
           pre := s :: !pre;
           ctx.stats_checks <- ctx.stats_checks + 1;
           ctx.stats_reloads <- ctx.stats_reloads + 1);
        Some (Sir.Lod t)
    in
    map_exprs (fun e ->
        Candidates.rewrite_candidates syms ~arith_pre:ctx.cfg.arith_pre counts
          rewrite e);
    List.rev !pre
  in
  Vec.iter
    (fun (b : Sir.bb) ->
      (* statement rewrites *)
      b.Sir.stmts <-
        List.concat_map
          (fun (s : Sir.stmt) ->
            match Hashtbl.find_opt by_stmt s.Sir.sid with
            | None -> [ s ]
            | Some ts ->
              let rewrites = Hashtbl.create 4 in
              List.iter
                (fun (it, occ, action) ->
                  Hashtbl.replace rewrites (it.it_key, occ.ro_idx) (it, action))
                ts;
              let pre =
                apply_in_exprs rewrites (fun f ->
                    s.Sir.kind <- Sir.map_stmt_exprs f s.Sir.kind)
              in
              pre @ [ s ])
          b.Sir.stmts;
      (* terminator rewrites *)
      (match Hashtbl.find_opt by_term b.Sir.bid with
       | None -> ()
       | Some ts ->
         let rewrites = Hashtbl.create 4 in
         List.iter
           (fun (it, occ, action) ->
             Hashtbl.replace rewrites (it.it_key, occ.ro_idx) (it, action))
           ts;
         let pre =
           apply_in_exprs rewrites (fun f ->
               b.Sir.term <- Sir.map_term_exprs f b.Sir.term)
         in
         b.Sir.stmts <- b.Sir.stmts @ pre))
    ctx.func.Sir.fblocks;
  (* 5. phi-operand insertions and edge checks *)
  List.iter
    (fun it ->
      iter_phis it (fun p ->
          if p.po_live && p.po_wba then begin
            let b = Sir.block ctx.func p.po_bb in
            List.iteri
              (fun i pred ->
                let op = p.po_opnds.(i) in
                let emit mark check_of =
                  match op.op_expr with
                  | None -> ()
                  | Some e ->
                    let t = new_temp ctx it in
                    let s = Sir.new_stmt ctx.prog (Sir.Stid (t, e)) in
                    s.Sir.mark <- mark;
                    s.Sir.check_of <- check_of;
                    let pb = Sir.block ctx.func pred in
                    pb.Sir.stmts <- pb.Sir.stmts @ [ s ];
                    ctx.stats_inserts <- ctx.stats_inserts + 1
                in
                if op.op_insert then begin
                  let mark =
                    match not p.po_ds, it.it_has_checks with
                    | true, true -> Sir.Msa      (* ld.sa: both speculations *)
                    | true, false -> Sir.Mcspec
                    | false, true -> Sir.Madv
                    | false, false -> Sir.Mnone
                  in
                  emit mark (-1)
                end
                else if op.op_weaks <> [] then begin
                  (* value passed a weak update on this path: validate *)
                  let check_of =
                    match op.op_weaks with w :: _ -> w.Sir.sid | [] -> -1
                  in
                  emit Sir.Mchk check_of;
                  ctx.stats_checks <- ctx.stats_checks + 1
                end)
              b.Sir.preds
          end))
    ctx.item_list

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

type stats = {
  checks : int;
  reloads : int;
  saves : int;
  inserts : int;
  cspec_phis : int;
  items : int;
}

let zero_stats =
  { checks = 0; reloads = 0; saves = 0; inserts = 0; cspec_phis = 0; items = 0 }

let add_stats a b =
  { checks = a.checks + b.checks; reloads = a.reloads + b.reloads;
    saves = a.saves + b.saves; inserts = a.inserts + b.inserts;
    cspec_phis = a.cspec_phis + b.cspec_phis; items = a.items + b.items }

(** Run one SSAPRE pass over a function already in HSSA form with
    speculation flags assigned.  The function is left in "flat" form:
    callers must run [Spec_ssa.Out_of_ssa] before executing it. *)
let run_func ?dom ?formals (prog : Sir.prog)
    (annot : Spec_alias.Annotate.info) (cfg : config) (f : Sir.func) : stats =
  let dom = match dom with Some d -> d | None -> Dom.compute f in
  let ns = Symtab.count prog.Sir.syms in
  let ev_index = Scratch.take_ints (max ns 1) in
  Array.fill ev_index 0 ns (-1);
  let ctx =
    { prog; func = f; dom; cfg;
      kctx = Kills.create ~alias_threshold:cfg.alias_threshold
          ?adversary:cfg.adversary prog annot cfg.mode;
      items = Hashtbl.create 16; item_list = [];
      stmt_occs = Hashtbl.create 64; term_occs = Hashtbl.create 16;
      vdefs = [||];
      ev_index; ev_origs = Scratch.take_ints (max ns 1); ev_n = 0;
      ev_rows = [||];
      stats_checks = 0; stats_reloads = 0; stats_saves = 0;
      stats_inserts = 0; stats_cspec_phis = 0 }
  in
  collect_occurrences ctx;
  build_version_def ctx;
  intern_proto_vars ctx;
  build_end_versions ?formals ctx;
  insert_phis ctx;
  rename ctx;
  downsafety ctx;
  availability ctx;
  code_motion ctx;
  Scratch.give_ints ctx.ev_index;
  Scratch.give_ints ctx.ev_origs;
  Scratch.give_ints ctx.ev_rows;
  { checks = ctx.stats_checks; reloads = ctx.stats_reloads;
    saves = ctx.stats_saves; inserts = ctx.stats_inserts;
    cspec_phis = ctx.stats_cspec_phis; items = List.length ctx.item_list }
