(** Speculative register promotion of stores (SPRE of stores, after
    Lo et al. and the authors' ALAT-based register promotion, CGO'03).
    See the implementation header for the transformation and its
    soundness conditions. *)

type stats = {
  mutable promoted : int;
  mutable loads_gone : int;
  mutable stores_gone : int;
  mutable checks : int;
}

(** Promote qualifying store groups in every loop, innermost first.
    Expects de-versioned SIR; the annotation and kill-classification
    context must be freshly computed for the same program.  [dom_of]
    supplies (possibly cached) dominator trees; when absent they are
    computed per function. *)
val run :
  ?dom_of:(Spec_ir.Sir.func -> Spec_cfg.Dom.t) ->
  Spec_ir.Sir.prog -> Spec_alias.Annotate.info -> Spec_spec.Kills.ctx -> stats

(** Per-function variant for the parallel pipeline.  [prog] may be a
    per-task view (cloned symbol table, private statement counter);
    [kctx] must be private to the task. *)
val run_func :
  ?dom:Spec_cfg.Dom.t ->
  Spec_ir.Sir.prog -> Spec_alias.Annotate.info -> Spec_spec.Kills.ctx ->
  Spec_ir.Sir.func -> stats
