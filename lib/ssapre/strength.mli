(** Strength reduction and linear function test replacement — the
    SSAPRE-family clients of §4 beyond PRE itself (after Kennedy et al.,
    CC'98: the injuring definition/repair-code view of speculative
    redundancy).  Operates on de-versioned SIR; candidates are the linear
    forms [iv*k] and [(iv+inv)*k] that scaled addressing produces. *)

type stats = {
  mutable reduced : int;   (** multiplications strength-reduced *)
  mutable lftr : int;      (** loop exit tests replaced *)
}

(** Reduce every natural loop of every function, innermost first.
    [dom_of] supplies (possibly cached) dominator trees; when absent
    they are computed per function. *)
val run :
  ?dom_of:(Spec_ir.Sir.func -> Spec_cfg.Dom.t) -> Spec_ir.Sir.prog -> stats

(** Per-function variant for the parallel pipeline.  [prog] may be a
    per-task view (cloned symbol table, private statement counter). *)
val run_func :
  ?dom:Spec_cfg.Dom.t -> Spec_ir.Sir.prog -> Spec_ir.Sir.func -> stats
