(** Scalar cleanup passes: constant folding, block-local copy/constant
    propagation, and liveness-based dead-code elimination.

    These run after PRE and strength reduction to tidy what those passes
    expose — folded strength-reduction initializers, propagated copies
    into check-load address expressions, and dead induction updates.  Only
    register-resident variables are touched; memory and control flow are
    never changed, and statements carrying speculation marks are kept (the
    machine's ALAT behaviour depends on them). *)

open Spec_ir
open Spec_cfg

type stats = {
  mutable folded : int;
  mutable propagated : int;
  mutable removed : int;
}

(* ---- constant folding ---- *)

let rec fold_expr (st : stats) (e : Sir.expr) : Sir.expr =
  match e with
  | Sir.Const _ | Sir.Lod _ | Sir.Lda _ -> e
  | Sir.Ilod (t, a, site) -> Sir.Ilod (t, fold_expr st a, site)
  | Sir.Unop (op, ty, x) -> (
      let x = fold_expr st x in
      match op, x with
      | Sir.Neg, Sir.Const (Sir.Cint i) ->
        st.folded <- st.folded + 1;
        Sir.Const (Sir.Cint (-i))
      | Sir.Neg, Sir.Const (Sir.Cflt f) ->
        st.folded <- st.folded + 1;
        Sir.Const (Sir.Cflt (-.f))
      | Sir.Lnot, Sir.Const (Sir.Cint i) ->
        st.folded <- st.folded + 1;
        Sir.Const (Sir.Cint (if i = 0 then 1 else 0))
      | Sir.I2f, Sir.Const (Sir.Cint i) ->
        st.folded <- st.folded + 1;
        Sir.Const (Sir.Cflt (float_of_int i))
      | Sir.F2i, Sir.Const (Sir.Cflt f) ->
        st.folded <- st.folded + 1;
        Sir.Const (Sir.Cint (int_of_float f))
      | _ -> Sir.Unop (op, ty, x))
  | Sir.Binop (op, ty, a, b) -> (
      let a = fold_expr st a in
      let b = fold_expr st b in
      let int_fold i j =
        match op with
        | Sir.Add -> Some (i + j)
        | Sir.Sub -> Some (i - j)
        | Sir.Mul -> Some (i * j)
        | Sir.Div -> if j = 0 then None else Some (i / j)
        | Sir.Rem -> if j = 0 then None else Some (i mod j)
        | Sir.Band -> Some (i land j)
        | Sir.Bor -> Some (i lor j)
        | Sir.Bxor -> Some (i lxor j)
        | Sir.Shl -> Some (i lsl (j land 63))
        | Sir.Shr -> Some (i asr (j land 63))
        | Sir.Lt -> Some (if i < j then 1 else 0)
        | Sir.Le -> Some (if i <= j then 1 else 0)
        | Sir.Gt -> Some (if i > j then 1 else 0)
        | Sir.Ge -> Some (if i >= j then 1 else 0)
        | Sir.Eq -> Some (if i = j then 1 else 0)
        | Sir.Ne -> Some (if i <> j then 1 else 0)
      in
      match a, b, ty with
      | Sir.Const (Sir.Cint i), Sir.Const (Sir.Cint j), _
        when not (Types.is_fp ty) -> (
          match int_fold i j with
          | Some r ->
            st.folded <- st.folded + 1;
            Sir.Const (Sir.Cint r)
          | None -> Sir.Binop (op, ty, a, b))
      (* algebraic identities over the integers *)
      | x, Sir.Const (Sir.Cint 0), _
        when (op = Sir.Add || op = Sir.Sub) && not (Types.is_fp ty) ->
        st.folded <- st.folded + 1;
        x
      | Sir.Const (Sir.Cint 0), x, _ when op = Sir.Add && not (Types.is_fp ty)
        ->
        st.folded <- st.folded + 1;
        x
      | x, Sir.Const (Sir.Cint 1), _ when op = Sir.Mul && not (Types.is_fp ty)
        ->
        st.folded <- st.folded + 1;
        x
      | Sir.Const (Sir.Cint 1), x, _ when op = Sir.Mul && not (Types.is_fp ty)
        ->
        st.folded <- st.folded + 1;
        x
      (* reassociate (e + c1) + c2 -> e + (c1+c2): shortens the address
         chains that check loads re-materialize *)
      | Sir.Binop (Sir.Add, ty', x, Sir.Const (Sir.Cint c1)),
        Sir.Const (Sir.Cint c2), _
        when op = Sir.Add && not (Types.is_fp ty) ->
        st.folded <- st.folded + 1;
        Sir.Binop (Sir.Add, ty', x, Sir.Const (Sir.Cint (c1 + c2)))
      | _ -> Sir.Binop (op, ty, a, b))

(* ---- block-local copy / constant propagation ---- *)

(* value a register variable is known to hold at the current point *)
type known = Kconst of Sir.const | Kcopy of int

let propagate_block (st : stats) syms (b : Sir.bb) =
  let env : (int, known) Hashtbl.t = Hashtbl.create 8 in
  let kill v = Hashtbl.remove env v in
  let kill_copies_of v =
    let stale =
      Hashtbl.fold
        (fun k kn acc -> if kn = Kcopy v then k :: acc else acc)
        env []
    in
    List.iter (Hashtbl.remove env) stale
  in
  let subst e =
    Sir.map_expr_uses
      (fun v ->
        match Hashtbl.find_opt env v with
        | Some (Kcopy u) ->
          st.propagated <- st.propagated + 1;
          u
        | _ -> v)
      e
  in
  let subst_consts e =
    let rec go e =
      match e with
      | Sir.Lod v -> (
          match Hashtbl.find_opt env v with
          | Some (Kconst c) ->
            st.propagated <- st.propagated + 1;
            Sir.Const c
          | _ -> e)
      | Sir.Const _ | Sir.Lda _ -> e
      | Sir.Ilod (t, a, s) -> Sir.Ilod (t, go a, s)
      | Sir.Unop (o, t, x) -> Sir.Unop (o, t, go x)
      | Sir.Binop (o, t, a, bb) -> Sir.Binop (o, t, go a, go bb)
    in
    go e
  in
  let apply e = subst_consts (subst e) in
  List.iter
    (fun (s : Sir.stmt) ->
      s.Sir.kind <- Sir.map_stmt_exprs apply s.Sir.kind;
      match s.Sir.kind, s.Sir.mark with
      | Sir.Stid (v, rhs), Sir.Mnone when not (Symtab.is_mem syms v) -> (
          kill v;
          kill_copies_of v;
          match rhs with
          | Sir.Const c -> Hashtbl.replace env v (Kconst c)
          | Sir.Lod u when not (Symtab.is_mem syms u) && u <> v ->
            Hashtbl.replace env v (Kcopy u)
          | _ -> ())
      | _ ->
        (match Sir.stmt_def s.Sir.kind with
         | Some v ->
           kill v;
           kill_copies_of v
         | None -> ()))
    b.Sir.stmts;
  b.Sir.term <- Sir.map_term_exprs apply b.Sir.term

(* ---- liveness-based dead code elimination ---- *)

let dce_func ?(pin = fun _ -> false) (st : stats) (prog : Sir.prog)
    (f : Sir.func) =
  let syms = prog.Sir.syms in
  Sir.recompute_preds f;
  let n = Sir.n_blocks f in
  let module IS = Set.Make (Int) in
  let reg v = not (Symtab.is_mem syms v) in
  let uses_of_stmt (s : Sir.stmt) =
    let base =
      List.fold_left
        (fun acc e ->
          let acc = ref acc in
          Sir.iter_expr_uses (fun v -> if reg v then acc := IS.add v !acc) e;
          !acc)
        IS.empty
        (Sir.stmt_exprs s.Sir.kind)
    in
    (* a check load (ld.c) keeps its destination on an ALAT hit: the
       destination's prior value is consumed, so it counts as a use *)
    match s.Sir.mark, Sir.stmt_def s.Sir.kind with
    | Sir.Mchk, Some d when reg d -> IS.add d base
    | _ -> base
  in
  let live_in = Array.make n IS.empty in
  let live_out = Array.make n IS.empty in
  let transfer bid out =
    let b = Sir.block f bid in
    let live = ref out in
    List.iter
      (fun e ->
        Sir.iter_expr_uses (fun v -> if reg v then live := IS.add v !live) e)
      (Sir.term_exprs b.Sir.term);
    List.iter
      (fun (s : Sir.stmt) ->
        (match Sir.stmt_def s.Sir.kind with
         | Some v when reg v -> live := IS.remove v !live
         | _ -> ());
        live := IS.union !live (uses_of_stmt s))
      (List.rev b.Sir.stmts);
    !live
  in
  let changed = ref true in
  while !changed do
    changed := false;
    for bid = n - 1 downto 0 do
      let out =
        List.fold_left
          (fun acc s -> IS.union acc live_in.(s))
          IS.empty
          (Sir.succs (Sir.block f bid))
      in
      live_out.(bid) <- out;
      let inn = transfer bid out in
      if not (IS.equal inn live_in.(bid)) then begin
        live_in.(bid) <- inn;
        changed := true
      end
    done
  done;
  (* second pass: delete dead register assignments (pure RHS, unmarked) *)
  for bid = 0 to n - 1 do
    let b = Sir.block f bid in
    let live = ref live_out.(bid) in
    (* walk backwards, recording which statements to keep *)
    List.iter
      (fun e ->
        Sir.iter_expr_uses (fun v -> if reg v then live := IS.add v !live) e)
      (Sir.term_exprs b.Sir.term);
    let kept =
      List.rev_map
        (fun (s : Sir.stmt) ->
          let keep =
            match s.Sir.kind, s.Sir.mark with
            | Sir.Stid (v, rhs), Sir.Mnone
              when reg v && not (IS.mem v !live) && not (pin v) ->
              (* dead; safe to drop only if the RHS cannot fault *)
              let has_load = ref false in
              Sir.iter_subexprs
                (function
                  | Sir.Ilod _ -> has_load := true
                  | Sir.Binop ((Sir.Div | Sir.Rem), _, _, _) ->
                    has_load := true
                  | Sir.Lod u when Symtab.is_mem syms u -> has_load := true
                  | _ -> ())
                rhs;
              !has_load
            | Sir.Snop, _ -> false
            | _ -> true
          in
          if keep then begin
            (match Sir.stmt_def s.Sir.kind with
             | Some v when reg v -> live := IS.remove v !live
             | _ -> ());
            live := IS.union !live (uses_of_stmt s)
          end
          else st.removed <- st.removed + 1;
          (s, keep))
        (List.rev b.Sir.stmts)
    in
    b.Sir.stmts <- List.filter_map (fun (s, k) -> if k then Some s else None) kept
  done

(** Run folding, local propagation, and DCE on one function to a
    (bounded) fixpoint.  Cleanup carries no cross-function state, so
    running the three iterations per function is equivalent to the
    whole-program [run] below (which interleaves functions per
    iteration). *)
let run_func ?pin (prog : Sir.prog) (f : Sir.func) : stats =
  let st = { folded = 0; propagated = 0; removed = 0 } in
  let syms = prog.Sir.syms in
  for _pass = 1 to 3 do
    Vec.iter
      (fun (b : Sir.bb) ->
        List.iter
          (fun (s : Sir.stmt) ->
            s.Sir.kind <- Sir.map_stmt_exprs (fold_expr st) s.Sir.kind)
          b.Sir.stmts;
        b.Sir.term <- Sir.map_term_exprs (fold_expr st) b.Sir.term;
        propagate_block st syms b)
      f.Sir.fblocks;
    dce_func ?pin st prog f
  done;
  st

let add_stats (a : stats) (b : stats) =
  a.folded <- a.folded + b.folded;
  a.propagated <- a.propagated + b.propagated;
  a.removed <- a.removed + b.removed

(** Run folding, local propagation, and DCE to a (bounded) fixpoint. *)
let run (prog : Sir.prog) : stats =
  let st = { folded = 0; propagated = 0; removed = 0 } in
  let syms = prog.Sir.syms in
  for _pass = 1 to 3 do
    Sir.iter_funcs
      (fun f ->
        Vec.iter
          (fun (b : Sir.bb) ->
            List.iter
              (fun (s : Sir.stmt) ->
                s.Sir.kind <-
                  Sir.map_stmt_exprs (fold_expr st) s.Sir.kind)
              b.Sir.stmts;
            b.Sir.term <- Sir.map_term_exprs (fold_expr st) b.Sir.term;
            propagate_block st syms b)
          f.Sir.fblocks;
        dce_func st prog f)
      prog
  done;
  st
