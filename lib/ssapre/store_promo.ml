(** Speculative register promotion of stores (the store half of register
    promotion: Lo et al.'s SPRE of loads *and* stores, and the authors'
    own ALAT-based speculative register promotion, CGO 2003).

    A location [A] that a loop repeatedly stores through a loop-invariant
    address is kept in a register for the whole loop:

      preheader:  t = load A          (ld.a — arms the ALAT)
      loop body:  loads of A  -> t
                  stores of A -> t = v
                  after every may-aliasing store *q:
                              t = load A  (ld.c — reloads iff *q hit A)
      every exit: store A = t

    Soundness conditions, checked per candidate group:
    - the address expression is loop-invariant and every same-syntax
      reference belongs to the group;
    - at least one group store executes on every iteration (so [A] is a
      valid, written location whenever the loop runs — the preheader load
      and exit stores introduce no new faults);
    - no other may-aliasing *load* exists in the loop (a load of [A]
      through a different pointer would read the stale memory cell; the
      ALAT cannot recover that, so such groups are rejected outright);
    - other may-aliasing *stores* are allowed when the speculation policy
      classifies them as unlikely: each is followed by a check reload of
      [t], which the ALAT turns into a no-op unless the store really hit
      [A];
    - no call in the loop may touch the location's alias class;
    - every exit block is reachable only from inside the loop.

    Runs on de-versioned SIR after the PRE rounds. *)

open Spec_ir
open Spec_cfg
open Spec_spec

type stats = {
  mutable promoted : int;      (* groups promoted *)
  mutable loads_gone : int;    (* static loads replaced by t *)
  mutable stores_gone : int;   (* static stores replaced by t = v *)
  mutable checks : int;        (* check reloads inserted *)
}

type group = {
  g_key : string;
  g_ty : Types.ty;
  g_addr : Sir.expr;
  g_site : int;                (* representative site, kept for profiling *)
  mutable g_loads : int;
  mutable g_stores : int;
  mutable g_has_every_iter_store : bool;
}

let expr_is_invariant prog defs e =
  let ok = ref true in
  Sir.iter_subexprs
    (function
      | Sir.Ilod _ -> ok := false
      | Sir.Lod v when Symtab.is_mem prog.Sir.syms v -> ok := false
      | Sir.Lod v ->
        if Hashtbl.mem defs (Symtab.orig prog.Sir.syms v).Symtab.vid then
          ok := false
      | _ -> ())
    e;
  !ok

let addr_key prog e =
  let syms = prog.Sir.syms in
  Pp.expr_to_string syms
    (Sir.map_expr_uses (fun v -> (Symtab.orig syms v).Symtab.vid) e)

(* defs of register variables inside the loop (for invariance) *)
let loop_defs prog (f : Sir.func) body =
  let defs = Hashtbl.create 16 in
  List.iter
    (fun bid ->
      List.iter
        (fun (s : Sir.stmt) ->
          match Sir.stmt_def s.Sir.kind with
          | Some v ->
            Hashtbl.replace defs (Symtab.orig prog.Sir.syms v).Symtab.vid ()
          | None -> ())
        (Sir.block f bid).Sir.stmts)
    body;
  defs

let promote_loop prog (annot : Spec_alias.Annotate.info) (kctx : Kills.ctx)
    (st : stats) (f : Sir.func) (dom : Dom.t) (l : Cfg_utils.loop) =
  let syms = prog.Sir.syms in
  let header = Sir.block f l.Cfg_utils.header in
  let outside =
    List.filter (fun p -> not (List.mem p l.Cfg_utils.body)) header.Sir.preds
  in
  match outside with
  | [ ph ] ->
    let defs = loop_defs prog f l.Cfg_utils.body in
    (* every-iteration blocks: dominate all back-edge sources *)
    let every_iter bid =
      List.for_all (fun src -> Dom.dominates dom bid src) l.Cfg_utils.back_edges
    in
    (* 1. collect groups over invariant-address references *)
    let groups : (string, group) Hashtbl.t = Hashtbl.create 8 in
    let rejected : (string, unit) Hashtbl.t = Hashtbl.create 8 in
    let note_ref ~is_store ~bid ty a site =
      Kills.register_site_addr kctx site a;
      let key = addr_key prog a in
      if expr_is_invariant prog defs a then begin
        let g =
          match Hashtbl.find_opt groups key with
          | Some g -> g
          | None ->
            let g =
              { g_key = key; g_ty = ty; g_addr = a; g_site = site;
                g_loads = 0; g_stores = 0; g_has_every_iter_store = false }
            in
            Hashtbl.replace groups key g;
            g
        in
        if g.g_ty <> ty then Hashtbl.replace rejected key ();
        if is_store then begin
          g.g_stores <- g.g_stores + 1;
          if every_iter bid then g.g_has_every_iter_store <- true
        end
        else g.g_loads <- g.g_loads + 1
      end
      else Hashtbl.replace rejected key ()
    in
    List.iter
      (fun bid ->
        let b = Sir.block f bid in
        let scan e =
          Sir.iter_subexprs
            (function
              | Sir.Ilod (ty, a, site) -> note_ref ~is_store:false ~bid ty a site
              | _ -> ())
            e
        in
        List.iter
          (fun (s : Sir.stmt) ->
            List.iter scan (Sir.stmt_exprs s.Sir.kind);
            match s.Sir.kind with
            | Sir.Istr (ty, a, _, site) -> note_ref ~is_store:true ~bid ty a site
            | _ -> ())
          b.Sir.stmts;
        List.iter scan (Sir.term_exprs b.Sir.term))
      l.Cfg_utils.body;
    (* 2. check soundness per group, gathering check-insertion points *)
    let exits =
      List.sort_uniq compare
        (List.concat_map
           (fun bid ->
             List.filter
               (fun s -> not (List.mem s l.Cfg_utils.body))
               (Sir.succs (Sir.block f bid)))
           l.Cfg_utils.body)
    in
    let exits_private =
      List.for_all
        (fun e ->
          List.for_all
            (fun p -> List.mem p l.Cfg_utils.body)
            (Sir.block f e).Sir.preds)
        exits
    in
    let rec try_group _key (g : group) =
      if Hashtbl.mem rejected g.g_key then ()
      else if not (g.g_has_every_iter_store && exits_private) then ()
      else if g.g_stores + g.g_loads < 2 then ()
      else begin
        (* variables the promoted location may alias: direct loads of them
           inside the loop would read the stale cell — unrecoverable *)
        let hazard_vars =
          match Spec_alias.Annotate.site_definite annot g.g_site with
          | Some (Loc.Lheap _) -> []
          | Some (Loc.Lvar x) -> [ x ]
          | None -> (
              match Spec_alias.Steensgaard.class_of_site
                      annot.Spec_alias.Annotate.sol g.g_site with
              | Some cls ->
                Spec_alias.Steensgaard.vars_in_class
                  annot.Spec_alias.Annotate.sol cls
              | None -> [])
        in
        (* scan other refs for hazards; collect weak stores needing checks *)
        let ok = ref true in
        let weak_stores : Sir.stmt list ref = ref [] in
        List.iter
          (fun bid ->
            let b = Sir.block f bid in
            let scan_loads e =
              Sir.iter_subexprs
                (function
                  | Sir.Lod v
                    when Symtab.is_mem syms v
                         && List.mem (Symtab.orig syms v).Symtab.vid
                              hazard_vars ->
                    ok := false
                  | Sir.Ilod (_, a, site) when addr_key prog a <> g.g_key ->
                    (* a different-syntax load that may alias the group's
                       location is an unrecoverable hazard *)
                    let same_class =
                      match
                        Spec_alias.Annotate.site_virtual annot site,
                        Spec_alias.Annotate.site_virtual annot g.g_site
                      with
                      | Some a', Some b' -> a' = b'
                      | _ -> true
                    in
                    let disjoint =
                      match
                        Spec_alias.Annotate.site_definite annot site,
                        Spec_alias.Annotate.site_definite annot g.g_site
                      with
                      | Some x, Some y -> not (Loc.equal x y)
                      | _ -> false
                    in
                    if same_class && not disjoint then ok := false
                  | _ -> ())
                e
            in
            List.iter
              (fun (s : Sir.stmt) ->
                List.iter scan_loads (Sir.stmt_exprs s.Sir.kind);
                match s.Sir.kind with
                | Sir.Istr (_, a, _, _) when addr_key prog a <> g.g_key -> (
                    match Kills.classify kctx (Kills.Tsite g.g_site) s with
                    | Kills.Knone -> ()
                    | Kills.Kweak -> weak_stores := s :: !weak_stores
                    | Kills.Kstrong -> ok := false)
                | Sir.Call { callee; _ } when not (Sir.is_builtin callee) ->
                  (* a call that may MODIFY the class kills the group; a
                     call that may merely READ it would observe the stale
                     memory cell — both reject promotion *)
                  (match Kills.classify kctx (Kills.Tsite g.g_site) s with
                   | Kills.Knone -> ()
                   | Kills.Kweak | Kills.Kstrong -> ok := false);
                  (match Spec_alias.Annotate.site_virtual annot g.g_site with
                   | Some vv ->
                     if List.exists (fun (m : Sir.mu) -> m.Sir.mu_var = vv)
                          s.Sir.mus
                        || List.exists
                             (fun (c : Sir.chi) -> c.Sir.chi_var = vv)
                             s.Sir.chis
                     then ok := false
                   | None -> ok := false)
                | _ -> ())
              b.Sir.stmts;
            List.iter scan_loads (Sir.term_exprs b.Sir.term))
          l.Cfg_utils.body;
        if !ok then apply_group g !weak_stores
      end
    and apply_group (g : group) weak_stores =
      let t =
        Symtab.add syms
          ~name:(Printf.sprintf "sp%d" (Symtab.count syms))
          ~ty:g.g_ty ~storage:Symtab.Stemp ~func:(Some f.Sir.fname) ()
      in
      f.Sir.flocals <- t.Symtab.vid :: f.Sir.flocals;
      let tv = t.Symtab.vid in
      let mk_load mark =
        let s =
          Sir.new_stmt prog
            (Sir.Stid (tv, Sir.Ilod (g.g_ty, g.g_addr, g.g_site)))
        in
        s.Sir.mark <- mark;
        s
      in
      (* preheader: arm the ALAT; control+data speculative (the loop may
         take paths that never touch A before the first group store) *)
      let pre = Sir.block f ph in
      pre.Sir.stmts <- pre.Sir.stmts @ [ mk_load Sir.Msa ];
      (* rewrite group refs and insert checks after weak stores *)
      let rec rw e =
        match e with
        | Sir.Ilod (ty, a, _) when ty = g.g_ty && addr_key prog a = g.g_key ->
          st.loads_gone <- st.loads_gone + 1;
          Sir.Lod tv
        | Sir.Const _ | Sir.Lod _ | Sir.Lda _ -> e
        | Sir.Ilod (ty, a, site) -> Sir.Ilod (ty, rw a, site)
        | Sir.Unop (o, ty, x) -> Sir.Unop (o, ty, rw x)
        | Sir.Binop (o, ty, a, b) -> Sir.Binop (o, ty, rw a, rw b)
      in
      List.iter
        (fun bid ->
          let b = Sir.block f bid in
          b.Sir.stmts <-
            List.concat_map
              (fun (s : Sir.stmt) ->
                s.Sir.kind <- Sir.map_stmt_exprs rw s.Sir.kind;
                (match s.Sir.kind with
                 | Sir.Istr (ty, a, v, _)
                   when ty = g.g_ty && addr_key prog a = g.g_key ->
                   st.stores_gone <- st.stores_gone + 1;
                   s.Sir.kind <- Sir.Stid (tv, v)
                 | _ -> ());
                if List.memq s weak_stores then begin
                  let chk = mk_load Sir.Mchk in
                  chk.Sir.check_of <- s.Sir.sid;
                  st.checks <- st.checks + 1;
                  [ s; chk ]
                end
                else [ s ])
              b.Sir.stmts;
          b.Sir.term <- Sir.map_term_exprs rw b.Sir.term)
        l.Cfg_utils.body;
      (* exits: write the promoted value back *)
      List.iter
        (fun e ->
          let eb = Sir.block f e in
          let wb =
            Sir.new_stmt prog
              (Sir.Istr (g.g_ty, g.g_addr, Sir.Lod tv, g.g_site))
          in
          eb.Sir.stmts <- wb :: eb.Sir.stmts)
        exits;
      st.promoted <- st.promoted + 1
    in
    Hashtbl.iter try_group groups
  | _ -> ()

(** Promote store-carrying invariant-address locations in one function's
    loops, innermost first.  [prog] may be a per-task view of the real
    program (cloned symbol table, private statement counter); [kctx]
    must be private to the task — its site-address table is mutated. *)
let run_func ?dom (prog : Sir.prog) (annot : Spec_alias.Annotate.info)
    (kctx : Kills.ctx) (f : Sir.func) : stats =
  let st = { promoted = 0; loads_gone = 0; stores_gone = 0; checks = 0 } in
  let dom =
    match dom with
    | Some d -> d
    | None ->
      Sir.recompute_preds f;
      Dom.compute f
  in
  let loops =
    List.sort
      (fun a b -> compare b.Cfg_utils.depth a.Cfg_utils.depth)
      (Cfg_utils.natural_loops f dom)
  in
  List.iter (promote_loop prog annot kctx st f dom) loops;
  st

(** Promote store-carrying invariant-address locations in every loop,
    innermost first.  Expects de-versioned SIR; [annot]/[kctx] must be
    freshly computed for the same program. *)
let run ?dom_of (prog : Sir.prog) (annot : Spec_alias.Annotate.info)
    (kctx : Kills.ctx) : stats =
  let st = { promoted = 0; loads_gone = 0; stores_gone = 0; checks = 0 } in
  Sir.iter_funcs
    (fun f ->
      let dom = Option.map (fun get -> get f) dom_of in
      let fst_ = run_func ?dom prog annot kctx f in
      st.promoted <- st.promoted + fst_.promoted;
      st.loads_gone <- st.loads_gone + fst_.loads_gone;
      st.stores_gone <- st.stores_gone + fst_.stores_gone;
      st.checks <- st.checks + fst_.checks)
    prog;
  st
