(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation section (§5), the ablation studies called out in DESIGN.md,
   and compiler-phase / execution-engine microbenchmarks (Bechamel).

   Usage:
     bench/main.exe                 -- all paper tables on ref inputs
     bench/main.exe --quick         -- train-sized inputs (fast smoke run)
     bench/main.exe --jobs 4       -- fan workloads/variants out to 4 domains
     bench/main.exe --table fig10   -- a single table
     bench/main.exe --micro         -- Bechamel phase + engine benches
     bench/main.exe --stress        -- misspeculation stress sweep (ALAT
                                       fault injection + adversarial
                                       profiles; --stress-seed N picks the
                                       fault streams, default 1)
     bench/main.exe --json          -- bench dump (JSON on stdout, and
                                       written to BENCH_<date>.json;
                                       --json-file PATH overrides the
                                       destination, "-" = stdout only;
                                       combined with --stress the dump
                                       gains a "stress" section)

     bench/main.exe --fdo           -- persistent-FDO warm-vs-cold compile
                                       cache bench (also available as
                                       --table fdo; with --json the dump
                                       gains an "fdo" section)
     bench/main.exe --compile-bench -- compile throughput: cold heuristic
                                       compiles at --jobs 1 vs --jobs N
                                       (N from --jobs, default 4), asserting
                                       byte-identical output; also --table
                                       compile; with --json the dump gains
                                       a "compile" section
     bench/main.exe --backend B     -- core model: inorder (default), ooo,
                                       or both.  "both" runs every selected
                                       table per backend, hard-fails if the
                                       backends disagree on program output
                                       or instruction counts, and adds the
                                       in-order-vs-OoO comparison table (also
                                       --table backends; with --json the
                                       dump gains a "backends" section)
     bench/main.exe --engine E      -- interpreter engine validating every
                                       variant: tree (default), vm (the
                                       threaded-code engine), or both.
                                       "both" executes each variant on both
                                       engines and hard-fails on any output
                                       disagreement with the machine
     bench/main.exe --table engines -- engine-throughput sweep (oracle vs
                                       pre-compiled tree vs vm; always in
                                       the --json dump as "engines")
     bench/main.exe --table mdp     -- OoO memory-dependence predictor
                                       sweep (store-set, last-violator,
                                       none; "mdp" section in the dump)
     bench/main.exe --table safety  -- speculative-safety sweep: taint
                                       checker verdicts per variant plus
                                       reload-vs-deopt recovery costs
                                       under forced ALAT interference
                                       (always in the --json dump as
                                       "safety")

   Tables: smvp fig10 fig11 fig12 heuristics rse stress fdo compile backends
           engines mdp safety ablate-cspec ablate-alat ablate-threshold
           ablate-sched micro

   Workload results are computed per-(workload, backend) on demand and
   memoized, so `--table smvp` only runs equake on the in-order core;
   table output is deterministic in [--jobs] (see Parpool). *)

open Spec_driver

module Machine = Spec_machine.Machine

let quick = ref false
let tables = ref []
let jobs = ref 1
let json = ref false
let json_file = ref None
let stress = ref false
let stress_seed = ref 1
let fdo = ref false
let compile_bench = ref false
let traffic = ref false
let svc_shards = ref 1
let backends : Machine.backend list ref = ref [ Machine.Inorder ]
let engines : Experiments.engine list ref = ref [ Experiments.Etree ]

let both_backends () = List.length !backends > 1

let section title = Printf.printf "\n== %s ==\n%!" title

(* ------------------------------------------------------------------ *)
(* Per-workload memoized results                                       *)
(* ------------------------------------------------------------------ *)

let result_tbl : (string * Machine.backend, Experiments.bench_result)
    Hashtbl.t =
  Hashtbl.create 16

(** Results for [ws] on [backend], computing (in parallel) only those
    not already cached.  Output order follows [ws]. *)
let results_on backend (ws : Spec_workloads.Workloads.workload list) :
    Experiments.bench_result list =
  let key w = (w.Spec_workloads.Workloads.name, backend) in
  let missing =
    List.filter (fun w -> not (Hashtbl.mem result_tbl (key w))) ws
  in
  if missing <> [] then begin
    let computed =
      Experiments.run_workloads ~quick:!quick ~backend ~engines:!engines
        missing
    in
    List.iter2
      (fun w b ->
        Hashtbl.replace result_tbl (key w) b;
        Printf.eprintf "  [%s/%s done in %.1fs]\n%!"
          w.Spec_workloads.Workloads.name
          (Machine.backend_name backend)
          b.Experiments.total_wall_s)
      missing computed
  end;
  List.map (fun w -> Hashtbl.find result_tbl (key w)) ws

(** Run [f backend results] for every selected backend over all
    workloads, labelling the output per backend when more than one core
    model is selected. *)
let per_backend_all (f : Experiments.bench_result list -> unit) =
  List.iter
    (fun backend ->
      if both_backends () then
        Printf.printf "-- backend: %s --\n" (Machine.backend_name backend);
      f (results_on backend Spec_workloads.Workloads.all))
    !backends

let result_of ?(backend = Machine.Inorder) name =
  List.hd (results_on backend [ Spec_workloads.Workloads.find name ])

(** The in-order/OoO pairs for the comparison table and the JSON
    [backends] section — and the hard agreement gate: any program-output
    or instruction-count disagreement between the cores fails the run. *)
let backend_pairs () =
  let inorder = results_on Machine.Inorder Spec_workloads.Workloads.all in
  let ooo = results_on Machine.Ooo Spec_workloads.Workloads.all in
  List.iter2
    (fun a b -> Experiments.check_backend_agreement a b)
    inorder ooo;
  List.combine inorder ooo

let table_backends () =
  section "In-order EPIC core vs out-of-order control (profile-driven spec)";
  let pairs = backend_pairs () in
  print_endline Experiments.backends_header;
  List.iter
    (fun (inorder, ooo) ->
      print_endline (Experiments.backends_row ~inorder ~ooo))
    pairs;
  Printf.printf
    "(%d workloads, every output byte-identical across backends)\n"
    (List.length pairs)

(* ------------------------------------------------------------------ *)
(* Engine throughput + memory-dependence predictor sweeps              *)
(* ------------------------------------------------------------------ *)

(** Memoized engine-throughput cells so the table and the JSON section
    share one (strictly sequential — it carries wall times) sweep.
    Every cell asserts the tree and vm engines reproduced the
    tree-walking oracle exactly; a divergence fails the run. *)
let engine_cells_tbl : Experiments.engine_cell list option ref = ref None

let engine_cells () =
  match !engine_cells_tbl with
  | Some cells -> cells
  | None ->
    let cells =
      Experiments.run_engine_bench ~quick:!quick
        ~reps:(if !quick then 3 else 5)
        Spec_workloads.Workloads.all
    in
    engine_cells_tbl := Some cells;
    cells

let table_engines () =
  section
    "Execution-engine throughput: tree-walking oracle vs pre-compiled tree \
     vs threaded-code vm (best-of wall)";
  let cells = engine_cells () in
  print_endline Experiments.engine_header;
  List.iter (fun c -> print_endline (Experiments.engine_row c)) cells;
  Printf.printf
    "(geomean tree/vm %.2fx, oracle/vm %.2fx over %d workloads; every \
     engine output identical to the oracle)\n"
    (Experiments.engine_geomean Experiments.engine_tree_over_vm cells)
    (Experiments.engine_geomean Experiments.engine_ref_over_vm cells)
    (List.length cells)

(** Memoized memory-dependence-predictor cells (base builds plus the
    adversarial chain kernel, on the OoO core under each policy);
    outputs and instruction counts must agree across policies or the
    sweep fails. *)
let mdp_cells_tbl : Experiments.mdp_cell list option ref = ref None

let mdp_cells () =
  match !mdp_cells_tbl with
  | Some cells -> cells
  | None ->
    let cells =
      Experiments.run_mdp_sweep ~quick:!quick Spec_workloads.Workloads.all
    in
    mdp_cells_tbl := Some cells;
    cells

let table_mdp () =
  section
    "OoO memory-dependence predictors (base builds + chain kernel)";
  let cells = mdp_cells () in
  print_endline Experiments.mdp_header;
  List.iter (fun c -> print_endline (Experiments.mdp_row cells c)) cells;
  Printf.printf
    "(%d cells; outputs and instruction counts identical across policies)\n"
    (List.length cells)

(** Memoized speculative-safety cells so the table and the JSON section
    share one sweep.  The sweep itself is the gate: every recovery leg
    must reproduce the unoptimized oracle's output byte-for-byte and the
    two engines must agree on the deopt leg to the counter —
    [Experiments.Safety_divergence] escapes and fails the run. *)
let safety_cells_tbl : Experiments.safety_cell list option ref = ref None

let safety_cells () =
  match !safety_cells_tbl with
  | Some cells -> cells
  | None ->
    let cells =
      Experiments.run_safety ~quick:!quick ~seed:!stress_seed
        Spec_workloads.Workloads.all
    in
    safety_cells_tbl := Some cells;
    cells

let table_safety () =
  section
    "Speculative safety: taint-checker verdicts + reload-vs-deopt recovery \
     costs (forced ALAT interference)";
  let cells = safety_cells () in
  print_endline Experiments.safety_header;
  List.iter (fun c -> print_endline (Experiments.safety_row c)) cells;
  List.iter
    (fun (c : Experiments.safety_cell) ->
      List.iter (fun s -> Printf.printf "    %s/%s %s\n" c.Experiments.sf_wname
                    c.Experiments.sf_variant s)
        c.Experiments.sf_sites)
    cells;
  Printf.printf
    "(%d cells; every recovery leg byte-identical to the unoptimized \
     oracle, tree and vm deopt legs in full counter agreement)\n"
    (List.length cells)

let table_smvp () =
  section "Section 5.1 case study: speculative register promotion in equake's smvp";
  let b = result_of "equake" in
  let s = Experiments.smvp_case_study b in
  Printf.printf
    "loads replaced by checks:                      %5.1f%%   (paper: 39.8%%)\n\
     speculative speedup over base:                 %+5.1f%%   (paper: +6%%)\n\
     no-check upper bound (hand-tuned) speedup:     %+5.1f%%   (paper: +14%%)\n"
    s.Experiments.checks_pct s.Experiments.spec_speedup
    s.Experiments.tuned_speedup

let table_fig10 () =
  section "Figure 10: speculative register promotion vs O3 base (profile-driven)";
  per_backend_all (fun results ->
      print_endline Experiments.fig10_header;
      List.iter (fun b -> print_endline (Experiments.fig10_row b)) results)

let table_fig11 () =
  section "Figure 11: dynamic check loads and mis-speculation ratio";
  per_backend_all (fun results ->
      print_endline Experiments.fig11_header;
      List.iter (fun b -> print_endline (Experiments.fig11_row b)) results)

let table_fig12 () =
  section "Figure 12: potential vs achieved load reduction";
  per_backend_all (fun results ->
      print_endline Experiments.fig12_header;
      List.iter (fun b -> print_endline (Experiments.fig12_row b)) results)

let table_heuristics () =
  section "Section 5.2: heuristic rules vs alias profile";
  per_backend_all (fun results ->
      print_endline Experiments.heuristics_header;
      List.iter (fun b -> print_endline (Experiments.heuristics_row b))
        results)

let table_rse () =
  section "Section 5.2: register-stack (RSE) pressure";
  per_backend_all (fun results ->
      print_endline Experiments.rse_header;
      List.iter (fun b -> print_endline (Experiments.rse_row b)) results)

let table_ablate_cspec () =
  section "Ablation: control speculation on/off (speculative PRE)";
  Printf.printf
    "benchmark | loads (cspec on) | loads (off) | cycles (on) | cycles (off)\n";
  List.iter
    (fun (name, l_on, l_off, c_on, c_off) ->
      Printf.printf "%-9s | %16d | %11d | %11d | %12d\n" name l_on l_off c_on
        c_off)
    (Parpool.parmap
       (fun w -> Experiments.ablate_control_spec ~quick:!quick w)
       Spec_workloads.Workloads.all)

(* ------------------------------------------------------------------ *)
(* Misspeculation stress sweep (--stress)                              *)
(* ------------------------------------------------------------------ *)

(** Memoized stress cells so the table and the JSON section share one
    sweep.  Every grid point asserts bit-identical outputs against the
    unoptimized oracle; [Experiments.Stress_divergence] escapes and
    fails the run (that is the CI gate). *)
let stress_cells_tbl :
    (Machine.backend, Experiments.stress_cell list) Hashtbl.t =
  Hashtbl.create 2

let stress_cells backend =
  match Hashtbl.find_opt stress_cells_tbl backend with
  | Some cells -> cells
  | None ->
    let cells =
      Experiments.run_stress ~quick:!quick ~seed:!stress_seed ~backend
        Spec_workloads.Workloads.all
    in
    Hashtbl.replace stress_cells_tbl backend cells;
    cells

(** Stress cells for every selected backend, in backend order (the JSON
    section carries one flat list; each cell names its backend). *)
let all_stress_cells () = List.concat_map stress_cells !backends

let table_stress () =
  section
    (Printf.sprintf
       "Misspeculation stress: ALAT fault injection + adversarial profiles \
        (seed %d)"
       !stress_seed);
  List.iter
    (fun backend ->
      if both_backends () then
        Printf.printf "-- backend: %s --\n" (Machine.backend_name backend);
      let cells = stress_cells backend in
      print_endline Experiments.stress_header;
      List.iter
        (fun c -> print_endline (Experiments.stress_row cells c))
        cells;
      Printf.printf
        "(%d cells, every output bit-identical to the unoptimized oracle)\n"
        (List.length cells))
    !backends

(* ------------------------------------------------------------------ *)
(* Persistent FDO: warm-vs-cold compile cache (--table fdo)             *)
(* ------------------------------------------------------------------ *)

(** Memoized warm-vs-cold cells so the table and the JSON section share
    one sweep.  Each cell asserts the warm compile hit the cache, ran
    zero passes and reproduced the cold program exactly; a violation
    fails the run. *)
let fdo_cells_tbl : Experiments.fdo_result list option ref = ref None

let fdo_cells () =
  match !fdo_cells_tbl with
  | Some cells -> cells
  | None ->
    let cells =
      Experiments.run_fdos ~quick:!quick Spec_workloads.Workloads.all
    in
    List.iter
      (fun (f : Experiments.fdo_result) ->
        if not f.Experiments.f_warm_hit then
          failwith
            (Printf.sprintf "fdo %s: warm compile missed the cache"
               f.Experiments.f_wname);
        if f.Experiments.f_warm_passes <> 0 then
          failwith
            (Printf.sprintf "fdo %s: warm compile ran %d passes"
               f.Experiments.f_wname f.Experiments.f_warm_passes);
        if not f.Experiments.f_identical then
          failwith
            (Printf.sprintf
               "fdo %s: warm program differs from the cold compile"
               f.Experiments.f_wname))
      cells;
    fdo_cells_tbl := Some cells;
    cells

let table_fdo () =
  section
    "Persistent FDO: warm vs cold compiles through the content-addressed \
     cache";
  let cells = fdo_cells () in
  print_endline Experiments.fdo_header;
  List.iter (fun f -> print_endline (Experiments.fdo_row f)) cells;
  Printf.printf
    "(%d workloads; every warm compile hit, ran zero passes, and matched \
     the cold program exactly)\n"
    (List.length cells)

(* ------------------------------------------------------------------ *)
(* Compile throughput: parallel per-function pipeline (--compile-bench) *)
(* ------------------------------------------------------------------ *)

(** Memoized compile-throughput cells so the table and the JSON section
    share one sweep.  Every cell asserts the parallel compile printed a
    byte-identical program to the sequential one; a divergence fails the
    run (that is the CI gate).  The parallel leg uses [--jobs] when
    given, else 4 domains. *)
let compile_cells_tbl : Experiments.compile_result list option ref = ref None

let compile_cells () =
  match !compile_cells_tbl with
  | Some cells -> cells
  | None ->
    let n = if !jobs > 1 then !jobs else 4 in
    let cells =
      Experiments.run_compile_bench ~quick:!quick ~jobs:n
        Spec_workloads.Workloads.all
    in
    List.iter
      (fun (c : Experiments.compile_result) ->
        if not c.Experiments.c_identical then
          failwith
            (Printf.sprintf
               "compile-bench %s: --jobs %d program diverged from --jobs 1"
               c.Experiments.c_wname c.Experiments.c_jobs))
      cells;
    compile_cells_tbl := Some cells;
    cells

let table_compile () =
  let cells = compile_cells () in
  let n = match cells with c :: _ -> c.Experiments.c_jobs | [] -> 1 in
  section
    (Printf.sprintf
       "Compile throughput: per-function pipeline at --jobs 1 vs --jobs %d"
       n);
  print_endline Experiments.compile_header;
  List.iter (fun c -> print_endline (Experiments.compile_row c)) cells;
  Printf.printf
    "(total speedup %.2fx over %d workloads; every parallel program \
     byte-identical to the sequential compile)\n"
    (Experiments.compile_total_speedup cells)
    (List.length cells)

let table_ablate_alat () =
  section "Ablation: ALAT capacity vs mis-speculation (equake)";
  Printf.printf "entries | checks | check misses\n";
  List.iter
    (fun (entries, checks, misses) ->
      Printf.printf "%7d | %6d | %12d\n" entries checks misses)
    (Experiments.ablate_alat ~quick:!quick
       (Spec_workloads.Workloads.find "equake")
       [ 4; 8; 16; 32; 64 ])

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks                                            *)
(* ------------------------------------------------------------------ *)

(** Measure a Bechamel grouped test and return (name, ns/run) rows,
    sorted by name.  Quick mode trims the measurement budget. *)
let measure tests =
  let open Bechamel in
  let open Toolkit in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    if !quick then Benchmark.cfg ~limit:50 ~quota:(Time.second 0.25) ()
    else Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name v acc -> (name, v) :: acc) results [] in
  List.filter_map
    (fun (name, v) ->
      match Analyze.OLS.estimates v with
      | Some [ est ] -> Some (name, est)
      | Some _ | None -> None)
    (List.sort compare rows)

let micro_phases () =
  section "Compiler-phase microbenchmarks (Bechamel)";
  let open Bechamel in
  let src =
    Spec_workloads.Workloads.train_source
      (Spec_workloads.Workloads.find "equake")
  in
  let tests =
    Test.make_grouped ~name:"phases"
      [ Test.make ~name:"frontend: parse+typecheck+lower"
          (Staged.stage (fun () -> ignore (Spec_ir.Lower.compile src)));
        Test.make ~name:"alias: steensgaard+modref+chi/mu"
          (Staged.stage (fun () ->
               let p = Spec_ir.Lower.compile src in
               ignore (Spec_alias.Annotate.run p)));
        Test.make ~name:"ssa: hssa construction"
          (Staged.stage (fun () ->
               let p = Spec_ir.Lower.compile src in
               let _ = Spec_alias.Annotate.run p in
               Spec_ir.Sir.iter_funcs
                 (fun f ->
                   ignore (Spec_cfg.Cfg_utils.split_critical_edges f : int))
                 p;
               ignore (Spec_ssa.Build_ssa.build p)));
        Test.make ~name:"pipeline: full heuristic PRE (3 rounds)"
          (Staged.stage (fun () ->
               let p = Spec_ir.Lower.compile src in
               ignore (Pipeline.optimize p Pipeline.Spec_heuristic)));
        Test.make ~name:"codegen: lower optimized SIR to ITL"
          (Staged.stage
             (let p = Spec_ir.Lower.compile src in
              let r = Pipeline.optimize p Pipeline.Spec_heuristic in
              fun () -> ignore (Spec_codegen.Codegen.lower r.Pipeline.prog))) ]
  in
  List.iter
    (fun (name, est) -> Printf.printf "%-45s %12.0f ns/run\n" name est)
    (measure tests)

(** Throughput of the four execution engines on the equake train
    kernel: the tree-walking reference interpreter, the pre-compiled
    interpreter (no hooks), the threaded-code vm, and the resolved ITL
    machine simulator.  Reported as ns/run plus retired statements (or
    instructions) per second, so engine regressions show up as absolute
    throughput. *)
let micro_engines () =
  section "Execution-engine throughput (Bechamel)";
  let open Bechamel in
  let src =
    Spec_workloads.Workloads.train_source
      (Spec_workloads.Workloads.find "equake")
  in
  let iprog = Spec_ir.Lower.compile src in
  let compiled = Spec_prof.Interp.compile (Spec_ir.Lower.compile src) in
  let vprog = Spec_prof.Vmcode.compile (Spec_ir.Lower.compile src) in
  let rp =
    let p = Spec_ir.Lower.compile src in
    let r = Pipeline.optimize p Pipeline.Base in
    let mp = Spec_codegen.Codegen.lower r.Pipeline.prog in
    ignore (Spec_codegen.Schedule.run mp : Spec_codegen.Schedule.stats);
    Spec_machine.Machine.resolve mp
  in
  let steps =
    (Spec_prof.Interp.run_compiled compiled).Spec_prof.Interp.counters
      .Spec_prof.Interp.steps
  in
  let insns =
    (Spec_machine.Machine.run_resolved rp).Spec_machine.Machine.perf
      .Spec_machine.Machine.insns
  in
  let tests =
    Test.make_grouped ~name:"engines"
      [ Test.make ~name:"interp-ref: tree-walking oracle"
          (Staged.stage (fun () -> ignore (Spec_prof.Interp_ref.run iprog)));
        Test.make ~name:"interp: pre-compiled, no hooks"
          (Staged.stage (fun () ->
               ignore (Spec_prof.Interp.run_compiled compiled)));
        Test.make ~name:"vm: threaded-code bytecode"
          (Staged.stage (fun () ->
               ignore (Spec_prof.Vm.run_program vprog)));
        Test.make ~name:"machine: resolved ITL simulator"
          (Staged.stage (fun () ->
               ignore (Spec_machine.Machine.run_resolved rp))) ]
  in
  let work =
    [ "engines/interp-ref: tree-walking oracle", (steps, "stmt");
      "engines/interp: pre-compiled, no hooks", (steps, "stmt");
      "engines/vm: threaded-code bytecode", (steps, "stmt");
      "engines/machine: resolved ITL simulator", (insns, "insn") ]
  in
  List.iter
    (fun (name, est) ->
      match List.assoc_opt name work with
      | Some (n, unit_) ->
        Printf.printf "%-45s %12.0f ns/run  %8.1f M%s/s\n" name est
          (float_of_int n /. est *. 1e3) unit_
      | None -> Printf.printf "%-45s %12.0f ns/run\n" name est)
    (measure tests)

let micro () =
  micro_phases ();
  micro_engines ()

(* ------------------------------------------------------------------ *)
(* Compile-service traffic replay (--traffic)                          *)
(* ------------------------------------------------------------------ *)

(** Memoized traffic-replay cell so the table and the JSON section share
    one replay.  The replay itself is the gate: it raises
    [Spec_service.Traffic.Divergence] — failing the run — if any
    daemon-served compile differs byte-for-byte from a direct
    in-process compile with the same evidence, if a repeated key is
    served cold again, or if the daemon's error counter is nonzero
    after a well-formed request stream. *)
let traffic_cell_tbl : Spec_service.Traffic.cell option ref = ref None

let traffic_cell () =
  match !traffic_cell_tbl with
  | Some cell -> cell
  | None ->
    let cell =
      Spec_service.Traffic.run_traffic_replay ~quick:!quick ~seed:1 ()
    in
    traffic_cell_tbl := Some cell;
    cell

(** Memoized sharded replay ([--shards n], n > 1): the same seeded
    request stream against an n-wide key-routed topology, still
    byte-diffed per request against the in-process offline arm. *)
let shards_cell_tbl : Spec_service.Traffic.cell option ref = ref None

let shards_cell () =
  match !shards_cell_tbl with
  | Some cell -> cell
  | None ->
    let cell =
      Spec_service.Traffic.run_traffic_replay ~quick:!quick ~seed:1
        ~shards:!svc_shards ()
    in
    shards_cell_tbl := Some cell;
    cell

let table_traffic () =
  section
    "Compile service: deterministic traffic replay over a unix socket";
  let c = traffic_cell () in
  let open Spec_service.Traffic in
  Printf.printf
    "requests | units | cold | warm | joined | parked | reports | recompiles\n";
  Printf.printf "%8d | %5d | %4d | %4d | %6d | %6d | %7d | %10d\n"
    c.t_requests c.t_units c.t_cold c.t_warm c.t_joined c.t_parked
    c.t_reports c.t_recompiles;
  Printf.printf
    "latency p50 %.3f ms  p99 %.3f ms  throughput %.1f req/s  \
     (%.2f s replay, seed %d)\n"
    c.t_p50_ms c.t_p99_ms c.t_rps c.t_wall_s c.t_seed;
  Printf.printf
    "(every daemon-served compile was byte-identical to a direct \
     in-process compile)\n";
  if !svc_shards > 1 then begin
    section
      (Printf.sprintf
         "Compile service: same replay against %d key-routed shards"
         !svc_shards);
    let c = shards_cell () in
    Printf.printf
      "shard | requests | cold | warm | joined | parked | reports | \
       recompiles | p50 ms | p99 ms\n";
    List.iter
      (fun s ->
        Printf.printf
          "%5d | %8d | %4d | %4d | %6d | %6d | %7d | %10d | %6.3f | %6.3f\n"
          s.s_shard s.s_requests s.s_cold s.s_warm s.s_joined s.s_parked
          s.s_reports s.s_recompiles s.s_p50_ms s.s_p99_ms)
      c.t_per_shard;
    Printf.printf
      "aggregate: p50 %.3f ms  p99 %.3f ms  throughput %.1f req/s  \
       (%.2f s replay, 0 divergences from the unsharded oracle)\n"
      c.t_p50_ms c.t_p99_ms c.t_rps c.t_wall_s
  end

(* ------------------------------------------------------------------ *)
(* Machine-readable bench dump (--json)                                *)
(* ------------------------------------------------------------------ *)

let date_string () =
  let tm = Unix.localtime (Unix.time ()) in
  Printf.sprintf "%04d-%02d-%02d" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday

(** [--json]: run the harness on every workload and dump the bench
    trajectory record (see {!Bench_json} for the schema) — printed on
    stdout and, unless [--json-file -], written to [BENCH_<date>.json]
    (or the [--json-file] path) so it can be committed as a baseline for
    future PRs to diff against.  With [--stress] the dump also carries
    the stress sweep. *)
let json_dump () =
  let t0 = Unix.gettimeofday () in
  let ws = Spec_workloads.Workloads.all in
  let blobs =
    List.concat_map
      (fun backend ->
        let results = results_on backend ws in
        Parpool.parmap
          (fun (w, b) -> Bench_json.workload_json w b)
          (List.combine ws results))
      !backends
  in
  (* under --backend both the agreement gate runs before anything is
     written: a backend divergence must fail the dump, not be recorded *)
  let backends_blob =
    if both_backends () then
      Some (Bench_json.backends_json (backend_pairs ()))
    else None
  in
  (* the engine-throughput and mdp sweeps are cheap next to the variant
     matrix, so every dump carries them — the committed baselines keep
     an engine-speedup trail the same way they keep the harness wall *)
  let engines_blob = Some (Bench_json.engines_json (engine_cells ())) in
  let mdp_blob = Some (Bench_json.mdp_json (mdp_cells ())) in
  (* the safety sweep always rides along: the committed baselines keep a
     verdict + recovery-cost trail the same way they keep engine speedups *)
  let safety_blob =
    Some (Bench_json.safety_json ~seed:!stress_seed (safety_cells ()))
  in
  let stress_blob =
    if !stress then
      Some (Bench_json.stress_json ~seed:!stress_seed (all_stress_cells ()))
    else None
  in
  let fdo_blob =
    if !fdo || List.mem "fdo" !tables then
      Some (Bench_json.fdo_json (fdo_cells ()))
    else None
  in
  let compile_blob =
    if !compile_bench || List.mem "compile" !tables then
      Some (Bench_json.compile_json (compile_cells ()))
    else None
  in
  let service_blob =
    if !traffic || List.mem "traffic" !tables then
      Some (Spec_service.Traffic.to_json (traffic_cell ()))
    else None
  in
  let shards_blob =
    if (!traffic || List.mem "traffic" !tables) && !svc_shards > 1 then
      Some (Spec_service.Traffic.shards_to_json (shards_cell ()))
    else None
  in
  let wall = Unix.gettimeofday () -. t0 in
  let out =
    Bench_json.dump ~date:(date_string ())
      ~inputs:(if !quick then "train" else "ref")
      ~jobs:(Parpool.get_jobs ()) ~harness_wall_s:wall
      (* wall time of the pre-overhaul harness on this machine, for the
         speedup trail (see EXPERIMENTS.md) *)
      ?pre_pr2_quick_wall_s:(if !quick then Some 13.194 else None)
      ?backends:backends_blob ?engines:engines_blob ?mdp:mdp_blob
      ?stress:stress_blob ?fdo:fdo_blob
      ?compile:compile_blob ?safety:safety_blob ?service:service_blob
      ?shards:shards_blob blobs
  in
  print_string out;
  match !json_file with
  | Some "-" -> ()
  | dest ->
    let path =
      match dest with
      | Some p -> p
      | None -> "BENCH_" ^ date_string () ^ ".json"
    in
    let oc = open_out path in
    output_string oc out;
    close_out oc;
    Printf.eprintf "wrote %s\n%!" path

let table_ablate_threshold () =
  section
    "Ablation: alias-likeliness threshold (speculate past rare real aliases)";
  Printf.printf "threshold | loads | checks | misses | cycles\n";
  List.iter
    (fun (t, loads, checks, misses, cycles) ->
      Printf.printf "%9.2f | %5d | %6d | %6d | %6d\n" t loads checks misses
        cycles)
    (Experiments.ablate_threshold [ 0.0; 0.01; 0.05; 0.10; 0.50 ])

let table_ablate_sched () =
  section "Ablation: local list scheduling on the speculative build";
  Printf.printf "benchmark | cycles (unscheduled) | cycles (scheduled) | gain %%\n";
  List.iter
    (fun (name, plain, sched) ->
      Printf.printf "%-9s | %20d | %18d | %+6.1f\n" name plain sched
        (100. *. (float_of_int plain /. float_of_int sched -. 1.)))
    (Parpool.parmap
       (fun w -> Experiments.ablate_schedule ~quick:!quick w)
       Spec_workloads.Workloads.all)

let known_tables =
  [ "smvp", table_smvp; "fig10", table_fig10; "fig11", table_fig11;
    "fig12", table_fig12; "heuristics", table_heuristics; "rse", table_rse;
    "ablate-cspec", table_ablate_cspec; "ablate-alat", table_ablate_alat;
    "ablate-threshold", table_ablate_threshold;
    "ablate-sched", table_ablate_sched; "micro", micro;
    "stress", table_stress; "fdo", table_fdo; "compile", table_compile;
    "backends", table_backends; "engines", table_engines;
    "mdp", table_mdp; "safety", table_safety; "traffic", table_traffic ]

let () =
  let args = Array.to_list Sys.argv in
  let rec parse = function
    | [] -> ()
    | "--full" :: rest -> quick := false; parse rest
    | "--quick" :: rest -> quick := true; parse rest
    | "--micro" :: rest -> tables := "micro" :: !tables; parse rest
    | "--stress" :: rest -> stress := true; parse rest
    | "--fdo" :: rest -> fdo := true; parse rest
    | "--compile-bench" :: rest -> compile_bench := true; parse rest
    | "--traffic" :: rest -> traffic := true; parse rest
    | "--shards" :: n :: rest ->
      (match int_of_string_opt n with
       | Some n when n >= 1 -> svc_shards := n
       | _ ->
         Printf.eprintf "--shards expects a positive integer, got %s\n" n;
         exit 2);
      parse rest
    | "--stress-seed" :: n :: rest ->
      (match int_of_string_opt n with
       | Some n -> stress_seed := n
       | _ ->
         Printf.eprintf "--stress-seed expects an integer, got %s\n" n;
         exit 2);
      parse rest
    | "--backend" :: b :: rest ->
      (match b with
       | "both" -> backends := Machine.all_backends
       | b ->
         (match Machine.backend_of_string b with
          | Some k -> backends := [ k ]
          | None ->
            Printf.eprintf "--backend expects inorder|ooo|both, got %s\n" b;
            exit 2));
      parse rest
    | "--engine" :: e :: rest ->
      (match e with
       | "both" -> engines := Experiments.all_engines
       | e ->
         (match Experiments.engine_of_string e with
          | Some k -> engines := [ k ]
          | None ->
            Printf.eprintf "--engine expects tree|vm|both, got %s\n" e;
            exit 2));
      parse rest
    | "--json" :: rest -> json := true; parse rest
    | "--json-file" :: p :: rest -> json_file := Some p; parse rest
    | "--jobs" :: n :: rest ->
      (match int_of_string_opt n with
       | Some n when n >= 1 -> jobs := n
       | _ ->
         Printf.eprintf "--jobs expects a positive integer, got %s\n" n;
         exit 2);
      parse rest
    | "--table" :: t :: rest -> tables := t :: !tables; parse rest
    | a :: rest ->
      Printf.eprintf "ignoring unknown argument %s\n" a;
      parse rest
  in
  parse (List.tl args);
  if !jobs > 1 then Parpool.set_jobs !jobs;
  if !json then begin
    (* machine-readable mode: nothing but JSON on stdout *)
    json_dump ();
    exit 0
  end;
  Printf.printf
    "specpre benchmark harness (%s inputs)\n\
     Reproduces: Lin, Chen, Hsu, Yew, Ju, Ngai, Chan.\n\
     \"A Compiler Framework for Speculative Analysis and Optimizations\", \
     PLDI 2003.\n"
    (if !quick then "train/quick" else "ref/full");
  let to_run =
    if !stress && !tables = [] then [ "stress" ]
    else if !fdo && !tables = [] then [ "fdo" ]
    else if !compile_bench && !tables = [] then [ "compile" ]
    else if !traffic && !tables = [] then [ "traffic" ]
    else if !tables = [] then
      [ "smvp"; "fig10"; "fig11"; "fig12"; "heuristics"; "rse";
        "ablate-cspec"; "ablate-alat"; "ablate-threshold"; "ablate-sched";
        "fdo"; "compile"; "engines"; "mdp"; "safety" ]
      @ (if both_backends () then [ "backends" ] else [])
      @ [ "micro" ]
    else List.rev !tables
  in
  List.iter
    (fun t ->
      match List.assoc_opt t known_tables with
      | Some f -> f ()
      | None ->
        Printf.eprintf "unknown table %s (known: %s)\n" t
          (String.concat ", " (List.map fst known_tables)))
    to_run
