(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation section (§5), the ablation studies called out in DESIGN.md,
   and compiler-phase microbenchmarks (Bechamel).

   Usage:
     bench/main.exe                 -- all paper tables on ref inputs
     bench/main.exe --quick         -- train-sized inputs (fast smoke run)
     bench/main.exe --table fig10   -- a single table
     bench/main.exe --micro         -- Bechamel compiler-phase benches
     bench/main.exe --json          -- per-pass timing dump (JSON, stdout)

   Tables: smvp fig10 fig11 fig12 heuristics rse
           ablate-cspec ablate-alat micro *)

open Spec_driver

let quick = ref false
let tables = ref []

let section title = Printf.printf "\n== %s ==\n%!" title

let all_results =
  lazy
    (List.map
       (fun w ->
         let t0 = Unix.gettimeofday () in
         let b = Experiments.run_workload ~quick:!quick w in
         Printf.eprintf "  [%s done in %.1fs]\n%!"
           w.Spec_workloads.Workloads.name
           (Unix.gettimeofday () -. t0);
         b)
       Spec_workloads.Workloads.all)

let table_smvp () =
  section "Section 5.1 case study: speculative register promotion in equake's smvp";
  let b =
    List.find (fun b -> b.Experiments.wname = "equake") (Lazy.force all_results)
  in
  let s = Experiments.smvp_case_study b in
  Printf.printf
    "loads replaced by checks:                      %5.1f%%   (paper: 39.8%%)\n\
     speculative speedup over base:                 %+5.1f%%   (paper: +6%%)\n\
     no-check upper bound (hand-tuned) speedup:     %+5.1f%%   (paper: +14%%)\n"
    s.Experiments.checks_pct s.Experiments.spec_speedup
    s.Experiments.tuned_speedup

let table_fig10 () =
  section "Figure 10: speculative register promotion vs O3 base (profile-driven)";
  print_endline Experiments.fig10_header;
  List.iter (fun b -> print_endline (Experiments.fig10_row b))
    (Lazy.force all_results)

let table_fig11 () =
  section "Figure 11: dynamic check loads and mis-speculation ratio";
  print_endline Experiments.fig11_header;
  List.iter (fun b -> print_endline (Experiments.fig11_row b))
    (Lazy.force all_results)

let table_fig12 () =
  section "Figure 12: potential vs achieved load reduction";
  print_endline Experiments.fig12_header;
  List.iter (fun b -> print_endline (Experiments.fig12_row b))
    (Lazy.force all_results)

let table_heuristics () =
  section "Section 5.2: heuristic rules vs alias profile";
  print_endline Experiments.heuristics_header;
  List.iter (fun b -> print_endline (Experiments.heuristics_row b))
    (Lazy.force all_results)

let table_rse () =
  section "Section 5.2: register-stack (RSE) pressure";
  print_endline Experiments.rse_header;
  List.iter (fun b -> print_endline (Experiments.rse_row b))
    (Lazy.force all_results)

let table_ablate_cspec () =
  section "Ablation: control speculation on/off (speculative PRE)";
  Printf.printf
    "benchmark | loads (cspec on) | loads (off) | cycles (on) | cycles (off)\n";
  List.iter
    (fun w ->
      let name, l_on, l_off, c_on, c_off =
        Experiments.ablate_control_spec ~quick:!quick w
      in
      Printf.printf "%-9s | %16d | %11d | %11d | %12d\n" name l_on l_off c_on
        c_off)
    Spec_workloads.Workloads.all

let table_ablate_alat () =
  section "Ablation: ALAT capacity vs mis-speculation (equake)";
  Printf.printf "entries | checks | check misses\n";
  List.iter
    (fun (entries, checks, misses) ->
      Printf.printf "%7d | %6d | %12d\n" entries checks misses)
    (Experiments.ablate_alat ~quick:!quick
       (Spec_workloads.Workloads.find "equake")
       [ 4; 8; 16; 32; 64 ])

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks of compiler phases                         *)
(* ------------------------------------------------------------------ *)

let micro () =
  section "Compiler-phase microbenchmarks (Bechamel)";
  let open Bechamel in
  let open Toolkit in
  let src =
    Spec_workloads.Workloads.train_source
      (Spec_workloads.Workloads.find "equake")
  in
  let tests =
    Test.make_grouped ~name:"phases"
      [ Test.make ~name:"frontend: parse+typecheck+lower"
          (Staged.stage (fun () -> ignore (Spec_ir.Lower.compile src)));
        Test.make ~name:"alias: steensgaard+modref+chi/mu"
          (Staged.stage (fun () ->
               let p = Spec_ir.Lower.compile src in
               ignore (Spec_alias.Annotate.run p)));
        Test.make ~name:"ssa: hssa construction"
          (Staged.stage (fun () ->
               let p = Spec_ir.Lower.compile src in
               let _ = Spec_alias.Annotate.run p in
               Spec_ir.Sir.iter_funcs
                 (fun f ->
                   ignore (Spec_cfg.Cfg_utils.split_critical_edges f : int))
                 p;
               ignore (Spec_ssa.Build_ssa.build p)));
        Test.make ~name:"pipeline: full heuristic PRE (3 rounds)"
          (Staged.stage (fun () ->
               let p = Spec_ir.Lower.compile src in
               ignore (Pipeline.optimize p Pipeline.Spec_heuristic)));
        Test.make ~name:"codegen: lower optimized SIR to ITL"
          (Staged.stage
             (let p = Spec_ir.Lower.compile src in
              let r = Pipeline.optimize p Pipeline.Spec_heuristic in
              fun () -> ignore (Spec_codegen.Codegen.lower r.Pipeline.prog))) ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) () in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name v acc -> (name, v) :: acc) results [] in
  List.iter
    (fun (name, v) ->
      match Analyze.OLS.estimates v with
      | Some [ est ] -> Printf.printf "%-45s %12.0f ns/run\n" name est
      | Some _ | None -> Printf.printf "%-45s (no estimate)\n" name)
    (List.sort compare rows)

(* ------------------------------------------------------------------ *)
(* Machine-readable per-pass timing dump (--json)                      *)
(* ------------------------------------------------------------------ *)

(** Compile every workload (train input) under every optimizing variant
    and dump the pass manager's per-pass timings, statistics and
    analysis-cache counters as JSON on stdout. *)
let json_dump () =
  let buf = Buffer.create 8192 in
  Buffer.add_string buf "{\"workloads\":[";
  List.iteri
    (fun i w ->
      if i > 0 then Buffer.add_char buf ',';
      let src = Spec_workloads.Workloads.train_source w in
      let prof = Pipeline.profile_of_source src in
      Buffer.add_string buf
        (Printf.sprintf "{\"name\":%S,\"variants\":["
           w.Spec_workloads.Workloads.name);
      List.iteri
        (fun j (vname, v) ->
          if j > 0 then Buffer.add_char buf ',';
          let r =
            Pipeline.compile_and_optimize ~edge_profile:(Some prof) src v
          in
          Buffer.add_string buf
            (Printf.sprintf "{\"variant\":%S,\"report\":%s}" vname
               (Passes.report_to_json r.Pipeline.report)))
        [ "base", Pipeline.Base; "profile", Pipeline.Spec_profile prof;
          "heuristic", Pipeline.Spec_heuristic;
          "aggressive", Pipeline.Aggressive ];
      Buffer.add_string buf "]}")
    Spec_workloads.Workloads.all;
  Buffer.add_string buf "]}\n";
  print_string (Buffer.contents buf)

let table_ablate_threshold () =
  section
    "Ablation: alias-likeliness threshold (speculate past rare real aliases)";
  Printf.printf "threshold | loads | checks | misses | cycles\n";
  List.iter
    (fun (t, loads, checks, misses, cycles) ->
      Printf.printf "%9.2f | %5d | %6d | %6d | %6d\n" t loads checks misses
        cycles)
    (Experiments.ablate_threshold [ 0.0; 0.01; 0.05; 0.10; 0.50 ])

let table_ablate_sched () =
  section "Ablation: local list scheduling on the speculative build";
  Printf.printf "benchmark | cycles (unscheduled) | cycles (scheduled) | gain %%\n";
  List.iter
    (fun w ->
      let name, plain, sched = Experiments.ablate_schedule ~quick:!quick w in
      Printf.printf "%-9s | %20d | %18d | %+6.1f\n" name plain sched
        (100. *. (float_of_int plain /. float_of_int sched -. 1.)))
    Spec_workloads.Workloads.all

let known_tables =
  [ "smvp", table_smvp; "fig10", table_fig10; "fig11", table_fig11;
    "fig12", table_fig12; "heuristics", table_heuristics; "rse", table_rse;
    "ablate-cspec", table_ablate_cspec; "ablate-alat", table_ablate_alat;
    "ablate-threshold", table_ablate_threshold;
    "ablate-sched", table_ablate_sched; "micro", micro ]

let json = ref false

let () =
  let args = Array.to_list Sys.argv in
  let rec parse = function
    | [] -> ()
    | "--full" :: rest -> quick := false; parse rest
    | "--quick" :: rest -> quick := true; parse rest
    | "--micro" :: rest -> tables := "micro" :: !tables; parse rest
    | "--json" :: rest -> json := true; parse rest
    | "--table" :: t :: rest -> tables := t :: !tables; parse rest
    | a :: rest ->
      Printf.eprintf "ignoring unknown argument %s\n" a;
      parse rest
  in
  parse (List.tl args);
  if !json then begin
    (* machine-readable mode: nothing but JSON on stdout *)
    json_dump ();
    exit 0
  end;
  Printf.printf
    "specpre benchmark harness (%s inputs)\n\
     Reproduces: Lin, Chen, Hsu, Yew, Ju, Ngai, Chan.\n\
     \"A Compiler Framework for Speculative Analysis and Optimizations\", \
     PLDI 2003.\n"
    (if !quick then "train/quick" else "ref/full");
  let to_run =
    if !tables = [] then
      [ "smvp"; "fig10"; "fig11"; "fig12"; "heuristics"; "rse";
        "ablate-cspec"; "ablate-alat"; "ablate-threshold"; "ablate-sched";
        "micro" ]
    else List.rev !tables
  in
  List.iter
    (fun t ->
      match List.assoc_opt t known_tables with
      | Some f -> f ()
      | None ->
        Printf.eprintf "unknown table %s (known: %s)\n" t
          (String.concat ", " (List.map fst known_tables)))
    to_run
