// @ci constant-time kernel: the same speculation shape as
// safety_smoke.c (a re-load advanced across a maybe-aliasing sibling
// store), but the secret key only ever feeds bit-masks — every address
// is public, so the checker must pass it under --safety strict.
secret int key[16];
int* tab[2];
int SIZE;

void init() {
  SIZE = 48;
  tab[0] = (int*)malloc(SIZE * 8);
  tab[1] = (int*)malloc(SIZE * 8);
  int* a; a = tab[0];
  int* b; b = tab[1];
  for (int i = 0; i < SIZE; i++) {
    a[i] = rnd(1000);
    b[i] = rnd(1000);
  }
  for (int i = 0; i < 16; i++) key[i] = rnd(2);
}

int blend() {
  int* a; a = tab[0];
  int* b; b = tab[1];
  int acc; acc = 0;
  for (int i = 0; i < SIZE; i++) {
    int k; k = key[i & 15];
    int mask; mask = 0 - (k & 1);
    int x; x = a[i];
    b[i] = (b[i] + x) & 1023;
    int sel; sel = (a[i] & mask) | (b[i] & (mask ^ (0 - 1)));
    acc = acc + sel;
  }
  return acc;
}

int main() {
  seed(13);
  init();
  int total; total = 0;
  for (int r = 0; r < 3; r++) total = total + blend();
  print_int(total);
  return 0;
}
