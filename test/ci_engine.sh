#!/bin/sh
# @ci smoke for the threaded-code execution engine: run the same kernel
# under both interpreter engines (speccc itself hard-fails on any stdout
# disagreement), then run the vm engine again through the
# content-addressed compile cache and require the warm compile to hit —
# so the executed bytecode came straight out of the cached artifact.
set -eu

speccc="$1"
src="$2"

work="$(mktemp -d -t speccc-engine-ci-XXXXXX)"
trap 'rm -rf "$work"' EXIT

cold="$("$speccc" run --engine both --cache-dir "$work/cache" "$src" \
        2> "$work/cold.err")"
warm="$("$speccc" run --engine vm --cache-dir "$work/cache" "$src" \
        2> "$work/warm.err")"

[ "$cold" = "$warm" ] || {
  echo "engine ci: cached-bytecode vm output differs from cold tree+vm" >&2
  echo "cold: $cold" >&2; echo "warm: $warm" >&2
  exit 1
}
grep -q "misses 1  stores 1" "$work/cold.err" || {
  echo "engine ci: cold compile did not miss+store:" >&2
  cat "$work/cold.err" >&2
  exit 1
}
grep -q "hits 1  misses 0" "$work/warm.err" || {
  echo "engine ci: warm vm compile did not hit the cache:" >&2
  cat "$work/warm.err" >&2
  exit 1
}

# both engines must also reproduce the machine's output on every variant
"$speccc" stats --engine both "$src" > /dev/null

echo "engine ci ok"
