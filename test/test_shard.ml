(* The sharded compile service (lib/service/shard.ml) and the
   cross-wakeup single-flight registry underneath it: routing
   determinism (pure key-prefix hashing, stable across restarts),
   disjointness of the per-shard cache and profile-store slices,
   N same-key requests across wakeups = exactly one cold compile
   (cold/joined/parked counters), sharded-vs-unsharded byte-identical
   answers on a full workload sweep, and the [shards] section of the
   specpre-bench/7 schema (accept + reject). *)

open Spec_fdo
open Spec_driver
open Spec_service

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

(* The same two kernels the service tests use. *)
let src_a =
  "int A[40];\n\
   int s;\n\
   int main() {\n\
  \  int i; s = 0;\n\
  \  for (i = 0; i < 40; i++) { A[i] = 3 * i; }\n\
  \  for (i = 0; i < 40; i++) {\n\
  \    if (i < 30) { s = s + A[i]; } else { s = s + 2 * A[i]; }\n\
  \  }\n\
  \  print_int(s);\n\
  \  return 0;\n\
   }\n"

let src_b =
  "int g;\n\
   int bump(int k) { g = g + k; return g; }\n\
   int main() {\n\
  \  int i; int s; int* p;\n\
  \  s = 0; p = &g; *p = 2;\n\
  \  for (i = 0; i < 25; i++) { s = s + *p + i; }\n\
  \  s = s + bump(4);\n\
  \  print_int(s + g);\n\
  \  return 0;\n\
   }\n"

let rm_rf dir =
  (match Sys.readdir dir with
   | entries ->
     Array.iter
       (fun e ->
         let p = Filename.concat dir e in
         if Sys.is_directory p then (
           Array.iter
             (fun f -> try Sys.remove (Filename.concat p f) with _ -> ())
             (Sys.readdir p);
           try Unix.rmdir p with _ -> ())
         else try Sys.remove p with _ -> ())
       entries
   | exception Sys_error _ -> ());
  (try Unix.rmdir dir with Unix.Unix_error _ -> ())

let fresh_dir tag =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "specshard-test-%d-%s" (Unix.getpid ()) tag)
  in
  rm_rf dir;
  dir

let router ?(shards = 3) ?(drift = 0.05) tag =
  Shard.create
    { (Daemon.default_config ~cache_dir:(fresh_dir tag)) with
      Daemon.sv_drift = drift }
    ~shards

let compile_req ?(unit_name = "u") ?(mode = "base") ?(exec = false) src =
  Proto.Compile
    { Proto.cq_unit = unit_name; cq_mode = mode; cq_rounds = 3;
      cq_strength = true; cq_exec = exec; cq_src = src }

let report_req ?(weight = 1.0) unit_name store =
  Proto.Report_profile
    { rq_unit = unit_name; rq_weight = weight;
      rq_store = Store.write store }

let store_of src =
  let prog, prof, _ = Pipeline.train src in
  Store.of_profile prog prof

let compiled = function
  | Proto.Compiled r -> r
  | Proto.Error m -> Alcotest.fail ("compile errored: " ^ m)
  | _ -> Alcotest.fail "expected a compiled reply"

(* ---- routing: a pure, restart-stable function of the key ---- *)

let test_routing_determinism () =
  (* pinned literals: the partition must never silently change, or a
     restarted service would go cold on every cache it already wrote *)
  check_int "pinned: zeros" 0 (Cache.shard_of_key ~shards:4 "00000000");
  check_int "pinned: ffffffff" 3 (Cache.shard_of_key ~shards:4 "ffffffff");
  check_int "pinned: abcdef01" 1 (Cache.shard_of_key ~shards:4 "abcdef01");
  check_int "pinned: deadbeef" 3 (Cache.shard_of_key ~shards:4 "deadbeef");
  check_int "pinned unit: art" (Store.shard_of_unit ~shards:4 "art")
    (Cache.shard_of_key ~shards:4 (Digest.to_hex (Digest.string "art")));
  (* only the 8-hex-digit prefix matters, so full MD5 keys and their
     prefixes agree *)
  let keys =
    List.init 50 (fun i -> Digest.to_hex (Digest.string (string_of_int i)))
  in
  List.iter
    (fun k ->
      check_int "prefix determines the shard"
        (Cache.shard_of_key ~shards:5 (String.sub k 0 8))
        (Cache.shard_of_key ~shards:5 k))
    keys;
  (* in range, covers every shard, single shard is always 0 *)
  let seen = Array.make 5 false in
  List.iter
    (fun k ->
      let s = Cache.shard_of_key ~shards:5 k in
      check_bool "in range" true (s >= 0 && s < 5);
      seen.(s) <- true;
      check_int "one shard routes everything" 0
        (Cache.shard_of_key ~shards:1 k))
    keys;
  check_bool "50 keys cover all 5 shards" true (Array.for_all Fun.id seen);
  (* malformed input is rejected, never silently hashed *)
  (match Cache.shard_of_key ~shards:3 "NOTHEX!!" with
   | exception Invalid_argument _ -> ()
   | s -> Alcotest.failf "malformed key routed to %d" s);
  (match Cache.shard_of_key ~shards:0 "abcdef01" with
   | exception Invalid_argument _ -> ()
   | s -> Alcotest.failf "zero shards routed to %d" s);
  (* restart stability: two independent routers agree on every request *)
  let t1 = router "route-a" and t2 = router "route-b" in
  let reqs =
    [ compile_req ~unit_name:"a" ~mode:"base" src_a;
      compile_req ~unit_name:"a" ~mode:"heuristic" src_a;
      compile_req ~unit_name:"b" ~mode:"none" src_b;
      compile_req ~unit_name:"a" ~mode:"profile" src_a;
      report_req "b" (store_of src_b) ]
  in
  List.iter
    (fun req ->
      check_bool "same route across restarts" true
        (Shard.shard_of t1 req = Shard.shard_of t2 req))
    reqs;
  check_bool "stats fan out" true (Shard.shard_of t1 Proto.Stats = None);
  check_bool "shutdown fans out" true
    (Shard.shard_of t1 Proto.Shutdown = None)

(* ---- cross-wakeup single-flight: N requests, 1 cold compile ---- *)

let test_cross_wakeup_single_flight () =
  let t =
    Daemon.create
      (Daemon.default_config ~cache_dir:(fresh_dir "xwake"))
  in
  let req = compile_req ~mode:"heuristic" src_a in
  (* wakeup 1: the creator and one same-wakeup joiner *)
  Daemon.begin_wakeup t;
  (match Daemon.submit t ~id:0 req with
   | Daemon.Parked_on _ -> ()
   | Daemon.Immediate _ -> Alcotest.fail "creator answered early");
  (match Daemon.submit t ~id:1 req with
   | Daemon.Parked_on _ -> ()
   | Daemon.Immediate _ -> Alcotest.fail "joiner answered early");
  (* wakeups 2 and 3: the key is still in flight — park, don't compile *)
  Daemon.begin_wakeup t;
  (match Daemon.submit t ~id:2 req with
   | Daemon.Parked_on _ -> ()
   | Daemon.Immediate _ -> Alcotest.fail "parker answered early");
  Daemon.begin_wakeup t;
  (match Daemon.submit t ~id:3 req with
   | Daemon.Parked_on _ -> ()
   | Daemon.Immediate _ -> Alcotest.fail "second parker answered early");
  check_bool "flight pending" true (Daemon.has_inflight t);
  let answers = Daemon.complete_one t in
  check_int "all four waiters answered at once" 4 (List.length answers);
  check_bool "no second flight" false (Daemon.has_inflight t);
  let counter name = List.assoc name (Daemon.counters t) in
  check_int "exactly one cold compile" 1 (counter "cold");
  check_int "one same-wakeup join" 1 (counter "joined");
  check_int "two cross-wakeup parks" 2 (counter "parked");
  check_int "no warm serves" 0 (counter "warm");
  let tag id =
    (compiled (List.assoc id answers)).Proto.cr_served
  in
  check_bool "creator served cold" true (tag 0 = Proto.Cold);
  check_bool "same-wakeup waiter joined" true (tag 1 = Proto.Joined);
  check_bool "later-wakeup waiters parked" true
    (tag 2 = Proto.Parked && tag 3 = Proto.Parked);
  let progs =
    List.map (fun (_, r) -> (compiled r).Proto.cr_prog) answers
  in
  List.iter
    (fun p -> check_str "identical programs" (List.hd progs) p)
    progs;
  (* the flight is gone: a later request is warm from the cache *)
  (match (compiled (Daemon.handle t req)).Proto.cr_served with
   | Proto.Warm -> ()
   | _ -> Alcotest.fail "post-flight repeat was not warm");
  check_int "still one cold compile" 1 (counter "cold")

(* The same guarantee through the router: duplicate keys in one batch
   dedupe even when other shards are busy, and the parked counter
   surfaces in the aggregate stats. *)
let test_router_single_flight () =
  let t = router "rsf" in
  let dup = compile_req ~unit_name:"a" ~mode:"heuristic" src_a in
  let resps =
    Shard.handle_batch t
      [ dup; compile_req ~unit_name:"b" ~mode:"base" src_b; dup; dup ]
  in
  check_int "every request answered" 4 (List.length resps);
  let kvs = Shard.counters t in
  check_int "aggregate: two cold compiles" 2 (List.assoc "cold" kvs);
  check_int "aggregate: two joins" 2 (List.assoc "joined" kvs);
  check_int "aggregate: parked counter present" 0 (List.assoc "parked" kvs);
  (* aggregate rows re-add from the per-shard rows *)
  let sum name =
    List.fold_left
      (fun acc i ->
        acc + List.assoc (Printf.sprintf "shard%d.%s" i name) kvs)
      0
      (List.init (Shard.shards t) Fun.id)
  in
  check_int "per-shard cold rows sum to the aggregate"
    (List.assoc "cold" kvs) (sum "cold");
  check_int "per-shard joined rows sum to the aggregate"
    (List.assoc "joined" kvs) (sum "joined")

(* ---- disjointness of the per-shard slices ---- *)

let mixed_batches () =
  let sa = store_of src_a and sb = store_of src_b in
  [ [ compile_req ~unit_name:"a" ~mode:"base" src_a;
      compile_req ~unit_name:"b" ~mode:"heuristic" src_b;
      report_req "a" sa ];
    [ compile_req ~unit_name:"a" ~mode:"profile" src_a;
      compile_req ~unit_name:"b" ~mode:"none" src_b;
      compile_req ~unit_name:"a" ~mode:"base" src_a;     (* warm *)
      report_req ~weight:2.0 "b" sb ];
    [ compile_req ~unit_name:"b" ~mode:"profile" ~exec:true src_b;
      report_req ~weight:0.5 "a" sa;
      compile_req ~unit_name:"a" ~mode:"heuristic" ~exec:true src_a ] ]

let test_slice_disjointness () =
  let shards = 3 in
  let dir = fresh_dir "disjoint" in
  let t = Shard.create (Daemon.default_config ~cache_dir:dir) ~shards in
  let batches = mixed_batches () in
  List.iter (fun b -> ignore (Shard.handle_batch t b)) batches;
  (* the stateless keys of the sweep, as the router derives them *)
  let stateless_keys =
    List.concat batches
    |> List.filter_map (function
      | Proto.Compile c ->
        Daemon.static_key ~mode:c.Proto.cq_mode ~rounds:c.Proto.cq_rounds
          ~strength:c.Proto.cq_strength c.Proto.cq_src
      | _ -> None)
  in
  check_bool "the sweep had stateless compiles" true (stateless_keys <> []);
  (* no cache key appears on two shards, and every stateless artifact
     sits on exactly the shard its key routes to (profile artifacts
     instead co-locate with their unit's store) *)
  let seen_keys : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let total = ref 0 in
  for i = 0 to shards - 1 do
    let keys =
      Sys.readdir (Cache.shard_dir dir i)
      |> Array.to_list
      |> List.filter_map (fun f -> Filename.chop_suffix_opt ~suffix:".sart" f)
    in
    check_int "cache length matches the on-disk slice"
      (List.length keys)
      (Cache.length (Daemon.cache (Shard.core t i)));
    List.iter
      (fun k ->
        incr total;
        if List.mem k stateless_keys then
          check_int "stateless artifact on its routed shard"
            (Cache.shard_of_key ~shards k) i;
        (match Hashtbl.find_opt seen_keys k with
         | Some j -> Alcotest.failf "key %s on shards %d and %d" k j i
         | None -> ());
        Hashtbl.replace seen_keys k i)
      keys
  done;
  check_bool "the sweep populated the caches" true (!total > 0);
  List.iter
    (fun k ->
      check_bool "stateless key cached on its routed shard" true
        (Hashtbl.find_opt seen_keys k = Some (Cache.shard_of_key ~shards k)))
    stateless_keys;
  (* every unit store lives on exactly the shard its name routes to *)
  let seen_units : (string, int) Hashtbl.t = Hashtbl.create 16 in
  for i = 0 to shards - 1 do
    List.iter
      (fun (name, _) ->
        check_int "unit store on its routed shard"
          (Store.shard_of_unit ~shards name) i;
        (match Hashtbl.find_opt seen_units name with
         | Some j -> Alcotest.failf "unit %s on shards %d and %d" name j i
         | None -> ());
        Hashtbl.replace seen_units name i)
      (Daemon.unit_stores (Shard.core t i))
  done;
  check_int "both units accounted for" 2 (Hashtbl.length seen_units)

(* ---- sharded topologies answer byte-identically to one daemon ---- *)

let test_sharded_equals_unsharded () =
  let run shards =
    let t = router ~shards (Printf.sprintf "equiv-%d" shards) in
    List.concat_map
      (fun batch ->
        List.map Proto.encode_response (Shard.handle_batch t batch))
      (mixed_batches ())
  in
  let base = run 1 in
  List.iter
    (fun shards ->
      let answers = run shards in
      check_int
        (Printf.sprintf "--shards %d answers every request" shards)
        (List.length base) (List.length answers);
      List.iteri
        (fun i (expect, got) ->
          check_str
            (Printf.sprintf "--shards %d request %d byte-identical" shards i)
            expect got)
        (List.combine base answers))
    [ 2; 3; 4 ]

(* ---- sharded traffic replay + the /7 shards section ---- *)

let replace_all ~pat ~by s =
  let b = Buffer.create (String.length s) in
  let pl = String.length pat in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    if !i + pl <= n && String.sub s !i pl = pat then begin
      Buffer.add_string b by;
      i := !i + pl
    end
    else begin
      Buffer.add_char b s.[!i];
      incr i
    end
  done;
  Buffer.contents b

let test_sharded_traffic_smoke () =
  List.iter
    (fun shards ->
      let cell =
        Traffic.run_traffic_replay ~quick:true ~requests:50 ~shards ()
      in
      let l = Printf.sprintf "shards=%d: " shards in
      check_int (l ^ "replayed every request") 50 cell.Traffic.t_requests;
      check_int (l ^ "no errors") 0 cell.Traffic.t_errors;
      check_int (l ^ "no divergences") 0 cell.Traffic.t_divergences;
      check_int (l ^ "topology width recorded") shards
        cell.Traffic.t_shards;
      check_int (l ^ "one row per shard") shards
        (List.length cell.Traffic.t_per_shard);
      check_bool (l ^ "cold compiles happened") true
        (cell.Traffic.t_cold > 0))
    [ 2; 4 ]

let test_shards_schema () =
  let cell = Traffic.run_traffic_replay ~quick:true ~requests:40 ~shards:2 () in
  let dump ?(mangle = Fun.id) () =
    Bench_json.dump ~date:"2026-08-09" ~inputs:"train" ~jobs:2
      ~harness_wall_s:0.1 ~service:(Traffic.to_json cell)
      ~shards:(mangle (Traffic.shards_to_json cell)) []
  in
  (match Bench_json.check (dump ()) with
   | Ok () -> ()
   | Error e -> Alcotest.fail ("shards section rejected: " ^ e));
  let must_reject what mangle =
    match Bench_json.check (dump ~mangle ()) with
    | Ok () -> Alcotest.fail ("accepted " ^ what)
    | Error _ -> ()
  in
  must_reject "nonzero shard divergences"
    (replace_all ~pat:"\"divergences\":0" ~by:"\"divergences\":1");
  must_reject "per_shard/shards mismatch"
    (replace_all ~pat:"\"shards\":2" ~by:"\"shards\":3");
  must_reject "renamed per-shard counter"
    (replace_all ~pat:"\"parked\"" ~by:"\"parkd\"");
  must_reject "missing per-shard rows"
    (fun _ -> "{\"seed\":1,\"shards\":2,\"requests\":40,\"units\":3,\
               \"divergences\":0,\"p50_ms\":1.0,\"p99_ms\":2.0,\
               \"wall_s\":1.0,\"throughput_rps\":40.0}");
  (* the /6 tag (pre-shards) is rejected outright *)
  (match
     Bench_json.check
       (replace_all ~pat:"specpre-bench/7" ~by:"specpre-bench/6" (dump ()))
   with
   | Ok () -> Alcotest.fail "accepted a specpre-bench/6 dump"
   | Error _ -> ())

let suite =
  [ Alcotest.test_case "routing determinism" `Quick
      test_routing_determinism;
    Alcotest.test_case "cross-wakeup single flight" `Quick
      test_cross_wakeup_single_flight;
    Alcotest.test_case "router single flight" `Quick
      test_router_single_flight;
    Alcotest.test_case "slice disjointness" `Quick test_slice_disjointness;
    Alcotest.test_case "sharded == unsharded (byte-identical)" `Quick
      test_sharded_equals_unsharded;
    Alcotest.test_case "sharded traffic smoke" `Quick
      test_sharded_traffic_smoke;
    Alcotest.test_case "shards schema accept/reject" `Quick
      test_shards_schema ]
