#!/bin/sh
# @ci smoke for the sharded compile service: start a 2-shard topology on
# a private socket, storm it with three concurrent same-key clients (the
# cross-wakeup single-flight registry must serve exactly one cold
# compile), drive a mixed-key round across every stateless mode twice
# (second round all warm, byte-identical), then check the aggregated
# stats are sane — shard count, zero errors, deterministic cold count,
# per-shard rows summing to the aggregate — and shut down cleanly.
set -eu

speccc="$1"
src="$2"

work="$(mktemp -d -t speccc-shard-ci-XXXXXX)"
sock="$work/svc.sock"
trap 'rm -rf "$work"' EXIT

"$speccc" serve --socket "$sock" --shards 2 --cache-dir "$work/cache" \
  --jobs 2 &
daemon=$!
# If anything below fails, don't leave the daemon behind.
trap 'kill "$daemon" 2> /dev/null || true; rm -rf "$work"' EXIT

# Same-key storm: three concurrent clients ask for one key; the
# single-flight registry must compile it exactly once (the others are
# joined, parked, or warm depending on arrival timing) and every client
# must get the same program.
for i in 1 2 3; do
  "$speccc" client compile --socket "$sock" --unit storm -m heuristic \
    "$src" > "$work/storm.$i.out" 2> "$work/storm.$i.err" &
  eval "storm_$i=\$!"
done
wait "$storm_1" "$storm_2" "$storm_3"
cmp -s "$work/storm.1.out" "$work/storm.2.out" || {
  echo "shard ci: storm clients got different programs (1 vs 2)" >&2
  exit 1
}
cmp -s "$work/storm.1.out" "$work/storm.3.out" || {
  echo "shard ci: storm clients got different programs (1 vs 3)" >&2
  exit 1
}

"$speccc" client stats --socket "$sock" > "$work/storm-stats.out"
grep -q "^cold 1$" "$work/storm-stats.out" || {
  echo "shard ci: same-key storm cost more than one cold compile:" >&2
  cat "$work/storm-stats.out" >&2
  exit 1
}

# Mixed-key round: every stateless mode, cold then warm; the warm
# program must be byte-identical to the cold one.
for mode in none base aggressive heuristic; do
  "$speccc" client compile --socket "$sock" --unit mixed -m "$mode" \
    "$src" > "$work/$mode.1.out" 2> "$work/$mode.1.err"
done
for mode in none base aggressive heuristic; do
  "$speccc" client compile --socket "$sock" --unit mixed -m "$mode" \
    "$src" > "$work/$mode.2.out" 2> "$work/$mode.2.err"
  grep -q "served: warm" "$work/$mode.2.err" || {
    echo "shard ci: repeat $mode compile was not served warm:" >&2
    cat "$work/$mode.2.err" >&2
    exit 1
  }
  cmp -s "$work/$mode.1.out" "$work/$mode.2.out" || {
    echo "shard ci: warm $mode program differs from cold" >&2
    exit 1
  }
done

# Aggregate sanity: topology width, no protocol errors, the storm key
# plus the three new mixed keys = exactly 4 cold compiles, and the
# per-shard rows re-add to the aggregate.
"$speccc" client stats --socket "$sock" > "$work/stats.out"
for want in "^shards 2$" "^errors 0$" "^cold 4$" "^parked " \
  "^shard0\.requests " "^shard1\.requests " "^shard0\.parked "; do
  grep -q "$want" "$work/stats.out" || {
    echo "shard ci: stats missing expected row $want:" >&2
    cat "$work/stats.out" >&2
    exit 1
  }
done
awk '
  $1 == "cold"         { agg = $2 }
  $1 ~ /^shard[0-9]+\.cold$/ { sum += $2 }
  END { exit !(agg == sum) }
' "$work/stats.out" || {
  echo "shard ci: per-shard cold rows do not sum to the aggregate:" >&2
  cat "$work/stats.out" >&2
  exit 1
}

"$speccc" client shutdown --socket "$sock" > /dev/null
wait "$daemon" || {
  echo "shard ci: daemon exited non-zero" >&2
  exit 1
}
trap 'rm -rf "$work"' EXIT

echo "shard ci ok"
