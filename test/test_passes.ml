(* Tests for the pass manager (Spec_driver.Passes): analysis caching and
   invalidation, per-pass timing/stats collection, inter-pass IR
   verification, and end-to-end equivalence of every scheduled pipeline
   variant with the unoptimized program. *)

open Spec_ir
open Spec_driver
open Spec_workloads

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let small_src =
  "int A[16];\n\
   int total;\n\
   int main() {\n\
  \  int i; i = 0;\n\
  \  while (i < 16) { A[i] = i * 3; i = i + 1; }\n\
  \  total = 0;\n\
  \  i = 0;\n\
  \  while (i < 16) { total = total + A[i]; i = i + 1; }\n\
  \  print_int(total);\n\
  \  return 0;\n\
   }\n"

let heuristic_config =
  Spec_ssapre.Ssapre.default_config Spec_spec.Flags.Heuristic_spec

(* ------------------------------------------------------------------ *)
(* Analysis caching and invalidation                                   *)
(* ------------------------------------------------------------------ *)

(* The cache must serve repeated annotate requests without recomputing,
   and a mutating pass that clobbers chi/mu must force a re-run. *)
let test_invalidation_reruns_annotation () =
  let prog = Lower.compile small_src in
  let mgr =
    Passes.create ~mode:Spec_spec.Flags.Heuristic_spec
      ~config:heuristic_config prog
  in
  let c = (Passes.report mgr).Passes.rp_counters in
  Passes.run_pass mgr "annotate";
  check_int "first annotate computes" 1 c.Passes.annot_runs;
  Passes.run_pass mgr "annotate";
  check_int "second annotate served from cache" 1 c.Passes.annot_runs;
  check_bool "cache hit recorded" true (c.Passes.annot_hits >= 1);
  (* out-of-ssa de-versions statements and wipes chi/mu lists: the pass
     reports the mutation, so the next annotate must recompute *)
  Passes.run_passes mgr [ "split-edges"; "build-ssa"; "out-of-ssa" ];
  Passes.run_pass mgr "annotate";
  check_int "annotation re-ran after mutating pass" 2 c.Passes.annot_runs;
  (* the points-to half (Steensgaard + mod/ref) stays cached throughout *)
  check_int "steensgaard still solved once" 1 c.Passes.steensgaard_runs

(* Acceptance criterion: per-round Steensgaard and dominator
   recomputation counts drop versus the seed pipeline, which re-solved
   points-to inside every annotation (prepass + one per round + store
   promotion) and rebuilt dominator trees in every client pass. *)
let test_analysis_reuse_across_rounds () =
  let rounds = 3 in
  let w = Workloads.find "equake" in
  let src = Workloads.train_source w in
  let nfuncs = ref 0 in
  Sir.iter_funcs (fun _ -> incr nfuncs) (Lower.compile src);
  let r =
    Pipeline.compile_and_optimize ~rounds src Pipeline.Spec_heuristic
  in
  let c = r.Pipeline.report.Passes.rp_counters in
  let seed_steensgaard = rounds + 2 in
  check_int "steensgaard solved exactly once" 1 c.Passes.steensgaard_runs;
  check_int "modref computed exactly once" 1 c.Passes.modref_runs;
  check_bool "fewer solves than the seed pipeline" true
    (c.Passes.steensgaard_runs < seed_steensgaard);
  check_bool "points-to served from cache across rounds" true
    (c.Passes.points_to_hits >= rounds);
  (* seed dominator computations: build-ssa and ssapre each round, the
     prepass build-ssa, store promotion and strength, per function *)
  let seed_dom = !nfuncs * ((2 * rounds) + 3) in
  check_bool
    (Printf.sprintf "dominator recomputation drops (%d < %d)"
       c.Passes.dom_runs seed_dom)
    true
    (c.Passes.dom_runs < seed_dom);
  check_bool "dominator trees served from cache" true (c.Passes.dom_hits > 0)

(* ------------------------------------------------------------------ *)
(* Per-pass stats: nothing is silently discarded any more              *)
(* ------------------------------------------------------------------ *)

let test_report_collects_all_pass_stats () =
  let r =
    Pipeline.compile_and_optimize small_src Pipeline.Spec_heuristic
  in
  let rp = r.Pipeline.report in
  let stat name =
    match
      List.find_opt (fun s -> s.Passes.ps_pass = name) rp.Passes.rp_passes
    with
    | Some s -> s
    | None -> Alcotest.failf "pass %s missing from report" name
  in
  let has_counter name key =
    List.mem_assoc key (stat name).Passes.ps_counters
  in
  check_int "ssapre ran once per round" 3 (stat "ssapre").Passes.ps_runs;
  check_bool "ssapre stats recorded" true (has_counter "ssapre" "reloads");
  check_bool "store-promo stats recorded" true
    (has_counter "store-promo" "promoted");
  check_bool "strength stats recorded" true (has_counter "strength" "reduced");
  check_bool "cleanup stats recorded" true (has_counter "cleanup" "removed");
  check_bool "every pass was timed" true
    (List.for_all (fun s -> s.Passes.ps_time >= 0.) rp.Passes.rp_passes);
  check_bool "report renders" true
    (String.length (Passes.report_to_string rp) > 0);
  (* the JSON dump is parseable enough to contain every pass name *)
  let contains hay needle =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  let json = Passes.report_to_json rp in
  check_bool "json dump mentions ssapre" true
    (contains json "\"name\":\"ssapre\"")

(* ------------------------------------------------------------------ *)
(* Inter-pass verification                                             *)
(* ------------------------------------------------------------------ *)

(* --verify-each names the offending pass when a transform breaks the
   IR: register a test-only pass that corrupts the CFG. *)
let test_verify_names_offending_pass () =
  let prog = Lower.compile small_src in
  Passes.register
    { Passes.pname = "test-corrupt-cfg";
      pdescr = "test-only: point a terminator at a missing block";
      prun =
        (fun ctx ->
          Sir.iter_funcs
            (fun f -> (Sir.block f 0).Sir.term <- Sir.Tgoto 9999)
            ctx.Passes.prog;
          { Passes.touched = true; invalidates = [ Passes.Dominators ];
            counters = [] }) };
  let mgr =
    Passes.create ~verify_each:true ~mode:Spec_spec.Flags.Heuristic_spec
      ~config:heuristic_config prog
  in
  match Passes.run_pass mgr "test-corrupt-cfg" with
  | exception Passes.Verify_error (pass, _msg) ->
    check_str "offending pass named" "test-corrupt-cfg" pass
  | () -> Alcotest.fail "inter-pass verification did not fire"

let test_unknown_pass_rejected () =
  let prog = Lower.compile small_src in
  let mgr =
    Passes.create ~mode:Spec_spec.Flags.Heuristic_spec
      ~config:heuristic_config prog
  in
  match Passes.run_pass mgr "no-such-pass" with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "unknown pass accepted"

(* ------------------------------------------------------------------ *)
(* End-to-end: every variant, every workload, verify-each on           *)
(* ------------------------------------------------------------------ *)

let test_variants_match_noopt_verified () =
  List.iter
    (fun w ->
      let src = Workloads.train_source w in
      let prof = Pipeline.profile_of_source src in
      let expect =
        (Spec_prof.Interp.run (Lower.compile src)).Spec_prof.Interp.output
      in
      List.iter
        (fun (name, variant) ->
          let r =
            Pipeline.compile_and_optimize ~verify_each:true
              ~edge_profile:(Some prof) src variant
          in
          let out =
            (Spec_prof.Interp.run r.Pipeline.prog).Spec_prof.Interp.output
          in
          check_str
            (w.Workloads.name ^ "/" ^ name ^ " matches noopt output")
            expect out)
        [ "noopt", Pipeline.Noopt; "base", Pipeline.Base;
          "profile", Pipeline.Spec_profile prof;
          "heuristic", Pipeline.Spec_heuristic ];
      (* the aggressive upper bound drops its runtime checks, so kernels
         with real aliasing legitimately diverge (as in Experiments);
         still drive it under verify-each so IR invariants are checked *)
      ignore
        (Pipeline.compile_and_optimize ~verify_each:true
           ~edge_profile:(Some prof) src Pipeline.Aggressive
         : Pipeline.result))
    Workloads.all

let suite =
  [ Alcotest.test_case "invalidation re-runs annotation" `Quick
      test_invalidation_reruns_annotation;
    Alcotest.test_case "points-to/dominators reused across rounds" `Quick
      test_analysis_reuse_across_rounds;
    Alcotest.test_case "per-pass stats all collected" `Quick
      test_report_collects_all_pass_stats;
    Alcotest.test_case "verify-each names the offending pass" `Quick
      test_verify_names_offending_pass;
    Alcotest.test_case "unknown pass rejected" `Quick
      test_unknown_pass_rejected;
    Alcotest.test_case "all variants x workloads match noopt (verified)"
      `Slow test_variants_match_noopt_verified ]
