// @ci leaky kernel: a table-based cipher round whose sbox re-load is
// speculated across a maybe-aliasing state update at a key-derived
// index — the safety checker must CONFIRM a spec-addr site here, and
// --safety strict must fail the compile.
secret int key[16];
int* tab[2];
int SIZE;

void init() {
  SIZE = 32;
  tab[0] = (int*)malloc(256 * 8);
  tab[1] = (int*)malloc(SIZE * 8);
  int* sbox; sbox = tab[0];
  int* st; st = tab[1];
  for (int i = 0; i < 256; i++) sbox[i] = rnd(256);
  for (int i = 0; i < SIZE; i++) st[i] = rnd(256);
  for (int i = 0; i < 16; i++) key[i] = rnd(256);
}

int round() {
  int* sbox; sbox = tab[0];
  int* st; st = tab[1];
  int acc; acc = 0;
  for (int i = 0; i < SIZE; i++) {
    int k; k = key[i & 15];
    int idx; idx = (st[i] + k) & 255;
    int t; t = sbox[idx];
    st[i] = (st[i] + t) & 255;
    acc = acc + sbox[idx] + t;
  }
  return acc;
}

int main() {
  seed(7);
  init();
  int total; total = 0;
  for (int r = 0; r < 3; r++) total = total + round();
  print_int(total);
  return 0;
}
