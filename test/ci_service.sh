#!/bin/sh
# @ci smoke for the compile service: start a daemon on a private socket,
# drive it through the client subcommands — cold compile, warm compile
# (byte-identical output), a profile-mode compile registering the unit
# in the FDO loop, report-profile past the drift threshold (must
# trigger a background recompile), a profile-mode compile served from
# the swapped artifact, stats — then shut it down cleanly and check the
# daemon exited zero with no protocol errors recorded.
set -eu

speccc="$1"
src="$2"

work="$(mktemp -d -t speccc-svc-ci-XXXXXX)"
sock="$work/svc.sock"
trap 'rm -rf "$work"' EXIT

"$speccc" serve --socket "$sock" --cache-dir "$work/cache" \
  --drift-threshold 0.05 --jobs 2 &
daemon=$!
# If anything below fails, don't leave the daemon behind.
trap 'kill "$daemon" 2> /dev/null || true; rm -rf "$work"' EXIT

"$speccc" client compile --socket "$sock" --unit smoke -m base \
  "$src" > "$work/cold.out" 2> "$work/cold.err"
grep -q "served: cold" "$work/cold.err" || {
  echo "service ci: first compile was not served cold:" >&2
  cat "$work/cold.err" >&2
  exit 1
}

"$speccc" client compile --socket "$sock" --unit smoke -m base \
  "$src" > "$work/warm.out" 2> "$work/warm.err"
grep -q "served: warm" "$work/warm.err" || {
  echo "service ci: repeat compile was not served warm:" >&2
  cat "$work/warm.err" >&2
  exit 1
}
cmp -s "$work/cold.out" "$work/warm.out" || {
  echo "service ci: warm program differs from cold" >&2
  exit 1
}

# Register the unit in the FDO loop: only profile-mode compiles bind a
# unit's source (stateless modes route by cache key under --shards and
# deliberately leave unit state alone), so the drifted report below has
# an artifact to refresh.
"$speccc" client compile --socket "$sock" --unit smoke -m profile \
  "$src" > "$work/reg.out" 2> "$work/reg.err"
grep -q "served: cold" "$work/reg.err" || {
  echo "service ci: registering profile compile was not served cold:" >&2
  cat "$work/reg.err" >&2
  exit 1
}

"$speccc" profile record "$src" -o "$work/p.sprof" > /dev/null
"$speccc" client report-profile --socket "$sock" smoke "$work/p.sprof" \
  > "$work/report.out"
grep -q "recompiled yes" "$work/report.out" || {
  echo "service ci: drifted report did not trigger a recompile:" >&2
  cat "$work/report.out" >&2
  exit 1
}

"$speccc" client compile --socket "$sock" --unit smoke -m profile --exec \
  "$src" > "$work/prof.out" 2> "$work/prof.err"
grep -q "served: warm" "$work/prof.err" || {
  echo "service ci: profile compile missed the recompiled artifact:" >&2
  cat "$work/prof.err" >&2
  exit 1
}

"$speccc" client stats --socket "$sock" > "$work/stats.out"
grep -q "^errors 0$" "$work/stats.out" || {
  echo "service ci: daemon recorded protocol errors:" >&2
  cat "$work/stats.out" >&2
  exit 1
}
grep -q "^recompiles 1$" "$work/stats.out" || {
  echo "service ci: expected exactly one drift recompile:" >&2
  cat "$work/stats.out" >&2
  exit 1
}

"$speccc" client shutdown --socket "$sock" > /dev/null
wait "$daemon" || {
  echo "service ci: daemon exited non-zero" >&2
  exit 1
}
trap 'rm -rf "$work"' EXIT

echo "service ci ok"
